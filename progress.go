package harl

import (
	"context"
	"math"

	"harl/internal/search"
)

// ProgressEvent is one committed progress point of a tuning session,
// delivered through Options.OnProgress. Events are emitted at the barriers
// where state is worker-invariant — after each round of an operator session,
// after each round of the serial network tuner, and at each wave barrier of
// the concurrent scheduler (one event per subgraph advanced that wave, in
// wave-selection order) — so for a fixed seed and configuration the event
// sequence is byte-identical for every worker-pool width, exactly like the
// tuning journal: all Options.Workers values for operator runs, all
// Workers >= 1 for network runs (Workers == 0 selects the legacy serial
// network scheduler, a genuinely different search whose per-round stream is
// deterministic but its own). The JSON field names are the wire format of
// the harl-serve SSE stream (GET /v1/jobs/{id}/events).
type ProgressEvent struct {
	// Workload is the workload (operator run) or subgraph (network run) name.
	Workload string `json:"workload"`
	// Task is the subgraph index within a network run (0 for operator runs).
	Task int `json:"task"`
	// Wave is the 0-based wave/round index the event was committed at.
	Wave int `json:"wave"`
	// Allocation is how many engine rounds this task has received so far —
	// the adaptive allocator's per-task budget decision made observable.
	Allocation int `json:"allocation"`
	// TaskTrials is the task-local cumulative charged-trial count;
	// TotalTrials the run-wide one (equal for operator runs).
	TaskTrials  int `json:"task_trials"`
	TotalTrials int `json:"total_trials"`
	// TaskMeasured and TotalMeasured count the schedules actually measured;
	// with adaptive sampling off they equal TaskTrials/TotalTrials, with it
	// on the gap is the saved hardware measurements.
	TaskMeasured  int `json:"task_measured"`
	TotalMeasured int `json:"total_measured"`
	// BestExecSeconds is the task's best measured execution time so far (0
	// until the task measures its first schedule).
	BestExecSeconds float64 `json:"best_exec_seconds"`
	// RunBestSeconds is the run-level objective: the best execution time for
	// an operator run, the estimated end-to-end time Σ w·g for a network run
	// (0 until every subgraph has measured). Plateau detection watches this
	// trajectory.
	RunBestSeconds float64 `json:"run_best_seconds"`
	// SearchSeconds is the cumulative simulated search time.
	SearchSeconds float64 `json:"search_seconds"`
}

// Plateau configures adaptive early stopping on the observed convergence
// trajectory: when the run objective (ProgressEvent.RunBestSeconds) improves
// by a relative fraction of MinImprovement or less across the last Window
// committed progress events, the session stops through the same
// checkpoint-on-cancel path a user cancellation takes — the in-flight round
// commits, the record log and model checkpoint are written, the partial best
// is published to any configured Registry, and the result comes back with
// PlateauStopped set. Detection reads only committed, worker-invariant
// state, so whether and where a run plateau-stops is identical for every
// worker count.
type Plateau struct {
	// Window is the number of recent waves/rounds the improvement is
	// measured over; 0 disables plateau detection. A concurrent network wave
	// emits one progress event per advanced subgraph, but the trajectory is
	// sampled once per wave — the window counts allocation decisions, not
	// events.
	Window int
	// MinImprovement is the relative improvement (0.01 = 1%) the trajectory
	// must exceed over Window waves to keep searching. The zero value stops
	// only a trajectory that did not improve at all.
	MinImprovement float64
}

func (p Plateau) enabled() bool { return p.Window > 0 }

// plateauDetector folds the run-objective trajectory and decides when it has
// flatlined. The trajectory is sampled once per wave — a concurrent network
// wave emits one event per advanced subgraph, all carrying the same
// post-wave objective, and counting each would fill the window with zero
// "improvement" inside a single wave. Events whose objective is not yet
// meaningful (no measurement, or a network run before every subgraph
// measured) are skipped rather than counted as stagnation.
type plateauDetector struct {
	p        Plateau
	hist     []float64
	seenWave bool
	lastWave int
}

func (d *plateauDetector) observe(wave int, runBest float64) bool {
	if !d.p.enabled() || runBest <= 0 || math.IsInf(runBest, 1) {
		return false
	}
	if d.seenWave && wave == d.lastWave {
		return false
	}
	d.seenWave, d.lastWave = true, wave
	d.hist = append(d.hist, runBest)
	if len(d.hist) <= d.p.Window {
		return false
	}
	old := d.hist[len(d.hist)-1-d.p.Window]
	return (old-runBest)/old <= d.p.MinImprovement
}

// finiteOrZero maps the engine's +Inf "nothing measured yet" sentinels to 0
// so every ProgressEvent is JSON-encodable.
func finiteOrZero(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return v
}

// publicProgress renders an internal progress point as the public event.
func publicProgress(names []string, p search.Progress) ProgressEvent {
	name := ""
	if p.Task >= 0 && p.Task < len(names) {
		name = names[p.Task]
	}
	return ProgressEvent{
		Workload:        name,
		Task:            p.Task,
		Wave:            p.Wave,
		Allocation:      p.Allocation,
		TaskTrials:      p.TaskTrials,
		TotalTrials:     p.TotalTrials,
		TaskMeasured:    p.TaskMeasured,
		TotalMeasured:   p.TotalMeasured,
		BestExecSeconds: finiteOrZero(p.BestExec),
		RunBestSeconds:  finiteOrZero(p.RunBest),
		SearchSeconds:   p.CostSec,
	}
}

// progressSession resolves Options.OnProgress and Options.Plateau into the
// session wiring: the (possibly plateau-cancellable) session context, the
// core-level progress hook (nil when neither option is set, so sessions
// without observers pay nothing), a predicate reporting whether the plateau
// policy — and not the caller's context or an exhausted budget — stopped the
// run, and a cleanup releasing the derived context. The predicate takes the
// session's cancelled report: a detector that fired on the final budgeted
// wave stopped nothing (budget-exhausted is checked before the context at
// every barrier), so the run completed and must not claim an early stop.
// Both the hook and the predicate run on the tuning goroutine / after the
// session returns respectively, so no locking is needed.
func (o Options) progressSession(ctx context.Context, names []string) (sessCtx context.Context, hook func(search.Progress), plateaued func(sessionCancelled bool) bool, cleanup func()) {
	cleanup = func() {}
	if o.OnProgress == nil && !o.Plateau.enabled() {
		return ctx, nil, func(bool) bool { return false }, cleanup
	}
	sessCtx = ctx
	var cancel context.CancelFunc
	if o.Plateau.enabled() {
		sessCtx, cancel = context.WithCancel(ctx)
		cleanup = cancel
	}
	det := &plateauDetector{p: o.Plateau}
	fired := false
	hook = func(p search.Progress) {
		if o.OnProgress != nil {
			o.OnProgress(publicProgress(names, p))
		}
		if cancel != nil && !fired && det.observe(p.Wave, p.RunBest) {
			fired = true
			cancel()
		}
	}
	plateaued = func(sessionCancelled bool) bool { return fired && sessionCancelled && ctx.Err() == nil }
	return sessCtx, hook, plateaued, cleanup
}

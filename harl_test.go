package harl

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestTuneOperatorHappyPath(t *testing.T) {
	w := GEMM(256, 256, 256, 1)
	res, err := TuneOperator(w, CPU(), Options{Scheduler: "random", Trials: 48})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPS <= 0 || res.ExecSeconds <= 0 || res.Trials < 48 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.BestSchedule == "" {
		t.Fatal("missing best schedule description")
	}
	if len(res.BestLog) != res.Trials {
		t.Fatalf("best log %d entries for %d trials", len(res.BestLog), res.Trials)
	}
}

func TestTuneOperatorDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scheduler != "harl" || o.Trials != 320 || o.MeasureK != 16 || o.Seed != 1 {
		t.Fatalf("defaults %+v", o)
	}
}

func TestTuneOperatorUnknownScheduler(t *testing.T) {
	if _, err := TuneOperator(GEMM(64, 64, 64, 1), CPU(), Options{Scheduler: "nope", Trials: 16}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTuneOperatorReproducible(t *testing.T) {
	w := GEMM(256, 256, 256, 1)
	o := Options{Scheduler: "ansor", Trials: 48, Seed: 9}
	a, err := TuneOperator(w, CPU(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuneOperator(w, CPU(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecSeconds != b.ExecSeconds || a.SearchSeconds != b.SearchSeconds {
		t.Fatal("same options diverged")
	}
}

func TestTargets(t *testing.T) {
	if CPU().Name() == GPU().Name() {
		t.Fatal("targets must differ")
	}
	if _, err := TargetByName("cpu"); err != nil {
		t.Fatal(err)
	}
	if _, err := TargetByName("quantum"); err == nil {
		t.Fatal("unknown target must error")
	}
}

func TestWorkloadConstructors(t *testing.T) {
	for _, w := range []Workload{
		GEMM(128, 128, 128, 1),
		Conv1D(256, 64, 128, 3, 2, 1, 1),
		Conv2D(56, 56, 64, 64, 1, 1, 0, 1),
		Conv3D(16, 14, 14, 256, 256, 3, 1, 1, 1),
		ConvT2D(4, 4, 512, 256, 4, 2, 1, 1),
		FusedGEMM(128, 128, 128, 1, 4),
	} {
		if w.FLOPs() <= 0 {
			t.Fatalf("%s: non-positive FLOPs", w.Name())
		}
		if w.Describe() == "" {
			t.Fatalf("%s: empty description", w.Name())
		}
	}
}

func TestTableSixWorkloads(t *testing.T) {
	ws := TableSixWorkloads("GEMM-L", 16)
	if len(ws) != 4 {
		t.Fatalf("got %d workloads", len(ws))
	}
}

func TestCustomOp(t *testing.T) {
	w, err := CustomOp("contraction", []CustomAxis{
		{Name: "i", Extent: 64},
		{Name: "j", Extent: 64},
		{Name: "k", Extent: 32, Reduce: true},
	}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if w.FLOPs() != 2*64*64*32 {
		t.Fatalf("custom flops %g", w.FLOPs())
	}
	res, err := TuneOperator(w, CPU(), Options{Scheduler: "random", Trials: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.GFLOPS <= 0 {
		t.Fatal("custom op failed to tune")
	}
	if _, err := CustomOp("bad", []CustomAxis{{Name: "k", Extent: 8, Reduce: true}}, 1, false); err == nil {
		t.Fatal("spatial-free custom op must error")
	}
}

func TestTuneNetwork(t *testing.T) {
	res, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "random", Trials: 330})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.EstimatedSeconds, 1) || res.EstimatedSeconds <= 0 {
		t.Fatalf("estimated %g", res.EstimatedSeconds)
	}
	if res.MeasuredSeconds <= res.EstimatedSeconds {
		t.Fatal("measured must exceed estimated (communication overhead)")
	}
	if len(res.Breakdown) != 10 {
		t.Fatalf("BERT breakdown rows %d", len(res.Breakdown))
	}
	sum := 0.0
	for _, b := range res.Breakdown {
		sum += b.Contribution
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("contributions sum %f", sum)
	}
	if _, err := TuneNetwork("alexnet", 1, CPU(), Options{}); err == nil {
		t.Fatal("unknown network must error")
	}
}

func TestSchedulersList(t *testing.T) {
	found := map[string]bool{}
	for _, s := range Schedulers() {
		found[s] = true
	}
	for _, want := range []string{"harl", "ansor", "flextensor", "hierarchical-rl"} {
		if !found[want] {
			t.Fatalf("missing scheduler %q", want)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if err := RunExperiment("fig99", ExperimentConfig{}, io.Discard); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment("tab1", ExperimentConfig{}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "harl") {
		t.Fatal("table 1 output missing")
	}
}

func TestRunExperimentFig1b(t *testing.T) {
	var sb strings.Builder
	cfg := ExperimentConfig{OperatorBudget: 64}
	if err := RunExperiment("fig1b", cfg, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "improvement ratio") {
		t.Fatalf("fig1b output: %q", sb.String())
	}
}

func TestExperimentsListComplete(t *testing.T) {
	// Every id advertised must dispatch (checked against tab1's cheap path
	// plus the error path; heavier ids are covered by the bench harness).
	ids := Experiments()
	if len(ids) != 14 {
		t.Fatalf("experiment ids %d want 14 (every paper table+figure)", len(ids))
	}
}

func TestExperimentConfigResolve(t *testing.T) {
	c := ExperimentConfig{OperatorBudget: 99, Batches: []int{4}}.resolve()
	if c.OperatorBudget != 99 || c.Batches[0] != 4 {
		t.Fatalf("resolve override broken: %+v", c)
	}
	full := ExperimentConfig{Full: true}.resolve()
	if full.OperatorBudget != 1000 || full.NetworkBudgetScale != 1.0 {
		t.Fatalf("full preset broken: %+v", full)
	}
}

// Worker count must never change TuneOperator results: trial evaluation and
// cost-model scoring are order-independent, and all bookkeeping commits in
// input order.
func TestTuneOperatorWorkerCountInvariant(t *testing.T) {
	w := GEMM(256, 256, 256, 1)
	base := Options{Scheduler: "harl", Trials: 64, Seed: 3}
	serial, err := TuneOperator(w, CPU(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		o := base
		o.Workers = workers
		res, err := TuneOperator(w, CPU(), o)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecSeconds != serial.ExecSeconds || res.SearchSeconds != serial.SearchSeconds ||
			res.BestSchedule != serial.BestSchedule || res.Trials != serial.Trials {
			t.Fatalf("workers=%d diverged from serial: %+v vs %+v", workers, res, serial)
		}
		for i, v := range serial.BestLog {
			if res.BestLog[i] != v {
				t.Fatalf("workers=%d: best log entry %d diverged", workers, i)
			}
		}
	}
}

// The concurrent network scheduler's determinism contract at the public API:
// same seed, workers=1 vs workers=8, identical outcome.
func TestTuneNetworkWorkerCountInvariant(t *testing.T) {
	run := func(workers int) NetworkResult {
		res, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "harl", Trials: 330, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if serial.EstimatedSeconds != parallel.EstimatedSeconds ||
		serial.MeasuredSeconds != parallel.MeasuredSeconds ||
		serial.Trials != parallel.Trials ||
		serial.SearchSeconds != parallel.SearchSeconds {
		t.Fatalf("workers=1 vs 8 diverged:\n%+v\n%+v", serial, parallel)
	}
	for i := range serial.Breakdown {
		if serial.Breakdown[i] != parallel.Breakdown[i] {
			t.Fatalf("breakdown row %d diverged: %+v vs %+v", i, serial.Breakdown[i], parallel.Breakdown[i])
		}
	}
}

// The parallel network path must keep the serial path's result invariants.
func TestTuneNetworkParallelResultShape(t *testing.T) {
	res, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "random", Trials: 330, Workers: -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.EstimatedSeconds, 1) || res.EstimatedSeconds <= 0 {
		t.Fatalf("estimated %g", res.EstimatedSeconds)
	}
	if res.MeasuredSeconds <= res.EstimatedSeconds {
		t.Fatal("measured must exceed estimated (communication overhead)")
	}
	if len(res.Breakdown) != 10 {
		t.Fatalf("BERT breakdown rows %d", len(res.Breakdown))
	}
	sum := 0.0
	for _, b := range res.Breakdown {
		sum += b.Contribution
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("contributions sum %f", sum)
	}
	if res.Trials < 330 {
		t.Fatalf("budget not exhausted: %d", res.Trials)
	}
	if _, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "nope", Workers: 2}); err == nil {
		t.Fatal("unknown scheduler must error on the parallel path")
	}
}

func TestRecordLogAndResume(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "tune.jsonl")
	w := GEMM(128, 128, 128, 1)
	o := Options{Scheduler: "harl", Trials: 48, Seed: 3, RecordLog: logPath}
	res1, err := TuneOperator(w, CPU(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res1.WarmStarted {
		t.Fatal("cold run must not report a warm start")
	}

	recs, err := LoadRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res1.Trials {
		t.Fatalf("%d records for %d trials", len(recs), res1.Trials)
	}
	for _, r := range recs {
		if r.Workload != w.Fingerprint() || r.SchemaVersion != 1 {
			t.Fatalf("record %+v", r)
		}
	}
	best, ok, err := BestRecord(logPath, w, CPU())
	if err != nil || !ok {
		t.Fatalf("best record missing (%v)", err)
	}
	if 1/best.ExecSeconds <= 0 {
		t.Fatalf("degenerate best %+v", best)
	}

	// Pure cache replay: a negative trial budget plus -resume recovers the
	// prior best exactly, measuring nothing.
	res2, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: -1, Seed: 3, ResumeFrom: logPath})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.WarmStarted || res2.Trials != 0 {
		t.Fatalf("replay run: %+v", res2)
	}
	if res2.ExecSeconds != res1.ExecSeconds || res2.GFLOPS != res1.GFLOPS {
		t.Fatalf("replay diverged: %+v vs %+v", res2, res1)
	}
	if res2.BestSchedule != res1.BestSchedule {
		t.Fatalf("replay schedule %q want %q", res2.BestSchedule, res1.BestSchedule)
	}

	// Resuming while appending to the same file is allowed; the continued
	// run can only improve on the cached best.
	res3, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: 32, Seed: 4, RecordLog: logPath, ResumeFrom: logPath})
	if err != nil {
		t.Fatal(err)
	}
	if !res3.WarmStarted {
		t.Fatal("same-file resume must warm-start")
	}
	recs2, err := LoadRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != res1.Trials+res3.Trials {
		t.Fatalf("log grew to %d records, want %d", len(recs2), res1.Trials+res3.Trials)
	}
}

func TestRecordLogJournalsAreWorkerInvariant(t *testing.T) {
	dir := t.TempDir()
	run := func(workers int) []byte {
		path := filepath.Join(dir, fmt.Sprintf("w%d.jsonl", workers))
		_, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "harl", Trials: 330, Seed: 3, Workers: workers, RecordLog: path})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	j1, j8 := run(1), run(8)
	if len(j1) == 0 {
		t.Fatal("journal empty")
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("TuneNetwork journals diverged between workers=1 and workers=8")
	}
}

func TestTuneNetworkResume(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "net.jsonl")
	o := Options{Scheduler: "random", Trials: 330, Seed: 3, Workers: 2, RecordLog: logPath}
	if _, err := TuneNetwork("bert", 1, CPU(), o); err != nil {
		t.Fatal(err)
	}
	res, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "random", Trials: -1, Seed: 3, Workers: 2, ResumeFrom: logPath})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted != 10 {
		t.Fatalf("warm-started %d of 10 BERT subgraphs", res.WarmStarted)
	}
	if math.IsInf(res.EstimatedSeconds, 1) || res.Trials != 0 {
		t.Fatalf("replay run: estimated=%g trials=%d", res.EstimatedSeconds, res.Trials)
	}
}

func TestTargetByNameErrorListsPlatforms(t *testing.T) {
	_, err := TargetByName("quantum")
	if err == nil {
		t.Fatal("unknown target must error")
	}
	for _, name := range Targets() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not mention %q", err, name)
		}
	}
	for _, name := range Targets() {
		if _, err := TargetByName(name); err != nil {
			t.Fatalf("listed target %q must resolve: %v", name, err)
		}
	}
}

func TestWriteBenchSummary(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBenchSummary(dir, "tab1", ExperimentConfig{}, time.Second, "row\n")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_tab1.json" {
		t.Fatalf("summary path %q", path)
	}
	var got map[string]any
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got["experiment"] != "tab1" || got["output"] != "row\n" {
		t.Fatalf("summary %v", got)
	}
	if got["duration_ms"].(float64) != 1000 {
		t.Fatalf("duration %v", got["duration_ms"])
	}
}

func TestLoadRecordsMissingFile(t *testing.T) {
	if _, err := LoadRecords(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing log must error")
	}
	if _, _, err := BestRecord(filepath.Join(t.TempDir(), "absent.jsonl"), GEMM(8, 8, 8, 1), CPU()); err == nil {
		t.Fatal("missing log must error")
	}
}

func TestReplayCacheMissErrors(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.jsonl")
	if _, err := TuneOperator(GEMM(64, 64, 64, 1), CPU(), Options{Scheduler: "random", Trials: 16, RecordLog: logPath}); err != nil {
		t.Fatal(err)
	}
	// A different shape misses the cache; with no trial budget the replay
	// must fail loudly instead of returning an all-zero result.
	if _, err := TuneOperator(GEMM(128, 64, 64, 1), CPU(), Options{Trials: -1, ResumeFrom: logPath}); err == nil {
		t.Fatal("operator replay cache miss must error")
	}
	if _, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "random", Trials: -1, Workers: 2, ResumeFrom: logPath}); err == nil {
		t.Fatal("network replay cache miss must error")
	}
	if _, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "random", Trials: -1, ResumeFrom: logPath}); err == nil {
		t.Fatal("serial network replay cache miss must error")
	}
}

func TestTuneNetworkBadSchedulerDoesNotCreateLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.jsonl")
	if _, err := TuneNetwork("bert", 1, CPU(), Options{Scheduler: "bogus", RecordLog: path, Workers: 2}); err == nil {
		t.Fatal("bad scheduler must error")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("bad scheduler run must not create the record log")
	}
}

// committedPretrainJournal is the tuning journal committed for the offline
// pretraining workflow (GEMM 256^3 b1 on cpu, scheduler "harl", 96 trials,
// seed 7 — regenerate with:
// go run ./cmd/harl-tune -op gemm -shape 256,256,256 -scheduler harl -trials 96 -seed 7 -log examples/pretrain/gemm-cpu.jsonl).
const committedPretrainJournal = "examples/pretrain/gemm-cpu.jsonl"

func pretrainWorkload() Workload { return GEMM(256, 256, 256, 1) }

// trialsToReach returns the 1-based trial at which bestLog first reached the
// target, or -1 if it never did.
func trialsToReach(bestLog []float64, target float64) int {
	for i, e := range bestLog {
		if e <= target {
			return i + 1
		}
	}
	return -1
}

func TestPretrainReachesJournalBestFaster(t *testing.T) {
	w := pretrainWorkload()
	best, ok, err := BestRecord(committedPretrainJournal, w, CPU())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("committed journal has no best record for the workload")
	}
	opts := Options{Scheduler: "harl", Trials: 160, Seed: 1}
	cold, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.PretrainFrom = committedPretrainJournal
	pre, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Pretrained || pre.CostModelSamples <= cold.CostModelSamples {
		t.Fatalf("pretrained run: pretrained=%v samples=%d (cold %d)",
			pre.Pretrained, pre.CostModelSamples, cold.CostModelSamples)
	}
	preReach := trialsToReach(pre.BestLog, best.ExecSeconds)
	coldReach := trialsToReach(cold.BestLog, best.ExecSeconds)
	if preReach < 0 {
		t.Fatalf("pretrained run never reached the journal best %.6g (got %.6g)",
			best.ExecSeconds, pre.ExecSeconds)
	}
	if coldReach >= 0 && preReach >= coldReach {
		t.Fatalf("pretraining did not help: cold reached at trial %d, pretrained at %d", coldReach, preReach)
	}
	t.Logf("journal best %.6g: cold reached at trial %d, pretrained at trial %d", best.ExecSeconds, coldReach, preReach)
}

func TestPretrainJournalsAreWorkerInvariant(t *testing.T) {
	w := pretrainWorkload()
	dir := t.TempDir()
	logs := make([][]byte, 0, 2)
	var results []Result
	for _, workers := range []int{1, 3} {
		path := filepath.Join(dir, fmt.Sprintf("w%d.jsonl", workers))
		res, err := TuneOperator(w, CPU(), Options{
			Scheduler:    "harl",
			Trials:       64,
			Seed:         11,
			Workers:      workers,
			PretrainFrom: committedPretrainJournal,
			RecordLog:    path,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, data)
		results = append(results, res)
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("pretrained journals differ between workers=1 and workers=3")
	}
	if results[0].ExecSeconds != results[1].ExecSeconds || results[0].BestSchedule != results[1].BestSchedule {
		t.Fatal("pretrained results differ between worker counts")
	}
	if !results[0].Pretrained || !results[1].Pretrained {
		t.Fatal("both runs must report pretraining")
	}
}

func TestTrainModelDeterministic(t *testing.T) {
	w := pretrainWorkload()
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	st, err := TrainModel(committedPretrainJournal, []Workload{w}, CPU(), a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 96 || st.Workloads != 1 || st.Skipped != 0 || !st.Trained || st.Samples != 96 {
		t.Fatalf("train stats %+v", st)
	}
	if _, err := TrainModel(committedPretrainJournal, []Workload{w}, CPU(), b); err != nil {
		t.Fatal(err)
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("same journal produced different checkpoints")
	}
	// No matching records: the foreign-workload fit must fail loudly.
	if _, err := TrainModel(committedPretrainJournal, []Workload{GEMM(64, 64, 64, 1)}, CPU(), a); err == nil {
		t.Fatal("foreign workload must error")
	}
	if _, err := TrainModel(committedPretrainJournal, nil, CPU(), a); err == nil {
		t.Fatal("empty workload set must error")
	}
	if _, err := TrainModel(filepath.Join(dir, "missing.jsonl"), []Workload{w}, CPU(), a); err == nil {
		t.Fatal("missing journal must error")
	}
}

func TestModelCheckpointAcrossRuns(t *testing.T) {
	w := pretrainWorkload()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "model.json")
	first, err := TuneOperator(w, CPU(), Options{Scheduler: "ansor", Trials: 48, Seed: 5, ModelOut: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if first.Pretrained {
		t.Fatal("cold run must not report pretraining")
	}
	second, err := TuneOperator(w, CPU(), Options{Scheduler: "ansor", Trials: 48, Seed: 6, ModelIn: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Pretrained {
		t.Fatal("model-in run must report pretraining")
	}
	if second.CostModelSamples != first.CostModelSamples+second.Trials {
		t.Fatalf("model-in run holds %d samples, want %d carried + %d new",
			second.CostModelSamples, first.CostModelSamples, second.Trials)
	}
	if _, err := TuneOperator(w, CPU(), Options{Scheduler: "ansor", Trials: 16, ModelIn: filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing model-in must error")
	}
	if _, err := TuneOperator(w, CPU(), Options{Scheduler: "ansor", Trials: 16, PretrainFrom: filepath.Join(dir, "missing.jsonl")}); err == nil {
		t.Fatal("missing pretrain log must error")
	}
}

func TestTuneNetworkModelSeeding(t *testing.T) {
	dir := t.TempDir()
	opCkpt := filepath.Join(dir, "op.json")
	if _, err := TrainModel(committedPretrainJournal, []Workload{pretrainWorkload()}, CPU(), opCkpt); err != nil {
		t.Fatal(err)
	}
	netCkpt := filepath.Join(dir, "net.json")
	for _, workers := range []int{0, 2} {
		// Scheduler "harl" queries the model for every scored candidate, so
		// this also pins down that a checkpoint from one workload structure
		// cannot crash predictions on an incompatible one.
		res, err := TuneNetwork("bert", 1, CPU(), Options{
			Scheduler: "harl",
			Trials:    64,
			Seed:      4,
			Workers:   workers,
			ModelIn:   opCkpt,
			ModelOut:  netCkpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The GEMM-trained checkpoint seeds exactly BERT's structurally
		// compatible subgraphs (the GEMM family) — more than none, fewer
		// than all (Softmax, Batch_GEMM and element-wise dims differ).
		if res.Pretrained == 0 || res.Pretrained >= len(res.Breakdown) {
			t.Fatalf("workers=%d: %d of %d tasks pretrained", workers, res.Pretrained, len(res.Breakdown))
		}
		if res.CostModelSamples <= res.Trials {
			t.Fatalf("workers=%d: %d samples for %d trials (carried knowledge missing)", workers, res.CostModelSamples, res.Trials)
		}
		if res.CostModelRefits == 0 {
			t.Fatalf("workers=%d: no refits recorded", workers)
		}
		data, err := os.ReadFile(netCkpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) == 0 {
			t.Fatalf("workers=%d: empty network model checkpoint", workers)
		}
	}
}

func TestPretrainMismatchErrors(t *testing.T) {
	// A pretrain journal with no record for the run's workload on the target
	// is almost always a wrong shape/network/target; it must error rather
	// than silently run cold.
	if _, err := TuneOperator(GEMM(64, 64, 64, 1), CPU(), Options{
		Scheduler: "random", Trials: 16, PretrainFrom: committedPretrainJournal,
	}); err == nil || !strings.Contains(err.Error(), "pretrain") {
		t.Fatalf("foreign workload pretrain must error, got %v", err)
	}
	if _, err := TuneOperator(pretrainWorkload(), GPU(), Options{
		Scheduler: "random", Trials: 16, PretrainFrom: committedPretrainJournal,
	}); err == nil {
		t.Fatal("foreign target pretrain must error")
	}
	// A network where at least one subgraph matches is fine; one where none
	// match errors.
	if _, err := TuneNetwork("mobilenetv2", 1, CPU(), Options{
		Scheduler: "random", Trials: 32, PretrainFrom: committedPretrainJournal,
	}); err == nil {
		t.Fatal("network with no matching subgraphs must error")
	}
}

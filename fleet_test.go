package harl

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"harl/internal/fleet"
)

// tuneToJournal runs one operator tune with the given extra options and
// returns the journal bytes.
func tuneToJournal(t *testing.T, path string, mutate func(*Options)) Result {
	t.Helper()
	o := Options{Scheduler: "harl", Trials: 48, Seed: 3, Workers: 2, RecordLog: path}
	if mutate != nil {
		mutate(&o)
	}
	res, err := TuneOperator(GEMM(64, 64, 64, 1), CPU(), o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func readJournal(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatalf("journal %s is empty", path)
	}
	return data
}

// TestFleetJournalByteIdentity is the acceptance pin for the measurement
// fleet: the same tune measured through a harl-worker produces a tuning
// journal byte-identical to the in-process run, and identical results.
func TestFleetJournalByteIdentity(t *testing.T) {
	dir := t.TempDir()
	localLog := filepath.Join(dir, "local.jsonl")
	fleetLog := filepath.Join(dir, "fleet.jsonl")

	localRes := tuneToJournal(t, localLog, nil)

	wk, err := fleet.NewWorker(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()
	fleetRes := tuneToJournal(t, fleetLog, func(o *Options) { o.Fleet = []string{srv.URL} })

	if wk.Batches() == 0 || wk.Trials() == 0 {
		t.Fatalf("fleet run measured nothing remotely (batches=%d trials=%d)", wk.Batches(), wk.Trials())
	}
	if localRes.ExecSeconds != fleetRes.ExecSeconds || localRes.BestSchedule != fleetRes.BestSchedule {
		t.Fatalf("results diverged: local %v %q, fleet %v %q",
			localRes.ExecSeconds, localRes.BestSchedule, fleetRes.ExecSeconds, fleetRes.BestSchedule)
	}
	if !bytes.Equal(readJournal(t, localLog), readJournal(t, fleetLog)) {
		t.Fatal("fleet journal differs from in-process journal")
	}
}

// TestFleetWorkerKilledMidRun: a worker that dies partway through the run
// (here: starts refusing every request, exactly what a kill -9 looks like to
// the coordinator) must not change the journal by a byte — the pool ejects
// it and the reserved-seq fallback recomputes the same values in-process.
func TestFleetWorkerKilledMidRun(t *testing.T) {
	dir := t.TempDir()
	localLog := filepath.Join(dir, "local.jsonl")
	fleetLog := filepath.Join(dir, "fleet.jsonl")

	localRes := tuneToJournal(t, localLog, nil)

	wk, err := fleet.NewWorker(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	var measured atomic.Int64
	var killed atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			// A dead process answers nothing; dropping the connection is the
			// closest httptest equivalent.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			http.Error(w, "dead", http.StatusInternalServerError)
			return
		}
		if r.URL.Path == "/v1/measure" && measured.Add(1) == 2 {
			killed.Store(true)
		}
		wk.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	pool, err := DialFleetOptions([]string{srv.URL}, FleetOptions{
		Retries:        -1,
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	fleetRes := tuneToJournal(t, fleetLog, func(o *Options) { o.FleetPool = pool })

	st := pool.Stats()
	if st.BatchesDispatched == 0 {
		t.Fatalf("no batches reached the worker before the kill: %+v", st)
	}
	if st.Fallbacks == 0 {
		t.Fatalf("no in-process fallback after the kill: %+v", st)
	}
	if localRes.ExecSeconds != fleetRes.ExecSeconds || localRes.BestSchedule != fleetRes.BestSchedule {
		t.Fatalf("results diverged after mid-run kill: local %v %q, fleet %v %q",
			localRes.ExecSeconds, localRes.BestSchedule, fleetRes.ExecSeconds, fleetRes.BestSchedule)
	}
	if !bytes.Equal(readJournal(t, localLog), readJournal(t, fleetLog)) {
		t.Fatal("journal changed after mid-run worker death")
	}
	// Ejection takes EjectAfter consecutive observed failures, and the run
	// can finish within one probe period of the kill — give the health loop
	// time to notice the dead worker rather than racing it.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Stats().Ejections == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st2 := pool.Stats(); st2.Ejections == 0 {
		t.Fatalf("dead worker never ejected: %+v", st2)
	}
}

// TestFleetNetworkTune: the fleet seam reaches every task of a network run
// (the SeedCostModels path), on both the serial and the parallel scheduler.
func TestFleetNetworkTune(t *testing.T) {
	wk, err := fleet.NewWorker(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wk.Handler())
	defer srv.Close()

	for _, workers := range []int{0, 2} {
		dir := t.TempDir()
		localLog := filepath.Join(dir, "local.jsonl")
		fleetLog := filepath.Join(dir, "fleet.jsonl")
		o := Options{Scheduler: "harl", Trials: 330, Seed: 3, Workers: workers, RecordLog: localLog}
		if _, err := TuneNetwork("bert", 1, CPU(), o); err != nil {
			t.Fatal(err)
		}
		before := wk.Batches()
		o.RecordLog = fleetLog
		o.Fleet = []string{srv.URL}
		if _, err := TuneNetwork("bert", 1, CPU(), o); err != nil {
			t.Fatal(err)
		}
		if wk.Batches() == before {
			t.Fatalf("workers=%d: network run dispatched nothing to the fleet", workers)
		}
		if !bytes.Equal(readJournal(t, localLog), readJournal(t, fleetLog)) {
			t.Fatalf("workers=%d: fleet network journal differs from in-process", workers)
		}
	}
}

// Benchmarks that regenerate every table and figure of the paper at scaled
// budgets (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured results). Each experiment benchmark performs one
// full tuning comparison per iteration and reports the headline quantity of
// the corresponding figure as a custom metric. Component micro-benchmarks for
// the substrates follow at the bottom.
//
// Run everything:  go test -bench=. -benchmem
// One experiment:  go test -bench=BenchmarkFig5 -benchtime=1x
package harl

import (
	"fmt"
	"io"
	"testing"
	"time"

	"harl/internal/costmodel"
	"harl/internal/experiments"
	"harl/internal/hardware"
	"harl/internal/rl"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/sketch"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// benchCfg returns the budget-scaled experiment configuration used by the
// experiment benchmarks: small enough that the full bench suite completes in
// minutes, large enough that every comparison keeps its shape.
func benchCfg() experiments.Config {
	cfg := experiments.Scaled()
	cfg.OperatorBudget = 480
	cfg.ConfigsPerCategory = 1
	cfg.Batches = []int{1}
	cfg.NetworkBudgetScale = 0.015
	cfg.NetworkPlatforms = []string{"cpu"}
	return cfg
}

// BenchmarkFig1aGreedyAllocation regenerates Fig. 1(a): trials the greedy
// task scheduler wastes on the last 1% of BERT improvement.
func BenchmarkFig1aGreedyAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.GreedyAllocation(benchCfg(), io.Discard)
		b.ReportMetric(res.FractionWasted*100, "%trials-on-last-1pct")
	}
}

// BenchmarkFig1bUniformImprovement regenerates Fig. 1(b): the improvement
// distribution of uniform next-schedule selection.
func BenchmarkFig1bUniformImprovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.UniformImprovement(benchCfg(), io.Discard)
		b.ReportMetric(res.NearZeroFraction*100, "%moves-near-zero")
		b.ReportMetric(res.Summary.P50, "median-improvement")
	}
}

// BenchmarkFig1cFixedLengthWaste regenerates Fig. 1(c): critical-step
// positions of fixed-length (Flextensor) search paths.
func BenchmarkFig1cFixedLengthWaste(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.FixedLengthWaste(benchCfg(), io.Discard)
		b.ReportMetric(res.EarlyFraction*100, "%tracks-peaking-first-40pct")
	}
}

// BenchmarkFig5OperatorPerformance regenerates Fig. 5 (and Fig. 6's search
// times, which come from the same runs): Ansor vs HARL across the Table-6
// operator categories.
func BenchmarkFig5OperatorPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.OperatorGrid(benchCfg(), io.Discard)
		speedup, n := 0.0, 0
		for _, r := range rows {
			speedup += r.Speedup
			n++
		}
		b.ReportMetric(speedup/float64(n), "mean-harl/ansor-perf")
	}
}

// BenchmarkFig6OperatorSearchTime reports the Fig. 6 metric from the same
// grid: HARL's time to reach Ansor's final program quality.
func BenchmarkFig6OperatorSearchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.OperatorGrid(benchCfg(), io.Discard)
		ratio, n := 0.0, 0
		for _, r := range rows {
			if r.TimeRatio > 0 {
				ratio += r.TimeRatio
				n++
			}
		}
		b.ReportMetric(ratio/float64(n), "mean-harl/ansor-search-time")
	}
}

// BenchmarkFig7aAblationTrajectory regenerates Fig. 7(a): Ansor vs
// Hierarchical-RL vs HARL convergence on the 1024³ GEMM.
func BenchmarkFig7aAblationTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := experiments.AblationTrajectory(benchCfg(), io.Discard)
		b.ReportMetric(tr.FinalGF["harl"]/tr.FinalGF["ansor"], "harl/ansor-final-perf")
		b.ReportMetric(tr.FinalGF["hierarchical-rl"]/tr.FinalGF["ansor"], "hier-rl/ansor-final-perf")
	}
}

// BenchmarkFig7bAdaptiveStoppingHistogram regenerates Fig. 7(b): critical-
// step positions under fixed-length vs adaptive-stopping search.
func BenchmarkFig7bAdaptiveStoppingHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.CriticalSteps(benchCfg(), io.Discard)
		b.ReportMetric(res.AdaptiveLastDecile*100, "%adaptive-critical-in-last-10pct")
		b.ReportMetric(res.FixedLastDecile*100, "%fixed-critical-in-last-10pct")
	}
}

// BenchmarkFig8NetworkPerformance regenerates Fig. 8 (and Fig. 9's search
// times): end-to-end network tuning, Ansor vs HARL.
func BenchmarkFig8NetworkPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.NetworkGrid(benchCfg(), io.Discard)
		speedup, n := 0.0, 0
		for _, r := range rows {
			speedup += r.Speedup
			n++
		}
		b.ReportMetric(speedup/float64(n), "mean-harl/ansor-net-perf")
	}
}

// BenchmarkFig9NetworkSearchTime reports the Fig. 9 metric from the same grid.
func BenchmarkFig9NetworkSearchTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.NetworkGrid(benchCfg(), io.Discard)
		ratio, n := 0.0, 0
		for _, r := range rows {
			if r.AnsorTime > 0 {
				ratio += r.HARLTime / r.AnsorTime
				n++
			}
		}
		b.ReportMetric(ratio/float64(n), "mean-harl/ansor-net-search-time")
	}
}

// BenchmarkTable4BertBreakdown regenerates Table 4: the BERT subgraph
// breakdown with the subgraph-MAB ablation.
func BenchmarkTable4BertBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table4(benchCfg(), io.Discard)
		b.ReportMetric(res.MeasuredSpeedup, "measured-speedup")
		b.ReportMetric(res.EstimatedSpeedup, "estimated-speedup")
		b.ReportMetric(res.NoMABSpeedup, "no-mab-speedup")
	}
}

// BenchmarkFig10AllocationAblation regenerates Fig. 10: subgraph trial
// allocations with and without the subgraph MAB.
func BenchmarkFig10AllocationAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AllocationAblation(benchCfg(), io.Discard)
		gemmHARL, gemmNoMAB := 0, 0
		for _, r := range rows {
			if r.Subgraph != "Softmax" {
				gemmHARL += r.HARLTotal
				gemmNoMAB += r.NoMABTotal
			}
		}
		if gemmNoMAB > 0 {
			b.ReportMetric(float64(gemmHARL)/float64(gemmNoMAB), "gemm-trials-mab/greedy")
		}
	}
}

// BenchmarkTable7LambdaSensitivity regenerates Table 7: λ ∈ {10,20,40,80}.
func BenchmarkTable7LambdaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.LambdaSensitivity(benchCfg(), io.Discard)
		b.ReportMetric(rows[0].TimePerIter, "lambda10-time/iter")
		b.ReportMetric(rows[len(rows)-1].TimePerIter, "lambda80-time/iter")
	}
}

// BenchmarkTable8RhoSensitivity regenerates Table 8: ρ ∈ {0.75,0.5,0.25}.
func BenchmarkTable8RhoSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RhoSensitivity(benchCfg(), io.Discard)
		b.ReportMetric(rows[1].Perf, "rho0.5-perf")
		b.ReportMetric(rows[0].Perf, "rho0.75-perf")
	}
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkSimulatorExec measures one analytical performance evaluation.
func BenchmarkSimulatorExec(b *testing.B) {
	sg := workload.GEMM("g", 1, 1024, 1024, 1024)
	sim := hardware.NewSimulator(hardware.CPUXeon6226R())
	rng := xrand.New(1)
	sks := sketch.Generate(sg)
	s := schedule.NewRandom(sks[0], 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sim.Exec(s)
	}
}

// BenchmarkScheduleFeatures measures feature extraction: "cold" pays one
// Clone plus the full computation (the mutation-path cost — every Apply and
// Mutate produces a fresh schedule whose vector is computed on first read),
// "cached" is the memoized re-read every later consumer pays.
func BenchmarkScheduleFeatures(b *testing.B) {
	sg := workload.Conv2D("c", 1, 56, 56, 64, 64, 3, 1, 1)
	rng := xrand.New(1)
	s := schedule.NewRandom(sketch.Generate(sg)[0], 4, rng)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.Clone().Features()
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		s.Features()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Features()
		}
	})
}

// BenchmarkScoreBatch measures the engines' candidate-scoring hot path: 512
// candidates scored against a trained cost model through Task.ScoreBatch
// (memoized features, pooled chunk buffers, write-into batch prediction).
func BenchmarkScoreBatch(b *testing.B) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	rng := xrand.New(1)
	task := search.NewTask(sg, plat, hardware.NewMeasurer(hardware.NewSimulator(plat), rng.Split()), rng.Split())
	task.ExploreRandom(32)
	batch := make([]*schedule.Schedule, 512)
	for i := range batch {
		batch[i] = task.RandomSchedule(task.Sketches[i%len(task.Sketches)])
	}
	task.ScoreBatch(batch) // warm the feature memos and score buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = task.ScoreBatch(batch)
	}
}

// BenchmarkScheduleApply measures one joint action application.
func BenchmarkScheduleApply(b *testing.B) {
	sg := workload.GEMM("g", 1, 1024, 1024, 1024)
	rng := xrand.New(1)
	s := schedule.NewRandom(sketch.Generate(sg)[0], 4, rng)
	a := schedule.Action{Tiling: 5, ComputeAt: 2, Parallel: 2, Unroll: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = s.Apply(a)
	}
}

// BenchmarkCostModelRefit measures a full GBDT refit on 512 samples.
func BenchmarkCostModelRefit(b *testing.B) {
	rng := xrand.New(1)
	m := costmodel.New(costmodel.DefaultParams())
	for i := 0; i < 512; i++ {
		x := make([]float64, 24)
		y := 0.0
		for j := range x {
			x[j] = rng.Float64()
			y += x[j] * float64(j%5)
		}
		m.Add(x, y)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Refit()
	}
}

// BenchmarkCostModelPredict measures one prediction.
func BenchmarkCostModelPredict(b *testing.B) {
	rng := xrand.New(1)
	m := costmodel.New(costmodel.DefaultParams())
	x := make([]float64, 24)
	for i := 0; i < 256; i++ {
		for j := range x {
			x[j] = rng.Float64()
		}
		m.Add(x, x[0]+2*x[1])
	}
	m.Refit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

// BenchmarkRefit measures a full GBDT refit across training-set sizes — the
// cost that offline pretraining pays once up front and every measurement
// round pays again online.
func BenchmarkRefit(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("samples-%d", n), func(b *testing.B) {
			rng := xrand.New(1)
			m := costmodel.New(costmodel.DefaultParams())
			for i := 0; i < n; i++ {
				x := make([]float64, 24)
				y := 0.0
				for j := range x {
					x[j] = rng.Float64()
					y += x[j] * float64(j%5)
				}
				m.Add(x, y)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Refit()
			}
		})
	}
}

// BenchmarkPredictBatch measures the batched prediction path (one hot tree
// at a time over the whole feature matrix) against the sequential
// per-sample loop it replaced.
func BenchmarkPredictBatch(b *testing.B) {
	rng := xrand.New(1)
	m := costmodel.New(costmodel.DefaultParams())
	for i := 0; i < 512; i++ {
		x := make([]float64, 24)
		for j := range x {
			x[j] = rng.Float64()
		}
		m.Add(x, x[0]+2*x[1])
	}
	m.Refit()
	batch := make([][]float64, 256)
	for i := range batch {
		x := make([]float64, 24)
		for j := range x {
			x[j] = rng.Float64()
		}
		batch[i] = x
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.PredictBatch(batch)
		}
	})
	b.Run("sequential", func(b *testing.B) {
		out := make([]float64, len(batch))
		for i := 0; i < b.N; i++ {
			for j, x := range batch {
				out[j] = m.Predict(x)
			}
		}
	})
}

// BenchmarkRegistryResolve measures the amortization the best-schedule
// registry buys: the same GEMM request answered by a cold search (the price
// the first caller pays) versus a registry hit (what every later caller
// pays). The hit path is a fingerprint lookup plus one schedule
// reconstruction — no measurements, no model, no search.
func BenchmarkRegistryResolve(b *testing.B) {
	w := GEMM(256, 256, 256, 1)
	b.Run("cold-search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: 96, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Trials), "trials")
		}
	})
	b.Run("registry-hit", func(b *testing.B) {
		reg, err := OpenRegistry(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer reg.Close()
		if _, err := reg.ImportJournal("examples/pretrain/gemm-cpu.jsonl"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: 96, Seed: 7, Registry: reg})
			if err != nil {
				b.Fatal(err)
			}
			if !res.CacheHit {
				b.Fatal("expected a registry hit")
			}
			b.ReportMetric(float64(res.Trials), "trials")
		}
	})
}

// BenchmarkPPOStep measures one policy query plus one training tick.
func BenchmarkPPOStep(b *testing.B) {
	rng := xrand.New(1)
	agent := rl.NewAgent(24, []int{197, 3, 3, 3}, rl.DefaultConfig(), rng)
	state := make([]float64, 24)
	for i := range state {
		state[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := agent.Act(state)
		agent.Observe(rl.Transition{State: state, Acts: d.Acts, OldLogP: d.LogProb, Reward: 0.1, Value: d.Value})
		agent.Tick()
	}
}

// BenchmarkSketchGeneration measures sketch enumeration for a fused subgraph.
func BenchmarkSketchGeneration(b *testing.B) {
	sg := workload.Conv2DReLU("c", 1, 1, 56, 56, 64, 64, 3, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sketch.Generate(sg)
	}
}

// BenchmarkTuneParallel measures the wall-clock win of the concurrent
// multi-task scheduler: BERT's ten subgraphs tuned with the HARL engine at
// 1, 4 and 8 workers. Results are byte-identical across the sub-benchmarks
// (the determinism contract); only the wall-clock time changes. The reported
// trials/s metric is the throughput headline tracked by BENCH_*.json.
func BenchmarkTuneParallel(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			totalTrials := 0
			var estMs float64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := TuneNetwork("bert", 1, CPU(), Options{
					Scheduler: "harl",
					Trials:    480,
					Seed:      42,
					Workers:   workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				totalTrials += res.Trials
				estMs = res.EstimatedSeconds * 1e3
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(totalTrials)/elapsed, "trials/s")
			b.ReportMetric(estMs, "est-ms")
		})
	}
}

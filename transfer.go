package harl

import (
	"harl/internal/core"
	"harl/internal/costmodel"
	"harl/internal/registry"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/tunelog"
)

// transferProvider implements core.TransferProvider over a registry: when a
// task's own (workload, target, scheduler) key misses, it scans the
// registry's sorted record set for a donor key (registry.SelectDonor's
// deterministic policy — same workload on another target preferred, else a
// structurally compatible workload on the same target), fits a transfer
// model over every compatible donor record, and hands back the donor's best
// schedule as an unmeasured warm-start candidate. Structural compatibility
// is decided by deserializing a record's steps against the recipient task's
// sketches — success implies the feature dimensions match, which is the same
// gate checkpointed models use.
type transferProvider struct {
	reg       *Registry
	target    string
	scheduler string
}

func (p *transferProvider) TransferFor(t *search.Task) *core.TransferSeed {
	fp := t.Graph.Fingerprint()
	if rec, ok, err := p.reg.reg.Resolve(fp, p.target, p.scheduler); err == nil && ok {
		if _, serr := rec.Schedule(t.Sketches); serr == nil {
			// The task's own key hits and reconstructs: the warm-start path
			// owns it, transfer has nothing to add.
			return nil
		}
	}
	recs := p.reg.reg.Records()
	// Reconstruct each candidate record once; SelectDonor calls compatible
	// only for donor-eligible records, and its sorted iteration order makes
	// the sample order (and therefore the fitted model) deterministic.
	memo := make(map[string]*schedule.Schedule)
	var feats [][]float64
	var execs []float64
	compatible := func(rec tunelog.Record) bool {
		key := rec.Workload + "\x00" + rec.Target + "\x00" + rec.Scheduler
		if s, seen := memo[key]; seen {
			return s != nil
		}
		s, err := rec.Schedule(t.Sketches)
		if err != nil {
			memo[key] = nil
			return false
		}
		memo[key] = s
		feats = append(feats, s.Features())
		execs = append(execs, rec.ExecSec)
		return true
	}
	donor, ok := registry.SelectDonor(recs, fp, p.target, p.scheduler, compatible)
	if !ok {
		return nil
	}
	return &core.TransferSeed{
		Model: costmodel.TransferModel(feats, execs),
		Seed:  memo[donor.Rec.Workload+"\x00"+donor.Rec.Target+"\x00"+donor.Rec.Scheduler],
		Donor: donor.Rec.Workload + "@" + donor.Rec.Target,
	}
}

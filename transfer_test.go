package harl

import (
	"strings"
	"testing"
)

// importedRegistry opens a fresh registry seeded from the committed pretrain
// journal — the donor pool every transfer test scans.
func importedRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	n, err := reg.ImportJournal(committedPretrainJournal)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("journal import seeded no keys")
	}
	return reg
}

// TestTransferWarmStartReachesBestFaster mirrors
// TestPretrainReachesJournalBestFaster across targets: the committed journal
// tuned GEMM 256^3 on cpu; tuning the same workload on gpu misses the
// registry, and with Options.Transfer the cpu key becomes the donor — its
// best schedule is measured as the first candidate and its records seed the
// cost model. The warm search must reach both the donor journal's best cost
// and the full cold search's final best in a quarter of the cold trial
// budget or less.
func TestTransferWarmStartReachesBestFaster(t *testing.T) {
	w := pretrainWorkload()
	donorBest, ok, err := BestRecord(committedPretrainJournal, w, CPU())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("committed journal has no best record for the workload")
	}
	opts := Options{Scheduler: "harl", Trials: 160, Seed: 1}
	cold, err := TuneOperator(w, GPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.WarmTransfer != "" {
		t.Fatalf("cold run claims a donor %q", cold.WarmTransfer)
	}
	opts.Registry = importedRegistry(t)
	opts.Transfer = true
	warm, err := TuneOperator(w, GPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(warm.WarmTransfer, "@"+CPU().Name()) {
		t.Fatalf("expected a cpu donor, got %q", warm.WarmTransfer)
	}
	if !warm.Pretrained {
		t.Fatal("transfer must seed the cost model (Pretrained)")
	}
	if warm.Trials != opts.Trials || warm.Measured != warm.Trials {
		t.Fatalf("trial accounting: trials=%d measured=%d want %d (transfer alone skips nothing)",
			warm.Trials, warm.Measured, opts.Trials)
	}
	// The literal acceptance bar: the donor journal's best cost, reached in
	// <= 1/4 of the cold trial count.
	donorReach := trialsToReach(warm.BestLog, donorBest.ExecSeconds)
	if donorReach < 0 || donorReach*4 > cold.Trials {
		t.Fatalf("donor-journal best %.6g reached at trial %d, want <= %d",
			donorBest.ExecSeconds, donorReach, cold.Trials/4)
	}
	// The stronger bar: the quality the cold search only reaches with its
	// full budget, in <= 1/4 of that budget.
	coldReach := trialsToReach(cold.BestLog, cold.ExecSeconds)
	warmReach := trialsToReach(warm.BestLog, cold.ExecSeconds)
	if warmReach < 0 || warmReach*4 > cold.Trials {
		t.Fatalf("cold final best %.6g: cold reached at trial %d, warm at %d (want <= %d)",
			cold.ExecSeconds, coldReach, warmReach, cold.Trials/4)
	}
	t.Logf("donor %s: donor best at trial %d, cold final best at trial %d (cold needed %d)",
		warm.WarmTransfer, donorReach, warmReach, coldReach)
}

// TestTransferIncompatibleDonorSkipped: a registry whose only records cannot
// reconstruct against the recipient's sketches (a GEMM journal donating to a
// 2-D convolution) must be skipped loudly — no donor reported, no model
// seeded, and the run degrades to a plain cold search instead of erroring.
func TestTransferIncompatibleDonorSkipped(t *testing.T) {
	reg := importedRegistry(t)
	w := Conv2D(28, 28, 32, 32, 3, 1, 1, 1)
	res, err := TuneOperator(w, CPU(), Options{
		Scheduler: "harl", Trials: 48, Seed: 1, Registry: reg, Transfer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmTransfer != "" {
		t.Fatalf("incompatible donor must be skipped, got %q", res.WarmTransfer)
	}
	if res.Pretrained {
		t.Fatal("incompatible donor must not seed the cost model")
	}
	if res.ExecSeconds <= 0 || res.Trials != 48 {
		t.Fatalf("cold fallback broken: exec=%g trials=%d", res.ExecSeconds, res.Trials)
	}
}

// TestTransferNeedsRegistry: Options.Transfer without a Registry is a
// configuration error, for operator and network sessions alike.
func TestTransferNeedsRegistry(t *testing.T) {
	if _, err := TuneOperator(pretrainWorkload(), CPU(), Options{Transfer: true, Trials: 8}); err == nil {
		t.Fatal("operator session must reject Transfer without Registry")
	}
	if _, err := TuneNetwork("bert", 1, CPU(), Options{Transfer: true, Trials: 8, Workers: 1}); err == nil {
		t.Fatal("network session must reject Transfer without Registry")
	}
}

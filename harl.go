// Package harl is a from-scratch Go reproduction of "HARL: Hierarchical
// Adaptive Reinforcement Learning Based Auto Scheduler for Neural Networks"
// (Zhang, He, Zhang — ICPP 2022).
//
// The package exposes the system's public surface: workloads (the paper's
// Table-6 tensor operators, the three benchmark networks, and custom
// operators), targets (simulated CPU/GPU platforms), scheduler presets (HARL
// and the baselines it is compared against), and the tuning entry points.
// The paper's full experiment grid is reachable through RunExperiment; the
// per-experiment index lives in DESIGN.md and measured results in
// EXPERIMENTS.md.
//
// Quick start:
//
//	w := harl.GEMM(512, 512, 512, 1)
//	res, err := harl.TuneOperator(w, harl.CPU(), harl.Options{Scheduler: "harl", Trials: 300})
//	if err != nil { ... }
//	fmt.Printf("%.1f GFLOP/s in %d trials\n", res.GFLOPS, res.Trials)
package harl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
	"time"

	"harl/internal/core"
	"harl/internal/costmodel"
	"harl/internal/experiments"
	"harl/internal/fleet"
	"harl/internal/hardware"
	"harl/internal/pretrain"
	"harl/internal/registry"
	"harl/internal/search"
	"harl/internal/sketch"
	"harl/internal/texpr"
	"harl/internal/tunelog"
	"harl/internal/workload"
)

// Target is an execution platform the auto-scheduler tunes for.
type Target struct {
	plat *hardware.Platform
}

// CPU returns the paper's CPU platform (Intel Xeon 6226R class, 32 cores,
// AVX-512).
func CPU() Target { return Target{hardware.CPUXeon6226R()} }

// GPU returns the paper's GPU platform (NVIDIA RTX 3090 class).
func GPU() Target { return Target{hardware.GPURTX3090()} }

// TargetByName resolves a platform short name (see Targets).
func TargetByName(name string) (Target, error) {
	if p := hardware.ByName(name); p != nil {
		return Target{p}, nil
	}
	return Target{}, fmt.Errorf("harl: unknown target %q (want %s)", name, strings.Join(hardware.PlatformNames(), " or "))
}

// Targets lists the accepted target platform names.
func Targets() []string { return hardware.PlatformNames() }

// Name returns the platform identifier.
func (t Target) Name() string { return t.plat.Name }

// Workload is a tuning target: one subgraph of tensor computation.
type Workload struct {
	sg *texpr.Subgraph
}

// Name returns the workload identifier.
func (w Workload) Name() string { return w.sg.Name }

// FLOPs returns the floating-point work of one execution.
func (w Workload) FLOPs() float64 { return w.sg.FLOPs() }

// Describe renders the workload's stage structure.
func (w Workload) Describe() string { return w.sg.String() }

// GEMM builds an M×K×N matrix multiplication workload (batch ≥ 1).
func GEMM(m, k, n, batch int) Workload {
	return Workload{workload.GEMM(fmt.Sprintf("GEMM-%dx%dx%d-b%d", m, k, n, batch), batch, m, k, n)}
}

// Conv1D builds a 1-D convolution workload with the paper's C1D parameter
// convention (L, Cin, Cout, kernel, stride, padding).
func Conv1D(l, cin, cout, kernel, stride, pad, batch int) Workload {
	return Workload{workload.Conv1D(fmt.Sprintf("C1D-%d-%d-%d-b%d", l, cin, cout, batch), batch, l, cin, cout, kernel, stride, pad)}
}

// Conv2D builds a 2-D convolution workload (H, W, Cin, Cout, kernel, stride,
// padding).
func Conv2D(h, w, cin, cout, kernel, stride, pad, batch int) Workload {
	return Workload{workload.Conv2D(fmt.Sprintf("C2D-%dx%d-%d-%d-b%d", h, w, cin, cout, batch), batch, h, w, cin, cout, kernel, stride, pad)}
}

// Conv3D builds a 3-D convolution workload.
func Conv3D(d, h, w, cin, cout, kernel, stride, pad, batch int) Workload {
	return Workload{workload.Conv3D(fmt.Sprintf("C3D-%dx%dx%d-%d-%d-b%d", d, h, w, cin, cout, batch), batch, d, h, w, cin, cout, kernel, stride, pad)}
}

// ConvT2D builds a transposed 2-D convolution workload.
func ConvT2D(h, w, cin, cout, kernel, stride, pad, batch int) Workload {
	return Workload{workload.ConvT2D(fmt.Sprintf("T2D-%dx%d-%d-%d-b%d", h, w, cin, cout, batch), batch, h, w, cin, cout, kernel, stride, pad)}
}

// FusedGEMM builds a GEMM followed by a fused elementwise epilogue (bias +
// activation with the given per-element FLOP cost), exercising the sketch
// generator's Tiling-with-Fusion rule.
func FusedGEMM(m, k, n, batch int, epilogueFLOPs float64) Workload {
	return Workload{workload.GEMMEpilogue(fmt.Sprintf("GEMM+ep-%dx%dx%d", m, k, n), batch, m, k, n, epilogueFLOPs)}
}

// TableSixWorkloads returns the four Table-6 configurations of an operator
// category ("GEMM-S", "GEMM-M", "GEMM-L", "C1D", "C2D", "C3D", "T2D").
func TableSixWorkloads(category string, batch int) []Workload {
	var out []Workload
	for _, sg := range workload.SuiteFor(category, batch) {
		out = append(out, Workload{sg})
	}
	return out
}

// CustomAxis describes one iteration axis of a custom operator.
type CustomAxis struct {
	Name   string
	Extent int
	Reduce bool
}

// CustomOp builds a single-stage custom compute workload from its iteration
// domain. flopsPerPoint is the FLOP count per point of the full domain;
// reuse marks the stage as data-reusing (enables tiling/cache-write sketch
// rules). Input accesses are synthesized: one tensor over the spatial axes
// and, if reductions exist, one over (reduce × last spatial) — the shape a
// contraction exhibits.
func CustomOp(name string, axes []CustomAxis, flopsPerPoint float64, reuse bool) (Workload, error) {
	st := &texpr.Stage{
		Name:          "custom",
		Kind:          texpr.ComputeHeavy,
		FLOPsPerPoint: flopsPerPoint,
		HasDataReuse:  reuse,
	}
	var spDims, redDims []texpr.AxisRef
	for _, ax := range axes {
		if ax.Reduce {
			st.Reduce = append(st.Reduce, texpr.Iter{Name: ax.Name, Extent: ax.Extent, Kind: texpr.Reduction})
			redDims = append(redDims, texpr.AxisRef{Iter: len(st.Reduce) - 1, Reduce: true})
		} else {
			st.Spatial = append(st.Spatial, texpr.Iter{Name: ax.Name, Extent: ax.Extent, Kind: texpr.Spatial})
			spDims = append(spDims, texpr.AxisRef{Iter: len(st.Spatial) - 1})
		}
	}
	if len(st.Spatial) == 0 {
		return Workload{}, fmt.Errorf("harl: custom op %q needs at least one spatial axis", name)
	}
	if len(st.Reduce) > 0 {
		st.HasReductionParallel = true
		inDims := append(append([]texpr.AxisRef{}, spDims[:len(spDims)-1]...), redDims...)
		st.Inputs = append(st.Inputs, texpr.Access{Tensor: "A", Dims: inDims})
		st.Inputs = append(st.Inputs, texpr.Access{Tensor: "B", Dims: append(append([]texpr.AxisRef{}, redDims...), spDims[len(spDims)-1])})
	} else {
		st.Inputs = append(st.Inputs, texpr.Access{Tensor: "A", Dims: spDims})
	}
	sg, err := texpr.NewSubgraph(name, 1, st)
	if err != nil {
		return Workload{}, err
	}
	return Workload{sg}, nil
}

// Options configures a tuning run.
type Options struct {
	// Scheduler is a preset name: "harl" (default), "hierarchical-rl",
	// "harl-nomab", "ansor", "flextensor", "autotvm" or "random".
	Scheduler string
	// Trials is the hardware-measurement budget (0 selects the default of
	// 320; a negative value performs no new measurements at all — the pure
	// cache-replay path, useful with ResumeFrom to read back a prior best
	// without spending a single trial).
	Trials int
	// MeasureK is the measured candidates per round (default 16).
	MeasureK int
	// Seed makes the run reproducible (default 1).
	Seed uint64
	// Workers sizes the tuning worker pool; < 0 selects runtime.NumCPU().
	//
	// For TuneOperator, any worker count (including the 0/1 serial default)
	// produces byte-identical results — workers only cut wall-clock time.
	// For TuneNetwork, Workers >= 1 selects the concurrent multi-task
	// scheduler, whose results are likewise identical for every worker
	// count; Workers == 0 (the default) keeps the legacy round-sequential
	// network tuner with its SW-UCB subgraph bandit.
	Workers int
	// RecordLog, when non-empty, appends one JSONL tuning record per
	// measured trial to this file (created if missing). Records arrive in
	// measurement commit order, which is deterministic for every worker
	// count, so journals of equal runs are byte-identical.
	RecordLog string
	// ResumeFrom, when non-empty, warm-starts the run from an existing
	// record log: each workload is seeded with its best cached schedule for
	// the target, which is never re-measured. It may name the same file as
	// RecordLog (the log is read before tuning starts and only new
	// measurements are appended).
	ResumeFrom string
	// PretrainFrom, when non-empty, pretrains each task's cost model before
	// search starts by replaying the record log's matching measurements
	// (features are regenerated deterministically from the serialized
	// schedule steps). Unlike ResumeFrom this is model-only: no schedules
	// are seeded or skipped — the reward signal and the top-K ranking are
	// simply informed from round one, so the run reaches good programs in
	// fewer trials. It composes with ResumeFrom and preserves the
	// worker-count determinism contract.
	PretrainFrom string
	// ModelIn, when non-empty, loads a cost-model checkpoint (written by
	// ModelOut or harl-train) into every structurally compatible task —
	// equal feature dimension — before search starts; each task refits its
	// own copy as new measurements arrive, and incompatible tasks keep their
	// cold model.
	ModelIn string
	// ModelOut, when non-empty, saves the run's trained cost model as a
	// versioned checkpoint after tuning: the task's model for an operator
	// run; for a network run, the merged model over the structurally
	// compatible majority of its subgraph tasks (feature dimensions vary
	// across workload structures, and model knowledge only transfers
	// between equal dimensions).
	ModelOut string
	// Registry, when non-nil, puts a persistent best-schedule cache in front
	// of the tuner. An operator run whose (workload, target, scheduler) key
	// resolves returns the cached best instantly — zero measured trials,
	// Result.CacheHit set — and, because no session runs, produces no
	// session artifacts: RecordLog gains no records and ModelOut is not
	// written. A network run seeds every resolving subgraph and skips the
	// search entirely when all of them hit. After the run, the bests found
	// are published back — including the partial bests of a cancelled or
	// plateau-stopped session (publishing keeps better incumbents, so a
	// partial best can only improve a key, never weaken it) — and the next
	// identical request is a hit. Open one with OpenRegistry; a single
	// Registry may be shared by concurrent tuning sessions in one process
	// (the harl-serve daemon does).
	Registry *Registry
	// OnProgress, when non-nil, receives one ProgressEvent per committed
	// round/wave, synchronously on the tuning goroutine, in an order that is
	// byte-identical for every worker-pool width (see ProgressEvent; as with
	// results, Workers == 0 on a network run selects the legacy serial
	// scheduler, whose deterministic stream is its own). The harl-serve
	// daemon fans this stream out over SSE; harl-tune -progress renders it
	// locally.
	OnProgress func(ProgressEvent)
	// Plateau, when its Window is > 0, stops the session early once the
	// convergence trajectory flatlines (see Plateau): the session takes the
	// checkpoint-on-cancel path and the result reports PlateauStopped.
	Plateau Plateau
	// Fleet, when non-empty, lists harl-worker endpoints ("host:port" or
	// full URLs) and fans the run's hardware-measurement batches out to
	// them. Remote measurement reproduces the in-process values bit-exactly
	// (the noise function is pure in schedule, repetition index and noise
	// seed, and all commit-order bookkeeping stays local), so journals and
	// results are byte-identical to an in-process run — a dead or slow
	// worker costs throughput, never correctness: failed batches are retried
	// on the rotation and finally measured in-process. The run dials its own
	// pool and closes it when done; a daemon serving many runs should share
	// one pool via FleetPool instead.
	Fleet []string
	// FleetPool, when non-nil, attaches an already-dialed shared fleet (see
	// DialFleet) — one health-checked worker pool serving every run, which
	// is how harl-serve wires it. Takes precedence over Fleet. The caller
	// keeps ownership: Close is never called by the run.
	FleetPool *Fleet
	// Transfer, when set (requires Registry), makes a registry miss cheap
	// instead of cold: the run scans the registry for a donor key — the same
	// workload on another target, or a structurally compatible workload on
	// the same target — and seeds the session with a cost model fitted over
	// the donor records plus the donor's best schedule as the first measured
	// candidate. Donor selection is deterministic (pure over the sorted
	// record set), so transfer preserves the worker-invariance contract. The
	// chosen donor key is reported in Result.WarmTransfer. A run whose own
	// key hits, or for which no compatible donor exists, is unaffected.
	Transfer bool
	// AdaptiveSampling, when enabled, thins hardware measurement inside each
	// search round: the round's candidates are clustered in feature space
	// (deterministically, seeded from the task RNG) and only cluster
	// representatives are measured; the rest train the cost model from their
	// representative's result and charge a trial without touching hardware.
	// The measured fraction shrinks as the model's predicted-vs-measured
	// error tightens, floored at MinBatch. Result.Trials keeps its budget
	// meaning; Result.Measured / Result.MeasureSaved report the split.
	AdaptiveSampling AdaptiveSampling
}

// AdaptiveSampling configures Options.AdaptiveSampling. Zero fields take
// defaults (MinBatch 8, ErrWindow 32).
type AdaptiveSampling struct {
	// Enabled turns adaptive measurement sampling on.
	Enabled bool
	// MinBatch is the exploration floor: a round never measures fewer than
	// this many representatives.
	MinBatch int
	// ErrWindow is how many recent predicted-vs-measured errors set the
	// shrink factor; until it fills, every candidate is measured.
	ErrWindow int
}

func (o Options) withDefaults() Options {
	if o.Scheduler == "" {
		o.Scheduler = "harl"
	}
	if o.Trials == 0 {
		o.Trials = 320
	} else if o.Trials < 0 {
		o.Trials = 0
	}
	if o.MeasureK <= 0 {
		o.MeasureK = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Schedulers lists the available scheduler presets.
func Schedulers() []string { return core.SchedulerNames() }

// SchedulerByName validates a scheduler preset name, echoing it back or
// returning an error that lists the valid presets — the one place the
// valid-name wording lives (harl-tune and the serving layer both use it).
func SchedulerByName(name string) (string, error) {
	if slices.Contains(Schedulers(), name) {
		return name, nil
	}
	return "", fmt.Errorf("harl: unknown scheduler %q (want %s)", name, strings.Join(Schedulers(), ", "))
}

// Result summarizes an operator tuning run.
type Result struct {
	Scheduler string
	// ExecSeconds is the (noise-free) execution time of the best program.
	ExecSeconds float64
	GFLOPS      float64
	// Trials is the charged-trial count — the budget the search spent.
	// Without adaptive sampling every charged trial is a measurement; with
	// it, Measured carries the real hardware-measurement count and
	// MeasureSaved the backfilled remainder (Trials = Measured +
	// MeasureSaved).
	Trials       int
	Measured     int
	MeasureSaved int
	// SearchSeconds is the total simulated tuning time.
	SearchSeconds float64
	// BestSchedule describes the winning configuration.
	BestSchedule string
	// BestLog is the best-so-far execution time after each trial.
	BestLog []float64
	// WarmStarted reports whether a cached record from Options.ResumeFrom
	// seeded the run.
	WarmStarted bool
	// WarmTransfer names the donor registry key ("workload@target") that
	// warm-started the run via Options.Transfer; empty when no transfer
	// happened (own-key hit, no compatible donor, or Transfer off).
	WarmTransfer string
	// CostModelSamples is the cost model's final training-set size and
	// CostModelRefits its refit count — what the model knew by the end.
	CostModelSamples int
	CostModelRefits  int
	// Pretrained reports whether the cost model carried offline knowledge
	// (Options.PretrainFrom or Options.ModelIn) before the first round.
	Pretrained bool
	// CacheHit reports that Options.Registry resolved the request and the
	// result was served from the best-schedule cache without measuring a
	// single trial.
	CacheHit bool
	// Cancelled reports that the run's context was cancelled before the
	// trial budget was spent. The result carries the partial best found so
	// far; the record log (Options.RecordLog) holds every committed
	// measurement and the model checkpoint (Options.ModelOut) was still
	// written, so a cancelled session is fully resumable.
	Cancelled bool
	// PlateauStopped reports that Options.Plateau ended the search early
	// because the convergence trajectory flatlined. The session went through
	// the same checkpoint path as a cancellation — journal flushed, model
	// saved, partial best published to Options.Registry — but the run is a
	// completed search, not a cancelled one: Cancelled stays false.
	PlateauStopped bool
}

// hooks resolves the Options journal fields into core tuning hooks plus a
// close function for the opened journal (a no-op when none was opened). The
// resume log is read before the record log is opened for append, so the two
// may name the same file.
func (o Options) hooks() (core.TuneHooks, func() error, error) {
	var h core.TuneHooks
	closeFn := func() error { return nil }
	if o.ResumeFrom != "" {
		db, err := tunelog.LoadFile(o.ResumeFrom)
		if err != nil {
			return h, closeFn, err
		}
		h.Warm = db
	}
	if o.PretrainFrom != "" {
		// The pretrain log may equal the resume log; load it once.
		if o.PretrainFrom == o.ResumeFrom {
			h.Pretrain = h.Warm
		} else {
			db, err := tunelog.LoadFile(o.PretrainFrom)
			if err != nil {
				return h, closeFn, err
			}
			h.Pretrain = db
		}
	}
	if o.ModelIn != "" {
		m, err := costmodel.LoadFile(o.ModelIn)
		if err != nil {
			return h, closeFn, err
		}
		h.Model = m
	}
	if o.RecordLog != "" {
		jr, err := tunelog.OpenJournal(o.RecordLog)
		if err != nil {
			return h, closeFn, err
		}
		h.Journal = jr
		closeFn = jr.Close
	}
	if o.AdaptiveSampling.Enabled {
		h.Sampling = search.SamplerConfig{
			Enabled:   true,
			MinBatch:  o.AdaptiveSampling.MinBatch,
			ErrWindow: o.AdaptiveSampling.ErrWindow,
		}
	}
	if o.FleetPool != nil {
		h.Evaluators = o.FleetPool.pool
	} else if len(o.Fleet) > 0 {
		p, err := fleet.NewPool(o.Fleet, fleet.Config{})
		if err != nil {
			return h, closeFn, err
		}
		h.Evaluators = p
		inner := closeFn
		closeFn = func() error {
			p.Close()
			return inner()
		}
	}
	return h, closeFn, nil
}

// checkPretrainMatches guards the PretrainFrom path: a journal with no
// record for any of the run's workloads on the target would silently produce
// a cold run, so — matching TrainModel's behavior — it is an error instead
// (almost always a wrong shape, network or -target).
func checkPretrainMatches(db *tunelog.Database, path string, graphs []*texpr.Subgraph, plat *hardware.Platform) error {
	if db == nil {
		return nil
	}
	for _, sg := range graphs {
		if _, ok := db.Best(sg.Fingerprint(), plat.Name); ok {
			return nil
		}
	}
	return fmt.Errorf("harl: no records in %q match the run's workloads on %s to pretrain from", path, plat.Name)
}

// saveModel writes a cost model checkpoint for Options.ModelOut through the
// Checkpointer interface (skipping silently is not an option: a run asked to
// produce an artifact must produce it or fail).
func saveModel(path string, cm costmodel.CostModel) error {
	ck, ok := cm.(costmodel.Checkpointer)
	if !ok {
		return fmt.Errorf("harl: cost model %T cannot be checkpointed", cm)
	}
	return costmodel.SaveFile(path, ck)
}

// Registry is an open persistent best-schedule store: the amortization layer
// that turns tuning from a batch job into a service. It maps (workload
// fingerprint, target, scheduler) to the best schedule ever published for
// that key, durably (a journal plus an atomically-updated index under one
// directory — see the README registry-layout section). It is safe for
// concurrent use in-process, and across processes concurrent publishers
// serialize behind a blocking per-publish lock on the journal — a CLI can
// publish into the registry a running daemon serves from.
type Registry struct {
	reg *registry.Registry
}

// OpenRegistry opens (creating if needed) a best-schedule registry rooted at
// dir, auto-detecting its storage layout. Opening never writes journal state,
// so read-only consumers can open a registry another process is publishing
// into.
func OpenRegistry(dir string) (*Registry, error) {
	return OpenRegistryOptions(dir, RegistryOptions{})
}

// RegistryOptions select a registry's storage layout and tuning knobs. The
// zero value auto-detects the layout (an existing sharded registry opens
// sharded, anything else single-file) with default batching and caching.
type RegistryOptions struct {
	// Layout is "", "auto", "single" or "sharded". Opening an existing
	// single-file registry with "sharded" migrates it in place (the v1
	// journal is kept beside the shards as journal.v1.jsonl).
	Layout string
	// ShardCache bounds how many shard indexes stay resident in memory
	// (sharded layout; 0 selects the default).
	ShardCache int
	// BatchSize and BatchWait shape the publish batcher: a flush happens at
	// BatchSize pending records or BatchWait after the first, whichever is
	// first (0 selects the defaults).
	BatchSize int
	BatchWait time.Duration
}

// ParseRegistryLayout maps a layout flag value to the internal layout,
// rejecting unknown names — shared by OpenRegistryOptions and the CLIs.
func ParseRegistryLayout(s string) (registry.Layout, error) {
	switch s {
	case "", "auto":
		return registry.LayoutAuto, nil
	case "single":
		return registry.LayoutSingle, nil
	case "sharded":
		return registry.LayoutSharded, nil
	}
	return registry.LayoutAuto, fmt.Errorf("harl: unknown registry layout %q (valid: auto, single, sharded)", s)
}

// OpenRegistryOptions is OpenRegistry with explicit layout and knobs.
func OpenRegistryOptions(dir string, o RegistryOptions) (*Registry, error) {
	layout, err := ParseRegistryLayout(o.Layout)
	if err != nil {
		return nil, err
	}
	r, err := registry.OpenOptions(dir, registry.Options{
		Layout:     layout,
		ShardCache: o.ShardCache,
		BatchSize:  o.BatchSize,
		BatchWait:  o.BatchWait,
	})
	if err != nil {
		return nil, err
	}
	return &Registry{reg: r}, nil
}

// ErrRecordBroken marks a registry hit whose stored schedule no longer
// reconstructs (a foreign or stale registry). Callers treat it as a
// repairable miss — the tune path falls through to a fresh search that
// force-replaces the poisoned key — unlike any other Lookup error, which
// reports the registry itself unreadable.
var ErrRecordBroken = errors.New("harl: registry record does not reconstruct")

// Resolve returns the registry's best record for the workload on the target
// under the given scheduler preset ("" matches every preset, returning the
// overall best). The error reports an unreadable registry — distinct from a
// plain miss.
func (r *Registry) Resolve(w Workload, t Target, scheduler string) (Record, bool, error) {
	rec, ok, err := r.reg.Resolve(w.sg.Fingerprint(), t.plat.Name, scheduler)
	if err != nil {
		return Record{}, false, fmt.Errorf("harl: registry read: %w", err)
	}
	if !ok {
		return Record{}, false, nil
	}
	return fromInternalRecord(rec), true, nil
}

// SavedSchedule is a registry hit rendered for consumption: the stored
// record plus the reconstructed schedule and its noise-free performance.
type SavedSchedule struct {
	Record Record
	// ExecSeconds is the noise-free simulator time of the stored schedule
	// (the same quantity a fresh tuning run reports), GFLOPS the
	// corresponding throughput.
	ExecSeconds float64
	GFLOPS      float64
	// Schedule is the human-readable configuration.
	Schedule string
}

// Lookup resolves the workload and reconstructs the stored schedule against
// the workload's regenerated sketch list. A record whose steps no longer
// deserialize (a foreign or stale registry) is a miss with an error wrapping
// ErrRecordBroken; any other error means the registry storage itself failed
// to read and the miss cannot be trusted.
func (r *Registry) Lookup(w Workload, t Target, scheduler string) (SavedSchedule, bool, error) {
	rec, ok, err := r.reg.Resolve(w.sg.Fingerprint(), t.plat.Name, scheduler)
	if err != nil {
		return SavedSchedule{}, false, fmt.Errorf("harl: registry read: %w", err)
	}
	if !ok {
		return SavedSchedule{}, false, nil
	}
	s, err := rec.Schedule(sketch.Generate(w.sg))
	if err != nil {
		return SavedSchedule{}, false, fmt.Errorf("%w: %s: %v", ErrRecordBroken, w.Name(), err)
	}
	exec := hardware.NewSimulator(t.plat).Exec(s)
	return SavedSchedule{
		Record:      fromInternalRecord(rec),
		ExecSeconds: exec,
		GFLOPS:      w.sg.FLOPs() / exec / 1e9,
		Schedule:    s.String(),
	}, true, nil
}

// ImportJournal publishes every record of a tuning-record log into the
// registry, returning how many improved a key — how a daemon boots its cache
// from committed journals.
func (r *Registry) ImportJournal(path string) (int, error) { return r.reg.ImportJournal(path) }

// Len returns the number of (workload, target, scheduler) keys with a best
// record.
func (r *Registry) Len() int { return r.reg.Len() }

// Records returns the current best records in stable key order.
func (r *Registry) Records() []Record {
	recs := r.reg.Records()
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		out = append(out, fromInternalRecord(rec))
	}
	return out
}

// RegistryStats is a snapshot of the registry's storage counters.
type RegistryStats struct {
	// Layout is the storage layout in effect ("single" or "sharded").
	Layout string
	// Keys and Records count live best keys and journal records.
	Keys    int
	Records int
	// Appends counts journal append operations; LockAcquisitions counts
	// cross-process file locks taken (batching makes this smaller than the
	// number of publishes); BatchesFlushed and BatchedRecords describe the
	// publish batcher; Compactions counts shard journal rewrites.
	Appends          int64
	AppendedRecords  int64
	LockAcquisitions int64
	BatchesFlushed   int64
	BatchedRecords   int64
	Compactions      int64
	// ResidentShards is how many shard indexes are cached in memory
	// (sharded layout only).
	ResidentShards int
}

// Layout reports the registry's storage layout ("single" or "sharded").
func (r *Registry) Layout() string { return string(r.reg.Layout()) }

// Stats returns a snapshot of the registry's storage counters.
func (r *Registry) Stats() RegistryStats {
	s := r.reg.Stats()
	return RegistryStats{
		Layout:           string(s.Layout),
		Keys:             s.Keys,
		Records:          s.Records,
		Appends:          s.Appends,
		AppendedRecords:  s.AppendedRecords,
		LockAcquisitions: s.LockAcquisitions,
		BatchesFlushed:   s.BatchesFlushed,
		BatchedRecords:   s.BatchedRecords,
		Compactions:      s.Compactions,
		ResidentShards:   s.ResidentShards,
	}
}

// Close releases the registry: pending batched publishes flush durably
// first. Publishes hold their file lock only for the duration of each
// append, so Close is cheap and never blocks on other processes.
func (r *Registry) Close() error { return r.reg.Close() }

// Fleet is an open connection to a pool of harl-worker measurement daemons:
// the distributed-measurement layer. Attach one to a run with
// Options.FleetPool (a daemon shares one Fleet across every run it serves)
// or let Options.Fleet dial a private one per run. The pool health-checks
// its workers in the background, ejects ones that keep failing, readmits
// them when they recover, and routes each task only to workers that serve
// its target platform — a heterogeneous fleet can hold cpu-only and
// gpu-only workers side by side. A Fleet with every worker down still
// serves: batches fall back to in-process measurement with identical
// results.
type Fleet struct {
	pool *fleet.Pool
}

// FleetOptions tunes fleet dispatch; the zero value selects production
// defaults (30s batch timeout, 2 retries, 2s health-check period).
type FleetOptions struct {
	// BatchTimeout bounds one measure-batch RPC.
	BatchTimeout time.Duration
	// Retries is the re-dispatch bound per batch before falling back to
	// in-process measurement (0 default; negative disables retries).
	Retries int
	// HealthInterval is the worker health-check period.
	HealthInterval time.Duration
}

// DialFleet opens a fleet over the worker endpoints with default options.
// Endpoints are "host:port" or full URLs. Dialing succeeds even while every
// worker is unreachable (they are probed and admitted in the background);
// it fails only on an empty endpoint list.
func DialFleet(endpoints []string) (*Fleet, error) {
	return DialFleetOptions(endpoints, FleetOptions{})
}

// DialFleetOptions is DialFleet with explicit dispatch knobs.
func DialFleetOptions(endpoints []string, o FleetOptions) (*Fleet, error) {
	p, err := fleet.NewPool(endpoints, fleet.Config{
		Timeout:        o.BatchTimeout,
		Retries:        o.Retries,
		HealthInterval: o.HealthInterval,
	})
	if err != nil {
		return nil, err
	}
	return &Fleet{pool: p}, nil
}

// Close stops the fleet's health-check loop. Stats stay readable.
func (f *Fleet) Close() { f.pool.Close() }

// FleetStats is a snapshot of a fleet's dispatch counters — the numbers
// behind the harl_fleet_* series at harl-serve's /metrics.
type FleetStats struct {
	// Workers is the registered worker count; Healthy how many are in
	// rotation right now.
	Workers int
	Healthy int
	// BatchesDispatched counts measure batches completed remotely, and
	// TrialsDispatched the individual trials inside them.
	BatchesDispatched int64
	TrialsDispatched  int64
	// Retries counts batch re-dispatch attempts, Ejections workers dropped
	// from rotation, Readmissions ejected workers probed back in, and
	// Fallbacks batches recovered by in-process measurement.
	Retries      int64
	Ejections    int64
	Readmissions int64
	Fallbacks    int64
}

// Stats snapshots the fleet's counters.
func (f *Fleet) Stats() FleetStats {
	s := f.pool.Stats()
	return FleetStats{
		Workers:           s.Workers,
		Healthy:           s.Healthy,
		BatchesDispatched: s.BatchesDispatched,
		TrialsDispatched:  s.TrialsDispatched,
		Retries:           s.Retries,
		Ejections:         s.Ejections,
		Readmissions:      s.Readmissions,
		Fallbacks:         s.Fallbacks,
	}
}

// publishTasks publishes every tuned task's best into the registry. Warm- or
// cache-seeded bests re-publish as no-ops (the registry keeps incumbents on
// ties), so only genuine improvements change the index. Tasks whose
// fingerprint appears in broken force-replace their key: the incumbent there
// is a poisoned record (resolves but does not reconstruct) that keep-better
// publishing could never depose.
func publishTasks(reg *Registry, tasks []*search.Task, target, scheduler string, seed uint64, broken map[string]bool) error {
	for _, t := range tasks {
		if t.Best == nil {
			continue
		}
		fp := t.Graph.Fingerprint()
		rec := tunelog.NewRecordFP(fp, target, scheduler, t.Best, t.BestExec, t.Trials, seed)
		var err error
		if broken[fp] {
			err = reg.reg.Replace(rec)
		} else {
			_, err = reg.reg.Publish(rec)
		}
		if err != nil {
			return fmt.Errorf("harl: publish to registry: %w", err)
		}
	}
	return nil
}

// TuneOperator tunes one workload on a target.
func TuneOperator(w Workload, t Target, o Options) (Result, error) {
	return TuneOperatorContext(context.Background(), w, t, o)
}

// TuneOperatorContext is TuneOperator as a cancellable session. The context
// is checked at measurement-round boundaries: on cancellation the in-flight
// round commits, the record log holds every committed measurement, the model
// checkpoint (Options.ModelOut) is still written, and the partial best comes
// back with Result.Cancelled set — a cancelled session is fully resumable
// via Options.ResumeFrom/PretrainFrom. An uncancelled run is byte-identical
// to TuneOperator.
func TuneOperatorContext(ctx context.Context, w Workload, t Target, o Options) (Result, error) {
	o = o.withDefaults()
	sched, err := core.NewScheduler(o.Scheduler)
	if err != nil {
		return Result{}, err
	}
	if o.Transfer && o.Registry == nil {
		return Result{}, fmt.Errorf("harl: Options.Transfer needs Options.Registry (the donor scan reads it)")
	}
	brokenRecord := false
	if o.Registry != nil {
		hit, ok, err := o.Registry.Lookup(w, t, o.Scheduler)
		if err == nil && ok {
			// The service contract: a known workload costs a lookup, not a
			// search — zero trials, zero simulated search time.
			return Result{
				Scheduler:    o.Scheduler,
				ExecSeconds:  hit.ExecSeconds,
				GFLOPS:       hit.GFLOPS,
				BestSchedule: hit.Schedule,
				CacheHit:     true,
			}, nil
		}
		// A reconstruct error (foreign registry) falls through to a fresh
		// tune, which force-replaces the broken record (its recorded time
		// may be unbeatably low, so keep-better publishing would preserve
		// the poison forever). A storage error is not repairable by tuning
		// and must not be mistaken for a miss.
		if err != nil && !errors.Is(err, ErrRecordBroken) {
			return Result{}, err
		}
		brokenRecord = err != nil
	}
	workers := o.Workers
	if workers == 0 {
		workers = 1
	}
	hooks, closeJournal, err := o.hooks()
	if err != nil {
		return Result{}, err
	}
	if err := checkPretrainMatches(hooks.Pretrain, o.PretrainFrom, []*texpr.Subgraph{w.sg}, t.plat); err != nil {
		closeJournal()
		return Result{}, err
	}
	if o.Transfer {
		hooks.Transfer = &transferProvider{reg: o.Registry, target: t.plat.Name, scheduler: o.Scheduler}
	}
	sessCtx, progressHook, plateaued, stopPlateau := o.progressSession(ctx, []string{w.Name()})
	defer stopPlateau()
	hooks.Progress = progressHook
	res := core.TuneOperatorSession(sessCtx, w.sg, t.plat, sched, o.Trials, o.MeasureK, o.Seed, workers, hooks)
	if err := closeJournal(); err != nil {
		return Result{}, err
	}
	if res.Task.Best == nil && !res.Cancelled {
		// Only reachable on a zero-trial cache replay whose log held no
		// record for this (workload, target); fail loudly instead of
		// returning an all-zero result.
		return Result{}, fmt.Errorf("harl: no cached record for %s on %s in %q and no trial budget to measure", w.Name(), t.Name(), o.ResumeFrom)
	}
	if o.ModelOut != "" {
		// Written for every session that ran, including one cancelled before
		// its first round (an empty model round-trips fine) — only the
		// registry-hit fast path above, which runs no session, skips it.
		if err := saveModel(o.ModelOut, res.Task.Cost); err != nil {
			return Result{}, err
		}
	}
	// Publish whatever the session found, even a cancelled or plateau-stopped
	// partial best: publishing keeps better incumbents, so a partial can only
	// improve the key, and the next identical request is served from it.
	if o.Registry != nil && res.Task.Best != nil {
		rec := tunelog.NewRecord(w.sg, t.plat.Name, o.Scheduler, res.Task.Best, res.Task.BestExec, res.Task.Trials, o.Seed)
		var err error
		if brokenRecord {
			err = o.Registry.reg.Replace(rec)
		} else {
			_, err = o.Registry.reg.Publish(rec)
		}
		if err != nil {
			return Result{}, fmt.Errorf("harl: publish to registry: %w", err)
		}
	}
	plateau := plateaued(res.Cancelled)
	out := Result{
		Scheduler:        o.Scheduler,
		ExecSeconds:      res.BestExec,
		GFLOPS:           res.BestGFLOPS,
		Trials:           res.Trials,
		Measured:         res.Measured,
		MeasureSaved:     res.MeasureSaved,
		SearchSeconds:    res.CostSec,
		BestLog:          append([]float64(nil), res.Task.BestLog...),
		WarmStarted:      res.WarmStarted,
		WarmTransfer:     res.WarmTransfer,
		CostModelSamples: res.CostSamples,
		CostModelRefits:  res.CostRefits,
		Pretrained:       res.Pretrained,
		Cancelled:        res.Cancelled && !plateau,
		PlateauStopped:   plateau,
	}
	if res.Task.Best != nil {
		out.BestSchedule = res.Task.Best.String()
	}
	return out, nil
}

// SubgraphReport is one row of a network tuning breakdown.
type SubgraphReport struct {
	Name         string
	Weight       int
	ExecSeconds  float64
	Contribution float64
	Trials       int
}

// NetworkResult summarizes an end-to-end network tuning run.
type NetworkResult struct {
	Network string
	// EstimatedSeconds is Σ w_n·g_n; MeasuredSeconds adds the per-subgraph
	// communication overhead.
	EstimatedSeconds float64
	MeasuredSeconds  float64
	// Trials is the charged-trial count across all subgraph tasks; Measured
	// and MeasureSaved split it into real hardware measurements and
	// adaptive-sampling backfills (see Result.Trials).
	Trials        int
	Measured      int
	MeasureSaved  int
	SearchSeconds float64
	Breakdown     []SubgraphReport
	// WarmStarted is the number of subgraph tasks seeded from
	// Options.ResumeFrom's cached records.
	WarmStarted int
	// WarmTransfers is the number of subgraph tasks warm-started from a
	// transfer donor key via Options.Transfer.
	WarmTransfers int
	// Pretrained is the number of subgraph tasks whose cost model carried
	// offline knowledge (Options.PretrainFrom or Options.ModelIn) before the
	// first round; CostModelSamples and CostModelRefits sum the per-task
	// training-set sizes and refit counts.
	Pretrained       int
	CostModelSamples int
	CostModelRefits  int
	// CacheHits is the number of subgraph tasks served from Options.Registry.
	// When every subgraph hits, the search is skipped entirely and Trials is
	// zero.
	CacheHits int
	// Cancelled reports that the run's context was cancelled before the
	// budget was spent; the breakdown reflects the partial bests.
	Cancelled bool
	// PlateauStopped reports that Options.Plateau ended the search early on
	// a flatlined trajectory (see Result.PlateauStopped).
	PlateauStopped bool
}

// networkByName resolves one of the paper's network names.
func networkByName(name string, batch int) (*workload.Network, error) {
	switch name {
	case "bert", "BERT":
		return workload.BERT(batch), nil
	case "resnet50", "resnet", "ResNet":
		return workload.ResNet50(batch), nil
	case "mobilenetv2", "mobilenet", "MobileNet":
		return workload.MobileNetV2(batch), nil
	}
	return nil, fmt.Errorf("harl: unknown network %q", name)
}

// registryWarmDB collects the registry's best records for the network's
// subgraphs under the run's scheduler into an in-memory database — the same
// shape the resume cache uses — so registry hits ride the existing
// warm-start machinery (seeded bests are never re-measured). A record that
// no longer reconstructs against the subgraph's regenerated sketches is not
// a hit: counting it would let a full-hit run skip the search with nothing
// actually seeded; its fingerprint is reported in broken instead, so the
// run's publish force-replaces the poisoned key. It returns the database
// (nil when nothing resolved) and the number of subgraphs that hit. A
// registry storage error aborts the warm-up: its misses cannot be trusted.
func registryWarmDB(reg *Registry, graphs []*texpr.Subgraph, plat *hardware.Platform, scheduler string) (db *tunelog.Database, hits int, broken map[string]bool, err error) {
	if reg == nil {
		return nil, 0, nil, nil
	}
	db = tunelog.NewDatabase()
	for _, sg := range graphs {
		rec, ok, rerr := reg.reg.Resolve(sg.Fingerprint(), plat.Name, scheduler)
		if rerr != nil {
			return nil, 0, nil, fmt.Errorf("harl: registry read: %w", rerr)
		}
		if !ok {
			continue
		}
		if _, err := rec.Schedule(sketch.Generate(sg)); err != nil {
			if broken == nil {
				broken = make(map[string]bool)
			}
			broken[sg.Fingerprint()] = true
			continue
		}
		db.Add(rec)
		hits++
	}
	if hits == 0 {
		db = nil
	}
	return db, hits, broken, nil
}

// TuneNetwork tunes one of the paper's networks ("bert", "resnet50",
// "mobilenetv2") end to end.
func TuneNetwork(name string, batch int, t Target, o Options) (NetworkResult, error) {
	return TuneNetworkContext(context.Background(), name, batch, t, o)
}

// TuneNetworkContext is TuneNetwork as a cancellable session: the context is
// checked at round/wave boundaries, so cancellation leaves a flushed record
// log, a saved model checkpoint (Options.ModelOut) and the partial
// per-subgraph bests with NetworkResult.Cancelled set — resumable exactly
// like an operator session. An uncancelled run is byte-identical to
// TuneNetwork.
func TuneNetworkContext(ctx context.Context, name string, batch int, t Target, o Options) (NetworkResult, error) {
	o = o.withDefaults()
	net, err := networkByName(name, batch)
	if err != nil {
		return NetworkResult{}, err
	}
	// Validate the scheduler preset before opening any journal file, so a bad
	// name cannot leak an opened (and possibly newly created) record log.
	if _, _, err := core.EngineFactory(o.Scheduler); err != nil {
		return NetworkResult{}, err
	}
	if o.Transfer && o.Registry == nil {
		return NetworkResult{}, fmt.Errorf("harl: Options.Transfer needs Options.Registry (the donor scan reads it)")
	}
	hooks, closeJournal, err := o.hooks()
	if err != nil {
		return NetworkResult{}, err
	}
	if o.Transfer {
		hooks.Transfer = &transferProvider{reg: o.Registry, target: t.plat.Name, scheduler: o.Scheduler}
	}
	if err := checkPretrainMatches(hooks.Pretrain, o.PretrainFrom, net.Subgraphs, t.plat); err != nil {
		closeJournal()
		return NetworkResult{}, err
	}
	regDB, cacheHits, brokenKeys, err := registryWarmDB(o.Registry, net.Subgraphs, t.plat, o.Scheduler)
	if err != nil {
		closeJournal()
		return NetworkResult{}, err
	}
	budget := o.Trials
	if o.Registry != nil && cacheHits == len(net.Subgraphs) {
		// Every subgraph is served from the registry: the whole network run
		// collapses to a lookup — zero measured trials.
		budget = 0
	}
	names := make([]string, len(net.Subgraphs))
	for i, sg := range net.Subgraphs {
		names[i] = sg.Name
	}
	sessCtx, progressHook, plateaued, stopPlateau := o.progressSession(ctx, names)
	defer stopPlateau()
	if o.Workers != 0 {
		pnt, err := core.NewParallelNetworkTuner(net, t.plat, o.Scheduler, o.MeasureK, o.Seed, o.Workers)
		if err != nil {
			closeJournal()
			return NetworkResult{}, err
		}
		pretrained := pnt.SeedCostModels(hooks)
		warmed := 0
		if hooks.Warm != nil {
			warmed = pnt.WarmStart(hooks.Warm)
		}
		if regDB != nil {
			pnt.WarmStart(regDB)
		}
		if hooks.Journal != nil {
			pnt.AttachJournal(hooks.Journal, o.Seed)
		}
		pnt.SetProgress(progressHook)
		cancelled := pnt.RunCtx(sessCtx, budget)
		if err := closeJournal(); err != nil {
			return NetworkResult{}, err
		}
		if o.Trials == 0 && warmed < len(net.Subgraphs) {
			return NetworkResult{}, fmt.Errorf("harl: cache replay incomplete: %d of %d subgraphs have cached records in %q and there is no trial budget to measure the rest", warmed, len(net.Subgraphs), o.ResumeFrom)
		}
		if o.ModelOut != "" {
			if err := saveModel(o.ModelOut, core.MergedCostModel(pnt.MT.Tasks)); err != nil {
				return NetworkResult{}, err
			}
		}
		// Partial bests publish too (keep-better; see Options.Registry).
		if o.Registry != nil {
			if err := publishTasks(o.Registry, pnt.MT.Tasks, t.plat.Name, o.Scheduler, o.Seed, brokenKeys); err != nil {
				return NetworkResult{}, err
			}
		}
		plateau := plateaued(cancelled)
		out := NetworkResult{
			Network:          net.Name,
			EstimatedSeconds: pnt.EstimatedExec(),
			MeasuredSeconds:  pnt.MeasuredExec(),
			Trials:           pnt.Trials(),
			Measured:         pnt.Measured(),
			MeasureSaved:     pnt.MeasureSaved(),
			SearchSeconds:    pnt.CostSec(),
			WarmStarted:      warmed,
			WarmTransfers:    warmTransferCount(pnt.MT.Tasks),
			Pretrained:       pretrained,
			CacheHits:        cacheHits,
			Cancelled:        cancelled && !plateau,
			PlateauStopped:   plateau,
		}
		out.CostModelSamples, out.CostModelRefits = costModelTotals(pnt.MT.Tasks)
		for i, b := range pnt.Breakdown() {
			out.Breakdown = append(out.Breakdown, SubgraphReport{
				Name:         b.Name,
				Weight:       b.Weight,
				ExecSeconds:  b.BestExec,
				Contribution: b.Contribution,
				Trials:       pnt.MT.Tasks[i].Trials,
			})
		}
		return out, nil
	}
	sched, err := core.NewScheduler(o.Scheduler)
	if err != nil {
		closeJournal()
		return NetworkResult{}, err
	}
	nt := core.NewNetworkTuner(net, t.plat, sched, o.MeasureK, o.Seed)
	pretrained := nt.SeedCostModels(hooks)
	warmed := 0
	if hooks.Warm != nil {
		warmed = nt.WarmStart(hooks.Warm)
	}
	if regDB != nil {
		nt.WarmStart(regDB)
	}
	if hooks.Journal != nil {
		nt.AttachJournal(hooks.Journal, o.Seed)
	}
	nt.OnProgress = progressHook
	cancelled := nt.RunCtx(sessCtx, budget)
	if err := closeJournal(); err != nil {
		return NetworkResult{}, err
	}
	if o.Trials == 0 && warmed < len(net.Subgraphs) {
		return NetworkResult{}, fmt.Errorf("harl: cache replay incomplete: %d of %d subgraphs have cached records in %q and there is no trial budget to measure the rest", warmed, len(net.Subgraphs), o.ResumeFrom)
	}
	if o.ModelOut != "" {
		if err := saveModel(o.ModelOut, core.MergedCostModel(nt.Tasks)); err != nil {
			return NetworkResult{}, err
		}
	}
	// Partial bests publish too (keep-better; see Options.Registry).
	if o.Registry != nil {
		if err := publishTasks(o.Registry, nt.Tasks, t.plat.Name, o.Scheduler, o.Seed, brokenKeys); err != nil {
			return NetworkResult{}, err
		}
	}
	plateau := plateaued(cancelled)
	out := NetworkResult{
		Network:          net.Name,
		EstimatedSeconds: nt.EstimatedExec(),
		MeasuredSeconds:  nt.MeasuredExec(),
		Trials:           nt.Trials(),
		Measured:         nt.Measured(),
		MeasureSaved:     nt.MeasureSaved(),
		SearchSeconds:    nt.Meas.CostSec(),
		WarmStarted:      warmed,
		WarmTransfers:    warmTransferCount(nt.Tasks),
		Pretrained:       pretrained,
		CacheHits:        cacheHits,
		Cancelled:        cancelled && !plateau,
		PlateauStopped:   plateau,
	}
	out.CostModelSamples, out.CostModelRefits = costModelTotals(nt.Tasks)
	for i, b := range nt.Breakdown() {
		out.Breakdown = append(out.Breakdown, SubgraphReport{
			Name:         b.Name,
			Weight:       b.Weight,
			ExecSeconds:  b.BestExec,
			Contribution: b.Contribution,
			Trials:       nt.Tasks[i].Trials,
		})
	}
	return out, nil
}

// ExperimentConfig mirrors the experiment harness configuration; the zero
// value selects the scaled defaults.
type ExperimentConfig struct {
	Seed               uint64
	OperatorBudget     int
	MeasureK           int
	ConfigsPerCategory int
	Batches            []int
	NetworkBudgetScale float64
	NetworkPlatforms   []string
	// Workers sizes the tuning worker pool used inside every experiment
	// (< 0 selects runtime.NumCPU()). Experiment outputs are byte-identical
	// for every worker count; workers only cut wall-clock time.
	Workers int
	Full    bool
}

func (c ExperimentConfig) resolve() experiments.Config {
	base := experiments.Scaled()
	if c.Full {
		base = experiments.Full()
	}
	if c.Seed != 0 {
		base.Seed = c.Seed
	}
	if c.OperatorBudget > 0 {
		base.OperatorBudget = c.OperatorBudget
	}
	if c.MeasureK > 0 {
		base.MeasureK = c.MeasureK
	}
	if c.ConfigsPerCategory > 0 {
		base.ConfigsPerCategory = c.ConfigsPerCategory
	}
	if len(c.Batches) > 0 {
		base.Batches = c.Batches
	}
	if c.NetworkBudgetScale > 0 {
		base.NetworkBudgetScale = c.NetworkBudgetScale
	}
	if len(c.NetworkPlatforms) > 0 {
		base.NetworkPlatforms = c.NetworkPlatforms
	}
	if c.Workers != 0 {
		base.Workers = c.Workers
	}
	return base
}

// Experiments lists the reproducible table/figure identifiers.
func Experiments() []string {
	return []string{"fig1a", "fig1b", "fig1c", "tab1", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9", "tab4", "fig10", "tab7", "tab8"}
}

// RunExperiment regenerates one paper table or figure, writing the rows to w.
// fig5/fig6 and fig8/fig9 share their underlying runs and are emitted
// together by either id.
func RunExperiment(id string, c ExperimentConfig, w io.Writer) error {
	cfg := c.resolve()
	// Reset the measurement accounting so a following WriteBenchSummary
	// reports only this experiment's runs.
	experiments.ResetObservations()
	switch id {
	case "fig1a":
		experiments.GreedyAllocation(cfg, w)
	case "fig1b":
		experiments.UniformImprovement(cfg, w)
	case "fig1c":
		experiments.FixedLengthWaste(cfg, w)
	case "tab1":
		experiments.Table1(w)
	case "fig5", "fig6":
		experiments.OperatorGrid(cfg, w)
	case "fig7a":
		experiments.AblationTrajectory(cfg, w)
	case "fig7b":
		experiments.CriticalSteps(cfg, w)
	case "fig8", "fig9":
		experiments.NetworkGrid(cfg, w)
	case "tab4":
		experiments.Table4(cfg, w)
	case "fig10":
		experiments.AllocationAblation(cfg, w)
	case "tab7":
		experiments.LambdaSensitivity(cfg, w)
	case "tab8":
		experiments.RhoSensitivity(cfg, w)
	default:
		return fmt.Errorf("harl: unknown experiment %q (known: %v)", id, Experiments())
	}
	return nil
}

// WriteBenchSummary writes the machine-readable trace of one experiment run
// as BENCH_<id>.json under dir and returns the file path. The summary embeds
// the resolved configuration, wall-clock duration and the experiment's
// rendered output so benchmark trajectories accumulate across runs.
func WriteBenchSummary(dir, id string, c ExperimentConfig, duration time.Duration, output string) (string, error) {
	return experiments.NewSummary(id, c.resolve(), duration, output).WriteFile(dir)
}

// Record is one measured tuning trial of a persistent record log (see the
// record-log section of README.md for the schema).
type Record struct {
	// SchemaVersion is the record schema version (currently 1).
	SchemaVersion int
	// Workload is the workload fingerprint: the workload name plus a stable
	// structural hash, transferable between runs and processes.
	Workload string
	// Target is the platform name the trial was measured on.
	Target string
	// Scheduler is the preset that produced the measurement.
	Scheduler string
	// Steps is the schedule's serialized transform steps; it round-trips
	// byte-identically through a journal append/load cycle.
	Steps string
	// ExecSeconds is the noisy measured execution time.
	ExecSeconds float64
	// Trial is the task-local 1-based trial index.
	Trial int
	// Seed is the run's root random seed.
	Seed uint64
}

func fromInternalRecord(r tunelog.Record) Record {
	return Record{
		SchemaVersion: r.V,
		Workload:      r.Workload,
		Target:        r.Target,
		Scheduler:     r.Scheduler,
		Steps:         r.Steps,
		ExecSeconds:   r.ExecSec,
		Trial:         r.Trial,
		Seed:          r.Seed,
	}
}

// LoadRecords reads a tuning-record log, returning its distinct records in
// file order. Corrupt or truncated lines are skipped (a journal damaged by a
// crash still yields its intact prefix), and exact duplicate appends collapse
// to one record.
func LoadRecords(path string) ([]Record, error) {
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return nil, err
	}
	out := make([]Record, 0, db.Size())
	for _, r := range db.Records() {
		out = append(out, fromInternalRecord(r))
	}
	return out, nil
}

// BestRecord returns the lowest-execution-time record of the log for the
// workload on the target, and whether one exists.
func BestRecord(path string, w Workload, t Target) (Record, bool, error) {
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return Record{}, false, err
	}
	rec, ok := db.Best(w.sg.Fingerprint(), t.plat.Name)
	if !ok {
		return Record{}, false, nil
	}
	return fromInternalRecord(rec), true, nil
}

// Fingerprint returns the workload's stable record-log identity (the
// Workload field of its Records).
func (w Workload) Fingerprint() string { return w.sg.Fingerprint() }

// costModelTotals sums the per-task cost-model statistics of a network run.
func costModelTotals(tasks []*search.Task) (samples, refits int) {
	for _, t := range tasks {
		samples += t.Cost.Len()
		refits += t.CostRefits
	}
	return samples, refits
}

// warmTransferCount counts the tasks a transfer donor warm-started.
func warmTransferCount(tasks []*search.Task) int {
	n := 0
	for _, t := range tasks {
		if t.TransferDonor != "" {
			n++
		}
	}
	return n
}

// ParseShape parses a CLI-style comma-separated shape ("1024,1024,1024")
// into the dims OperatorWorkload expects — the parsing shared by harl-tune
// and harl-train.
func ParseShape(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("harl: missing shape")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("harl: bad shape element %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// OperatorWorkload builds an operator workload from its CLI-style kind and
// shape ("gemm": M,K,N; "c1d": L,Cin,Cout,K,stride,pad; "c2d"/"t2d":
// H,W,Cin,Cout,K,stride,pad; "c3d": D,H,W,Cin,Cout,K,stride,pad) — the
// parsing shared by harl-tune and harl-train.
func OperatorWorkload(op string, dims []int, batch int) (Workload, error) {
	need := func(n int) error {
		if len(dims) != n {
			return fmt.Errorf("harl: operator %q needs %d shape values, got %d", op, n, len(dims))
		}
		return nil
	}
	switch op {
	case "gemm":
		if err := need(3); err != nil {
			return Workload{}, err
		}
		return GEMM(dims[0], dims[1], dims[2], batch), nil
	case "c1d":
		if err := need(6); err != nil {
			return Workload{}, err
		}
		return Conv1D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], batch), nil
	case "c2d":
		if err := need(7); err != nil {
			return Workload{}, err
		}
		return Conv2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], batch), nil
	case "c3d":
		if err := need(8); err != nil {
			return Workload{}, err
		}
		return Conv3D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], dims[7], batch), nil
	case "t2d":
		if err := need(7); err != nil {
			return Workload{}, err
		}
		return ConvT2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], batch), nil
	}
	return Workload{}, fmt.Errorf("harl: unknown operator kind %q (want gemm, c1d, c2d, c3d or t2d)", op)
}

// NetworkWorkloads returns the subgraph workloads of one of the paper's
// networks — the workload set harl-train fits a network-wide model over.
func NetworkWorkloads(name string, batch int) ([]Workload, error) {
	net, err := networkByName(name, batch)
	if err != nil {
		return nil, err
	}
	out := make([]Workload, 0, len(net.Subgraphs))
	for _, sg := range net.Subgraphs {
		out = append(out, Workload{sg})
	}
	return out, nil
}

// TrainStats summarizes an offline cost-model fit (TrainModel).
type TrainStats struct {
	// Records is the number of journal records replayed into the model, and
	// Workloads the number of distinct workloads they cover.
	Records   int
	Workloads int
	// Skipped counts matching records whose schedule steps failed to
	// reconstruct (foreign or stale journals).
	Skipped int
	// Samples is the model's resulting training-set size and Trained whether
	// the fit produced a usable ensemble.
	Samples int
	Trained bool
}

// TrainModel fits a cost model offline from a tuning-record log — replaying
// every record that matches one of the workloads on the target, regenerating
// features deterministically from the serialized schedule steps — and writes
// the versioned checkpoint artifact to outPath. The artifact feeds
// Options.ModelIn (or another TrainModel run's journal feeds
// Options.PretrainFrom directly). Training is deterministic: the same
// journal always produces a byte-identical checkpoint.
func TrainModel(logPath string, ws []Workload, t Target, outPath string) (TrainStats, error) {
	if len(ws) == 0 {
		return TrainStats{}, fmt.Errorf("harl: no workloads to train over")
	}
	db, err := tunelog.LoadFile(logPath)
	if err != nil {
		return TrainStats{}, err
	}
	graphs := make([]*texpr.Subgraph, len(ws))
	for i, w := range ws {
		graphs[i] = w.sg
	}
	m, st := pretrain.FitModel(db, graphs, t.plat.Name, costmodel.DefaultParams())
	stats := TrainStats{
		Records:   st.Records,
		Workloads: st.Workloads,
		Skipped:   st.Skipped,
		Samples:   m.Len(),
		Trained:   m.Trained(),
	}
	if st.Records == 0 {
		return stats, fmt.Errorf("harl: no records in %q match the given workloads on %s", logPath, t.Name())
	}
	if err := costmodel.SaveFile(outPath, m); err != nil {
		return stats, err
	}
	return stats, nil
}

# Standard verification gate for the HARL reproduction.
#
#   make        — vet + build + unit tests
#   make fmt    — gofmt the whole tree in place
#   make race   — the full suite under the race detector (the merge gate for
#                 anything touching the concurrent tuning engine)
#   make bench  — one pass over every experiment benchmark
#   make cover  — coverage profile across ./... and the total percentage
#   make check  — everything: vet, build, tests, race

GO ?= go

.PHONY: all fmt vet build test race bench cover check

all: vet build test

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race suite exceeds Go's default 10m per-package timeout on
# single-core boxes (see the verify notes); give it explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

check: vet build test race

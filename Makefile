# Standard verification gate for the HARL reproduction.
#
#   make           — vet + build + unit tests
#   make fmt       — gofmt the whole tree in place
#   make lint      — the determinism lint suite (internal/lint) as a vet
#                    tool over every package including tests, plus
#                    staticcheck when it is on PATH
#   make race      — the full suite under the race detector (the merge gate
#                    for anything touching the concurrent tuning engine)
#   make bench     — one pass over every experiment benchmark
#   make bench-hot — the search hot-path microbenchmarks (features, batch
#                    scoring, refit, batch prediction), repeated BENCH_COUNT
#                    times with allocation stats into bench-hot.txt
#   make benchcmp  — bench-hot, then benchstat against the committed
#                    bench/baseline.txt (needs benchstat on PATH:
#                    go install golang.org/x/perf/cmd/benchstat@latest)
#   make cover     — coverage profile across ./... and the total percentage
#   make check     — everything: vet, lint, build, tests, race

GO ?= go

# The search hot path: schedule featurization, batch candidate scoring, cost
# model refit and batch prediction. CI's perf-smoke job runs exactly this set
# on the base and head commits and fails on significant regressions.
HOT_BENCH ?= ^(BenchmarkScheduleFeatures|BenchmarkScoreBatch|BenchmarkRefit|BenchmarkPredictBatch)$$
BENCH_COUNT ?= 10

.PHONY: all fmt vet lint build test race bench bench-hot benchcmp cover check

all: vet build test

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

# Running the suite through `go vet -vettool` (rather than standalone) rides
# vet's per-package result cache and covers _test.go-adjacent packages; the
# binary's -V=full content hash invalidates the cache when analyzers change.
# staticcheck is optional locally (CI installs a pinned version).
lint:
	$(GO) build -o bin/harl-lint ./cmd/harl-lint
	$(GO) vet -vettool=bin/harl-lint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck -checks=SA ./..."; \
		staticcheck -checks=SA ./...; \
	else \
		echo "staticcheck not on PATH; skipping (CI runs it pinned)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The full race suite exceeds Go's default 10m per-package timeout on
# single-core boxes (see the verify notes); give it explicit headroom.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

bench-hot:
	$(GO) test -run='^$$' -bench='$(HOT_BENCH)' -count=$(BENCH_COUNT) -benchmem . | tee bench-hot.txt

benchcmp: bench-hot
	benchstat bench/baseline.txt bench-hot.txt

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

check: vet lint build test race

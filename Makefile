# Standard verification gate for the HARL reproduction.
#
#   make        — vet + build + unit tests
#   make race   — the full suite under the race detector (the merge gate for
#                 anything touching the concurrent tuning engine)
#   make bench  — one pass over every experiment benchmark
#   make check  — everything: vet, build, tests, race

GO ?= go

.PHONY: all vet build test race bench check

all: vet build test

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

check: vet build test race

package harl

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"harl/internal/costmodel"
	"harl/internal/tunelog"
)

// TestRegistryHitServesCommittedJournalBest pins the service contract
// against the committed GEMM journal: importing it into a registry makes the
// matching tune request a pure lookup — zero measured trials, zero search
// time, and exactly the journal's best schedule.
func TestRegistryHitServesCommittedJournalBest(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.ImportJournal(filepath.Join("examples", "pretrain", "gemm-cpu.jsonl")); err != nil {
		t.Fatal(err)
	}
	w := GEMM(256, 256, 256, 1)
	res, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: 320, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("expected a registry cache hit for the committed journal's workload")
	}
	if res.Trials != 0 || res.SearchSeconds != 0 {
		t.Fatalf("cache hit spent %d trials / %.1f s search, want 0 / 0", res.Trials, res.SearchSeconds)
	}
	// The served schedule is the journal's best record, byte for byte.
	best, ok, err := BestRecord(filepath.Join("examples", "pretrain", "gemm-cpu.jsonl"), w, CPU())
	if err != nil || !ok {
		t.Fatalf("journal best: ok=%v err=%v", ok, err)
	}
	hit, ok, err := reg.Lookup(w, CPU(), "harl")
	if err != nil || !ok {
		t.Fatalf("registry lookup: ok=%v err=%v", ok, err)
	}
	if hit.Record.Steps != best.Steps {
		t.Fatalf("registry served steps %q, journal best is %q", hit.Record.Steps, best.Steps)
	}
	if res.BestSchedule != hit.Schedule || res.ExecSeconds != hit.ExecSeconds {
		t.Fatalf("hit result (%q, %g) disagrees with lookup (%q, %g)",
			res.BestSchedule, res.ExecSeconds, hit.Schedule, hit.ExecSeconds)
	}
	// A different scheduler key must miss and fall through to a real search.
	miss, err := TuneOperator(w, CPU(), Options{Scheduler: "random", Trials: 32, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if miss.CacheHit || miss.Trials == 0 {
		t.Fatalf("different scheduler key hit the cache: %+v", miss)
	}
}

// TestTunePublishesThenHits covers the publish-after half of the cycle: a
// cold tune with a registry makes the identical second request free.
func TestTunePublishesThenHits(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	w := GEMM(64, 64, 64, 1)
	opts := Options{Scheduler: "random", Trials: 48, Seed: 3, Registry: reg}
	cold, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.Trials == 0 {
		t.Fatalf("cold run should have tuned: %+v", cold)
	}
	hot, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hot.CacheHit || hot.Trials != 0 {
		t.Fatalf("second identical run should hit: %+v", hot)
	}
	if hot.BestSchedule != cold.BestSchedule || hot.ExecSeconds != cold.ExecSeconds {
		t.Fatalf("hit (%q, %g) disagrees with the run that published it (%q, %g)",
			hot.BestSchedule, hot.ExecSeconds, cold.BestSchedule, cold.ExecSeconds)
	}
}

// TestNetworkRegistryFullHitSkipsSearch publishes a network's subgraph bests
// and checks the second identical request collapses to a lookup.
func TestNetworkRegistryFullHitSkipsSearch(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// 80 trials = one 8-candidate round for each of BERT's ten subgraphs,
	// so every task measures a best and publishes it.
	opts := Options{Scheduler: "random", Trials: 80, MeasureK: 8, Seed: 5, Workers: 2, Registry: reg}
	cold, err := TuneNetwork("bert", 1, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Trials == 0 || cold.CacheHits != 0 {
		t.Fatalf("cold network run: %+v", cold)
	}
	hot, err := TuneNetwork("bert", 1, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if hot.CacheHits != len(hot.Breakdown) {
		t.Fatalf("cache hits %d of %d subgraphs", hot.CacheHits, len(hot.Breakdown))
	}
	if hot.Trials != 0 {
		t.Fatalf("full-hit network run measured %d trials, want 0", hot.Trials)
	}
	if hot.MeasuredSeconds <= 0 {
		t.Fatalf("full-hit run lost the execution estimate: %+v", hot)
	}
}

// TestCancelOperatorLeavesResumableArtifacts is the checkpoint-on-cancel
// acceptance: a session cancelled mid-run must return its partial best and
// leave a loadable journal (every committed measurement) plus a loadable
// model checkpoint, and a later run must warm-start from that journal.
func TestCancelOperatorLeavesResumableArtifacts(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "tune.jsonl")
	modelPath := filepath.Join(dir, "model.json")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	w := GEMM(256, 256, 256, 1)
	res, err := TuneOperatorContext(ctx, w, CPU(), Options{
		Scheduler: "harl",
		Trials:    1 << 30, // far beyond what 150ms can measure
		RecordLog: logPath,
		ModelOut:  modelPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("run was not cancelled")
	}
	if res.Trials == 0 || res.BestSchedule == "" {
		t.Fatalf("cancelled run kept no partial best: %+v", res)
	}
	// The journal holds exactly the committed measurements.
	recs, err := LoadRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Trials {
		t.Fatalf("journal has %d records for %d committed trials", len(recs), res.Trials)
	}
	// The checkpoint loads and carries the session's training set.
	m, err := costmodel.LoadFile(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != res.CostModelSamples {
		t.Fatalf("checkpoint has %d samples, session reported %d", m.Len(), res.CostModelSamples)
	}
	// And the journal warm-starts a zero-budget replay of the partial best.
	replay, err := TuneOperator(w, CPU(), Options{Scheduler: "harl", Trials: -1, ResumeFrom: logPath})
	if err != nil {
		t.Fatal(err)
	}
	if !replay.WarmStarted || replay.Trials != 0 {
		t.Fatalf("replay of the cancelled journal: %+v", replay)
	}
}

// TestCancelNetworkMidWave cancels a concurrent multi-task session and
// checks the wave-barrier checkpoint: a loadable journal consistent with the
// committed trial count, a loadable merged model checkpoint, and partial
// per-subgraph results.
func TestCancelNetworkMidWave(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "net.jsonl")
	modelPath := filepath.Join(dir, "net-model.json")
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(300 * time.Millisecond)
		cancel()
	}()
	res, err := TuneNetworkContext(ctx, "bert", 1, CPU(), Options{
		Scheduler: "harl",
		Trials:    1 << 20,
		MeasureK:  8, // small waves so the cancel lands after few trials even under -race
		Workers:   3,
		RecordLog: logPath,
		ModelOut:  modelPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("network run was not cancelled")
	}
	if res.Trials == 0 {
		t.Fatal("cancelled network run committed no trials")
	}
	recs, err := LoadRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Trials {
		t.Fatalf("journal has %d records for %d committed trials", len(recs), res.Trials)
	}
	if _, err := costmodel.LoadFile(modelPath); err != nil {
		t.Fatalf("merged checkpoint after cancel: %v", err)
	}
	total := 0
	for _, b := range res.Breakdown {
		total += b.Trials
	}
	if total != res.Trials {
		t.Fatalf("breakdown trials %d != total %d", total, res.Trials)
	}
}

// TestBrokenRegistryRecordIsRepaired covers the poisoned-key path: a foreign
// record whose steps no longer reconstruct — with an unbeatably low recorded
// time — must not serve hits, must not suppress tuning, and must be
// force-replaced by the fresh run's native best so the key heals.
func TestBrokenRegistryRecordIsRepaired(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	w := GEMM(64, 64, 64, 1)
	poison := tunelog.Record{
		V: tunelog.SchemaVersion, Workload: w.Fingerprint(), Target: CPU().Name(),
		Scheduler: "random", Steps: "sk=99 s0=1,1,1,1", ExecSec: 1e-12, Trial: 1, Seed: 1,
	}
	if _, err := reg.reg.Publish(poison); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Lookup(w, CPU(), "random"); err == nil {
		t.Fatal("poisoned record should fail reconstruction")
	}
	opts := Options{Scheduler: "random", Trials: 24, Seed: 3, Registry: reg}
	res, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.Trials == 0 {
		t.Fatalf("poisoned key served a hit: %+v", res)
	}
	// The fresh best replaced the poison despite its lower recorded time.
	hit, ok, err := reg.Lookup(w, CPU(), "random")
	if err != nil || !ok {
		t.Fatalf("key not repaired: ok=%v err=%v", ok, err)
	}
	if hit.Schedule != res.BestSchedule {
		t.Fatalf("repaired best %q != tuned best %q", hit.Schedule, res.BestSchedule)
	}
	again, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Trials != 0 {
		t.Fatalf("repaired key should hit: %+v", again)
	}
}

// TestCancelBeforeFirstRoundStillWritesCheckpoint pins the cancel contract's
// edge: a context cancelled before the session starts still produces the
// promised (empty) model checkpoint and a zero-trial Cancelled result.
func TestCancelBeforeFirstRoundStillWritesCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	modelPath := filepath.Join(t.TempDir(), "model.json")
	res, err := TuneOperatorContext(ctx, GEMM(64, 64, 64, 1), CPU(), Options{
		Scheduler: "random", Trials: 32, ModelOut: modelPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Trials != 0 {
		t.Fatalf("pre-cancelled session: %+v", res)
	}
	m, err := costmodel.LoadFile(modelPath)
	if err != nil {
		t.Fatalf("checkpoint missing after immediate cancel: %v", err)
	}
	if m.Len() != 0 {
		t.Fatalf("empty session checkpoint has %d samples", m.Len())
	}
}

package harl

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"harl/internal/costmodel"
	"harl/internal/search"
)

// marshalEvents renders an event stream as its SSE wire payloads — the bytes
// the acceptance criterion compares across worker counts.
func marshalEvents(t *testing.T, events []ProgressEvent) []byte {
	t.Helper()
	data, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestOperatorProgressWorkerInvariant: the public OnProgress stream of an
// operator run is byte-identical for every Workers value.
func TestOperatorProgressWorkerInvariant(t *testing.T) {
	run := func(workers int) []ProgressEvent {
		var events []ProgressEvent
		w := GEMM(96, 96, 96, 1)
		res, err := TuneOperator(w, CPU(), Options{
			Scheduler: "harl", Trials: 96, Seed: 11, Workers: workers,
			OnProgress: func(e ProgressEvent) { events = append(events, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trials == 0 || len(events) == 0 {
			t.Fatalf("run produced no progress: %+v", res)
		}
		return events
	}
	one, four := marshalEvents(t, run(1)), marshalEvents(t, run(4))
	if string(one) != string(four) {
		t.Fatalf("operator event streams diverge across worker counts:\n%s\n%s", one, four)
	}
}

// TestNetworkProgressWorkerInvariant: the concurrent network tuner's event
// stream (wave-barrier fan-in) is byte-identical for workers=1 and 3, and
// each event carries the subgraph it describes.
func TestNetworkProgressWorkerInvariant(t *testing.T) {
	run := func(workers int) []ProgressEvent {
		var events []ProgressEvent
		res, err := TuneNetwork("bert", 1, CPU(), Options{
			Scheduler: "harl", Trials: 120, MeasureK: 8, Seed: 9, Workers: workers,
			OnProgress: func(e ProgressEvent) { events = append(events, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Trials == 0 || len(events) == 0 {
			t.Fatalf("run produced no progress: %+v", res)
		}
		return events
	}
	one := run(1)
	for _, e := range one {
		if e.Workload == "" {
			t.Fatalf("network event lacks its subgraph name: %+v", e)
		}
	}
	a, b := marshalEvents(t, one), marshalEvents(t, run(3))
	if string(a) != string(b) {
		t.Fatalf("network event streams diverge across worker counts:\n%s\n%s", a, b)
	}
}

// TestPlateauStopCheckpointsAndPublishes is the tentpole acceptance: a
// plateau-stopped session goes through the checkpoint-on-cancel path — the
// journal holds every committed measurement, the model checkpoint loads, the
// partial best is published to the registry — and reports PlateauStopped
// without Cancelled.
func TestPlateauStopCheckpointsAndPublishes(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "tune.jsonl")
	modelPath := filepath.Join(dir, "model.json")
	reg, err := OpenRegistry(filepath.Join(dir, "registry"))
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	w := GEMM(64, 64, 64, 1)
	opts := Options{
		Scheduler: "harl", Trials: 320, Seed: 1,
		Plateau:   Plateau{Window: 6, MinImprovement: 0.005},
		RecordLog: logPath, ModelOut: modelPath, Registry: reg,
	}
	res, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlateauStopped {
		t.Fatalf("flatlining run did not plateau-stop: %+v", res)
	}
	if res.Cancelled {
		t.Fatal("plateau stop must not report Cancelled")
	}
	if res.Trials == 0 || res.Trials >= 320 {
		t.Fatalf("plateau stop spent %d trials, want 0 < trials < budget", res.Trials)
	}
	recs, err := LoadRecords(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != res.Trials {
		t.Fatalf("journal has %d records for %d committed trials", len(recs), res.Trials)
	}
	if _, err := costmodel.LoadFile(modelPath); err != nil {
		t.Fatalf("model checkpoint after plateau stop: %v", err)
	}
	// The partial best was published: the identical request is now a hit
	// serving exactly the plateau-stopped session's best.
	hit, ok, err := reg.Lookup(w, CPU(), "harl")
	if err != nil || !ok {
		t.Fatalf("plateau-stopped best not in registry: ok=%v err=%v", ok, err)
	}
	if hit.Record.Trial != res.Trials {
		t.Fatalf("published record carries trial %d, session stopped at %d", hit.Record.Trial, res.Trials)
	}
	if hit.Schedule != res.BestSchedule {
		t.Fatalf("registry serves %q, plateau stop found %q", hit.Schedule, res.BestSchedule)
	}
	again, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Trials != 0 {
		t.Fatalf("second identical request should be a cache hit: %+v", again)
	}
}

// TestPlateauStopIsWorkerInvariant: whether and where a run plateau-stops is
// part of the determinism contract.
func TestPlateauStopIsWorkerInvariant(t *testing.T) {
	run := func(workers int) Result {
		res, err := TuneOperator(GEMM(64, 64, 64, 1), CPU(), Options{
			Scheduler: "harl", Trials: 320, Seed: 1, Workers: workers,
			Plateau: Plateau{Window: 6, MinImprovement: 0.005},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := run(1), run(4)
	if !one.PlateauStopped || !four.PlateauStopped {
		t.Fatalf("plateau did not fire: w1=%+v w4=%+v", one, four)
	}
	if one.Trials != four.Trials || one.BestSchedule != four.BestSchedule {
		t.Fatalf("plateau stop diverges across workers: w1 %d trials %q, w4 %d trials %q",
			one.Trials, one.BestSchedule, four.Trials, four.BestSchedule)
	}
}

// TestNetworkPlateauStop: the same policy stops a network session through the
// wave-barrier cancel path, with partial bests published.
func TestNetworkPlateauStop(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	// The random engine keeps the test cheap; the plateau path is identical
	// across engines (it reads only the committed trajectory).
	res, err := TuneNetwork("bert", 1, CPU(), Options{
		Scheduler: "random", Trials: 4000, MeasureK: 8, Seed: 2, Workers: 2,
		Plateau:  Plateau{Window: 8, MinImprovement: 0.01},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlateauStopped || res.Cancelled {
		t.Fatalf("network plateau stop flags: %+v", res)
	}
	if res.Trials == 0 || res.Trials >= 4000 {
		t.Fatalf("network plateau stop spent %d trials, want 0 < trials < budget", res.Trials)
	}
	// Every measured subgraph's partial best was published.
	published := reg.Len()
	if published == 0 {
		t.Fatal("plateau-stopped network run published nothing")
	}
}

// TestPlateauDetectorSamplesOncePerWave is the regression for the
// network false-fire: a concurrent wave emits one event per advanced
// subgraph, all carrying the same post-wave objective, and those must count
// as ONE trajectory point — not fill the window within a single wave.
func TestPlateauDetectorSamplesOncePerWave(t *testing.T) {
	d := &plateauDetector{p: Plateau{Window: 3}}
	for i := 0; i < 10; i++ {
		if d.observe(0, 1e-6) {
			t.Fatal("events of one wave must not fill the plateau window")
		}
	}
	for w := 1; w <= 2; w++ {
		if d.observe(w, 1e-6) {
			t.Fatalf("window fired with only %d waves observed", w+1)
		}
	}
	if !d.observe(3, 1e-6) {
		t.Fatal("flat trajectory across window+1 waves must plateau")
	}
}

// TestNetworkPlateauNeedsFullWindowOfWaves: a network run whose budget spans
// fewer waves than the window can never plateau-stop — with per-event
// counting (the fixed bug) BERT's 10-events-per-wave would have tripped a
// 6-wave window inside wave one.
func TestNetworkPlateauNeedsFullWindowOfWaves(t *testing.T) {
	res, err := TuneNetwork("bert", 1, CPU(), Options{
		Scheduler: "random", Trials: 400, MeasureK: 8, Seed: 2, Workers: 2,
		Plateau: Plateau{Window: 6, MinImprovement: 0.005},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlateauStopped {
		t.Fatalf("run of ~5 waves plateau-stopped against a 6-wave window: %+v", res)
	}
	if res.Trials < 400 {
		t.Fatalf("budget not exhausted: %d trials", res.Trials)
	}
}

// TestPlateauOnFinalWaveDoesNotReportEarlyStop: a detector that fires on the
// last budgeted wave stopped nothing — budget-exhausted is checked before the
// context at every barrier — so the run must not claim PlateauStopped.
func TestPlateauOnFinalWaveDoesNotReportEarlyStop(t *testing.T) {
	o := Options{Plateau: Plateau{Window: 1, MinImprovement: 1}}
	sessCtx, hook, plateaued, cleanup := o.progressSession(context.Background(), []string{"w"})
	defer cleanup()
	hook(search.Progress{Wave: 0, RunBest: 1e-6})
	hook(search.Progress{Wave: 1, RunBest: 1e-6}) // fires: 0% <= 100%
	if sessCtx.Err() == nil {
		t.Fatal("detector did not cancel the session context")
	}
	if plateaued(false) {
		t.Fatal("a session that completed its budget must not report a plateau stop")
	}
	if !plateaued(true) {
		t.Fatal("a session the detector cut short must report the plateau stop")
	}
}

// TestCancelledRunPublishesPartialBest: a user-cancelled session publishes
// its partial best exactly like a plateau-stopped one (keep-better, so the
// partial can only improve the key).
func TestCancelledRunPublishesPartialBest(t *testing.T) {
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	w := GEMM(256, 256, 256, 1)
	res, err := TuneOperatorContext(ctx, w, CPU(), Options{
		Scheduler: "harl", Trials: 1 << 30, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.PlateauStopped {
		t.Fatalf("cancelled run flags: %+v", res)
	}
	hit, ok, err := reg.Lookup(w, CPU(), "harl")
	if err != nil || !ok {
		t.Fatalf("cancelled partial best not published: ok=%v err=%v", ok, err)
	}
	if hit.Schedule != res.BestSchedule {
		t.Fatalf("registry serves %q, cancelled run found %q", hit.Schedule, res.BestSchedule)
	}
}

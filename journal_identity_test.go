package harl

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCommittedJournalByteIdentity re-runs the exact tuning configuration that
// produced the committed pretraining journal and requires a byte-identical
// result. This is the end-to-end bit-identity gate for the search hot path:
// any drift in the cost model's arithmetic (flattened prediction kernels,
// parallel or buffer-reusing refit), the feature cache, or the measurement
// pipeline changes some prediction, which changes some candidate ranking,
// which changes the measured trial sequence — and this comparison fails.
func TestCommittedJournalByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("re-tunes the committed 96-trial GEMM workload")
	}
	path := filepath.Join(t.TempDir(), "regen.jsonl")
	_, err := TuneOperator(pretrainWorkload(), CPU(), Options{
		Scheduler: "harl",
		Trials:    96,
		Seed:      7,
		RecordLog: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(committedPretrainJournal)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("regenerated journal differs from %s (%d vs %d bytes): the search hot path is no longer bit-identical to the committed baseline",
			committedPretrainJournal, len(got), len(want))
	}
}

module harl

go 1.24

// Command harl-lint runs the determinism and wire-contract lint suite
// (internal/lint) over the module. It is usable two ways:
//
// Standalone, over go list patterns (default ./...):
//
//	harl-lint [-only detrand,maporder] [packages...]
//
// As a vet tool, so the suite rides the go toolchain's per-package caching
// and covers test files:
//
//	go vet -vettool=$(command -v harl-lint) ./...
//
// In vettool mode the command speaks the cmd/go vet protocol by hand (the
// same handshake golang.org/x/tools/go/analysis/unitchecker implements):
// -V=full prints a content-hashed version so vet's result cache invalidates
// when the binary changes, -flags advertises no analyzer flags, and a
// trailing *.cfg argument carries the package's files, import maps and
// export-data paths. The tool emits no facts; it writes the empty vetx file
// cmd/go expects and exits 2 when diagnostics survive suppression.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"harl/internal/lint"
)

func main() {
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(vettool(os.Args[1]))
	}

	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	flag.Parse()
	os.Exit(standalone(*only, flag.Args()))
}

// printVersion emits the -V=full line cmd/go keys its vet result cache on.
// The build id is a hash of the executable itself, so editing an analyzer
// and rebuilding invalidates cached "clean" verdicts.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("harl-lint version v1 buildID=%s\n", id)
}

func standalone(only string, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := lint.ModuleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	analyzers, full := selectAnalyzers(only)
	if analyzers == nil {
		fmt.Fprintf(os.Stderr, "harl-lint: unknown analyzer in -only=%s\n", only)
		return 1
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers, lint.Options{ReportStaleAllows: full})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "harl-lint: %d diagnostic(s)\n", found)
		return 2
	}
	return 0
}

// selectAnalyzers resolves -only, reporting whether the full suite runs
// (stale-allow checking is only meaningful then).
func selectAnalyzers(only string) ([]*lint.Analyzer, bool) {
	suite := lint.Suite()
	if only == "" {
		return suite, true
	}
	byName := make(map[string]*lint.Analyzer, len(suite))
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, false
}

// vetConfig is the package description cmd/go hands a vet tool — the same
// wire structure unitchecker consumes.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "harl-lint: read vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "harl-lint: parse vet config %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go requires the facts file to exist for every analyzed package;
	// the suite derives no facts, so an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "harl-lint: write vetx output: %v\n", err)
			return 1
		}
	}
	path := cfg.ImportPath
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	// vet drives the tool over the whole build graph (stdlib included) so
	// facts-based tools can see dependencies. This suite is module-local:
	// anything outside it has nothing to analyze.
	if cfg.VetxOnly || (path != "harl" && !strings.HasPrefix(path, "harl/")) {
		return 0
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg)
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	diags, err := lint.Run(pkg, lint.Suite(), lint.Options{ReportStaleAllows: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// exportImporter resolves imports through the vet config's vendor-aware
// ImportMap into its export-data file table.
func exportImporter(fset *token.FileSet, cfg vetConfig) types.Importer {
	return lint.ExportDataImporter(fset, func(path string) (string, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("harl-lint: vet config for %s carries no export data for import %q", cfg.ImportPath, path)
		}
		return file, nil
	})
}

// Command harl-tune tunes a single tensor operator or an end-to-end network
// with a chosen scheduler preset and prints the outcome.
//
// Usage:
//
//	harl-tune -op gemm -shape 1024,1024,1024 -scheduler harl -trials 500
//	harl-tune -op c2d  -shape 56,56,64,64,3,1,1 -batch 16
//	harl-tune -network bert -batch 1 -trials 600 -scheduler ansor
//
// Every measured trial can be journaled to a persistent record log, a later
// run can warm-start from it, and the cost model can be pretrained offline or
// checkpointed across runs (see the cost-model section of README.md):
//
//	harl-tune -op gemm -shape 1024,1024,1024 -log tune.jsonl
//	harl-tune -op gemm -shape 1024,1024,1024 -resume tune.jsonl -trials -1
//	harl-tune -op gemm -shape 1024,1024,1024 -pretrain tune.jsonl
//	harl-tune -op gemm -shape 1024,1024,1024 -model-in model.json -model-out model.json
//
// With -registry the CLI shares the harl-serve daemon's best-schedule cache:
// an already-tuned (workload, target, scheduler) returns instantly with zero
// measured trials, and a fresh tune publishes its best for the next caller:
//
//	harl-tune -op gemm -shape 256,256,256 -registry ./registry
//
// -progress streams one line per committed round/wave to stderr (the same
// event stream harl-serve exposes over SSE), and -plateau-window with
// -plateau-improve stop a flatlined search early through the
// checkpoint-on-cancel path:
//
//	harl-tune -op gemm -shape 64,64,64 -progress -plateau-window 8 -plateau-improve 0.005
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"harl"
)

func main() {
	op := flag.String("op", "", "operator kind: gemm, c1d, c2d, c3d, t2d")
	shape := flag.String("shape", "", "comma-separated operator shape (gemm: M,K,N; c2d: H,W,Cin,Cout,K,stride,pad; ...)")
	network := flag.String("network", "", "network to tune end-to-end: bert, resnet50, mobilenetv2")
	batch := flag.Int("batch", 1, "batch size")
	target := flag.String("target", "cpu", "target platform: "+strings.Join(harl.Targets(), ", "))
	scheduler := flag.String("scheduler", "harl", "scheduler preset: "+strings.Join(harl.Schedulers(), ", "))
	trials := flag.Int("trials", 320, "measurement-trial budget (negative = no new measurements, replay the -resume cache only)")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "tuning worker pool size: 0 = the legacy serial tuner (default), N >= 1 = the concurrent scheduler with N workers (identical results for every N), -1 = all CPU cores")
	logPath := flag.String("log", "", "append one JSONL tuning record per measured trial to this file")
	resume := flag.String("resume", "", "warm-start from the best cached schedules of this record log (may equal -log)")
	pretrainLog := flag.String("pretrain", "", "pretrain the cost model by replaying this record log before search (model-only; may equal -log or -resume)")
	modelIn := flag.String("model-in", "", "load a cost-model checkpoint (from -model-out or harl-train) before search")
	modelOut := flag.String("model-out", "", "save the trained cost-model checkpoint after tuning")
	registryDir := flag.String("registry", "", "best-schedule registry directory shared with harl-serve: resolve before tuning (a hit costs 0 trials) and publish the best after")
	registryLayout := flag.String("registry-layout", "auto", "registry storage layout: auto (detect), single (one journal) or sharded (256 fingerprint-sharded journals; migrates a single-file registry in place)")
	fleetList := flag.String("fleet", "", "comma-separated harl-worker endpoints to fan measurement batches out to (results are byte-identical to in-process measurement; a dead worker falls back in-process)")
	progress := flag.Bool("progress", false, "stream one progress line per committed round/wave to stderr — the same event stream harl-serve serves over SSE")
	plateauWindow := flag.Int("plateau-window", 0, "stop the search early when the best-so-far trajectory improves by no more than -plateau-improve across this many progress events (0 disables)")
	plateauImprove := flag.Float64("plateau-improve", 0, "minimum relative improvement (0.01 = 1%) over the plateau window to keep searching")
	transfer := flag.Bool("transfer", false, "cross-key transfer warm starts (requires -registry): when this key misses, scan the registry for a donor key — the same workload on another target, or a compatible workload on the same target — and seed the cost model and first candidate from it")
	adaptive := flag.Bool("adaptive", false, "adaptive measurement sampling: once the cost model earns trust, measure only cluster representatives of each candidate batch and backfill the rest from predictions (results stay deterministic per worker count)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with go tool pprof)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file when tuning finishes")
	flag.Parse()

	// Validate every name-typed flag up front, so a typo exits non-zero with
	// the valid-name list instead of a bare error mid-run.
	tgt, err := harl.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	if _, err := harl.SchedulerByName(*scheduler); err != nil {
		fatal(err)
	}
	if *plateauWindow < 0 || *plateauImprove < 0 {
		fatal(fmt.Errorf("-plateau-window and -plateau-improve must be >= 0"))
	}
	if *plateauImprove > 0 && *plateauWindow == 0 {
		fatal(fmt.Errorf("-plateau-improve needs -plateau-window > 0 to take effect"))
	}
	if *transfer && *registryDir == "" {
		fatal(fmt.Errorf("-transfer needs -registry (the donor scan reads it)"))
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "harl-tune: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // report live heap, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "harl-tune: memprofile:", err)
			}
		}()
	}
	opts := harl.Options{Scheduler: *scheduler, Trials: *trials, Seed: *seed, Workers: *workers,
		RecordLog: *logPath, ResumeFrom: *resume,
		PretrainFrom: *pretrainLog, ModelIn: *modelIn, ModelOut: *modelOut,
		Transfer: *transfer, AdaptiveSampling: harl.AdaptiveSampling{Enabled: *adaptive},
		Plateau: harl.Plateau{Window: *plateauWindow, MinImprovement: *plateauImprove}}
	if *progress {
		opts.OnProgress = func(e harl.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "progress wave=%d task=%s alloc=%d trials=%d/%d best=%.4fms run=%.4fms search=%.0fs\n",
				e.Wave, e.Workload, e.Allocation, e.TaskTrials, e.TotalTrials,
				e.BestExecSeconds*1e3, e.RunBestSeconds*1e3, e.SearchSeconds)
		}
	}
	if *registryDir != "" {
		reg, err := harl.OpenRegistryOptions(*registryDir, harl.RegistryOptions{Layout: *registryLayout})
		if err != nil {
			fatal(err)
		}
		defer reg.Close()
		opts.Registry = reg
	} else if *registryLayout != "auto" {
		fatal(fmt.Errorf("-registry-layout needs -registry"))
	}
	var fleetPool *harl.Fleet
	if *fleetList != "" {
		fleetPool, err = harl.DialFleet(strings.Split(*fleetList, ","))
		if err != nil {
			fatal(err)
		}
		defer func() {
			fleetPool.Close()
			s := fleetPool.Stats()
			fmt.Fprintf(os.Stderr, "fleet: %d/%d workers healthy, %d batches (%d trials) dispatched, %d retries, %d ejections, %d fallbacks\n",
				s.Healthy, s.Workers, s.BatchesDispatched, s.TrialsDispatched, s.Retries, s.Ejections, s.Fallbacks)
		}()
		opts.FleetPool = fleetPool
	}

	if *network != "" {
		res, err := harl.TuneNetwork(*network, *batch, tgt, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s with %s: estimated %.3f ms, measured %.3f ms (%d trials, %.0f s search)\n",
			res.Network, tgt.Name(), *scheduler, res.EstimatedSeconds*1e3, res.MeasuredSeconds*1e3, res.Trials, res.SearchSeconds)
		if res.CacheHits > 0 {
			fmt.Printf("registry served %d of %d subgraph(s) from %s\n", res.CacheHits, len(res.Breakdown), *registryDir)
		}
		if res.Cancelled {
			fmt.Println("run cancelled: partial bests shown; the record log and checkpoint are resumable")
		}
		if res.PlateauStopped {
			fmt.Printf("stopped early on plateau after %d trials: no further improvement expected\n", res.Trials)
		}
		if res.WarmStarted > 0 {
			fmt.Printf("warm-started %d subgraph(s) from %s\n", res.WarmStarted, *resume)
		}
		if res.WarmTransfers > 0 {
			fmt.Printf("transfer warm-started %d subgraph(s) from registry donors\n", res.WarmTransfers)
		}
		if res.MeasureSaved > 0 {
			fmt.Printf("adaptive sampling: measured %d of %d trials (%d saved)\n", res.Measured, res.Trials, res.MeasureSaved)
		}
		fmt.Printf("cost model: %d training samples across %d subgraph models, %d refits, pretrained %d task(s)\n",
			res.CostModelSamples, len(res.Breakdown), res.CostModelRefits, res.Pretrained)
		if *modelOut != "" {
			fmt.Printf("cost model checkpoint (merged over the compatible subgraphs): %s\n", *modelOut)
		}
		fmt.Printf("%-18s %-7s %-12s %-8s %s\n", "subgraph", "weight", "exec(us)", "trials", "contribution")
		for _, b := range res.Breakdown {
			fmt.Printf("%-18s %-7d %-12.1f %-8d %.1f%%\n", b.Name, b.Weight, b.ExecSeconds*1e6, b.Trials, b.Contribution*100)
		}
		return
	}

	dims, err := harl.ParseShape(*shape)
	if err != nil {
		fatal(err)
	}
	if *op == "" {
		fatal(fmt.Errorf("missing -op (and no -network given)"))
	}
	w, err := harl.OperatorWorkload(*op, dims, *batch)
	if err != nil {
		fatal(err)
	}

	res, err := harl.TuneOperator(w, tgt, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s with %s:\n", w.Name(), tgt.Name(), res.Scheduler)
	if res.CacheHit {
		fmt.Printf("  registry hit from %s: served without measuring a trial\n", *registryDir)
	}
	if res.Cancelled {
		fmt.Println("  run cancelled: partial best shown; the record log and checkpoint are resumable")
	}
	if res.PlateauStopped {
		fmt.Printf("  stopped early on plateau after %d trials: no further improvement expected\n", res.Trials)
	}
	if res.WarmStarted {
		fmt.Printf("  warm-started from %s\n", *resume)
	}
	if res.WarmTransfer != "" {
		fmt.Printf("  transfer warm start from donor %s\n", res.WarmTransfer)
	}
	if res.MeasureSaved > 0 {
		fmt.Printf("  adaptive sampling: measured %d of %d trials (%d saved)\n", res.Measured, res.Trials, res.MeasureSaved)
	}
	fmt.Printf("  best program: %.4f ms (%.1f GFLOP/s)\n", res.ExecSeconds*1e3, res.GFLOPS)
	fmt.Printf("  trials: %d, simulated search time: %.0f s\n", res.Trials, res.SearchSeconds)
	fmt.Printf("  cost model: %d training samples, %d refits, pretrained=%v\n",
		res.CostModelSamples, res.CostModelRefits, res.Pretrained)
	if *modelOut != "" && !res.CacheHit {
		fmt.Printf("  cost model checkpoint: %s\n", *modelOut)
	}
	fmt.Printf("  schedule: %s\n", res.BestSchedule)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-tune:", err)
	os.Exit(1)
}

// Command harl-tune tunes a single tensor operator or an end-to-end network
// with a chosen scheduler preset and prints the outcome.
//
// Usage:
//
//	harl-tune -op gemm -shape 1024,1024,1024 -scheduler harl -trials 500
//	harl-tune -op c2d  -shape 56,56,64,64,3,1,1 -batch 16
//	harl-tune -network bert -batch 1 -trials 600 -scheduler ansor
//
// Every measured trial can be journaled to a persistent record log, and a
// later run can warm-start from it (see the record-log section of README.md):
//
//	harl-tune -op gemm -shape 1024,1024,1024 -log tune.jsonl
//	harl-tune -op gemm -shape 1024,1024,1024 -resume tune.jsonl -trials -1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"harl"
)

func main() {
	op := flag.String("op", "", "operator kind: gemm, c1d, c2d, c3d, t2d")
	shape := flag.String("shape", "", "comma-separated operator shape (gemm: M,K,N; c2d: H,W,Cin,Cout,K,stride,pad; ...)")
	network := flag.String("network", "", "network to tune end-to-end: bert, resnet50, mobilenetv2")
	batch := flag.Int("batch", 1, "batch size")
	target := flag.String("target", "cpu", "target platform: "+strings.Join(harl.Targets(), ", "))
	scheduler := flag.String("scheduler", "harl", "scheduler preset: "+strings.Join(harl.Schedulers(), ", "))
	trials := flag.Int("trials", 320, "measurement-trial budget (negative = no new measurements, replay the -resume cache only)")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "tuning worker pool size: 0 = the legacy serial tuner (default), N >= 1 = the concurrent scheduler with N workers (identical results for every N), -1 = all CPU cores")
	logPath := flag.String("log", "", "append one JSONL tuning record per measured trial to this file")
	resume := flag.String("resume", "", "warm-start from the best cached schedules of this record log (may equal -log)")
	flag.Parse()

	tgt, err := harl.TargetByName(*target)
	if err != nil {
		fatal(err)
	}
	opts := harl.Options{Scheduler: *scheduler, Trials: *trials, Seed: *seed, Workers: *workers,
		RecordLog: *logPath, ResumeFrom: *resume}

	if *network != "" {
		res, err := harl.TuneNetwork(*network, *batch, tgt, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s on %s with %s: estimated %.3f ms, measured %.3f ms (%d trials, %.0f s search)\n",
			res.Network, tgt.Name(), *scheduler, res.EstimatedSeconds*1e3, res.MeasuredSeconds*1e3, res.Trials, res.SearchSeconds)
		if res.WarmStarted > 0 {
			fmt.Printf("warm-started %d subgraph(s) from %s\n", res.WarmStarted, *resume)
		}
		fmt.Printf("%-18s %-7s %-12s %-8s %s\n", "subgraph", "weight", "exec(us)", "trials", "contribution")
		for _, b := range res.Breakdown {
			fmt.Printf("%-18s %-7d %-12.1f %-8d %.1f%%\n", b.Name, b.Weight, b.ExecSeconds*1e6, b.Trials, b.Contribution*100)
		}
		return
	}

	dims, err := parseShape(*shape)
	if err != nil {
		fatal(err)
	}
	var w harl.Workload
	switch *op {
	case "gemm":
		need(dims, 3)
		w = harl.GEMM(dims[0], dims[1], dims[2], *batch)
	case "c1d":
		need(dims, 6)
		w = harl.Conv1D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], *batch)
	case "c2d":
		need(dims, 7)
		w = harl.Conv2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], *batch)
	case "c3d":
		need(dims, 8)
		w = harl.Conv3D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], dims[7], *batch)
	case "t2d":
		need(dims, 7)
		w = harl.ConvT2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], *batch)
	default:
		fatal(fmt.Errorf("unknown -op %q and no -network given", *op))
	}

	res, err := harl.TuneOperator(w, tgt, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s with %s:\n", w.Name(), tgt.Name(), res.Scheduler)
	if res.WarmStarted {
		fmt.Printf("  warm-started from %s\n", *resume)
	}
	fmt.Printf("  best program: %.4f ms (%.1f GFLOP/s)\n", res.ExecSeconds*1e3, res.GFLOPS)
	fmt.Printf("  trials: %d, simulated search time: %.0f s\n", res.Trials, res.SearchSeconds)
	fmt.Printf("  schedule: %s\n", res.BestSchedule)
}

func parseShape(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("missing -shape")
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shape element %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func need(dims []int, n int) {
	if len(dims) != n {
		fatal(fmt.Errorf("shape needs %d comma-separated values, got %d", n, len(dims)))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-tune:", err)
	os.Exit(1)
}

// Command harl-serve runs the HARL tuner as a long-lived HTTP service: a
// persistent best-schedule registry in front of a coalescing tuning-job
// queue, so the first request for a workload pays the search and every later
// identical request costs a lookup.
//
// Usage:
//
//	harl-serve -addr :8080 -registry ./registry
//	harl-serve -registry ./registry -import examples/pretrain/gemm-cpu.jsonl
//
// Endpoints (see the "Serving schedules" section of README.md):
//
//	POST   /v1/tune      tune (registry hit → 200 instantly; miss → 202 job;
//	                     identical concurrent requests coalesce into one job)
//	GET    /v1/schedule  look up a best schedule without tuning
//	GET    /v1/jobs[/{id}]   job listing / status
//	GET    /v1/jobs/{id}/events  live progress as SSE (replay, then tail)
//	DELETE /v1/jobs/{id} cancel a job (the session checkpoints)
//	GET    /healthz      liveness
//	GET    /metrics      queue depth, hit rate, trial counters
//
// By default the daemon applies a plateau early-stop policy to every job
// (-plateau-window / -plateau-improve; requests override per job with
// plateau_window, negative to opt out): a search whose best-so-far
// trajectory flatlines stops early and publishes its partial best instead
// of burning the rest of its trial budget.
//
// On SIGINT/SIGTERM the daemon drains gracefully: intake stops, running
// sessions are cancelled (each checkpoints and publishes its partial best —
// publishing keeps better incumbents, so partials never weaken a key) and
// the registry's journal handle is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harl"
	"harl/internal/profiling"
	"harl/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	registryDir := flag.String("registry", "registry", "best-schedule registry directory (created if missing)")
	registryLayout := flag.String("registry-layout", "auto", "registry storage layout: auto (detect), single (one journal) or sharded (256 fingerprint-sharded journals; migrates a single-file registry in place)")
	importLog := flag.String("import", "", "seed the registry from this tuning-record journal before serving")
	workers := flag.Int("workers", 2, "queue workers draining tuning jobs concurrently")
	plateauWindow := flag.Int("plateau-window", 6, "default plateau early stop: end a job's search when its best-so-far trajectory improves by no more than -plateau-improve across this many progress events (0 disables; requests override with plateau_window)")
	plateauImprove := flag.Float64("plateau-improve", 0.005, "default minimum relative improvement (0.005 = 0.5%) over the plateau window to keep searching")
	fleetList := flag.String("fleet", "", "comma-separated harl-worker endpoints shared by every tuning session (bit-identical to in-process measurement; dead workers fall back in-process); counters at /metrics as harl_fleet_*")
	transfer := flag.Bool("transfer", false, "cross-key transfer warm starts: a registry miss scans for a donor key (same workload on another target, or a compatible workload on the same target) instead of starting cold; counted at /metrics as harl_transfer_warmstarts_total")
	adaptive := flag.Bool("adaptive", false, "adaptive measurement sampling: measure only cluster representatives of each candidate batch once the cost model earns trust, backfilling the rest from predictions; savings at /metrics as harl_measure_saved_total")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060), separate from -addr so profiling is never exposed to tuning clients; empty disables")
	flag.Parse()

	if *workers < 1 {
		fatal(fmt.Errorf("-workers must be >= 1, got %d", *workers))
	}
	if *plateauWindow < 0 || *plateauImprove < 0 {
		fatal(fmt.Errorf("-plateau-window and -plateau-improve must be >= 0"))
	}
	if *plateauWindow == 0 {
		// -plateau-window 0 disables the default policy outright; reject an
		// explicitly-set positive threshold that would be silently dropped
		// with it (the flag's own default does not count — disabling stays
		// one flag — and an explicit 0 expresses no policy to drop).
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "plateau-improve" && *plateauImprove > 0 {
				fatal(fmt.Errorf("-plateau-improve needs -plateau-window > 0 to take effect"))
			}
		})
	}
	if *pprofAddr != "" {
		go func() {
			if err := profiling.ListenAndServe(*pprofAddr); err != nil {
				fmt.Fprintln(os.Stderr, "harl-serve: pprof:", err)
			}
		}()
		fmt.Printf("harl-serve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	reg, err := harl.OpenRegistryOptions(*registryDir, harl.RegistryOptions{Layout: *registryLayout})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("harl-serve: registry %s (%s layout)\n", *registryDir, reg.Layout())
	if *importLog != "" {
		improved, err := reg.ImportJournal(*importLog)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("harl-serve: imported %s (%d improvements, %d keys)\n", *importLog, improved, reg.Len())
	}

	var fleetPool *harl.Fleet
	if *fleetList != "" {
		fleetPool, err = harl.DialFleet(strings.Split(*fleetList, ","))
		if err != nil {
			fatal(err)
		}
		s := fleetPool.Stats()
		fmt.Printf("harl-serve: fleet %s (%d/%d workers healthy)\n", *fleetList, s.Healthy, s.Workers)
	}

	queue := service.NewQueue(&service.HarlTuner{
		Registry:       reg,
		DefaultPlateau: harl.Plateau{Window: *plateauWindow, MinImprovement: *plateauImprove},
		Fleet:          fleetPool,
		Transfer:       *transfer,
		Adaptive:       harl.AdaptiveSampling{Enabled: *adaptive},
	}, *workers)
	handler := service.NewServer(queue, reg)
	if fleetPool != nil {
		handler.SetFleet(fleetPool)
	}
	srv := &http.Server{Addr: *addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("harl-serve: listening on %s (registry %s, %d keys, %d workers)\n",
		*addr, *registryDir, reg.Len(), *workers)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("harl-serve: draining (signal received)")
	}

	// Graceful drain: stop accepting HTTP, cancel tuning sessions (each
	// checkpoints), release the registry.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "harl-serve: http shutdown:", err)
	}
	queue.Shutdown()
	if fleetPool != nil {
		fleetPool.Close()
	}
	if err := reg.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("harl-serve: drained")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-serve:", err)
	os.Exit(1)
}

// Command harl-worker runs a measurement worker: one node of the distributed
// measurement fleet a HARL coordinator (harl-tune -fleet or harl-serve
// -fleet) fans its hardware-measurement batches out to.
//
// Usage:
//
//	harl-worker -addr :9090
//	harl-worker -addr :9090 -targets gpu            # gpu-only node
//	harl-worker -addr :9090 -eval-workers 8
//
// Endpoints:
//
//	POST /v1/measure  execute one measure batch (fleet wire protocol v1)
//	GET  /healthz     liveness + served target platforms + work counters
//
// A worker is stateless: every batch carries the workload structure, target,
// noise seed, serialized schedules and repetition indices, and the worker
// reproduces exactly the values the coordinator's in-process measurer would
// compute — so workers may be added, restarted or killed at any time without
// affecting tuning results (the coordinator retries and falls back
// in-process). Error responses use the same v1 envelope as harl-serve:
// {"error":{"code":"...","message":"..."}}.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"harl/internal/fleet"
	"harl/internal/profiling"
)

func main() {
	addr := flag.String("addr", ":9090", "HTTP listen address")
	targets := flag.String("targets", "", "comma-separated target platforms this worker measures for (e.g. \"cpu\" or \"cpu,gpu\"); empty serves all")
	evalWorkers := flag.Int("eval-workers", 0, "goroutines evaluating trials within a batch (<= 0 selects GOMAXPROCS)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6061), separate from -addr so profiling is never exposed to coordinators; empty disables")
	flag.Parse()

	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, t)
		}
	}
	worker, err := fleet.NewWorker(targetList, *evalWorkers)
	if err != nil {
		fatal(err)
	}
	if *pprofAddr != "" {
		go func() {
			if err := profiling.ListenAndServe(*pprofAddr); err != nil {
				fmt.Fprintln(os.Stderr, "harl-worker: pprof:", err)
			}
		}()
		fmt.Printf("harl-worker: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: worker.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("harl-worker: listening on %s (targets %s)\n", *addr, strings.Join(worker.Targets(), ","))

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Println("harl-worker: draining (signal received)")
	}

	// Graceful drain: finish in-flight batches, then exit. A coordinator
	// losing this worker retries elsewhere or measures in-process, so a hard
	// deadline is safe.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "harl-worker: http shutdown:", err)
	}
	fmt.Printf("harl-worker: drained (%d batches, %d trials served)\n", worker.Batches(), worker.Trials())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-worker:", err)
	os.Exit(1)
}

// Command harl-bench regenerates the paper's tables and figures. Every
// experiment additionally leaves a machine-readable trace: a BENCH_<exp>.json
// summary (resolved configuration, duration, rendered rows) written under
// -out, so the repo's performance trajectory accumulates run over run.
//
// Usage:
//
//	harl-bench -exp fig5                # scaled budget (minutes)
//	harl-bench -exp tab4 -scale 0.1     # larger network budget
//	harl-bench -exp fig7a -budget 1000  # paper-scale operator budget
//	harl-bench -exp all                 # the whole suite
//	harl-bench -full -exp fig5          # paper-scale everything (hours)
//	harl-bench -exp fig5 -out bench/    # JSON summaries under bench/
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"strings"
	"time"

	"harl"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1a fig1b fig1c tab1 fig5 fig6 fig7a fig7b fig8 fig9 tab4 fig10 tab7 tab8) or 'all'")
	budget := flag.Int("budget", 0, "operator measurement-trial budget (0 = preset default)")
	scale := flag.Float64("scale", 0, "network budget scale relative to the paper's 12k/22k/16k (0 = preset default)")
	seed := flag.Uint64("seed", 0, "random seed (0 = preset default)")
	configs := flag.Int("configs", 0, "Table-6 configurations per operator category, 1..4 (0 = preset default)")
	full := flag.Bool("full", false, "use the paper-scale preset (hours of runtime)")
	workers := flag.Int("workers", 0, "tuning worker pool size (0 = preset default, -1 = all CPU cores); outputs are identical for every worker count")
	out := flag.String("out", ".", "directory for the per-experiment BENCH_<exp>.json summaries (empty = skip writing them)")
	flag.Parse()

	// Validate every enumerated flag up front, so a typo exits non-zero with
	// the valid-value list before any experiment burns minutes of tuning.
	if *exp != "all" && !slices.Contains(harl.Experiments(), *exp) {
		fatal(fmt.Errorf("unknown experiment %q (want all, %s)", *exp, strings.Join(harl.Experiments(), ", ")))
	}
	if *configs < 0 || *configs > 4 {
		fatal(fmt.Errorf("-configs must be 0 (preset default) or 1..4, got %d", *configs))
	}
	if *scale < 0 {
		fatal(fmt.Errorf("-scale must be >= 0, got %g", *scale))
	}
	if *budget < 0 {
		fatal(fmt.Errorf("-budget must be >= 0, got %d", *budget))
	}

	cfg := harl.ExperimentConfig{
		Seed:               *seed,
		OperatorBudget:     *budget,
		NetworkBudgetScale: *scale,
		ConfigsPerCategory: *configs,
		Workers:            *workers,
		Full:               *full,
	}

	ids := []string{*exp}
	if *exp == "all" {
		// fig6 and fig9 share runs with fig5/fig8; run each grid once.
		ids = []string{"tab1", "fig1a", "fig1b", "fig1c", "fig5", "fig7a", "fig7b", "fig8", "tab4", "fig10", "tab7", "tab8"}
	}
	for _, id := range ids {
		fmt.Printf("=== %s ===\n", id)
		var buf bytes.Buffer
		w := io.Writer(os.Stdout)
		if *out != "" {
			w = io.MultiWriter(os.Stdout, &buf)
		}
		start := time.Now()
		if err := harl.RunExperiment(id, cfg, w); err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("(%s in %v)\n\n", id, elapsed.Round(time.Millisecond))
		if *out != "" {
			path, err := harl.WriteBenchSummary(*out, id, cfg, elapsed, buf.String())
			if err != nil {
				fatal(err)
			}
			fmt.Printf("summary: %s\n\n", path)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-bench:", err)
	os.Exit(1)
}

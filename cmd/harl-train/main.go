// Command harl-train fits a cost model offline from a persistent
// tuning-record journal and writes it as a versioned checkpoint artifact —
// the committed-journal → reusable-model half of the offline-pretraining
// workflow (the other half is harl-tune -model-in, or -pretrain straight
// from the journal).
//
// The journal stores serialized schedule steps, not features; harl-train
// regenerates the features deterministically (sketch generation and step
// decoding are both canonical), so the same journal always produces a
// byte-identical model checkpoint.
//
// Usage:
//
//	harl-train -log tune.jsonl -op gemm -shape 256,256,256 -out model.json
//	harl-train -log bert.jsonl -network bert -batch 1 -out model.json
//	harl-tune  -op gemm -shape 256,256,256 -model-in model.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"harl"
)

func main() {
	logPath := flag.String("log", "", "tuning-record journal to replay (required)")
	out := flag.String("out", "model.json", "checkpoint artifact to write")
	op := flag.String("op", "", "operator kind the journal was tuned on: gemm, c1d, c2d, c3d, t2d")
	shape := flag.String("shape", "", "comma-separated operator shape (as in harl-tune)")
	network := flag.String("network", "", "network the journal was tuned on: bert, resnet50, mobilenetv2")
	batch := flag.Int("batch", 1, "batch size")
	target := flag.String("target", "cpu", "target platform the records were measured on: "+strings.Join(harl.Targets(), ", "))
	flag.Parse()

	if *logPath == "" {
		fatal(fmt.Errorf("missing -log"))
	}
	tgt, err := harl.TargetByName(*target)
	if err != nil {
		fatal(err)
	}

	var ws []harl.Workload
	switch {
	case *network != "":
		ws, err = harl.NetworkWorkloads(*network, *batch)
		if err != nil {
			fatal(err)
		}
	case *op != "":
		dims, err := harl.ParseShape(*shape)
		if err != nil {
			fatal(err)
		}
		w, err := harl.OperatorWorkload(*op, dims, *batch)
		if err != nil {
			fatal(err)
		}
		ws = []harl.Workload{w}
	default:
		fatal(fmt.Errorf("need -op/-shape or -network to identify the journal's workloads"))
	}

	st, err := harl.TrainModel(*logPath, ws, tgt, *out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d record(s) across %d workload(s) from %s", st.Records, st.Workloads, *logPath)
	if st.Skipped > 0 {
		fmt.Printf(" (%d skipped)", st.Skipped)
	}
	fmt.Println()
	fmt.Printf("model: %d training samples, trained=%v\n", st.Samples, st.Trained)
	fmt.Printf("checkpoint: %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harl-train:", err)
	os.Exit(1)
}

package texpr

import (
	"strings"
	"testing"
)

func gemmStage(m, k, n int) *Stage {
	return &Stage{
		Name:          "matmul",
		Kind:          ComputeHeavy,
		FLOPsPerPoint: 2,
		HasDataReuse:  true,
		Spatial: []Iter{
			{Name: "i", Extent: m, Kind: Spatial},
			{Name: "j", Extent: n, Kind: Spatial},
		},
		Reduce: []Iter{{Name: "k", Extent: k, Kind: Reduction}},
		Inputs: []Access{
			{Tensor: "A", Dims: []AxisRef{{Iter: 0}, {Iter: 0, Reduce: true}}},
			{Tensor: "B", Dims: []AxisRef{{Iter: 0, Reduce: true}, {Iter: 1}}},
		},
	}
}

func TestStageFLOPs(t *testing.T) {
	st := gemmStage(128, 64, 32)
	if got, want := st.FLOPs(), float64(2*128*64*32); got != want {
		t.Fatalf("FLOPs = %g want %g", got, want)
	}
	if st.OutputElems() != 128*32 {
		t.Fatalf("output elems %d", st.OutputElems())
	}
	if st.ReduceElems() != 64 {
		t.Fatalf("reduce elems %d", st.ReduceElems())
	}
}

func TestStageBytes(t *testing.T) {
	st := gemmStage(128, 64, 32)
	if got := st.OutputBytes(); got != 128*32*4 {
		t.Fatalf("output bytes %d", got)
	}
	if got := st.InputBytes(); got != (128*64+64*32)*4 {
		t.Fatalf("input bytes %d", got)
	}
}

func TestAccessTileBytes(t *testing.T) {
	st := gemmStage(128, 64, 32)
	// Tile i=8, j=4, k=16: A tile = 8×16, B tile = 16×4.
	sp, red := []int{8, 4}, []int{16}
	if got := st.AccessTileBytes(st.Inputs[0], sp, red); got != 8*16*4 {
		t.Fatalf("A tile bytes %d", got)
	}
	if got := st.AccessTileBytes(st.Inputs[1], sp, red); got != 16*4*4 {
		t.Fatalf("B tile bytes %d", got)
	}
}

func TestAccessTileBytesWindow(t *testing.T) {
	// Conv-style windowed access: extent = scale·tile + offset, clamped to
	// the full extent.
	st := &Stage{
		Name: "conv", Kind: ComputeHeavy, FLOPsPerPoint: 2,
		Spatial: []Iter{{Name: "x", Extent: 16, Kind: Spatial}},
		Reduce:  []Iter{{Name: "k", Extent: 3, Kind: Reduction}},
		Inputs: []Access{{
			Tensor: "data",
			Dims:   []AxisRef{{Iter: 0, Scale: 2, Offset: 1}},
		}},
	}
	if got := st.AccessTileBytes(st.Inputs[0], []int{4}, []int{3}); got != (2*4+1)*4 {
		t.Fatalf("window tile bytes %d", got)
	}
	// Tile of the full extent must clamp to the full footprint.
	if got := st.AccessTileBytes(st.Inputs[0], []int{16}, []int{3}); got != (2*16+1)*4 {
		t.Fatalf("full window bytes %d", got)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	cases := []struct {
		name string
		st   *Stage
	}{
		{"no spatial", &Stage{Name: "x"}},
		{"bad extent", &Stage{Name: "x", Spatial: []Iter{{Name: "i", Extent: 0, Kind: Spatial}}}},
		{"wrong kind", &Stage{Name: "x", Spatial: []Iter{{Name: "i", Extent: 4, Kind: Reduction}}}},
		{"bad access", &Stage{
			Name:    "x",
			Spatial: []Iter{{Name: "i", Extent: 4, Kind: Spatial}},
			Inputs:  []Access{{Tensor: "A", Dims: []AxisRef{{Iter: 3}}}},
		}},
	}
	for _, c := range cases {
		if err := c.st.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSubgraphDAG(t *testing.T) {
	mat := gemmStage(64, 64, 64)
	relu := &Stage{
		Name: "relu", Kind: Elementwise, FLOPsPerPoint: 1, CanInline: true,
		Spatial: []Iter{
			{Name: "i", Extent: 64, Kind: Spatial},
			{Name: "j", Extent: 64, Kind: Spatial},
		},
		Inputs: []Access{{Tensor: "acc", Producer: "matmul", Dims: []AxisRef{{Iter: 0}, {Iter: 1}}}},
	}
	g, err := NewSubgraph("gemm_relu", 2, mat, relu)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Consumers(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("consumers of matmul: %v", got)
	}
	if got := g.Producers(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("producers of relu: %v", got)
	}
	if g.MainStage() != 0 {
		t.Fatalf("main stage %d", g.MainStage())
	}
	if g.Weight != 2 {
		t.Fatalf("weight %d", g.Weight)
	}
	if g.StageIndex("relu") != 1 || g.StageIndex("nope") != -1 {
		t.Fatal("StageIndex broken")
	}
	if !strings.Contains(g.String(), "gemm_relu") {
		t.Fatal("String() missing name")
	}
}

func TestSubgraphRejectsUnknownProducer(t *testing.T) {
	st := gemmStage(8, 8, 8)
	st.Inputs = append(st.Inputs, Access{Tensor: "x", Producer: "ghost", Dims: []AxisRef{{Iter: 0}}})
	if _, err := NewSubgraph("bad", 1, st); err == nil {
		t.Fatal("expected unknown-producer error")
	}
}

func TestSubgraphRejectsForwardReference(t *testing.T) {
	a := gemmStage(8, 8, 8)
	a.Inputs = append(a.Inputs, Access{Tensor: "later", Producer: "b", Dims: []AxisRef{{Iter: 0}}})
	b := &Stage{
		Name: "b", Kind: Elementwise, FLOPsPerPoint: 1,
		Spatial: []Iter{{Name: "i", Extent: 8, Kind: Spatial}},
	}
	if _, err := NewSubgraph("bad", 1, a, b); err == nil {
		t.Fatal("expected topological-order error")
	}
}

func TestSubgraphRejectsDuplicateStage(t *testing.T) {
	if _, err := NewSubgraph("dup", 1, gemmStage(4, 4, 4), gemmStage(4, 4, 4)); err == nil {
		t.Fatal("expected duplicate-stage error")
	}
}

func TestSubgraphFLOPsSum(t *testing.T) {
	mat := gemmStage(16, 16, 16)
	g := MustSubgraph("g", 1, mat)
	if g.FLOPs() != mat.FLOPs() {
		t.Fatal("subgraph FLOPs should sum stages")
	}
}

func TestElemBytesDefault(t *testing.T) {
	st := gemmStage(4, 4, 4)
	st.OutElemBytes = 2 // fp16 output
	if st.OutputBytes() != 4*4*2 {
		t.Fatalf("fp16 output bytes %d", st.OutputBytes())
	}
}

func TestFingerprintStableAndStructural(t *testing.T) {
	g1 := MustSubgraph("g", 1, gemmStage(16, 16, 16))
	g2 := MustSubgraph("g", 1, gemmStage(16, 16, 16))
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Fatal("identical structures must share a fingerprint")
	}
	if !strings.HasPrefix(g1.Fingerprint(), "g@") {
		t.Fatalf("fingerprint %q must embed the name", g1.Fingerprint())
	}
	// Weight scales the network objective, not the schedule space: records
	// must transfer between weight variants.
	g3 := MustSubgraph("g", 7, gemmStage(16, 16, 16))
	if g3.Fingerprint() != g1.Fingerprint() {
		t.Fatal("weight must not change the fingerprint")
	}
	// Any structural difference must change it.
	g4 := MustSubgraph("g", 1, gemmStage(16, 32, 16))
	if g4.Fingerprint() == g1.Fingerprint() {
		t.Fatal("extent change must change the fingerprint")
	}
	st := gemmStage(16, 16, 16)
	st.HasReductionParallel = true
	g5 := MustSubgraph("g", 1, st)
	if g5.Fingerprint() == g1.Fingerprint() {
		t.Fatal("capability-flag change must change the fingerprint")
	}
}

// Package texpr is the tensor-expression substrate of the HARL reproduction.
//
// The original system operates on TVM's tensor IR. HARL itself, however, only
// consumes a small set of structural properties of that IR: the iteration
// domain of each stage (spatial and reduction axes), the producer/consumer
// relations between stages of a subgraph, per-tensor access patterns (needed
// to reason about data reuse and cache footprints), and a handful of boolean
// capabilities that drive Ansor's sketch-generation rules (can the stage be
// inlined? does it have data reuse? does it expose reduction parallelism?).
//
// This package models exactly that: a Subgraph is a small DAG of Stages, each
// Stage an iteration domain plus tensor accesses. The sketch generator
// (internal/sketch), the schedule space (internal/schedule) and the hardware
// simulator (internal/hardware) are all defined over these structures.
package texpr

import (
	"fmt"
	"strings"
)

// IterKind distinguishes spatial (parallelizable, output-indexing) iterators
// from reduction iterators.
type IterKind int

const (
	// Spatial iterators index the output tensor and may be tiled, fused and
	// executed in parallel.
	Spatial IterKind = iota
	// Reduction iterators accumulate into the output and are serial unless an
	// rfactor transformation is applied.
	Reduction
)

func (k IterKind) String() string {
	if k == Spatial {
		return "spatial"
	}
	return "reduction"
}

// Iter is a single loop of a stage's iteration domain.
type Iter struct {
	Name   string
	Extent int
	Kind   IterKind
}

// StageKind is a coarse classification used by sketch-generation rules and by
// the hardware simulator's overhead model.
type StageKind int

const (
	// ComputeHeavy stages (GEMM, convolutions) dominate FLOPs and have data
	// reuse; they are the targets of multi-level tiling.
	ComputeHeavy StageKind = iota
	// Elementwise stages (bias add, ReLU, residual add) have no reduction and
	// no reuse; they are candidates for inlining into their consumer.
	Elementwise
	// ReduceLight stages (softmax, pooling, layer-norm pieces) reduce over a
	// small domain without the reuse structure of a GEMM.
	ReduceLight
)

func (k StageKind) String() string {
	switch k {
	case ComputeHeavy:
		return "compute"
	case Elementwise:
		return "elementwise"
	case ReduceLight:
		return "reduce"
	}
	return fmt.Sprintf("StageKind(%d)", int(k))
}

// AxisRef describes how one dimension of an accessed tensor is indexed by the
// stage's iteration domain. A window access (convolution input) is modeled as
// extent(dim) = Scale*extent(iter) + Offset, which is all the cache-footprint
// model needs.
type AxisRef struct {
	Iter   int  // index into Stage.Spatial or Stage.Reduce
	Reduce bool // true if the iterator is a reduction axis
	Scale  int  // stride multiplier; 0 is normalized to 1
	Offset int  // additive window extension (e.g. kernel-1 for stride-1 conv)
}

// Access is one input-tensor access pattern of a stage.
type Access struct {
	Tensor    string
	ElemBytes int // bytes per element; 0 is normalized to 4 (float32)
	Dims      []AxisRef
	// Producer optionally names the stage within the same subgraph whose
	// output this access reads; empty means an external input.
	Producer string
}

// Stage is one computation of a subgraph: an iteration domain producing one
// output tensor from zero or more input accesses.
type Stage struct {
	Name    string
	Kind    StageKind
	Spatial []Iter
	Reduce  []Iter
	Inputs  []Access

	// FLOPsPerPoint is the number of floating-point operations performed per
	// point of the full iteration domain (spatial × reduction). A multiply-
	// accumulate counts as 2.
	FLOPsPerPoint float64

	// OutElemBytes is bytes per output element; 0 is normalized to 4.
	OutElemBytes int

	// Capability flags consumed by the sketch-generation rules (paper Table 2).
	HasDataReuse         bool
	CanInline            bool
	HasReductionParallel bool
}

// OutputElems returns the number of elements of the stage's output tensor,
// i.e. the product of spatial extents.
func (s *Stage) OutputElems() int64 {
	n := int64(1)
	for _, it := range s.Spatial {
		n *= int64(it.Extent)
	}
	return n
}

// ReduceElems returns the product of reduction extents (1 if none).
func (s *Stage) ReduceElems() int64 {
	n := int64(1)
	for _, it := range s.Reduce {
		n *= int64(it.Extent)
	}
	return n
}

// FLOPs returns the total floating-point work of the stage.
func (s *Stage) FLOPs() float64 {
	return s.FLOPsPerPoint * float64(s.OutputElems()) * float64(s.ReduceElems())
}

// OutputBytes returns the size of the stage's output tensor in bytes.
func (s *Stage) OutputBytes() int64 {
	return s.OutputElems() * int64(normBytes(s.OutElemBytes))
}

// InputBytes returns the total size of all distinct input tensors in bytes,
// assuming each tensor is stored once at its full footprint.
func (s *Stage) InputBytes() int64 {
	total := int64(0)
	for _, a := range s.Inputs {
		total += s.AccessBytes(a)
	}
	return total
}

// AccessBytes returns the full footprint of one access in bytes.
func (s *Stage) AccessBytes(a Access) int64 {
	n := int64(normBytes(a.ElemBytes))
	for _, d := range a.Dims {
		n *= int64(s.axisExtent(d))
	}
	return n
}

// AccessTileBytes returns the footprint in bytes of one access when the
// iteration domain is restricted to the given tile extents. spatialTile and
// reduceTile give the tile extent of each spatial/reduction iterator and must
// match the lengths of Spatial/Reduce.
func (s *Stage) AccessTileBytes(a Access, spatialTile, reduceTile []int) int64 {
	n := int64(normBytes(a.ElemBytes))
	for _, d := range a.Dims {
		var tile, full int
		if d.Reduce {
			tile, full = reduceTile[d.Iter], s.Reduce[d.Iter].Extent
		} else {
			tile, full = spatialTile[d.Iter], s.Spatial[d.Iter].Extent
		}
		scale := d.Scale
		if scale == 0 {
			scale = 1
		}
		ext := scale*tile + d.Offset
		fullExt := scale*full + d.Offset
		if ext > fullExt {
			ext = fullExt
		}
		if ext < 1 {
			ext = 1
		}
		n *= int64(ext)
	}
	return n
}

func (s *Stage) axisExtent(d AxisRef) int {
	scale := d.Scale
	if scale == 0 {
		scale = 1
	}
	if d.Reduce {
		return scale*s.Reduce[d.Iter].Extent + d.Offset
	}
	return scale*s.Spatial[d.Iter].Extent + d.Offset
}

func normBytes(b int) int {
	if b == 0 {
		return 4
	}
	return b
}

// Validate checks internal consistency of the stage definition.
func (s *Stage) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("texpr: stage with empty name")
	}
	if len(s.Spatial) == 0 {
		return fmt.Errorf("texpr: stage %q has no spatial iterators", s.Name)
	}
	for _, it := range s.Spatial {
		if it.Extent <= 0 {
			return fmt.Errorf("texpr: stage %q spatial iter %q extent %d", s.Name, it.Name, it.Extent)
		}
		if it.Kind != Spatial {
			return fmt.Errorf("texpr: stage %q iter %q listed as spatial but kind %v", s.Name, it.Name, it.Kind)
		}
	}
	for _, it := range s.Reduce {
		if it.Extent <= 0 {
			return fmt.Errorf("texpr: stage %q reduce iter %q extent %d", s.Name, it.Name, it.Extent)
		}
		if it.Kind != Reduction {
			return fmt.Errorf("texpr: stage %q iter %q listed as reduction but kind %v", s.Name, it.Name, it.Kind)
		}
	}
	for _, a := range s.Inputs {
		for _, d := range a.Dims {
			if d.Reduce {
				if d.Iter < 0 || d.Iter >= len(s.Reduce) {
					return fmt.Errorf("texpr: stage %q access %q references reduce iter %d of %d", s.Name, a.Tensor, d.Iter, len(s.Reduce))
				}
			} else if d.Iter < 0 || d.Iter >= len(s.Spatial) {
				return fmt.Errorf("texpr: stage %q access %q references spatial iter %d of %d", s.Name, a.Tensor, d.Iter, len(s.Spatial))
			}
		}
	}
	if s.FLOPsPerPoint < 0 {
		return fmt.Errorf("texpr: stage %q negative FLOPsPerPoint", s.Name)
	}
	return nil
}

// Subgraph is a small DAG of stages executed as one fused unit, the atomic
// tuning target of the auto-scheduler (a "task" in Ansor terminology).
type Subgraph struct {
	Name   string
	Stages []*Stage
	// Weight is the number of times this subgraph appears in the enclosing
	// network (w_n in the paper's problem formulation). 1 for bare operators.
	Weight int

	producerIdx [][]int // per stage: indices of producer stages
	consumerIdx [][]int // per stage: indices of consumer stages
}

// NewSubgraph builds and validates a subgraph from its stages, resolving the
// Producer names of each access into DAG edges.
func NewSubgraph(name string, weight int, stages ...*Stage) (*Subgraph, error) {
	if name == "" {
		return nil, fmt.Errorf("texpr: subgraph with empty name")
	}
	if weight <= 0 {
		weight = 1
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("texpr: subgraph %q has no stages", name)
	}
	sg := &Subgraph{Name: name, Stages: stages, Weight: weight}
	byName := make(map[string]int, len(stages))
	for i, st := range stages {
		if err := st.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byName[st.Name]; dup {
			return nil, fmt.Errorf("texpr: subgraph %q has duplicate stage %q", name, st.Name)
		}
		byName[st.Name] = i
	}
	sg.producerIdx = make([][]int, len(stages))
	sg.consumerIdx = make([][]int, len(stages))
	for i, st := range stages {
		for _, a := range st.Inputs {
			if a.Producer == "" {
				continue
			}
			j, ok := byName[a.Producer]
			if !ok {
				return nil, fmt.Errorf("texpr: subgraph %q stage %q reads unknown producer %q", name, st.Name, a.Producer)
			}
			if j >= i {
				return nil, fmt.Errorf("texpr: subgraph %q stage %q reads later stage %q (stages must be topologically ordered)", name, st.Name, a.Producer)
			}
			sg.producerIdx[i] = append(sg.producerIdx[i], j)
			sg.consumerIdx[j] = append(sg.consumerIdx[j], i)
		}
	}
	return sg, nil
}

// MustSubgraph is NewSubgraph that panics on error, for static workload tables.
func MustSubgraph(name string, weight int, stages ...*Stage) *Subgraph {
	sg, err := NewSubgraph(name, weight, stages...)
	if err != nil {
		panic(err)
	}
	return sg
}

// Producers returns the indices of stages whose outputs stage i reads.
func (g *Subgraph) Producers(i int) []int { return g.producerIdx[i] }

// Consumers returns the indices of stages that read stage i's output.
func (g *Subgraph) Consumers(i int) []int { return g.consumerIdx[i] }

// MainStage returns the index of the stage with the most FLOPs — the target
// of multi-level tiling in every sketch.
func (g *Subgraph) MainStage() int {
	best, bestF := 0, -1.0
	for i, st := range g.Stages {
		if f := st.FLOPs(); f > bestF {
			best, bestF = i, f
		}
	}
	return best
}

// FLOPs returns the total floating-point work of one execution of the
// subgraph.
func (g *Subgraph) FLOPs() float64 {
	total := 0.0
	for _, st := range g.Stages {
		total += st.FLOPs()
	}
	return total
}

// Fingerprint returns a stable identity of the subgraph for tuning-record
// logs: the subgraph name plus an FNV-1a hash over the canonical structure
// (stage names, kinds, iteration extents, FLOP densities, capability flags and
// access patterns). Two subgraphs share a fingerprint exactly when a schedule
// of one is a valid schedule of the other with the same simulated performance,
// so cached tuning records are transferable between them. Weight is excluded:
// it scales the network-level objective, not the schedule space.
func (g *Subgraph) Fingerprint() string {
	var b strings.Builder
	for _, st := range g.Stages {
		fmt.Fprintf(&b, "|%s:%d:%g:%d%d%d:%d", st.Name, st.Kind, st.FLOPsPerPoint,
			b2i(st.HasDataReuse), b2i(st.CanInline), b2i(st.HasReductionParallel), st.OutElemBytes)
		for _, it := range st.Spatial {
			fmt.Fprintf(&b, ",s%d", it.Extent)
		}
		for _, it := range st.Reduce {
			fmt.Fprintf(&b, ",r%d", it.Extent)
		}
		for _, a := range st.Inputs {
			fmt.Fprintf(&b, ";%s:%s:%d", a.Tensor, a.Producer, a.ElemBytes)
			for _, d := range a.Dims {
				fmt.Fprintf(&b, ",%d:%t:%d:%d", d.Iter, d.Reduce, d.Scale, d.Offset)
			}
		}
	}
	h := uint64(14695981039346656037)
	for _, c := range []byte(b.String()) {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return fmt.Sprintf("%s@%016x", g.Name, h)
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// StageIndex returns the index of the named stage, or -1.
func (g *Subgraph) StageIndex(name string) int {
	for i, st := range g.Stages {
		if st.Name == name {
			return i
		}
	}
	return -1
}

// String renders a short human-readable description of the subgraph.
func (g *Subgraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "subgraph %s (weight %d):\n", g.Name, g.Weight)
	for i, st := range g.Stages {
		fmt.Fprintf(&b, "  [%d] %s %s spatial=", i, st.Name, st.Kind)
		for j, it := range st.Spatial {
			if j > 0 {
				b.WriteByte('x')
			}
			fmt.Fprintf(&b, "%d", it.Extent)
		}
		if len(st.Reduce) > 0 {
			b.WriteString(" reduce=")
			for j, it := range st.Reduce {
				if j > 0 {
					b.WriteByte('x')
				}
				fmt.Fprintf(&b, "%d", it.Extent)
			}
		}
		fmt.Fprintf(&b, " flops=%.3g\n", st.FLOPs())
	}
	return b.String()
}

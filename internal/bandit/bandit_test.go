package bandit

import (
	"testing"

	"harl/internal/xrand"
)

// pullLoop runs a policy against arm reward functions for n steps and
// returns per-arm pull counts.
func pullLoop(p Policy, rewards func(step, arm int) float64, n int) []int {
	var counts []int
	for step := 0; step < n; step++ {
		a := p.Select()
		for len(counts) <= a {
			counts = append(counts, 0)
		}
		counts[a]++
		p.Update(a, rewards(step, a))
	}
	return counts
}

func TestSWUCBFindsBestStationaryArm(t *testing.T) {
	rng := xrand.New(1)
	b := NewSWUCB(3, 0.25, 256, rng.Split())
	noise := rng.Split()
	means := []float64{0.2, 0.8, 0.5}
	counts := pullLoop(b, func(_, arm int) float64 {
		return means[arm] + 0.05*noise.NormFloat64()
	}, 600)
	if counts[1] < counts[0] || counts[1] < counts[2] {
		t.Fatalf("best arm underplayed: %v", counts)
	}
	if counts[1] < 300 {
		t.Fatalf("best arm only %d/600 pulls", counts[1])
	}
}

func TestSWUCBAdaptsToNonStationarity(t *testing.T) {
	rng := xrand.New(2)
	b := NewSWUCB(2, 0.25, 64, rng.Split())
	noise := rng.Split()
	// Arm 0 is best for the first half, arm 1 for the second half.
	lastQuarter := make([]int, 2)
	for step := 0; step < 800; step++ {
		a := b.Select()
		r := 0.0
		if (step < 400 && a == 0) || (step >= 400 && a == 1) {
			r = 1
		}
		r += 0.05 * noise.NormFloat64()
		b.Update(a, r)
		if step >= 600 {
			lastQuarter[a]++
		}
	}
	if lastQuarter[1] < 3*lastQuarter[0] {
		t.Fatalf("window did not adapt after switch: %v", lastQuarter)
	}
}

func TestSWUCBExploresAllArmsFirst(t *testing.T) {
	rng := xrand.New(3)
	b := NewSWUCB(5, 0.25, 256, rng)
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		a := b.Select()
		if seen[a] {
			t.Fatalf("arm %d pulled before all arms explored", a)
		}
		seen[a] = true
		b.Update(a, 0.5)
	}
}

func TestSWUCBWindowEviction(t *testing.T) {
	rng := xrand.New(4)
	b := NewSWUCB(2, 0.25, 10, rng)
	for i := 0; i < 50; i++ {
		b.Update(0, 1)
	}
	counts := b.Counts()
	if counts[0] != 10 {
		t.Fatalf("window count %d want 10", counts[0])
	}
}

func TestGreedyExploitsOnly(t *testing.T) {
	rng := xrand.New(5)
	g := NewGreedy(3, rng)
	// After one pull each, arm 2 has the best mean and must be chosen forever.
	g.Update(0, 0.1)
	g.Update(1, 0.2)
	g.Update(2, 0.9)
	for i := 0; i < 50; i++ {
		a := g.Select()
		if a != 2 {
			t.Fatalf("greedy chose %d", a)
		}
		g.Update(a, 0.9)
	}
}

func TestGreedyInitialSweep(t *testing.T) {
	g := NewGreedy(4, xrand.New(6))
	for want := 0; want < 4; want++ {
		if a := g.Select(); a != want {
			t.Fatalf("initial sweep picked %d want %d", a, want)
		}
		g.Update(want, 0)
	}
}

func TestUniformCoversArms(t *testing.T) {
	u := NewUniform(4, xrand.New(7))
	counts := pullLoop(u, func(int, int) float64 { return 0 }, 4000)
	for a, c := range counts {
		if c < 800 || c > 1200 {
			t.Fatalf("arm %d pulled %d/4000 under uniform", a, c)
		}
	}
}

func TestUCB1FindsBestArm(t *testing.T) {
	rng := xrand.New(8)
	u := NewUCB1(3, 1.0, rng.Split())
	noise := rng.Split()
	means := []float64{0.3, 0.5, 0.9}
	counts := pullLoop(u, func(_, arm int) float64 {
		return means[arm] + 0.05*noise.NormFloat64()
	}, 600)
	if counts[2] < counts[0] || counts[2] < counts[1] {
		t.Fatalf("ucb1 underplayed best arm: %v", counts)
	}
}

// The ablation the SW-UCB design targets: on a non-stationary stream the
// sliding window recovers faster than stationary UCB1.
func TestSWUCBBeatsUCB1AfterSwitch(t *testing.T) {
	run := func(p Policy) int {
		rng := xrand.New(99)
		goodPulls := 0
		for step := 0; step < 2000; step++ {
			a := p.Select()
			r := 0.0
			if (step < 1000 && a == 0) || (step >= 1000 && a == 1) {
				r = 1
			}
			r += 0.05 * rng.NormFloat64()
			p.Update(a, r)
			if step >= 1500 && a == 1 {
				goodPulls++
			}
		}
		return goodPulls
	}
	sw := run(NewSWUCB(2, 0.25, 128, xrand.New(1)))
	ucb := run(NewUCB1(2, 0.25, xrand.New(1)))
	if sw <= ucb {
		t.Fatalf("sw-ucb %d ≤ ucb1 %d good pulls after switch", sw, ucb)
	}
}

func TestPolicyNames(t *testing.T) {
	rng := xrand.New(9)
	for _, pair := range []struct {
		p    Policy
		want string
	}{
		{NewSWUCB(2, 0.25, 8, rng), "sw-ucb"},
		{NewGreedy(2, rng), "greedy"},
		{NewUniform(2, rng), "uniform"},
		{NewUCB1(2, 1, rng), "ucb1"},
	} {
		if pair.p.Name() != pair.want {
			t.Fatalf("name %q want %q", pair.p.Name(), pair.want)
		}
	}
}

func TestSWUCBPanicsOnZeroArms(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero arms did not panic")
		}
	}()
	NewSWUCB(0, 0.25, 8, xrand.New(1))
}

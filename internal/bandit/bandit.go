// Package bandit implements the non-stationary multi-armed-bandit policies of
// HARL's high-level decisions: Sliding-Window Upper-Confidence-Bound (SW-UCB,
// Eq. 1 of the paper) for subgraph and sketch selection, plus the greedy,
// uniform and stationary-UCB policies used by the Ansor baseline and the
// ablation studies.
//
// SW-UCB selects O_t = argmax_a ( Q_t(τ,a) + c·sqrt( ln(min(t,τ)) / N_t(τ,a) ) ),
// where Q averages the rewards of arm a inside a sliding window of size τ and
// N counts the arm's pulls inside the window — the paper instantiates Q with
// Eq. 2 (windowed mean performance) for sketches and with Eq. 3/4 (Ansor's
// gradient estimate) for subgraphs.
package bandit

import (
	"math"

	"harl/internal/xrand"
)

// Policy is a sequential arm-selection strategy.
type Policy interface {
	// Select returns the arm to pull at the current step.
	Select() int
	// Update records the observed reward of a pulled arm.
	Update(arm int, reward float64)
	// Name identifies the policy in experiment output.
	Name() string
}

// SWUCB is the sliding-window UCB policy of Eq. 1.
type SWUCB struct {
	C      float64 // exploration constant c (paper: 0.25)
	Window int     // window size τ (paper: 256)

	arms int
	t    int
	hist []pull // ring buffer of the last Window pulls

	rng *xrand.RNG
}

type pull struct {
	arm    int
	reward float64
}

// NewSWUCB creates an SW-UCB policy over the given number of arms.
func NewSWUCB(arms int, c float64, window int, rng *xrand.RNG) *SWUCB {
	if arms <= 0 {
		panic("bandit: SWUCB needs at least one arm")
	}
	return &SWUCB{C: c, Window: window, arms: arms, rng: rng}
}

// Name implements Policy.
func (b *SWUCB) Name() string { return "sw-ucb" }

// windowStats returns per-arm pull counts and mean rewards in the window.
func (b *SWUCB) windowStats() (counts []int, means []float64) {
	counts = make([]int, b.arms)
	sums := make([]float64, b.arms)
	for _, p := range b.hist {
		counts[p.arm]++
		sums[p.arm] += p.reward
	}
	means = make([]float64, b.arms)
	for a := range means {
		if counts[a] > 0 {
			means[a] = sums[a] / float64(counts[a])
		}
	}
	return counts, means
}

// Select implements Eq. 1: unexplored arms (N_t = 0 in the window) are pulled
// first; ties break uniformly at random so the policy is not order-biased.
func (b *SWUCB) Select() int {
	counts, means := b.windowStats()
	var unexplored []int
	for a, n := range counts {
		if n == 0 {
			unexplored = append(unexplored, a)
		}
	}
	if len(unexplored) > 0 {
		return unexplored[b.rng.Intn(len(unexplored))]
	}
	tEff := math.Min(float64(b.t), float64(b.Window))
	if tEff < 2 {
		tEff = 2
	}
	best, bestV := []int{0}, math.Inf(-1)
	for a := 0; a < b.arms; a++ {
		v := means[a] + b.C*math.Sqrt(math.Log(tEff)/float64(counts[a]))
		switch {
		case v > bestV:
			best, bestV = best[:0], v
			best = append(best, a)
		case v == bestV:
			best = append(best, a)
		}
	}
	return best[b.rng.Intn(len(best))]
}

// Update implements Policy: the pull enters the sliding window, evicting the
// oldest entry beyond τ.
func (b *SWUCB) Update(arm int, reward float64) {
	b.t++
	b.hist = append(b.hist, pull{arm, reward})
	if len(b.hist) > b.Window {
		b.hist = b.hist[1:]
	}
}

// Counts returns the all-time pull counts per arm (for allocation reporting).
func (b *SWUCB) Counts() []int {
	counts, _ := b.windowStats()
	return counts
}

// Greedy always selects the arm with the best running mean reward — the
// deterministic selection Ansor's task scheduler applies to its gradient
// estimates (the "Greedy Selection / Greedy Allocation" rows of Table 1).
type Greedy struct {
	sums   []float64
	counts []int
	rng    *xrand.RNG
}

// NewGreedy creates a greedy policy over the given number of arms.
func NewGreedy(arms int, rng *xrand.RNG) *Greedy {
	return &Greedy{sums: make([]float64, arms), counts: make([]int, arms), rng: rng}
}

// Name implements Policy.
func (g *Greedy) Name() string { return "greedy" }

// Select implements Policy: argmax of mean reward, unexplored arms first.
func (g *Greedy) Select() int {
	for a, n := range g.counts {
		if n == 0 {
			return a
		}
	}
	best, bestV := 0, math.Inf(-1)
	for a := range g.sums {
		if v := g.sums[a] / float64(g.counts[a]); v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Update implements Policy.
func (g *Greedy) Update(arm int, reward float64) {
	g.sums[arm] += reward
	g.counts[arm]++
}

// Uniform selects arms uniformly at random — Ansor's sketch selection.
type Uniform struct {
	arms int
	rng  *xrand.RNG
}

// NewUniform creates a uniform policy.
func NewUniform(arms int, rng *xrand.RNG) *Uniform { return &Uniform{arms: arms, rng: rng} }

// Name implements Policy.
func (u *Uniform) Name() string { return "uniform" }

// Select implements Policy.
func (u *Uniform) Select() int { return u.rng.Intn(u.arms) }

// Update implements Policy (no state).
func (u *Uniform) Update(int, float64) {}

// UCB1 is the classic stationary UCB policy, included for ablations against
// the sliding-window variant on non-stationary reward streams.
type UCB1 struct {
	C      float64
	sums   []float64
	counts []int
	t      int
	rng    *xrand.RNG
}

// NewUCB1 creates a stationary UCB1 policy.
func NewUCB1(arms int, c float64, rng *xrand.RNG) *UCB1 {
	return &UCB1{C: c, sums: make([]float64, arms), counts: make([]int, arms), rng: rng}
}

// Name implements Policy.
func (u *UCB1) Name() string { return "ucb1" }

// Select implements Policy.
func (u *UCB1) Select() int {
	for a, n := range u.counts {
		if n == 0 {
			return a
		}
	}
	best, bestV := 0, math.Inf(-1)
	for a := range u.sums {
		v := u.sums[a]/float64(u.counts[a]) + u.C*math.Sqrt(math.Log(float64(u.t))/float64(u.counts[a]))
		if v > bestV {
			best, bestV = a, v
		}
	}
	return best
}

// Update implements Policy.
func (u *UCB1) Update(arm int, reward float64) {
	u.t++
	u.sums[arm] += reward
	u.counts[arm]++
}

// Package fleet puts hardware measurement — the hot path of tuning — behind
// an RPC seam, so one coordinator can fan measurement batches out to a pool
// of harl-worker daemons across machines (the request_remote device-pool
// shape of TVM/Ansor tuning scripts).
//
// The seam preserves the system's determinism contract end to end. A measured
// execution time is a pure function of (schedule, repetition index, noise
// seed) — hardware.NoisyExecSeeded — so a worker that receives the subgraph
// spec, target platform, noise seed and serialized schedule steps computes
// bit-exactly the values the coordinator's in-process path would. All
// order-sensitive bookkeeping (trial accounting, best-so-far logs, cost-model
// training, journal appends) stays on the coordinator in commit order.
// Tuning journals are therefore byte-identical regardless of which worker
// measured what — including when a worker dies mid-run and its batches are
// retried elsewhere or recovered by the in-process fallback.
//
// The package has three parts:
//
//   - the wire protocol (this file): versioned measure-batch request/response
//     types plus the worker's health report, sharing the unified v1 error
//     envelope (internal/wire) with the public REST API;
//   - Worker (server.go): the worker-side HTTP surface harl-worker serves —
//     POST /v1/measure executes batches with the deterministic simulator,
//     GET /healthz reports liveness and the served target platforms;
//   - Pool + RemoteMeasurer (pool.go, remote.go): the coordinator side —
//     lease-based batch assignment round-robining over healthy workers with
//     per-worker concurrency caps, per-batch timeouts, bounded retry with
//     exponential backoff, health-checked eject/readmit, and graceful
//     fallback to in-process measurement when no worker can take a batch.
package fleet

import (
	"harl/internal/texpr"
)

// ProtocolVersion is the measure-protocol schema version. Workers reject
// requests with a different version rather than misinterpreting them.
const ProtocolVersion = 1

// SubgraphSpec is a subgraph in wire form: exactly the exported structure of
// texpr.Subgraph, rebuilt (and revalidated) on the worker via
// texpr.NewSubgraph so producer/consumer edges are re-derived rather than
// trusted.
type SubgraphSpec struct {
	Name   string         `json:"name"`
	Weight int            `json:"weight"`
	Stages []*texpr.Stage `json:"stages"`
}

// SpecOf renders a subgraph for the wire.
func SpecOf(g *texpr.Subgraph) SubgraphSpec {
	return SubgraphSpec{Name: g.Name, Weight: g.Weight, Stages: g.Stages}
}

// Build reconstructs and validates the subgraph.
func (s SubgraphSpec) Build() (*texpr.Subgraph, error) {
	return texpr.NewSubgraph(s.Name, s.Weight, s.Stages...)
}

// TrialSpec is one trial of a measure batch: the schedule's serialized
// transform steps (schedule.MarshalSteps — the tuning-journal format) and the
// reserved noise-repetition index.
type TrialSpec struct {
	Steps string `json:"steps"`
	Seq   uint64 `json:"seq"`
}

// MeasureRequest is the body of POST /v1/measure: everything a worker needs
// to reproduce the coordinator's measurement values bit-exactly.
type MeasureRequest struct {
	V int `json:"v"`
	// Workload is the subgraph fingerprint the coordinator computed; the
	// worker recomputes it from the rebuilt spec and rejects a mismatch (a
	// schedule measured against the wrong structure would be silently wrong).
	Workload string `json:"workload"`
	// Target is the platform name (hardware.Platform.Name or its short name).
	Target string `json:"target"`
	// NoiseSeed is the coordinator measurer's noise seed.
	NoiseSeed uint64 `json:"noise_seed"`
	// Subgraph is the workload structure the schedules apply to.
	Subgraph SubgraphSpec `json:"subgraph"`
	// Trials are the schedules to measure, with their repetition indices.
	Trials []TrialSpec `json:"trials"`
}

// MeasureResponse is the 200 body of POST /v1/measure.
type MeasureResponse struct {
	V int `json:"v"`
	// ExecSec are the noisy measured execution times, aligned with the
	// request's trials.
	ExecSec []float64 `json:"exec_sec"`
}

// HealthResponse is the 200 body of GET /healthz on a worker: liveness plus
// the registration info the coordinator's pool consumes — which target
// platforms this worker serves (empty means all), and the work counters.
type HealthResponse struct {
	Status string `json:"status"`
	// Targets are the platform names this worker measures for. The pool
	// routes a task to a worker only when the task's platform is listed (or
	// the list is empty) — how heterogeneous fleets serve cpu- and gpu-target
	// workloads from one coordinator.
	Targets []string `json:"targets"`
	// Batches and Trials count the measure batches and individual trials
	// this worker has executed.
	Batches int64 `json:"batches"`
	Trials  int64 `json:"trials"`
}

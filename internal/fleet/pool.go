package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"harl/internal/search"
	"harl/internal/wire"
)

// Config tunes the coordinator-side pool. The zero value is usable; every
// field has a production default.
type Config struct {
	// Timeout bounds one measure-batch RPC, dial to last byte.
	Timeout time.Duration
	// Retries is how many times a failed batch is re-dispatched (to the next
	// healthy worker in rotation) before the caller falls back to in-process
	// measurement. 0 selects the default; negative means no retries.
	Retries int
	// BackoffBase is the sleep before the first retry; it doubles per attempt.
	BackoffBase time.Duration
	// HealthInterval is the period of the background health-check loop.
	HealthInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. It is deliberately independent
	// of HealthInterval: a fast poll period must not impose a deadline a
	// healthy-but-busy worker (or a loaded single-core coordinator) misses,
	// since consecutive probe misses eject the worker from rotation.
	ProbeTimeout time.Duration
	// EjectAfter is the number of consecutive failures (dispatch or probe)
	// after which a worker is ejected from rotation. A later successful probe
	// readmits it.
	EjectAfter int
	// Concurrency caps in-flight batches per worker.
	Concurrency int
	// Client is the HTTP client for both dispatch and health probes; nil uses
	// a private default.
	Client *http.Client
}

const (
	defaultTimeout        = 30 * time.Second
	defaultRetries        = 2
	defaultBackoffBase    = 100 * time.Millisecond
	defaultHealthInterval = 2 * time.Second
	defaultProbeTimeout   = 2 * time.Second
	defaultEjectAfter     = 3
	defaultConcurrency    = 4
)

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = defaultTimeout
	}
	if c.Retries == 0 {
		c.Retries = defaultRetries
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = defaultBackoffBase
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = defaultHealthInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = defaultProbeTimeout
	}
	if c.EjectAfter <= 0 {
		c.EjectAfter = defaultEjectAfter
	}
	if c.Concurrency <= 0 {
		c.Concurrency = defaultConcurrency
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Stats is a snapshot of the pool's counters — the source of the
// harl_fleet_* series at /metrics.
type Stats struct {
	Workers           int   // registered workers
	Healthy           int   // currently in rotation
	BatchesDispatched int64 // measure batches completed remotely
	TrialsDispatched  int64 // individual trials inside those batches
	Retries           int64 // batch re-dispatch attempts
	Ejections         int64 // workers removed from rotation
	Readmissions      int64 // ejected workers probed back in
	Fallbacks         int64 // batches recovered by in-process measurement
}

// worker is the pool's view of one harl-worker endpoint. All fields are
// guarded by the pool mutex.
type worker struct {
	endpoint string
	// targets is the platform set the worker reported from /healthz; empty
	// means it serves every platform. nil means no probe has succeeded yet.
	targets  map[string]bool
	healthy  bool
	fails    int // consecutive failures (probe or dispatch)
	inflight int
	batches  int64
}

func (w *worker) serves(target string) bool {
	if len(w.targets) == 0 {
		return true
	}
	return w.targets[target]
}

// Pool is the coordinator side of the fleet: it owns the worker list, leases
// workers to measure batches (round-robin over healthy workers that serve the
// batch's target platform, bounded by per-worker concurrency), and runs the
// health-check loop that ejects failing workers and readmits recovered ones.
//
// A Pool with zero healthy workers is not an error condition: EvalBatch
// callers fall back to in-process measurement, so fleet loss degrades
// throughput, never correctness.
type Pool struct {
	cfg Config

	mu      sync.Mutex
	workers []*worker
	rr      int // round-robin cursor
	stats   Stats

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// NewPool builds a pool over the worker endpoints ("host:port" or full URLs),
// probes each once synchronously so callers see an accurate initial health
// picture, and starts the background health loop. Close releases it.
func NewPool(endpoints []string, cfg Config) (*Pool, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("fleet: no worker endpoints")
	}
	p := &Pool{
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	seen := make(map[string]bool)
	for _, e := range endpoints {
		e = strings.TrimRight(strings.TrimSpace(e), "/")
		if e == "" {
			continue
		}
		if !strings.Contains(e, "://") {
			e = "http://" + e
		}
		if seen[e] {
			continue
		}
		seen[e] = true
		p.workers = append(p.workers, &worker{endpoint: e})
	}
	if len(p.workers) == 0 {
		return nil, fmt.Errorf("fleet: no worker endpoints")
	}
	p.probeAll()
	go p.healthLoop()
	return p, nil
}

// Close stops the health loop. In-flight batches are unaffected.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Workers = len(p.workers)
	for _, w := range p.workers {
		if w.healthy {
			s.Healthy++
		}
	}
	return s
}

// EvaluatorFor returns a remote evaluator for the task, or nil when no
// registered worker serves the task's platform — in which case the task keeps
// measuring in-process. The nil must be a true interface nil (not a typed nil
// pointer), since search.Task checks `Remote == nil`.
func (p *Pool) EvaluatorFor(t *search.Task) search.BatchEvaluator {
	target := t.Plat.Name
	p.mu.Lock()
	served := false
	for _, w := range p.workers {
		// Unprobed workers (targets == nil) count: they may come up later,
		// and an unserved batch just falls back in the meantime.
		if w.targets == nil || w.serves(target) {
			served = true
			break
		}
	}
	p.mu.Unlock()
	if !served {
		return nil
	}
	spec, err := json.Marshal(SpecOf(t.Graph))
	if err != nil {
		return nil
	}
	return &RemoteMeasurer{
		pool:      p,
		target:    target,
		workload:  t.Graph.Fingerprint(),
		noiseSeed: t.Meas.NoiseSeed(),
		spec:      spec,
	}
}

// lease picks the next healthy worker serving target with spare concurrency,
// claiming one in-flight slot. ok is false when no worker qualifies right now
// (pool empty, all ejected, all saturated, or none serves the target).
func (p *Pool) lease(target string) (w *worker, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.workers)
	for i := 0; i < n; i++ {
		cand := p.workers[(p.rr+i)%n]
		if cand.healthy && cand.inflight < p.cfg.Concurrency && cand.serves(target) {
			p.rr = (p.rr + i + 1) % n
			cand.inflight++
			return cand, true
		}
	}
	return nil, false
}

// release returns a lease, folding the dispatch outcome into the worker's
// health accounting: success clears the failure streak, failure counts
// toward ejection.
func (p *Pool) release(w *worker, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.inflight--
	if err == nil {
		w.fails = 0
		w.batches++
		return
	}
	p.noteFailureLocked(w)
}

func (p *Pool) noteFailureLocked(w *worker) {
	w.fails++
	if w.healthy && w.fails >= p.cfg.EjectAfter {
		w.healthy = false
		p.stats.Ejections++
	}
}

func (p *Pool) countBatch(trials int) {
	p.mu.Lock()
	p.stats.BatchesDispatched++
	p.stats.TrialsDispatched += int64(trials)
	p.mu.Unlock()
}

func (p *Pool) countRetry() {
	p.mu.Lock()
	p.stats.Retries++
	p.mu.Unlock()
}

func (p *Pool) countFallback() {
	p.mu.Lock()
	p.stats.Fallbacks++
	p.mu.Unlock()
}

// healthLoop probes every worker each HealthInterval. Probe success readmits
// an ejected worker (and refreshes its served-target set); probe failure
// counts toward ejection exactly like a dispatch failure.
func (p *Pool) healthLoop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

func (p *Pool) probeAll() {
	p.mu.Lock()
	workers := make([]*worker, len(p.workers))
	copy(workers, p.workers)
	p.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			hr, err := p.probe(w.endpoint)
			p.mu.Lock()
			defer p.mu.Unlock()
			if err != nil {
				p.noteFailureLocked(w)
				return
			}
			targets := make(map[string]bool, len(hr.Targets))
			for _, t := range hr.Targets {
				targets[t] = true
			}
			// A worker that had probed successfully before and is unhealthy
			// now was ejected; this probe readmits it. A first-ever probe is
			// registration, not readmission.
			firstProbe := w.targets == nil
			w.targets = targets
			w.fails = 0
			if !w.healthy {
				if !firstProbe {
					p.stats.Readmissions++
				}
				w.healthy = true
			}
		}(w)
	}
	wg.Wait()
}

func (p *Pool) probe(endpoint string) (*HealthResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wire.DecodeError(resp)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		return nil, fmt.Errorf("fleet: bad health body from %s: %w", endpoint, err)
	}
	return &hr, nil
}

package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// fastConfig keeps test pools snappy: short probes, tiny backoff, one-strike
// ejection.
func fastConfig() Config {
	return Config{
		Timeout:        5 * time.Second,
		Retries:        -1, // no retries unless a test overrides
		BackoffBase:    time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
		EjectAfter:     1,
		Concurrency:    4,
	}
}

func newTask(t *testing.T, seed uint64) *search.Task {
	t.Helper()
	sg := workload.GEMM("g", 1, 64, 64, 64)
	plat := hardware.CPUXeon6226R()
	rng := xrand.New(seed)
	meas := hardware.NewMeasurer(hardware.NewSimulator(plat), rng.Split())
	return search.NewTask(sg, plat, meas, rng.Split())
}

func sampleBatch(task *search.Task, n int) ([]*schedule.Schedule, []uint64) {
	scheds := make([]*schedule.Schedule, n)
	seqs := make([]uint64, n)
	for i := range scheds {
		sk := task.Sketches[task.RNG.Intn(len(task.Sketches))]
		scheds[i] = task.RandomSchedule(sk)
		seqs[i] = task.Meas.ReserveSeq(scheds[i].Key())
	}
	return scheds, seqs
}

func startWorker(t *testing.T, targets ...string) (*Worker, *httptest.Server) {
	t.Helper()
	wk, err := NewWorker(targets, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(wk.Handler())
	t.Cleanup(srv.Close)
	return wk, srv
}

func newPool(t *testing.T, cfg Config, endpoints ...string) *Pool {
	t.Helper()
	p, err := NewPool(endpoints, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRemoteMatchesLocalBitExact is the seam's core contract: a batch
// evaluated by a worker over HTTP returns exactly the float64s the
// coordinator's in-process measurer computes for the same (schedule, seq)
// pairs.
func TestRemoteMatchesLocalBitExact(t *testing.T) {
	_, srv := startWorker(t)
	pool := newPool(t, fastConfig(), srv.URL)
	task := newTask(t, 7)

	ev := pool.EvaluatorFor(task)
	if ev == nil {
		t.Fatal("no evaluator for a cpu task against an all-target worker")
	}
	scheds, seqs := sampleBatch(task, 24)
	got, err := ev.EvalBatch(scheds, seqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scheds {
		want := task.Meas.NoisyExec(s, seqs[i])
		if got[i] != want {
			t.Fatalf("trial %d: remote %v != local %v", i, got[i], want)
		}
	}
	if st := pool.Stats(); st.BatchesDispatched != 1 || st.TrialsDispatched != 24 || st.Fallbacks != 0 {
		t.Fatalf("stats after one clean batch: %+v", st)
	}
}

// TestMeasureBatchViaRemote drives the seam the way the search layer does:
// Task.MeasureBatch with Remote installed must journal the same results as a
// twin task measuring in-process.
func TestMeasureBatchViaRemote(t *testing.T) {
	_, srv := startWorker(t)
	pool := newPool(t, fastConfig(), srv.URL)

	local, remote := newTask(t, 11), newTask(t, 11)
	remote.Remote = pool.EvaluatorFor(remote)
	if remote.Remote == nil {
		t.Fatal("no evaluator")
	}
	for round := 0; round < 3; round++ {
		var lb, rb []*schedule.Schedule
		for i := 0; i < 8; i++ {
			sk := local.Sketches[local.RNG.Intn(len(local.Sketches))]
			lb = append(lb, local.RandomSchedule(sk))
			sk = remote.Sketches[remote.RNG.Intn(len(remote.Sketches))]
			rb = append(rb, remote.RandomSchedule(sk))
		}
		local.MeasureBatch(lb)
		remote.MeasureBatch(rb)
	}
	if local.BestExec != remote.BestExec {
		t.Fatalf("best exec diverged: local %v, remote %v", local.BestExec, remote.BestExec)
	}
	ll, rl := local.Meas.BestLog(), remote.Meas.BestLog()
	if len(ll) != len(rl) {
		t.Fatalf("log lengths diverged: %d vs %d", len(ll), len(rl))
	}
	for i := range ll {
		if ll[i] != rl[i] {
			t.Fatalf("best log diverged at %d: %v vs %v", i, ll[i], rl[i])
		}
	}
	if st := pool.Stats(); st.BatchesDispatched == 0 {
		t.Fatal("no batches dispatched remotely")
	}
}

// TestFallbackWhenWorkerDies: a dead worker makes EvalBatch error (so
// MeasureBatch falls back in-process) and the pool counts the fallback and
// eventually ejects the worker.
func TestFallbackWhenWorkerDies(t *testing.T) {
	_, srv := startWorker(t)
	pool := newPool(t, fastConfig(), srv.URL)
	task := newTask(t, 3)
	ev := pool.EvaluatorFor(task)

	scheds, seqs := sampleBatch(task, 4)
	if _, err := ev.EvalBatch(scheds, seqs); err != nil {
		t.Fatalf("healthy dispatch failed: %v", err)
	}

	srv.Close() // kill the worker
	scheds2, seqs2 := sampleBatch(task, 4)
	if _, err := ev.EvalBatch(scheds2, seqs2); err == nil {
		t.Fatal("dispatch to a dead worker succeeded")
	}
	// MeasureBatch's fallback recomputes the same values locally — spot-check
	// the equivalence the journal identity rests on.
	for i, s := range scheds2 {
		v := task.Meas.NoisyExec(s, seqs2[i])
		if v <= 0 {
			t.Fatalf("local fallback value %v", v)
		}
	}
	st := pool.Stats()
	if st.Fallbacks == 0 {
		t.Fatalf("no fallback counted: %+v", st)
	}
	waitFor(t, "ejection", func() bool { return pool.Stats().Healthy == 0 })
	if pool.Stats().Ejections == 0 {
		t.Fatalf("no ejection counted: %+v", pool.Stats())
	}
}

// TestEjectReadmit: a worker whose health endpoint starts failing is ejected
// from rotation and readmitted once it recovers.
func TestEjectReadmit(t *testing.T) {
	wk, err := NewWorker(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	var failing atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		wk.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	pool := newPool(t, fastConfig(), srv.URL)
	waitFor(t, "initial health", func() bool { return pool.Stats().Healthy == 1 })

	failing.Store(true)
	waitFor(t, "ejection", func() bool { return pool.Stats().Healthy == 0 })
	if pool.Stats().Ejections == 0 {
		t.Fatalf("ejection not counted: %+v", pool.Stats())
	}

	failing.Store(false)
	waitFor(t, "readmission", func() bool { return pool.Stats().Healthy == 1 })
	if pool.Stats().Readmissions == 0 {
		t.Fatalf("readmission not counted: %+v", pool.Stats())
	}
}

// TestHeterogeneousTargetRouting: a gpu-only worker yields no evaluator for a
// cpu task (a true interface nil), and the pool routes cpu batches only to
// workers that serve cpu.
func TestHeterogeneousTargetRouting(t *testing.T) {
	_, gpuSrv := startWorker(t, "gpu")
	pool := newPool(t, fastConfig(), gpuSrv.URL)
	waitFor(t, "gpu worker probe", func() bool { return pool.Stats().Healthy == 1 })

	task := newTask(t, 5) // cpu task
	if ev := pool.EvaluatorFor(task); ev != nil {
		t.Fatalf("cpu task got an evaluator from a gpu-only fleet: %#v", ev)
	}

	// Adding a cpu worker makes the same task eligible, and its batches land
	// on the cpu worker only.
	cpuWk, cpuSrv := startWorker(t, "cpu")
	mixed := newPool(t, fastConfig(), gpuSrv.URL, cpuSrv.URL)
	waitFor(t, "both probes", func() bool { return mixed.Stats().Healthy == 2 })
	ev := mixed.EvaluatorFor(task)
	if ev == nil {
		t.Fatal("cpu task got no evaluator from a mixed fleet")
	}
	scheds, seqs := sampleBatch(task, 6)
	if _, err := ev.EvalBatch(scheds, seqs); err != nil {
		t.Fatal(err)
	}
	if cpuWk.Batches() != 1 {
		t.Fatalf("cpu worker served %d batches, want 1", cpuWk.Batches())
	}
}

// TestRoundRobinSpreadsBatches: sequential batches alternate across healthy
// workers instead of pinning to one.
func TestRoundRobinSpreadsBatches(t *testing.T) {
	wk1, srv1 := startWorker(t)
	wk2, srv2 := startWorker(t)
	pool := newPool(t, fastConfig(), srv1.URL, srv2.URL)
	waitFor(t, "both probes", func() bool { return pool.Stats().Healthy == 2 })

	task := newTask(t, 9)
	ev := pool.EvaluatorFor(task)
	for i := 0; i < 6; i++ {
		scheds, seqs := sampleBatch(task, 2)
		if _, err := ev.EvalBatch(scheds, seqs); err != nil {
			t.Fatal(err)
		}
	}
	if wk1.Batches() == 0 || wk2.Batches() == 0 {
		t.Fatalf("round-robin pinned: worker1=%d worker2=%d", wk1.Batches(), wk2.Batches())
	}
}

// TestRetryMovesToNextWorker: with one broken and one healthy worker, a batch
// that lands on the broken one is retried and completes on the other.
func TestRetryMovesToNextWorker(t *testing.T) {
	var served atomic.Int64
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			// Healthy on probes, broken on dispatch: the worst failure mode,
			// because it stays in rotation.
			json.NewEncoder(w).Encode(HealthResponse{Status: "ok"})
			return
		}
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer broken.Close()
	_, good := startWorker(t)

	cfg := fastConfig()
	cfg.Retries = 3
	pool := newPool(t, cfg, broken.URL, good.URL)
	waitFor(t, "both probes", func() bool { return pool.Stats().Healthy == 2 })

	task := newTask(t, 13)
	ev := pool.EvaluatorFor(task)
	for i := 0; i < 4; i++ {
		scheds, seqs := sampleBatch(task, 2)
		res, err := ev.EvalBatch(scheds, seqs)
		if err != nil {
			t.Fatalf("batch %d failed despite a healthy worker in rotation: %v", i, err)
		}
		if len(res) != 2 {
			t.Fatalf("batch %d: %d results", i, len(res))
		}
		served.Add(1)
	}
	st := pool.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries counted despite a broken worker: %+v", st)
	}
	if st.BatchesDispatched != served.Load() {
		t.Fatalf("dispatched %d, served %d", st.BatchesDispatched, served.Load())
	}
}

// TestWorkerErrorContract: every worker error path answers the v1 envelope
// with the right machine code.
func TestWorkerErrorContract(t *testing.T) {
	_, cpuOnly := startWorker(t, "cpu")
	task := newTask(t, 17)
	goodReq := func() MeasureRequest {
		scheds, seqs := sampleBatch(task, 1)
		return MeasureRequest{
			V:         ProtocolVersion,
			Workload:  task.Graph.Fingerprint(),
			Target:    "cpu",
			NoiseSeed: task.Meas.NoiseSeed(),
			Subgraph:  SpecOf(task.Graph),
			Trials:    []TrialSpec{{Steps: scheds[0].MarshalSteps(), Seq: seqs[0]}},
		}
	}
	post := func(body string) (*http.Response, map[string]any) {
		resp, err := http.Post(cpuOnly.URL+"/v1/measure", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}
	mutate := func(f func(*MeasureRequest)) string {
		r := goodReq()
		f(&r)
		b, _ := json.Marshal(r)
		return string(b)
	}
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"bad json", "not json", http.StatusBadRequest, "invalid_request"},
		{"bad version", mutate(func(r *MeasureRequest) { r.V = 99 }), http.StatusBadRequest, "invalid_request"},
		{"unknown target", mutate(func(r *MeasureRequest) { r.Target = "tpu" }), http.StatusBadRequest, "invalid_request"},
		{"unsupported target", mutate(func(r *MeasureRequest) { r.Target = "gpu" }), http.StatusBadRequest, "unsupported_target"},
		{"fingerprint mismatch", mutate(func(r *MeasureRequest) { r.Workload = "bogus@0000000000000000" }), http.StatusBadRequest, "invalid_request"},
		{"no trials", mutate(func(r *MeasureRequest) { r.Trials = nil }), http.StatusBadRequest, "invalid_request"},
		{"bad steps", mutate(func(r *MeasureRequest) { r.Trials[0].Steps = "sk=999" }), http.StatusBadRequest, "invalid_request"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := post(tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%v)", resp.StatusCode, tc.status, out)
			}
			env, _ := out["error"].(map[string]any)
			if code, _ := env["code"].(string); code != tc.code {
				t.Fatalf("code %q, want %q (%v)", code, tc.code, out)
			}
			if msg, _ := env["message"].(string); msg == "" {
				t.Fatal("empty error message")
			}
		})
	}
	// The control: the unmutated request succeeds.
	resp, out := post(mutate(func(r *MeasureRequest) {}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control request failed: %d (%v)", resp.StatusCode, out)
	}
}

// TestEvaluatorForUnprobedPoolIsOptimistic: a pool whose workers have never
// answered a probe still hands out evaluators (the workers may come up), and
// dispatch just falls back meanwhile.
func TestEvaluatorForUnprobedPoolIsOptimistic(t *testing.T) {
	cfg := fastConfig()
	pool := newPool(t, cfg, "127.0.0.1:1") // nothing listens there
	task := newTask(t, 1)
	ev := pool.EvaluatorFor(task)
	if ev == nil {
		t.Fatal("unprobed pool refused an evaluator")
	}
	scheds, seqs := sampleBatch(task, 2)
	if _, err := ev.EvalBatch(scheds, seqs); err == nil {
		t.Fatal("dispatch with no live workers succeeded")
	}
	if pool.Stats().Fallbacks == 0 {
		t.Fatal("fallback not counted")
	}
}

package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/sketch"
	"harl/internal/wire"
)

// Worker is the harl-worker daemon's request handler: it executes measure
// batches with the deterministic simulator and reports health. It holds no
// tuning state — everything a batch needs arrives in the request, so any
// worker can serve any coordinator, and a restarted worker resumes cold with
// no correctness impact.
type Worker struct {
	// targets is the platform restriction from -targets; empty serves all.
	targets map[string]bool
	// targetNames is what /healthz advertises (full platform names).
	targetNames []string
	pool        *search.ParallelPool

	batches atomic.Int64
	trials  atomic.Int64

	// sims caches one simulator per platform; simulators are stateless and
	// shareable across requests.
	simMu sync.Mutex
	sims  map[string]*hardware.Simulator
}

// NewWorker builds a worker serving the given target platforms (short or full
// names; empty means every registered platform) that evaluates each batch's
// trials across evalWorkers goroutines (<=0 means GOMAXPROCS).
func NewWorker(targets []string, evalWorkers int) (*Worker, error) {
	w := &Worker{
		targets: make(map[string]bool),
		pool:    search.NewParallelPool(evalWorkers),
		sims:    make(map[string]*hardware.Simulator),
	}
	if len(targets) == 0 {
		targets = hardware.PlatformNames()
	}
	for _, t := range targets {
		plat := hardware.ByName(t)
		if plat == nil {
			return nil, fmt.Errorf("fleet: unknown target platform %q (have %v)", t, hardware.PlatformNames())
		}
		if !w.targets[plat.Name] {
			w.targets[plat.Name] = true
			w.targetNames = append(w.targetNames, plat.Name)
		}
	}
	return w, nil
}

// Handler returns the worker's HTTP surface: POST /v1/measure and
// GET /healthz, with every error response in the v1 envelope.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/measure", wk.handleMeasure)
	mux.HandleFunc("/healthz", wk.handleHealth)
	return mux
}

// Targets returns the full platform names this worker serves.
func (wk *Worker) Targets() []string { return wk.targetNames }

// Batches returns the number of measure batches served.
func (wk *Worker) Batches() int64 { return wk.batches.Load() }

// Trials returns the number of trials measured.
func (wk *Worker) Trials() int64 { return wk.trials.Load() }

func (wk *Worker) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		wire.WriteError(w, http.StatusMethodNotAllowed, wire.CodeInvalidRequest, "method %s not allowed; use GET", r.Method)
		return
	}
	wire.WriteJSON(w, http.StatusOK, HealthResponse{
		Status:  "ok",
		Targets: wk.targetNames,
		Batches: wk.batches.Load(),
		Trials:  wk.trials.Load(),
	})
}

func (wk *Worker) handleMeasure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		wire.WriteError(w, http.StatusMethodNotAllowed, wire.CodeInvalidRequest, "method %s not allowed; use POST", r.Method)
		return
	}
	var req MeasureRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "bad measure request: %v", err)
		return
	}
	if req.V != ProtocolVersion {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "protocol v%d not supported, want v%d", req.V, ProtocolVersion)
		return
	}
	plat := hardware.ByName(req.Target)
	if plat == nil {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "unknown target platform %q", req.Target)
		return
	}
	if !wk.targets[plat.Name] {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeUnsupportedTarget, "worker serves %v, not %q", wk.targetNames, plat.Name)
		return
	}
	if len(req.Trials) == 0 {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "measure request has no trials")
		return
	}

	sg, err := req.Subgraph.Build()
	if err != nil {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "bad subgraph: %v", err)
		return
	}
	// The fingerprint check is the end-to-end integrity guard: if the rebuilt
	// structure differs from what the coordinator measured its schedules
	// against, the sketch list (and so every decoded schedule) would silently
	// diverge.
	if fp := sg.Fingerprint(); fp != req.Workload {
		wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "workload fingerprint mismatch: request says %s, rebuilt subgraph is %s", req.Workload, fp)
		return
	}

	sketches := sketch.Generate(sg)
	scheds := make([]*schedule.Schedule, len(req.Trials))
	for i, tr := range req.Trials {
		s, err := schedule.UnmarshalSteps(sketches, tr.Steps)
		if err != nil {
			wire.WriteError(w, http.StatusBadRequest, wire.CodeInvalidRequest, "trial %d: %v", i, err)
			return
		}
		scheds[i] = s
	}

	sim := wk.simulator(plat)
	out := make([]float64, len(scheds))
	wk.pool.Run(len(scheds), func(i int) {
		out[i] = hardware.NoisyExecSeeded(sim, scheds[i], req.NoiseSeed, req.Trials[i].Seq)
	})

	wk.batches.Add(1)
	wk.trials.Add(int64(len(scheds)))
	wire.WriteJSON(w, http.StatusOK, MeasureResponse{V: ProtocolVersion, ExecSec: out})
}

func (wk *Worker) simulator(plat *hardware.Platform) *hardware.Simulator {
	wk.simMu.Lock()
	defer wk.simMu.Unlock()
	sim, ok := wk.sims[plat.Name]
	if !ok {
		sim = hardware.NewSimulator(plat)
		wk.sims[plat.Name] = sim
	}
	return sim
}

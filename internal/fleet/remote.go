package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"harl/internal/schedule"
	"harl/internal/wire"
)

// RemoteMeasurer evaluates measure batches on the fleet for one task. It
// implements search.BatchEvaluator: search.Task.MeasureBatch hands it the
// batch after reserving repetition indices, and falls back to in-process
// measurement of the same (schedule, seq) pairs when EvalBatch errors — which
// yields the identical values, so the fallback changes throughput only.
//
// One RemoteMeasurer is pinned to one (workload, target, noise seed) triple;
// Pool.EvaluatorFor builds it from the task.
type RemoteMeasurer struct {
	pool      *Pool
	target    string
	workload  string
	noiseSeed uint64
	spec      json.RawMessage // pre-marshaled SubgraphSpec
}

// EvalBatch dispatches one measure batch: it leases a healthy worker, runs
// the RPC under the pool's per-batch timeout, and on failure retries against
// the rotation with exponential backoff up to the configured bound. When no
// lease is available or the attempts are exhausted it returns an error, which
// the caller treats as "measure this batch in-process" (counted as a
// fallback).
func (r *RemoteMeasurer) EvalBatch(scheds []*schedule.Schedule, seqs []uint64) ([]float64, error) {
	trials := make([]TrialSpec, len(scheds))
	for i, s := range scheds {
		trials[i] = TrialSpec{Steps: s.MarshalSteps(), Seq: seqs[i]}
	}
	body, err := r.marshalRequest(trials)
	if err != nil {
		r.pool.countFallback()
		return nil, err
	}

	var lastErr error
	backoff := r.pool.cfg.BackoffBase
	for attempt := 0; attempt <= r.pool.cfg.Retries; attempt++ {
		if attempt > 0 {
			r.pool.countRetry()
			time.Sleep(backoff)
			backoff *= 2
		}
		w, ok := r.pool.lease(r.target)
		if !ok {
			if lastErr == nil {
				lastErr = fmt.Errorf("fleet: no healthy worker serves target %q", r.target)
			}
			break
		}
		res, err := r.dispatch(w, body, len(trials))
		r.pool.release(w, err)
		if err == nil {
			r.pool.countBatch(len(trials))
			return res, nil
		}
		lastErr = err
	}
	r.pool.countFallback()
	return nil, lastErr
}

func (r *RemoteMeasurer) marshalRequest(trials []TrialSpec) ([]byte, error) {
	var sg SubgraphSpec
	if err := json.Unmarshal(r.spec, &sg); err != nil {
		return nil, fmt.Errorf("fleet: subgraph spec corrupt: %w", err)
	}
	return json.Marshal(MeasureRequest{
		V:         ProtocolVersion,
		Workload:  r.workload,
		Target:    r.target,
		NoiseSeed: r.noiseSeed,
		Subgraph:  sg,
		Trials:    trials,
	})
}

// dispatch runs one measure RPC against one worker and validates the response
// shape: protocol version, result count, and finite positive values. Any
// violation is an error — a half-right batch must never reach the journal.
func (r *RemoteMeasurer) dispatch(w *worker, body []byte, n int) ([]float64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), r.pool.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.endpoint+"/v1/measure", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.pool.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, wire.DecodeError(resp)
	}
	var mr MeasureResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("fleet: bad measure body from %s: %w", w.endpoint, err)
	}
	if mr.V != ProtocolVersion {
		return nil, fmt.Errorf("fleet: worker %s speaks protocol v%d, want v%d", w.endpoint, mr.V, ProtocolVersion)
	}
	if len(mr.ExecSec) != n {
		return nil, fmt.Errorf("fleet: worker %s returned %d results for %d trials", w.endpoint, len(mr.ExecSec), n)
	}
	for i, v := range mr.ExecSec {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return nil, fmt.Errorf("fleet: worker %s returned non-finite exec time %v at trial %d", w.endpoint, v, i)
		}
	}
	return mr.ExecSec, nil
}

package atomicfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content = %q, want v2", got)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestWriteFileBadDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("expected error for missing directory")
	}
}

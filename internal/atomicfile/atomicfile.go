// Package atomicfile writes files atomically: content lands in a temp file
// in the destination directory and is renamed into place, so readers never
// observe a partially written artifact and a crash mid-write leaves the
// previous version intact. Every durable artifact of the repo — BENCH_*.json
// summaries, cost-model checkpoints, registry indexes — goes through this
// path (a killed run must not truncate what a later run warm-starts from).
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: write to a temp file in the
// same directory, fsync, then rename over the destination. On any error the
// destination is untouched and the temp file is removed.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("atomicfile: write %s: %w", path, err))
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(fmt.Errorf("atomicfile: chmod %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("atomicfile: sync %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("atomicfile: rename into %s: %w", path, err)
	}
	return nil
}

// Package pretrain fits cost models offline from persistent tuning journals
// (internal/tunelog) — the value-function transfer idea of Steiner et al.:
// a model trained on prior measurements cuts the trials a new run needs.
//
// Features are not stored in the journal; they are regenerated exactly. A
// record carries the schedule's serialized transform steps, sketch generation
// is deterministic, and schedule.UnmarshalSteps reconstructs the identical
// schedule against the regenerated sketch list — so Features() of the replay
// equals Features() of the original measurement bit-for-bit, and the
// pretrained model is byte-reproducible from the journal alone.
//
// Replay order is the journal's load order (itself deterministic for every
// worker count), which makes pretraining part of the determinism contract:
// same journal → same model → same search trajectory.
package pretrain

import (
	"math"

	"harl/internal/costmodel"
	"harl/internal/search"
	"harl/internal/sketch"
	"harl/internal/texpr"
	"harl/internal/tunelog"
)

// logPerf is the model target for a measured execution time — the same
// log-throughput the online path feeds the model (search.Task.MeasureBatch),
// so offline and online samples are directly comparable.
func logPerf(execSec float64) float64 { return math.Log(1 / execSec) }

// Stats summarizes one offline fit.
type Stats struct {
	// Records is the number of journal records replayed into the model.
	Records int
	// Workloads is the number of distinct workload fingerprints that
	// contributed replayed records.
	Workloads int
	// Skipped counts matching records that could not enter the model:
	// steps that failed to reconstruct against the regenerated sketches
	// (foreign or stale journals), or features of a structurally
	// incompatible dimension (workload families mixed in one journal — the
	// fit keeps the most-sampled dimension, like core.MergedCostModel).
	Skipped int
}

// SeedTask replays every record of db matching the task's (workload
// fingerprint, target) key into the task's cost model — in journal order —
// and refits once, so the first engine round starts from a model that knows
// the workload. Unlike warm-starting, nothing is seeded into the task's best
// or measured set: pretraining informs the reward signal only, and the
// engines still measure whatever they pick. It returns the number of records
// replayed.
func SeedTask(db *tunelog.Database, t *search.Task) int {
	fp, target := t.Graph.Fingerprint(), t.Plat.Name
	n := 0
	for _, rec := range db.Records() {
		if rec.Workload != fp || rec.Target != target {
			continue
		}
		s, err := rec.Schedule(t.Sketches)
		if err != nil {
			continue
		}
		t.PretrainSample(s, rec.ExecSec)
		n++
	}
	if n > 0 {
		t.FinishPretrain()
	}
	return n
}

// FitModel builds a fresh model of the given parameters from every record of
// db that matches one of the workloads on the target — the harl-train path
// that turns a committed journal into a reusable checkpoint artifact. Records
// are replayed in journal order across all workloads, so the fit is
// deterministic. One model can serve several workloads as long as they are
// structurally compatible (equal feature dimension — e.g. the GEMM family of
// a network); the fit keeps the most-sampled dimension and counts records of
// other dimensions in Stats.Skipped.
func FitModel(db *tunelog.Database, graphs []*texpr.Subgraph, target string, p costmodel.Params) (*costmodel.Model, Stats) {
	sketches := make(map[string][]*sketch.Sketch, len(graphs))
	for _, g := range graphs {
		fp := g.Fingerprint()
		if _, ok := sketches[fp]; !ok {
			sketches[fp] = sketch.Generate(g)
		}
	}
	// Pass 1: decode every matching record and count samples per feature
	// dimension. The fit keeps the dimension that carries the most samples
	// (first-seen wins ties) — the same policy as core.MergedCostModel, so
	// the harl-train artifact and a network run's ModelOut artifact agree on
	// which structural family a mixed journal trains.
	type sample struct {
		feats    []float64
		y        float64
		workload string
	}
	var samples []sample
	var st Stats
	counts := make(map[int]int)
	bestDim, bestN := 0, -1
	for _, rec := range db.Records() {
		sks, ok := sketches[rec.Workload]
		if !ok || rec.Target != target {
			continue
		}
		s, err := rec.Schedule(sks)
		if err != nil {
			st.Skipped++
			continue
		}
		feats := s.Features()
		samples = append(samples, sample{feats, logPerf(rec.ExecSec), rec.Workload})
		d := len(feats)
		counts[d]++
		if counts[d] > bestN {
			bestDim, bestN = d, counts[d]
		}
	}
	// Pass 2: replay the kept dimension in journal order.
	m := costmodel.New(p)
	matched := make(map[string]bool)
	for _, sm := range samples {
		if len(sm.feats) != bestDim {
			st.Skipped++
			continue
		}
		m.Add(sm.feats, sm.y)
		st.Records++
		if !matched[sm.workload] {
			matched[sm.workload] = true
			st.Workloads++
		}
	}
	m.Refit()
	return m, st
}

package pretrain_test

import (
	"bytes"
	"testing"

	"harl/internal/core"
	"harl/internal/costmodel"
	"harl/internal/hardware"
	"harl/internal/pretrain"
	"harl/internal/search"
	"harl/internal/texpr"
	"harl/internal/tunelog"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// journalFor runs a short tuning job and returns its records as a database,
// plus the best measured (noisy) execution time.
func journalFor(t *testing.T, sg *texpr.Subgraph, plat *hardware.Platform, trials int, seed uint64) (*tunelog.Database, float64) {
	t.Helper()
	var buf bytes.Buffer
	jr := tunelog.NewJournal(&buf)
	res := core.TuneOperatorJournaled(sg, plat, core.MustScheduler("ansor"), trials, 16, seed, 1, core.TuneHooks{Journal: jr})
	if res.Trials < trials {
		t.Fatalf("journal run measured %d of %d trials", res.Trials, trials)
	}
	db := tunelog.NewDatabase()
	if err := db.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db.Size() == 0 {
		t.Fatal("empty journal")
	}
	best, ok := db.Best(sg.Fingerprint(), plat.Name)
	if !ok {
		t.Fatal("no best record")
	}
	return db, best.ExecSec
}

func newTask(sg *texpr.Subgraph, plat *hardware.Platform, seed uint64) *search.Task {
	rng := xrand.New(seed)
	meas := hardware.NewMeasurer(hardware.NewSimulator(plat), rng.Split())
	return search.NewTask(sg, plat, meas, rng.Split())
}

func TestSeedTaskReplaysJournal(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	db, _ := journalFor(t, sg, plat, 64, 3)

	task := newTask(sg, plat, 1)
	n := pretrain.SeedTask(db, task)
	if n != db.Size() {
		t.Fatalf("replayed %d of %d records", n, db.Size())
	}
	if !task.Pretrained || task.CostRefits != 1 {
		t.Fatalf("pretrained=%v refits=%d", task.Pretrained, task.CostRefits)
	}
	if task.Cost.Len() != n || !task.Cost.Trained() {
		t.Fatalf("model holds %d samples, trained=%v", task.Cost.Len(), task.Cost.Trained())
	}
	// Model-only: nothing seeded into the task's search state.
	if task.Best != nil || task.Trials != 0 {
		t.Fatal("pretraining must not seed schedules or charge trials")
	}
}

func TestSeedTaskIgnoresForeignRecords(t *testing.T) {
	gemm := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	db, _ := journalFor(t, gemm, plat, 48, 3)

	other := newTask(workload.GEMM("g2", 1, 128, 128, 512), plat, 1)
	if n := pretrain.SeedTask(db, other); n != 0 {
		t.Fatalf("foreign workload replayed %d records", n)
	}
	if other.Pretrained {
		t.Fatal("task with no matching records must stay cold")
	}
	gpu := newTask(gemm, hardware.GPURTX3090(), 1)
	if n := pretrain.SeedTask(db, gpu); n != 0 {
		t.Fatalf("foreign target replayed %d records", n)
	}
}

func TestFitModelDeterministic(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	db, _ := journalFor(t, sg, plat, 64, 9)

	m1, st1 := pretrain.FitModel(db, []*texpr.Subgraph{sg}, plat.Name, costmodel.DefaultParams())
	m2, st2 := pretrain.FitModel(db, []*texpr.Subgraph{sg}, plat.Name, costmodel.DefaultParams())
	if st1 != st2 {
		t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
	}
	if st1.Records != db.Size() || st1.Workloads != 1 || st1.Skipped != 0 {
		t.Fatalf("unexpected stats %+v for %d records", st1, db.Size())
	}
	b1, err := m1.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same journal produced different models")
	}
}

func TestFitModelMatchesOnlineTraining(t *testing.T) {
	// The offline replay must regenerate the exact features and targets the
	// online path trained on: a model fit from the journal predicts the same
	// as the task's own end-of-run model refit over its identical history.
	sg := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	db, _ := journalFor(t, sg, plat, 64, 5)

	offline, _ := pretrain.FitModel(db, []*texpr.Subgraph{sg}, plat.Name, costmodel.DefaultParams())
	task := newTask(sg, plat, 2)
	pretrain.SeedTask(db, task)

	rng := xrand.New(77)
	for i := 0; i < 50; i++ {
		s := task.RandomSchedule(task.Sketches[rng.Intn(len(task.Sketches))])
		if offline.Predict(s.Features()) != task.Cost.Predict(s.Features()) {
			t.Fatal("offline fit and task replay disagree")
		}
	}
}

func TestFitModelSharedAcrossWorkloads(t *testing.T) {
	a := workload.GEMM("a", 1, 256, 256, 256)
	b := workload.GEMM("b", 1, 128, 256, 512)
	plat := hardware.CPUXeon6226R()
	dbA, _ := journalFor(t, a, plat, 48, 3)
	dbB, _ := journalFor(t, b, plat, 48, 4)
	merged := tunelog.NewDatabase()
	for _, r := range dbA.Records() {
		merged.Add(r)
	}
	for _, r := range dbB.Records() {
		merged.Add(r)
	}
	m, st := pretrain.FitModel(merged, []*texpr.Subgraph{a, b}, plat.Name, costmodel.DefaultParams())
	if st.Workloads != 2 || st.Records != dbA.Size()+dbB.Size() {
		t.Fatalf("stats %+v", st)
	}
	if !m.Trained() {
		t.Fatal("merged fit should train")
	}
}

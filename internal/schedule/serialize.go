package schedule

import (
	"fmt"
	"strconv"
	"strings"

	"harl/internal/sketch"
)

// MarshalSteps renders the schedule's transform steps as a compact, stable
// text form suitable for tuning-record logs: the sketch index followed by one
// token per tile row and annotation knob. The encoding is canonical — two
// schedules marshal to the same string exactly when they are the same point
// of the search space — and round-trips byte-identically through
// UnmarshalSteps.
//
//	sk=1 s0=8,4,2,16 s1=64,1,4,4 r0=16,64 ca=1 pf=2 ur=3/4
func (s *Schedule) MarshalSteps() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sk=%d", s.Sk.ID)
	for a, row := range s.SpatialTiles {
		fmt.Fprintf(&b, " s%d=%s", a, joinInts(row))
	}
	for r, row := range s.ReduceTiles {
		fmt.Fprintf(&b, " r%d=%s", r, joinInts(row))
	}
	fmt.Fprintf(&b, " ca=%d pf=%d ur=%d/%d", s.ComputeAt, s.ParallelFuse, s.UnrollIdx, s.NumUnroll)
	return b.String()
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// UnmarshalSteps reconstructs a schedule from its MarshalSteps form against
// the sketch list of the same subgraph (sketch generation is deterministic,
// so the list regenerated from an equal-fingerprint workload matches the one
// the schedule was serialized under). The result is validated, so a record
// from a different workload fails loudly rather than yielding a malformed
// schedule.
func UnmarshalSteps(sketches []*sketch.Sketch, steps string) (*Schedule, error) {
	s := &Schedule{}
	for _, tok := range strings.Fields(steps) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("schedule: malformed step token %q", tok)
		}
		switch {
		case key == "sk":
			id, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("schedule: bad sketch id %q", val)
			}
			if id < 0 || id >= len(sketches) {
				return nil, fmt.Errorf("schedule: sketch id %d out of %d generated sketches", id, len(sketches))
			}
			s.Sk = sketches[id]
		case key == "ca":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("schedule: bad compute-at %q", val)
			}
			s.ComputeAt = v
		case key == "pf":
			v, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("schedule: bad parallel-fuse %q", val)
			}
			s.ParallelFuse = v
		case key == "ur":
			idx, num, ok := strings.Cut(val, "/")
			if !ok {
				return nil, fmt.Errorf("schedule: bad unroll token %q", val)
			}
			vi, err1 := strconv.Atoi(idx)
			vn, err2 := strconv.Atoi(num)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("schedule: bad unroll token %q", val)
			}
			s.UnrollIdx, s.NumUnroll = vi, vn
		case strings.HasPrefix(key, "s"), strings.HasPrefix(key, "r"):
			reduce := key[0] == 'r'
			axis, err := strconv.Atoi(key[1:])
			if err != nil {
				return nil, fmt.Errorf("schedule: bad tile-row key %q", key)
			}
			row, err := splitInts(val)
			if err != nil {
				return nil, fmt.Errorf("schedule: bad tile row %q: %v", tok, err)
			}
			if reduce {
				if axis != len(s.ReduceTiles) {
					return nil, fmt.Errorf("schedule: reduce tile row %d out of order", axis)
				}
				s.ReduceTiles = append(s.ReduceTiles, row)
			} else {
				if axis != len(s.SpatialTiles) {
					return nil, fmt.Errorf("schedule: spatial tile row %d out of order", axis)
				}
				s.SpatialTiles = append(s.SpatialTiles, row)
			}
		default:
			return nil, fmt.Errorf("schedule: unknown step token %q", tok)
		}
	}
	if s.Sk == nil {
		return nil, fmt.Errorf("schedule: steps %q carry no sketch id", steps)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func splitInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

package schedule

import (
	"testing"
	"testing/quick"

	"harl/internal/sketch"
	"harl/internal/workload"
	"harl/internal/xrand"
)

func gemmSketch(t *testing.T) *sketch.Sketch {
	t.Helper()
	return sketch.Generate(workload.GEMM("g", 1, 1024, 512, 768))[0]
}

func TestPrimeFactors(t *testing.T) {
	cases := map[int][]int{
		1:    nil,
		2:    {2},
		12:   {2, 2, 3},
		97:   {97},
		1024: {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
		2310: {2, 3, 5, 7, 11},
	}
	for n, want := range cases {
		got := PrimeFactors(n)
		if len(got) != len(want) {
			t.Fatalf("PrimeFactors(%d) = %v", n, got)
		}
		prod := 1
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("PrimeFactors(%d) = %v want %v", n, got, want)
			}
			prod *= got[i]
		}
		if n > 1 && prod != n {
			t.Fatalf("factor product %d != %d", prod, n)
		}
	}
}

func TestNewRandomValid(t *testing.T) {
	rng := xrand.New(1)
	sk := gemmSketch(t)
	for i := 0; i < 200; i++ {
		s := NewRandom(sk, 4, rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("random schedule %d invalid: %v", i, err)
		}
	}
}

// Property: every Table-3 action application preserves the factorization
// invariant (per-axis products unchanged, all knobs in range).
func TestApplyPreservesInvariants(t *testing.T) {
	rng := xrand.New(2)
	sk := gemmSketch(t)
	f := func(tilingRaw uint16, ca, par, unroll uint8) bool {
		s := NewRandom(sk, 4, rng)
		a := Action{
			Tiling:    int(tilingRaw) % s.NumTilingActions(),
			ComputeAt: int(ca) % DeltaActions,
			Parallel:  int(par) % DeltaActions,
			Unroll:    int(unroll) % DeltaActions,
		}
		n := s.Apply(a)
		return n.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDoesNotMutateOriginal(t *testing.T) {
	rng := xrand.New(3)
	s := NewRandom(gemmSketch(t), 4, rng)
	key := s.Key()
	for a := 0; a < s.NumTilingActions(); a += 7 {
		s.Apply(Action{Tiling: a, ComputeAt: 2, Parallel: 0, Unroll: 2})
	}
	if s.Key() != key {
		t.Fatal("Apply mutated the receiver")
	}
}

func TestTilingMoveMechanics(t *testing.T) {
	rng := xrand.New(4)
	sk := gemmSketch(t)
	s := NewRandom(sk, 4, rng)
	// Force a known factorization on axis 0 (extent 1024).
	s.SpatialTiles[0] = []int{1024, 1, 1, 1}
	// Move smallest factor (2) from loop 0 (axis0 level0) to loop 3 (level3).
	n := s.Apply(Action{Tiling: s.TilingActionFor(0, 3), ComputeAt: 1, Parallel: 1, Unroll: 1})
	if n.SpatialTiles[0][0] != 512 || n.SpatialTiles[0][3] != 2 {
		t.Fatalf("move failed: %v", n.SpatialTiles[0])
	}
	// Cross-axis move must be a no-op.
	crossAxis := s.TilingActionFor(0, sketch.SpatialLevels) // axis0 L0 -> axis1 L0
	n2 := s.Apply(Action{Tiling: crossAxis, ComputeAt: 1, Parallel: 1, Unroll: 1})
	if n2.SpatialTiles[0][0] != 1024 {
		t.Fatal("cross-axis move must not change extents")
	}
	// Moving from a unit loop must be a no-op.
	n3 := s.Apply(Action{Tiling: s.TilingActionFor(1, 0), ComputeAt: 1, Parallel: 1, Unroll: 1})
	if n3.SpatialTiles[0][0] != 1024 || n3.SpatialTiles[0][1] != 1 {
		t.Fatal("unit-loop move must be a no-op")
	}
	// Dummy action changes nothing.
	n4 := s.Apply(Action{Tiling: s.DummyTilingAction(), ComputeAt: 1, Parallel: 1, Unroll: 1})
	if n4.Key() != s.Key() {
		t.Fatal("dummy action changed the schedule")
	}
}

func TestKnobClamping(t *testing.T) {
	rng := xrand.New(5)
	s := NewRandom(gemmSketch(t), 4, rng)
	s.UnrollIdx = 0
	n := s.Apply(Action{Tiling: s.DummyTilingAction(), ComputeAt: 0, Parallel: 0, Unroll: 0})
	if n.UnrollIdx != 0 {
		t.Fatal("unroll must clamp at 0")
	}
	s.UnrollIdx = 3
	n = s.Apply(Action{Tiling: s.DummyTilingAction(), ComputeAt: 2, Parallel: 2, Unroll: 2})
	if n.UnrollIdx != 3 {
		t.Fatal("unroll must clamp at max")
	}
	if n.ParallelFuse > len(n.SpatialTiles) {
		t.Fatal("parallel fuse out of range")
	}
}

func TestNumTilingActions(t *testing.T) {
	rng := xrand.New(6)
	s := NewRandom(gemmSketch(t), 4, rng)
	// GEMM: 2 spatial × 4 + 1 reduce × 2 = 10 loops → 101 actions.
	if got := s.NumTilingActions(); got != 10*10+1 {
		t.Fatalf("tiling actions %d want 101", got)
	}
}

// Property: mutation always yields a valid schedule of the same sketch.
func TestMutatePreservesValidity(t *testing.T) {
	rng := xrand.New(7)
	sk := gemmSketch(t)
	s := NewRandom(sk, 4, rng)
	for i := 0; i < 2000; i++ {
		s = s.Mutate(rng)
		if err := s.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
	}
}

func TestFeaturesStableLength(t *testing.T) {
	rng := xrand.New(8)
	for _, g := range []interface{ Name() string }{} {
		_ = g
	}
	for _, sk := range sketch.Generate(workload.Conv2DReLU("c", 1, 1, 56, 56, 64, 64, 3, 1, 1)) {
		want := FeatureDim(sk)
		for i := 0; i < 50; i++ {
			s := NewRandom(sk, 4, rng)
			f := s.Features()
			if len(f) != want {
				t.Fatalf("feature length %d want %d", len(f), want)
			}
			for j, v := range f {
				if v != v || v < -1e6 || v > 1e6 {
					t.Fatalf("feature %d not finite: %v", j, v)
				}
			}
		}
	}
}

// TestFeaturesCacheCorrect pins the memoized Features() against a fresh
// computation across the mutation paths: the cache must never serve a stale
// vector after Apply or Mutate produced a new schedule.
func TestFeaturesCacheCorrect(t *testing.T) {
	rng := xrand.New(20)
	sk := gemmSketch(t)
	s := NewRandom(sk, 4, rng)
	same := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < 200; i++ {
		if !same(s.Features(), s.computeFeatures()) {
			t.Fatalf("step %d: cached features differ from fresh computation", i)
		}
		if i%2 == 0 {
			s = s.Mutate(rng)
		} else {
			s = s.Apply(Action{
				Tiling:    rng.Intn(s.NumTilingActions()),
				ComputeAt: rng.Intn(DeltaActions),
				Parallel:  rng.Intn(DeltaActions),
				Unroll:    rng.Intn(DeltaActions),
			})
		}
	}
}

// TestFeaturesCachedAllocs pins the memo: re-reading a schedule's features
// allocates nothing (the first read computes and caches the vector).
func TestFeaturesCachedAllocs(t *testing.T) {
	rng := xrand.New(21)
	s := NewRandom(gemmSketch(t), 4, rng)
	if n := testing.AllocsPerRun(100, func() { s.Features() }); n != 0 {
		t.Fatalf("cached Features() allocates %.1f objects per read, want 0", n)
	}
}

func TestKeyDistinguishesConfigs(t *testing.T) {
	rng := xrand.New(9)
	sk := gemmSketch(t)
	seen := map[uint64]bool{}
	dup := 0
	for i := 0; i < 2000; i++ {
		k := NewRandom(sk, 4, rng).Key()
		if seen[k] {
			dup++
		}
		seen[k] = true
	}
	// Random 1024×512×768 factorizations rarely repeat; hash collisions
	// would show up as a large duplicate count.
	if dup > 100 {
		t.Fatalf("%d duplicate keys in 2000 samples", dup)
	}
}

func TestKeyIgnoresNothing(t *testing.T) {
	rng := xrand.New(10)
	s := NewRandom(gemmSketch(t), 4, rng)
	k := s.Key()
	c := s.Clone()
	c.UnrollIdx = (c.UnrollIdx + 1) % c.NumUnroll
	if c.Key() == k {
		t.Fatal("unroll change must change the key")
	}
	c2 := s.Clone()
	c2.ParallelFuse = (c2.ParallelFuse + 1) % (len(c2.SpatialTiles) + 1)
	if c2.Key() == k {
		t.Fatal("parallel change must change the key")
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := xrand.New(11)
	s := NewRandom(gemmSketch(t), 4, rng)
	c := s.Clone()
	c.SpatialTiles[0][0] *= 2
	if s.SpatialTiles[0][0] == c.SpatialTiles[0][0] {
		t.Fatal("clone shares tile storage")
	}
}

func TestValidateRejectsCorruption(t *testing.T) {
	rng := xrand.New(12)
	s := NewRandom(gemmSketch(t), 4, rng)
	s.SpatialTiles[0][0]++
	if s.Validate() == nil {
		t.Fatal("corrupted product must fail validation")
	}
	s2 := NewRandom(gemmSketch(t), 4, rng)
	s2.UnrollIdx = 99
	if s2.Validate() == nil {
		t.Fatal("out-of-range unroll must fail validation")
	}
}

func TestStringContainsSketch(t *testing.T) {
	rng := xrand.New(13)
	s := NewRandom(gemmSketch(t), 4, rng)
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

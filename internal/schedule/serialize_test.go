package schedule

import (
	"strings"
	"testing"

	"harl/internal/sketch"
	"harl/internal/workload"
	"harl/internal/xrand"
)

func TestMarshalStepsRoundTrip(t *testing.T) {
	// Marshal → Unmarshal → Marshal must be byte-identical for random
	// schedules of every sketch of several workloads.
	for _, sg := range []*struct {
		name     string
		sketches []*sketch.Sketch
	}{
		{"gemm", sketch.Generate(workload.GEMM("g", 1, 256, 512, 128))},
		{"c2d", sketch.Generate(workload.Conv2D("c", 1, 28, 28, 64, 64, 3, 1, 1))},
		{"gemm+ep", sketch.Generate(workload.GEMMEpilogue("ge", 1, 128, 128, 128, 2))},
	} {
		rng := xrand.New(11)
		for _, sk := range sg.sketches {
			for i := 0; i < 16; i++ {
				s := NewRandom(sk, 4, rng)
				steps := s.MarshalSteps()
				back, err := UnmarshalSteps(sg.sketches, steps)
				if err != nil {
					t.Fatalf("%s sketch %d: %v (steps %q)", sg.name, sk.ID, err, steps)
				}
				if got := back.MarshalSteps(); got != steps {
					t.Fatalf("%s: round trip %q -> %q", sg.name, steps, got)
				}
				if back.Key() != s.Key() {
					t.Fatalf("%s: schedule identity drifted through serialization", sg.name)
				}
				if err := back.Validate(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestMarshalStepsIsCanonical(t *testing.T) {
	// Equal search-space points marshal equal; any knob change marshals
	// differently.
	sk := gemmSketch(t)
	rng := xrand.New(5)
	s := NewRandom(sk, 4, rng)
	if s.MarshalSteps() != s.Clone().MarshalSteps() {
		t.Fatal("clone must marshal identically")
	}
	mut := s.Clone()
	mut.UnrollIdx = (mut.UnrollIdx + 1) % mut.NumUnroll
	if mut.MarshalSteps() == s.MarshalSteps() {
		t.Fatal("distinct schedules must marshal differently")
	}
}

func TestUnmarshalStepsRejectsGarbage(t *testing.T) {
	sketches := sketch.Generate(workload.GEMM("g", 1, 64, 64, 64))
	good := NewRandom(sketches[0], 4, xrand.New(1)).MarshalSteps()
	bad := []string{
		"",                                   // no sketch id
		"sk=99 ca=0 pf=0 ur=0/4",             // sketch out of range
		"sk=0 ca=0 pf=0 ur=0",                // malformed unroll
		"sk=0 s1=2,2 ca=0 pf=0 ur=0/4",       // tile row out of order
		"sk=0 zz=1",                          // unknown token
		"sk=0 s0=a,b,c,d ca=0 pf=0 ur=0/4",   // non-numeric tiles
		strings.Replace(good, "sk=0", "", 1), // sketch id stripped
	}
	for _, steps := range bad {
		if _, err := UnmarshalSteps(sketches, steps); err == nil {
			t.Fatalf("steps %q must be rejected", steps)
		}
	}
	// A structurally valid encoding whose products mismatch the extents must
	// fail validation rather than load silently.
	wrong := strings.Replace(good, "ur=", "ur=", 1) // keep good; mutate a tile row below
	parts := strings.Fields(wrong)
	for i, p := range parts {
		if strings.HasPrefix(p, "s0=") {
			parts[i] = "s0=1,1,1,7" // 7 does not divide 64
		}
	}
	if _, err := UnmarshalSteps(sketches, strings.Join(parts, " ")); err == nil {
		t.Fatal("extent-product mismatch must be rejected")
	}
}

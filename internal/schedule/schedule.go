// Package schedule defines the low-level parameter space of the HARL
// reproduction: a Schedule binds a sketch to concrete tile factorizations,
// a compute-at position, a parallel-fusing degree and an unroll depth. The
// four modification types of the paper's Table 3 — tiling, compute-at,
// parallel-loops and auto-unroll — are the action space the actor-critic agent
// (and the evolutionary baseline's mutation operator) explore.
package schedule

import (
	"fmt"
	"math"
	"strings"

	"harl/internal/sketch"
	"harl/internal/xrand"
)

// Schedule is one fully-specified tensor program: a point in the paper's
// parameter search space. For the 1024³ GEMM with 4 tiling levels this space
// has ~180 million points; schedules are connected by the Table-3 actions so
// the RL agent walks between nearby configurations.
type Schedule struct {
	Sk *sketch.Sketch

	// SpatialTiles[a] holds the per-level extents [L0..L3] of spatial axis a
	// of the tiled stage; the product of each row equals the axis extent.
	// L0 is outermost (the parallel candidate), L3 innermost (the vector/
	// unroll candidate).
	SpatialTiles [][]int
	// ReduceTiles[r] holds [R0, R1] for reduction axis r, product = extent.
	ReduceTiles [][]int
	// ComputeAt indexes the sketch's compute-at candidate list (0 = root).
	ComputeAt int
	// ParallelFuse is the number of outermost spatial loops fused into the
	// parallel loop, in [0, NumSpatialAxes].
	ParallelFuse int
	// UnrollIdx indexes the platform's auto-unroll depth list.
	UnrollIdx int
	// NumUnroll is the length of that list (platform-dependent, fixed at
	// sampling time so the schedule stays platform-agnostic afterwards).
	NumUnroll int

	// feats memoizes Features(): every consumer of a schedule — cost-model
	// training, batch scoring, the RL state vector — reads the same vector,
	// and the tuning loops read it many times per candidate. The cache is
	// computed lazily on first read and dropped by Clone, which every
	// mutation path (Apply, Mutate) goes through before changing fields.
	feats []float64
}

// Clone returns a deep copy. The feature cache is not carried over: clones
// exist to be mutated (Apply, Mutate), and a fresh schedule recomputes its
// vector on first read.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.feats = nil
	c.SpatialTiles = make([][]int, len(s.SpatialTiles))
	for i, t := range s.SpatialTiles {
		c.SpatialTiles[i] = append([]int(nil), t...)
	}
	c.ReduceTiles = make([][]int, len(s.ReduceTiles))
	for i, t := range s.ReduceTiles {
		c.ReduceTiles[i] = append([]int(nil), t...)
	}
	return &c
}

// Validate checks the factorization invariants: every tile-level extent is
// ≥ 1 and each row's product equals the corresponding axis extent.
func (s *Schedule) Validate() error {
	main := s.Sk.MainStage()
	if len(s.SpatialTiles) != len(main.Spatial) {
		return fmt.Errorf("schedule: %d spatial tile rows for %d axes", len(s.SpatialTiles), len(main.Spatial))
	}
	for a, row := range s.SpatialTiles {
		if len(row) != sketch.SpatialLevels {
			return fmt.Errorf("schedule: axis %d has %d levels", a, len(row))
		}
		p := 1
		for _, e := range row {
			if e < 1 {
				return fmt.Errorf("schedule: axis %d has level extent %d", a, e)
			}
			p *= e
		}
		if p != main.Spatial[a].Extent {
			return fmt.Errorf("schedule: axis %d product %d != extent %d", a, p, main.Spatial[a].Extent)
		}
	}
	if len(s.ReduceTiles) != len(main.Reduce) {
		return fmt.Errorf("schedule: %d reduce tile rows for %d axes", len(s.ReduceTiles), len(main.Reduce))
	}
	for r, row := range s.ReduceTiles {
		if len(row) != sketch.ReduceLevels {
			return fmt.Errorf("schedule: reduce axis %d has %d levels", r, len(row))
		}
		p := 1
		for _, e := range row {
			if e < 1 {
				return fmt.Errorf("schedule: reduce axis %d has level extent %d", r, e)
			}
			p *= e
		}
		if p != main.Reduce[r].Extent {
			return fmt.Errorf("schedule: reduce axis %d product %d != extent %d", r, p, main.Reduce[r].Extent)
		}
	}
	if s.ComputeAt < 0 || s.ComputeAt >= s.Sk.ComputeAtCandidates() {
		return fmt.Errorf("schedule: compute-at %d out of %d candidates", s.ComputeAt, s.Sk.ComputeAtCandidates())
	}
	if s.ParallelFuse < 0 || s.ParallelFuse > len(main.Spatial) {
		return fmt.Errorf("schedule: parallel fuse %d out of range", s.ParallelFuse)
	}
	if s.NumUnroll < 1 || s.UnrollIdx < 0 || s.UnrollIdx >= s.NumUnroll {
		return fmt.Errorf("schedule: unroll idx %d of %d", s.UnrollIdx, s.NumUnroll)
	}
	return nil
}

// PrimeFactors returns the prime factorization of n in ascending order.
func PrimeFactors(n int) []int {
	var fs []int
	for n%2 == 0 {
		fs = append(fs, 2)
		n /= 2
	}
	for p := 3; p*p <= n; p += 2 {
		for n%p == 0 {
			fs = append(fs, p)
			n /= p
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// smallestFactor returns the smallest prime factor of n greater than 1, or 0
// if n <= 1.
func smallestFactor(n int) int {
	if n <= 1 {
		return 0
	}
	if n%2 == 0 {
		return 2
	}
	for p := 3; p*p <= n; p += 2 {
		if n%p == 0 {
			return p
		}
	}
	return n
}

// randomFactorization distributes the prime factors of extent uniformly over
// `levels` buckets.
func randomFactorization(extent, levels int, rng *xrand.RNG) []int {
	row := make([]int, levels)
	for i := range row {
		row[i] = 1
	}
	for _, p := range PrimeFactors(extent) {
		row[rng.Intn(levels)] *= p
	}
	return row
}

// NewRandom samples a uniformly random schedule of the sketch — the paper's
// "initial schedule sampled by randomly filling the sketch".
func NewRandom(sk *sketch.Sketch, numUnroll int, rng *xrand.RNG) *Schedule {
	main := sk.MainStage()
	s := &Schedule{Sk: sk, NumUnroll: numUnroll}
	for _, it := range main.Spatial {
		s.SpatialTiles = append(s.SpatialTiles, randomFactorization(it.Extent, sketch.SpatialLevels, rng))
	}
	for _, it := range main.Reduce {
		s.ReduceTiles = append(s.ReduceTiles, randomFactorization(it.Extent, sketch.ReduceLevels, rng))
	}
	s.ComputeAt = rng.Intn(sk.ComputeAtCandidates())
	s.ParallelFuse = rng.Intn(len(main.Spatial) + 1)
	s.UnrollIdx = rng.Intn(numUnroll)
	return s
}

// --- Tile-loop flattening -------------------------------------------------

// NumTileLoops returns the total number of tiling loops (spatial axes ×
// SpatialLevels plus reduction axes × ReduceLevels).
func (s *Schedule) NumTileLoops() int { return s.Sk.NumTileLoops() }

// loopRef resolves a flat tile-loop index into its (row, level) position.
// Spatial loops come first, then reduction loops.
func (s *Schedule) loopRef(i int) (row *[]int, level int, axis int) {
	ns := len(s.SpatialTiles) * sketch.SpatialLevels
	if i < ns {
		a := i / sketch.SpatialLevels
		return &s.SpatialTiles[a], i % sketch.SpatialLevels, a
	}
	i -= ns
	r := i / sketch.ReduceLevels
	return &s.ReduceTiles[r], i % sketch.ReduceLevels, len(s.SpatialTiles) + r
}

// LoopExtent returns the extent of the flat tile loop i.
func (s *Schedule) LoopExtent(i int) int {
	row, level, _ := s.loopRef(i)
	return (*row)[level]
}

// --- Action space (paper Table 3) ------------------------------------------

// Action is one joint step of the agent: a sub-action per modification type.
// Each modification type includes a dummy choice, so the modification-type
// selection is implicit in the actor's output (paper Section 4.3).
type Action struct {
	Tiling    int // in [0, NumTilingActions)
	ComputeAt int // 0:-1  1:0  2:+1
	Parallel  int // 0:-1  1:0  2:+1
	Unroll    int // 0:-1  1:0  2:+1
}

// DeltaActions is the size of each ±1/stay sub-action space.
const DeltaActions = 3

// NumTilingActions returns num_iters × num_iters + 1 (Appendix A.1): every
// (source, target) tile-loop pair plus the dummy action.
func (s *Schedule) NumTilingActions() int {
	t := s.NumTileLoops()
	return t*t + 1
}

// Apply executes the joint action on a copy of the schedule and reports which
// sub-actions actually changed the configuration. Invalid moves (moving a
// factor across different axes, moving from a unit loop, stepping outside a
// candidate list) are no-ops, like the explicit dummy action.
func (s *Schedule) Apply(a Action) *Schedule {
	n := s.Clone()
	n.applyTiling(a.Tiling)
	n.ComputeAt = clamp(n.ComputeAt+delta(a.ComputeAt), 0, s.Sk.ComputeAtCandidates()-1)
	n.ParallelFuse = clamp(n.ParallelFuse+delta(a.Parallel), 0, len(n.SpatialTiles))
	n.UnrollIdx = clamp(n.UnrollIdx+delta(a.Unroll), 0, n.NumUnroll-1)
	return n
}

func delta(idx int) int { return idx - 1 }

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// applyTiling performs the tile-size modification: divide the smallest prime
// factor from tile loop i and multiply it into tile loop j. Moves across
// different axes would break the per-axis extent product and act as dummies.
func (s *Schedule) applyTiling(action int) {
	t := s.NumTileLoops()
	if action >= t*t || action < 0 {
		return // dummy
	}
	i, j := action/t, action%t
	if i == j {
		return
	}
	rowI, levelI, axisI := s.loopRef(i)
	rowJ, levelJ, axisJ := s.loopRef(j)
	if axisI != axisJ {
		return
	}
	f := smallestFactor((*rowI)[levelI])
	if f == 0 {
		return
	}
	(*rowI)[levelI] /= f
	(*rowJ)[levelJ] *= f
}

// TilingActionFor returns the flat tiling-action index that moves a factor
// from tile loop i to tile loop j.
func (s *Schedule) TilingActionFor(i, j int) int { return i*s.NumTileLoops() + j }

// DummyTilingAction returns the explicit no-op tiling action index.
func (s *Schedule) DummyTilingAction() int { t := s.NumTileLoops(); return t * t }

// --- Evolutionary mutation (Ansor baseline) ---------------------------------

// Mutate returns a randomly perturbed copy, used by the evolutionary-search
// baseline: with uniform probability it performs a random tile-factor move,
// resamples one axis factorization, or re-rolls one annotation knob. This is
// the "uniform schedule selection" the paper's Observation 1 examines.
func (s *Schedule) Mutate(rng *xrand.RNG) *Schedule {
	n := s.Clone()
	switch rng.Intn(4) {
	case 0: // random factor move
		t := n.NumTileLoops()
		// A uniformly random (i, j) pair; retry a few times to land a valid move.
		for attempt := 0; attempt < 4; attempt++ {
			i, j := rng.Intn(t), rng.Intn(t)
			before := n.LoopExtent(i)
			n.applyTiling(n.TilingActionFor(i, j))
			if n.LoopExtent(i) != before {
				break
			}
		}
	case 1: // resample one spatial axis factorization
		a := rng.Intn(len(n.SpatialTiles))
		ext := product(n.SpatialTiles[a])
		n.SpatialTiles[a] = randomFactorization(ext, sketch.SpatialLevels, rng)
	case 2: // resample one reduction axis factorization (or a knob if none)
		if len(n.ReduceTiles) > 0 {
			r := rng.Intn(len(n.ReduceTiles))
			ext := product(n.ReduceTiles[r])
			n.ReduceTiles[r] = randomFactorization(ext, sketch.ReduceLevels, rng)
			break
		}
		fallthrough
	case 3: // re-roll one annotation knob
		switch rng.Intn(3) {
		case 0:
			n.ComputeAt = rng.Intn(n.Sk.ComputeAtCandidates())
		case 1:
			n.ParallelFuse = rng.Intn(len(n.SpatialTiles) + 1)
		case 2:
			n.UnrollIdx = rng.Intn(n.NumUnroll)
		}
	}
	return n
}

func product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// --- Features & identity ----------------------------------------------------

// Key returns a stable 64-bit identity of the schedule's full configuration,
// used for deduplication and for deriving the simulator's deterministic
// measurement texture.
func (s *Schedule) Key() uint64 {
	words := []uint64{hashString(s.Sk.Graph.Name), uint64(s.Sk.ID)}
	for _, row := range s.SpatialTiles {
		for _, e := range row {
			words = append(words, uint64(e))
		}
	}
	for _, row := range s.ReduceTiles {
		for _, e := range row {
			words = append(words, uint64(e))
		}
	}
	words = append(words, uint64(s.ComputeAt), uint64(s.ParallelFuse), uint64(s.UnrollIdx))
	return xrand.Hash64(words...)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// FeatureDim returns the length of the feature vector produced by Features
// for schedules of this sketch (constant across schedules of one subgraph).
func FeatureDim(sk *sketch.Sketch) int {
	return sk.NumSpatialAxes()*sketch.SpatialLevels + sk.NumReduceAxes()*sketch.ReduceLevels +
		3 + // compute-at, parallel-fuse, unroll (normalized)
		6 + // derived shape features
		4 // structural flags: sketch id (normalized), cache-write, rfactor, fused
}

// Features encodes the schedule as a numeric vector for the cost model and
// the actor-critic networks. Tile extents are encoded as log2 values
// normalized by their axis's log2 extent, so features are scale-free in
// [0, 1]; derived features expose the quantities the performance landscape
// actually depends on (parallel chunk count, innermost vector extent, tile
// footprint proxies).
//
// The vector is computed once and memoized: repeat reads return the cached
// slice with zero allocations (pinned by TestFeaturesCachedAllocs). Callers
// must treat the result as read-only — it is shared by every consumer of the
// schedule.
func (s *Schedule) Features() []float64 {
	if s.feats == nil {
		s.feats = s.computeFeatures()
	}
	return s.feats
}

// computeFeatures builds the feature vector from the current configuration.
func (s *Schedule) computeFeatures() []float64 {
	out := make([]float64, 0, FeatureDim(s.Sk))
	main := s.Sk.MainStage()
	for a, row := range s.SpatialTiles {
		den := math.Log2(math.Max(2, float64(main.Spatial[a].Extent)))
		for _, e := range row {
			out = append(out, math.Log2(float64(e))/den)
		}
	}
	for r, row := range s.ReduceTiles {
		den := math.Log2(math.Max(2, float64(main.Reduce[r].Extent)))
		for _, e := range row {
			out = append(out, math.Log2(float64(e))/den)
		}
	}
	out = append(out,
		norm(s.ComputeAt, s.Sk.ComputeAtCandidates()-1),
		norm(s.ParallelFuse, len(s.SpatialTiles)),
		norm(s.UnrollIdx, s.NumUnroll-1),
	)
	// Derived features.
	par := 1.0
	for a := 0; a < s.ParallelFuse && a < len(s.SpatialTiles); a++ {
		par *= float64(s.SpatialTiles[a][0])
	}
	inner := 1.0
	if n := len(s.SpatialTiles); n > 0 {
		inner = float64(s.SpatialTiles[n-1][sketch.SpatialLevels-1])
	}
	micro, l2tile := 1.0, 1.0
	for _, row := range s.SpatialTiles {
		micro *= float64(row[sketch.SpatialLevels-1])
		l2tile *= float64(row[sketch.SpatialLevels-2] * row[sketch.SpatialLevels-1])
	}
	r1, r0 := 1.0, 1.0
	for _, row := range s.ReduceTiles {
		r0 *= float64(row[0])
		r1 *= float64(row[1])
	}
	out = append(out,
		math.Log2(par+1)/32,
		math.Log2(inner+1)/16,
		math.Log2(micro+1)/32,
		math.Log2(l2tile+1)/32,
		math.Log2(r0+1)/24,
		math.Log2(r1+1)/24,
	)
	out = append(out,
		norm(s.Sk.ID, 7),
		boolF(s.Sk.CacheWrite),
		boolF(s.Sk.RFactor),
		boolF(s.Sk.Decisions[s.Sk.Main] == sketch.TiledFused),
	)
	return out
}

func norm(x, maxV int) float64 {
	if maxV <= 0 {
		return 0
	}
	v := float64(x) / float64(maxV)
	if v > 1 {
		v = 1
	}
	return v
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// String renders the schedule compactly for logs and examples.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sketch#%d", s.Sk.ID)
	for a, row := range s.SpatialTiles {
		fmt.Fprintf(&b, " s%d=%v", a, row)
	}
	for r, row := range s.ReduceTiles {
		fmt.Fprintf(&b, " r%d=%v", r, row)
	}
	fmt.Fprintf(&b, " ca=%d par=%d unroll=%d", s.ComputeAt, s.ParallelFuse, s.UnrollIdx)
	return b.String()
}

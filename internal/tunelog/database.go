package tunelog

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
)

// Database is the in-memory index over one or more tuning journals: records
// in load order, exact duplicates removed, with a best-record (lowest
// measured execution time) index per (workload, target) key.
type Database struct {
	records []Record
	seen    map[string]bool
	best    map[string]int // Record.Key() -> index into records
	skipped int
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{seen: make(map[string]bool), best: make(map[string]int)}
}

// LoadFile builds a database from one journal file. A missing file is an
// error; a corrupt file loads the parseable prefix of every line (see Load).
func LoadFile(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tunelog: open log: %w", err)
	}
	defer f.Close()
	db := NewDatabase()
	if err := db.Load(f); err != nil {
		return nil, err
	}
	return db, nil
}

// Load reads a JSONL journal, adding every well-formed record. Corrupt lines
// — truncated trailing writes, garbage, records of an unknown schema version
// — are counted (Skipped) and skipped rather than failing the load, so a
// journal damaged by a crash still warm-starts from its intact prefix. Only
// I/O errors are returned.
func (db *Database) Load(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, err := ParseLine(line)
		if err != nil || rec.V != SchemaVersion {
			db.skipped++
			continue
		}
		db.Add(rec)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("tunelog: read log: %w", err)
	}
	return nil
}

// Add inserts one record, reporting whether it was new (false for an exact
// duplicate of an already-loaded record).
func (db *Database) Add(r Record) bool {
	id := r.identity()
	if db.seen[id] {
		return false
	}
	db.seen[id] = true
	db.records = append(db.records, r)
	key := r.Key()
	if i, ok := db.best[key]; !ok || r.ExecSec < db.records[i].ExecSec {
		db.best[key] = len(db.records) - 1
	}
	return true
}

// Size returns the number of distinct records loaded.
func (db *Database) Size() int { return len(db.records) }

// Skipped returns the number of corrupt or version-mismatched lines dropped
// during loads.
func (db *Database) Skipped() int { return db.skipped }

// Records returns the distinct records in load order (shared slice; treat as
// read-only).
func (db *Database) Records() []Record { return db.records }

// Best returns the record with the lowest measured execution time for the
// (workload fingerprint, target) key, if any. Ties keep the earliest record,
// so equal-quality re-measurements never change the warm-start choice.
func (db *Database) Best(workload, target string) (Record, bool) {
	i, ok := db.best[Record{Workload: workload, Target: target}.Key()]
	if !ok {
		return Record{}, false
	}
	return db.records[i], true
}

package tunelog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// sampleSchedule returns a random but deterministic schedule of the workload
// plus its sketch list.
func sampleSchedule(seed uint64) (*schedule.Schedule, []*sketch.Sketch) {
	sg := workload.GEMM("g", 1, 64, 64, 64)
	sketches := sketch.Generate(sg)
	rng := xrand.New(seed)
	sk := sketches[rng.Intn(len(sketches))]
	return schedule.NewRandom(sk, 4, rng), sketches
}

func TestRecordRoundTrip(t *testing.T) {
	// serialize → append → load → deserialize must yield a byte-identical
	// schedule and an equal simulated exec time.
	sg := workload.GEMM("g", 1, 64, 64, 64)
	sketches := sketch.Generate(sg)
	rng := xrand.New(3)
	var buf bytes.Buffer
	jr := NewJournal(&buf)
	var want []Record
	for i := 0; i < 8; i++ {
		s := schedule.NewRandom(sketches[rng.Intn(len(sketches))], 4, rng)
		rec := NewRecord(sg, "cpu-xeon6226r", "harl", s, float64(i+1)*1e-5, i+1, 42)
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
		want = append(want, rec)
	}
	db := NewDatabase()
	if err := db.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db.Size() != len(want) {
		t.Fatalf("loaded %d of %d records", db.Size(), len(want))
	}
	for i, got := range db.Records() {
		if got != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got, want[i])
		}
		s, err := got.Schedule(sketches)
		if err != nil {
			t.Fatal(err)
		}
		if s.MarshalSteps() != want[i].Steps {
			t.Fatalf("steps round-trip: %q != %q", s.MarshalSteps(), want[i].Steps)
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		if got.ExecSec != want[i].ExecSec {
			t.Fatalf("exec time drifted: %v != %v", got.ExecSec, want[i].ExecSec)
		}
	}
}

func TestDatabaseDeduplicates(t *testing.T) {
	s, _ := sampleSchedule(1)
	sg := workload.GEMM("g", 1, 64, 64, 64)
	rec := NewRecord(sg, "cpu", "harl", s, 1e-5, 1, 7)
	db := NewDatabase()
	if !db.Add(rec) {
		t.Fatal("first add must be new")
	}
	if db.Add(rec) {
		t.Fatal("duplicate add must be rejected")
	}
	// A record differing in any field is distinct.
	rec2 := rec
	rec2.Trial = 2
	if !db.Add(rec2) {
		t.Fatal("distinct record rejected")
	}
	if db.Size() != 2 {
		t.Fatalf("size %d", db.Size())
	}

	// Duplicate journal appends also collapse on load.
	var buf bytes.Buffer
	line, _ := rec.MarshalLine()
	buf.Write(append(line, '\n'))
	buf.Write(append(line, '\n'))
	db2 := NewDatabase()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if db2.Size() != 1 {
		t.Fatalf("duplicate appends loaded as %d records", db2.Size())
	}
}

func TestDatabaseBest(t *testing.T) {
	sg := workload.GEMM("g", 1, 64, 64, 64)
	s, _ := sampleSchedule(1)
	db := NewDatabase()
	for i, exec := range []float64{3e-5, 1e-5, 2e-5} {
		db.Add(NewRecord(sg, "cpu", "harl", s, exec, i+1, 7))
	}
	rec, ok := db.Best(sg.Fingerprint(), "cpu")
	if !ok || rec.ExecSec != 1e-5 {
		t.Fatalf("best = %+v ok=%v", rec, ok)
	}
	if _, ok := db.Best(sg.Fingerprint(), "gpu"); ok {
		t.Fatal("best for unknown target must miss")
	}
	if _, ok := db.Best("other@0", "cpu"); ok {
		t.Fatal("best for unknown workload must miss")
	}
}

func TestDatabaseToleratesCorruptLines(t *testing.T) {
	sg := workload.GEMM("g", 1, 64, 64, 64)
	s, _ := sampleSchedule(1)
	good1 := NewRecord(sg, "cpu", "harl", s, 1e-5, 1, 7)
	good2 := NewRecord(sg, "cpu", "harl", s, 2e-5, 2, 7)
	l1, _ := good1.MarshalLine()
	l2, _ := good2.MarshalLine()
	futureVersion := strings.Replace(string(l1), `"v":1`, `"v":99`, 1)
	input := strings.Join([]string{
		string(l1),
		"not json at all",
		`{"v":1,"workload":"w","target":"t"}`, // incomplete record
		string(l2[:len(l2)/2]),                // truncated trailing write
		futureVersion,                         // unknown schema version
		"",                                    // blank line
		string(l2),
	}, "\n")
	db := NewDatabase()
	if err := db.Load(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("loaded %d records from corrupt journal, want 2", db.Size())
	}
	if db.Skipped() != 4 {
		t.Fatalf("skipped %d corrupt lines, want 4", db.Skipped())
	}
}

func TestJournalFileAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	sg := workload.GEMM("g", 1, 64, 64, 64)
	s, _ := sampleSchedule(1)

	// Two separate journal sessions must accumulate, not truncate.
	for session := 0; session < 2; session++ {
		jr, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := jr.Append(NewRecord(sg, "cpu", "harl", s, float64(session+1)*1e-5, session+1, 7)); err != nil {
			t.Fatal(err)
		}
		if err := jr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("size %d after two sessions", db.Size())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Fatal("missing log must error")
	}
}

func TestJournalRetainsFirstError(t *testing.T) {
	jr := NewJournal(failWriter{})
	s, _ := sampleSchedule(1)
	sg := workload.GEMM("g", 1, 64, 64, 64)
	if err := jr.Append(NewRecord(sg, "cpu", "harl", s, 1e-5, 1, 7)); err == nil {
		t.Fatal("write error must surface")
	}
	if jr.Err() == nil {
		t.Fatal("error must be retained")
	}
	if jr.Len() != 0 {
		t.Fatalf("failed append counted: %d", jr.Len())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }

// closeFailWriter writes successfully but fails on Close — the shape of a
// buffered flush error surfacing only at close time.
type closeFailWriter struct{ err error }

func (closeFailWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w closeFailWriter) Close() error              { return w.err }

// allFailWriter fails both Write and Close.
type allFailWriter struct{ err error }

func (allFailWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }
func (w allFailWriter) Close() error            { return w.err }

func TestJournalClosePropagatesCloserError(t *testing.T) {
	boom := fmt.Errorf("flush failed at close")
	jr := NewJournalWriteCloser(closeFailWriter{err: boom})
	s, _ := sampleSchedule(1)
	sg := workload.GEMM("g", 1, 64, 64, 64)
	if err := jr.Append(NewRecord(sg, "cpu", "harl", s, 1e-5, 1, 7)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := jr.Close(); err == nil || !strings.Contains(err.Error(), "flush failed at close") {
		t.Fatalf("Close = %v, want the closer's error", err)
	}
	// The close failure is retained like a write failure: a caller that only
	// checks Err at end of run still sees it.
	if jr.Err() == nil {
		t.Fatal("close error must be retained in Err")
	}
	// A write error that happened first wins over the close error.
	jr2 := NewJournalWriteCloser(allFailWriter{err: boom})
	if err := jr2.Append(NewRecord(sg, "cpu", "harl", s, 1e-5, 1, 7)); err == nil {
		t.Fatal("write error must surface")
	}
	if err := jr2.Close(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Close after failed write = %v, want the sticky write error", err)
	}
}

func TestParseLineRejectsNonPositiveExec(t *testing.T) {
	for _, exec := range []string{"0", "-1e-5"} {
		line := fmt.Sprintf(`{"v":1,"workload":"w@0","target":"cpu","scheduler":"harl","steps":"sk=0 ca=0 pf=0 ur=0/1","exec_sec":%s,"trial":1,"seed":1}`, exec)
		if _, err := ParseLine([]byte(line)); err == nil {
			t.Fatalf("exec %s must be rejected", exec)
		}
	}
}

func TestJournalLinesAreSelfContained(t *testing.T) {
	// Every journal line must parse back to the exact record — the property
	// the resume path and cross-run dedup depend on.
	var buf bytes.Buffer
	jr := NewJournal(&buf)
	sg := workload.GEMM("g", 1, 64, 64, 64)
	s, _ := sampleSchedule(9)
	want := NewRecord(sg, "gpu-rtx3090", "ansor", s, 3.141592653589793e-5, 17, 123456789)
	if err := jr.Append(want); err != nil {
		t.Fatal(err)
	}
	got, err := ParseLine(bytes.TrimSpace(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("parsed %+v want %+v", got, want)
	}
}

func TestJournalFilePersistsAcrossProcessesShape(t *testing.T) {
	// Sanity on the on-disk shape: one JSON object per line, newline
	// terminated, so `wc -l` equals the record count and tail -f works.
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	sg := workload.GEMM("g", 1, 64, 64, 64)
	s, _ := sampleSchedule(2)
	for i := 0; i < 3; i++ {
		if err := jr.Append(NewRecord(sg, "cpu", "harl", s, float64(i+1)*1e-5, i+1, 7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(data, []byte("\n")) {
		t.Fatal("journal must end with a newline")
	}
	if n := bytes.Count(data, []byte("\n")); n != 3 {
		t.Fatalf("%d lines for 3 records", n)
	}
}

func TestJournalAdvisoryLockExcludesSecondWriter(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("advisory flock is unix-only")
	}
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("second concurrent OpenJournal on one file must fail (advisory lock)")
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// The lock dies with the file: a fresh session opens cleanly.
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	jr2.Close()
}

package tunelog

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func repairTestRecord(trial int, exec float64) Record {
	return Record{V: SchemaVersion, Workload: "w@repair", Target: "cpu", Scheduler: "harl",
		Steps: "steps", ExecSec: exec, Trial: trial, Seed: 1}
}

// TestOpenRepairsTornTail is the torn-write regression test: a crash (or
// disk-full) mid-append leaves a partial line with no trailing newline.
// Pre-fix, the next O_APPEND writer concatenated its record onto the torn
// tail, and the corrupt-line-tolerant loader dropped the merged line —
// silently losing a VALID record, not just the already-lost partial one.
// Opening a journal must confine the damage by terminating the torn line.
func TestOpenRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recA := repairTestRecord(1, 2e-4)
	if err := jr.Append(recA); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a partial record with no trailing newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"workload":"w@repair","tar`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// The next writer appends a valid record through a fresh open.
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recB := repairTestRecord(2, 1e-4)
	if err := jr2.Append(recB); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 2 {
		t.Fatalf("loaded %d records, want both valid records to survive the torn tail", db.Size())
	}
	if db.Skipped() != 1 {
		t.Fatalf("skipped %d lines, want exactly the torn partial line", db.Skipped())
	}
	if best, ok := db.Best(recA.Workload, recA.Target); !ok || best != recB {
		t.Fatalf("best = %+v, %v; want the post-repair record", best, ok)
	}
}

// TestOpenLeavesHealthyJournalUntouched: the repair path must not write to a
// journal that already ends cleanly.
func TestOpenLeavesHealthyJournalUntouched(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tune.jsonl")
	jr, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Append(repairTestRecord(1, 2e-4)); err != nil {
		t.Fatal(err)
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jr2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("opening a healthy journal changed its bytes")
	}
}

// TestAcquireFileLockExcludesSecondHolder: the external lock primitive the
// sharded registry serializes shard writers with must actually exclude.
func TestAcquireFileLockExcludesSecondHolder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lock")
	l1, err := AcquireFileLock(path)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		l2, err := AcquireFileLock(path)
		if err != nil {
			t.Error(err)
			close(acquired)
			return
		}
		close(acquired)
		l2.Close()
	}()
	select {
	case <-acquired:
		t.Fatal("second AcquireFileLock succeeded while the first was held")
	case <-time.After(50 * time.Millisecond):
	}
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("second AcquireFileLock never proceeded after release")
	}
}

//go:build unix

package tunelog

import (
	"fmt"
	"os"
	"syscall"
)

// lockFile takes a non-blocking exclusive advisory lock (flock) on the open
// journal file, so two processes appending to the same journal fail fast
// instead of interleaving records. The lock lives with the file description:
// closing the file (or the process dying) releases it.
func lockFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return fmt.Errorf("tunelog: journal %s is locked by another process", f.Name())
		}
		return fmt.Errorf("tunelog: lock journal %s: %w", f.Name(), err)
	}
	return nil
}

// lockFileWait is lockFile but blocking: the caller queues behind the
// current holder instead of failing — the right semantics for short critical
// sections like a registry publish.
func lockFileWait(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("tunelog: lock journal %s: %w", f.Name(), err)
	}
	return nil
}

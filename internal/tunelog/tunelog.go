// Package tunelog implements the persistent tuning-record journal of the
// HARL reproduction: one JSONL record per measured trial, durable across
// processes, deduplicated and queryable, so tuning results are artifacts
// rather than throwaway process state (the LogFileDatabase pattern of the
// Ansor tooling the paper benchmarks against).
//
// A Record captures everything needed to reuse a measurement later: the
// workload fingerprint (texpr.Subgraph.Fingerprint — stable across processes
// and transferable between structurally identical subgraphs), the target
// platform, the scheduler preset that produced it, the serialized schedule
// transform steps (schedule.MarshalSteps, which round-trips byte-identically
// through UnmarshalSteps against the deterministically regenerated sketch
// list), the noisy measured execution time, the task-local trial index and
// the run seed.
//
// The two halves of the package:
//
//   - Journal appends records to a log file as they are committed. Writers
//     emit records in measurement commit order, which is deterministic for
//     every worker count (see search.Task.MeasureBatch and
//     search.MultiTuner), so journals of equal runs are byte-identical.
//   - Database loads one or more logs into memory, skipping corrupt or
//     truncated lines and records with an unknown schema version,
//     deduplicating exact duplicates, and answering best-record queries per
//     (workload, target) key — the warm-start source for re-runs.
package tunelog

import (
	"encoding/json"
	"fmt"

	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/texpr"
)

// SchemaVersion is the record schema version written by this package. Loaders
// skip records with a different version rather than misinterpreting them.
const SchemaVersion = 1

// Record is one measured tuning trial.
type Record struct {
	// V is the schema version (SchemaVersion at write time).
	V int `json:"v"`
	// Workload is the subgraph fingerprint (texpr.Subgraph.Fingerprint).
	Workload string `json:"workload"`
	// Target is the platform name (hardware.Platform.Name).
	Target string `json:"target"`
	// Scheduler is the preset that produced the measurement.
	Scheduler string `json:"scheduler"`
	// Steps is the schedule's serialized transform steps
	// (schedule.Schedule.MarshalSteps).
	Steps string `json:"steps"`
	// ExecSec is the noisy measured execution time in seconds.
	ExecSec float64 `json:"exec_sec"`
	// Trial is the task-local 1-based trial index of the measurement.
	Trial int `json:"trial"`
	// Seed is the run's root random seed.
	Seed uint64 `json:"seed"`
	// Force marks a registry heal record: when a key's stored best turns out
	// to be poisoned (a foreign record that resolves but no longer
	// reconstructs, possibly with an unbeatably low time), the repairing
	// publish sets Force so the replacement wins unconditionally — and keeps
	// winning across index rebuilds, because the journal replays in order.
	// Tuning journals never set it.
	Force bool `json:"force,omitempty"`
}

// NewRecord builds a record for one committed measurement.
func NewRecord(g *texpr.Subgraph, target, scheduler string, s *schedule.Schedule, execSec float64, trial int, seed uint64) Record {
	return NewRecordFP(g.Fingerprint(), target, scheduler, s, execSec, trial, seed)
}

// NewRecordFP is NewRecord with a precomputed workload fingerprint, for
// per-trial callers that journal many records of one workload and hoist the
// structural hash out of the measurement loop.
func NewRecordFP(fingerprint, target, scheduler string, s *schedule.Schedule, execSec float64, trial int, seed uint64) Record {
	return Record{
		V:         SchemaVersion,
		Workload:  fingerprint,
		Target:    target,
		Scheduler: scheduler,
		Steps:     s.MarshalSteps(),
		ExecSec:   execSec,
		Trial:     trial,
		Seed:      seed,
	}
}

// Key returns the (workload, target) query key the database indexes on.
func (r Record) Key() string { return r.Workload + "\x00" + r.Target }

// identity is the full-record deduplication key: two appends of the same
// measurement collapse to one database entry.
func (r Record) identity() string {
	return fmt.Sprintf("%d|%s|%s|%s|%s|%x|%d|%d|%v", r.V, r.Workload, r.Target, r.Scheduler, r.Steps, r.ExecSec, r.Trial, r.Seed, r.Force)
}

// MarshalLine renders the record as one JSONL line (no trailing newline).
func (r Record) MarshalLine() ([]byte, error) { return json.Marshal(r) }

// ParseLine parses one journal line. It returns an error for malformed JSON
// or a record that fails basic sanity (empty fingerprint/steps, non-positive
// exec time) so the database loader can skip corrupt lines.
func ParseLine(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("tunelog: malformed line: %w", err)
	}
	if r.Workload == "" || r.Target == "" || r.Steps == "" {
		return Record{}, fmt.Errorf("tunelog: incomplete record %q", line)
	}
	if !(r.ExecSec > 0) {
		return Record{}, fmt.Errorf("tunelog: non-positive exec time in %q", line)
	}
	return r, nil
}

// Schedule reconstructs the record's schedule against the sketch list
// generated for a workload with the record's fingerprint.
func (r Record) Schedule(sketches []*sketch.Sketch) (*schedule.Schedule, error) {
	return schedule.UnmarshalSteps(sketches, r.Steps)
}

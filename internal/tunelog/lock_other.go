//go:build !unix

package tunelog

import "os"

// lockFile is a no-op where flock is unavailable: appends still go through
// the in-process mutex, but cross-process exclusion is advisory-only on
// platforms that support it.
func lockFile(*os.File) error { return nil }

// lockFileWait is likewise a no-op without flock support.
func lockFileWait(*os.File) error { return nil }

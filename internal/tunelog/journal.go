package tunelog

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Journal appends tuning records to a log file (or any writer) as JSONL.
// Append is safe for concurrent use, but callers that need byte-identical
// journals across worker counts must append in a deterministic order — the
// tuning stack does: search.Task commits measurements serially in batch input
// order, and search.MultiTuner drains per-task record buffers at wave
// barriers in selection order.
type Journal struct {
	mu  sync.Mutex
	w   io.Writer
	c   io.Closer // nil when wrapping a plain writer
	err error     // first write error, sticky
	n   int       // records appended
}

// OpenJournal opens (creating if needed) a journal file for appending. The
// file carries a non-blocking exclusive advisory lock (flock, where the
// platform supports it) for the journal's lifetime, so two processes cannot
// interleave appends into one log: the second open fails fast instead. The
// lock is released by Close or by process exit — a killed run never leaves a
// stale lock behind.
func OpenJournal(path string) (*Journal, error) {
	return openJournal(path, lockFile)
}

// OpenJournalWait is OpenJournal with a blocking advisory lock: instead of
// failing fast when another process holds the journal, the caller queues
// behind it. Use it for short append-and-close critical sections (the
// registry's publish path); long-lived tuning logs keep the fail-fast
// OpenJournal so a forgotten second run is an error, not a silent stall.
func OpenJournalWait(path string) (*Journal, error) {
	return openJournal(path, lockFileWait)
}

// OpenJournalUnlocked opens a journal without taking an advisory lock of its
// own, for callers that serialize writers externally. The sharded registry
// needs this: compaction atomically replaces the journal file, and a flock
// held on the replaced inode would no longer exclude anyone — so shard
// writers lock a separate, never-renamed lock file (AcquireFileLock) and open
// the journal itself unlocked.
func OpenJournalUnlocked(path string) (*Journal, error) {
	return openJournal(path, func(*os.File) error { return nil })
}

func openJournal(path string, lock func(*os.File) error) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tunelog: open journal: %w", err)
	}
	if err := lock(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := repairTornTail(f); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{w: f, c: f}, nil
}

// repairTornTail heals a journal whose last write was torn (crash or
// disk-full mid-append): the file ends with a partial line and no trailing
// newline. Because journals open O_APPEND, the next Append would concatenate
// its record onto the torn tail, and the corrupt-line-tolerant loader would
// then drop the merged line — silently losing a valid record. Writing one
// repair newline confines the damage to the already-lost partial line. Runs
// after the advisory lock is held (or under the caller's external lock), so
// it never races another writer.
func repairTornTail(f *os.File) error {
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("tunelog: stat journal: %w", err)
	}
	if st.Size() == 0 {
		return nil
	}
	var tail [1]byte
	if _, err := f.ReadAt(tail[:], st.Size()-1); err != nil {
		return fmt.Errorf("tunelog: read journal tail: %w", err)
	}
	if tail[0] == '\n' {
		return nil
	}
	if _, err := f.Write([]byte{'\n'}); err != nil {
		return fmt.Errorf("tunelog: repair torn journal tail: %w", err)
	}
	return nil
}

// AcquireFileLock takes a blocking exclusive advisory lock on path (created
// if missing), returning a closer that releases it. This is the external
// serialization primitive for writers whose data file cannot carry the lock
// itself — the sharded registry locks shards/<xx>/lock so compaction can
// rename-replace the shard journal without orphaning waiters' flocks.
func AcquireFileLock(path string) (io.Closer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644) //lint:allow atomicwrite lock-file inode: it anchors the advisory flock and never carries data
	if err != nil {
		return nil, fmt.Errorf("tunelog: open lock file: %w", err)
	}
	if err := lockFileWait(f); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// NewJournal wraps an arbitrary writer (tests, in-memory journals).
func NewJournal(w io.Writer) *Journal { return &Journal{w: w} }

// NewJournalWriteCloser wraps a writer whose Close matters: Close propagates
// the closer's error exactly like the file-backed journals do. Tests use it
// to prove close failures are not swallowed by callers.
func NewJournalWriteCloser(wc io.WriteCloser) *Journal { return &Journal{w: wc, c: wc} }

// Append writes one record as a JSONL line. The first error encountered is
// returned and retained (Err) so fire-and-forget callers inside measurement
// callbacks can check once at the end of a run.
func (j *Journal) Append(r Record) error {
	line, err := r.MarshalLine()
	if err != nil {
		return j.fail(err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = fmt.Errorf("tunelog: append: %w", err)
		return j.err
	}
	j.n++
	return nil
}

func (j *Journal) fail(err error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		j.err = err
	}
	return j.err
}

// Len returns the number of records appended through this journal.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.n
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes and closes the underlying file (a no-op for plain writers)
// and returns any retained write error.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = fmt.Errorf("tunelog: close journal: %w", err)
		}
		j.c = nil
	}
	return j.err
}

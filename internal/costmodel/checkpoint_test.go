package costmodel

import (
	"bytes"
	"path/filepath"
	"testing"

	"harl/internal/xrand"
)

// trainedModel fits a model on synthetic data for the checkpoint tests.
func trainedModel(t *testing.T, seed uint64, n int) *Model {
	t.Helper()
	rng := xrand.New(seed)
	m := New(DefaultParams())
	xs, ys := synth(rng, n, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	if !m.Trained() {
		t.Fatal("model should be trained")
	}
	return m
}

func TestCheckpointRoundTripByteIdentical(t *testing.T) {
	m := trainedModel(t, 1, 400)
	first, err := m.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalCheckpoint(first)
	if err != nil {
		t.Fatal(err)
	}
	second, err := loaded.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("save → load → re-save is not byte-identical")
	}
}

func TestCheckpointPredictsIdentically(t *testing.T) {
	m := trainedModel(t, 2, 400)
	data, err := m.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != m.Len() {
		t.Fatalf("training set %d after load, want %d", loaded.Len(), m.Len())
	}
	// Holdout grid: predictions and throughputs must be bit-identical.
	hx, _ := synth(xrand.New(99), 250, 6)
	want := m.PredictBatch(hx)
	got := loaded.PredictBatch(hx)
	for i := range hx {
		if got[i] != want[i] {
			t.Fatalf("holdout %d: loaded predicts %v, original %v", i, got[i], want[i])
		}
		if loaded.Throughput(hx[i]) != m.Throughput(hx[i]) {
			t.Fatalf("holdout %d: throughput diverged", i)
		}
	}
	// The loaded model keeps learning: a refit from the carried training set
	// reproduces the original ensemble exactly.
	loaded.Refit()
	refitted := loaded.PredictBatch(hx)
	for i := range hx {
		if refitted[i] != want[i] {
			t.Fatalf("holdout %d: refit after load diverged (%v vs %v)", i, refitted[i], want[i])
		}
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m := trainedModel(t, 3, 300)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = 0.5
	}
	if loaded.Predict(x) != m.Predict(x) {
		t.Fatal("file round trip changed predictions")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}

func TestCheckpointUntrainedModel(t *testing.T) {
	m := New(DefaultParams())
	data, err := m.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Trained() || loaded.Len() != 0 {
		t.Fatal("empty model must load empty")
	}
	resave, err := loaded.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, resave) {
		t.Fatal("empty checkpoint not byte-stable")
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalCheckpoint([]byte("not json")); err == nil {
		t.Fatal("garbage must error")
	}
	if _, err := UnmarshalCheckpoint([]byte(`{"v":99}`)); err == nil {
		t.Fatal("version mismatch must error")
	}
	if _, err := UnmarshalCheckpoint([]byte(`{"v":1,"xs":[[1]],"ys":[]}`)); err == nil {
		t.Fatal("xs/ys length mismatch must error")
	}
	// An internal node pointing at itself would loop forever if accepted.
	bad := `{"v":1,"xs":[[1]],"ys":[2],"trees":[{"nodes":[{"f":0,"t":0.5,"l":0,"r":0,"leaf":0,"end":false}]}]}`
	if _, err := UnmarshalCheckpoint([]byte(bad)); err == nil {
		t.Fatal("cyclic tree must error")
	}
	// A split on a feature beyond the model's dimension would index out of
	// range in Predict.
	badFeat := `{"v":1,"xs":[[1,2]],"ys":[3],"trees":[{"nodes":[` +
		`{"f":5,"t":0.5,"l":1,"r":2,"leaf":0,"end":false},` +
		`{"f":0,"t":0,"l":0,"r":0,"leaf":1,"end":true},` +
		`{"f":0,"t":0,"l":0,"r":0,"leaf":2,"end":true}]}]}`
	if _, err := UnmarshalCheckpoint([]byte(badFeat)); err == nil {
		t.Fatal("out-of-range split feature must error")
	}
	// Splitting trees without any dimensioned part to bound their feature
	// indices (a leaf-only tree would be harmless and loads fine).
	noDim := `{"v":1,"trees":[{"nodes":[` +
		`{"f":0,"t":0.5,"l":1,"r":2,"leaf":0,"end":false},` +
		`{"f":0,"t":0,"l":0,"r":0,"leaf":1,"end":true},` +
		`{"f":0,"t":0,"l":0,"r":0,"leaf":2,"end":true}]}]}`
	if _, err := UnmarshalCheckpoint([]byte(noDim)); err == nil {
		t.Fatal("splitting trees without a feature dimension must error")
	}
	// Ragged training rows would panic the fitters at the next Refit.
	if _, err := UnmarshalCheckpoint([]byte(`{"v":1,"xs":[[1,2],[3]],"ys":[1,2]}`)); err == nil {
		t.Fatal("ragged feature rows must error")
	}
	if _, err := UnmarshalCheckpoint([]byte(`{"v":1,"lin":[1,2],"lin_mu":[1]}`)); err == nil {
		t.Fatal("lin/lin_mu length mismatch must error")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := trainedModel(t, 4, 200)
	c := m.Clone()
	x := make([]float64, 6)
	for i := range x {
		x[i] = 0.25
	}
	want := m.Predict(x)
	if c.Predict(x) != want {
		t.Fatal("clone predicts differently")
	}
	// Training the clone must not disturb the original.
	extra, ys := synth(xrand.New(5), 100, 6)
	for i := range extra {
		c.Add(extra[i], ys[i])
	}
	c.Refit()
	if m.Predict(x) != want {
		t.Fatal("training the clone mutated the original")
	}
	if c.Len() != m.Len()+100 {
		t.Fatalf("clone has %d samples, want %d", c.Len(), m.Len()+100)
	}
}

func TestMergeFoldsSamples(t *testing.T) {
	a := trainedModel(t, 6, 150)
	b := trainedModel(t, 7, 120)
	merged := New(DefaultParams())
	merged.Merge(a)
	merged.Merge(b)
	if merged.Len() != a.Len()+b.Len() {
		t.Fatalf("merged %d samples, want %d", merged.Len(), a.Len()+b.Len())
	}
	merged.Refit()
	if !merged.Trained() {
		t.Fatal("merged model should train")
	}
}

package costmodel

import "math"

// CostModel is the learned performance model the search stack programs
// against. Everything outside this package — search.Task, the engines, the
// tuners in internal/core — depends only on this interface; the concrete
// GBDT (Model) appears solely in constructor wiring, so alternative models
// (a pretrained ensemble loaded from a checkpoint, a mock in tests, a future
// neural model) drop in without touching the search layers.
//
// Implementations must be deterministic: equal training histories must yield
// equal models, and Predict/PredictBatch/Throughput must be pure between
// refits — the worker-count invariance of the tuning engines (workers=1 ≡
// workers=N byte-identical) rests on it.
type CostModel interface {
	// Add appends one measured sample: a schedule feature vector and its
	// log-throughput target log(1/exec).
	Add(x []float64, y float64)
	// Refit rebuilds the model from every stored sample.
	Refit()
	// Predict returns the modeled log-throughput of one feature vector.
	Predict(x []float64) float64
	// PredictBatch predicts many feature vectors in one pass; the result
	// matches element-wise application of Predict exactly.
	PredictBatch(xs [][]float64) []float64
	// Throughput converts a prediction into the strictly positive score C(s)
	// of the ratio-form RL reward.
	Throughput(x []float64) float64
	// Trained reports whether the model has a fitted ensemble.
	Trained() bool
	// Len returns the number of stored training samples.
	Len() int
}

// ParallelRefitter is implemented by cost models whose Refit fans independent
// scans across a worker pool. The contract is strict: the fitted model must be
// bit-identical for every worker count (the runner only changes wall-clock
// time), so installing a task's pool cannot perturb the workers=1 ≡ workers=N
// journal contract. search.Task installs its pool before each refit.
type ParallelRefitter interface {
	SetRunner(Runner)
}

// BatchInto is implemented by cost models that can write batched predictions
// into a caller-owned slice, letting steady-state scorers reuse one output
// buffer instead of allocating per call. out must be at least len(xs) long;
// the first len(xs) elements match PredictBatch exactly.
type BatchInto interface {
	PredictBatchInto(xs [][]float64, out []float64)
}

// Checkpointer is implemented by cost models that serialize to the versioned
// checkpoint format (see checkpoint.go). Callers that hold a CostModel
// type-assert against it to save artifacts without naming the concrete type.
type Checkpointer interface {
	MarshalCheckpoint() ([]byte, error)
}

// ToThroughput maps a log-throughput prediction to the positive score C(s),
// clamping the exponent so the ratio reward stays well-behaved before the
// model has seen data. Model.Throughput is exactly ToThroughput∘Predict, and
// batch scorers apply it element-wise over PredictBatch.
func ToThroughput(p float64) float64 {
	if p > 60 {
		p = 60
	}
	if p < -60 {
		p = -60
	}
	return math.Exp(p)
}

package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"harl/internal/stats"
	"harl/internal/xrand"
)

// synth generates n samples of a nonlinear target over d features.
func synth(rng *xrand.RNG, n, d int) ([][]float64, []float64) {
	xs := make([][]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.Float64()
		}
		xs[i] = x
		ys[i] = 3*x[0] - 2*x[1] + 4*x[0]*x[1] + math.Sin(6*x[2])
	}
	return xs, ys
}

func TestFitNonlinearFunction(t *testing.T) {
	rng := xrand.New(1)
	m := New(DefaultParams())
	xs, ys := synth(rng, 600, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	if !m.Trained() {
		t.Fatal("model should be trained")
	}
	// Holdout error must be far below the target's variance.
	hx, hy := synth(rng, 300, 6)
	mse, varY := 0.0, 0.0
	meanY := 0.0
	for _, y := range hy {
		meanY += y
	}
	meanY /= float64(len(hy))
	for i := range hx {
		d := m.Predict(hx[i]) - hy[i]
		mse += d * d
		dv := hy[i] - meanY
		varY += dv * dv
	}
	if r2 := 1 - mse/varY; r2 < 0.8 {
		t.Fatalf("holdout R² = %.3f, want ≥ 0.8", r2)
	}
}

func TestRankingQuality(t *testing.T) {
	rng := xrand.New(2)
	m := New(DefaultParams())
	xs, ys := synth(rng, 500, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	hx, hy := synth(rng, 300, 6)
	pred := m.PredictBatch(hx)
	if rho := stats.Spearman(pred, hy); rho < 0.9 {
		t.Fatalf("holdout spearman %.3f, want ≥ 0.9", rho)
	}
}

func TestUntrainedBehaviour(t *testing.T) {
	m := New(DefaultParams())
	if m.Trained() {
		t.Fatal("empty model claims training")
	}
	if p := m.Predict([]float64{1, 2}); p != 0 {
		t.Fatalf("empty model predicts %f", p)
	}
	m.Add([]float64{1}, 5)
	m.Refit() // below MinSamples: base only
	if m.Trained() {
		t.Fatal("single sample should not train trees")
	}
	if p := m.Predict([]float64{1}); p != 5 {
		t.Fatalf("base prediction %f want 5", p)
	}
}

func TestRefitDeterministic(t *testing.T) {
	rng := xrand.New(3)
	xs, ys := synth(rng, 200, 4)
	a, b := New(DefaultParams()), New(DefaultParams())
	for i := range xs {
		a.Add(xs[i], ys[i])
		b.Add(xs[i], ys[i])
	}
	a.Refit()
	b.Refit()
	probe := []float64{0.3, 0.7, 0.1, 0.9}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("refit not deterministic")
	}
}

func TestMaxDataEviction(t *testing.T) {
	p := DefaultParams()
	p.MaxData = 50
	m := New(p)
	for i := 0; i < 120; i++ {
		m.Add([]float64{float64(i)}, float64(i))
	}
	if m.Len() != 50 {
		t.Fatalf("len %d want 50", m.Len())
	}
}

func TestPredictionClampedToTargetRange(t *testing.T) {
	rng := xrand.New(4)
	m := New(DefaultParams())
	xs, ys := synth(rng, 300, 4)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for i := range xs {
		m.Add(xs[i], ys[i])
		yMin = math.Min(yMin, ys[i])
		yMax = math.Max(yMax, ys[i])
	}
	m.Refit()
	// Far outside the training distribution the prediction must stay within
	// the clamped band — extrapolation safety for the evolutionary ranking.
	f := func(raw []float64) bool {
		x := make([]float64, 4)
		for j := range x {
			if j < len(raw) {
				x[j] = raw[j] * 100
			}
		}
		p := m.Predict(x)
		return p <= yMax+0.5+1e-9 && p >= yMin-0.5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputPositive(t *testing.T) {
	rng := xrand.New(5)
	m := New(DefaultParams())
	xs, ys := synth(rng, 100, 3)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if v := m.Throughput(x); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("throughput %v", v)
		}
	}
}

func TestLinearTermGivesLocalGradient(t *testing.T) {
	// A pure linear target: nearby points must get different predictions
	// (the ratio-form RL reward needs non-zero local differences).
	rng := xrand.New(6)
	m := New(DefaultParams())
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		m.Add(x, 2*x[0]+x[1])
	}
	m.Refit()
	a := m.Predict([]float64{0.50, 0.50})
	b := m.Predict([]float64{0.52, 0.50})
	if a == b {
		t.Fatal("no local gradient between nearby points")
	}
	if b < a {
		t.Fatal("gradient direction wrong for increasing feature")
	}
}

func TestConstantTarget(t *testing.T) {
	m := New(DefaultParams())
	for i := 0; i < 50; i++ {
		m.Add([]float64{float64(i % 7), float64(i % 3)}, 4.2)
	}
	m.Refit()
	if p := m.Predict([]float64{1, 1}); math.Abs(p-4.2) > 1e-6 {
		t.Fatalf("constant target predicted %f", p)
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := xrand.New(11)
	m := New(DefaultParams())
	xs, ys := synth(rng, 400, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	// Both untrained (base-only) and trained models must agree element-wise.
	hx, _ := synth(rng, 200, 6)
	for pass := 0; pass < 2; pass++ {
		batch := m.PredictBatch(hx)
		if len(batch) != len(hx) {
			t.Fatalf("batch length %d, want %d", len(batch), len(hx))
		}
		for i, x := range hx {
			if one := m.Predict(x); batch[i] != one {
				t.Fatalf("pass %d sample %d: batch %v, Predict %v", pass, i, batch[i], one)
			}
		}
		m.Refit()
	}
}

func TestDimensionCompatibilityGuards(t *testing.T) {
	rng := xrand.New(13)
	m := New(DefaultParams())
	xs, ys := synth(rng, 300, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	if m.Dim() != 6 {
		t.Fatalf("dim %d, want 6", m.Dim())
	}
	// Mismatched samples are dropped, keeping the training matrix
	// rectangular.
	m.Add(make([]float64, 9), 1)
	if m.Len() != 300 {
		t.Fatalf("mismatched Add changed the training set to %d", m.Len())
	}
	// Mismatched queries fall back to the clamped base instead of indexing
	// out of range — in both single and batch form, and in Throughput.
	short, long := make([]float64, 4), make([]float64, 11)
	want := m.Predict(short)
	if m.Predict(long) != want {
		t.Fatal("mismatched queries must agree on the base fallback")
	}
	batch := m.PredictBatch([][]float64{short, xs[0], long})
	if batch[0] != want || batch[2] != want {
		t.Fatal("batch fallback differs from Predict fallback")
	}
	if batch[1] != m.Predict(xs[0]) {
		t.Fatal("conforming sample disturbed by fallback path")
	}
	if m.Throughput(short) != ToThroughput(want) {
		t.Fatal("throughput fallback mismatch")
	}
}

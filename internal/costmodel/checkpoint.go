// Checkpoint codec: a versioned JSON serialization of a trained Model —
// boosted trees, ridge term, target range AND the stored training set, so a
// reloaded model both predicts bit-identically and keeps learning (the first
// Refit after new measurements rebuilds from the full history instead of
// forgetting the checkpointed knowledge).
//
// The encoding is canonical: struct field order is fixed and float64 values
// use Go's shortest round-trip formatting, so save → load → re-save produces
// byte-identical artifacts (the property the round-trip tests pin down).
// Loaders reject checkpoints of a different version rather than
// misinterpreting them.
package costmodel

import (
	"encoding/json"
	"fmt"
	"os"

	"harl/internal/atomicfile"
)

// CheckpointVersion is the artifact format version written by this package.
const CheckpointVersion = 1

type ckptNode struct {
	Feat  int     `json:"f"`
	Thr   float64 `json:"t"`
	Left  int     `json:"l"`
	Right int     `json:"r"`
	Leaf  float64 `json:"leaf"`
	End   bool    `json:"end"` // isLeaf
}

type ckptTree struct {
	Nodes []ckptNode `json:"nodes"`
}

type checkpoint struct {
	V      int         `json:"v"`
	Params Params      `json:"params"`
	Base   float64     `json:"base"`
	YMin   float64     `json:"y_min"`
	YMax   float64     `json:"y_max"`
	Lin    []float64   `json:"lin,omitempty"`
	LinMu  []float64   `json:"lin_mu,omitempty"`
	Trees  []ckptTree  `json:"trees,omitempty"`
	XS     [][]float64 `json:"xs,omitempty"`
	YS     []float64   `json:"ys,omitempty"`
}

// MarshalCheckpoint renders the model as one canonical JSON document (with a
// trailing newline). It implements Checkpointer.
func (m *Model) MarshalCheckpoint() ([]byte, error) {
	ck := checkpoint{
		V:      CheckpointVersion,
		Params: m.P,
		Base:   m.base,
		YMin:   m.yMin,
		YMax:   m.yMax,
		Lin:    m.lin,
		LinMu:  m.linMu,
		XS:     m.xs,
		YS:     m.ys,
	}
	for _, t := range m.trees {
		ct := ckptTree{Nodes: make([]ckptNode, len(t.nodes))}
		for i, n := range t.nodes {
			ct.Nodes[i] = ckptNode{Feat: n.feat, Thr: n.thr, Left: n.left, Right: n.right, Leaf: n.leaf, End: n.isLeaf}
		}
		ck.Trees = append(ck.Trees, ct)
	}
	data, err := json.Marshal(ck)
	if err != nil {
		return nil, fmt.Errorf("costmodel: marshal checkpoint: %w", err)
	}
	return append(data, '\n'), nil
}

// UnmarshalCheckpoint reconstructs a model from its checkpoint bytes. A
// version mismatch is an error: artifacts are never silently reinterpreted.
func UnmarshalCheckpoint(data []byte) (*Model, error) {
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("costmodel: malformed checkpoint: %w", err)
	}
	if ck.V != CheckpointVersion {
		return nil, fmt.Errorf("costmodel: checkpoint version %d, want %d", ck.V, CheckpointVersion)
	}
	if len(ck.XS) != len(ck.YS) {
		return nil, fmt.Errorf("costmodel: checkpoint has %d feature rows but %d targets", len(ck.XS), len(ck.YS))
	}
	if len(ck.Lin) != len(ck.LinMu) {
		return nil, fmt.Errorf("costmodel: checkpoint has %d ridge weights but %d feature means", len(ck.Lin), len(ck.LinMu))
	}
	// Establish the feature dimension and require every dimensioned part to
	// agree: ragged training rows would panic the fitters on the next Refit,
	// and out-of-range tree/ridge feature indices would panic Predict — a
	// malformed artifact must fail here, at load.
	dim := len(ck.Lin)
	for i, x := range ck.XS {
		if dim == 0 {
			dim = len(x)
		}
		if len(x) != dim {
			return nil, fmt.Errorf("costmodel: checkpoint feature row %d has %d values, want %d", i, len(x), dim)
		}
	}
	m := &Model{
		P:     ck.Params,
		base:  ck.Base,
		yMin:  ck.YMin,
		yMax:  ck.YMax,
		lin:   ck.Lin,
		linMu: ck.LinMu,
		xs:    ck.XS,
		ys:    ck.YS,
	}
	for _, ct := range ck.Trees {
		t := &tree{nodes: make([]node, len(ct.Nodes))}
		for i, n := range ct.Nodes {
			if !n.End {
				// grow() always appends children after their parent, so
				// child indices must be strictly increasing — which also
				// guarantees traversal terminates on any artifact that
				// passes the check.
				if n.Left <= i || n.Left >= len(ct.Nodes) || n.Right <= i || n.Right >= len(ct.Nodes) {
					return nil, fmt.Errorf("costmodel: checkpoint tree node %d has invalid children", i)
				}
				if n.Feat < 0 || n.Feat >= dim {
					return nil, fmt.Errorf("costmodel: checkpoint tree node %d splits on feature %d of %d", i, n.Feat, dim)
				}
			}
			t.nodes[i] = node{feat: n.Feat, thr: n.Thr, left: n.Left, right: n.Right, leaf: n.Leaf, isLeaf: n.End}
		}
		if len(t.nodes) == 0 {
			return nil, fmt.Errorf("costmodel: checkpoint contains an empty tree")
		}
		m.trees = append(m.trees, t)
	}
	m.reflatten()
	return m, nil
}

// SaveFile writes a model's checkpoint to path (0644). It accepts any
// Checkpointer so callers holding the CostModel interface can save without
// naming the concrete type. The write is atomic (temp file + rename): a run
// killed mid-save never truncates an existing checkpoint.
func SaveFile(path string, m Checkpointer) error {
	data, err := m.MarshalCheckpoint()
	if err != nil {
		return err
	}
	if err := atomicfile.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("costmodel: write checkpoint: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint written by SaveFile (or harl-train).
func LoadFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("costmodel: read checkpoint: %w", err)
	}
	return UnmarshalCheckpoint(data)
}

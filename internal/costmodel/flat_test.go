package costmodel

import (
	"runtime"
	"sync"
	"testing"

	"harl/internal/xrand"
)

// referencePredict recomputes a prediction with the pointer-tree kernel —
// the pre-flattening implementation — for cross-checking the flat SoA path.
func referencePredict(m *Model, x []float64) float64 {
	if !m.conforms(x) {
		return m.clamp(m.base)
	}
	y := m.base + m.linearTerm(x)
	for _, t := range m.trees {
		y += m.P.LearningRate * t.predict(x)
	}
	if m.Trained() {
		y = m.clamp(y)
	}
	return y
}

// TestFlatKernelEquivalence pins the bit-identity contract of the flattened
// prediction kernel: Predict and PredictBatch over the SoA arrays must equal
// the pointer-tree reference exactly — for freshly refit models, for models
// reloaded from checkpoints, and for clones.
func TestFlatKernelEquivalence(t *testing.T) {
	rng := xrand.New(21)
	m := New(DefaultParams())
	xs, ys := synth(rng, 500, 8)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	if len(m.trees) != m.flat.numTrees() {
		t.Fatalf("flat forest has %d trees, ensemble %d", m.flat.numTrees(), len(m.trees))
	}
	hx, _ := synth(rng, 300, 8)

	check := func(name string, mm *Model) {
		t.Helper()
		for i, x := range hx {
			if got, want := mm.Predict(x), referencePredict(mm, x); got != want {
				t.Fatalf("%s: sample %d: flat %v, reference %v", name, i, got, want)
			}
		}
		batch := mm.PredictBatch(hx)
		for i, x := range hx {
			if want := referencePredict(mm, x); batch[i] != want {
				t.Fatalf("%s: batch sample %d: flat %v, reference %v", name, i, batch[i], want)
			}
		}
	}
	check("refit", m)

	data, err := m.MarshalCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	check("checkpoint-loaded", loaded)
	check("clone", m.Clone())
}

// testRunner is a real concurrent runner that deliberately starts jobs in
// reverse index order, so any accidental order dependence in the parallel
// refit scans would surface.
func testRunner(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := n - 1; i >= 0; i-- {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// TestParallelRefitBitIdentical pins the SetRunner contract: a refit fanned
// across a concurrent runner must produce a byte-identical model (checkpoint
// bytes, not just predictions) to the serial refit, and repeated refits with
// reused scratch buffers must not drift.
func TestParallelRefitBitIdentical(t *testing.T) {
	rng := xrand.New(22)
	xs, ys := synth(rng, 700, 8)
	serial, par := New(DefaultParams()), New(DefaultParams())
	par.SetRunner(testRunner)
	for i := range xs {
		serial.Add(xs[i], ys[i])
		par.Add(xs[i], ys[i])
	}
	for round := 0; round < 3; round++ {
		serial.Refit()
		par.Refit()
		a, err := serial.MarshalCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.MarshalCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("round %d: parallel refit produced a different model", round)
		}
		// Grow the training set between rounds so the reused buffers are
		// exercised at changing sizes.
		nx, ny := synth(rng, 100, 8)
		for i := range nx {
			serial.Add(nx[i], ny[i])
			par.Add(nx[i], ny[i])
		}
	}
}

// TestPredictBatchIntoMatchesPredictBatch pins the caller-owned-buffer batch
// path against the allocating one, trained and untrained.
func TestPredictBatchIntoMatchesPredictBatch(t *testing.T) {
	rng := xrand.New(23)
	m := New(DefaultParams())
	xs, ys := synth(rng, 300, 6)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	hx, _ := synth(rng, 128, 6)
	out := make([]float64, len(hx))
	for pass := 0; pass < 2; pass++ {
		want := m.PredictBatch(hx)
		m.PredictBatchInto(hx, out)
		for i := range hx {
			if out[i] != want[i] {
				t.Fatalf("pass %d sample %d: into %v, batch %v", pass, i, out[i], want[i])
			}
		}
		m.Refit()
	}
}

// TestPredictBatchAllocs pins the allocation cost of the batch kernels: the
// allocating form costs exactly its output slice, and the Into form is
// allocation-free.
func TestPredictBatchAllocs(t *testing.T) {
	rng := xrand.New(24)
	m := New(DefaultParams())
	xs, ys := synth(rng, 512, 24)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	m.Refit()
	hx, _ := synth(rng, 256, 24)
	if n := testing.AllocsPerRun(20, func() { m.PredictBatch(hx) }); n > 1 {
		t.Fatalf("PredictBatch allocates %.1f objects per call, want ≤ 1 (the output slice)", n)
	}
	out := make([]float64, len(hx))
	if n := testing.AllocsPerRun(20, func() { m.PredictBatchInto(hx, out) }); n != 0 {
		t.Fatalf("PredictBatchInto allocates %.1f objects per call, want 0", n)
	}
}

// mallocsDuring counts heap allocations performed by f.
func mallocsDuring(f func()) uint64 {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestRefitBufferReuse pins that the steady-state refit loop stops churning
// the allocator: with a warm model, a second refit over the same data reuses
// the resid/idx/bins/edges scratch instead of reallocating it. The tree nodes
// themselves still allocate (they become the ensemble), so the pin is
// relative: a warm refit must allocate well under half of a cold one.
func TestRefitBufferReuse(t *testing.T) {
	rng := xrand.New(25)
	m := New(DefaultParams())
	xs, ys := synth(rng, 512, 24)
	for i := range xs {
		m.Add(xs[i], ys[i])
	}
	cold := mallocsDuring(m.Refit)
	warm := mallocsDuring(m.Refit)
	if warm > cold/2 {
		t.Fatalf("warm refit allocates %d objects vs %d cold, want < half", warm, cold)
	}
}

// Package costmodel implements the light-weight learned cost model of the
// HARL system: gradient-boosted regression trees (the paper uses XGBoost with
// Ansor's parameters; this is a from-scratch stdlib implementation of the
// same algorithm family). The model predicts log-throughput from schedule
// features, is refit on the fly from hardware measurements after every top-K
// measurement batch, and serves as the reward function
//
//	r(s_t, s_{t-1}) = (C(s_t) - C(s_{t-1})) / C(s_{t-1})
//
// of the actor-critic search as well as the ranking oracle of the top-K
// selection phase.
package costmodel

import (
	"math"
	"sort"
)

// Params configures the boosted ensemble.
type Params struct {
	NumTrees     int     // boosting rounds
	MaxDepth     int     // tree depth limit
	LearningRate float64 // shrinkage
	MinSamples   int     // minimum samples to split a node
	MaxData      int     // training-set cap (most recent kept)
	Thresholds   int     // candidate split thresholds per feature
}

// DefaultParams mirrors the scale of Ansor's XGBoost configuration while
// staying fast enough to refit hundreds of times per tuning run.
func DefaultParams() Params {
	return Params{
		NumTrees:     30,
		MaxDepth:     6,
		LearningRate: 0.3,
		MinSamples:   6,
		MaxData:      4096,
		Thresholds:   12,
	}
}

type node struct {
	feat        int
	thr         float64
	left, right int
	leaf        float64
	isLeaf      bool
}

type tree struct{ nodes []node }

func (t *tree) predict(x []float64) float64 {
	i := 0
	for !t.nodes[i].isLeaf {
		if x[t.nodes[i].feat] <= t.nodes[i].thr {
			i = t.nodes[i].left
		} else {
			i = t.nodes[i].right
		}
	}
	return t.nodes[i].leaf
}

// Model is an online-refit GBDT regressor with a ridge-regression base
// learner: the linear component supplies a smooth, everywhere-nonzero
// gradient (important for the ratio-form RL reward, which would be exactly
// zero whenever two neighboring schedules fall into the same tree leaves),
// and the trees capture the nonlinear residual structure.
type Model struct {
	P     Params
	trees []*tree
	base  float64
	lin   []float64 // ridge weights over features (nil until fitted)
	linMu []float64 // feature means used by the linear term

	yMin, yMax float64 // target range at last refit, bounds extrapolation

	xs [][]float64
	ys []float64

	// Histogram state rebuilt at each refit: per-feature bin edges and the
	// binned training matrix (bin index per sample per feature).
	edges [][]float64
	bins  [][]uint8
}

// New creates an empty model.
func New(p Params) *Model { return &Model{P: p} }

var (
	_ CostModel    = (*Model)(nil)
	_ Checkpointer = (*Model)(nil)
)

// Len returns the number of stored training samples.
func (m *Model) Len() int { return len(m.xs) }

// Dim returns the model's feature dimension (0 while empty). Schedule
// features are uniform within a workload but their length varies across
// workload structures (axis counts differ), so cost-model knowledge only
// transfers between workloads of equal dimension; constructor wiring
// (core.seedCostModel, Merge, pretrain.FitModel) gates on Dim.
func (m *Model) Dim() int {
	if len(m.xs) > 0 {
		return len(m.xs[0])
	}
	if m.lin != nil {
		return len(m.lin)
	}
	return 0
}

// Trained reports whether the model has a fitted ensemble.
func (m *Model) Trained() bool { return len(m.trees) > 0 || m.lin != nil }

// Add appends measured samples (feature vector, log-throughput target) to the
// training set, evicting the oldest beyond the cap. A sample whose dimension
// differs from the stored set's is dropped: the training matrix must stay
// rectangular for the fitters, and a mismatched dimension means the sample
// belongs to a structurally incompatible workload.
func (m *Model) Add(x []float64, y float64) {
	if d := m.Dim(); d > 0 && len(x) != d {
		return
	}
	m.xs = append(m.xs, append([]float64(nil), x...))
	m.ys = append(m.ys, y)
	if m.P.MaxData > 0 && len(m.xs) > m.P.MaxData {
		drop := len(m.xs) - m.P.MaxData
		m.xs = append([][]float64(nil), m.xs[drop:]...)
		m.ys = append([]float64(nil), m.ys[drop:]...)
	}
}

// Refit rebuilds the ensemble from the stored samples. With fewer samples
// than MinSamples the model stays untrained and Predict returns the base.
func (m *Model) Refit() {
	m.trees = nil
	m.lin = nil
	n := len(m.xs)
	if n == 0 {
		m.base = 0
		return
	}
	sum := 0.0
	m.yMin, m.yMax = m.ys[0], m.ys[0]
	for _, y := range m.ys {
		sum += y
		if y < m.yMin {
			m.yMin = y
		}
		if y > m.yMax {
			m.yMax = y
		}
	}
	m.base = sum / float64(n)
	if n < m.P.MinSamples {
		return
	}
	resid := make([]float64, n)
	for i, y := range m.ys {
		resid[i] = y - m.base
	}
	m.fitLinear(resid)
	for i := range resid {
		resid[i] -= m.linearTerm(m.xs[i])
	}
	m.buildBins()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < m.P.NumTrees; t++ {
		tr := m.buildTree(idx, resid, 0)
		m.trees = append(m.trees, tr)
		for i := range resid {
			resid[i] -= m.P.LearningRate * tr.predict(m.xs[i])
		}
	}
}

// numBins is the histogram resolution of the split finder.
const numBins = 32

// buildBins computes per-feature quantile bin edges over the training set and
// the binned sample matrix used by bestSplit.
func (m *Model) buildBins() {
	n := len(m.xs)
	d := len(m.xs[0])
	m.edges = make([][]float64, d)
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i, x := range m.xs {
			vals[i] = x[f]
		}
		sort.Float64s(vals)
		edges := make([]float64, 0, numBins-1)
		for b := 1; b < numBins; b++ {
			e := vals[(n-1)*b/numBins]
			if len(edges) == 0 || e > edges[len(edges)-1] {
				edges = append(edges, e)
			}
		}
		m.edges[f] = edges
	}
	m.bins = make([][]uint8, n)
	for i, x := range m.xs {
		row := make([]uint8, d)
		for f := 0; f < d; f++ {
			row[f] = uint8(sort.SearchFloat64s(m.edges[f], x[f]))
		}
		m.bins[i] = row
	}
}

func (m *Model) buildTree(idx []int, resid []float64, _ int) *tree {
	tr := &tree{}
	m.grow(tr, idx, resid, 0)
	return tr
}

// grow appends the subtree for the samples in idx and returns its root index.
func (m *Model) grow(tr *tree, idx []int, resid []float64, depth int) int {
	me := len(tr.nodes)
	tr.nodes = append(tr.nodes, node{isLeaf: true, leaf: meanAt(resid, idx)})
	if depth >= m.P.MaxDepth || len(idx) < m.P.MinSamples {
		return me
	}
	feat, thr, gain := m.bestSplit(idx, resid)
	if gain <= 1e-12 {
		return me
	}
	var li, ri []int
	for _, i := range idx {
		if m.xs[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return me
	}
	l := m.grow(tr, li, resid, depth+1)
	r := m.grow(tr, ri, resid, depth+1)
	tr.nodes[me] = node{feat: feat, thr: thr, left: l, right: r}
	return me
}

// bestSplit finds the split with the largest sum-of-squared-error reduction
// using the histogram method: accumulate per-bin (count, sum, sum²) for every
// feature in one pass over the node's samples, then scan the bin boundaries.
func (m *Model) bestSplit(idx []int, resid []float64) (feat int, thr, gain float64) {
	nFeat := len(m.edges)
	total, totalSq := 0.0, 0.0
	for _, i := range idx {
		total += resid[i]
		totalSq += resid[i] * resid[i]
	}
	n := float64(len(idx))
	baseSSE := totalSq - total*total/n

	var cnt [numBins]float64
	var sum [numBins]float64
	var sq [numBins]float64
	feat, gain = -1, 0
	for f := 0; f < nFeat; f++ {
		edges := m.edges[f]
		if len(edges) == 0 {
			continue
		}
		for b := 0; b <= len(edges); b++ {
			cnt[b], sum[b], sq[b] = 0, 0, 0
		}
		for _, i := range idx {
			b := m.bins[i][f]
			r := resid[i]
			cnt[b]++
			sum[b] += r
			sq[b] += r * r
		}
		lN, lSum, lSq := 0.0, 0.0, 0.0
		for b := 0; b < len(edges); b++ {
			lN += cnt[b]
			lSum += sum[b]
			lSq += sq[b]
			if lN == 0 || lN == n {
				continue
			}
			rSum, rSq, rN := total-lSum, totalSq-lSq, n-lN
			sse := (lSq - lSum*lSum/lN) + (rSq - rSum*rSum/rN)
			if g := baseSSE - sse; g > gain {
				feat, thr, gain = f, edges[b], g
			}
		}
	}
	if feat < 0 {
		return 0, 0, 0
	}
	return feat, thr, gain
}

func meanAt(resid []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += resid[i]
	}
	return s / float64(len(idx))
}

// fitLinear fits ridge regression of the residuals onto the features via
// Gaussian elimination on the regularized normal equations.
func (m *Model) fitLinear(resid []float64) {
	n := len(m.xs)
	d := len(m.xs[0])
	mu := make([]float64, d)
	for _, x := range m.xs {
		for j, v := range x {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	// A = XᵀX + λI, b = Xᵀr with centered features.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	const lambda = 5.0
	for i := 0; i < d; i++ {
		a[i][i] = lambda
	}
	for k := 0; k < n; k++ {
		x := m.xs[k]
		for i := 0; i < d; i++ {
			xi := x[i] - mu[i]
			for j := i; j < d; j++ {
				a[i][j] += xi * (x[j] - mu[j])
			}
			a[i][d] += xi * resid[k]
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			w[i] = a[i][d] / a[i][i]
		}
	}
	m.lin, m.linMu = w, mu
}

func (m *Model) linearTerm(x []float64) float64 {
	if m.lin == nil {
		return 0
	}
	s := 0.0
	for j, w := range m.lin {
		s += w * (x[j] - m.linMu[j])
	}
	if math.IsNaN(s) {
		return 0
	}
	// The linear component exists to provide a smooth local reward gradient;
	// cap its global influence so a hyperplane cannot out-rank the trees far
	// from the training data.
	if cap := 0.25 * (m.yMax - m.yMin + 1e-9); s > cap {
		s = cap
	} else if cap := 0.25 * (m.yMax - m.yMin + 1e-9); s < -cap {
		s = -cap
	}
	return s
}

// Predict returns the model output (log-throughput) for one feature vector.
// Predictions are clamped to slightly beyond the observed target range so the
// linear base cannot extrapolate to absurd scores far from the training data.
func (m *Model) Predict(x []float64) float64 {
	if !m.conforms(x) {
		return m.clamp(m.base)
	}
	y := m.base + m.linearTerm(x)
	for _, t := range m.trees {
		y += m.P.LearningRate * t.predict(x)
	}
	if m.Trained() {
		y = m.clamp(y)
	}
	return y
}

// conforms reports whether x matches the model's feature dimension; a
// mismatched query (a structurally incompatible workload) falls back to the
// base prediction instead of indexing out of range.
func (m *Model) conforms(x []float64) bool {
	d := m.Dim()
	return d == 0 || len(x) == d
}

func (m *Model) clamp(y float64) float64 {
	if hi := m.yMax + 0.5; y > hi {
		return hi
	}
	if lo := m.yMin - 0.5; y < lo {
		return lo
	}
	return y
}

// PredictBatch predicts a slice of feature vectors in a single pass over the
// ensemble: the base + linear term once per sample, then each tree traversed
// for the whole batch before the next (one hot tree in cache at a time,
// instead of re-walking the full ensemble per sample as a Predict loop
// would). The accumulation order per sample matches Predict exactly, so the
// results are bit-identical to element-wise Predict.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	var bad []bool
	for i, x := range xs {
		if !m.conforms(x) {
			if bad == nil {
				bad = make([]bool, len(xs))
			}
			bad[i] = true
			continue
		}
		out[i] = m.base + m.linearTerm(x)
	}
	for _, t := range m.trees {
		for i, x := range xs {
			if bad == nil || !bad[i] {
				out[i] += m.P.LearningRate * t.predict(x)
			}
		}
	}
	for i := range out {
		if bad != nil && bad[i] {
			out[i] = m.clamp(m.base)
		} else if m.Trained() {
			out[i] = m.clamp(out[i])
		}
	}
	return out
}

// Throughput converts a prediction into a strictly positive score usable as
// C(s) in the ratio-form reward.
func (m *Model) Throughput(x []float64) float64 {
	return ToThroughput(m.Predict(x))
}

// Clone returns a deep copy of the model — fitted ensemble and training set —
// so one pretrained or checkpointed model can seed many independent tasks
// (each task refits its copy as new measurements arrive).
func (m *Model) Clone() *Model {
	c := &Model{P: m.P, base: m.base, yMin: m.yMin, yMax: m.yMax}
	for _, t := range m.trees {
		c.trees = append(c.trees, &tree{nodes: append([]node(nil), t.nodes...)})
	}
	if m.lin != nil {
		c.lin = append([]float64(nil), m.lin...)
		c.linMu = append([]float64(nil), m.linMu...)
	}
	for _, x := range m.xs {
		c.xs = append(c.xs, append([]float64(nil), x...))
	}
	c.ys = append([]float64(nil), m.ys...)
	return c
}

// Merge appends the other model's training samples (in their stored order)
// to this model's training set, respecting the cap. The caller refits when
// done; network tuners use this to fold every task's samples into one
// checkpointable model.
func (m *Model) Merge(o *Model) {
	for i, x := range o.xs {
		m.Add(x, o.ys[i])
	}
}

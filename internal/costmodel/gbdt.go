// Package costmodel implements the light-weight learned cost model of the
// HARL system: gradient-boosted regression trees (the paper uses XGBoost with
// Ansor's parameters; this is a from-scratch stdlib implementation of the
// same algorithm family). The model predicts log-throughput from schedule
// features, is refit on the fly from hardware measurements after every top-K
// measurement batch, and serves as the reward function
//
//	r(s_t, s_{t-1}) = (C(s_t) - C(s_{t-1})) / C(s_{t-1})
//
// of the actor-critic search as well as the ranking oracle of the top-K
// selection phase.
//
// Because the model sits on the search hot path (every candidate the engines
// visit is scored, and the ensemble is rebuilt after every measurement
// batch), prediction runs on a flattened struct-of-arrays mirror of the
// trees (see flatForest) and Refit reuses its scan buffers and fans its
// per-feature/per-sample scans across an optional Runner. Both are exact:
// predictions and fitted ensembles are bit-identical to the straightforward
// pointer-tree implementation, which is retained as the reference kernel and
// pinned by equivalence tests.
package costmodel

import (
	"math"
	"sort"
)

// Params configures the boosted ensemble.
type Params struct {
	NumTrees     int     // boosting rounds
	MaxDepth     int     // tree depth limit
	LearningRate float64 // shrinkage
	MinSamples   int     // minimum samples to split a node
	MaxData      int     // training-set cap (most recent kept)
	Thresholds   int     // candidate split thresholds per feature
}

// DefaultParams mirrors the scale of Ansor's XGBoost configuration while
// staying fast enough to refit hundreds of times per tuning run.
func DefaultParams() Params {
	return Params{
		NumTrees:     30,
		MaxDepth:     6,
		LearningRate: 0.3,
		MinSamples:   6,
		MaxData:      4096,
		Thresholds:   12,
	}
}

type node struct {
	feat        int
	thr         float64
	left, right int
	leaf        float64
	isLeaf      bool
}

type tree struct{ nodes []node }

// predict is the reference traversal kernel: it walks the pointer-style node
// slice. The hot paths use flatForest instead; this stays as the ground
// truth the flat kernel is cross-checked against (TestFlatKernelEquivalence).
func (t *tree) predict(x []float64) float64 {
	i := 0
	for !t.nodes[i].isLeaf {
		if x[t.nodes[i].feat] <= t.nodes[i].thr {
			i = t.nodes[i].left
		} else {
			i = t.nodes[i].right
		}
	}
	return t.nodes[i].leaf
}

// flatForest is the struct-of-arrays prediction kernel: every tree's nodes
// flattened into four parallel arrays, rebuilt whenever the ensemble changes
// (Refit, checkpoint load, Clone). Traversal touches a third of the memory
// of the node-struct layout (int32 indices, no isLeaf byte: feat < 0 marks a
// leaf) and leaves are pre-scaled by the learning rate, so accumulating a
// sample is one add per tree. Both transformations are exact — lr·leaf is
// the same IEEE product whether computed at flatten or at predict time — so
// flat predictions are bit-identical to the reference kernel.
type flatForest struct {
	roots []int32 // start node of each tree
	feat  []int32 // split feature, or -1 for a leaf
	val   []float64
	left  []int32
	right []int32
}

func (f *flatForest) reset() {
	f.roots = f.roots[:0]
	f.feat = f.feat[:0]
	f.val = f.val[:0]
	f.left = f.left[:0]
	f.right = f.right[:0]
}

func (f *flatForest) numTrees() int { return len(f.roots) }

// addTree appends one built tree, pre-scaling its leaves by lr, and returns
// the tree's index.
func (f *flatForest) addTree(t *tree, lr float64) int {
	base := int32(len(f.feat))
	f.roots = append(f.roots, base)
	for _, n := range t.nodes {
		if n.isLeaf {
			f.feat = append(f.feat, -1)
			f.val = append(f.val, lr*n.leaf)
			f.left = append(f.left, 0)
			f.right = append(f.right, 0)
			continue
		}
		f.feat = append(f.feat, int32(n.feat))
		f.val = append(f.val, n.thr)
		f.left = append(f.left, base+int32(n.left))
		f.right = append(f.right, base+int32(n.right))
	}
	return len(f.roots) - 1
}

// score returns the pre-scaled leaf value (lr·leaf) of tree ti for x.
func (f *flatForest) score(ti int, x []float64) float64 {
	i := f.roots[ti]
	feat, val := f.feat, f.val
	for {
		ft := feat[i]
		if ft < 0 {
			return val[i]
		}
		if x[ft] <= val[i] {
			i = f.left[i]
		} else {
			i = f.right[i]
		}
	}
}

// maxPerfDepth bounds the perfect-tree batch kernel: a padded tree costs
// 2^(depth+1) slots, so only shallow ensembles (the default MaxDepth is 6)
// get the dense layout. Deeper trees fall back to the pointer-free walk.
const maxPerfDepth = 8

// perfForest is the batch prediction kernel: every tree padded to a perfect
// tree of uniform depth, nodes laid out breadth-first with implicit children
// (node k → 2k+1, 2k+2), leaves pre-scaled by the learning rate. A walk is
// exactly `depth` iterations with no leaf test and no child-index loads —
// descending below an original leaf crosses padding nodes whose every
// descendant holds that leaf's value, so the walk lands on the same result
// the real tree produces, bit for bit. The uniform, branch-light walk is
// what lets scoreBlock4 interleave four samples profitably.
type perfForest struct {
	ok      bool
	depth   int
	istride int // internal slots per tree: 2^depth - 1
	lstride int // leaf slots per tree: 2^depth
	feat    []int32
	thr     []float64
	leaf    []float64
}

// build lays out the ensemble as perfect trees, or marks the kernel unusable
// (ok=false) when a tree exceeds maxPerfDepth — possible only for non-default
// params or hand-crafted checkpoints; callers then use flatForest instead.
func (p *perfForest) build(trees []*tree, maxDepth int, lr float64) {
	p.ok = false
	if maxDepth > maxPerfDepth {
		return
	}
	for _, t := range trees {
		if treeDepth(t, 0, 0) > maxDepth {
			return
		}
	}
	p.depth = maxDepth
	p.istride = 1<<maxDepth - 1
	p.lstride = 1 << maxDepth
	p.feat = resizeI32(p.feat, len(trees)*p.istride)
	p.thr = resizeF(p.thr, len(trees)*p.istride)
	p.leaf = resizeF(p.leaf, len(trees)*p.lstride)
	for ti, t := range trees {
		p.fill(t, 0, ti*p.istride, ti*p.lstride, 0, 0, lr)
	}
	p.ok = true
}

func treeDepth(t *tree, ni, d int) int {
	n := t.nodes[ni]
	if n.isLeaf {
		return d
	}
	ld := treeDepth(t, n.left, d+1)
	if rd := treeDepth(t, n.right, d+1); rd > ld {
		return rd
	}
	return ld
}

// fill writes the subtree of node ni at heap slot k (depth d). An original
// leaf above the bottom becomes a padding subtree: its internal slots compare
// feature 0 against +Inf (direction irrelevant — every descendant leaf holds
// the same value) and all 2^(depth-d) bottom slots get the pre-scaled leaf.
func (p *perfForest) fill(t *tree, ni, base, lbase, k, d int, lr float64) {
	n := t.nodes[ni]
	if d == p.depth {
		p.leaf[lbase+k-p.istride] = lr * n.leaf
		return
	}
	if n.isLeaf {
		p.pad(base, lbase, k, d, lr*n.leaf)
		return
	}
	p.feat[base+k] = int32(n.feat)
	p.thr[base+k] = n.thr
	p.fill(t, n.left, base, lbase, 2*k+1, d+1, lr)
	p.fill(t, n.right, base, lbase, 2*k+2, d+1, lr)
}

// pad fills the perfect subtree under heap slot k (an original leaf at depth
// d) with that leaf's value.
func (p *perfForest) pad(base, lbase, k, d int, scaled float64) {
	if d == p.depth {
		p.leaf[lbase+k-p.istride] = scaled
		return
	}
	p.feat[base+k] = 0
	p.thr[base+k] = math.Inf(1)
	p.pad(base, lbase, 2*k+1, d+1, scaled)
	p.pad(base, lbase, 2*k+2, d+1, scaled)
}

// scoreBlock4 walks four samples through tree ti at once: `depth` uniform
// iterations, each stepping four independent walks so the node and feature
// loads of different lanes overlap (the one-at-a-time walk is bound by its
// dependent-load chain). Comparisons are identical to the real tree's, so
// each lane lands on the exact value score would return.
func (p *perfForest) scoreBlock4(ti int, x0, x1, x2, x3 []float64) (s0, s1, s2, s3 float64) {
	base, lbase := ti*p.istride, ti*p.lstride
	feat := p.feat[base : base+p.istride]
	thr := p.thr[base : base+p.istride]
	k0, k1, k2, k3 := 0, 0, 0, 0
	for d := 0; d < p.depth; d++ {
		b0, b1, b2, b3 := 0, 0, 0, 0
		if !(x0[feat[k0]] <= thr[k0]) {
			b0 = 1
		}
		if !(x1[feat[k1]] <= thr[k1]) {
			b1 = 1
		}
		if !(x2[feat[k2]] <= thr[k2]) {
			b2 = 1
		}
		if !(x3[feat[k3]] <= thr[k3]) {
			b3 = 1
		}
		k0 = 2*k0 + 1 + b0
		k1 = 2*k1 + 1 + b1
		k2 = 2*k2 + 1 + b2
		k3 = 2*k3 + 1 + b3
	}
	leaf := p.leaf[lbase : lbase+p.lstride]
	return leaf[k0-p.istride], leaf[k1-p.istride], leaf[k2-p.istride], leaf[k3-p.istride]
}

// score walks one sample — the remainder loop of a batch.
func (p *perfForest) score(ti int, x []float64) float64 {
	base := ti * p.istride
	feat := p.feat[base : base+p.istride]
	thr := p.thr[base : base+p.istride]
	k := 0
	for d := 0; d < p.depth; d++ {
		b := 0
		if !(x[feat[k]] <= thr[k]) {
			b = 1
		}
		k = 2*k + 1 + b
	}
	return p.leaf[ti*p.lstride+k-p.istride]
}

// Runner fans n index-addressed jobs across workers and returns when all have
// finished; job i must confine its writes to its own slot of the caller's
// output. search.ParallelPool.Run satisfies it. A nil Runner runs inline.
type Runner func(n int, fn func(i int))

// Model is an online-refit GBDT regressor with a ridge-regression base
// learner: the linear component supplies a smooth, everywhere-nonzero
// gradient (important for the ratio-form RL reward, which would be exactly
// zero whenever two neighboring schedules fall into the same tree leaves),
// and the trees capture the nonlinear residual structure.
type Model struct {
	P     Params
	trees []*tree
	flat  flatForest
	perf  perfForest
	base  float64
	lin   []float64 // ridge weights over features (nil until fitted)
	linMu []float64 // feature means used by the linear term

	yMin, yMax float64 // target range at last refit, bounds extrapolation

	xs [][]float64
	ys []float64

	// Histogram state rebuilt at each refit: per-feature bin edges and the
	// binned training matrix, flattened row-major (bins[i*dim+f] is sample
	// i's bin for feature f).
	edges [][]float64
	bins  []uint8

	// run, when set, parallelizes the independent scans of Refit (per-feature
	// binning and split finding, per-sample residual updates) with a fixed
	// slot-merge order, so the fitted ensemble is bit-identical for every
	// worker count. search.Task points it at the task's pool before refits.
	run Runner

	// Scratch buffers reused across refits so the steady-state refit loop
	// (~every measurement batch) stops churning the allocator.
	resid      []float64
	idx        []int
	idxScratch []int
	featVals   []float64 // per-feature sort scratch, dim×n
	gainBuf    []float64
	thrBuf     []float64

	// split carries one bestSplit call's inputs and splitScan is the
	// persistent per-feature scan closure reading them: a closure literal
	// inside bestSplit would escape (it may be handed to the runner) and so
	// allocate once per tree node — the dominant refit allocation otherwise.
	split struct {
		idx                     []int
		resid                   []float64
		n, total, totalSq, base float64
	}
	splitScan func(f int)
}

// New creates an empty model.
func New(p Params) *Model { return &Model{P: p} }

var (
	_ CostModel    = (*Model)(nil)
	_ Checkpointer = (*Model)(nil)
)

// SetRunner installs the parallel runner Refit fans its scans across. The
// fitted ensemble is bit-identical with or without a runner; only wall-clock
// time changes. Implements ParallelRefitter.
func (m *Model) SetRunner(r Runner) { m.run = r }

// Len returns the number of stored training samples.
func (m *Model) Len() int { return len(m.xs) }

// Dim returns the model's feature dimension (0 while empty). Schedule
// features are uniform within a workload but their length varies across
// workload structures (axis counts differ), so cost-model knowledge only
// transfers between workloads of equal dimension; constructor wiring
// (core.seedCostModel, Merge, pretrain.FitModel) gates on Dim.
func (m *Model) Dim() int {
	if len(m.xs) > 0 {
		return len(m.xs[0])
	}
	if m.lin != nil {
		return len(m.lin)
	}
	return 0
}

// Trained reports whether the model has a fitted ensemble.
func (m *Model) Trained() bool { return len(m.trees) > 0 || m.lin != nil }

// Add appends measured samples (feature vector, log-throughput target) to the
// training set, evicting the oldest beyond the cap. A sample whose dimension
// differs from the stored set's is dropped: the training matrix must stay
// rectangular for the fitters, and a mismatched dimension means the sample
// belongs to a structurally incompatible workload.
func (m *Model) Add(x []float64, y float64) {
	if d := m.Dim(); d > 0 && len(x) != d {
		return
	}
	m.xs = append(m.xs, append([]float64(nil), x...))
	m.ys = append(m.ys, y)
	if m.P.MaxData > 0 && len(m.xs) > m.P.MaxData {
		drop := len(m.xs) - m.P.MaxData
		m.xs = append([][]float64(nil), m.xs[drop:]...)
		m.ys = append([]float64(nil), m.ys[drop:]...)
	}
}

// parallelChunk is the sample-chunk size of the parallel per-sample scans:
// coarse enough that dispatch overhead stays negligible, fine enough that a
// full training set spreads across a pool.
const parallelChunk = 256

// forSamples runs fn(i) for i in [0, n), fanning contiguous chunks across
// the runner when one is set and the scan is large enough to amortize the
// dispatch. fn must write only to per-index state; results are identical to
// the inline loop regardless of worker count.
func (m *Model) forSamples(n int, fn func(i int)) {
	if m.run == nil || n < 2*parallelChunk {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunks := (n + parallelChunk - 1) / parallelChunk
	m.run(chunks, func(c int) {
		hi := (c + 1) * parallelChunk
		if hi > n {
			hi = n
		}
		for i := c * parallelChunk; i < hi; i++ {
			fn(i)
		}
	})
}

// forFeatures runs fn(f) for every feature, in parallel when a runner is set.
// Each feature's work is independent and lands in its own slot, so the merge
// order is fixed and the result worker-count-invariant.
func (m *Model) forFeatures(d int, fn func(f int)) {
	if m.run == nil || d < 2 {
		for f := 0; f < d; f++ {
			fn(f)
		}
		return
	}
	m.run(d, fn)
}

// Refit rebuilds the ensemble from the stored samples. With fewer samples
// than MinSamples the model stays untrained and Predict returns the base.
// Scan buffers are reused across calls and the independent scans fan across
// the runner; the fitted ensemble is bit-identical to a serial, fresh-buffer
// fit (the accumulation order of every floating-point reduction is fixed).
func (m *Model) Refit() {
	m.trees = nil
	m.flat.reset()
	m.perf.ok = false
	m.lin = nil
	n := len(m.xs)
	if n == 0 {
		m.base = 0
		return
	}
	sum := 0.0
	m.yMin, m.yMax = m.ys[0], m.ys[0]
	for _, y := range m.ys {
		sum += y
		if y < m.yMin {
			m.yMin = y
		}
		if y > m.yMax {
			m.yMax = y
		}
	}
	m.base = sum / float64(n)
	if n < m.P.MinSamples {
		return
	}
	m.resid = resizeF(m.resid, n)
	resid := m.resid
	for i, y := range m.ys {
		resid[i] = y - m.base
	}
	m.fitLinear(resid)
	m.forSamples(n, func(i int) {
		resid[i] -= m.linearTerm(m.xs[i])
	})
	m.buildBins()
	m.idx = resizeI(m.idx, n)
	for t := 0; t < m.P.NumTrees; t++ {
		// Each tree partitions m.idx in place as it grows; reset to identity
		// so every tree's root scans samples in the same (input) order.
		for i := range m.idx {
			m.idx[i] = i
		}
		tr := m.buildTree(resid)
		m.trees = append(m.trees, tr)
		ti := m.flat.addTree(tr, m.P.LearningRate)
		m.forSamples(n, func(i int) {
			resid[i] -= m.flat.score(ti, m.xs[i])
		})
	}
	m.perf.build(m.trees, m.P.MaxDepth, m.P.LearningRate)
}

// numBins is the histogram resolution of the split finder.
const numBins = 32

// buildBins computes per-feature quantile bin edges over the training set and
// the binned sample matrix used by bestSplit. Features bin independently (one
// slot each), so the per-feature scans fan across the runner.
func (m *Model) buildBins() {
	n := len(m.xs)
	d := len(m.xs[0])
	if cap(m.edges) < d {
		m.edges = make([][]float64, d)
	}
	m.edges = m.edges[:d]
	m.featVals = resizeF(m.featVals, d*n)
	m.forFeatures(d, func(f int) {
		vals := m.featVals[f*n : (f+1)*n]
		for i, x := range m.xs {
			vals[i] = x[f]
		}
		sort.Float64s(vals)
		edges := m.edges[f][:0]
		for b := 1; b < numBins; b++ {
			e := vals[(n-1)*b/numBins]
			if len(edges) == 0 || e > edges[len(edges)-1] {
				edges = append(edges, e)
			}
		}
		m.edges[f] = edges
	})
	m.bins = resizeU8(m.bins, n*d)
	m.forSamples(n, func(i int) {
		x := m.xs[i]
		row := m.bins[i*d : (i+1)*d]
		for f := 0; f < d; f++ {
			row[f] = uint8(sort.SearchFloat64s(m.edges[f], x[f]))
		}
	})
}

// buildTree grows one regression tree over m.idx (reset to identity by the
// caller). The node slice is pre-sized to the tree's bound — min(full tree of
// MaxDepth, one node per sample pair) — so growing never reallocates it.
func (m *Model) buildTree(resid []float64) *tree {
	maxNodes := 2*len(m.idx) - 1
	if m.P.MaxDepth < 20 {
		if full := 1<<(m.P.MaxDepth+1) - 1; full < maxNodes {
			maxNodes = full
		}
	}
	tr := &tree{nodes: make([]node, 0, maxNodes)}
	m.grow(tr, 0, len(m.idx), resid, 0)
	return tr
}

// grow appends the subtree for the samples in m.idx[lo:hi] and returns its
// root index. Instead of allocating left/right index slices per node, the
// range is stably partitioned in place (the scratch buffer holds the right
// side), which preserves exactly the relative sample order the slice-append
// implementation produced — every reduction scans samples in the same order,
// so the tree is bit-identical.
func (m *Model) grow(tr *tree, lo, hi int, resid []float64, depth int) int {
	idx := m.idx[lo:hi]
	me := len(tr.nodes)
	tr.nodes = append(tr.nodes, node{isLeaf: true, leaf: meanAt(resid, idx)})
	if depth >= m.P.MaxDepth || len(idx) < m.P.MinSamples {
		return me
	}
	feat, thr, gain := m.bestSplit(idx, resid)
	if gain <= 1e-12 {
		return me
	}
	mid := m.partition(lo, hi, feat, thr)
	if mid == lo || mid == hi {
		return me
	}
	l := m.grow(tr, lo, mid, resid, depth+1)
	r := m.grow(tr, mid, hi, resid, depth+1)
	tr.nodes[me] = node{feat: feat, thr: thr, left: l, right: r}
	return me
}

// partition stably reorders m.idx[lo:hi] so samples with x[feat] <= thr come
// first, returning the boundary. Relative order within each side is
// preserved (the property grow's determinism rests on).
func (m *Model) partition(lo, hi, feat int, thr float64) int {
	m.idxScratch = m.idxScratch[:0]
	w := lo
	for r := lo; r < hi; r++ {
		i := m.idx[r]
		if m.xs[i][feat] <= thr {
			m.idx[w] = i
			w++
		} else {
			m.idxScratch = append(m.idxScratch, i)
		}
	}
	copy(m.idx[w:hi], m.idxScratch)
	return w
}

// bestSplit finds the split with the largest sum-of-squared-error reduction
// using the histogram method: accumulate per-bin (count, sum, sum²) for every
// feature in one pass over the node's samples, then scan the bin boundaries.
// Features scan independently into per-feature slots, then merge serially in
// feature order with the same strict-greater comparison the one-pass scan
// used — the first (feature, bin) pair reaching the maximal gain wins either
// way, so the chosen split is identical.
func (m *Model) bestSplit(idx []int, resid []float64) (feat int, thr, gain float64) {
	d := len(m.edges)
	total, totalSq := 0.0, 0.0
	for _, i := range idx {
		total += resid[i]
		totalSq += resid[i] * resid[i]
	}
	n := float64(len(idx))
	baseSSE := totalSq - total*total/n

	m.gainBuf = resizeF(m.gainBuf, d)
	m.thrBuf = resizeF(m.thrBuf, d)
	m.split.idx, m.split.resid = idx, resid
	m.split.n, m.split.total, m.split.totalSq, m.split.base = n, total, totalSq, baseSSE
	if m.splitScan == nil {
		m.splitScan = m.scanFeature
	}
	// Only large nodes repay the dispatch; the gate depends solely on the
	// node size, so the parallel and serial paths pick identical splits.
	if m.run != nil && len(idx) >= 2*parallelChunk {
		m.run(d, m.splitScan)
	} else {
		for f := 0; f < d; f++ {
			m.splitScan(f)
		}
	}
	m.split.idx, m.split.resid = nil, nil
	feat, gain = -1, 0
	for f := 0; f < d; f++ {
		if m.gainBuf[f] > gain {
			feat, thr, gain = f, m.thrBuf[f], m.gainBuf[f]
		}
	}
	if feat < 0 {
		return 0, 0, 0
	}
	return feat, thr, gain
}

// scanFeature is the per-feature histogram scan of bestSplit (inputs in
// m.split, result in m.gainBuf[f]/m.thrBuf[f]): per-bin count/sum/sum² over
// the node's samples, then a boundary scan tracking the feature's first best
// gain under the same strict-greater comparison the one-pass serial scan
// used.
func (m *Model) scanFeature(f int) {
	m.gainBuf[f], m.thrBuf[f] = 0, 0
	edges := m.edges[f]
	if len(edges) == 0 {
		return
	}
	d := len(m.edges)
	idx, resid := m.split.idx, m.split.resid
	n, total, totalSq, baseSSE := m.split.n, m.split.total, m.split.totalSq, m.split.base
	var cnt, sum, sq [numBins]float64
	for b := 0; b <= len(edges); b++ {
		cnt[b], sum[b], sq[b] = 0, 0, 0
	}
	for _, i := range idx {
		b := m.bins[i*d+f]
		r := resid[i]
		cnt[b]++
		sum[b] += r
		sq[b] += r * r
	}
	bestG, bestT := 0.0, 0.0
	lN, lSum, lSq := 0.0, 0.0, 0.0
	for b := 0; b < len(edges); b++ {
		lN += cnt[b]
		lSum += sum[b]
		lSq += sq[b]
		if lN == 0 || lN == n {
			continue
		}
		rSum, rSq, rN := total-lSum, totalSq-lSq, n-lN
		sse := (lSq - lSum*lSum/lN) + (rSq - rSum*rSum/rN)
		if g := baseSSE - sse; g > bestG {
			bestG, bestT = g, edges[b]
		}
	}
	m.gainBuf[f], m.thrBuf[f] = bestG, bestT
}

func meanAt(resid []float64, idx []int) float64 {
	s := 0.0
	for _, i := range idx {
		s += resid[i]
	}
	return s / float64(len(idx))
}

// fitLinear fits ridge regression of the residuals onto the features via
// Gaussian elimination on the regularized normal equations.
func (m *Model) fitLinear(resid []float64) {
	n := len(m.xs)
	d := len(m.xs[0])
	mu := make([]float64, d)
	for _, x := range m.xs {
		for j, v := range x {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	// A = XᵀX + λI, b = Xᵀr with centered features.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	const lambda = 5.0
	for i := 0; i < d; i++ {
		a[i][i] = lambda
	}
	for k := 0; k < n; k++ {
		x := m.xs[k]
		for i := 0; i < d; i++ {
			xi := x[i] - mu[i]
			for j := i; j < d; j++ {
				a[i][j] += xi * (x[j] - mu[j])
			}
			a[i][d] += xi * resid[k]
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		piv := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			continue
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= d; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	w := make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			w[i] = a[i][d] / a[i][i]
		}
	}
	m.lin, m.linMu = w, mu
}

func (m *Model) linearTerm(x []float64) float64 {
	if m.lin == nil {
		return 0
	}
	s := 0.0
	for j, w := range m.lin {
		s += w * (x[j] - m.linMu[j])
	}
	if math.IsNaN(s) {
		return 0
	}
	// The linear component exists to provide a smooth local reward gradient;
	// cap its global influence so a hyperplane cannot out-rank the trees far
	// from the training data.
	if cap := 0.25 * (m.yMax - m.yMin + 1e-9); s > cap {
		s = cap
	} else if cap := 0.25 * (m.yMax - m.yMin + 1e-9); s < -cap {
		s = -cap
	}
	return s
}

// Predict returns the model output (log-throughput) for one feature vector.
// Predictions are clamped to slightly beyond the observed target range so the
// linear base cannot extrapolate to absurd scores far from the training data.
func (m *Model) Predict(x []float64) float64 {
	if !m.conforms(x) {
		return m.clamp(m.base)
	}
	y := m.base + m.linearTerm(x)
	for t := 0; t < m.flat.numTrees(); t++ {
		y += m.flat.score(t, x)
	}
	if m.Trained() {
		y = m.clamp(y)
	}
	return y
}

// conforms reports whether x matches the model's feature dimension; a
// mismatched query (a structurally incompatible workload) falls back to the
// base prediction instead of indexing out of range.
func (m *Model) conforms(x []float64) bool {
	d := m.Dim()
	return d == 0 || len(x) == d
}

func (m *Model) clamp(y float64) float64 {
	if hi := m.yMax + 0.5; y > hi {
		return hi
	}
	if lo := m.yMin - 0.5; y < lo {
		return lo
	}
	return y
}

// PredictBatch predicts a slice of feature vectors in a single pass over the
// ensemble; see PredictBatchInto for the kernel. The accumulation order per
// sample matches Predict exactly, so the results are bit-identical to
// element-wise Predict.
func (m *Model) PredictBatch(xs [][]float64) []float64 {
	out := make([]float64, len(xs))
	m.PredictBatchInto(xs, out)
	return out
}

// PredictBatchInto is PredictBatch writing into a caller-owned slice (len(xs)
// long), so steady-state batch scorers allocate nothing per call. It iterates
// trees-outer/samples-inner over the flat arrays — one hot tree in cache at a
// time, instead of re-walking the full ensemble per sample as a Predict loop
// would — with the exact accumulation order of Predict, so results are
// bit-identical to the element-wise path. Implements BatchInto.
func (m *Model) PredictBatchInto(xs [][]float64, out []float64) {
	var bad []bool
	for i, x := range xs {
		if !m.conforms(x) {
			if bad == nil {
				bad = make([]bool, len(xs))
			}
			bad[i] = true
			out[i] = 0
			continue
		}
		out[i] = m.base + m.linearTerm(x)
	}
	for t := 0; t < m.flat.numTrees(); t++ {
		if bad == nil && m.perf.ok {
			i := 0
			for ; i+4 <= len(xs); i += 4 {
				s0, s1, s2, s3 := m.perf.scoreBlock4(t, xs[i], xs[i+1], xs[i+2], xs[i+3])
				out[i] += s0
				out[i+1] += s1
				out[i+2] += s2
				out[i+3] += s3
			}
			for ; i < len(xs); i++ {
				out[i] += m.perf.score(t, xs[i])
			}
			continue
		}
		if bad == nil {
			for i, x := range xs {
				out[i] += m.flat.score(t, x)
			}
			continue
		}
		for i, x := range xs {
			if !bad[i] {
				out[i] += m.flat.score(t, x)
			}
		}
	}
	for i := range out[:len(xs)] {
		if bad != nil && bad[i] {
			out[i] = m.clamp(m.base)
		} else if m.Trained() {
			out[i] = m.clamp(out[i])
		}
	}
}

// Throughput converts a prediction into a strictly positive score usable as
// C(s) in the ratio-form reward.
func (m *Model) Throughput(x []float64) float64 {
	return ToThroughput(m.Predict(x))
}

// reflatten rebuilds the flat prediction kernels from the pointer trees —
// the checkpoint-load and Clone paths, where trees appear without going
// through Refit.
func (m *Model) reflatten() {
	m.flat.reset()
	for _, t := range m.trees {
		m.flat.addTree(t, m.P.LearningRate)
	}
	m.perf.build(m.trees, m.P.MaxDepth, m.P.LearningRate)
}

// Clone returns a deep copy of the model — fitted ensemble and training set —
// so one pretrained or checkpointed model can seed many independent tasks
// (each task refits its copy as new measurements arrive). Scratch buffers and
// the runner are not carried over: the clone belongs to a different task,
// which installs its own pool before the first refit.
func (m *Model) Clone() *Model {
	c := &Model{P: m.P, base: m.base, yMin: m.yMin, yMax: m.yMax}
	for _, t := range m.trees {
		c.trees = append(c.trees, &tree{nodes: append([]node(nil), t.nodes...)})
	}
	c.reflatten()
	if m.lin != nil {
		c.lin = append([]float64(nil), m.lin...)
		c.linMu = append([]float64(nil), m.linMu...)
	}
	for _, x := range m.xs {
		c.xs = append(c.xs, append([]float64(nil), x...))
	}
	c.ys = append([]float64(nil), m.ys...)
	return c
}

// Merge appends the other model's training samples (in their stored order)
// to this model's training set, respecting the cap. The caller refits when
// done; network tuners use this to fold every task's samples into one
// checkpointable model.
func (m *Model) Merge(o *Model) {
	for i, x := range o.xs {
		m.Add(x, o.ys[i])
	}
}

// resizeF returns buf with length n, reusing its capacity when possible.
func resizeF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func resizeI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func resizeI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func resizeU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

package costmodel

import "math"

// TransferModel fits a fresh model over donor samples — feature vectors and
// their recorded execution times, typically reconstructed from registry
// records of other (workload, target) keys — for seeding a cold search.
// Labels use the same log-throughput convention as online training, so the
// returned model drops into Task.SetCostModel (callers Clone it per task).
// Samples with non-positive execution times are skipped. Returns nil if
// nothing usable was provided.
func TransferModel(feats [][]float64, execSecs []float64) *Model {
	m := New(DefaultParams())
	for i, f := range feats {
		if i >= len(execSecs) || execSecs[i] <= 0 || len(f) == 0 {
			continue
		}
		m.Add(f, math.Log(1/execSecs[i]))
	}
	if m.Len() == 0 {
		return nil
	}
	m.Refit()
	return m
}

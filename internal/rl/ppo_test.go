package rl

import (
	"math"
	"testing"

	"harl/internal/xrand"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	// Table 5 of the paper.
	if c.LrActor != 3e-4 || c.LrCritic != 1e-3 || c.Gamma != 0.9 ||
		c.WMSE != 0.5 || c.WEntropy != 0.01 || c.TrainInterval != 2 {
		t.Fatalf("config deviates from Table 5: %+v", c)
	}
}

func TestActShapes(t *testing.T) {
	rng := xrand.New(1)
	a := NewAgent(6, []int{10, 3, 3, 3}, DefaultConfig(), rng)
	d := a.Act([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6})
	if len(d.Acts) != 4 {
		t.Fatalf("acts %v", d.Acts)
	}
	if d.Acts[0] < 0 || d.Acts[0] >= 10 {
		t.Fatalf("head0 action %d", d.Acts[0])
	}
	for k := 1; k < 4; k++ {
		if d.Acts[k] < 0 || d.Acts[k] >= 3 {
			t.Fatalf("head%d action %d", k, d.Acts[k])
		}
	}
	if d.LogProb > 0 || math.IsInf(d.LogProb, 0) {
		t.Fatalf("logprob %f", d.LogProb)
	}
}

func TestAdvantageFormula(t *testing.T) {
	tr := Transition{Reward: 1, Value: 2, NextValue: 3}
	// Eq. 6: A = r + γ·V(s') − V(s).
	if got := tr.Advantage(0.9); math.Abs(got-(1+0.9*3-2)) > 1e-12 {
		t.Fatalf("advantage %f", got)
	}
}

func TestBufferRing(t *testing.T) {
	rng := xrand.New(2)
	cfg := DefaultConfig()
	cfg.BufferCap = 8
	a := NewAgent(2, []int{3}, cfg, rng)
	for i := 0; i < 20; i++ {
		a.Observe(Transition{State: []float64{0, 0}, Acts: []int{0}})
	}
	if a.BufferLen() != 8 {
		t.Fatalf("buffer len %d want cap 8", a.BufferLen())
	}
}

func TestTickTrainsAtInterval(t *testing.T) {
	rng := xrand.New(3)
	cfg := DefaultConfig()
	cfg.TrainInterval = 2
	a := NewAgent(2, []int{3}, cfg, rng)
	for i := 0; i < 16; i++ {
		d := a.Act([]float64{0.5, 0.5})
		a.Observe(Transition{State: []float64{0.5, 0.5}, Acts: d.Acts, OldLogP: d.LogProb, Value: d.Value})
	}
	trained := 0
	for i := 0; i < 10; i++ {
		if a.Tick() {
			trained++
		}
	}
	if trained != 5 {
		t.Fatalf("trained %d of 10 ticks at interval 2", trained)
	}
	if a.Updates() != 5 {
		t.Fatalf("updates %d", a.Updates())
	}
}

// A two-armed bandit dressed as a one-step environment: action 1 of head 0
// always yields reward 1, action 0 yields 0. The policy must learn to prefer
// action 1.
func TestPolicyLearnsBandit(t *testing.T) {
	rng := xrand.New(4)
	cfg := DefaultConfig()
	cfg.LrActor = 3e-3 // speed up the toy problem
	cfg.MiniBatch = 32
	a := NewAgent(2, []int{2}, cfg, rng)
	state := []float64{1, 0}
	for step := 0; step < 1500; step++ {
		d := a.Act(state)
		r := 0.0
		if d.Acts[0] == 1 {
			r = 1
		}
		a.Observe(Transition{
			State: state, Acts: d.Acts, OldLogP: d.LogProb,
			Reward: r, Value: d.Value, NextValue: 0,
		})
		a.Tick()
	}
	// Evaluate the learned preference.
	good := 0
	const evals = 200
	for i := 0; i < evals; i++ {
		if a.Act(state).Acts[0] == 1 {
			good++
		}
	}
	if good < evals*3/4 {
		t.Fatalf("policy chose the rewarding arm only %d/%d times", good, evals)
	}
}

// A state-conditional bandit: the rewarding arm depends on the state, so the
// policy must actually condition on its input.
func TestPolicyLearnsStateConditionalBandit(t *testing.T) {
	rng := xrand.New(5)
	cfg := DefaultConfig()
	cfg.LrActor = 3e-3
	cfg.MiniBatch = 32
	a := NewAgent(2, []int{2}, cfg, rng)
	states := [][]float64{{1, 0}, {0, 1}}
	for step := 0; step < 3000; step++ {
		s := states[step%2]
		d := a.Act(s)
		r := 0.0
		if (s[0] == 1 && d.Acts[0] == 0) || (s[1] == 1 && d.Acts[0] == 1) {
			r = 1
		}
		a.Observe(Transition{State: s, Acts: d.Acts, OldLogP: d.LogProb, Reward: r, Value: d.Value})
		a.Tick()
	}
	for si, s := range states {
		good := 0
		for i := 0; i < 200; i++ {
			act := a.Act(s).Acts[0]
			if (si == 0 && act == 0) || (si == 1 && act == 1) {
				good++
			}
		}
		if good < 140 {
			t.Fatalf("state %d: correct arm only %d/200", si, good)
		}
	}
}

func TestCriticLearnsValue(t *testing.T) {
	rng := xrand.New(6)
	cfg := DefaultConfig()
	a := NewAgent(2, []int{2}, cfg, rng)
	// Constant reward 1 with NextValue 0: target value = 1 everywhere.
	state := []float64{0.5, 0.5}
	for step := 0; step < 2000; step++ {
		d := a.Act(state)
		a.Observe(Transition{State: state, Acts: d.Acts, OldLogP: d.LogProb, Reward: 1, Value: d.Value, NextValue: 0})
		a.Tick()
	}
	if v := a.Value(state); math.Abs(v-1) > 0.3 {
		t.Fatalf("critic value %f want ≈1", v)
	}
}

func TestGreedyActDeterministic(t *testing.T) {
	rng := xrand.New(7)
	a := NewAgent(3, []int{5, 3}, DefaultConfig(), rng)
	s := []float64{0.1, 0.2, 0.3}
	first := a.GreedyAct(s)
	for i := 0; i < 10; i++ {
		got := a.GreedyAct(s)
		for k := range got {
			if got[k] != first[k] {
				t.Fatal("greedy action not deterministic")
			}
		}
	}
}

// TestTrainAllocsNearZero pins the Train hot path to agent-owned scratch:
// after one warm-up update, further updates must not allocate. PPO training
// is ~80% of BenchmarkTuneParallel's CPU, so allocation churn here is tuner
// wall-clock (and GC) time.
func TestTrainAllocsNearZero(t *testing.T) {
	rng := xrand.New(11)
	a := NewAgent(6, []int{10, 3, 3, 3}, DefaultConfig(), rng)
	state := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	for i := 0; i < 100; i++ {
		d := a.Act(state)
		a.Observe(Transition{State: state, Acts: d.Acts, OldLogP: d.LogProb,
			Reward: float64(i % 3), Value: d.Value, NextValue: d.Value})
	}
	a.Train() // warm the scratch buffers
	if got := testing.AllocsPerRun(10, a.Train); got > 0 {
		t.Fatalf("warm Train allocates %v times per run, want 0", got)
	}
}

func TestTrainOnEmptyBufferIsSafe(t *testing.T) {
	a := NewAgent(2, []int{2}, DefaultConfig(), xrand.New(8))
	a.Train() // must not panic
	if a.Updates() != 0 {
		t.Fatal("empty train counted as update")
	}
}

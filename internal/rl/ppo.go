// Package rl implements the proximal-policy-optimization actor-critic used by
// HARL's parameter-modification level (paper Section 4.3 and Appendix A.1).
//
// The actor is a shared MLP trunk with one categorical head per modification
// subspace of Table 3 — tiling (num_iters² + 1 actions including the dummy),
// compute-at, parallel-loops and auto-unroll (3 actions each) — so one joint
// step selects a sub-action for every modification type, the dummy actions
// making modification-type selection implicit. The critic is a separate value
// MLP; its one-step temporal-difference error is the advantage function
// (Eq. 6) that both drives the policy gradient (Eq. 5) and feeds the
// adaptive-stopping module's track ranking.
package rl

import (
	"math"

	"harl/internal/nn"
	"harl/internal/xrand"
)

// Config holds the PPO hyper-parameters; defaults are the paper's Table 5.
type Config struct {
	Hidden        int     // trunk / critic width
	LrActor       float64 // 3e-4
	LrCritic      float64 // 1e-3
	Gamma         float64 // discount factor, 0.9
	ClipEps       float64 // PPO clip range
	WMSE          float64 // critic MSE loss weight, 0.5
	WEntropy      float64 // entropy bonus weight, 0.01
	TrainInterval int     // T_rl: train every this many environment steps, 2
	MiniBatch     int     // samples per update
	Epochs        int     // passes per update
	BufferCap     int     // replay-buffer capacity
}

// DefaultConfig returns the paper's published parameters.
func DefaultConfig() Config {
	return Config{
		Hidden:        64,
		LrActor:       3e-4,
		LrCritic:      1e-3,
		Gamma:         0.9,
		ClipEps:       0.2,
		WMSE:          0.5,
		WEntropy:      0.01,
		TrainInterval: 2,
		MiniBatch:     64,
		Epochs:        2,
		BufferCap:     4096,
	}
}

// Decision is the outcome of one policy query.
type Decision struct {
	Acts    []int   // one sub-action index per head
	LogProb float64 // joint log-probability of the sampled sub-actions
	Value   float64 // critic value of the state
}

// Transition is one recorded environment step (S, M, S', R, Y of Algorithm 1).
type Transition struct {
	State     []float64
	Acts      []int
	OldLogP   float64
	Reward    float64
	Value     float64 // V(s) at collection time
	NextValue float64 // V(s') at collection time
}

// Advantage returns the one-step TD advantage (Eq. 6) of the transition.
func (t Transition) Advantage(gamma float64) float64 {
	return t.Reward + gamma*t.NextValue - t.Value
}

// Agent is a PPO actor-critic over a multi-head categorical action space.
type Agent struct {
	Cfg Config

	trunk  *nn.MLP
	heads  []*nn.Linear
	critic *nn.MLP

	buf    []Transition
	bufPos int
	full   bool

	steps   int
	adamT   int
	updates int
	rng     *xrand.RNG

	// Scratch reused across forwardActor/accumulate calls. Train runs
	// Epochs×MiniBatch per-sample passes, so fresh slices here dominated the
	// tuner's allocation profile; reuse is bit-identical (same arithmetic in
	// the same order) and safe because an Agent is driven by one goroutine
	// and every caller consumes the returned slices before the next call.
	hBuf     []float64   // trunk-output tanh activation
	probsBuf [][]float64 // per-head probability vectors
	logitBuf [][]float64 // per-head logits
	dhBuf    []float64   // gradient w.r.t. the trunk-output activation
	dlogBuf  []float64   // per-head d log p / d logits
	entBuf   []float64   // per-head d H / d logits
	headDx   []float64   // per-head input gradient (heads share In=Hidden)
	dvBuf    [1]float64  // critic output gradient
	picks    []int       // minibatch sample indices
	advs     []float64   // minibatch advantages
}

// NewAgent builds an agent for the given state dimensionality and per-head
// action counts.
func NewAgent(stateDim int, headSizes []int, cfg Config, rng *xrand.RNG) *Agent {
	a := &Agent{
		Cfg:    cfg,
		trunk:  nn.NewMLP(rng, stateDim, cfg.Hidden, cfg.Hidden),
		critic: nn.NewMLP(rng, stateDim, cfg.Hidden, cfg.Hidden, 1),
		rng:    rng,
		buf:    make([]Transition, 0, cfg.BufferCap),
	}
	for _, hs := range headSizes {
		a.heads = append(a.heads, nn.NewLinear(cfg.Hidden, hs, rng))
	}
	return a
}

// Updates returns the number of PPO updates performed so far.
func (a *Agent) Updates() int { return a.updates }

// forwardActor runs the trunk and heads, returning the hidden activation,
// the trunk cache and per-head probability vectors. Everything returned
// lives in agent-owned scratch, valid until the next forwardActor call.
func (a *Agent) forwardActor(state []float64) ([]float64, *nn.Cache, [][]float64) {
	z, cache := a.trunk.ForwardReuse(state)
	if cap(a.hBuf) < len(z) {
		a.hBuf = make([]float64, len(z))
	}
	h := a.hBuf[:len(z)]
	for i, v := range z {
		h[i] = math.Tanh(v)
	}
	if a.probsBuf == nil {
		a.probsBuf = make([][]float64, len(a.heads))
		a.logitBuf = make([][]float64, len(a.heads))
	}
	probs := a.probsBuf
	for k, head := range a.heads {
		a.logitBuf[k] = head.ForwardInto(a.logitBuf[k], h)
		probs[k] = nn.SoftmaxInto(probs[k], a.logitBuf[k])
	}
	return h, cache, probs
}

// Act samples one joint action from the current policy.
func (a *Agent) Act(state []float64) Decision {
	_, _, probs := a.forwardActor(state)
	d := Decision{Acts: make([]int, len(probs))}
	for k, p := range probs {
		d.Acts[k] = nn.SampleCategorical(p, a.rng)
		d.LogProb += nn.LogProb(p, d.Acts[k])
	}
	d.Value = a.Value(state)
	return d
}

// GreedyAct returns the per-head argmax action (used for deterministic
// evaluation, not during search).
func (a *Agent) GreedyAct(state []float64) []int {
	_, _, probs := a.forwardActor(state)
	acts := make([]int, len(probs))
	for k, p := range probs {
		acts[k] = nn.ArgMax(p)
	}
	return acts
}

// Value returns the critic's estimate V(s).
func (a *Agent) Value(state []float64) float64 {
	v, _ := a.critic.ForwardReuse(state)
	return v[0]
}

// Observe records a transition into the replay buffer.
func (a *Agent) Observe(t Transition) {
	if len(a.buf) < a.Cfg.BufferCap {
		a.buf = append(a.buf, t)
		return
	}
	a.buf[a.bufPos] = t
	a.bufPos = (a.bufPos + 1) % a.Cfg.BufferCap
	a.full = true
}

// BufferLen returns the number of stored transitions.
func (a *Agent) BufferLen() int { return len(a.buf) }

// Tick advances the environment-step counter and trains when the paper's
// training interval T_rl elapses. It reports whether an update happened.
func (a *Agent) Tick() bool {
	a.steps++
	if a.steps%a.Cfg.TrainInterval != 0 || len(a.buf) < 8 {
		return false
	}
	a.Train()
	return true
}

// Train performs one PPO update: Cfg.Epochs passes over minibatches sampled
// from the replay buffer, with the clipped surrogate objective for the actor
// (Eq. 5), MSE-to-TD-target for the critic and an entropy bonus.
func (a *Agent) Train() {
	n := len(a.buf)
	if n == 0 {
		return
	}
	batch := a.Cfg.MiniBatch
	if batch > n {
		batch = n
	}
	if cap(a.picks) < batch {
		a.picks = make([]int, batch)
		a.advs = make([]float64, batch)
	}
	picks, advs := a.picks[:batch], a.advs[:batch]
	for ep := 0; ep < a.Cfg.Epochs; ep++ {
		a.trunk.ZeroGrad()
		a.critic.ZeroGrad()
		for _, h := range a.heads {
			h.ZeroGrad()
		}
		// Sample the minibatch and normalize its advantages (zero mean, unit
		// std) — the standard PPO variance-reduction step.
		mean, sq := 0.0, 0.0
		for b := range picks {
			picks[b] = a.rng.Intn(n)
			advs[b] = a.buf[picks[b]].Advantage(a.Cfg.Gamma)
			mean += advs[b]
			sq += advs[b] * advs[b]
		}
		mean /= float64(batch)
		std := math.Sqrt(math.Max(sq/float64(batch)-mean*mean, 1e-12))
		for b, i := range picks {
			a.accumulate(a.buf[i], (advs[b]-mean)/std)
		}
		a.adamT++
		a.trunk.Step(a.Cfg.LrActor, batch, a.adamT)
		for _, h := range a.heads {
			h.Step(a.Cfg.LrActor, batch, a.adamT)
		}
		a.critic.Step(a.Cfg.LrCritic, batch, a.adamT)
	}
	a.updates++
}

// accumulate adds the gradient contribution of one transition using the
// batch-normalized advantage adv for the policy term.
func (a *Agent) accumulate(t Transition, adv float64) {
	// ----- critic: w_mse * (V(s) - (r + γ·V_old(s')))² ------------------------
	target := t.Reward + a.Cfg.Gamma*t.NextValue
	v, vc := a.critic.ForwardReuse(t.State)
	a.dvBuf[0] = 2 * a.Cfg.WMSE * (v[0] - target)
	a.critic.BackwardReuse(vc, a.dvBuf[:])

	// ----- actor: clipped surrogate + entropy bonus --------------------------
	h, cache, probs := a.forwardActor(t.State)
	newLogP := 0.0
	for k, p := range probs {
		newLogP += nn.LogProb(p, t.Acts[k])
	}
	ratio := math.Exp(clampF(newLogP-t.OldLogP, -20, 20))

	// d(-min(r·A, clip(r)·A))/dlogπ = -A·r when the unclipped branch is
	// active, 0 when the clip saturates against improvement.
	gradScale := 0.0
	if adv >= 0 && ratio < 1+a.Cfg.ClipEps {
		gradScale = -adv * ratio
	} else if adv < 0 && ratio > 1-a.Cfg.ClipEps {
		gradScale = -adv * ratio
	}
	if cap(a.dhBuf) < len(h) {
		a.dhBuf = make([]float64, len(h))
	}
	dh := a.dhBuf[:len(h)]
	for i := range dh {
		dh[i] = 0
	}
	for k, head := range a.heads {
		// The per-head scratch is shared across heads: heads are processed
		// strictly sequentially and each iteration fully overwrites it.
		a.dlogBuf = nn.LogProbGradInto(a.dlogBuf, probs[k], t.Acts[k])
		a.entBuf = nn.EntropyGradInto(a.entBuf, probs[k])
		dlogits, ent := a.dlogBuf, a.entBuf
		for i := range dlogits {
			dlogits[i] = gradScale*dlogits[i] - a.Cfg.WEntropy*ent[i]
		}
		a.headDx = head.BackwardInto(a.headDx, h, dlogits)
		for i := range dh {
			dh[i] += a.headDx[i]
		}
	}
	for i := range dh {
		dh[i] *= 1 - h[i]*h[i] // through the trunk-output tanh
	}
	a.trunk.BackwardReuse(cache, dh)
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

package sketch

import (
	"testing"

	"harl/internal/workload"
)

// The paper states a matrix-multiplication subgraph has 3 sketches:
// plain tiling, tiling + cache write, tiling + rfactor.
func TestGEMMSketchCount(t *testing.T) {
	g := workload.GEMM("g", 1, 512, 512, 512)
	sks := Generate(g)
	if len(sks) != 3 {
		t.Fatalf("GEMM sketches = %d, paper says 3", len(sks))
	}
	var plain, cacheWrite, rfactor int
	for _, sk := range sks {
		switch {
		case sk.CacheWrite:
			cacheWrite++
		case sk.RFactor:
			rfactor++
		default:
			plain++
		}
	}
	if plain != 1 || cacheWrite != 1 || rfactor != 1 {
		t.Fatalf("variants plain=%d cw=%d rf=%d", plain, cacheWrite, rfactor)
	}
}

func TestConvReLUSketchesIncludeFusion(t *testing.T) {
	g := workload.Conv2DReLU("c", 1, 1, 56, 56, 64, 64, 3, 1, 1)
	sks := Generate(g)
	if len(sks) < 2 {
		t.Fatalf("conv+relu sketches = %d", len(sks))
	}
	fused, unfused := false, false
	for _, sk := range sks {
		if sk.Decisions[sk.Main] == TiledFused {
			fused = true
		} else {
			unfused = true
		}
		// Cache write requires no consumers; the conv has one.
		if sk.CacheWrite {
			t.Fatal("cache write generated for a stage with consumers")
		}
	}
	if !fused || !unfused {
		t.Fatalf("need both fused and unfused variants (fused=%v unfused=%v)", fused, unfused)
	}
}

func TestSoftmaxSketches(t *testing.T) {
	g := workload.Softmax("s", 1536, 128)
	sks := Generate(g)
	if len(sks) < 2 {
		t.Fatalf("softmax sketches = %d", len(sks))
	}
	hasRFactor := false
	for _, sk := range sks {
		if sk.RFactor {
			hasRFactor = true
		}
	}
	if !hasRFactor {
		t.Fatal("softmax reduce stage should offer an rfactor sketch")
	}
}

func TestElementwiseSingleSketch(t *testing.T) {
	g := workload.Elementwise("e", 4096, 2, 1)
	sks := Generate(g)
	if len(sks) != 1 {
		t.Fatalf("standalone elementwise sketches = %d want 1", len(sks))
	}
	if sks[0].CacheWrite || sks[0].RFactor {
		t.Fatal("elementwise must not get cache-write/rfactor")
	}
}

func TestSketchIDsSequential(t *testing.T) {
	g := workload.Conv2DReLU("c", 1, 1, 14, 14, 256, 256, 3, 1, 1)
	for i, sk := range Generate(g) {
		if sk.ID != i {
			t.Fatalf("sketch %d has ID %d", i, sk.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := workload.GEMMEpilogue("ge", 1, 128, 128, 128, 4)
	a, b := Generate(g), Generate(g)
	if len(a) != len(b) {
		t.Fatal("non-deterministic sketch count")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("sketch %d differs across runs", i)
		}
	}
}

func TestNumTileLoops(t *testing.T) {
	g := workload.GEMM("g", 1, 256, 256, 256)
	sk := Generate(g)[0]
	// 2 spatial axes × 4 levels + 1 reduction axis × 2 levels = 10.
	if got := sk.NumTileLoops(); got != 10 {
		t.Fatalf("tile loops %d want 10", got)
	}
	c3d := workload.Conv3D("c", 1, 16, 14, 14, 256, 256, 3, 1, 1)
	sk3 := Generate(c3d)[0]
	// 5 spatial × 4 + 4 reduce × 2 = 28.
	if got := sk3.NumTileLoops(); got != 28 {
		t.Fatalf("c3d tile loops %d want 28", got)
	}
}

func TestComputeAtCandidates(t *testing.T) {
	gemm := Generate(workload.GEMM("g", 1, 128, 128, 128))
	for _, sk := range gemm {
		want := 1
		if sk.CacheWrite {
			want = SpatialLevels + 1
		}
		if sk.RFactor && !sk.CacheWrite {
			want = 1
		}
		if got := sk.ComputeAtCandidates(); got != want {
			t.Fatalf("sketch %q compute-at candidates %d want %d", sk, got, want)
		}
	}
	fused := Generate(workload.Conv2DReLU("c", 1, 1, 28, 28, 128, 128, 3, 1, 1))
	foundFused := false
	for _, sk := range fused {
		if sk.Decisions[sk.Main] == TiledFused {
			foundFused = true
			if sk.ComputeAtCandidates() != SpatialLevels+1 {
				t.Fatal("fused sketch must expose compute-at positions")
			}
		}
	}
	if !foundFused {
		t.Fatal("no fused sketch found")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Default: "default", Inlined: "inline", Tiled: "tile", TiledFused: "tile+fuse",
	} {
		if d.String() != want {
			t.Fatalf("%v string %q", int(d), d.String())
		}
	}
}

// Package sketch implements Ansor-style sketch generation (paper Table 2) over
// texpr subgraphs. A sketch is the high-level structure of a tensor program —
// which stage is multi-level tiled, which elementwise stages are fused
// (inlined) into it, whether a cache-write stage is added, and whether the
// reduction is factorized (rfactor) — leaving all low-level parameters (tile
// sizes, compute-at position, parallel fusing, unrolling) open for the
// parameter-search level of the hierarchy.
//
// The generation rules are the ones HARL adopts unchanged from Ansor:
//
//	Skip                skip any modification if not able to inline
//	Inline              inline the function if it's possible
//	Tiling              tile the loops if the function has data reuse
//	Tiling with Fusion  tile the loops and fuse with the consumer if has data reuse
//	Cache Write         cache the output if has data reuse but without any consumers
//	rfactor             perform reduction factorization if has reduction parallelism
//
// Applying the rules differently yields the small discrete sketch set per
// subgraph that the paper's sketch-selection MAB operates over (e.g. three
// sketches for a matrix-multiplication subgraph).
package sketch

import (
	"fmt"
	"strings"

	"harl/internal/texpr"
)

// Decision records which Table-2 rule was applied to a stage in a sketch.
type Decision int

const (
	// Default leaves the stage as a plain loop nest (annotation-only tuning).
	Default Decision = iota
	// Inlined fuses the stage's computation into its consumer.
	Inlined
	// Tiled applies multi-level tiling to the stage (the main compute stage).
	Tiled
	// TiledFused applies multi-level tiling and fuses the elementwise
	// consumer(s) into the tile ("Tiling with Fusion").
	TiledFused
)

func (d Decision) String() string {
	switch d {
	case Default:
		return "default"
	case Inlined:
		return "inline"
	case Tiled:
		return "tile"
	case TiledFused:
		return "tile+fuse"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// SpatialLevels is the number of tiling levels applied to each spatial axis of
// the tiled stage (the paper's GEMM search-space analysis uses 4 levels).
const SpatialLevels = 4

// ReduceLevels is the number of tiling levels applied to each reduction axis
// (Ansor's SSRSRS structure splits reductions in two).
const ReduceLevels = 2

// Sketch is one structural variant of a subgraph's tensor program.
type Sketch struct {
	Graph     *texpr.Subgraph
	ID        int        // index within the subgraph's generated sketch list
	Decisions []Decision // one per stage
	Main      int        // index of the multi-level-tiled stage
	// CacheWrite adds a cache-write block for the main stage's output
	// (Table 2: only when the stage has data reuse and no in-graph consumers).
	CacheWrite bool
	// RFactor factorizes the main stage's first reduction axis so its outer
	// split can be parallelized.
	RFactor bool
}

// NumSpatialAxes returns the spatial rank of the tiled stage.
func (s *Sketch) NumSpatialAxes() int { return len(s.Graph.Stages[s.Main].Spatial) }

// NumReduceAxes returns the reduction rank of the tiled stage.
func (s *Sketch) NumReduceAxes() int { return len(s.Graph.Stages[s.Main].Reduce) }

// NumTileLoops returns the total number of tiling loops — the size of the
// paper's tile-modification index set (num_iters).
func (s *Sketch) NumTileLoops() int {
	return s.NumSpatialAxes()*SpatialLevels + s.NumReduceAxes()*ReduceLevels
}

// ComputeAtCandidates returns the number of legal compute-at positions for
// the auxiliary block (cache-write buffer or fused consumer): the root plus
// each spatial tiling level of the main loop nest. The compute-at modification
// of Table 3 walks this candidate list with ±1 steps.
func (s *Sketch) ComputeAtCandidates() int {
	if !s.CacheWrite && !s.hasFusedConsumer() {
		return 1
	}
	return SpatialLevels + 1
}

func (s *Sketch) hasFusedConsumer() bool {
	for _, d := range s.Decisions {
		if d == Inlined {
			return true
		}
	}
	return s.Decisions[s.Main] == TiledFused
}

// MainStage returns the tiled stage.
func (s *Sketch) MainStage() *texpr.Stage { return s.Graph.Stages[s.Main] }

// String renders a compact description, e.g. "tile+fuse[conv2d] inline[bias_relu] rfactor".
func (s *Sketch) String() string {
	var parts []string
	for i, d := range s.Decisions {
		if d == Default {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s[%s]", d, s.Graph.Stages[i].Name))
	}
	if s.CacheWrite {
		parts = append(parts, "cache-write")
	}
	if s.RFactor {
		parts = append(parts, "rfactor")
	}
	if len(parts) == 0 {
		parts = []string{"default"}
	}
	return strings.Join(parts, " ")
}

// Generate enumerates all sketches of a subgraph by rule application. The
// result is deterministic and non-empty; sketch 0 is always the plain
// structure (tiling without cache-write/rfactor where applicable).
func Generate(g *texpr.Subgraph) []*Sketch {
	main := g.MainStage()
	mainStage := g.Stages[main]

	// Decide the fate of every non-main stage first. Elementwise stages that
	// (transitively) consume the main stage can either be inlined into the
	// tile (Tiling with Fusion) or left as standalone passes; per the Inline
	// rule, stages that can inline always offer the inline option.
	type stageChoice struct {
		idx     int
		options []Decision
	}
	var choices []stageChoice
	for i, st := range g.Stages {
		if i == main {
			continue
		}
		var opts []Decision
		if st.CanInline && st.Kind == texpr.Elementwise && len(g.Producers(i)) > 0 {
			opts = []Decision{Inlined, Default}
		} else {
			// Skip rule: not able to inline — no structural modification.
			opts = []Decision{Default}
		}
		choices = append(choices, stageChoice{i, opts})
	}

	// Main-stage structural variants.
	type mainVariant struct {
		cacheWrite, rfactor bool
	}
	variants := []mainVariant{{false, false}}
	if mainStage.HasDataReuse && len(g.Consumers(main)) == 0 {
		variants = append(variants, mainVariant{cacheWrite: true})
	}
	if mainStage.HasReductionParallel && len(mainStage.Reduce) > 0 {
		variants = append(variants, mainVariant{rfactor: true})
	}

	var sketches []*Sketch
	var rec func(ci int, decs []Decision)
	rec = func(ci int, decs []Decision) {
		if ci == len(choices) {
			for _, v := range variants {
				sk := &Sketch{
					Graph:      g,
					Decisions:  append([]Decision(nil), decs...),
					Main:       main,
					CacheWrite: v.cacheWrite,
					RFactor:    v.rfactor,
				}
				if anyInlined(sk.Decisions) && mainStage.HasDataReuse {
					sk.Decisions[main] = TiledFused
				} else {
					sk.Decisions[main] = Tiled
				}
				sketches = append(sketches, sk)
			}
			return
		}
		for _, opt := range choices[ci].options {
			decs[choices[ci].idx] = opt
			rec(ci+1, decs)
		}
	}
	rec(0, make([]Decision, len(g.Stages)))

	// Deduplicate (different inline combinations can collapse to the same
	// structure when a stage has no inline option) and assign IDs.
	seen := map[string]bool{}
	out := sketches[:0]
	for _, sk := range sketches {
		key := sk.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		sk.ID = len(out)
		out = append(out, sk)
	}
	return out
}

func anyInlined(decs []Decision) bool {
	for _, d := range decs {
		if d == Inlined {
			return true
		}
	}
	return false
}

package search

import (
	"context"
	"math"

	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/texpr"
	"harl/internal/xrand"
)

// AllocPolicy selects how MultiTuner spreads the trial budget across tasks.
type AllocPolicy int

const (
	// AllocGradient picks each wave's tasks by the Eq. 3 gradient estimate
	// (Ansor's task-scheduler benefit score), so subgraphs that still
	// promise end-to-end gains receive more rounds.
	AllocGradient AllocPolicy = iota
	// AllocRoundRobin cycles through tasks in index order.
	AllocRoundRobin
)

// MultiTunerConfig parameterizes the concurrent multi-task scheduler.
type MultiTunerConfig struct {
	// RoundTrials is the number of measured candidates per engine round.
	RoundTrials int
	// Workers is the worker-pool width for concurrent task rounds; <= 0
	// selects runtime.NumCPU(). Worker count never changes results, only
	// wall-clock time (see the determinism note on MultiTuner).
	Workers int
	// WaveWidth is how many tasks advance concurrently per wave; 0 means
	// every task. It is part of the schedule (unlike Workers): changing it
	// changes which task states feed the next allocation decision.
	WaveWidth int
	// Policy selects the budget allocator.
	Policy AllocPolicy
	// GradAlpha and GradBeta are the Eq. 3 constants (Table 5); zero
	// selects the corresponding default.
	GradAlpha float64
	GradBeta  float64
}

// DefaultMultiTunerConfig mirrors the paper's allocator constants.
func DefaultMultiTunerConfig() MultiTunerConfig {
	return MultiTunerConfig{
		RoundTrials: 16,
		Policy:      AllocGradient,
		GradAlpha:   0.2,
		GradBeta:    2.0,
	}
}

// WaveSnapshot records one completed wave for allocation diagnostics.
type WaveSnapshot struct {
	Wave    int
	Tasks   []int // task indices advanced this wave
	Trials  int   // cumulative trials after the wave
	CostSec float64
}

// MultiTuner tunes many tasks (the subgraphs of a network) concurrently: each
// wave it selects a set of tasks with the allocation policy and runs one
// engine round on every selected task in parallel across a worker pool.
//
// Determinism contract: tasks are fully independent — each owns its engine
// instance, RNG stream, cost model and measurer — and allocation decisions
// happen at wave barriers from committed state only. The outcome therefore
// depends on the seed and the configuration but NOT on the worker count or
// on goroutine scheduling: workers=1 and workers=N produce byte-identical
// best schedules, logs and search-time accounting.
type MultiTuner struct {
	Tasks   []*Task
	Engines []Engine
	Cfg     MultiTunerConfig

	pool        *ParallelPool
	allocations []int
	gHist       [][]float64 // per task: weighted best exec after each round
	rrNext      int
	History     []WaveSnapshot

	record  func(TrialRecord)
	pending [][]TrialRecord // per task: records buffered until the wave barrier

	// OnProgress, when set, receives one Progress event per task advanced in
	// each wave, emitted at the wave barrier in wave-selection order from
	// committed state only — the same deterministic fan-in point the recorder
	// uses, so the event sequence is byte-identical for every worker count.
	// Set it before Run.
	OnProgress func(Progress)
}

// TrialRecord is one committed measurement of a multi-task run, tagged with
// the index of the task that measured it.
type TrialRecord struct {
	Task  int
	Sched *schedule.Schedule
	Exec  float64
	// Trial is the task-local 1-based trial index.
	Trial int
}

// NewTaskSet builds one task per subgraph on the platform, each with its own
// measurer and RNG stream (derived from seed in index order) so concurrent
// rounds never contend. The simulator is shared — it is stateless.
func NewTaskSet(graphs []*texpr.Subgraph, plat *hardware.Platform, seed uint64) []*Task {
	rng := xrand.New(seed)
	sim := hardware.NewSimulator(plat)
	tasks := make([]*Task, len(graphs))
	for i, g := range graphs {
		meas := hardware.NewMeasurer(sim, rng.Split())
		tasks[i] = NewTask(g, plat, meas, rng.Split())
	}
	return tasks
}

// NewMultiTuner builds the scheduler; mkEngine constructs a fresh engine per
// task (engine state is per-task and must not be shared across goroutines).
func NewMultiTuner(tasks []*Task, mkEngine func() Engine, cfg MultiTunerConfig) *MultiTuner {
	def := DefaultMultiTunerConfig()
	if cfg.RoundTrials <= 0 {
		cfg.RoundTrials = def.RoundTrials
	}
	if cfg.GradAlpha == 0 {
		cfg.GradAlpha = def.GradAlpha
	}
	if cfg.GradBeta == 0 {
		cfg.GradBeta = def.GradBeta
	}
	mt := &MultiTuner{
		Tasks:       tasks,
		Cfg:         cfg,
		pool:        NewParallelPool(cfg.Workers),
		allocations: make([]int, len(tasks)),
		gHist:       make([][]float64, len(tasks)),
	}
	for range tasks {
		mt.Engines = append(mt.Engines, mkEngine())
	}
	return mt
}

// SetRecorder installs fn to receive every committed measurement of every
// task. Within a task, records arrive in commit order (MeasureBatch commits
// serially); across tasks they are fanned in at wave barriers in wave
// selection order, so the full record sequence is deterministic — journals
// written through fn are byte-identical for every worker count. It replaces
// each task's OnMeasure callback and must be called before Run.
func (mt *MultiTuner) SetRecorder(fn func(TrialRecord)) {
	mt.record = fn
	mt.pending = make([][]TrialRecord, len(mt.Tasks))
	for i, t := range mt.Tasks {
		i, t := i, t
		t.OnMeasure = func(s *schedule.Schedule, exec float64, trial int) {
			mt.pending[i] = append(mt.pending[i], TrialRecord{Task: i, Sched: s, Exec: exec, Trial: trial})
		}
	}
}

// drainRecords flushes the buffered records of the selected tasks to the
// recorder, in selection order (the deterministic fan-in point).
func (mt *MultiTuner) drainRecords(sel []int) {
	if mt.record == nil {
		return
	}
	for _, a := range sel {
		for _, r := range mt.pending[a] {
			mt.record(r)
		}
		mt.pending[a] = mt.pending[a][:0]
	}
}

// Trials returns the cumulative charged-trial count across all tasks — the
// budget spent. With adaptive sampling this includes backfilled candidates;
// Measured counts what actually reached the measurer.
func (mt *MultiTuner) Trials() int {
	total := 0
	for _, t := range mt.Tasks {
		total += t.Trials
	}
	return total
}

// Measured returns the cumulative count of schedules actually measured.
func (mt *MultiTuner) Measured() int {
	total := 0
	for _, t := range mt.Tasks {
		total += t.Measured
	}
	return total
}

// MeasureSaved returns the cumulative count of charged trials whose
// measurement the adaptive sampler skipped.
func (mt *MultiTuner) MeasureSaved() int {
	total := 0
	for _, t := range mt.Tasks {
		total += t.MeasureSaved
	}
	return total
}

// CostSec returns the total simulated search time, summing each distinct
// measurer once in task order (tasks may share a measurer).
func (mt *MultiTuner) CostSec() float64 {
	total := 0.0
	seen := make(map[*hardware.Measurer]bool)
	for _, t := range mt.Tasks {
		if seen[t.Meas] {
			continue
		}
		seen[t.Meas] = true
		total += t.Meas.CostSec()
	}
	return total
}

// TaskTrials returns a copy of the per-task trial counts.
func (mt *MultiTuner) TaskTrials() []int {
	out := make([]int, len(mt.Tasks))
	for i, t := range mt.Tasks {
		out[i] = t.Trials
	}
	return out
}

// EstimatedExec returns Σ w_n·g_n over the tasks (+Inf until every task has
// a measured schedule).
func (mt *MultiTuner) EstimatedExec() float64 {
	total := 0.0
	for _, t := range mt.Tasks {
		g := t.WeightedBestExec()
		if math.IsInf(g, 1) {
			return math.Inf(1)
		}
		total += g
	}
	return total
}

// GradientEstimate computes the Eq. 3 benefit score of giving task a the
// next round (larger = more expected end-to-end gain). The first term is the
// recent measured improvement slope of the task's weighted execution time
// (hist holds that value after each of the task's rounds counted by rounds);
// the second is Ansor's optimistic potential: the task can either keep its
// historical halving pace (g/t) or approach β× the best throughput achieved
// by similar subgraphs (same main-stage kind). It reads committed task state
// only and is shared by the serial NetworkTuner and the concurrent
// MultiTuner.
func GradientEstimate(tasks []*Task, a int, hist []float64, rounds int, alpha, beta float64) float64 {
	t := tasks[a]
	g := t.WeightedBestExec()
	if math.IsInf(g, 1) {
		return math.Inf(1) // unmeasured task: always worth one round
	}
	slope := 0.0
	if n := len(hist); n >= 2 {
		slope = hist[n-2] - hist[n-1] // positive when improving
	}
	ta := float64(rounds)
	if ta < 1 {
		ta = 1
	}
	maxP := 0.0
	mainKind := t.Graph.Stages[t.Graph.MainStage()].Kind
	for b, o := range tasks {
		if b == a || o.Best == nil {
			continue
		}
		if o.Graph.Stages[o.Graph.MainStage()].Kind != mainKind {
			continue
		}
		if p := o.Graph.FLOPs() / o.Meas.Sim.Exec(o.Best); p > maxP {
			maxP = p
		}
	}
	potential := g / ta
	if maxP > 0 {
		// min(-g/t, β·B/maxP - g) in the paper's negative orientation is
		// max(g/t, g - β·B/maxP) as a positive benefit.
		if bound := g - beta*float64(t.Graph.Weight)*t.Graph.FLOPs()/maxP; bound > potential {
			potential = bound
		}
	}
	return alpha*slope + (1-alpha)*potential
}

func (mt *MultiTuner) gradientEstimate(a int) float64 {
	return GradientEstimate(mt.Tasks, a, mt.gHist[a], mt.allocations[a], mt.Cfg.GradAlpha, mt.Cfg.GradBeta)
}

// selectWave picks the tasks to advance this wave: at most width tasks, by
// round-robin order or by descending gradient estimate with index
// tie-breaking (both fully deterministic).
func (mt *MultiTuner) selectWave(width int) []int {
	n := len(mt.Tasks)
	if width <= 0 || width > n {
		width = n
	}
	if mt.Cfg.Policy == AllocRoundRobin {
		sel := make([]int, 0, width)
		for i := 0; i < width; i++ {
			sel = append(sel, (mt.rrNext+i)%n)
		}
		mt.rrNext = (mt.rrNext + width) % n
		return sel
	}
	type scored struct {
		idx int
		v   float64
	}
	est := make([]scored, n)
	for a := range mt.Tasks {
		est[a] = scored{a, mt.gradientEstimate(a)}
	}
	// Insertion-sort by (value desc, index asc): n is the subgraph count of
	// one network, i.e. small.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && (est[j].v > est[j-1].v || (est[j].v == est[j-1].v && est[j].idx < est[j-1].idx)); j-- {
			est[j], est[j-1] = est[j-1], est[j]
		}
	}
	sel := make([]int, 0, width)
	for i := 0; i < width; i++ {
		sel = append(sel, est[i].idx)
	}
	return sel
}

// Wave runs one scheduling wave — an engine round on every selected task,
// concurrently — and returns the selected task indices.
func (mt *MultiTuner) Wave(width int) []int {
	return mt.wave(width, 0)
}

// wave is Wave with an optional trial budget: with remaining > 0 the
// per-task round sizes are clamped (serially, at the barrier, in selection
// order) so the wave as a whole measures at most remaining candidates —
// matching the exact-budget clamp of the serial Tune loop.
func (mt *MultiTuner) wave(width, remaining int) []int {
	sel := mt.selectWave(width)
	caps := make([]int, len(sel))
	for i := range sel {
		k := mt.Cfg.RoundTrials
		if remaining > 0 {
			if k > remaining {
				k = remaining
			}
			remaining -= k
		}
		caps[i] = k
	}
	mt.pool.Run(len(sel), func(j int) {
		a := sel[j]
		t := mt.Tasks[a]
		// Transfer warm-start candidates are measured ahead of the task's
		// first engine round; a no-op on every later wave. The flush happens
		// inside the task's own pool slot, so it stays serial per task and
		// worker-invariant like the round itself.
		t.FlushSeedCandidates()
		if mt.Engines[a].RunRound(t, caps[j]) == 0 {
			// The round produced nothing new (space exhausted or all
			// duplicates); inject random exploration so waves make progress.
			t.ExploreRandom(caps[j])
		}
	})
	mt.drainRecords(sel)
	for _, a := range sel {
		mt.allocations[a]++
		mt.gHist[a] = append(mt.gHist[a], mt.Tasks[a].WeightedBestExec())
	}
	mt.History = append(mt.History, WaveSnapshot{
		Wave:    len(mt.History),
		Tasks:   sel,
		Trials:  mt.Trials(),
		CostSec: mt.CostSec(),
	})
	if mt.OnProgress != nil {
		snap := mt.History[len(mt.History)-1]
		est := mt.EstimatedExec()
		measured := mt.Measured()
		for _, a := range sel {
			t := mt.Tasks[a]
			mt.OnProgress(Progress{
				Task:          a,
				Wave:          snap.Wave,
				Allocation:    mt.allocations[a],
				TaskTrials:    t.Trials,
				TotalTrials:   snap.Trials,
				TaskMeasured:  t.Measured,
				TotalMeasured: measured,
				BestExec:      t.BestExec,
				RunBest:       est,
				CostSec:       snap.CostSec,
			})
		}
	}
	return sel
}

// Run tunes until the measurement budget is exhausted. The final wave is
// narrowed and its per-task rounds clamped so the budget lands exactly
// (engines that measure in indivisible chunks may still overshoot by at
// most their chunk, as in the serial Tune loop). If several consecutive
// waves measure nothing new — the schedule spaces are exhausted — Run
// returns rather than spinning on an unreachable budget.
func (mt *MultiTuner) Run(budgetTrials int) {
	mt.RunCtx(context.Background(), budgetTrials)
}

// RunCtx is Run with cooperative cancellation, checked at wave barriers: a
// cancelled session finishes its in-flight wave — so every measurement is
// committed, its record drained to the recorder in the deterministic fan-in
// order, and the allocation history stays consistent — then stops instead of
// selecting another wave. It returns true if the context cut the run short.
// An uncancelled run takes exactly the same path as Run, preserving the
// workers=1 ≡ workers=N byte-identical-journal contract.
func (mt *MultiTuner) RunCtx(ctx context.Context, budgetTrials int) bool {
	stalled := 0
	for {
		// Budget first, then cancellation — a run whose final wave spent the
		// budget completed, even if the context fired during that wave (the
		// serial loops order their checks the same way).
		remaining := budgetTrials - mt.Trials()
		if remaining <= 0 {
			return false
		}
		if ctx.Err() != nil {
			return true
		}
		width := mt.Cfg.WaveWidth
		if width <= 0 || width > len(mt.Tasks) {
			width = len(mt.Tasks)
		}
		if need := (remaining + mt.Cfg.RoundTrials - 1) / mt.Cfg.RoundTrials; width > need {
			width = need
		}
		before := mt.Trials()
		mt.wave(width, remaining)
		if mt.Trials() == before {
			if stalled++; stalled >= 3 {
				return false
			}
		} else {
			stalled = 0
		}
	}
}

package search

import (
	"math"
	"sort"

	"harl/internal/bandit"
	"harl/internal/hardware"
	"harl/internal/rl"
	"harl/internal/schedule"
)

// HARLConfig parameterizes the hierarchical adaptive RL engine. Defaults
// follow the paper's Table 5, scaled where the paper's value is tied to its
// much larger per-round track count.
type HARLConfig struct {
	// Tracks is I, the number of initial schedule tracks per episode.
	Tracks int
	// Lambda is the adaptive-stopping window size λ (steps between
	// elimination rounds). Paper default: 20.
	Lambda int
	// Rho is the elimination ratio ρ (fraction of live tracks dropped after
	// each window). Paper default: 0.5.
	Rho float64
	// MinTracks is p̂, the minimal number of surviving tracks; the episode
	// ends after the window in which the count reaches it.
	MinTracks int
	// AdaptiveStopping toggles the adaptive-stopping module; disabled it
	// becomes the paper's "Hierarchical-RL" fixed-length ablation.
	AdaptiveStopping bool
	// FixedLength is the per-track episode length used when adaptive
	// stopping is off, sized so both modes visit a similar number of
	// candidates (the paper's Figure 4 equivalence).
	FixedLength int
	// UniformSketch disables the sketch-level SW-UCB (ablation), falling
	// back to Ansor's uniform sketch selection.
	UniformSketch bool
	// SketchC and SketchWindow are the SW-UCB constants (c=0.25, τ=256).
	SketchC      float64
	SketchWindow int
	// RL holds the PPO hyper-parameters (paper Table 5).
	RL rl.Config
}

// DefaultHARLConfig returns the paper's published parameters at the
// reproduction's per-round scale.
func DefaultHARLConfig() HARLConfig {
	return HARLConfig{
		Tracks:           32,
		Lambda:           20,
		Rho:              0.5,
		MinTracks:        8,
		AdaptiveStopping: true,
		FixedLength:      35, // 32·35 ≈ 32·20+16·20+8·20 candidates
		SketchC:          0.25,
		SketchWindow:     256,
		RL:               rl.DefaultConfig(),
	}
}

// HARL is the paper's search engine: SW-UCB sketch selection, PPO-driven
// parameter modification over the Table-3 action space, adaptive-stopping
// track control and cost-model top-K measurement (Algorithm 1).
type HARL struct {
	Cfg    HARLConfig
	states map[*Task]*harlState
}

type harlState struct {
	agent        *rl.Agent
	mab          *bandit.SWUCB
	bestPerfEver float64
}

// NewHARL builds the engine.
func NewHARL(cfg HARLConfig) *HARL {
	return &HARL{Cfg: cfg, states: make(map[*Task]*harlState)}
}

// Name implements Engine.
func (h *HARL) Name() string {
	if !h.Cfg.AdaptiveStopping {
		return "hierarchical-rl"
	}
	return "harl"
}

func (h *HARL) state(t *Task) *harlState {
	st := h.states[t]
	if st != nil {
		return st
	}
	stateDim := len(t.RandomSchedule(t.Sketches[0]).Features())
	probe := t.RandomSchedule(t.Sketches[0])
	heads := []int{
		probe.NumTilingActions(),
		schedule.DeltaActions, // compute-at
		schedule.DeltaActions, // parallel-loops
		schedule.DeltaActions, // auto-unroll
	}
	st = &harlState{
		agent: rl.NewAgent(stateDim, heads, h.Cfg.RL, t.RNG.Split()),
		mab:   bandit.NewSWUCB(len(t.Sketches), h.Cfg.SketchC, h.Cfg.SketchWindow, t.RNG.Split()),
	}
	h.states[t] = st
	return st
}

// track is one schedule track of an episode (a search path from one initial
// schedule, Section 2.2).
type track struct {
	sched     *schedule.Schedule
	feats     []float64 // cached Features() of sched
	score     float64   // cost-model score of the current schedule
	bestScore float64
	bestStep  int
	steps     int
	advSum    float64 // advantage accumulated in the current window
	advN      int
	alive     bool
}

// RunRound implements Engine: one episode of Algorithm 1 — parameter
// modification phase with adaptive stopping, then the top-K selection phase.
func (h *HARL) RunRound(t *Task, measureK int) int {
	st := h.state(t)

	// --- sketch selection (SW-UCB over the task's sketches) ------------------
	var skIdx int
	if h.Cfg.UniformSketch || len(t.Sketches) == 1 {
		skIdx = t.RNG.Intn(len(t.Sketches))
	} else {
		skIdx = st.mab.Select()
	}
	sk := t.Sketches[skIdx]

	// --- Phase 1: parameter modification --------------------------------------
	type cand struct {
		sched *schedule.Schedule
		score float64
	}
	pool := make(map[uint64]cand)
	record := func(s *schedule.Schedule, score float64) {
		k := s.Key()
		if _, ok := pool[k]; !ok {
			pool[k] = cand{s, score}
		}
	}

	inits := make([]*schedule.Schedule, h.Cfg.Tracks)
	for i := range inits {
		inits[i] = t.RandomSchedule(sk)
	}
	initScores := t.ScoreBatch(inits)
	tracks := make([]*track, h.Cfg.Tracks)
	for i, s := range inits {
		sc := initScores[i]
		tracks[i] = &track{sched: s, feats: s.Features(), score: sc, bestScore: sc, alive: true}
		record(s, sc)
	}

	alive := len(tracks)
	step := 0
	maxSteps := h.Cfg.Lambda * 8 // hard cap against degenerate configurations
	for {
		windowSteps := h.Cfg.Lambda
		if !h.Cfg.AdaptiveStopping {
			windowSteps = h.Cfg.FixedLength
		}
		for w := 0; w < windowSteps; w++ {
			for _, tr := range tracks {
				if !tr.alive {
					continue
				}
				h.stepTrack(t, st, tr, record)
			}
			step++
			if st.agent.Tick() {
				t.Meas.AddSearchCost(hardware.RLTrainSec)
			}
		}
		if !h.Cfg.AdaptiveStopping || alive <= h.Cfg.MinTracks || step >= maxSteps {
			break
		}
		// Sort live tracks by windowed advantage (Eq. 6) and eliminate the
		// lowest ρ fraction, clamped so at least MinTracks survive. The
		// survivors get at least one more window before the episode ends.
		live := tracks[:0:0]
		for _, tr := range tracks {
			if tr.alive {
				live = append(live, tr)
			}
		}
		sort.Slice(live, func(i, j int) bool { return live[i].meanAdv() > live[j].meanAdv() })
		drop := int(float64(alive) * h.Cfg.Rho)
		if alive-drop < h.Cfg.MinTracks {
			drop = alive - h.Cfg.MinTracks
		}
		for i := alive - drop; i < alive; i++ {
			live[i].alive = false
			t.recordTrackPosition(live[i])
		}
		alive -= drop
		for _, tr := range live {
			tr.advSum, tr.advN = 0, 0
		}
	}
	for _, tr := range tracks {
		if tr.alive {
			t.recordTrackPosition(tr)
		}
	}

	// --- Phase 2: top-K selection and measurement -----------------------------
	var cands []cand
	for _, c := range pool {
		if !t.Seen(c.sched) {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].sched.Key() < cands[j].sched.Key()
	})
	// Measure mostly the top-scored candidates, keeping a small diverse
	// fraction so the cost model keeps seeing off-policy programs (the
	// entropy-style exploration of the measurement phase).
	nDiverse := measureK / 8
	var batch []*schedule.Schedule
	for i := 0; i < len(cands) && len(batch) < measureK-nDiverse; i++ {
		batch = append(batch, cands[i].sched)
	}
	for len(batch) < measureK && len(cands) > 0 {
		batch = append(batch, cands[t.RNG.Intn(len(cands))].sched)
	}
	execs := t.MeasureBatch(batch)

	// --- MAB update with the normalized maximal performance X_t (Eq. 2) -------
	roundBest := 0.0
	n := 0
	for _, e := range execs {
		if math.IsNaN(e) {
			continue
		}
		n++
		if p := 1 / e; p > roundBest {
			roundBest = p
		}
	}
	if roundBest > st.bestPerfEver {
		st.bestPerfEver = roundBest
	}
	if st.bestPerfEver > 0 && !h.Cfg.UniformSketch && len(t.Sketches) > 1 {
		st.mab.Update(skIdx, roundBest/st.bestPerfEver)
	}
	return n
}

// stepTrack advances one track by one joint action: actor selects the
// modification set M, the environment applies it, the cost model provides the
// ratio reward, the critic's TD error becomes the advantage recorded for both
// PPO training and adaptive stopping (Algorithm 1, lines 7-13).
func (h *HARL) stepTrack(t *Task, st *harlState, tr *track, record func(*schedule.Schedule, float64)) {
	stateVec := tr.feats
	dec := st.agent.Act(stateVec)
	next := tr.sched.Apply(schedule.Action{
		Tiling:    dec.Acts[0],
		ComputeAt: dec.Acts[1],
		Parallel:  dec.Acts[2],
		Unroll:    dec.Acts[3],
	})
	nextFeats := next.Features()
	nextScore := t.Score(next)
	reward := 0.0
	if tr.score > 0 {
		reward = (nextScore - tr.score) / tr.score
	}
	nextVal := st.agent.Value(nextFeats)
	st.agent.Observe(rl.Transition{
		State:     stateVec,
		Acts:      dec.Acts,
		OldLogP:   dec.LogProb,
		Reward:    reward,
		Value:     dec.Value,
		NextValue: nextVal,
	})
	adv := reward + h.Cfg.RL.Gamma*nextVal - dec.Value
	tr.advSum += adv
	tr.advN++
	tr.sched = next
	tr.feats = nextFeats
	tr.score = nextScore
	tr.steps++
	if nextScore > tr.bestScore {
		tr.bestScore = nextScore
		tr.bestStep = tr.steps
	}
	record(next, nextScore)
	t.Meas.AddSearchCost(hardware.RLStepSec)
}

func (tr *track) meanAdv() float64 {
	if tr.advN == 0 {
		return math.Inf(-1)
	}
	return tr.advSum / float64(tr.advN)
}

// recordTrackPosition stores the relative position of the track's critical
// step (best cost-model score along the path) for Fig. 1(c)/7(b) histograms.
func (t *Task) recordTrackPosition(tr *track) {
	if tr.steps == 0 {
		return
	}
	t.TrackPositions = append(t.TrackPositions, float64(tr.bestStep)/float64(tr.steps))
}

// Agent exposes the per-task PPO agent (tests and diagnostics).
func (h *HARL) Agent(t *Task) *rl.Agent {
	if st := h.states[t]; st != nil {
		return st.agent
	}
	return nil
}

// SketchCounts returns the sketch-selection counts of the task's MAB window.
func (h *HARL) SketchCounts(t *Task) []int {
	if st := h.states[t]; st != nil {
		return st.mab.Counts()
	}
	return nil
}

package search

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"harl/internal/schedule"
	"harl/internal/workload"
)

func TestParallelPoolRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		n := 257
		counts := make([]int64, n)
		NewParallelPool(workers).Run(n, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelPoolNilAndEdgeCases(t *testing.T) {
	var p *ParallelPool
	if p.Workers() != 1 {
		t.Fatalf("nil pool workers %d", p.Workers())
	}
	ran := 0
	p.Run(3, func(i int) { ran++ }) // inline: ordered, same goroutine
	if ran != 3 {
		t.Fatalf("nil pool ran %d jobs", ran)
	}
	p.Run(0, func(i int) { t.Fatal("n=0 must not run jobs") })
	NewParallelPool(4).Run(-1, func(i int) { t.Fatal("n<0 must not run jobs") })
	if NewParallelPool(0).Workers() != runtime.NumCPU() {
		t.Fatal("workers<=0 must select NumCPU")
	}
}

// The pool's contract: per-index outputs are byte-identical for every worker
// count, because each job writes only its own slot.
func TestParallelPoolDeterministicOutputs(t *testing.T) {
	n := 500
	f := func(i int) float64 { return math.Sqrt(float64(i)) * math.Log(float64(i)+2) }
	ref := make([]float64, n)
	NewParallelPool(1).Run(n, func(i int) { ref[i] = f(i) })
	for _, workers := range []int{2, 4, 16} {
		got := make([]float64, n)
		NewParallelPool(workers).Run(n, func(i int) { got[i] = f(i) })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d diverged", workers, i)
			}
		}
	}
}

// MeasureBatch with a many-worker pool must reproduce the serial path bit for
// bit: execution times, logs, cost accounting and the chosen best.
func TestMeasureBatchParallelMatchesSerial(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	mk := func(workers int) (*Task, []float64) {
		task, _ := newTestTask(t, sg, 11)
		if workers != 1 {
			task.Pool = NewParallelPool(workers)
		}
		var batch []*schedule.Schedule
		for i := 0; i < 40; i++ {
			batch = append(batch, task.RandomSchedule(task.Sketches[i%len(task.Sketches)]))
		}
		return task, task.MeasureBatch(batch)
	}
	serialTask, serialOut := mk(1)
	parTask, parOut := mk(8)
	for i := range serialOut {
		sv, pv := serialOut[i], parOut[i]
		if sv != pv && !(math.IsNaN(sv) && math.IsNaN(pv)) {
			t.Fatalf("exec %d: serial %v parallel %v", i, sv, pv)
		}
	}
	if serialTask.BestExec != parTask.BestExec || serialTask.Best.Key() != parTask.Best.Key() {
		t.Fatal("best schedule diverged across worker counts")
	}
	if serialTask.Meas.CostSec() != parTask.Meas.CostSec() {
		t.Fatal("cost accounting diverged across worker counts")
	}
	for i, v := range serialTask.BestLog {
		if parTask.BestLog[i] != v {
			t.Fatalf("best log %d diverged", i)
		}
	}
}

// ScoreBatch must match element-wise Score (and charge the same query cost).
func TestScoreBatchMatchesScore(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 5)
	var batch []*schedule.Schedule
	for i := 0; i < 24; i++ {
		batch = append(batch, task.RandomSchedule(task.Sketches[0]))
	}
	// Untrained model: all ones, no cost charged.
	before := task.Meas.CostSec()
	for _, s := range task.ScoreBatch(batch) {
		if s != 1 {
			t.Fatal("untrained ScoreBatch must return 1s")
		}
	}
	if task.Meas.CostSec() != before {
		t.Fatal("untrained ScoreBatch must not charge queries")
	}
	task.MeasureBatch(batch)
	task.Pool = NewParallelPool(8)
	var probes []*schedule.Schedule
	for i := 0; i < 32; i++ {
		probes = append(probes, task.RandomSchedule(task.Sketches[0]))
	}
	got := task.ScoreBatch(probes)
	for i, s := range probes {
		if want := task.Cost.Throughput(s.Features()); got[i] != want {
			t.Fatalf("score %d: got %v want %v", i, got[i], want)
		}
	}
}

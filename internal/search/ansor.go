package search

import (
	"math"
	"sort"

	"harl/internal/hardware"
	"harl/internal/schedule"
)

// AnsorConfig parameterizes the evolutionary baseline.
type AnsorConfig struct {
	// Population is the evolutionary population size per generation.
	Population int
	// Generations is the number of evolution generations per round.
	Generations int
	// EliteKeep is how many best measured schedules seed the next round.
	EliteKeep int
	// EpsGreedy is the fraction of the measured batch picked at random from
	// the candidate pool instead of by predicted score.
	EpsGreedy float64
}

// DefaultAnsorConfig matches the scale of Ansor's published defaults, with
// the population×generations product sized to visit about as many candidates
// per round as HARL's episode (for the paper's "same number of measurement
// candidates in each round" fairness setup).
func DefaultAnsorConfig() AnsorConfig {
	return AnsorConfig{
		Population:  128,
		Generations: 8,
		EliteKeep:   24,
		EpsGreedy:   0.05,
	}
}

// Ansor is the evolutionary-search baseline: uniform sketch selection,
// uniform (undirected) mutation, cost-model-ranked top-K measurement. The
// subgraph-level greedy gradient allocation lives in internal/core.
type Ansor struct {
	Cfg    AnsorConfig
	states map[*Task]*ansorState
}

type ansorState struct {
	elites []eliteEntry
}

type eliteEntry struct {
	sched *schedule.Schedule
	exec  float64
}

// NewAnsor builds the baseline engine.
func NewAnsor(cfg AnsorConfig) *Ansor {
	return &Ansor{Cfg: cfg, states: make(map[*Task]*ansorState)}
}

// Name implements Engine.
func (a *Ansor) Name() string { return "ansor" }

// RunRound implements Engine: one evolutionary round followed by top-K
// measurement and a cost-model refit.
func (a *Ansor) RunRound(t *Task, measureK int) int {
	st := a.states[t]
	if st == nil {
		st = &ansorState{}
		a.states[t] = st
	}

	// --- initial population: measured elites + random sketch fills ----------
	pop := make([]*schedule.Schedule, 0, a.Cfg.Population)
	for _, e := range st.elites {
		if len(pop) >= a.Cfg.Population/2 {
			break
		}
		pop = append(pop, e.sched.Clone())
	}
	for len(pop) < a.Cfg.Population {
		sk := t.Sketches[t.RNG.Intn(len(t.Sketches))] // uniform sketch selection
		pop = append(pop, t.RandomSchedule(sk))
	}

	// --- evolution: score, select ∝ score, mutate uniformly ------------------
	type cand struct {
		sched *schedule.Schedule
		score float64
	}
	pool := make(map[uint64]cand)
	// scorePool batch-scores the configurations of pop not yet in the pool,
	// fanning model queries across the task's worker pool (duplicates within
	// a generation are scored once, as the old per-schedule memoization did).
	scorePool := func(pop []*schedule.Schedule) {
		var fresh []*schedule.Schedule
		seen := make(map[uint64]bool)
		for _, s := range pop {
			k := s.Key()
			if _, ok := pool[k]; ok || seen[k] {
				continue
			}
			seen[k] = true
			fresh = append(fresh, s)
		}
		for i, sc := range t.ScoreBatch(fresh) {
			pool[fresh[i].Key()] = cand{fresh[i], sc}
		}
	}

	scores := make([]float64, len(pop))
	for g := 0; g <= a.Cfg.Generations; g++ {
		scorePool(pop)
		maxS := 0.0
		for i, s := range pop {
			scores[i] = pool[s.Key()].score
			if scores[i] > maxS {
				maxS = scores[i]
			}
		}
		if g == a.Cfg.Generations {
			break
		}
		weights := make([]float64, len(pop))
		for i, sc := range scores {
			if maxS > 0 {
				weights[i] = math.Exp(3 * (sc/maxS - 1)) // soft fitness-proportional
			} else {
				weights[i] = 1
			}
		}
		next := make([]*schedule.Schedule, len(pop))
		for i := range next {
			parent := pop[t.RNG.Choice(weights)]
			next[i] = parent.Mutate(t.RNG) // uniform schedule selection π(s_t|s_{t-1})
			t.Meas.AddSearchCost(hardware.EvoStepSec)
		}
		pop = next
	}

	// --- ε-greedy top-K measurement ------------------------------------------
	var cands []cand
	for _, c := range pool {
		if !t.Seen(c.sched) {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].sched.Key() < cands[j].sched.Key()
	})
	// At least one random measurement per round — Ansor's ε-greedy diversity
	// must survive small per-round budgets or evolution converges prematurely.
	nRandom := int(math.Ceil(float64(measureK) * a.Cfg.EpsGreedy))
	var batch []*schedule.Schedule
	for i := 0; i < len(cands) && len(batch) < measureK-nRandom; i++ {
		batch = append(batch, cands[i].sched)
	}
	for len(batch) < measureK && len(cands) > 0 {
		batch = append(batch, cands[t.RNG.Intn(len(cands))].sched)
	}

	execs := t.MeasureBatch(batch)
	n := 0
	for i, e := range execs {
		if math.IsNaN(e) {
			continue
		}
		n++
		st.elites = append(st.elites, eliteEntry{batch[i], e})
	}
	sort.Slice(st.elites, func(i, j int) bool { return st.elites[i].exec < st.elites[j].exec })
	if len(st.elites) > a.Cfg.EliteKeep {
		st.elites = st.elites[:a.Cfg.EliteKeep]
	}
	return n
}

package search

import (
	"math"

	"harl/internal/hardware"
	"harl/internal/rl"
	"harl/internal/schedule"
)

// FlextensorConfig parameterizes the fixed-length RL baseline.
type FlextensorConfig struct {
	// TrackLength is the fixed number of modification steps per schedule
	// track — every track runs exactly this long regardless of when it peaks,
	// which is the inefficiency the paper's Observation 2 measures.
	TrackLength int
	// RL holds the agent's hyper-parameters.
	RL rl.Config
}

// DefaultFlextensorConfig matches the reproduction's round scale.
func DefaultFlextensorConfig() FlextensorConfig {
	return FlextensorConfig{TrackLength: 16, RL: rl.DefaultConfig()}
}

// Flextensor is the fixed-sketch, fixed-length RL baseline: it tunes only the
// first (general-template) sketch, measures every schedule it visits, and
// allocates a uniform number of steps to every track (Table 1's Flextensor
// row). It does not support subgraph/sketch selection.
type Flextensor struct {
	Cfg    FlextensorConfig
	agents map[*Task]*rl.Agent
}

// NewFlextensor builds the baseline engine.
func NewFlextensor(cfg FlextensorConfig) *Flextensor {
	return &Flextensor{Cfg: cfg, agents: make(map[*Task]*rl.Agent)}
}

// Name implements Engine.
func (f *Flextensor) Name() string { return "flextensor" }

func (f *Flextensor) agent(t *Task) *rl.Agent {
	if a := f.agents[t]; a != nil {
		return a
	}
	probe := t.RandomSchedule(t.Sketches[0])
	heads := []int{
		probe.NumTilingActions(),
		schedule.DeltaActions,
		schedule.DeltaActions,
		schedule.DeltaActions,
	}
	a := rl.NewAgent(len(probe.Features()), heads, f.Cfg.RL, t.RNG.Split())
	f.agents[t] = a
	return a
}

// RunRound implements Engine: as many fixed-length tracks as fit in the
// measurement budget, each step measured on hardware (Flextensor's design)
// with the measured performance ratio as the reward.
func (f *Flextensor) RunRound(t *Task, measureK int) int {
	agent := f.agent(t)
	sk := t.Sketches[0] // fixed sketch: no structure selection support
	nTracks := measureK / (f.Cfg.TrackLength + 1)
	if nTracks < 1 {
		nTracks = 1
	}
	measuredTotal := 0
	for tr := 0; tr < nTracks; tr++ {
		cur := t.RandomSchedule(sk)
		execs := t.MeasureBatch([]*schedule.Schedule{cur})
		curExec := execs[0]
		if math.IsNaN(curExec) {
			curExec = t.Meas.Sim.Exec(cur)
		} else {
			measuredTotal++
		}
		bestExec, bestStep := curExec, 0

		for step := 1; step <= f.Cfg.TrackLength; step++ {
			stateVec := cur.Features()
			dec := agent.Act(stateVec)
			next := cur.Apply(schedule.Action{
				Tiling:    dec.Acts[0],
				ComputeAt: dec.Acts[1],
				Parallel:  dec.Acts[2],
				Unroll:    dec.Acts[3],
			})
			nextExecs := t.MeasureBatch([]*schedule.Schedule{next})
			nextExec := nextExecs[0]
			if math.IsNaN(nextExec) {
				nextExec = t.Meas.Sim.Exec(next)
			} else {
				measuredTotal++
			}
			reward := (1/nextExec - 1/curExec) / (1 / curExec)
			nextVal := agent.Value(next.Features())
			agent.Observe(rl.Transition{
				State:     stateVec,
				Acts:      dec.Acts,
				OldLogP:   dec.LogProb,
				Reward:    reward,
				Value:     dec.Value,
				NextValue: nextVal,
			})
			if agent.Tick() {
				t.Meas.AddSearchCost(hardware.RLTrainSec)
			}
			t.Meas.AddSearchCost(hardware.RLStepSec)
			cur, curExec = next, nextExec
			if nextExec < bestExec {
				bestExec, bestStep = nextExec, step
			}
		}
		t.TrackPositions = append(t.TrackPositions, float64(bestStep)/float64(f.Cfg.TrackLength))
	}
	return measuredTotal
}

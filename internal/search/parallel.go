package search

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelPool fans independent, index-addressed jobs across a fixed number
// of workers. It is the concurrency primitive of the tuning engines: callers
// hand it n jobs where job i reads shared immutable state and writes only its
// own slot of a caller-owned output, so the combined result is byte-identical
// for every worker count — including the inline serial execution used when
// the pool is nil or sized to one worker. Ordering-sensitive mutations (cost
// logs, best-so-far updates, model refits) stay with the caller, which
// commits them in input order after Run returns.
type ParallelPool struct {
	workers int
}

// NewParallelPool builds a pool; workers <= 0 selects runtime.NumCPU().
func NewParallelPool(workers int) *ParallelPool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &ParallelPool{workers: workers}
}

// Workers returns the configured worker count (1 for a nil pool).
func (p *ParallelPool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(0) … fn(n-1) and returns when all have finished. Jobs are
// handed to workers through an atomic counter, so scheduling order is
// arbitrary; fn must confine its writes to per-index state. A nil pool, a
// single-worker pool, or n <= 1 runs the jobs inline on the caller's
// goroutine.
func (p *ParallelPool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

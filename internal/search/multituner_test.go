package search

import (
	"math"
	"testing"

	"harl/internal/hardware"
	"harl/internal/texpr"
	"harl/internal/workload"
)

func bertGraphs(t *testing.T) []*texpr.Subgraph {
	t.Helper()
	return workload.BERT(1).Subgraphs
}

func runMulti(t *testing.T, graphs []*texpr.Subgraph, mk func() Engine, cfg MultiTunerConfig, seed uint64, budget int) *MultiTuner {
	t.Helper()
	tasks := NewTaskSet(graphs, hardware.CPUXeon6226R(), seed)
	mt := NewMultiTuner(tasks, mk, cfg)
	mt.Run(budget)
	return mt
}

func TestMultiTunerHonorsBudget(t *testing.T) {
	cfg := DefaultMultiTunerConfig()
	cfg.RoundTrials = 8
	mt := runMulti(t, bertGraphs(t), func() Engine { return NewRandom() }, cfg, 3, 120)
	if mt.Trials() < 120 {
		t.Fatalf("budget not exhausted: %d trials", mt.Trials())
	}
	// The final wave is width-capped, so the overshoot stays below one full
	// wave of rounds.
	if mt.Trials() > 120+len(mt.Tasks)*cfg.RoundTrials {
		t.Fatalf("excessive overshoot: %d trials", mt.Trials())
	}
	for i, task := range mt.Tasks {
		if task.Trials > 0 && task.Best == nil {
			t.Fatalf("task %d measured but has no best", i)
		}
	}
	if math.IsInf(mt.EstimatedExec(), 1) {
		t.Fatal("every task must be visited (estimated exec finite)")
	}
	if mt.CostSec() <= 0 {
		t.Fatal("search cost must accumulate")
	}
}

// The core determinism contract of the parallel engine: the same seed yields
// byte-identical results for workers=1 and workers=8, for both allocation
// policies and for the heavy RL engine as well as the random baseline.
func TestMultiTunerWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker determinism sweep is slow")
	}
	engines := map[string]func() Engine{
		"random": func() Engine { return NewRandom() },
		"harl":   func() Engine { return NewHARL(DefaultHARLConfig()) },
		"ansor":  func() Engine { return NewAnsor(DefaultAnsorConfig()) },
	}
	for name, mk := range engines {
		for _, policy := range []AllocPolicy{AllocGradient, AllocRoundRobin} {
			cfg := DefaultMultiTunerConfig()
			cfg.RoundTrials = 8
			cfg.Policy = policy
			cfg.Workers = 1
			serial := runMulti(t, bertGraphs(t), mk, cfg, 17, 160)
			cfg.Workers = 8
			parallel := runMulti(t, bertGraphs(t), mk, cfg, 17, 160)

			if serial.Trials() != parallel.Trials() {
				t.Fatalf("%s/%v: trials %d vs %d", name, policy, serial.Trials(), parallel.Trials())
			}
			if serial.CostSec() != parallel.CostSec() {
				t.Fatalf("%s/%v: cost %v vs %v", name, policy, serial.CostSec(), parallel.CostSec())
			}
			for i := range serial.Tasks {
				st, pt := serial.Tasks[i], parallel.Tasks[i]
				if st.BestExec != pt.BestExec {
					t.Fatalf("%s/%v task %d: best exec %v vs %v", name, policy, i, st.BestExec, pt.BestExec)
				}
				if (st.Best == nil) != (pt.Best == nil) {
					t.Fatalf("%s/%v task %d: best presence diverged", name, policy, i)
				}
				if st.Best != nil && st.Best.Key() != pt.Best.Key() {
					t.Fatalf("%s/%v task %d: best schedule diverged", name, policy, i)
				}
				if len(st.BestLog) != len(pt.BestLog) {
					t.Fatalf("%s/%v task %d: log length diverged", name, policy, i)
				}
				for j := range st.BestLog {
					if st.BestLog[j] != pt.BestLog[j] || st.TrialCost[j] != pt.TrialCost[j] {
						t.Fatalf("%s/%v task %d: log entry %d diverged", name, policy, i, j)
					}
				}
			}
			// Allocation decisions must match wave for wave.
			if len(serial.History) != len(parallel.History) {
				t.Fatalf("%s/%v: wave count diverged", name, policy)
			}
			for w := range serial.History {
				sw, pw := serial.History[w].Tasks, parallel.History[w].Tasks
				if len(sw) != len(pw) {
					t.Fatalf("%s/%v wave %d: width diverged", name, policy, w)
				}
				for k := range sw {
					if sw[k] != pw[k] {
						t.Fatalf("%s/%v wave %d: selection diverged (%v vs %v)", name, policy, w, sw, pw)
					}
				}
			}
		}
	}
}

func TestMultiTunerRoundRobinCyclesTasks(t *testing.T) {
	graphs := bertGraphs(t)
	cfg := DefaultMultiTunerConfig()
	cfg.Policy = AllocRoundRobin
	cfg.RoundTrials = 4
	cfg.WaveWidth = 3
	tasks := NewTaskSet(graphs, hardware.CPUXeon6226R(), 9)
	mt := NewMultiTuner(tasks, func() Engine { return NewRandom() }, cfg)
	seen := make([]int, len(tasks))
	for w := 0; w < 2*len(tasks); w++ {
		for _, a := range mt.Wave(cfg.WaveWidth) {
			seen[a]++
		}
	}
	// 2·n waves of width 3 over n tasks: every task selected exactly 6 times.
	for i, n := range seen {
		if n != 6 {
			t.Fatalf("task %d selected %d times (want 6): %v", i, n, seen)
		}
	}
}

func TestMultiTunerGradientPrefersHeavyTask(t *testing.T) {
	// Two GEMM subgraphs, one with a 50× weight: after the mandatory first
	// visits, gradient allocation must give the heavy task more rounds.
	light := workload.GEMM("light", 1, 128, 128, 128)
	heavy := workload.GEMM("heavy", 1, 256, 256, 256)
	heavy.Weight = 50
	cfg := DefaultMultiTunerConfig()
	cfg.RoundTrials = 8
	cfg.WaveWidth = 1
	mt := runMulti(t, []*texpr.Subgraph{light, heavy}, func() Engine { return NewRandom() }, cfg, 21, 400)
	trials := mt.TaskTrials()
	if trials[1] <= trials[0] {
		t.Fatalf("heavy task got %d trials vs light %d", trials[1], trials[0])
	}
}

func TestNewTaskSetIndependentStreams(t *testing.T) {
	graphs := bertGraphs(t)
	tasks := NewTaskSet(graphs, hardware.CPUXeon6226R(), 5)
	if len(tasks) != len(graphs) {
		t.Fatalf("task count %d", len(tasks))
	}
	seen := make(map[*hardware.Measurer]bool)
	for _, task := range tasks {
		if seen[task.Meas] {
			t.Fatal("tasks must not share measurers")
		}
		seen[task.Meas] = true
	}
	// Same seed reproduces the same streams.
	again := NewTaskSet(graphs, hardware.CPUXeon6226R(), 5)
	a := tasks[0].RandomSchedule(tasks[0].Sketches[0])
	b := again[0].RandomSchedule(again[0].Sketches[0])
	if a.Key() != b.Key() {
		t.Fatal("task RNG streams not reproducible from seed")
	}
}

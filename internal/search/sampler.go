package search

import (
	"math"
	"sort"

	"harl/internal/xrand"
)

// SamplerConfig configures adaptive measurement sampling (Ahn et al.: cluster
// the candidates a round wants measured and send only cluster representatives
// to hardware). The zero value disables sampling; an enabled config with zero
// fields takes the defaults below.
type SamplerConfig struct {
	// Enabled turns sampling on.
	Enabled bool
	// MinBatch is the exploration floor: a round never measures fewer than
	// this many representatives (default 8, half a default round), so
	// model-error feedback keeps flowing even when the model looks accurate.
	MinBatch int
	// ErrWindow is how many recent predicted-vs-measured relative errors the
	// sampler averages to decide how hard to shrink (default 32). Until the
	// window fills, every fresh candidate is measured.
	ErrWindow int
}

func (c SamplerConfig) withDefaults() SamplerConfig {
	if c.MinBatch <= 0 {
		c.MinBatch = 8
	}
	if c.ErrWindow <= 0 {
		c.ErrWindow = 32
	}
	return c
}

// errScale maps the window-mean relative model error to the measured
// fraction of each batch (fraction = mean/errScale, capped at 1). Individual
// errors are clamped to 1 before averaging, so with errScale above 1 even a
// fully distrusted model shrinks a little once the window fills — the
// MinBatch floor, not the scale, is what guards exploration. Calibrated on
// the committed GEMM workload: the model's window-mean error declines from
// ~0.9 (barely trained) to ~0.4 (late rounds), which this scale turns into
// measuring roughly three quarters down to a third of each round.
const errScale = 1.2

// AdaptiveSampler holds the per-task sampling state: a ring of recent
// predicted-vs-measured relative errors. All decisions are pure functions of
// (committed errors, batch feature vectors, the task RNG stream), so sampling
// preserves the byte-identical-journal contract across worker counts.
type AdaptiveSampler struct {
	cfg  SamplerConfig
	errs []float64
	next int
	full bool
}

// NewAdaptiveSampler builds a sampler from cfg (zero fields defaulted).
func NewAdaptiveSampler(cfg SamplerConfig) *AdaptiveSampler {
	return &AdaptiveSampler{cfg: cfg.withDefaults()}
}

// observe records one relative throughput error |1 - predicted/measured|.
func (a *AdaptiveSampler) observe(relErr float64) {
	if math.IsNaN(relErr) || math.IsInf(relErr, 0) {
		return
	}
	if relErr > 1 {
		relErr = 1
	}
	if len(a.errs) < a.cfg.ErrWindow {
		a.errs = append(a.errs, relErr)
		a.full = len(a.errs) == a.cfg.ErrWindow
		return
	}
	a.errs[a.next] = relErr
	a.next = (a.next + 1) % a.cfg.ErrWindow
}

// target returns how many of n fresh candidates to measure: all of them until
// the error window fills, then a fraction proportional to the window-mean
// error, floored at MinBatch.
func (a *AdaptiveSampler) target(n int) int {
	if !a.full || n <= a.cfg.MinBatch {
		return n
	}
	sum := 0.0
	for _, e := range a.errs {
		sum += e
	}
	frac := (sum / float64(len(a.errs))) / errScale
	if frac > 1 {
		frac = 1
	}
	k := int(math.Ceil(frac * float64(n)))
	if k < a.cfg.MinBatch {
		k = a.cfg.MinBatch
	}
	if k > n {
		k = n
	}
	return k
}

// clusterReps groups n feature vectors into k clusters with a deterministic
// k-means (one RNG draw seeds the first center, the rest come from
// farthest-point init; a fixed number of Lloyd iterations; every tie broken
// by lowest index) and returns the representative row of each cluster plus
// each row's cluster assignment. The representative is the member with the
// highest score (the cost model's predicted throughput — measuring the
// candidate the search believes in keeps best-so-far quality from collapsing
// to cluster centroids); with nil scores it falls back to the member closest
// to its centroid. Determinism is the load-bearing property: for a fixed RNG
// stream and input order the partition is byte-for-byte reproducible, which
// is what lets sampled runs keep the workers=1 ≡ workers=N journal contract.
func clusterReps(feats [][]float64, scores []float64, k int, rng *xrand.RNG) (reps []int, assign []int) {
	n := len(feats)
	if k >= n {
		reps = make([]int, n)
		assign = make([]int, n)
		for i := range reps {
			reps[i], assign[i] = i, i
		}
		return reps, assign
	}
	norm := normalize(feats)
	centers := make([][]float64, 0, k)
	chosen := rng.Intn(n)
	centers = append(centers, append([]float64(nil), norm[chosen]...))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(norm[i], centers[0])
	}
	for len(centers) < k {
		far, farD := 0, -1.0
		for i, d := range minDist {
			if d > farD {
				far, farD = i, d
			}
		}
		c := append([]float64(nil), norm[far]...)
		centers = append(centers, c)
		for i := range minDist {
			if d := sqDist(norm[i], c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	assign = make([]int, n)
	const lloydIters = 4
	for iter := 0; iter < lloydIters; iter++ {
		counts := make([]int, k)
		for i := range norm {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(norm[i], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			counts[best]++
		}
		// An emptied cluster steals the row farthest from its assigned
		// centroid, so exactly k clusters stay populated.
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				continue
			}
			far, farD := -1, -1.0
			for i := range norm {
				if counts[assign[i]] <= 1 {
					continue
				}
				if d := sqDist(norm[i], centers[assign[i]]); d > farD {
					far, farD = i, d
				}
			}
			if far < 0 {
				continue
			}
			counts[assign[far]]--
			assign[far] = c
			counts[c] = 1
		}
		dim := len(norm[0])
		for c := range centers {
			if counts[c] == 0 {
				continue
			}
			mean := make([]float64, dim)
			for i := range norm {
				if assign[i] != c {
					continue
				}
				for d, v := range norm[i] {
					mean[d] += v
				}
			}
			for d := range mean {
				mean[d] /= float64(counts[c])
			}
			centers[c] = mean
		}
	}
	reps = make([]int, 0, k)
	for c := 0; c < k; c++ {
		rep, repD := -1, math.Inf(1)
		for i := range norm {
			if assign[i] != c {
				continue
			}
			if scores != nil {
				if rep < 0 || scores[i] > scores[rep] {
					rep = i
				}
				continue
			}
			if d := sqDist(norm[i], centers[c]); d < repD {
				rep, repD = i, d
			}
		}
		if rep >= 0 {
			reps = append(reps, rep)
		}
	}
	// Rows in a repless (emptied) cluster fold into the nearest surviving
	// representative so every row backfills from a real measurement.
	sort.Ints(reps)
	for i := range norm {
		if hasRep(reps, assign, i) {
			continue
		}
		best, bestD := reps[0], math.Inf(1)
		for _, r := range reps {
			if d := sqDist(norm[i], norm[r]); d < bestD {
				best, bestD = r, d
			}
		}
		assign[i] = assign[best]
	}
	return reps, assign
}

// hasRep reports whether row i's cluster has a representative in reps.
func hasRep(reps []int, assign []int, i int) bool {
	for _, r := range reps {
		if assign[r] == assign[i] {
			return true
		}
	}
	return false
}

// normalize rescales each feature dimension to [0,1] over the batch so
// k-means distances are not dominated by large-magnitude dimensions.
func normalize(feats [][]float64) [][]float64 {
	dim := len(feats[0])
	lo := make([]float64, dim)
	hi := make([]float64, dim)
	copy(lo, feats[0])
	copy(hi, feats[0])
	for _, f := range feats[1:] {
		for d, v := range f {
			if v < lo[d] {
				lo[d] = v
			}
			if v > hi[d] {
				hi[d] = v
			}
		}
	}
	out := make([][]float64, len(feats))
	for i, f := range feats {
		row := make([]float64, dim)
		for d, v := range f {
			if span := hi[d] - lo[d]; span > 0 {
				row[d] = (v - lo[d]) / span
			}
		}
		out[i] = row
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

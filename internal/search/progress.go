package search

import "context"

// Progress is one committed progress point of a tuning run, emitted at the
// barriers where state is worker-invariant: after each round of the serial
// operator loop (TuneSession), after each round of the serial network tuner,
// and at each wave barrier of the concurrent MultiTuner (one event per task
// advanced that wave, in wave-selection order). Every field is read from
// committed state only, so for a fixed seed and configuration the event
// sequence is byte-identical for every worker count — the same contract the
// tuning journal keeps.
type Progress struct {
	// Task is the index of the task the event describes (0 for operator runs).
	Task int
	// Wave is the 0-based wave (concurrent tuner) or round (serial loops)
	// index at whose barrier the event was committed.
	Wave int
	// Allocation is how many engine rounds the task has received so far.
	Allocation int
	// TaskTrials is the task-local cumulative charged-trial count and
	// TotalTrials the run-wide one (equal for operator runs). With adaptive
	// sampling, charged trials include backfilled candidates that were never
	// measured; TaskMeasured/TotalMeasured carry the real measurement counts.
	TaskTrials  int
	TotalTrials int
	// TaskMeasured is the task-local count of schedules actually measured,
	// and TotalMeasured the run-wide one. Without adaptive sampling they
	// equal TaskTrials/TotalTrials.
	TaskMeasured  int
	TotalMeasured int
	// BestExec is the task's best measured execution time so far (+Inf until
	// the task measures its first schedule).
	BestExec float64
	// RunBest is the run-level objective the driver optimizes: the best
	// execution time for an operator run, Σ w·g (the estimated end-to-end
	// network time) for a network run (+Inf until every task has measured).
	// Plateau detection reads this trajectory.
	RunBest float64
	// CostSec is the cumulative simulated search time at the barrier.
	CostSec float64
}

// TuneSession is TuneCtx with a progress callback: after every committed
// round, onProgress (when non-nil) receives one Progress event built from the
// task's committed state. The callback runs synchronously on the tuning
// goroutine, so anything it observes is consistent and anything it does (such
// as cancelling ctx) takes effect at the next round boundary.
func TuneSession(ctx context.Context, e Engine, t *Task, budgetTrials, measureK int, onProgress func(Progress)) bool {
	if t.Trials < budgetTrials {
		// Measure any transfer warm-start candidates before the first engine
		// round, so the donor's best schedule anchors the search immediately.
		t.FlushSeedCandidates()
	}
	round := 0
	for t.Trials < budgetTrials {
		if ctx.Err() != nil {
			return true
		}
		k := measureK
		if remaining := budgetTrials - t.Trials; k > remaining {
			k = remaining
		}
		if e.RunRound(t, k) == 0 {
			t.ExploreRandom(k)
		}
		if onProgress != nil {
			onProgress(Progress{
				Task:          0,
				Wave:          round,
				Allocation:    round + 1,
				TaskTrials:    t.Trials,
				TotalTrials:   t.Trials,
				TaskMeasured:  t.Measured,
				TotalMeasured: t.Measured,
				BestExec:      t.BestExec,
				RunBest:       t.BestExec,
				CostSec:       t.Meas.CostSec(),
			})
		}
		round++
	}
	return false
}

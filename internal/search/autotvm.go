package search

import (
	"math"
	"sort"

	"harl/internal/hardware"
	"harl/internal/schedule"
)

// AutoTVMConfig parameterizes the simulated-annealing baseline.
type AutoTVMConfig struct {
	// Chains is the number of parallel annealing chains per round.
	Chains int
	// Steps is the number of annealing steps per chain per round.
	Steps int
	// TStart and TEnd bound the geometric temperature decay across a round.
	TStart, TEnd float64
}

// DefaultAutoTVMConfig sizes the annealing round to the reproduction's
// candidate budget.
func DefaultAutoTVMConfig() AutoTVMConfig {
	return AutoTVMConfig{Chains: 16, Steps: 64, TStart: 1.0, TEnd: 0.05}
}

// AutoTVM is the simulated-annealing baseline (the search strategy HARL's
// related-work section attributes to AutoTVM): cost-model-guided annealing
// chains over the parameter space with heuristic acceptance probabilities,
// followed by top-K measurement.
type AutoTVM struct {
	Cfg AutoTVMConfig
}

// NewAutoTVM builds the baseline engine.
func NewAutoTVM(cfg AutoTVMConfig) *AutoTVM { return &AutoTVM{Cfg: cfg} }

// Name implements Engine.
func (a *AutoTVM) Name() string { return "autotvm" }

// RunRound implements Engine.
func (a *AutoTVM) RunRound(t *Task, measureK int) int {
	type cand struct {
		sched *schedule.Schedule
		score float64
	}
	pool := make(map[uint64]cand)
	decay := math.Pow(a.Cfg.TEnd/a.Cfg.TStart, 1/math.Max(1, float64(a.Cfg.Steps-1)))

	for c := 0; c < a.Cfg.Chains; c++ {
		sk := t.Sketches[t.RNG.Intn(len(t.Sketches))]
		cur := t.RandomSchedule(sk)
		curScore := t.Score(cur)
		pool[cur.Key()] = cand{cur, curScore}
		temp := a.Cfg.TStart
		for s := 0; s < a.Cfg.Steps; s++ {
			next := cur.Mutate(t.RNG)
			nextScore := t.Score(next)
			if _, ok := pool[next.Key()]; !ok {
				pool[next.Key()] = cand{next, nextScore}
			}
			// Metropolis acceptance on relative score.
			accept := nextScore >= curScore
			if !accept && curScore > 0 {
				p := math.Exp((nextScore - curScore) / curScore / math.Max(temp, 1e-9))
				accept = t.RNG.Bool(p)
			}
			if accept {
				cur, curScore = next, nextScore
			}
			temp *= decay
			t.Meas.AddSearchCost(hardware.EvoStepSec)
		}
	}

	var cands []cand
	for _, c := range pool {
		if !t.Seen(c.sched) {
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].sched.Key() < cands[j].sched.Key()
	})
	var batch []*schedule.Schedule
	for i := 0; i < len(cands) && len(batch) < measureK; i++ {
		batch = append(batch, cands[i].sched)
	}
	execs := t.MeasureBatch(batch)
	n := 0
	for _, e := range execs {
		if !math.IsNaN(e) {
			n++
		}
	}
	return n
}

// Random is the pure random-sampling baseline used in tests and ablations:
// every round measures measureK fresh uniform samples.
type Random struct{}

// NewRandom builds the baseline engine.
func NewRandom() *Random { return &Random{} }

// Name implements Engine.
func (r *Random) Name() string { return "random" }

// RunRound implements Engine.
func (r *Random) RunRound(t *Task, measureK int) int {
	var batch []*schedule.Schedule
	for i := 0; i < measureK*2 && len(batch) < measureK; i++ {
		sk := t.Sketches[t.RNG.Intn(len(t.Sketches))]
		s := t.RandomSchedule(sk)
		if !t.Seen(s) {
			batch = append(batch, s)
		}
	}
	execs := t.MeasureBatch(batch)
	n := 0
	for _, e := range execs {
		if !math.IsNaN(e) {
			n++
		}
	}
	return n
}

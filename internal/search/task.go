// Package search implements the tuning engines of the HARL reproduction:
//
//   - HARL's hierarchical adaptive RL search (sketch-level SW-UCB bandit,
//     actor-critic parameter modification, adaptive-stopping track control,
//     cost-model-guided top-K measurement) — Section 4 and 5 of the paper;
//   - the Ansor baseline (uniform sketch selection + evolutionary search);
//   - the Flextensor baseline (fixed sketch, fixed-length RL tracks);
//   - the AutoTVM baseline (simulated annealing);
//   - a pure random-sampling baseline used in tests and ablations.
//
// Engines operate on Tasks (one subgraph plus its sketches, cost model and
// measurement accounting) one round at a time, measuring a fixed number of
// candidates per round; the network-level subgraph selection loop lives in
// internal/core.
package search

import (
	"context"
	"math"
	"sync"

	"harl/internal/costmodel"
	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/texpr"
	"harl/internal/xrand"
)

// Task is one tuning target: a subgraph bound to a platform, with its sketch
// set, per-task cost model, measurement records and search bookkeeping.
type Task struct {
	Graph    *texpr.Subgraph
	Sketches []*sketch.Sketch
	Plat     *hardware.Platform
	Meas     *hardware.Measurer
	// Cost is the task's learned performance model. The search layer depends
	// only on the costmodel.CostModel interface; the concrete GBDT appears
	// solely in constructor wiring (NewTask, SetCostModel callers), so
	// checkpointed or pretrained models drop in without touching engines.
	Cost costmodel.CostModel
	RNG  *xrand.RNG

	// Pool fans trial evaluation and cost-model scoring across workers. A
	// nil pool runs everything inline; any pool size yields byte-identical
	// results (see ParallelPool).
	Pool *ParallelPool

	// Remote, when non-nil, evaluates measurement batches out of process —
	// the RPC seam of the distributed measurement fleet (internal/fleet).
	// Remote evaluation computes exactly the values the local path would
	// (measured time is a pure function of schedule, repetition index and
	// the measurer's noise seed), and all order-sensitive bookkeeping stays
	// local, so journals are byte-identical whether a batch was measured
	// in-process, on any remote worker, or recovered through the fallback.
	// An EvalBatch error falls back to the in-process Pool path silently:
	// fleet loss degrades throughput, never correctness.
	Remote BatchEvaluator

	// OnMeasure, when set, receives every committed measurement — the
	// schedule, its noisy execution time and the task-local 1-based trial
	// index — in commit order. MeasureBatch commits serially in batch input
	// order regardless of the pool width, so the callback sequence is
	// byte-identical for every worker count. Warm-started schedules are not
	// replayed through it: it records new measurements only.
	OnMeasure func(s *schedule.Schedule, execSec float64, trial int)

	// Best measured schedule and its noisy execution time.
	Best     *schedule.Schedule
	BestExec float64

	// Trials is the number of trials charged to this task — the budget the
	// search spends. Without adaptive sampling every charged trial is a real
	// measurement; with it, backfilled candidates charge a trial without
	// touching hardware, so Trials keeps its budget meaning while Measured
	// below carries the real count.
	Trials int

	// Measured counts schedules actually measured (committed to the
	// measurer), and MeasureSaved the charged trials whose measurement the
	// adaptive sampler skipped by backfilling from a cluster representative.
	// Trials == Measured + MeasureSaved always holds.
	Measured     int
	MeasureSaved int

	// Sampler, when non-nil, thins measurement batches: fresh candidates are
	// clustered in feature space and only cluster representatives reach the
	// measurer; the rest train the cost model from their representative's
	// result. See SamplerConfig.
	Sampler *AdaptiveSampler

	// TransferDonor, when non-empty, names the registry key (workload@target)
	// whose knowledge warm-started this task via cross-key transfer.
	TransferDonor string

	// BestLog records the task-local best execution time after every trial,
	// and TrialCost the global search-time at that trial (for time-to-target
	// metrics in network tuning).
	BestLog   []float64
	TrialCost []float64

	// TrackPositions collects, per finished schedule track, the relative
	// position of the track's best-scoring step (the paper's "critical step"
	// position: Fig. 1(c) and Fig. 7(b)).
	TrackPositions []float64

	// CostRefits counts the cost-model refits performed for this task, and
	// Pretrained reports whether the model carried offline knowledge (a
	// checkpoint or a journal replay) before the first engine round — the
	// provenance surfaced by harl-tune's summary.
	CostRefits int
	Pretrained bool

	measured  map[uint64]bool
	seedCands []*schedule.Schedule
}

// BatchEvaluator evaluates one measurement batch, possibly out of process: it
// returns the noisy execution times of the schedules at the given repetition
// indices, aligned with the input. Implementations MUST return exactly the
// values hardware.NoisyExecSeeded computes for the task's simulator and noise
// seed — measured time is a pure function of (schedule, seq, seed), which is
// what lets the fleet keep tuning journals byte-identical regardless of which
// worker measured what. An error (or a misaligned result) makes the caller
// fall back to in-process evaluation of the same (schedule, seq) pairs.
type BatchEvaluator interface {
	EvalBatch(scheds []*schedule.Schedule, seqs []uint64) ([]float64, error)
}

// measureJob pairs a batch index with its reserved noise-repetition index.
type measureJob struct {
	idx int
	seq uint64
}

// NewTask builds a task with a fresh cost model and a split RNG stream. The
// measurer may be shared across tasks of a network so search time accumulates
// globally.
func NewTask(g *texpr.Subgraph, plat *hardware.Platform, meas *hardware.Measurer, rng *xrand.RNG) *Task {
	return &Task{
		Graph:    g,
		Sketches: sketch.Generate(g),
		Plat:     plat,
		Meas:     meas,
		Cost:     costmodel.New(costmodel.DefaultParams()),
		RNG:      rng,
		BestExec: math.Inf(1),
		measured: make(map[uint64]bool),
	}
}

// NumUnroll returns the platform's unroll-candidate count for sampling.
func (t *Task) NumUnroll() int { return len(t.Plat.UnrollDepths) }

// FeatureDim returns the task's schedule feature dimension (uniform across
// the task's sketches) — the structural-compatibility key for transferring
// cost-model knowledge between workloads.
func (t *Task) FeatureDim() int { return schedule.FeatureDim(t.Sketches[0]) }

// RandomSchedule samples a random schedule of the given sketch.
func (t *Task) RandomSchedule(sk *sketch.Sketch) *schedule.Schedule {
	return schedule.NewRandom(sk, t.NumUnroll(), t.RNG)
}

// Seen reports whether an identical configuration was already measured.
func (t *Task) Seen(s *schedule.Schedule) bool { return t.measured[s.Key()] }

// MeasureBatch measures the given schedules (skipping already-measured
// configurations), records them into the cost model training set, refits the
// model, and updates the task's best. It returns the measured execution
// times aligned with the input slice (NaN for skipped duplicates and for
// candidates the adaptive sampler backfilled instead of measuring).
//
// Trial evaluation (simulator + noise) fans out across the task's Pool; the
// order-sensitive bookkeeping — measurement-cost accounting, best-so-far
// logs, cost-model training — is committed serially in input order, so the
// result is byte-identical for every worker count. When a Sampler is
// attached, the fresh candidates are first partitioned into cluster
// representatives (measured through the normal path, in input order) and
// backfills (committed after the representatives: each charges a trial and
// trains the cost model with its representative's measurement, but never
// reaches the measurer — that skipped Commit is the hardware time saved).
func (t *Task) MeasureBatch(scheds []*schedule.Schedule) []float64 {
	out := make([]float64, len(scheds))
	var fresh []int
	for i, s := range scheds {
		if s == nil || t.measured[s.Key()] {
			out[i] = math.NaN()
			continue
		}
		t.measured[s.Key()] = true
		fresh = append(fresh, i)
	}
	reps, repOf := t.sampleBatch(scheds, fresh)
	jobs := make([]measureJob, 0, len(reps))
	for _, i := range reps {
		jobs = append(jobs, measureJob{idx: i, seq: t.Meas.ReserveSeq(scheds[i].Key())})
	}
	preds := t.predictJobs(scheds, jobs)
	if !t.evalRemote(scheds, jobs, out) {
		t.Pool.Run(len(jobs), func(j int) {
			jb := jobs[j]
			out[jb.idx] = t.Meas.NoisyExec(scheds[jb.idx], jb.seq)
		})
	}
	t.observeErrors(preds, jobs, out)
	for _, jb := range jobs {
		s, exec := scheds[jb.idx], out[jb.idx]
		t.Meas.Commit(exec)
		t.Trials++
		t.Measured++
		if exec < t.BestExec {
			t.BestExec = exec
			t.Best = s
		}
		t.BestLog = append(t.BestLog, t.BestExec)
		t.TrialCost = append(t.TrialCost, t.Meas.CostSec())
		t.Cost.Add(s.Features(), math.Log(1/exec))
		if t.OnMeasure != nil {
			t.OnMeasure(s, exec, t.Trials)
		}
	}
	if repOf != nil {
		for _, i := range fresh {
			rep, ok := repOf[i]
			if !ok || rep == i {
				continue
			}
			// Backfill: charged against the budget so run shape matches an
			// unsampled search, trained into the model with the cluster
			// representative's measurement, but never sent to hardware (no
			// Meas.Commit) and never journaled (no OnMeasure — the journal
			// records real measurements only).
			t.Trials++
			t.MeasureSaved++
			t.BestLog = append(t.BestLog, t.BestExec)
			t.TrialCost = append(t.TrialCost, t.Meas.CostSec())
			t.Cost.Add(scheds[i].Features(), math.Log(1/out[rep]))
			out[i] = math.NaN()
		}
	}
	if len(jobs) > 0 {
		t.refitCost()
	}
	return out
}

// sampleBatch decides which fresh batch indices are actually measured.
// Without a sampler every fresh candidate is its own representative (nil
// map). With one, the fresh candidates are clustered in feature space and
// only cluster representatives go to hardware; repOf maps each fresh batch
// index to its cluster representative's batch index.
func (t *Task) sampleBatch(scheds []*schedule.Schedule, fresh []int) (reps []int, repOf map[int]int) {
	if t.Sampler == nil || len(fresh) == 0 {
		return fresh, nil
	}
	k := t.Sampler.target(len(fresh))
	if k >= len(fresh) {
		return fresh, nil
	}
	feats := make([][]float64, len(fresh))
	for j, i := range fresh {
		feats[j] = scheds[i].Features()
	}
	var scores []float64
	if t.Cost.Trained() {
		t.Meas.AddCostModelQueries(len(fresh))
		scores = t.Cost.PredictBatch(feats)
	}
	local, assign := clusterReps(feats, scores, k, t.RNG)
	repByCluster := make(map[int]int, len(local))
	for _, j := range local {
		repByCluster[assign[j]] = fresh[j]
	}
	repOf = make(map[int]int, len(fresh))
	reps = make([]int, 0, len(local))
	for _, j := range local {
		reps = append(reps, fresh[j])
	}
	for j, i := range fresh {
		repOf[i] = repByCluster[assign[j]]
	}
	return reps, repOf
}

// predictJobs predicts each job's log-throughput before its measurement
// commits, feeding the sampler's predicted-vs-measured error window. It is a
// no-op without a sampler or before the model first trains.
func (t *Task) predictJobs(scheds []*schedule.Schedule, jobs []measureJob) []float64 {
	if t.Sampler == nil || !t.Cost.Trained() || len(jobs) == 0 {
		return nil
	}
	feats := make([][]float64, len(jobs))
	for k, jb := range jobs {
		feats[k] = scheds[jb.idx].Features()
	}
	t.Meas.AddCostModelQueries(len(jobs))
	return t.Cost.PredictBatch(feats)
}

// observeErrors folds this batch's predicted-vs-measured relative errors
// into the sampler's window.
func (t *Task) observeErrors(preds []float64, jobs []measureJob, out []float64) {
	if preds == nil {
		return
	}
	for k, jb := range jobs {
		actual := math.Log(1 / out[jb.idx])
		t.Sampler.observe(math.Abs(1 - math.Exp(preds[k]-actual)))
	}
}

// SeedCandidate queues an unmeasured warm-start candidate (the transfer
// path's donor-best schedule) to be measured ahead of the first engine round
// by FlushSeedCandidates. Already-measured configurations are dropped.
func (t *Task) SeedCandidate(s *schedule.Schedule) {
	if s == nil || t.measured[s.Key()] {
		return
	}
	t.seedCands = append(t.seedCands, s)
}

// FlushSeedCandidates measures any queued warm-start candidates through the
// normal MeasureBatch path (real measurements, charged trials) and clears
// the queue. The tuning loops call it at a deterministic point before each
// task's first engine round; it is a cheap no-op afterwards. It returns the
// number of measurements performed.
func (t *Task) FlushSeedCandidates() int {
	if len(t.seedCands) == 0 {
		return 0
	}
	batch := t.seedCands
	t.seedCands = nil
	n := 0
	for _, e := range t.MeasureBatch(batch) {
		if !math.IsNaN(e) {
			n++
		}
	}
	return n
}

// evalRemote dispatches the batch's fresh trials to the remote evaluator,
// reporting whether it produced a usable result. Reservation order (the seqs)
// was fixed by the caller before dispatch, so a failed remote attempt leaves
// the local fallback computing exactly the same values.
func (t *Task) evalRemote(scheds []*schedule.Schedule, jobs []measureJob, out []float64) bool {
	if t.Remote == nil || len(jobs) == 0 {
		return false
	}
	batch := make([]*schedule.Schedule, len(jobs))
	seqs := make([]uint64, len(jobs))
	for k, jb := range jobs {
		batch[k] = scheds[jb.idx]
		seqs[k] = jb.seq
	}
	res, err := t.Remote.EvalBatch(batch, seqs)
	if err != nil || len(res) != len(jobs) {
		return false
	}
	for k, jb := range jobs {
		out[jb.idx] = res[k]
	}
	return true
}

// refitCost rebuilds the cost model and counts the refit. Models that can
// fan their refit scans across workers get the task's pool first; the fitted
// ensemble is bit-identical for every pool width (see
// costmodel.ParallelRefitter), so this only changes refit wall-clock time.
// The hook is re-installed per refit because the pool is attached to the task
// after construction (core wires it per tuner).
func (t *Task) refitCost() {
	if pr, ok := t.Cost.(costmodel.ParallelRefitter); ok {
		pr.SetRunner(t.Pool.Run)
	}
	t.Cost.Refit()
	t.CostRefits++
}

// SetCostModel replaces the task's cost model before search starts — the
// checkpoint-load path. A model that already carries training samples marks
// the task pretrained.
func (t *Task) SetCostModel(m costmodel.CostModel) {
	t.Cost = m
	if m.Len() > 0 {
		t.Pretrained = true
	}
}

// PretrainSample feeds one offline sample (reconstructed from a tuning
// journal) into the cost model without charging a trial or touching the
// measured set; call FinishPretrain once after the replay.
func (t *Task) PretrainSample(s *schedule.Schedule, execSec float64) {
	if s == nil || execSec <= 0 {
		return
	}
	t.Cost.Add(s.Features(), math.Log(1/execSec))
}

// FinishPretrain refits the model over the replayed samples and marks the
// task pretrained.
func (t *Task) FinishPretrain() {
	if t.Cost.Len() == 0 {
		return
	}
	t.refitCost()
	t.Pretrained = true
}

// WarmStart seeds the task with a previously measured schedule and its
// recorded noisy execution time — the cache-reuse path of the tuning-record
// journal. The schedule is marked measured (engines will not spend a trial
// re-measuring it), becomes the task best if it beats the current one, and
// primes the cost model so the first engine round starts from a trained
// reward signal instead of a cold model. It charges no measurement trial and
// appends nothing to the best-so-far logs: those track new measurements only.
func (t *Task) WarmStart(s *schedule.Schedule, execSec float64) {
	if s == nil || execSec <= 0 {
		return
	}
	t.measured[s.Key()] = true
	if execSec < t.BestExec {
		t.BestExec = execSec
		t.Best = s
	}
	t.Cost.Add(s.Features(), math.Log(1/execSec))
	t.refitCost()
}

// Score returns the cost model's positive performance score C(s) for the
// ratio-form reward; before the model is trained it returns 1 so rewards are
// zero rather than arbitrary.
func (t *Task) Score(s *schedule.Schedule) float64 {
	if !t.Cost.Trained() {
		return 1
	}
	t.Meas.AddCostModelQueries(1)
	return t.Cost.Throughput(s.Features())
}

// scoreChunk is the per-worker unit of ScoreBatch: large enough that
// PredictBatch amortizes its tree-at-a-time pass, small enough that a
// typical engine round (hundreds to ~1k candidates) still spreads across
// the pool.
const scoreChunk = 64

// scoreBuf holds one chunk's scratch — the feature-pointer matrix and the
// prediction output. Chunks borrow from scoreBufPool so steady-state scoring
// reuses a handful of buffers instead of allocating two slices per chunk per
// round; schedule feature vectors themselves are memoized on the schedules,
// so a chunk's feature "matrix" is pointers into those caches.
type scoreBuf struct {
	feats [][]float64
	preds []float64
}

var scoreBufPool = sync.Pool{New: func() any {
	return &scoreBuf{
		feats: make([][]float64, scoreChunk),
		preds: make([]float64, scoreChunk),
	}
}}

// ScoreBatch scores many schedules at once: contiguous chunks fan out
// across the task's Pool, and each chunk extracts its features and predicts
// them in one PredictBatch pass (into a pooled buffer when the model supports
// costmodel.BatchInto). Chunks write disjoint output ranges and batch
// prediction is bit-identical to element-wise Predict (the model is
// read-only between refits), so ScoreBatch matches Score element-wise for
// every pool width. It charges the same per-query search cost as Score and
// returns scores aligned with the input.
func (t *Task) ScoreBatch(scheds []*schedule.Schedule) []float64 {
	out := make([]float64, len(scheds))
	if !t.Cost.Trained() {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	t.Meas.AddCostModelQueries(len(scheds))
	into, _ := t.Cost.(costmodel.BatchInto)
	nChunks := (len(scheds) + scoreChunk - 1) / scoreChunk
	t.Pool.Run(nChunks, func(c int) {
		lo := c * scoreChunk
		hi := lo + scoreChunk
		if hi > len(scheds) {
			hi = len(scheds)
		}
		sb := scoreBufPool.Get().(*scoreBuf)
		feats := sb.feats[:hi-lo]
		for i := range feats {
			feats[i] = scheds[lo+i].Features()
		}
		preds := sb.preds[:hi-lo]
		if into != nil {
			into.PredictBatchInto(feats, preds)
		} else {
			preds = t.Cost.PredictBatch(feats)
		}
		for i, p := range preds {
			out[lo+i] = costmodel.ToThroughput(p)
		}
		scoreBufPool.Put(sb)
	})
	return out
}

// BestPerf returns the best measured performance (1/exec), or 0 if nothing
// has been measured yet.
func (t *Task) BestPerf() float64 {
	if math.IsInf(t.BestExec, 1) {
		return 0
	}
	return 1 / t.BestExec
}

// WeightedBestExec returns w_n · g_n, the task's contribution to the
// network-level objective (using the noise-free simulator time of the best
// schedule; +Inf before any measurement).
func (t *Task) WeightedBestExec() float64 {
	if t.Best == nil {
		return math.Inf(1)
	}
	return float64(t.Graph.Weight) * t.Meas.Sim.Exec(t.Best)
}

// TrialsToReach returns the task-local trial count after which the best
// execution time first reached target (and whether it did).
func (t *Task) TrialsToReach(target float64) (int, bool) {
	for i, e := range t.BestLog {
		if e <= target {
			return i + 1, true
		}
	}
	return t.Trials, false
}

// Engine is one parameter-search strategy operating round by round.
type Engine interface {
	// Name identifies the engine in experiment output.
	Name() string
	// RunRound performs one exploration round on the task and measures about
	// measureK candidates. It returns the number of measurements performed.
	RunRound(t *Task, measureK int) int
}

// ExploreRandom measures k uniformly random schedules — the fallback both
// the serial Tune loop and the concurrent MultiTuner use when an engine
// round produces nothing new (space exhausted or all duplicates).
func (t *Task) ExploreRandom(k int) {
	var batch []*schedule.Schedule
	for i := 0; i < k; i++ {
		sk := t.Sketches[t.RNG.Intn(len(t.Sketches))]
		batch = append(batch, t.RandomSchedule(sk))
	}
	t.MeasureBatch(batch)
}

// Tune runs the engine on a single task until the measurement budget is
// exhausted (the operator-level experiments of Section 6.2).
func Tune(e Engine, t *Task, budgetTrials, measureK int) {
	TuneCtx(context.Background(), e, t, budgetTrials, measureK)
}

// TuneCtx is Tune with cooperative cancellation: the context is checked at
// round boundaries, so a cancelled session stops after its in-flight round
// commits — every measurement that happened is fully accounted (best logs,
// cost model, OnMeasure journal callbacks) and the task is left in a
// consistent, resumable state. It returns true if the run was cut short by
// the context. An uncancelled run takes exactly the same path as Tune, so
// the determinism contract is untouched.
func TuneCtx(ctx context.Context, e Engine, t *Task, budgetTrials, measureK int) bool {
	return TuneSession(ctx, e, t, budgetTrials, measureK, nil)
}

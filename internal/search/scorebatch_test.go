package search

import (
	"runtime"
	"testing"

	"harl/internal/schedule"
	"harl/internal/workload"
)

// TestScoreBatchAllocs pins the steady-state allocation cost of batch
// scoring. With memoized schedule features, pooled chunk buffers and the
// model's write-into batch kernel, scoring N already-featurized candidates
// costs the output slice plus a few pool accesses — far under one allocation
// per candidate (the pre-optimization path allocated a feature vector per
// candidate plus a feature matrix and prediction slice per chunk).
func TestScoreBatchAllocs(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 32)
	task.ExploreRandom(32)
	const n = 512
	var batch []*schedule.Schedule
	for i := 0; i < n; i++ {
		batch = append(batch, task.RandomSchedule(task.Sketches[i%len(task.Sketches)]))
	}
	task.ScoreBatch(batch) // warm: feature memos, score buffers
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 10
	for i := 0; i < rounds; i++ {
		task.ScoreBatch(batch)
	}
	runtime.ReadMemStats(&after)
	perCandidate := float64(after.Mallocs-before.Mallocs) / float64(rounds) / float64(n)
	if perCandidate > 0.25 {
		t.Fatalf("ScoreBatch allocates %.3f objects per candidate, want ≤ 0.25", perCandidate)
	}
}

package search

import (
	"math"
	"testing"

	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/texpr"
	"harl/internal/workload"
	"harl/internal/xrand"
)

func newTestTask(t *testing.T, sg *texpr.Subgraph, seed uint64) (*Task, *hardware.Simulator) {
	t.Helper()
	plat := hardware.CPUXeon6226R()
	sim := hardware.NewSimulator(plat)
	rng := xrand.New(seed)
	return NewTask(sg, plat, hardware.NewMeasurer(sim, rng.Split()), rng.Split()), sim
}

func TestTaskMeasureBatchDedup(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 1)
	s := task.RandomSchedule(task.Sketches[0])
	execs := task.MeasureBatch([]*schedule.Schedule{s, s})
	if math.IsNaN(execs[0]) {
		t.Fatal("first measurement must succeed")
	}
	if !math.IsNaN(execs[1]) {
		t.Fatal("duplicate in the same batch must be skipped")
	}
	if !task.Seen(s) {
		t.Fatal("Seen must report measured schedules")
	}
	if task.Trials != 1 {
		t.Fatalf("trials %d", task.Trials)
	}
}

func TestTaskBestTracking(t *testing.T) {
	task, sim := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 2)
	var batch []*schedule.Schedule
	for i := 0; i < 32; i++ {
		batch = append(batch, task.RandomSchedule(task.Sketches[i%len(task.Sketches)]))
	}
	task.MeasureBatch(batch)
	if task.Best == nil {
		t.Fatal("no best recorded")
	}
	// Best log must be non-increasing and end at BestExec.
	for i := 1; i < len(task.BestLog); i++ {
		if task.BestLog[i] > task.BestLog[i-1] {
			t.Fatal("best log not monotone")
		}
	}
	if task.BestLog[len(task.BestLog)-1] != task.BestExec {
		t.Fatal("best log tail mismatch")
	}
	if task.BestPerf() <= 0 {
		t.Fatal("best perf must be positive")
	}
	_ = sim
}

func TestTaskWeightedBestExec(t *testing.T) {
	sg := workload.GEMM("g", 1, 128, 128, 128)
	sg.Weight = 7
	task, sim := newTestTask(t, sg, 3)
	if !math.IsInf(task.WeightedBestExec(), 1) {
		t.Fatal("unmeasured task must report +Inf")
	}
	task.MeasureBatch([]*schedule.Schedule{task.RandomSchedule(task.Sketches[0])})
	want := 7 * sim.Exec(task.Best)
	if got := task.WeightedBestExec(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted exec %g want %g", got, want)
	}
}

func TestTuneHonorsBudget(t *testing.T) {
	for _, mk := range []func() Engine{
		func() Engine { return NewRandom() },
		func() Engine { return NewAnsor(DefaultAnsorConfig()) },
		func() Engine { return NewHARL(DefaultHARLConfig()) },
		func() Engine { return NewAutoTVM(DefaultAutoTVMConfig()) },
		func() Engine { return NewFlextensor(DefaultFlextensorConfig()) },
	} {
		e := mk()
		task, _ := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 4)
		Tune(e, task, 48, 16)
		if task.Trials < 48 || task.Trials > 48+16 {
			t.Fatalf("%s: trials %d for budget 48", e.Name(), task.Trials)
		}
		if task.Best == nil {
			t.Fatalf("%s: no best found", e.Name())
		}
		if err := task.Best.Validate(); err != nil {
			t.Fatalf("%s: best schedule invalid: %v", e.Name(), err)
		}
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]Engine{
		"random":          NewRandom(),
		"ansor":           NewAnsor(DefaultAnsorConfig()),
		"harl":            NewHARL(DefaultHARLConfig()),
		"autotvm":         NewAutoTVM(DefaultAutoTVMConfig()),
		"flextensor":      NewFlextensor(DefaultFlextensorConfig()),
		"hierarchical-rl": func() Engine { c := DefaultHARLConfig(); c.AdaptiveStopping = false; return NewHARL(c) }(),
	}
	for want, e := range names {
		if e.Name() != want {
			t.Fatalf("engine name %q want %q", e.Name(), want)
		}
	}
}

// The learning-based engines must decisively beat random sampling on a
// medium GEMM within a small budget (the core claim of the paper's design).
func TestGuidedSearchBeatsRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("search comparison is slow")
	}
	sg := workload.GEMM("g", 1, 512, 512, 512)
	run := func(mk func() Engine, seed uint64) float64 {
		task, sim := newTestTask(t, sg, seed)
		Tune(mk(), task, 160, 16)
		return sim.Exec(task.Best)
	}
	// Average over two seeds to damp texture luck.
	randomBest := (run(func() Engine { return NewRandom() }, 10) + run(func() Engine { return NewRandom() }, 20)) / 2
	ansorBest := (run(func() Engine { return NewAnsor(DefaultAnsorConfig()) }, 10) + run(func() Engine { return NewAnsor(DefaultAnsorConfig()) }, 20)) / 2
	harlBest := (run(func() Engine { return NewHARL(DefaultHARLConfig()) }, 10) + run(func() Engine { return NewHARL(DefaultHARLConfig()) }, 20)) / 2
	if ansorBest >= randomBest {
		t.Fatalf("ansor %.4g not better than random %.4g", ansorBest, randomBest)
	}
	if harlBest >= randomBest {
		t.Fatalf("harl %.4g not better than random %.4g", harlBest, randomBest)
	}
}

// Regression test for the ε-greedy rounding bug: Ansor must not collapse to
// far-worse-than-random results on any seed (premature convergence).
func TestAnsorNoCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed run is slow")
	}
	sg := workload.GEMM("g", 1, 1024, 1024, 1024)
	for _, seed := range []uint64{7, 17} {
		task, sim := newTestTask(t, sg, seed)
		Tune(NewAnsor(DefaultAnsorConfig()), task, 300, 16)
		if best := sim.Exec(task.Best); best > 2.0e-3 {
			t.Fatalf("seed %d: ansor best %.4g ms suggests premature convergence", seed, best*1e3)
		}
	}
}

func TestHARLAdaptiveStoppingTrackCounts(t *testing.T) {
	cfg := DefaultHARLConfig()
	h := NewHARL(cfg)
	task, _ := newTestTask(t, workload.GEMM("g", 1, 512, 512, 512), 5)
	h.RunRound(task, 8)
	// Every track must have recorded a critical-step position in [0,1].
	if len(task.TrackPositions) != cfg.Tracks {
		t.Fatalf("recorded %d track positions want %d", len(task.TrackPositions), cfg.Tracks)
	}
	for _, p := range task.TrackPositions {
		if p < 0 || p > 1 {
			t.Fatalf("track position %f out of [0,1]", p)
		}
	}
}

func TestHARLAgentIsTrained(t *testing.T) {
	h := NewHARL(DefaultHARLConfig())
	task, _ := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 6)
	h.RunRound(task, 8)
	agent := h.Agent(task)
	if agent == nil {
		t.Fatal("no agent created")
	}
	if agent.Updates() == 0 {
		t.Fatal("agent never trained during the episode")
	}
	if agent.BufferLen() == 0 {
		t.Fatal("no transitions recorded")
	}
}

func TestHARLSketchMABUsed(t *testing.T) {
	h := NewHARL(DefaultHARLConfig())
	task, _ := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 7)
	for i := 0; i < 4; i++ {
		h.RunRound(task, 8)
	}
	counts := h.SketchCounts(task)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 4 {
		t.Fatalf("MAB recorded %d pulls want 4", total)
	}
}

func TestHARLFixedLengthMode(t *testing.T) {
	cfg := DefaultHARLConfig()
	cfg.AdaptiveStopping = false
	cfg.FixedLength = 10
	h := NewHARL(cfg)
	task, _ := newTestTask(t, workload.GEMM("g", 1, 256, 256, 256), 8)
	h.RunRound(task, 8)
	// Fixed-length tracks all have identical lengths; critical positions are
	// multiples of 1/10.
	for _, p := range task.TrackPositions {
		scaled := p * 10
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("fixed-length position %f not on the 1/10 grid", p)
		}
	}
}

func TestFlextensorMeasuresEveryStep(t *testing.T) {
	f := NewFlextensor(DefaultFlextensorConfig())
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 9)
	n := f.RunRound(task, 34)
	// 34/(16+1) = 2 tracks × 17 measurement attempts (init + 16 steps). The
	// walk revisits configurations (dummy/no-op actions), which dedup skips,
	// so the measured count is bounded by — not equal to — the attempts.
	if n < 8 || n > 34 {
		t.Fatalf("flextensor measured %d", n)
	}
	if len(task.TrackPositions) != 2 {
		t.Fatalf("flextensor tracks %d want 2", len(task.TrackPositions))
	}
}

func TestSubgraphWithMultipleStagesTunes(t *testing.T) {
	// Fused conv+relu and softmax subgraphs must tune without panics across
	// all engines (exercises fused sketches, rfactor, compute-at).
	for _, sg := range []*texpr.Subgraph{
		workload.Conv2DReLU("cr", 1, 1, 28, 28, 64, 64, 3, 1, 1),
		workload.Softmax("sm", 1536, 128),
		workload.Elementwise("ew", 1<<16, 4, 2),
		workload.DepthwiseConv2D("dw", 1, 28, 28, 96, 3, 1, 1),
	} {
		for _, mk := range []func() Engine{
			func() Engine { return NewHARL(DefaultHARLConfig()) },
			func() Engine { return NewAnsor(DefaultAnsorConfig()) },
		} {
			e := mk()
			task, _ := newTestTask(t, sg, 11)
			Tune(e, task, 32, 16)
			if task.Best == nil {
				t.Fatalf("%s on %s found nothing", e.Name(), sg.Name)
			}
		}
	}
}

func TestScoreChargesSearchCost(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 12)
	s := task.RandomSchedule(task.Sketches[0])
	// Untrained: free, returns neutral 1.
	if task.Score(s) != 1 {
		t.Fatal("untrained score must be 1")
	}
	before := task.Meas.CostSec()
	var batch []*schedule.Schedule
	for i := 0; i < 16; i++ {
		batch = append(batch, task.RandomSchedule(task.Sketches[0]))
	}
	task.MeasureBatch(batch)
	mid := task.Meas.CostSec()
	task.Score(s)
	if task.Meas.CostSec() <= mid {
		t.Fatal("trained score must charge cost-model query time")
	}
	_ = before
}

func TestTrialsToReach(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 13)
	var batch []*schedule.Schedule
	for i := 0; i < 24; i++ {
		batch = append(batch, task.RandomSchedule(task.Sketches[0]))
	}
	task.MeasureBatch(batch)
	n, ok := task.TrialsToReach(task.BestExec)
	if !ok || n < 1 || n > 24 {
		t.Fatalf("TrialsToReach %d %v", n, ok)
	}
	if _, ok := task.TrialsToReach(task.BestExec / 1000); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestMeasureBatchNaNAlignment(t *testing.T) {
	task, _ := newTestTask(t, workload.GEMM("g", 1, 128, 128, 128), 6)
	s1 := task.RandomSchedule(task.Sketches[0])
	s2 := task.RandomSchedule(task.Sketches[0])
	for s2.Key() == s1.Key() {
		s2 = task.RandomSchedule(task.Sketches[0])
	}
	// nil entries and within-batch duplicates must come back as NaN in the
	// slots they occupied, with real measurements aligned around them.
	out := task.MeasureBatch([]*schedule.Schedule{s1, nil, s1.Clone(), s2})
	if len(out) != 4 {
		t.Fatalf("output length %d", len(out))
	}
	if math.IsNaN(out[0]) || math.IsNaN(out[3]) {
		t.Fatal("fresh schedules must be measured")
	}
	if !math.IsNaN(out[1]) || !math.IsNaN(out[2]) {
		t.Fatalf("nil/duplicate slots must be NaN: %v", out)
	}
	if task.Trials != 2 {
		t.Fatalf("trials %d want 2", task.Trials)
	}
	// Duplicates across batches are skipped too.
	out2 := task.MeasureBatch([]*schedule.Schedule{s2.Clone(), s1})
	if !math.IsNaN(out2[0]) || !math.IsNaN(out2[1]) {
		t.Fatalf("cross-batch duplicates must be NaN: %v", out2)
	}
	if task.Trials != 2 {
		t.Fatalf("trials %d after duplicate-only batch", task.Trials)
	}
	// An all-duplicate batch must not refit or log anything new.
	if len(task.BestLog) != 2 || len(task.TrialCost) != 2 {
		t.Fatal("logs grew on duplicate-only batch")
	}
}

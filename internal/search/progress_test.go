package search

import (
	"context"
	"reflect"
	"testing"

	"harl/internal/hardware"
)

// collectMultiProgress runs a MultiTuner over the BERT task set with the
// given worker count and returns its progress event stream.
func collectMultiProgress(t *testing.T, workers int, budget int) []Progress {
	t.Helper()
	cfg := DefaultMultiTunerConfig()
	cfg.RoundTrials = 8
	cfg.Workers = workers
	tasks := NewTaskSet(bertGraphs(t), hardware.CPUXeon6226R(), 7)
	mt := NewMultiTuner(tasks, func() Engine { return NewRandom() }, cfg)
	var events []Progress
	mt.OnProgress = func(p Progress) { events = append(events, p) }
	mt.Run(budget)
	return events
}

// TestMultiTunerProgressWorkerInvariant pins the tentpole's determinism
// contract at the source: the progress event stream — every field, in order —
// is identical for workers=1 and workers=4.
func TestMultiTunerProgressWorkerInvariant(t *testing.T) {
	one := collectMultiProgress(t, 1, 160)
	four := collectMultiProgress(t, 4, 160)
	if len(one) == 0 {
		t.Fatal("no progress events emitted")
	}
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("progress streams diverge across worker counts:\nw1: %+v\nw4: %+v", one, four)
	}
}

// TestMultiTunerProgressCommitted checks every event reads committed,
// consistent state: trials are cumulative and monotone per task, allocations
// count the task's waves, and the wave index matches the barrier it was
// emitted at.
func TestMultiTunerProgressCommitted(t *testing.T) {
	events := collectMultiProgress(t, 3, 160)
	lastTaskTrials := map[int]int{}
	lastTotal := 0
	waves := map[int]bool{}
	for i, e := range events {
		if e.TaskTrials < lastTaskTrials[e.Task] {
			t.Fatalf("event %d: task %d trials went backwards (%d < %d)", i, e.Task, e.TaskTrials, lastTaskTrials[e.Task])
		}
		lastTaskTrials[e.Task] = e.TaskTrials
		if e.TotalTrials < lastTotal {
			t.Fatalf("event %d: total trials went backwards (%d < %d)", i, e.TotalTrials, lastTotal)
		}
		lastTotal = e.TotalTrials
		if e.TaskTrials > e.TotalTrials {
			t.Fatalf("event %d: task trials %d exceed total %d", i, e.TaskTrials, e.TotalTrials)
		}
		if e.Allocation < 1 {
			t.Fatalf("event %d: allocation %d < 1 after a wave", i, e.Allocation)
		}
		if e.CostSec <= 0 {
			t.Fatalf("event %d: no search cost accumulated", i)
		}
		waves[e.Wave] = true
	}
	for w := 0; w < len(waves); w++ {
		if !waves[w] {
			t.Fatalf("wave %d missing from the event stream (got %d distinct waves)", w, len(waves))
		}
	}
}

// TestTuneSessionProgress drives the serial operator loop and checks one
// event lands per round with the task's committed best.
func TestTuneSessionProgress(t *testing.T) {
	graphs := bertGraphs(t)
	tasks := NewTaskSet(graphs[:1], hardware.CPUXeon6226R(), 5)
	task := tasks[0]
	var events []Progress
	cancelled := TuneSession(context.Background(), NewRandom(), task, 64, 16, func(p Progress) {
		events = append(events, p)
	})
	if cancelled {
		t.Fatal("uncancelled run reported cancelled")
	}
	if len(events) != 4 {
		t.Fatalf("got %d events for 64 trials at 16 per round, want 4", len(events))
	}
	for i, e := range events {
		if e.Wave != i || e.Allocation != i+1 {
			t.Fatalf("event %d: wave=%d allocation=%d", i, e.Wave, e.Allocation)
		}
		if e.TaskTrials != e.TotalTrials {
			t.Fatalf("operator event %d: task trials %d != total %d", i, e.TaskTrials, e.TotalTrials)
		}
		if e.BestExec != e.RunBest {
			t.Fatalf("operator event %d: best %g != run objective %g", i, e.BestExec, e.RunBest)
		}
	}
	last := events[len(events)-1]
	if last.TaskTrials != task.Trials || last.BestExec != task.BestExec {
		t.Fatalf("final event %+v does not match committed task state (trials=%d best=%g)",
			last, task.Trials, task.BestExec)
	}
}

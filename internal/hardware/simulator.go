package hardware

import (
	"math"

	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/texpr"
	"harl/internal/xrand"
)

// Simulator maps a schedule to a deterministic execution time on a platform.
// The same schedule always yields the same time (texture included), so search
// results are exactly reproducible; per-measurement noise lives in Measurer.
// Exec and GFLOPS only read the platform description and the schedule, so a
// single Simulator may be shared by any number of concurrent workers.
type Simulator struct {
	Plat *Platform

	platHash uint64
}

// NewSimulator builds a simulator for the platform.
func NewSimulator(p *Platform) *Simulator {
	return &Simulator{Plat: p, platHash: hashString(p.Name)}
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Exec returns the modeled execution time in seconds of one run of the
// scheduled subgraph (all stages, fused or standalone).
func (sim *Simulator) Exec(s *schedule.Schedule) float64 {
	p := sim.Plat
	sk := s.Sk
	g := sk.Graph
	main := sk.MainStage()

	// ---- gather structural quantities of the tiled stage -------------------
	nAxes := len(s.SpatialTiles)
	prodLevel := func(level int) float64 {
		pr := 1.0
		for _, row := range s.SpatialTiles {
			pr *= float64(row[level])
		}
		return pr
	}
	n0, n1, n2, n3 := prodLevel(0), prodLevel(1), prodLevel(2), prodLevel(3)
	nR0, nR1 := 1.0, 1.0
	for _, row := range s.ReduceTiles {
		nR0 *= float64(row[0])
		nR1 *= float64(row[1])
	}
	totalPoints := n0 * n1 * n2 * n3 * nR0 * nR1

	// Fusion bookkeeping: inlined elementwise stages contribute FLOPs to the
	// tiled loop nest and avoid an intermediate-tensor round trip scaled by
	// the compute-at depth; standalone stages run as separate passes.
	caMax := sk.ComputeAtCandidates() - 1
	fuseEff := 0.0
	if caMax > 0 {
		fuseEff = float64(s.ComputeAt) / float64(caMax)
	}
	flops := main.FLOPs()
	extraMemTraffic := 0.0 // bytes added to the memory boundary
	standalone := 0.0      // seconds of separate stage passes
	for i, st := range g.Stages {
		if i == sk.Main {
			continue
		}
		switch sk.Decisions[i] {
		case sketch.Inlined:
			flops += st.FLOPs()
			// Unsaved intermediate traffic when the fusion point is shallow:
			// the producer's output is written and re-read at (1-fuseEff).
			inter := float64(main.OutputBytes())
			extraMemTraffic += 2 * inter * (1 - fuseEff)
		default:
			standalone += sim.standaloneStageTime(st)
		}
	}

	// ---- parallelism --------------------------------------------------------
	par := 1.0
	for a := 0; a < s.ParallelFuse && a < nAxes; a++ {
		par *= float64(s.SpatialTiles[a][0])
		if p.GPU {
			// GPU parallel hierarchy exposes the block and thread levels.
			par *= float64(s.SpatialTiles[a][1])
		}
	}
	rfCombine := 0.0
	if sk.RFactor && len(s.ReduceTiles) > 0 {
		r0 := float64(s.ReduceTiles[0][0])
		par *= r0
		// Cross-partial combine pass: one extra output-sized reduction.
		rfCombine = float64(main.OutputBytes())*r0/p.BWBytes[2] + p.LaunchOverheadSec
	}
	if par < 1 {
		par = 1
	}
	cores := float64(p.Cores)
	waves := math.Ceil(par / cores)
	speedup := par / waves
	if speedup < 1 {
		speedup = 1
	}
	usedCores := math.Min(par, cores)

	// ---- vectorization, registers, unrolling -------------------------------
	innermost := 1.0
	if nAxes > 0 {
		innermost = float64(s.SpatialTiles[nAxes-1][sketch.SpatialLevels-1])
	}
	vw := float64(p.VecWidth)
	vecEff := innermost / (math.Ceil(innermost/vw) * vw)

	microPoints := 1.0
	for _, row := range s.SpatialTiles {
		microPoints *= float64(row[sketch.SpatialLevels-1])
	}
	regPenalty := 1.0
	if microBytes := microPoints * 4; microBytes > 2048 {
		// Register spill: the micro-tile accumulator no longer fits the
		// architectural register file.
		regPenalty = math.Min(microBytes/2048, 12)
	}
	if main.HasDataReuse && microPoints < 8 {
		// FMA latency exposure: a tiny accumulator tile cannot hide the
		// multiply-add dependency chain.
		regPenalty *= math.Sqrt(8 / math.Max(microPoints, 1))
	}

	unrollDepth := 1.0
	if s.UnrollIdx < len(p.UnrollDepths) {
		if d := p.UnrollDepths[s.UnrollIdx]; d > 0 {
			unrollDepth = float64(d)
		}
	}
	innerIters := totalPoints / math.Max(1, innermost) * math.Ceil(innermost/vw)
	effUnroll := math.Min(unrollDepth, math.Max(1, nR1*microPoints))
	icachePenalty := 1 + math.Max(0, unrollDepth*math.Min(microPoints, 64)-4096)/32768

	// ---- roofline: compute vs per-boundary cache traffic --------------------
	tCompute := flops / (p.CoreFlops() * vecEff) * regPenalty * icachePenalty / speedup

	var tL1, tL2, tMem float64
	if main.HasDataReuse {
		sp3 := make([]int, nAxes)
		sp23 := make([]int, nAxes)
		sp123 := make([]int, nAxes)
		for a, row := range s.SpatialTiles {
			sp3[a] = row[3]
			sp23[a] = row[2] * row[3]
			sp123[a] = row[1] * row[2] * row[3]
		}
		red1 := make([]int, len(s.ReduceTiles))
		redF := make([]int, len(s.ReduceTiles))
		for r, row := range s.ReduceTiles {
			red1[r] = row[1]
			redF[r] = row[0] * row[1]
		}
		// Per-access traffic carries a cache-line waste factor: when the tile
		// extent of the tensor's contiguous (last) dimension is small, whole
		// 64-byte lines are fetched for a few useful elements. Footprints
		// (for capacity checks) use the raw bytes; traffic uses the inflated
		// bytes. This is what makes tile *shape*, not just tile volume,
		// matter per tensor.
		// Spatial axes whose outer split feeds the parallel loop: accesses
		// touching them have a distinct footprint per concurrent chunk, while
		// accesses independent of them (e.g. the B matrix when only the rows
		// of a GEMM are parallelized) are shared across cores in the LLC.
		privAxis := make([]bool, nAxes)
		for a := 0; a < s.ParallelFuse && a < nAxes; a++ {
			if s.SpatialTiles[a][0] > 1 || (p.GPU && s.SpatialTiles[a][1] > 1) {
				privAxis[a] = true
			}
		}
		in1, in2, in3 := 0.0, 0.0, 0.0
		fp1, fp2, fp3 := 0.0, 0.0, 0.0
		fp3Shared := 0.0
		for _, acc := range main.Inputs {
			b1 := float64(main.AccessTileBytes(acc, sp3, red1))
			b2 := float64(main.AccessTileBytes(acc, sp23, red1))
			b3 := float64(main.AccessTileBytes(acc, sp123, redF))
			fp1 += b1
			fp2 += b2
			fp3 += b3
			if !accessTouches(acc, privAxis) {
				fp3Shared += b3
			}
			t1, f1 := lastDim(main, acc, sp3, red1)
			t2, f2 := lastDim(main, acc, sp23, red1)
			t3, f3 := lastDim(main, acc, sp123, redF)
			in1 += b1 * lineWaste(t1, f1)
			in2 += b2 * lineWaste(t2, f2)
			in3 += b3 * lineWaste(t3, f3)
		}
		out1, out2, out3 := tileBytes(sp3), tileBytes(sp23), tileBytes(sp123)
		lastFull := float64(main.Spatial[nAxes-1].Extent)
		outW1 := out1 * lineWaste(float64(sp3[nAxes-1]), lastFull)
		outW2 := out2 * lineWaste(float64(sp23[nAxes-1]), lastFull)
		outW3 := out3 * lineWaste(float64(sp123[nAxes-1]), lastFull)

		// Cache write keeps the accumulating output tile resident, removing
		// most of its inner-boundary traffic when composed deep enough.
		cw := 1.0
		if sk.CacheWrite {
			cw = 1 - 0.7*fuseEff
		}
		w1 := fp1 + out1
		w2 := fp2 + out2
		w3 := fp3 + out3

		loads1 := n0 * n1 * nR0 * n2
		loads2 := n0 * n1 * nR0
		loads3 := n0

		traffic1 := loads1 * (in1 + outW1*cw)
		traffic2 := loads2 * (in2 + outW2*cw)
		traffic3 := loads3*(in3+outW3) + extraMemTraffic

		// Capacity spills push traffic outward; overflowing a level by k×
		// forces roughly k× refills of the level below. The last level is
		// shared: every concurrent chunk's private footprint resides at once.
		if w1 > p.CacheBytes[0] {
			traffic2 *= math.Min(w1/p.CacheBytes[0], 48)
		}
		if w2 > p.CacheBytes[1] {
			traffic3 *= math.Min(w2/p.CacheBytes[1], 48)
		}
		w3Agg := (w3-fp3Shared)*usedCores + fp3Shared
		if w3Agg > p.CacheBytes[2] {
			traffic3 *= math.Min(w3Agg/p.CacheBytes[2], 16)
		}

		tL1 = traffic1 / (p.BWBytes[0] * usedCores)
		tL2 = traffic2 / p.BWBytes[1]
		tMem = traffic3 / p.BWBytes[2]
	} else {
		// Streaming stage: every input and the output cross memory once.
		bytes := float64(main.InputBytes()+main.OutputBytes()) + extraMemTraffic
		tMem = bytes / p.BWBytes[2]
	}

	loopOvh := innerIters * p.LoopOverheadSec / effUnroll / speedup
	spawn := par*p.SpawnOverheadSec + p.LaunchOverheadSec

	// Compose the roofline terms with a generalized mean rather than a hard
	// max: real machines overlap compute and memory imperfectly, so easing
	// pressure on a non-critical resource still helps a little. This keeps a
	// useful gradient past the compute-bound knee.
	t := pnorm(tCompute, tL1, tL2, tMem) + loopOvh + spawn + rfCombine + standalone

	// Deterministic landscape texture.
	tex := 1 + p.TextureAmp*(2*xrand.HashUnit(s.Key(), sim.platHash)-1)
	t *= tex
	if t < 1e-7 {
		t = 1e-7
	}
	return t
}

// accessTouches reports whether the access indexes any spatial axis marked
// private to a parallel chunk.
func accessTouches(acc texpr.Access, privAxis []bool) bool {
	for _, d := range acc.Dims {
		if !d.Reduce && privAxis[d.Iter] {
			return true
		}
	}
	return false
}

// lineWaste returns the traffic inflation of a strided access whose
// contiguous-dimension tile extent covers only part of a 64-byte cache line.
// The waste is measured against the dimension's full extent: a dimension that
// is short in the tensor itself (e.g. a 3-wide convolution kernel) is packed
// contiguously by layout and carries no schedule-attributable waste.
func lineWaste(tileExtent, fullExtent float64) float64 {
	limit := math.Min(fullExtent*4, 64)
	useful := tileExtent * 4
	if useful >= limit {
		return 1
	}
	if useful < 4 {
		useful = 4
	}
	return limit / useful
}

// lastDim returns the tile extent and full extent of an access's last
// (contiguous) dimension under the given tile scope.
func lastDim(st *texpr.Stage, acc texpr.Access, spTile, redTile []int) (tile, full float64) {
	if len(acc.Dims) == 0 {
		return 64, 64
	}
	d := acc.Dims[len(acc.Dims)-1]
	if d.Reduce {
		return float64(redTile[d.Iter]), float64(st.Reduce[d.Iter].Extent)
	}
	return float64(spTile[d.Iter]), float64(st.Spatial[d.Iter].Extent)
}

// pnorm is the p-generalized mean composition of roofline terms (p = 2.5
// sits between additive and hard-max resource models).
func pnorm(terms ...float64) float64 {
	const p = 2.5
	s := 0.0
	for _, t := range terms {
		if t > 0 {
			s += math.Pow(t, p)
		}
	}
	return math.Pow(s, 1/p)
}

func tileBytes(tile []int) float64 {
	b := 4.0
	for _, e := range tile {
		b *= float64(e)
	}
	return b
}

// standaloneStageTime models an unfused auxiliary stage (elementwise pass,
// pooling, softmax normalization) as a bandwidth/compute-bound streaming loop
// parallelized across all cores.
func (sim *Simulator) standaloneStageTime(st *texpr.Stage) float64 {
	p := sim.Plat
	bytes := float64(st.InputBytes() + st.OutputBytes())
	tMem := bytes / p.BWBytes[2]
	tComp := st.FLOPs() / (p.PeakFlops() * 0.5) // scalar-ish epilogue code
	return math.Max(tMem, tComp) + p.LaunchOverheadSec
}

// GFLOPS returns the achieved throughput of a schedule in GFLOP/s — the
// "performance" (inverse execution time) metric of the paper, scaled by work.
func (sim *Simulator) GFLOPS(s *schedule.Schedule) float64 {
	return s.Sk.Graph.FLOPs() / sim.Exec(s) / 1e9
}

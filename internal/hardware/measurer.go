package hardware

import (
	"math"
	"sync"

	"harl/internal/schedule"
	"harl/internal/xrand"
)

// Search-computation cost constants (seconds of simulated tuner time). They
// give the search-time accounting realistic proportions: a hardware
// measurement costs seconds (compile + r_min repeats), one cost-model query
// costs tens of microseconds, and one RL forward/backward step costs a
// fraction of a millisecond.
const (
	// DefaultCompileSec is the per-trial program build + upload overhead.
	DefaultCompileSec = 1.2
	// DefaultRepeatMinSec is r_min from Table 5: a schedule is re-executed
	// until at least this much wall-clock has been spent measuring it.
	DefaultRepeatMinSec = 1.0
	// CostModelQuerySec is one cost-model prediction including candidate
	// feature extraction (feature extraction dominates in TVM-class systems).
	CostModelQuerySec = 1e-3
	// RLStepSec is one actor-critic forward pass for one track, including
	// state featurization and environment application.
	RLStepSec = 9e-3
	// RLTrainSec is one PPO update on a minibatch.
	RLTrainSec = 2e-3
	// EvoStepSec is one evolutionary mutation + bookkeeping.
	EvoStepSec = 5e-6
)

// Measurer is the simulated measurement harness shared by all search engines.
// It adds seeded Gaussian noise to the simulator's deterministic time,
// applies the paper's repeat rule (r_min), and accounts the total simulated
// search time (measurement cost plus search-computation cost reported by the
// engines), which is the "search time" metric of Figures 6 and 9.
//
// Concurrency: the Measurer is safe for parallel use. Noise is not drawn from
// a sequential stream but derived by hashing (schedule key, per-schedule
// repetition index, measurer seed), so the measured value of a schedule does
// not depend on how many other schedules were measured before it or on which
// goroutine measured it. The mutable bookkeeping (trial count, cost budget,
// best-so-far logs) is mutex-protected and appended in Commit order; callers
// that need bit-exact logs across worker counts (see search.ParallelPool)
// compute NoisyExec concurrently and Commit in a deterministic order.
type Measurer struct {
	Sim *Simulator

	CompileSec   float64
	RepeatMinSec float64

	mu        sync.Mutex
	noiseSeed uint64
	noiseSeq  map[uint64]uint64 // per-schedule-key measurement count
	trials    int
	costSec   float64
	cmQueries int64 // cost-model queries, charged at CostModelQuerySec each
	bestExec  float64
	execLog   []float64 // best-so-far exec time after each trial
	costLog   []float64 // cumulative search seconds after each trial
}

// NewMeasurer builds a measurer over the simulator with an independent noise
// seed drawn from the RNG.
func NewMeasurer(sim *Simulator, rng *xrand.RNG) *Measurer {
	return &Measurer{
		Sim:          sim,
		CompileSec:   DefaultCompileSec,
		RepeatMinSec: DefaultRepeatMinSec,
		noiseSeed:    rng.Uint64(),
		noiseSeq:     make(map[uint64]uint64),
		bestExec:     math.Inf(1),
	}
}

// ReserveSeq claims the next repetition index for the schedule key. Repeated
// measurements of the same schedule get fresh noise draws while distinct
// schedules stay order-independent. Safe for concurrent use.
func (m *Measurer) ReserveSeq(key uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	seq := m.noiseSeq[key]
	m.noiseSeq[key] = seq + 1
	return seq
}

// NoisyExec returns the noisy measured execution time of one trial of the
// schedule at the given repetition index. It reads no mutable state, so any
// number of goroutines may evaluate trials concurrently; the result depends
// only on (schedule, seq, measurer seed).
func (m *Measurer) NoisyExec(s *schedule.Schedule, seq uint64) float64 {
	return NoisyExecSeeded(m.Sim, s, m.noiseSeed, seq)
}

// NoisyExecSeeded is the measurement function itself, factored free of the
// Measurer's bookkeeping: the noisy execution time of one trial as a pure
// function of (simulator, schedule, noise seed, repetition index). It is the
// quantity a remote measurement worker reproduces bit-exactly from the wire
// protocol's (subgraph, target, seed, steps, seq) — the foundation of the
// fleet's byte-identical-journal contract (see internal/fleet).
func NoisyExecSeeded(sim *Simulator, s *schedule.Schedule, seed, seq uint64) float64 {
	exec := sim.Exec(s)
	noisy := exec * (1 + sim.Plat.NoiseAmp*noiseAt(s.Key(), seed, seq))
	if noisy < 1e-8 {
		noisy = 1e-8
	}
	return noisy
}

// NoiseSeed returns the measurer's noise seed — shipped to remote measurement
// workers so they draw the same per-trial noise this measurer would.
func (m *Measurer) NoiseSeed() uint64 { return m.noiseSeed }

// noiseAt maps (key, seed, seq) to a standard normal variate via Box-Muller
// on two hash-derived uniforms.
func noiseAt(key, seed, seq uint64) float64 {
	u1 := xrand.HashUnit(key, seed, seq, 0x6d656173757265)
	u2 := xrand.HashUnit(key, seed, seq, 0x6e6f697365)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Commit records one completed trial: it charges the measurement cost
// (compile + r_min repeats) to the search-time budget and appends to the
// best-so-far logs. Log order is the Commit call order.
func (m *Measurer) Commit(noisy float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	repeats := math.Max(3, math.Ceil(m.RepeatMinSec/noisy))
	m.costSec += m.CompileSec + repeats*noisy
	m.trials++
	if noisy < m.bestExec {
		m.bestExec = noisy
	}
	m.execLog = append(m.execLog, m.bestExec)
	m.costLog = append(m.costLog, m.costSecLocked())
}

// Measure runs one hardware trial: it returns the noisy measured execution
// time in seconds and charges the measurement cost to the search-time budget.
func (m *Measurer) Measure(s *schedule.Schedule) float64 {
	noisy := m.NoisyExec(s, m.ReserveSeq(s.Key()))
	m.Commit(noisy)
	return noisy
}

// AddSearchCost charges non-measurement tuner computation to the budget.
func (m *Measurer) AddSearchCost(sec float64) {
	m.mu.Lock()
	m.costSec += sec
	m.mu.Unlock()
}

// AddCostModelQueries charges n cost-model predictions. Queries are counted
// as an integer and priced at CostModelQuerySec when the budget is read, so
// the accounted total is independent of summation order under concurrency.
func (m *Measurer) AddCostModelQueries(n int) {
	m.mu.Lock()
	m.cmQueries += int64(n)
	m.mu.Unlock()
}

func (m *Measurer) costSecLocked() float64 {
	return m.costSec + float64(m.cmQueries)*CostModelQuerySec
}

// Trials returns the number of hardware measurements performed.
func (m *Measurer) Trials() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.trials
}

// CostSec returns the total simulated search time so far.
func (m *Measurer) CostSec() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.costSecLocked()
}

// BestExec returns the best measured execution time so far (+Inf if none).
func (m *Measurer) BestExec() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bestExec
}

// BestLog returns the best-so-far execution time after each trial. The slice
// is live; read it only after measurement activity has quiesced.
func (m *Measurer) BestLog() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.execLog
}

// CostLog returns the cumulative search time after each trial (same caveat
// as BestLog).
func (m *Measurer) CostLog() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.costLog
}

// TimeToReach returns the simulated search seconds spent until the best
// measured execution time first dropped to target or below, and whether the
// target was reached at all. With no trials recorded it returns the current
// cost budget (0 for a fresh measurer) and false.
func (m *Measurer) TimeToReach(target float64) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range m.execLog {
		if e <= target {
			return m.costLog[i], true
		}
	}
	return m.costSecLocked(), false
}

// TrialsToReach returns the number of trials until the best measured time
// first reached target, and whether it was reached.
func (m *Measurer) TrialsToReach(target float64) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, e := range m.execLog {
		if e <= target {
			return i + 1, true
		}
	}
	return m.trials, false
}

package hardware

import (
	"math"

	"harl/internal/schedule"
	"harl/internal/xrand"
)

// Search-computation cost constants (seconds of simulated tuner time). They
// give the search-time accounting realistic proportions: a hardware
// measurement costs seconds (compile + r_min repeats), one cost-model query
// costs tens of microseconds, and one RL forward/backward step costs a
// fraction of a millisecond.
const (
	// DefaultCompileSec is the per-trial program build + upload overhead.
	DefaultCompileSec = 1.2
	// DefaultRepeatMinSec is r_min from Table 5: a schedule is re-executed
	// until at least this much wall-clock has been spent measuring it.
	DefaultRepeatMinSec = 1.0
	// CostModelQuerySec is one cost-model prediction including candidate
	// feature extraction (feature extraction dominates in TVM-class systems).
	CostModelQuerySec = 1e-3
	// RLStepSec is one actor-critic forward pass for one track, including
	// state featurization and environment application.
	RLStepSec = 9e-3
	// RLTrainSec is one PPO update on a minibatch.
	RLTrainSec = 2e-3
	// EvoStepSec is one evolutionary mutation + bookkeeping.
	EvoStepSec = 5e-6
)

// Measurer is the simulated measurement harness shared by all search engines.
// It adds seeded Gaussian noise to the simulator's deterministic time,
// applies the paper's repeat rule (r_min), and accounts the total simulated
// search time (measurement cost plus search-computation cost reported by the
// engines), which is the "search time" metric of Figures 6 and 9.
type Measurer struct {
	Sim *Simulator
	RNG *xrand.RNG

	CompileSec   float64
	RepeatMinSec float64

	trials   int
	costSec  float64
	bestExec float64
	execLog  []float64 // best-so-far exec time after each trial
	costLog  []float64 // cumulative search seconds after each trial
}

// NewMeasurer builds a measurer over the simulator with an independent noise
// stream.
func NewMeasurer(sim *Simulator, rng *xrand.RNG) *Measurer {
	return &Measurer{
		Sim:          sim,
		RNG:          rng,
		CompileSec:   DefaultCompileSec,
		RepeatMinSec: DefaultRepeatMinSec,
		bestExec:     math.Inf(1),
	}
}

// Measure runs one hardware trial: it returns the noisy measured execution
// time in seconds and charges the measurement cost to the search-time budget.
func (m *Measurer) Measure(s *schedule.Schedule) float64 {
	exec := m.Sim.Exec(s)
	noisy := exec * (1 + m.Sim.Plat.NoiseAmp*m.RNG.NormFloat64())
	if noisy < 1e-8 {
		noisy = 1e-8
	}
	repeats := math.Max(3, math.Ceil(m.RepeatMinSec/noisy))
	m.costSec += m.CompileSec + repeats*noisy
	m.trials++
	if noisy < m.bestExec {
		m.bestExec = noisy
	}
	m.execLog = append(m.execLog, m.bestExec)
	m.costLog = append(m.costLog, m.costSec)
	return noisy
}

// AddSearchCost charges non-measurement tuner computation to the budget.
func (m *Measurer) AddSearchCost(sec float64) { m.costSec += sec }

// Trials returns the number of hardware measurements performed.
func (m *Measurer) Trials() int { return m.trials }

// CostSec returns the total simulated search time so far.
func (m *Measurer) CostSec() float64 { return m.costSec }

// BestExec returns the best measured execution time so far (+Inf if none).
func (m *Measurer) BestExec() float64 { return m.bestExec }

// BestLog returns the best-so-far execution time after each trial.
func (m *Measurer) BestLog() []float64 { return m.execLog }

// CostLog returns the cumulative search time after each trial.
func (m *Measurer) CostLog() []float64 { return m.costLog }

// TimeToReach returns the simulated search seconds spent until the best
// measured execution time first dropped to target or below, and whether the
// target was reached at all.
func (m *Measurer) TimeToReach(target float64) (float64, bool) {
	for i, e := range m.execLog {
		if e <= target {
			return m.costLog[i], true
		}
	}
	return m.costSec, false
}

// TrialsToReach returns the number of trials until the best measured time
// first reached target, and whether it was reached.
func (m *Measurer) TrialsToReach(target float64) (int, bool) {
	for i, e := range m.execLog {
		if e <= target {
			return i + 1, true
		}
	}
	return m.trials, false
}

package hardware

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/workload"
	"harl/internal/xrand"
)

func TestPlatformPeaks(t *testing.T) {
	cpu := CPUXeon6226R()
	// 32 cores × 16 lanes × 2 flops × 2.9 GHz ≈ 2.97 TFLOP/s.
	if p := cpu.PeakFlops(); math.Abs(p-2.97e12) > 0.05e12 {
		t.Fatalf("cpu peak %g", p)
	}
	gpu := GPURTX3090()
	// RTX 3090 class: ~35 TFLOP/s fp32.
	if p := gpu.PeakFlops(); p < 30e12 || p > 40e12 {
		t.Fatalf("gpu peak %g", p)
	}
	if !gpu.GPU || cpu.GPU {
		t.Fatal("GPU flags wrong")
	}
}

func TestByName(t *testing.T) {
	if ByName("cpu") == nil || ByName("gpu") == nil {
		t.Fatal("cpu/gpu must resolve")
	}
	if ByName("tpu") != nil {
		t.Fatal("unknown platform must be nil")
	}
}

func TestUnrollDepths(t *testing.T) {
	// Appendix A.1: CPU {0,16,64,512}, GPU {0,16,64,512,1024}.
	cpu, gpu := CPUXeon6226R(), GPURTX3090()
	if len(cpu.UnrollDepths) != 4 || cpu.UnrollDepths[3] != 512 {
		t.Fatalf("cpu unroll %v", cpu.UnrollDepths)
	}
	if len(gpu.UnrollDepths) != 5 || gpu.UnrollDepths[4] != 1024 {
		t.Fatalf("gpu unroll %v", gpu.UnrollDepths)
	}
}

func randSchedule(rng *xrand.RNG) *schedule.Schedule {
	g := workload.GEMM("g", 1, 512, 512, 512)
	sks := sketch.Generate(g)
	return schedule.NewRandom(sks[rng.Intn(len(sks))], 4, rng)
}

func TestExecDeterministic(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(1)
	for i := 0; i < 50; i++ {
		s := randSchedule(rng)
		if sim.Exec(s) != sim.Exec(s) {
			t.Fatal("Exec not deterministic")
		}
	}
}

func TestExecPositiveFinite(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(2)
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randSchedule(r)
		e := sim.Exec(s)
		return e > 0 && !math.IsInf(e, 0) && !math.IsNaN(e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = rng
}

func TestExecRespectsWork(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(3)
	small := workload.GEMM("s", 1, 128, 128, 128)
	large := workload.GEMM("l", 1, 1024, 1024, 1024)
	bestSmall, bestLarge := math.Inf(1), math.Inf(1)
	for i := 0; i < 3000; i++ {
		ss := schedule.NewRandom(sketch.Generate(small)[0], 4, rng)
		sl := schedule.NewRandom(sketch.Generate(large)[0], 4, rng)
		bestSmall = math.Min(bestSmall, sim.Exec(ss))
		bestLarge = math.Min(bestLarge, sim.Exec(sl))
	}
	// 512× more FLOPs should take much longer even at best.
	if bestLarge < 20*bestSmall {
		t.Fatalf("large gemm %.3g vs small %.3g: work not respected", bestLarge, bestSmall)
	}
}

func TestExecNeverBelowComputeBound(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(4)
	g := workload.GEMM("g", 1, 1024, 1024, 1024)
	lower := g.FLOPs() / sim.Plat.PeakFlops() * (1 - sim.Plat.TextureAmp) * 0.99
	for i := 0; i < 3000; i++ {
		s := schedule.NewRandom(sketch.Generate(g)[0], 4, rng)
		if e := sim.Exec(s); e < lower {
			t.Fatalf("exec %.3g below compute roofline %.3g", e, lower)
		}
	}
}

func TestParallelismHelps(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(5)
	g := workload.GEMM("g", 1, 1024, 1024, 1024)
	s := schedule.NewRandom(sketch.Generate(g)[0], 4, rng)
	// A deliberately serial variant vs a 64-chunk parallel variant.
	s.SpatialTiles[0] = []int{8, 4, 8, 4}
	s.SpatialTiles[1] = []int{8, 2, 4, 16}
	s.ReduceTiles[0] = []int{64, 16}
	serial := s.Clone()
	serial.ParallelFuse = 0
	parallel := s.Clone()
	parallel.ParallelFuse = 2
	if sim.Exec(parallel) >= sim.Exec(serial) {
		t.Fatal("64-way parallelism should beat serial execution")
	}
}

func TestVectorizationHelps(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(6)
	g := workload.GEMM("g", 1, 1024, 1024, 1024)
	s := schedule.NewRandom(sketch.Generate(g)[0], 4, rng)
	s.ParallelFuse = 2
	s.SpatialTiles[0] = []int{32, 4, 8, 1}
	s.ReduceTiles[0] = []int{64, 16}
	vec := s.Clone()
	vec.SpatialTiles[1] = []int{32, 2, 1, 16} // innermost 16 = vector width
	scalar := s.Clone()
	scalar.SpatialTiles[1] = []int{32, 16, 2, 1} // innermost 1
	if sim.Exec(vec) >= sim.Exec(scalar) {
		t.Fatal("vector-width innermost loop should beat scalar innermost")
	}
}

func TestTextureIsBounded(t *testing.T) {
	plat := CPUXeon6226R()
	simA := NewSimulator(plat)
	rng := xrand.New(7)
	s := randSchedule(rng)
	base := simA.Exec(s)
	// A texture-free platform gives the analytical time; the textured value
	// must stay within the configured amplitude.
	plain := *plat
	plain.TextureAmp = 0
	simB := NewSimulator(&plain)
	analytic := simB.Exec(s)
	if math.Abs(base-analytic)/analytic > plat.TextureAmp+1e-9 {
		t.Fatalf("texture out of bounds: %g vs %g", base, analytic)
	}
}

func TestGPUFasterOnBigGEMM(t *testing.T) {
	rng := xrand.New(8)
	g := workload.GEMM("g", 1, 1024, 1024, 1024)
	cpu, gpu := NewSimulator(CPUXeon6226R()), NewSimulator(GPURTX3090())
	bestCPU, bestGPU := math.Inf(1), math.Inf(1)
	for i := 0; i < 4000; i++ {
		sc := schedule.NewRandom(sketch.Generate(g)[0], 4, rng)
		sg := schedule.NewRandom(sketch.Generate(g)[0], 5, rng)
		bestCPU = math.Min(bestCPU, cpu.Exec(sc))
		bestGPU = math.Min(bestGPU, gpu.Exec(sg))
	}
	if bestGPU >= bestCPU {
		t.Fatalf("gpu best %.3g should beat cpu best %.3g on 1024³ GEMM", bestGPU, bestCPU)
	}
}

func TestGFLOPSConsistent(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(9)
	g := workload.GEMM("g", 1, 512, 512, 512)
	s := schedule.NewRandom(sketch.Generate(g)[0], 4, rng)
	gf := sim.GFLOPS(s)
	if want := g.FLOPs() / sim.Exec(s) / 1e9; math.Abs(gf-want) > 1e-9 {
		t.Fatalf("GFLOPS %.3f want %.3f", gf, want)
	}
}

func TestMeasurerNoiseAndAccounting(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(10)
	m := NewMeasurer(sim, rng.Split())
	s := randSchedule(rng)
	exact := sim.Exec(s)
	var devs float64
	for i := 0; i < 50; i++ {
		noisy := m.Measure(s)
		devs += math.Abs(noisy-exact) / exact
		if noisy <= 0 {
			t.Fatal("non-positive measurement")
		}
	}
	if m.Trials() != 50 {
		t.Fatalf("trials %d", m.Trials())
	}
	// Noise should be small but non-zero on average.
	avg := devs / 50
	if avg == 0 || avg > 0.05 {
		t.Fatalf("noise average %.4f out of expected band", avg)
	}
	// Each measurement costs at least compile + r_min of repeats.
	if m.CostSec() < 50*(m.CompileSec) {
		t.Fatalf("cost %.1f too small", m.CostSec())
	}
	if len(m.BestLog()) != 50 || len(m.CostLog()) != 50 {
		t.Fatal("logs not recorded per trial")
	}
}

func TestMeasurerBestLogMonotone(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(11)
	m := NewMeasurer(sim, rng.Split())
	for i := 0; i < 100; i++ {
		m.Measure(randSchedule(rng))
	}
	log := m.BestLog()
	for i := 1; i < len(log); i++ {
		if log[i] > log[i-1] {
			t.Fatal("best log must be non-increasing")
		}
	}
	cost := m.CostLog()
	for i := 1; i < len(cost); i++ {
		if cost[i] < cost[i-1] {
			t.Fatal("cost log must be non-decreasing")
		}
	}
}

func TestTimeToReach(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(12)
	m := NewMeasurer(sim, rng.Split())
	for i := 0; i < 60; i++ {
		m.Measure(randSchedule(rng))
	}
	best := m.BestExec()
	sec, ok := m.TimeToReach(best)
	if !ok || sec <= 0 || sec > m.CostSec() {
		t.Fatalf("TimeToReach(best) = %f, %v", sec, ok)
	}
	if _, ok := m.TimeToReach(best / 100); ok {
		t.Fatal("unreachable target reported reached")
	}
	n, ok := m.TrialsToReach(best)
	if !ok || n < 1 || n > 60 {
		t.Fatalf("TrialsToReach %d %v", n, ok)
	}
}

func TestAddSearchCost(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	m := NewMeasurer(sim, xrand.New(1))
	m.AddSearchCost(2.5)
	if m.CostSec() != 2.5 {
		t.Fatalf("cost %.2f", m.CostSec())
	}
}

func TestFusionBeatsUnfused(t *testing.T) {
	// A conv+relu subgraph: the fused sketch at the deepest compute-at
	// position should beat the unfused variant with identical tiles.
	g := workload.Conv2DReLU("c", 1, 1, 56, 56, 64, 64, 3, 1, 1)
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(13)
	var fusedSk, unfusedSk *sketch.Sketch
	for _, sk := range sketch.Generate(g) {
		if sk.RFactor {
			continue
		}
		if sk.Decisions[sk.Main] == sketch.TiledFused {
			fusedSk = sk
		} else {
			unfusedSk = sk
		}
	}
	if fusedSk == nil || unfusedSk == nil {
		t.Skip("sketch set lacks fused/unfused pair")
	}
	// Paired comparison over identical tile configurations. Fusion helps
	// exactly when the tiled loop is efficient (the inlined epilogue inherits
	// the loop's vectorization and parallelism), so compare the best pair —
	// the regime an auto-scheduler actually operates in.
	bestFused, bestUnfused := math.Inf(1), math.Inf(1)
	for i := 0; i < 4000; i++ {
		sf := schedule.NewRandom(fusedSk, 4, rng)
		sf.ComputeAt = fusedSk.ComputeAtCandidates() - 1
		su := sf.Clone()
		su.Sk = unfusedSk
		su.ComputeAt = 0
		bestFused = math.Min(bestFused, sim.Exec(sf))
		bestUnfused = math.Min(bestUnfused, sim.Exec(su))
	}
	if bestFused >= bestUnfused {
		t.Fatalf("fusion should win at the top: fused %.3g vs unfused %.3g", bestFused, bestUnfused)
	}
}

func TestTimeToReachEdgeCases(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	m := NewMeasurer(sim, xrand.New(11))

	// Empty log: nothing has been measured, nothing is reachable.
	if sec, ok := m.TimeToReach(1e9); ok || sec != 0 {
		t.Fatalf("empty log TimeToReach = (%v, %v)", sec, ok)
	}
	if n, ok := m.TrialsToReach(1e9); ok || n != 0 {
		t.Fatalf("empty log TrialsToReach = (%v, %v)", n, ok)
	}

	rng := xrand.New(12)
	for i := 0; i < 10; i++ {
		m.Measure(randSchedule(rng))
	}

	// Unreachable target: report the full budget/trial count and false.
	if sec, ok := m.TimeToReach(0); ok || sec != m.CostSec() {
		t.Fatalf("unreachable TimeToReach = (%v, %v), cost %v", sec, ok, m.CostSec())
	}
	if n, ok := m.TrialsToReach(0); ok || n != m.Trials() {
		t.Fatalf("unreachable TrialsToReach = (%v, %v)", n, ok)
	}

	// Exact-hit target: the final best value is reached at the trial where
	// the best log first attains it, not at the end.
	best := m.BestExec()
	firstIdx := -1
	for i, e := range m.BestLog() {
		if e <= best {
			firstIdx = i
			break
		}
	}
	sec, ok := m.TimeToReach(best)
	if !ok || sec != m.CostLog()[firstIdx] {
		t.Fatalf("exact-hit TimeToReach = (%v, %v), want (%v, true)", sec, ok, m.CostLog()[firstIdx])
	}
	if n, ok := m.TrialsToReach(best); !ok || n != firstIdx+1 {
		t.Fatalf("exact-hit TrialsToReach = (%v, %v), want (%d, true)", n, ok, firstIdx+1)
	}
}

// Measurement noise is derived per (schedule, repetition), so the measured
// value of a schedule does not depend on what was measured before it —
// the property that makes parallel measurement order-independent.
func TestMeasurerNoiseOrderIndependent(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(13)
	a, b := randSchedule(rng), randSchedule(rng)
	if a.Key() == b.Key() {
		t.Fatal("want distinct schedules")
	}
	m1 := NewMeasurer(sim, xrand.New(99))
	m2 := NewMeasurer(sim, xrand.New(99))
	a1, b1 := m1.Measure(a), m1.Measure(b)
	b2, a2 := m2.Measure(b), m2.Measure(a) // reversed order
	if a1 != a2 || b1 != b2 {
		t.Fatalf("measurement order changed values: a %v/%v b %v/%v", a1, a2, b1, b2)
	}
	// Re-measuring the same schedule draws fresh noise (repetition index).
	if again := m1.Measure(a); again == a1 {
		t.Fatal("repeated measurement must redraw noise")
	}
	// A different measurer seed gives a different noise stream.
	m3 := NewMeasurer(sim, xrand.New(100))
	if m3.Measure(a) == a1 {
		t.Fatal("noise must depend on the measurer seed")
	}
}

// The split reserve/evaluate/commit API used by parallel batches must agree
// with the one-shot Measure path.
func TestMeasurerSplitAPIMatchesMeasure(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	rng := xrand.New(14)
	s := randSchedule(rng)
	m1 := NewMeasurer(sim, xrand.New(7))
	m2 := NewMeasurer(sim, xrand.New(7))
	want := m1.Measure(s)
	noisy := m2.NoisyExec(s, m2.ReserveSeq(s.Key()))
	m2.Commit(noisy)
	if noisy != want {
		t.Fatalf("split API %v vs Measure %v", noisy, want)
	}
	if m1.CostSec() != m2.CostSec() || m1.Trials() != m2.Trials() {
		t.Fatal("accounting diverged between split and one-shot paths")
	}
}

// Concurrent measurement, cost charging and reads must be race-free (run
// under -race) and lose no trials.
func TestMeasurerConcurrentUse(t *testing.T) {
	sim := NewSimulator(CPUXeon6226R())
	m := NewMeasurer(sim, xrand.New(15))
	const workers, each = 8, 25
	scheds := make([]*schedule.Schedule, workers*each)
	rng := xrand.New(16)
	for i := range scheds {
		scheds[i] = randSchedule(rng)
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Measure(scheds[w*each+i])
				m.AddSearchCost(1e-6)
				m.AddCostModelQueries(2)
				_ = m.BestExec()
				_, _ = m.TrialsToReach(0)
			}
		}(w)
	}
	wg.Wait()
	if m.Trials() != workers*each {
		t.Fatalf("lost trials: %d of %d", m.Trials(), workers*each)
	}
	if len(m.BestLog()) != workers*each || len(m.CostLog()) != workers*each {
		t.Fatal("log lengths wrong after concurrent use")
	}
}

// Package hardware provides the measurement substrate of the HARL
// reproduction: parametric models of the paper's two evaluation platforms
// (an Intel Xeon 6226R-class CPU and an NVIDIA RTX 3090-class GPU), an
// analytical performance simulator that maps a schedule to a deterministic
// execution time, and a Measurer that adds seeded measurement noise and
// accounts simulated search time (compile overhead, repeat rule r_min,
// search-computation cost).
//
// The simulator is the substitution for real hardware (see DESIGN.md): its
// role is not absolute accuracy but a performance landscape with the same
// structure real hardware exhibits — multi-level cache reuse rewards balanced
// tile pyramids, vector units reward aligned innermost loops, parallel
// speedup saturates at the core count and suffers from load imbalance and
// spawn overhead, unrolling trades loop overhead against instruction-cache
// pressure, and operator fusion removes intermediate-tensor traffic. A
// deterministic hash-based "texture" term adds the measurement ruggedness
// that makes purely greedy search wasteful (the paper's Observations 1-2).
package hardware

// Platform describes one execution target of the auto-scheduler.
type Platform struct {
	Name string
	GPU  bool

	// Cores is the number of independent parallel execution contexts
	// (physical cores for the CPU; SM sub-partitions for the GPU).
	Cores int
	// VecWidth is the fp32 SIMD width (AVX-512 lanes / warp lanes).
	VecWidth int
	// FlopsPerLane is FLOPs per cycle per lane (2 with FMA).
	FlopsPerLane float64
	// ClockGHz is the sustained clock.
	ClockGHz float64

	// CacheBytes holds the capacities of the three modeled cache scopes:
	// [0] innermost per-core (L1 / GPU shared memory),
	// [1] mid-level per-core (L2 / GPU L1+register file budget),
	// [2] last-level shared (L3 / GPU L2).
	CacheBytes [3]float64
	// BWBytes holds the bandwidths feeding each boundary in bytes/sec:
	// [0] L2→L1 per core, [1] LLC→L2 shared, [2] memory→LLC shared.
	BWBytes [3]float64

	// SpawnOverheadSec is the cost of dispatching one parallel chunk.
	SpawnOverheadSec float64
	// LaunchOverheadSec is a fixed per-execution cost (kernel launch /
	// parallel-region entry).
	LaunchOverheadSec float64
	// LoopOverheadSec is the branch/bookkeeping cost per innermost iteration
	// before unrolling.
	LoopOverheadSec float64

	// UnrollDepths is the auto-unroll candidate list (Appendix A.1):
	// CPU {0,16,64,512}, GPU {0,16,64,512,1024}.
	UnrollDepths []int

	// TextureAmp is the relative amplitude of the deterministic landscape
	// texture; NoiseAmp is the relative std-dev of per-measurement noise.
	TextureAmp float64
	NoiseAmp   float64
}

// PeakFlops returns the machine's peak fp32 throughput in FLOP/s.
func (p *Platform) PeakFlops() float64 {
	return float64(p.Cores) * float64(p.VecWidth) * p.FlopsPerLane * p.ClockGHz * 1e9
}

// CoreFlops returns one core's peak fp32 throughput in FLOP/s.
func (p *Platform) CoreFlops() float64 {
	return float64(p.VecWidth) * p.FlopsPerLane * p.ClockGHz * 1e9
}

// CPUXeon6226R models the paper's CPU platform: Intel Xeon 6226R, 32 cores at
// 2.9 GHz with AVX-512 (Section 6.1 / Appendix A.2).
func CPUXeon6226R() *Platform {
	return &Platform{
		Name:              "cpu-xeon6226r",
		Cores:             32,
		VecWidth:          16, // AVX-512 fp32 lanes
		FlopsPerLane:      2,  // FMA
		ClockGHz:          2.9,
		CacheBytes:        [3]float64{32 << 10, 1 << 20, 22 << 20},
		BWBytes:           [3]float64{180e9, 400e9, 110e9},
		SpawnOverheadSec:  4e-7,
		LaunchOverheadSec: 3e-6,
		LoopOverheadSec:   6e-10,
		UnrollDepths:      []int{0, 16, 64, 512},
		TextureAmp:        0.02,
		NoiseAmp:          0.005,
	}
}

// GPURTX3090 models the paper's GPU platform: NVIDIA GeForce RTX 3090
// (82 SMs, ~35 TFLOP/s fp32, 936 GB/s GDDR6X).
func GPURTX3090() *Platform {
	return &Platform{
		Name:              "gpu-rtx3090",
		GPU:               true,
		Cores:             328, // 82 SMs × 4 warp schedulers
		VecWidth:          32,  // warp lanes
		FlopsPerLane:      2,
		ClockGHz:          1.66,
		CacheBytes:        [3]float64{128 << 10, 256 << 10, 6 << 20},
		BWBytes:           [3]float64{600e9, 2000e9, 936e9},
		SpawnOverheadSec:  5e-9,
		LaunchOverheadSec: 8e-6,
		LoopOverheadSec:   5e-11,
		UnrollDepths:      []int{0, 16, 64, 512, 1024},
		TextureAmp:        0.02,
		NoiseAmp:          0.005,
	}
}

// platformRegistry maps every accepted short name to its constructor, in
// presentation order. New platforms register here; PlatformNames and ByName
// both derive from it so error messages can never drift from the actual set.
var platformRegistry = []struct {
	short, full string
	mk          func() *Platform
}{
	{"cpu", "cpu-xeon6226r", CPUXeon6226R},
	{"gpu", "gpu-rtx3090", GPURTX3090},
}

// PlatformNames lists the accepted short platform names in registry order.
func PlatformNames() []string {
	out := make([]string, len(platformRegistry))
	for i, e := range platformRegistry {
		out[i] = e.short
	}
	return out
}

// ByName resolves a short name ("cpu", "gpu") or a full platform name to a
// Platform, or nil if unknown.
func ByName(name string) *Platform {
	for _, e := range platformRegistry {
		if name == e.short || name == e.full {
			return e.mk()
		}
	}
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"harl/internal/core"
	"harl/internal/hardware"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/stats"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// ---------------------------------------------------------------------------
// Figure 1(a): greedy allocation waste on BERT.
// ---------------------------------------------------------------------------

// GreedyWasteRow is one bar of Fig. 1(a): a top-5 BERT subgraph with its
// total trial allocation under Ansor's greedy scheduler and the part of that
// allocation spent on the final 1% of end-to-end improvement.
type GreedyWasteRow struct {
	Subgraph   string
	Total      int
	LastOnePct int
}

// GreedyWasteResult aggregates Fig. 1(a).
type GreedyWasteResult struct {
	Rows []GreedyWasteRow
	// FractionWasted is the share of ALL trials spent on the last 1% of
	// improvement (the paper observes over 35%).
	FractionWasted float64
}

// GreedyAllocation reproduces Fig. 1(a): tune BERT with Ansor and measure how
// many trials the greedy task scheduler spends on the last 1% of improvement.
// The waste phenomenon needs a near-saturated tuning run, so this experiment
// enforces a budget floor regardless of the configured network scale.
func GreedyAllocation(cfg Config, w io.Writer) GreedyWasteResult {
	if cfg.NetworkBudgetScale < 0.12 {
		cfg.NetworkBudgetScale = 0.12
	}
	ansor := runNetwork(cfg, "BERT", 1, "cpu", "ansor", cfg.Seed)
	final := ansor.EstimatedExec()
	// The snapshot where the tuner first got within 1% of its final result.
	snap, _ := ansor.SnapshotAtExec(final * 1.01)

	// Top-5 subgraphs by time contribution.
	type idxContrib struct {
		idx int
		c   float64
	}
	br := ansor.Breakdown()
	var order []idxContrib
	for i, b := range br {
		order = append(order, idxContrib{i, b.WeightedExec})
	}
	for i := 0; i < len(order); i++ { // selection sort: tiny n, stable output
		best := i
		for j := i + 1; j < len(order); j++ {
			if order[j].c > order[best].c {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}

	res := GreedyWasteResult{}
	totalAll, totalWaste := 0, 0
	finalTrials := ansor.TaskTrials()
	for _, t := range finalTrials {
		totalAll += t
	}
	for i := range finalTrials {
		at := 0
		if i < len(snap.TaskTrials) {
			at = snap.TaskTrials[i]
		}
		totalWaste += finalTrials[i] - at
	}
	if totalAll > 0 {
		res.FractionWasted = float64(totalWaste) / float64(totalAll)
	}
	for k := 0; k < 5 && k < len(order); k++ {
		i := order[k].idx
		at := 0
		if i < len(snap.TaskTrials) {
			at = snap.TaskTrials[i]
		}
		res.Rows = append(res.Rows, GreedyWasteRow{
			Subgraph:   br[i].Name,
			Total:      finalTrials[i],
			LastOnePct: finalTrials[i] - at,
		})
	}
	if w != nil {
		fmt.Fprintf(w, "%-18s total-allocations  allocations-for-last-1%%\n", "subgraph")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%-18s %8d           %8d\n", r.Subgraph, r.Total, r.LastOnePct)
		}
		fmt.Fprintf(w, "fraction of all trials spent on last 1%% improvement: %.1f%%\n", res.FractionWasted*100)
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 1(b): improvement distribution of uniform schedule selection.
// ---------------------------------------------------------------------------

// UniformImprovementResult summarizes the Fig. 1(b) violin: the distribution
// of performance-improvement ratios when next schedules are selected
// uniformly (Ansor-style undirected mutation).
type UniformImprovementResult struct {
	Summary stats.Summary
	// NearZeroFraction is the share of moves whose |improvement| < 2%.
	NearZeroFraction float64
	Hist             *stats.Histogram
}

// UniformImprovement reproduces Fig. 1(b): 200 random programs each mutated
// uniformly for 20 trials; the improvement ratio of each move is recorded.
func UniformImprovement(cfg Config, w io.Writer) UniformImprovementResult {
	sg := workload.GEMM("GEMM-M-512", 1, 512, 512, 512)
	plat := hardware.CPUXeon6226R()
	sim := hardware.NewSimulator(plat)
	rng := xrand.New(cfg.Seed)
	task := search.NewTask(sg, plat, hardware.NewMeasurer(sim, rng.Split()), rng.Split())

	var ratios []float64
	hist := stats.NewHistogram(-1, 1, 40)
	nearZero := 0
	for p := 0; p < 200; p++ {
		sk := task.Sketches[rng.Intn(len(task.Sketches))]
		cur := schedule.NewRandom(sk, task.NumUnroll(), rng)
		curPerf := 1 / sim.Exec(cur)
		for m := 0; m < 20; m++ {
			next := cur.Mutate(rng)
			nextPerf := 1 / sim.Exec(next)
			r := (nextPerf - curPerf) / curPerf
			ratios = append(ratios, r)
			hist.Add(r)
			if r > -0.02 && r < 0.02 {
				nearZero++
			}
			cur, curPerf = next, nextPerf
		}
	}
	res := UniformImprovementResult{
		Summary:          stats.Summarize(ratios),
		NearZeroFraction: float64(nearZero) / float64(len(ratios)),
		Hist:             hist,
	}
	if w != nil {
		fmt.Fprintf(w, "improvement ratio of %d uniform moves: mean=%.3f p25=%.3f median=%.3f p75=%.3f\n",
			res.Summary.N, res.Summary.Mean, res.Summary.P25, res.Summary.P50, res.Summary.P75)
		fmt.Fprintf(w, "moves with |improvement| < 2%%: %.1f%% (most improvements are around 0)\n", res.NearZeroFraction*100)
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 1(c): fixed-length search-path efficiency on Flextensor.
// ---------------------------------------------------------------------------

// FixedLengthWasteResult summarizes Fig. 1(c): the histogram of relative
// critical-step positions under Flextensor's fixed-length search.
type FixedLengthWasteResult struct {
	Bins []int
	// EarlyFraction is the share of tracks peaking within the first 40% of
	// their path (the paper observes "most").
	EarlyFraction float64
}

// FixedLengthWaste reproduces Fig. 1(c) by running Flextensor over the GEMM
// suite and collecting critical-step positions.
func FixedLengthWaste(cfg Config, w io.Writer) FixedLengthWasteResult {
	plat := hardware.CPUXeon6226R()
	var all []float64
	for i, geom := range []string{"GEMM-S", "GEMM-M", "GEMM-L"} {
		sg := workload.SuiteFor(geom, 1)[0]
		res := core.TuneOperatorWorkers(sg, plat, core.MustScheduler("flextensor"),
			cfg.OperatorBudget/2, cfg.MeasureK, cfg.Seed+uint64(i), cfg.workers())
		observeTask(res.Task)
		all = append(all, res.Task.TrackPositions...)
	}
	res := FixedLengthWasteResult{Bins: positionBins(all)}
	early := 0
	for _, p := range all {
		if p <= 0.4 {
			early++
		}
	}
	if len(all) > 0 {
		res.EarlyFraction = float64(early) / float64(len(all))
	}
	if w != nil {
		fmt.Fprintf(w, "position of best schedule in fixed-length search paths (%d tracks):\n", len(all))
		for i, c := range res.Bins {
			fmt.Fprintf(w, "%3d%%-%3d%%  %d\n", i*10, (i+1)*10, c)
		}
		fmt.Fprintf(w, "tracks peaking within first 40%% of path: %.1f%%\n", res.EarlyFraction*100)
	}
	return res
}

// ---------------------------------------------------------------------------
// Table 1: system comparison matrix.
// ---------------------------------------------------------------------------

// Table1 prints the qualitative system-comparison matrix of the paper's
// Table 1, cross-checked against the engines actually implemented here.
func Table1(w io.Writer) {
	fmt.Fprintf(w, "%-12s %-22s %-22s %-26s %-30s\n", "system",
		"subgraph selection", "sketch selection", "schedule selection", "track time-allocation")
	fmt.Fprintf(w, "%-12s %-22s %-22s %-26s %-30s\n", "ansor",
		"greedy selection", "uniform distribution", "uniform distribution", "greedy allocation")
	fmt.Fprintf(w, "%-12s %-22s %-22s %-26s %-30s\n", "flextensor",
		"not supported", "fixed sketch", "RL agent", "uniform allocation")
	fmt.Fprintf(w, "%-12s %-22s %-22s %-26s %-30s\n", "harl",
		"MAB RL (SW-UCB)", "MAB RL (SW-UCB)", "RL actor network", "estimation on future perf")
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"harl/internal/atomicfile"
)

// Summary is the machine-readable trace of one experiment run, written as
// BENCH_<experiment>.json so benchmark trajectories accumulate across runs
// (and across CI, which uploads these files as workflow artifacts).
type Summary struct {
	Experiment string `json:"experiment"`
	// Config echoes the resolved experiment configuration so a summary is
	// comparable only against runs of the same budget.
	Seed               uint64  `json:"seed"`
	OperatorBudget     int     `json:"operator_budget"`
	MeasureK           int     `json:"measure_k"`
	ConfigsPerCategory int     `json:"configs_per_category"`
	Batches            []int   `json:"batches"`
	NetworkBudgetScale float64 `json:"network_budget_scale"`
	Workers            int     `json:"workers"`
	// DurationMS is the wall-clock runtime of the experiment.
	DurationMS float64 `json:"duration_ms"`
	// Measured and MeasureSaved partition the charged trials of every tuning
	// run the experiment performed: hardware measurements actually paid
	// versus trials backfilled from cost-model predictions (adaptive
	// sampling; zero when sampling is off). TrialsToBest is the mean charged
	// trial at which runs locked in their final best. Experiments that tune
	// nothing (tab1) report zeros.
	Measured     int `json:"measured"`
	MeasureSaved int `json:"measure_saved"`
	TrialsToBest int `json:"trials_to_best"`
	// Output is the experiment's rendered table/figure text — the same rows
	// a human sees, kept verbatim so traces are diffable run to run (the
	// rows are seed-deterministic; only DurationMS varies).
	Output string `json:"output"`
}

// NewSummary builds the summary of one finished experiment, taking the
// measurement accounting the run accumulated since ResetObservations.
func NewSummary(id string, cfg Config, duration time.Duration, output string) Summary {
	obs := TakeObservations()
	return Summary{
		Experiment:         id,
		Seed:               cfg.Seed,
		OperatorBudget:     cfg.OperatorBudget,
		MeasureK:           cfg.MeasureK,
		ConfigsPerCategory: cfg.ConfigsPerCategory,
		Batches:            cfg.Batches,
		NetworkBudgetScale: cfg.NetworkBudgetScale,
		Workers:            cfg.EffectiveWorkers(),
		DurationMS:         float64(duration.Microseconds()) / 1e3,
		Measured:           obs.Measured,
		MeasureSaved:       obs.MeasureSaved,
		TrialsToBest:       obs.TrialsToBest,
		Output:             output,
	}
}

// WriteFile writes the summary as BENCH_<experiment>.json under dir
// (created if missing) and returns the file path. The write is atomic
// (temp file + rename), so a run killed mid-write never leaves a truncated
// summary behind an intact one.
func (s Summary) WriteFile(dir string) (string, error) {
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("experiments: summary dir: %w", err)
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: marshal summary: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+s.Experiment+".json")
	if err := atomicfile.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("experiments: write summary: %w", err)
	}
	return path, nil
}

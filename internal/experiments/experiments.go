// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each experiment
// is a function that runs the required tuning jobs at a configurable budget,
// returns typed result rows, and renders the same rows the paper reports to
// an io.Writer. The bench harness (bench_test.go) and the harl-bench command
// are thin wrappers over this package.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"harl/internal/core"
	"harl/internal/hardware"
	"harl/internal/search"
	"harl/internal/texpr"
	"harl/internal/workload"
)

// Config scales the experiment grid. The paper's budgets (1000 operator
// trials; 12k/22k/16k network trials) are Full(); Scaled() shrinks them so
// the whole suite runs in minutes on a laptop while preserving the
// comparisons' shape.
type Config struct {
	Seed uint64
	// OperatorBudget is the measurement-trial budget per operator.
	OperatorBudget int
	// MeasureK is the number of measured candidates per round for every
	// engine (the paper's "same number of measurement candidates in each
	// round" fairness setup).
	MeasureK int
	// ConfigsPerCategory selects how many of the four Table-6 shapes per
	// operator category to run (1..4).
	ConfigsPerCategory int
	// Batches lists the batch sizes of the operator/network grids.
	Batches []int
	// NetworkBudgetScale multiplies the paper's per-network trial budgets.
	NetworkBudgetScale float64
	// NetworkPlatforms lists platform names for the network grid.
	NetworkPlatforms []string
	// Workers sizes the worker pool used by every tuning job (0 or 1 runs
	// single-threaded, < 0 selects runtime.NumCPU()). Experiment outputs
	// are byte-identical for every worker count — the pool only fans out
	// order-independent work (trial evaluation, cost-model queries) — so
	// raising it is purely a wall-clock optimization.
	Workers int
}

// EffectiveWorkers resolves the configured pool width to the worker count
// the tuning jobs actually run with: 0 means single-threaded and < 0 selects
// runtime.NumCPU(). Summaries record this resolved value, not the raw flag
// default, so a BENCH trace says how wide the run really was.
func (c Config) EffectiveWorkers() int {
	if c.Workers == 0 {
		return 1
	}
	if c.Workers < 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

// workers resolves the configured pool width (0 means single-threaded).
func (c Config) workers() int {
	return c.EffectiveWorkers()
}

// Scaled returns the default reduced-budget configuration used by the bench
// harness and tests.
func Scaled() Config {
	return Config{
		Seed:               7,
		OperatorBudget:     600,
		MeasureK:           16,
		ConfigsPerCategory: 1,
		Batches:            []int{1, 16},
		NetworkBudgetScale: 0.025,
		NetworkPlatforms:   []string{"cpu", "gpu"},
	}
}

// Full returns the paper-scale configuration (hours of runtime).
func Full() Config {
	return Config{
		Seed:               1,
		OperatorBudget:     1000,
		MeasureK:           16,
		ConfigsPerCategory: 4,
		Batches:            []int{1, 16},
		NetworkBudgetScale: 1.0,
		NetworkPlatforms:   []string{"cpu", "gpu"},
	}
}

// ---------------------------------------------------------------------------
// Operator-pair runner shared by Fig. 5 / Fig. 6 / Fig. 7 / Tables 7-8.
// ---------------------------------------------------------------------------

// PairResult compares Ansor and HARL on one operator configuration.
type PairResult struct {
	Name       string
	AnsorExec  float64 // noise-free exec time of Ansor's final program
	HARLExec   float64
	AnsorGF    float64
	HARLGF     float64
	AnsorTime  float64 // search seconds until Ansor found its final program
	HARLTime   float64 // search seconds until HARL matched Ansor's final program
	HARLFaster float64 // AnsorTime / HARLTime
	Reached    bool    // whether HARL matched Ansor's final program at all
}

// RunPair tunes one subgraph with Ansor and HARL under identical budgets and
// computes the paper's two metrics (Section 6.2): Performance (inverse
// execution time of the final program) and Search time (time to reach a
// program no worse than the baseline's final output).
func RunPair(sg *texpr.Subgraph, plat *hardware.Platform, budget, measureK int, seed uint64, workers int) PairResult {
	// Fresh subgraph instances per engine would share state anyway; tasks are
	// engine-private so a single instance is safe.
	ansor := core.TuneOperatorWorkers(sg, plat, core.MustScheduler("ansor"), budget, measureK, seed, workers)
	harl := core.TuneOperatorWorkers(sg, plat, core.MustScheduler("harl"), budget, measureK, seed+1, workers)
	observeTask(ansor.Task)
	observeTask(harl.Task)

	res := PairResult{
		Name:      sg.Name,
		AnsorExec: ansor.BestExec,
		HARLExec:  harl.BestExec,
		AnsorGF:   ansor.BestGFLOPS,
		HARLGF:    harl.BestGFLOPS,
	}
	// Ansor's search time: when it found its own final program.
	res.AnsorTime, _ = timeToReach(ansor.Task, ansor.Task.BestExec)
	// HARL's search time: when it matched Ansor's final program quality
	// (measured best-log versus Ansor's noisy best, per the paper metric).
	res.HARLTime, res.Reached = timeToReach(harl.Task, ansor.Task.BestExec)
	if res.HARLTime > 0 {
		res.HARLFaster = res.AnsorTime / res.HARLTime
	}
	return res
}

func timeToReach(t *search.Task, target float64) (float64, bool) {
	for i, e := range t.BestLog {
		if e <= target {
			return t.TrialCost[i], true
		}
	}
	if n := len(t.TrialCost); n > 0 {
		return t.TrialCost[n-1], false
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Figure 5 & 6: operator performance and search time.
// ---------------------------------------------------------------------------

// OperatorRow is one bar group of Figures 5 and 6: a category × batch cell
// with normalized performance and normalized search time for both systems.
type OperatorRow struct {
	Category string
	Batch    int
	// Normalized performance (max of the two = 1), Figure 5.
	AnsorPerf, HARLPerf float64
	// Normalized search time (max of the two = 1), Figure 6.
	AnsorTime, HARLTime float64
	// Raw means across the category's configurations.
	AnsorGF, HARLGF float64
	Speedup         float64 // HARL perf / Ansor perf
	TimeRatio       float64 // HARL search time / Ansor search time
}

// OperatorGrid runs the Fig. 5/6 grid on the CPU platform and returns one row
// per (category, batch).
func OperatorGrid(cfg Config, w io.Writer) []OperatorRow {
	plat := hardware.CPUXeon6226R()
	var rows []OperatorRow
	for _, batch := range cfg.Batches {
		for _, cat := range workload.OperatorCategories() {
			suite := workload.SuiteFor(cat, batch)
			if len(suite) > cfg.ConfigsPerCategory {
				suite = suite[:cfg.ConfigsPerCategory]
			}
			var aPerf, hPerf, aTime, hTime, aGF, hGF []float64
			for i, sg := range suite {
				pr := RunPair(sg, plat, cfg.OperatorBudget, cfg.MeasureK, cfg.Seed+uint64(i)*97+uint64(batch), cfg.workers())
				aPerf = append(aPerf, 1/pr.AnsorExec)
				hPerf = append(hPerf, 1/pr.HARLExec)
				aTime = append(aTime, pr.AnsorTime)
				hTime = append(hTime, pr.HARLTime)
				aGF = append(aGF, pr.AnsorGF)
				hGF = append(hGF, pr.HARLGF)
			}
			row := OperatorRow{Category: cat, Batch: batch,
				AnsorGF: mean(aGF), HARLGF: mean(hGF)}
			ap, hp := mean(aPerf), mean(hPerf)
			maxPerf := math.Max(ap, hp)
			row.AnsorPerf, row.HARLPerf = ap/maxPerf, hp/maxPerf
			at, ht := mean(aTime), mean(hTime)
			maxTime := math.Max(at, ht)
			if maxTime > 0 {
				row.AnsorTime, row.HARLTime = at/maxTime, ht/maxTime
			}
			row.Speedup = hp / ap
			if at > 0 {
				row.TimeRatio = ht / at
			}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-7s batch=%-3d perf: ansor=%.3f harl=%.3f (harl/ansor=%.2fx, %4.0f vs %4.0f gflops) | search time: ansor=%.3f harl=%.3f (ratio %.2f)\n",
					cat, batch, row.AnsorPerf, row.HARLPerf, row.Speedup, row.AnsorGF, row.HARLGF, row.AnsorTime, row.HARLTime, row.TimeRatio)
			}
		}
	}
	return rows
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ---------------------------------------------------------------------------
// Figure 7(a): ablation trajectory on GEMM-L.
// ---------------------------------------------------------------------------

// TrajectoryResult holds best-so-far performance curves for the three systems
// of the ablation (normalized so the best final performance = 1).
type TrajectoryResult struct {
	Trials  []int
	Ansor   []float64
	HierRL  []float64
	HARL    []float64
	FinalGF map[string]float64
}

// AblationTrajectory reproduces Fig. 7(a): Ansor vs Hierarchical-RL (fixed
// length) vs HARL (adaptive stopping) on the 1024³ GEMM.
func AblationTrajectory(cfg Config, w io.Writer) TrajectoryResult {
	sg := workload.GEMM("GEMM-L-1024", 1, 1024, 1024, 1024)
	plat := hardware.CPUXeon6226R()
	budget := cfg.OperatorBudget

	curves := map[string][]float64{}
	finals := map[string]float64{}
	for _, name := range []string{"ansor", "hierarchical-rl", "harl"} {
		res := core.TuneOperatorWorkers(sg, plat, core.MustScheduler(name), budget, cfg.MeasureK, cfg.Seed, cfg.workers())
		observeTask(res.Task)
		curves[name] = res.Task.BestLog
		finals[name] = res.BestGFLOPS
	}
	// Normalize performance (1/exec) by the best final across systems.
	bestPerf := 0.0
	for _, c := range curves {
		if p := 1 / c[len(c)-1]; p > bestPerf {
			bestPerf = p
		}
	}
	points := 20
	tr := TrajectoryResult{FinalGF: finals}
	for i := 1; i <= points; i++ {
		idx := budget*i/points - 1
		tr.Trials = append(tr.Trials, idx+1)
		tr.Ansor = append(tr.Ansor, sampleCurve(curves["ansor"], idx, bestPerf))
		tr.HierRL = append(tr.HierRL, sampleCurve(curves["hierarchical-rl"], idx, bestPerf))
		tr.HARL = append(tr.HARL, sampleCurve(curves["harl"], idx, bestPerf))
	}
	if w != nil {
		fmt.Fprintf(w, "trials   ansor  hier-rl  harl   (normalized performance)\n")
		for i, n := range tr.Trials {
			fmt.Fprintf(w, "%6d   %.3f  %.3f    %.3f\n", n, tr.Ansor[i], tr.HierRL[i], tr.HARL[i])
		}
		fmt.Fprintf(w, "final gflops: ansor=%.0f hier-rl=%.0f harl=%.0f\n",
			finals["ansor"], finals["hierarchical-rl"], finals["harl"])
	}
	return tr
}

func sampleCurve(log []float64, idx int, norm float64) float64 {
	if len(log) == 0 {
		return 0
	}
	if idx >= len(log) {
		idx = len(log) - 1
	}
	if idx < 0 {
		idx = 0
	}
	return (1 / log[idx]) / norm
}

// ---------------------------------------------------------------------------
// Figure 7(b): critical-step histograms, fixed vs adaptive.
// ---------------------------------------------------------------------------

// CriticalStepsResult holds the relative critical-step position histograms
// (10 bins over [0,1]) of the fixed-length and adaptive-stopping searches.
type CriticalStepsResult struct {
	FixedBins    []int
	AdaptiveBins []int
	// FixedLastDecile and AdaptiveLastDecile are the fractions of tracks
	// whose best schedule appeared in the last 10% of their path — the
	// paper's "less than 10% wasted steps" statistic.
	FixedLastDecile    float64
	AdaptiveLastDecile float64
}

// CriticalSteps reproduces Fig. 7(b) on the 1024³ GEMM.
func CriticalSteps(cfg Config, w io.Writer) CriticalStepsResult {
	sg := workload.GEMM("GEMM-L-1024", 1, 1024, 1024, 1024)
	plat := hardware.CPUXeon6226R()
	fixed := core.TuneOperatorWorkers(sg, plat, core.MustScheduler("hierarchical-rl"), cfg.OperatorBudget, cfg.MeasureK, cfg.Seed, cfg.workers())
	adaptive := core.TuneOperatorWorkers(sg, plat, core.MustScheduler("harl"), cfg.OperatorBudget, cfg.MeasureK, cfg.Seed, cfg.workers())
	observeTask(fixed.Task)
	observeTask(adaptive.Task)

	res := CriticalStepsResult{
		FixedBins:    positionBins(fixed.Task.TrackPositions),
		AdaptiveBins: positionBins(adaptive.Task.TrackPositions),
	}
	res.FixedLastDecile = lastDecile(fixed.Task.TrackPositions)
	res.AdaptiveLastDecile = lastDecile(adaptive.Task.TrackPositions)
	if w != nil {
		fmt.Fprintf(w, "position   fixed  adaptive  (critical-step histograms)\n")
		for i := 0; i < 10; i++ {
			fmt.Fprintf(w, "%3d%%-%3d%%  %5d  %5d\n", i*10, (i+1)*10, res.FixedBins[i], res.AdaptiveBins[i])
		}
		fmt.Fprintf(w, "critical step in last 10%% of path: fixed=%.1f%% adaptive=%.1f%%\n",
			res.FixedLastDecile*100, res.AdaptiveLastDecile*100)
	}
	return res
}

func positionBins(pos []float64) []int {
	bins := make([]int, 10)
	for _, p := range pos {
		i := int(p * 10)
		if i > 9 {
			i = 9
		}
		if i < 0 {
			i = 0
		}
		bins[i]++
	}
	return bins
}

func lastDecile(pos []float64) float64 {
	if len(pos) == 0 {
		return 0
	}
	n := 0
	for _, p := range pos {
		if p >= 0.9 {
			n++
		}
	}
	return float64(n) / float64(len(pos))
}

// ---------------------------------------------------------------------------
// Tables 7 & 8: adaptive-stopping sensitivity.
// ---------------------------------------------------------------------------

// SensitivityRow is one row of Table 7 (λ sweep) or Table 8 (ρ sweep).
type SensitivityRow struct {
	Value       float64
	Perf        float64 // normalized performance (best = 1)
	TimePerIter float64 // normalized search time per round (max = 1)
	RawGF       float64
	RawTimeIter float64
}

// LambdaSensitivity reproduces Table 7: the adaptive-stopping window size λ
// swept over {10, 20, 40, 80} on the 1024³ GEMM.
func LambdaSensitivity(cfg Config, w io.Writer) []SensitivityRow {
	return sensitivity(cfg, w, "lambda", []float64{10, 20, 40, 80})
}

// RhoSensitivity reproduces Table 8: the elimination ratio ρ swept over
// {0.75, 0.5, 0.25}.
func RhoSensitivity(cfg Config, w io.Writer) []SensitivityRow {
	return sensitivity(cfg, w, "rho", []float64{0.75, 0.5, 0.25})
}

func sensitivity(cfg Config, w io.Writer, param string, values []float64) []SensitivityRow {
	sg := workload.GEMM("GEMM-L-1024", 1, 1024, 1024, 1024)
	plat := hardware.CPUXeon6226R()
	rows := make([]SensitivityRow, 0, len(values))
	for _, v := range values {
		hcfg := search.DefaultHARLConfig()
		switch param {
		case "lambda":
			hcfg.Lambda = int(v)
		case "rho":
			hcfg.Rho = v
		}
		sched := &core.Scheduler{Name: "harl", Engine: search.NewHARL(hcfg), Policy: core.PolicySWUCB}
		res := core.TuneOperatorWorkers(sg, plat, sched, cfg.OperatorBudget, cfg.MeasureK, cfg.Seed, cfg.workers())
		observeTask(res.Task)
		rounds := math.Max(1, float64(res.Trials)/float64(cfg.MeasureK))
		rows = append(rows, SensitivityRow{
			Value:       v,
			RawGF:       res.BestGFLOPS,
			RawTimeIter: res.CostSec / rounds,
		})
	}
	maxGF, maxTI := 0.0, 0.0
	for _, r := range rows {
		maxGF = math.Max(maxGF, r.RawGF)
		maxTI = math.Max(maxTI, r.RawTimeIter)
	}
	for i := range rows {
		rows[i].Perf = rows[i].RawGF / maxGF
		rows[i].TimePerIter = rows[i].RawTimeIter / maxTI
	}
	if w != nil {
		fmt.Fprintf(w, "%-8s normalized-performance  normalized-time/iteration\n", param)
		for _, r := range rows {
			fmt.Fprintf(w, "%-8.3g %.3f                   %.3f\n", r.Value, r.Perf, r.TimePerIter)
		}
	}
	return rows
}

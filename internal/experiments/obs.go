package experiments

import (
	"sync"

	"harl/internal/search"
)

// Observations aggregates the measurement accounting of every tuning run one
// experiment performs, for the BENCH summary: how many schedules were
// actually measured on (simulated) hardware, how many charged trials were
// served from cost-model backfills instead (adaptive sampling's saving; zero
// when sampling is off), and the mean charged-trial index at which runs
// locked in their final best. The accumulator is package-global because an
// experiment is a process-level unit — RunExperiment resets it, the run
// helpers feed it, and NewSummary takes it — but it is mutex-guarded so
// worker-pooled runs and concurrent tests stay race-free.
type Observations struct {
	// Runs counts the tuning tasks observed (network runs count one per
	// subgraph task).
	Runs int
	// Measured and MeasureSaved partition the charged trials: every trial
	// either cost a hardware measurement or was backfilled from a cluster
	// representative's result.
	Measured     int
	MeasureSaved int
	// TrialsToBest is the mean charged-trial index (1-based) at which the
	// observed tasks last improved their best — how deep into the budget the
	// final answer arrived.
	TrialsToBest int
}

var (
	obsMu  sync.Mutex
	obsCur Observations
	obsSum int // sum of per-task trials-to-best, averaged at Take time
)

// ResetObservations clears the accumulator; call at the start of an
// experiment so its summary reflects only its own runs.
func ResetObservations() {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsCur, obsSum = Observations{}, 0
}

// TakeObservations returns the totals accumulated since the last reset.
// Experiments that tune nothing (tab1's static matrix) report all zeros.
func TakeObservations() Observations {
	obsMu.Lock()
	defer obsMu.Unlock()
	o := obsCur
	if o.Runs > 0 {
		o.TrialsToBest = obsSum / o.Runs
	}
	return o
}

// observeTask folds one finished tuning task into the accumulator. Every
// run helper that drives a search (RunPair, runNetwork, the single-engine
// ablations) calls it once per task.
func observeTask(t *search.Task) {
	obsMu.Lock()
	defer obsMu.Unlock()
	obsCur.Runs++
	obsCur.Measured += t.Measured
	obsCur.MeasureSaved += t.MeasureSaved
	obsSum += trialsToBest(t.BestLog)
}

// trialsToBest is the 1-based index of the last improvement in a best-so-far
// log — the charged trial that produced the task's final answer.
func trialsToBest(best []float64) int {
	if len(best) == 0 {
		return 0
	}
	last := 0
	for i := 1; i < len(best); i++ {
		if best[i] < best[last] {
			last = i
		}
	}
	return last + 1
}

package experiments

import (
	"io"
	"math"
	"strings"
	"testing"

	"harl/internal/hardware"
	"harl/internal/workload"
)

// tinyCfg keeps experiment tests fast while still exercising every code path.
func tinyCfg() Config {
	cfg := Scaled()
	cfg.OperatorBudget = 64
	cfg.MeasureK = 16
	cfg.ConfigsPerCategory = 1
	cfg.Batches = []int{1}
	cfg.NetworkBudgetScale = 0.004
	cfg.NetworkPlatforms = []string{"cpu"}
	return cfg
}

func TestRunPairMetrics(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	pr := RunPair(sg, hardware.CPUXeon6226R(), 64, 16, 1, 1)
	if pr.AnsorExec <= 0 || pr.HARLExec <= 0 {
		t.Fatalf("degenerate pair %+v", pr)
	}
	if pr.AnsorTime <= 0 || pr.HARLTime <= 0 {
		t.Fatal("search times must be positive")
	}
}

func TestOperatorGridShape(t *testing.T) {
	if testing.Short() {
		t.Skip("grid run is slow")
	}
	cfg := tinyCfg()
	var sb strings.Builder
	rows := OperatorGrid(cfg, &sb)
	if len(rows) != len(workload.OperatorCategories()) {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		// Normalized metrics must be in (0, 1] with the max pinned at 1.
		if r.AnsorPerf <= 0 || r.AnsorPerf > 1 || r.HARLPerf <= 0 || r.HARLPerf > 1 {
			t.Fatalf("%s: perf out of range %+v", r.Category, r)
		}
		if math.Max(r.AnsorPerf, r.HARLPerf) != 1 {
			t.Fatalf("%s: no perf pinned at 1", r.Category)
		}
		if r.AnsorGF <= 0 || r.HARLGF <= 0 {
			t.Fatalf("%s: raw gflops missing", r.Category)
		}
	}
	if !strings.Contains(sb.String(), "GEMM-L") {
		t.Fatal("render missing categories")
	}
}

func TestAblationTrajectoryShape(t *testing.T) {
	cfg := tinyCfg()
	tr := AblationTrajectory(cfg, io.Discard)
	if len(tr.Trials) != 20 || len(tr.HARL) != 20 {
		t.Fatalf("trajectory points %d", len(tr.Trials))
	}
	for i := range tr.HARL {
		for _, v := range []float64{tr.Ansor[i], tr.HierRL[i], tr.HARL[i]} {
			if v <= 0 || v > 1+1e-9 {
				t.Fatalf("normalized perf %f out of range", v)
			}
		}
		if i > 0 && (tr.HARL[i] < tr.HARL[i-1] || tr.Ansor[i] < tr.Ansor[i-1]) {
			t.Fatal("best-so-far curves must be non-decreasing")
		}
	}
}

func TestCriticalStepsShape(t *testing.T) {
	cfg := tinyCfg()
	res := CriticalSteps(cfg, io.Discard)
	if len(res.FixedBins) != 10 || len(res.AdaptiveBins) != 10 {
		t.Fatal("histograms must have 10 bins")
	}
	total := 0
	for _, c := range res.AdaptiveBins {
		total += c
	}
	if total == 0 {
		t.Fatal("no adaptive tracks recorded")
	}
}

func TestSensitivityNormalization(t *testing.T) {
	cfg := tinyCfg()
	rows := LambdaSensitivity(cfg, io.Discard)
	if len(rows) != 4 {
		t.Fatalf("lambda rows %d", len(rows))
	}
	maxPerf, maxTI := 0.0, 0.0
	for _, r := range rows {
		maxPerf = math.Max(maxPerf, r.Perf)
		maxTI = math.Max(maxTI, r.TimePerIter)
	}
	if maxPerf != 1 || maxTI != 1 {
		t.Fatalf("normalization broken: perf max %f time max %f", maxPerf, maxTI)
	}
	rows8 := RhoSensitivity(cfg, io.Discard)
	if len(rows8) != 3 || rows8[0].Value != 0.75 {
		t.Fatalf("rho rows %+v", rows8)
	}
}

func TestUniformImprovementObservation(t *testing.T) {
	res := UniformImprovement(tinyCfg(), io.Discard)
	// Paper Observation 1: most improvements are around 0.
	if math.Abs(res.Summary.P50) > 0.05 {
		t.Fatalf("median improvement %f, expected ≈0", res.Summary.P50)
	}
	if res.Summary.N != 4000 {
		t.Fatalf("moves %d want 200×20", res.Summary.N)
	}
}

func TestFixedLengthWasteObservation(t *testing.T) {
	cfg := tinyCfg()
	cfg.OperatorBudget = 256 // enough tracks for a stable histogram
	res := FixedLengthWaste(cfg, io.Discard)
	if len(res.Bins) != 10 {
		t.Fatal("bins")
	}
	// Paper Observation 2: most tracks peak early. At scaled budgets this is
	// noisy, so just require a meaningful share.
	if res.EarlyFraction < 0.2 {
		t.Fatalf("early fraction %.2f suspiciously low", res.EarlyFraction)
	}
}

func TestGreedyAllocationRows(t *testing.T) {
	if testing.Short() {
		t.Skip("network run is slow")
	}
	res := GreedyAllocation(tinyCfg(), io.Discard)
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d want top-5", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.LastOnePct > r.Total {
			t.Fatalf("%s: waste %d exceeds total %d", r.Subgraph, r.LastOnePct, r.Total)
		}
	}
	if res.FractionWasted < 0 || res.FractionWasted > 1 {
		t.Fatalf("fraction %f", res.FractionWasted)
	}
}

func TestTable1Render(t *testing.T) {
	var sb strings.Builder
	Table1(&sb)
	out := sb.String()
	for _, want := range []string{"ansor", "flextensor", "harl", "SW-UCB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table 1 missing %q", want)
		}
	}
}

func TestNetBudgetFloor(t *testing.T) {
	cfg := tinyCfg()
	cfg.NetworkBudgetScale = 1e-9
	net := workload.BERT(1)
	if b := netBudget(cfg, net); b < net.DistinctSubgraphs()*cfg.MeasureK*2 {
		t.Fatalf("budget %d below floor", b)
	}
}

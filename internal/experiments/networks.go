package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"harl/internal/core"
	"harl/internal/hardware"
	"harl/internal/workload"
)

// netBudget returns the scaled trial budget of a network, floored so every
// subgraph gets at least a few rounds.
func netBudget(cfg Config, net *workload.Network) int {
	b := int(float64(workload.NetworkTrialBudget(net.Name)) * cfg.NetworkBudgetScale)
	minB := net.DistinctSubgraphs() * cfg.MeasureK * 2
	if b < minB {
		b = minB
	}
	return b
}

// runNetwork tunes a network with a named scheduler preset.
func runNetwork(cfg Config, netName string, batch int, platName, schedName string, seed uint64) *core.NetworkTuner {
	var net *workload.Network
	switch netName {
	case "BERT":
		net = workload.BERT(batch)
	case "ResNet":
		net = workload.ResNet50(batch)
	case "MobileNet":
		net = workload.MobileNetV2(batch)
	default:
		panic("experiments: unknown network " + netName)
	}
	plat := hardware.ByName(platName)
	nt := core.NewNetworkTuner(net, plat, core.MustScheduler(schedName), cfg.MeasureK, seed)
	if w := cfg.workers(); w != 1 {
		nt.SetWorkers(w)
	}
	nt.Run(netBudget(cfg, net))
	for _, t := range nt.Tasks {
		observeTask(t)
	}
	return nt
}

// ---------------------------------------------------------------------------
// Figures 8 & 9: end-to-end network performance and search time.
// ---------------------------------------------------------------------------

// NetworkRow is one bar group of Figures 8/9.
type NetworkRow struct {
	Network  string
	Platform string
	Batch    int
	// Normalized inference performance (max = 1), Figure 8.
	AnsorPerf, HARLPerf float64
	// Normalized search time (max = 1), Figure 9: time until each system
	// reached Ansor's final end-to-end estimate.
	AnsorTime, HARLTime float64
	Speedup             float64 // HARL measured perf / Ansor measured perf
	AnsorMs, HARLMs     float64
}

// NetworkGrid reproduces the Fig. 8/9 grid.
func NetworkGrid(cfg Config, w io.Writer) []NetworkRow {
	var rows []NetworkRow
	seed := cfg.Seed
	for _, batch := range cfg.Batches {
		for _, platName := range cfg.NetworkPlatforms {
			for _, netName := range []string{"BERT", "ResNet", "MobileNet"} {
				seed += 13
				ansor := runNetwork(cfg, netName, batch, platName, "ansor", seed)
				harl := runNetwork(cfg, netName, batch, platName, "harl", seed+5)

				aExec, hExec := ansor.MeasuredExec(), harl.MeasuredExec()
				row := NetworkRow{
					Network: netName, Platform: platName, Batch: batch,
					AnsorMs: aExec * 1e3, HARLMs: hExec * 1e3,
				}
				ap, hp := 1/aExec, 1/hExec
				maxP := math.Max(ap, hp)
				row.AnsorPerf, row.HARLPerf = ap/maxP, hp/maxP
				row.Speedup = hp / ap

				// Search time to reach Ansor's final estimated exec.
				target := ansor.EstimatedExec()
				aSnap, _ := ansor.SnapshotAtExec(target)
				hSnap, _ := harl.SnapshotAtExec(target)
				maxT := math.Max(aSnap.CostSec, hSnap.CostSec)
				if maxT > 0 {
					row.AnsorTime = aSnap.CostSec / maxT
					row.HARLTime = hSnap.CostSec / maxT
				}
				rows = append(rows, row)
				if w != nil {
					fmt.Fprintf(w, "%-9s %-3s batch=%-3d perf: ansor=%.3f harl=%.3f (%.2fx, %.2f vs %.2f ms) | search time: ansor=%.3f harl=%.3f\n",
						netName, platName, batch, row.AnsorPerf, row.HARLPerf, row.Speedup, row.AnsorMs, row.HARLMs, row.AnsorTime, row.HARLTime)
				}
			}
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table 4: BERT subgraph breakdown + MAB ablation.
// ---------------------------------------------------------------------------

// Table4Row is one subgraph row of Table 4.
type Table4Row struct {
	Subgraph     string
	Contribution float64 // share of HARL's estimated end-to-end time
	Speedup      float64 // Ansor subgraph exec / HARL subgraph exec
}

// Table4Result is the full Table 4: per-subgraph rows plus the aggregate
// estimated and measured speedups, with and without the subgraph MAB.
type Table4Result struct {
	Rows             []Table4Row
	EstimatedSpeedup float64
	MeasuredSpeedup  float64
	NoMABSpeedup     float64
}

// Table4 reproduces the BERT-on-CPU breakdown ablation.
func Table4(cfg Config, w io.Writer) Table4Result {
	ansor := runNetwork(cfg, "BERT", 1, "cpu", "ansor", cfg.Seed)
	harl := runNetwork(cfg, "BERT", 1, "cpu", "harl", cfg.Seed+5)
	noMAB := runNetwork(cfg, "BERT", 1, "cpu", "harl-nomab", cfg.Seed+9)

	aBr, hBr := ansor.Breakdown(), harl.Breakdown()
	var res Table4Result
	for i := range hBr {
		row := Table4Row{Subgraph: hBr[i].Name, Contribution: hBr[i].Contribution}
		if hBr[i].BestExec > 0 {
			row.Speedup = aBr[i].BestExec / hBr[i].BestExec
		}
		res.Rows = append(res.Rows, row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].Contribution > res.Rows[j].Contribution })
	res.EstimatedSpeedup = ansor.EstimatedExec() / harl.EstimatedExec()
	res.MeasuredSpeedup = ansor.MeasuredExec() / harl.MeasuredExec()
	res.NoMABSpeedup = ansor.MeasuredExec() / noMAB.MeasuredExec()
	if w != nil {
		fmt.Fprintf(w, "%-18s contribution  speedup\n", "subgraph")
		for _, r := range res.Rows {
			fmt.Fprintf(w, "%-18s %5.1f%%        %.2fx\n", r.Subgraph, r.Contribution*100, r.Speedup)
		}
		fmt.Fprintf(w, "Estimated HARL (sum): %.2fx\n", res.EstimatedSpeedup)
		fmt.Fprintf(w, "Measured HARL:        %.2fx\n", res.MeasuredSpeedup)
		fmt.Fprintf(w, "Measured HARL (w/o subgraph MAB): %.2fx\n", res.NoMABSpeedup)
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 10: subgraph trial allocations, MAB vs greedy.
// ---------------------------------------------------------------------------

// AllocationRow holds the trial allocation of one BERT subgraph under both
// policies, split at the point each system reached Ansor's best estimate.
type AllocationRow struct {
	Subgraph     string
	HARLAtAnsor  int // trials when HARL reached Ansor's best ("= Ansor")
	HARLTotal    int
	NoMABAtAnsor int
	NoMABTotal   int
}

// AllocationAblation reproduces Fig. 10 for the five named BERT subgraphs.
func AllocationAblation(cfg Config, w io.Writer) []AllocationRow {
	ansor := runNetwork(cfg, "BERT", 1, "cpu", "ansor", cfg.Seed)
	harl := runNetwork(cfg, "BERT", 1, "cpu", "harl", cfg.Seed+5)
	noMAB := runNetwork(cfg, "BERT", 1, "cpu", "harl-nomab", cfg.Seed+9)

	target := ansor.EstimatedExec()
	hSnap, _ := harl.SnapshotAtExec(target)
	nSnap, _ := noMAB.SnapshotAtExec(target)

	names := []string{"GEMM-I", "GEMM-II", "GEMM-III", "GEMM-IV", "Softmax"}
	var rows []AllocationRow
	for _, name := range names {
		hi, ni := harl.TaskIndexByName(name), noMAB.TaskIndexByName(name)
		row := AllocationRow{Subgraph: name}
		if hi >= 0 {
			row.HARLTotal = harl.Tasks[hi].Trials
			if hi < len(hSnap.TaskTrials) {
				row.HARLAtAnsor = hSnap.TaskTrials[hi]
			}
		}
		if ni >= 0 {
			row.NoMABTotal = noMAB.Tasks[ni].Trials
			if ni < len(nSnap.TaskTrials) {
				row.NoMABAtAnsor = nSnap.TaskTrials[ni]
			}
		}
		rows = append(rows, row)
	}
	if w != nil {
		fmt.Fprintf(w, "%-10s harl(=ansor) harl(total)  nomab(=ansor) nomab(total)\n", "subgraph")
		for _, r := range rows {
			fmt.Fprintf(w, "%-10s %8d     %8d     %8d      %8d\n",
				r.Subgraph, r.HARLAtAnsor, r.HARLTotal, r.NoMABAtAnsor, r.NoMABTotal)
		}
	}
	return rows
}

// Package nn is the minimal neural-network substrate backing HARL's
// actor-critic models: dense layers with manual backpropagation, tanh
// activations, softmax/categorical utilities and the Adam optimizer. The
// original system uses PyTorch via the PPO-PyTorch reference implementation;
// the networks involved are small MLPs, which this package reproduces with
// per-sample forward/backward passes (minibatches are loops — the state
// dimensionality of schedule features makes this more than fast enough).
package nn

import (
	"fmt"
	"math"

	"harl/internal/xrand"
)

// Linear is a dense layer y = Wx + b with accumulated gradients and Adam
// moment state.
type Linear struct {
	In, Out int
	W, B    []float64 // W is row-major [Out][In]

	gW, gB []float64
	mW, vW []float64
	mB, vB []float64
}

// NewLinear creates a layer with Xavier-uniform initialized weights.
func NewLinear(in, out int, rng *xrand.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		W: make([]float64, in*out), B: make([]float64, out),
		gW: make([]float64, in*out), gB: make([]float64, out),
		mW: make([]float64, in*out), vW: make([]float64, in*out),
		mB: make([]float64, out), vB: make([]float64, out),
	}
	scale := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W {
		l.W[i] = (2*rng.Float64() - 1) * scale
	}
	return l
}

// grow returns dst resized to n, reusing its backing array when it is large
// enough. Contents are unspecified: every caller fully overwrites or zeroes.
func grow(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// Forward computes y = Wx + b.
func (l *Linear) Forward(x []float64) []float64 {
	return l.ForwardInto(nil, x)
}

// ForwardInto is Forward writing into dst (grown as needed and returned) —
// the same arithmetic in the same order, minus the per-call allocation. The
// PPO training loop calls these kernels per sample per epoch, so the
// allocation, not the arithmetic, is what buffer reuse saves.
func (l *Linear) ForwardInto(dst, x []float64) []float64 {
	if len(x) != l.In {
		panic(fmt.Sprintf("nn: Linear forward dim %d != %d", len(x), l.In))
	}
	y := grow(dst, l.Out)
	for o := 0; o < l.Out; o++ {
		s := l.B[o]
		// Re-slicing to len(x) lets the compiler drop the per-element bounds
		// check; the accumulation order is untouched (bit-identical results).
		row := l.W[o*l.In : (o+1)*l.In][:len(x)]
		for i, xi := range x {
			s += row[i] * xi
		}
		y[o] = s
	}
	return y
}

// Backward accumulates parameter gradients given the layer input x and the
// output gradient dy, and returns the input gradient dx.
func (l *Linear) Backward(x, dy []float64) []float64 {
	return l.BackwardInto(nil, x, dy)
}

// BackwardInto is Backward writing the input gradient into dst (grown as
// needed, zeroed here, returned). Bit-identical to Backward.
func (l *Linear) BackwardInto(dst, x, dy []float64) []float64 {
	dx := grow(dst, l.In)
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < l.Out; o++ {
		g := dy[o]
		l.gB[o] += g
		// Bounds-check elimination as in Forward; per-element arithmetic and
		// accumulation order are untouched (bit-identical results).
		row := l.W[o*l.In : (o+1)*l.In][:len(x)]
		gw := l.gW[o*l.In : (o+1)*l.In][:len(x)]
		dxs := dx[:len(x)]
		for i, xi := range x {
			gw[i] += g * xi
			dxs[i] += row[i] * g
		}
	}
	return dx
}

// Step applies one Adam update with the accumulated gradients (scaled by
// 1/batch) and clears them. t is the 1-based Adam timestep.
func (l *Linear) Step(lr float64, batch int, t int) {
	adam(l.W, l.gW, l.mW, l.vW, lr, batch, t)
	adam(l.B, l.gB, l.mB, l.vB, lr, batch, t)
}

// ZeroGrad clears accumulated gradients without updating.
func (l *Linear) ZeroGrad() {
	for i := range l.gW {
		l.gW[i] = 0
	}
	for i := range l.gB {
		l.gB[i] = 0
	}
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

func adam(w, g, m, v []float64, lr float64, batch, t int) {
	inv := 1.0 / float64(batch)
	bc1 := 1 - math.Pow(adamBeta1, float64(t))
	bc2 := 1 - math.Pow(adamBeta2, float64(t))
	for i := range w {
		gi := g[i] * inv
		m[i] = adamBeta1*m[i] + (1-adamBeta1)*gi
		v[i] = adamBeta2*v[i] + (1-adamBeta2)*gi*gi
		w[i] -= lr * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + adamEps)
		g[i] = 0
	}
}

// MLP is a stack of Linear layers with tanh activations between them (none
// after the last layer).
type MLP struct {
	Layers []*Linear

	// Scratch for ForwardReuse/BackwardReuse: per-layer outputs, per-layer
	// input gradients and one backprop cache, reused across calls.
	outs  [][]float64
	dxs   [][]float64
	cache Cache
}

// NewMLP builds an MLP with the given layer sizes, e.g. (in, 64, 64, out).
func NewMLP(rng *xrand.RNG, sizes ...int) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	return m
}

// Cache stores per-layer pre-activation inputs for backprop.
type Cache struct {
	inputs [][]float64 // input to each layer (post-activation of previous)
}

// Forward runs the network and returns the output plus the backprop cache.
func (m *MLP) Forward(x []float64) ([]float64, *Cache) {
	c := &Cache{}
	h := x
	for i, l := range m.Layers {
		c.inputs = append(c.inputs, h)
		h = l.Forward(h)
		if i+1 < len(m.Layers) {
			for j := range h {
				h[j] = math.Tanh(h[j])
			}
		}
	}
	return h, c
}

// Backward accumulates gradients for output gradient dy using the cache from
// the matching Forward call, and returns the input gradient.
func (m *MLP) Backward(c *Cache, dy []float64) []float64 {
	g := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i < len(m.Layers)-1 {
			// The cached input of layer i+1 is tanh(z_i); d tanh = 1 - tanh².
			act := c.inputs[i+1]
			for j := range g {
				g[j] *= 1 - act[j]*act[j]
			}
		}
		g = m.Layers[i].Backward(c.inputs[i], g)
	}
	return g
}

// ForwardReuse is Forward through buffers owned by the MLP: the returned
// output and cache (and the slices the cache references) are valid only
// until the next ForwardReuse call on this MLP. Bit-identical to Forward.
func (m *MLP) ForwardReuse(x []float64) ([]float64, *Cache) {
	if m.outs == nil {
		m.outs = make([][]float64, len(m.Layers))
	}
	c := &m.cache
	c.inputs = c.inputs[:0]
	h := x
	for i, l := range m.Layers {
		c.inputs = append(c.inputs, h)
		m.outs[i] = l.ForwardInto(m.outs[i], h)
		h = m.outs[i]
		if i+1 < len(m.Layers) {
			for j := range h {
				h[j] = math.Tanh(h[j])
			}
		}
	}
	return h, c
}

// BackwardReuse is Backward through buffers owned by the MLP: the returned
// input gradient is valid only until the next BackwardReuse call on this
// MLP. Like Backward it mutates dy in place. Bit-identical to Backward.
func (m *MLP) BackwardReuse(c *Cache, dy []float64) []float64 {
	if m.dxs == nil {
		m.dxs = make([][]float64, len(m.Layers))
	}
	g := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		if i < len(m.Layers)-1 {
			// The cached input of layer i+1 is tanh(z_i); d tanh = 1 - tanh².
			act := c.inputs[i+1]
			for j := range g {
				g[j] *= 1 - act[j]*act[j]
			}
		}
		m.dxs[i] = m.Layers[i].BackwardInto(m.dxs[i], c.inputs[i], g)
		g = m.dxs[i]
	}
	return g
}

// Step applies Adam to every layer.
func (m *MLP) Step(lr float64, batch, t int) {
	for _, l := range m.Layers {
		l.Step(lr, batch, t)
	}
}

// ZeroGrad clears all accumulated gradients.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// NumParams returns the total parameter count.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.W) + len(l.B)
	}
	return n
}

// Softmax returns the softmax of the logits (numerically stabilized).
func Softmax(logits []float64) []float64 {
	return SoftmaxInto(nil, logits)
}

// SoftmaxInto is Softmax writing into dst (grown as needed, returned).
func SoftmaxInto(dst, logits []float64) []float64 {
	maxL := math.Inf(-1)
	for _, v := range logits {
		if v > maxL {
			maxL = v
		}
	}
	out := grow(dst, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - maxL)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(probs []float64, rng *xrand.RNG) int {
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}

// LogProb returns log p[a] clamped away from -inf.
func LogProb(probs []float64, a int) float64 {
	p := probs[a]
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

// Entropy returns the Shannon entropy of the distribution in nats.
func Entropy(probs []float64) float64 {
	h := 0.0
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// LogProbGrad returns d log p[a] / d logits = onehot(a) - probs.
func LogProbGrad(probs []float64, a int) []float64 {
	return LogProbGradInto(nil, probs, a)
}

// LogProbGradInto is LogProbGrad writing into dst (grown as needed,
// returned).
func LogProbGradInto(dst, probs []float64, a int) []float64 {
	g := grow(dst, len(probs))
	for i, p := range probs {
		g[i] = -p
	}
	g[a] += 1
	return g
}

// EntropyGrad returns d H / d logits = -p_i (log p_i + H).
func EntropyGrad(probs []float64) []float64 {
	return EntropyGradInto(nil, probs)
}

// EntropyGradInto is EntropyGrad writing into dst (grown as needed,
// returned).
func EntropyGradInto(dst, probs []float64) []float64 {
	h := Entropy(probs)
	g := grow(dst, len(probs))
	for i, p := range probs {
		if p > 1e-12 {
			g[i] = -p * (math.Log(p) + h)
		} else {
			g[i] = 0
		}
	}
	return g
}

// ArgMax returns the index of the largest value.
func ArgMax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

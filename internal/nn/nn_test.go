package nn

import (
	"math"
	"testing"
	"testing/quick"

	"harl/internal/xrand"
)

func TestLinearForwardShape(t *testing.T) {
	rng := xrand.New(1)
	l := NewLinear(3, 2, rng)
	y := l.Forward([]float64{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output len %d", len(y))
	}
}

func TestLinearForwardPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	NewLinear(3, 2, xrand.New(1)).Forward([]float64{1})
}

// TestLinearGradCheck verifies Backward against finite differences.
func TestLinearGradCheck(t *testing.T) {
	rng := xrand.New(2)
	l := NewLinear(4, 3, rng)
	x := []float64{0.3, -0.2, 0.8, 0.1}
	dy := []float64{1, -0.5, 0.25}
	loss := func() float64 {
		y := l.Forward(x)
		s := 0.0
		for i := range y {
			s += y[i] * dy[i]
		}
		return s
	}
	l.ZeroGrad()
	dx := l.Backward(x, dy)
	const eps = 1e-6
	// Weight gradients.
	for i := 0; i < len(l.W); i += 5 {
		orig := l.W[i]
		l.W[i] = orig + eps
		up := loss()
		l.W[i] = orig - eps
		down := loss()
		l.W[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-l.gW[i]) > 1e-5 {
			t.Fatalf("dW[%d] = %f want %f", i, l.gW[i], want)
		}
	}
	// Input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d] = %f want %f", i, dx[i], want)
		}
	}
}

// TestMLPGradCheck verifies end-to-end backprop through tanh layers.
func TestMLPGradCheck(t *testing.T) {
	rng := xrand.New(3)
	m := NewMLP(rng, 3, 5, 2)
	x := []float64{0.2, -0.4, 0.7}
	dy := []float64{1, 2}
	loss := func() float64 {
		y, _ := m.Forward(append([]float64(nil), x...))
		return y[0]*dy[0] + y[1]*dy[1]
	}
	m.ZeroGrad()
	_, cache := m.Forward(append([]float64(nil), x...))
	m.Backward(cache, append([]float64(nil), dy...))
	const eps = 1e-6
	for li, l := range m.Layers {
		for i := 0; i < len(l.W); i += 3 {
			orig := l.W[i]
			l.W[i] = orig + eps
			up := loss()
			l.W[i] = orig - eps
			down := loss()
			l.W[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(want-l.gW[i]) > 1e-4 {
				t.Fatalf("layer %d dW[%d] = %g want %g", li, i, l.gW[i], want)
			}
		}
	}
}

func TestMLPLearnsRegression(t *testing.T) {
	rng := xrand.New(4)
	m := NewMLP(rng, 2, 16, 1)
	target := func(x []float64) float64 { return x[0] - 0.5*x[1] }
	var first, last float64
	adamT := 0
	for epoch := 0; epoch < 400; epoch++ {
		m.ZeroGrad()
		loss := 0.0
		for b := 0; b < 16; b++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y, cache := m.Forward(x)
			d := y[0] - target(x)
			loss += d * d
			m.Backward(cache, []float64{2 * d})
		}
		adamT++
		m.Step(1e-2, 16, adamT)
		if epoch == 0 {
			first = loss / 16
		}
		last = loss / 16
	}
	if last > first/10 {
		t.Fatalf("loss did not drop: first %.4f last %.4f", first, last)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			logits = append(logits, math.Mod(v, 50))
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	if math.IsNaN(p[0]) || p[1] < p[0] || p[1] < p[2] {
		t.Fatalf("unstable softmax: %v", p)
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := xrand.New(5)
	probs := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("arm %d frequency %.3f want %.3f", i, got, p)
		}
	}
}

func TestLogProbGradSumsToZero(t *testing.T) {
	p := Softmax([]float64{0.5, -1, 2})
	g := LogProbGrad(p, 1)
	sum := 0.0
	for _, v := range g {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("logprob grad sums to %g", sum)
	}
	if g[1] <= 0 {
		t.Fatal("chosen action gradient must be positive")
	}
}

func TestEntropyGradAtUniformIsZero(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	for _, v := range EntropyGrad(p) {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("entropy grad at uniform: %v", EntropyGrad(p))
		}
	}
}

func TestEntropyValues(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("deterministic entropy %f", h)
	}
	if h := Entropy([]float64{0.5, 0.5}); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform entropy %f", h)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
}

func TestNumParams(t *testing.T) {
	m := NewMLP(xrand.New(1), 3, 4, 2)
	// 3*4+4 + 4*2+2 = 26
	if m.NumParams() != 26 {
		t.Fatalf("params %d want 26", m.NumParams())
	}
}

func TestAdamStepReducesLoss(t *testing.T) {
	rng := xrand.New(6)
	l := NewLinear(1, 1, rng)
	// Fit y = 3x.
	for step := 1; step <= 500; step++ {
		l.ZeroGrad()
		x := []float64{rng.Float64()}
		y := l.Forward(x)
		d := y[0] - 3*x[0]
		l.Backward(x, []float64{2 * d})
		l.Step(5e-2, 1, step)
	}
	if math.Abs(l.W[0]-3) > 0.2 {
		t.Fatalf("Adam did not converge: w=%f", l.W[0])
	}
}

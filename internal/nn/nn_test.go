package nn

import (
	"math"
	"testing"
	"testing/quick"

	"harl/internal/xrand"
)

func TestLinearForwardShape(t *testing.T) {
	rng := xrand.New(1)
	l := NewLinear(3, 2, rng)
	y := l.Forward([]float64{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output len %d", len(y))
	}
}

func TestLinearForwardPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim mismatch did not panic")
		}
	}()
	NewLinear(3, 2, xrand.New(1)).Forward([]float64{1})
}

// TestLinearGradCheck verifies Backward against finite differences.
func TestLinearGradCheck(t *testing.T) {
	rng := xrand.New(2)
	l := NewLinear(4, 3, rng)
	x := []float64{0.3, -0.2, 0.8, 0.1}
	dy := []float64{1, -0.5, 0.25}
	loss := func() float64 {
		y := l.Forward(x)
		s := 0.0
		for i := range y {
			s += y[i] * dy[i]
		}
		return s
	}
	l.ZeroGrad()
	dx := l.Backward(x, dy)
	const eps = 1e-6
	// Weight gradients.
	for i := 0; i < len(l.W); i += 5 {
		orig := l.W[i]
		l.W[i] = orig + eps
		up := loss()
		l.W[i] = orig - eps
		down := loss()
		l.W[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-l.gW[i]) > 1e-5 {
			t.Fatalf("dW[%d] = %f want %f", i, l.gW[i], want)
		}
	}
	// Input gradients.
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		up := loss()
		x[i] = orig - eps
		down := loss()
		x[i] = orig
		want := (up - down) / (2 * eps)
		if math.Abs(want-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d] = %f want %f", i, dx[i], want)
		}
	}
}

// TestMLPGradCheck verifies end-to-end backprop through tanh layers.
func TestMLPGradCheck(t *testing.T) {
	rng := xrand.New(3)
	m := NewMLP(rng, 3, 5, 2)
	x := []float64{0.2, -0.4, 0.7}
	dy := []float64{1, 2}
	loss := func() float64 {
		y, _ := m.Forward(append([]float64(nil), x...))
		return y[0]*dy[0] + y[1]*dy[1]
	}
	m.ZeroGrad()
	_, cache := m.Forward(append([]float64(nil), x...))
	m.Backward(cache, append([]float64(nil), dy...))
	const eps = 1e-6
	for li, l := range m.Layers {
		for i := 0; i < len(l.W); i += 3 {
			orig := l.W[i]
			l.W[i] = orig + eps
			up := loss()
			l.W[i] = orig - eps
			down := loss()
			l.W[i] = orig
			want := (up - down) / (2 * eps)
			if math.Abs(want-l.gW[i]) > 1e-4 {
				t.Fatalf("layer %d dW[%d] = %g want %g", li, i, l.gW[i], want)
			}
		}
	}
}

func TestMLPLearnsRegression(t *testing.T) {
	rng := xrand.New(4)
	m := NewMLP(rng, 2, 16, 1)
	target := func(x []float64) float64 { return x[0] - 0.5*x[1] }
	var first, last float64
	adamT := 0
	for epoch := 0; epoch < 400; epoch++ {
		m.ZeroGrad()
		loss := 0.0
		for b := 0; b < 16; b++ {
			x := []float64{rng.Float64(), rng.Float64()}
			y, cache := m.Forward(x)
			d := y[0] - target(x)
			loss += d * d
			m.Backward(cache, []float64{2 * d})
		}
		adamT++
		m.Step(1e-2, 16, adamT)
		if epoch == 0 {
			first = loss / 16
		}
		last = loss / 16
	}
	if last > first/10 {
		t.Fatalf("loss did not drop: first %.4f last %.4f", first, last)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		logits := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			logits = append(logits, math.Mod(v, 50))
		}
		p := Softmax(logits)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	if math.IsNaN(p[0]) || p[1] < p[0] || p[1] < p[2] {
		t.Fatalf("unstable softmax: %v", p)
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := xrand.New(5)
	probs := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 60000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("arm %d frequency %.3f want %.3f", i, got, p)
		}
	}
}

func TestLogProbGradSumsToZero(t *testing.T) {
	p := Softmax([]float64{0.5, -1, 2})
	g := LogProbGrad(p, 1)
	sum := 0.0
	for _, v := range g {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("logprob grad sums to %g", sum)
	}
	if g[1] <= 0 {
		t.Fatal("chosen action gradient must be positive")
	}
}

func TestEntropyGradAtUniformIsZero(t *testing.T) {
	p := []float64{0.25, 0.25, 0.25, 0.25}
	for _, v := range EntropyGrad(p) {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("entropy grad at uniform: %v", EntropyGrad(p))
		}
	}
}

func TestEntropyValues(t *testing.T) {
	if h := Entropy([]float64{1, 0}); h != 0 {
		t.Fatalf("deterministic entropy %f", h)
	}
	if h := Entropy([]float64{0.5, 0.5}); math.Abs(h-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform entropy %f", h)
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax([]float64{1, 3, 2}) != 1 {
		t.Fatal("argmax wrong")
	}
}

func TestNumParams(t *testing.T) {
	m := NewMLP(xrand.New(1), 3, 4, 2)
	// 3*4+4 + 4*2+2 = 26
	if m.NumParams() != 26 {
		t.Fatalf("params %d want 26", m.NumParams())
	}
}

// TestReusePathsBitIdentical pins the buffer-reuse kernels (ForwardInto,
// BackwardInto, ForwardReuse, BackwardReuse, SoftmaxInto, LogProbGradInto,
// EntropyGradInto) to their allocating counterparts bit for bit: the PPO hot
// path switched to them, and the tuner's workers=1 ≡ workers=N journal
// contract tolerates zero drift.
func TestReusePathsBitIdentical(t *testing.T) {
	// Two identically-seeded layers, one driven through each path, so the
	// accumulated gW/gB can be compared as well as the returned slices.
	la := NewLinear(5, 4, xrand.New(7))
	lb := NewLinear(5, 4, xrand.New(7))
	var yBuf, dxBuf []float64
	for iter := 0; iter < 3; iter++ {
		x := []float64{0.3, -1.2, 0.05, 2.4, -0.7}
		dy := []float64{1, -0.5, 0.25, 0.8}
		ya := la.Forward(x)
		yBuf = lb.ForwardInto(yBuf, x)
		for i := range ya {
			if ya[i] != yBuf[i] {
				t.Fatalf("iter %d ForwardInto[%d] = %g want %g", iter, i, yBuf[i], ya[i])
			}
		}
		dxa := la.Backward(x, dy)
		dxBuf = lb.BackwardInto(dxBuf, x, dy)
		for i := range dxa {
			if dxa[i] != dxBuf[i] {
				t.Fatalf("iter %d BackwardInto dx[%d] = %g want %g", iter, i, dxBuf[i], dxa[i])
			}
		}
		for i := range la.gW {
			if la.gW[i] != lb.gW[i] {
				t.Fatalf("iter %d gW[%d] = %g want %g", iter, i, lb.gW[i], la.gW[i])
			}
		}
		for i := range la.gB {
			if la.gB[i] != lb.gB[i] {
				t.Fatalf("iter %d gB[%d] = %g want %g", iter, i, lb.gB[i], la.gB[i])
			}
		}
	}

	ma := NewMLP(xrand.New(8), 4, 6, 3)
	mb := NewMLP(xrand.New(8), 4, 6, 3)
	for iter := 0; iter < 3; iter++ {
		x := []float64{0.2, -0.4, 0.7, float64(iter)}
		dy := []float64{1, 2, -0.5}
		ya, ca := ma.Forward(x)
		yb, cb := mb.ForwardReuse(x)
		for i := range ya {
			if ya[i] != yb[i] {
				t.Fatalf("iter %d ForwardReuse[%d] = %g want %g", iter, i, yb[i], ya[i])
			}
		}
		// Backward mutates dy, so feed each path its own copy.
		ga := ma.Backward(ca, append([]float64(nil), dy...))
		gb := mb.BackwardReuse(cb, append([]float64(nil), dy...))
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("iter %d BackwardReuse dx[%d] = %g want %g", iter, i, gb[i], ga[i])
			}
		}
		for li := range ma.Layers {
			for i := range ma.Layers[li].gW {
				if ma.Layers[li].gW[i] != mb.Layers[li].gW[i] {
					t.Fatalf("iter %d layer %d gW[%d] differs", iter, li, i)
				}
			}
		}
	}

	probs := Softmax([]float64{0.5, -1, 2, 0.1})
	var pBuf, gBuf, eBuf []float64
	pBuf = SoftmaxInto(pBuf, []float64{0.5, -1, 2, 0.1})
	for i := range probs {
		if probs[i] != pBuf[i] {
			t.Fatalf("SoftmaxInto[%d] = %g want %g", i, pBuf[i], probs[i])
		}
	}
	// Seed the reusable buffers with garbage to catch stale-value leaks (the
	// allocating paths start from zeroed memory).
	gBuf = []float64{99, 99, 99, 99}
	eBuf = []float64{99, 99, 99, 99}
	ga, ea := LogProbGrad(probs, 2), EntropyGrad(probs)
	gBuf = LogProbGradInto(gBuf, probs, 2)
	eBuf = EntropyGradInto(eBuf, probs)
	for i := range ga {
		if ga[i] != gBuf[i] || ea[i] != eBuf[i] {
			t.Fatalf("grad Into[%d]: logp %g/%g entropy %g/%g", i, gBuf[i], ga[i], eBuf[i], ea[i])
		}
	}
	// EntropyGrad leaves clamped-away entries at zero; the reuse path must
	// overwrite stale contents there too.
	clamped := []float64{1, 0, 0}
	eBuf = []float64{99, 99, 99}
	eBuf = EntropyGradInto(eBuf, clamped)
	for i, v := range EntropyGrad(clamped) {
		if eBuf[i] != v {
			t.Fatalf("EntropyGradInto clamped[%d] = %g want %g", i, eBuf[i], v)
		}
	}
}

// TestReusePathsAllocFree pins the point of the reuse APIs: with warm
// buffers the hot kernels allocate nothing.
func TestReusePathsAllocFree(t *testing.T) {
	l := NewLinear(8, 4, xrand.New(9))
	m := NewMLP(xrand.New(9), 8, 16, 4)
	x := make([]float64, 8)
	dy := []float64{1, -1, 0.5, 2}
	var yBuf, dxBuf, pBuf, gBuf []float64
	warm := func() {
		yBuf = l.ForwardInto(yBuf, x)
		dxBuf = l.BackwardInto(dxBuf, x, dy)
		out, c := m.ForwardReuse(x)
		m.BackwardReuse(c, out)
		pBuf = SoftmaxInto(pBuf, dy)
		gBuf = LogProbGradInto(gBuf, pBuf, 0)
		gBuf = EntropyGradInto(gBuf, pBuf)
	}
	warm()
	if got := testing.AllocsPerRun(20, warm); got != 0 {
		t.Fatalf("warm reuse kernels allocate %v times per run, want 0", got)
	}
}

func TestAdamStepReducesLoss(t *testing.T) {
	rng := xrand.New(6)
	l := NewLinear(1, 1, rng)
	// Fit y = 3x.
	for step := 1; step <= 500; step++ {
		l.ZeroGrad()
		x := []float64{rng.Float64()}
		y := l.Forward(x)
		d := y[0] - 3*x[0]
		l.Backward(x, []float64{2 * d})
		l.Step(5e-2, 1, step)
	}
	if math.Abs(l.W[0]-3) > 0.2 {
		t.Fatalf("Adam did not converge: w=%f", l.W[0])
	}
}

// Package xrand provides deterministic, splittable pseudo-random number
// generation for the HARL auto-scheduler.
//
// Every stochastic component in the repository (schedule sampling, evolutionary
// mutation, PPO exploration, measurement noise, bandit tie-breaking) draws from
// an *xrand.RNG seeded explicitly by the experiment harness, so that every
// experiment in EXPERIMENTS.md is exactly reproducible. The generator is
// splitmix64 at its core, promoted to xoshiro256** for the main stream, which
// is both fast and statistically strong enough for simulation workloads.
package xrand

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; use Split to derive independent generators for goroutines.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used to seed the xoshiro state so that similar seeds yield unrelated streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed value.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. The parent advances by one step.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	return New(seed ^ 0xa0761d6478bd642f)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value of the xoshiro256** stream.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded output.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniform index weighted by the non-negative weights.
// If all weights are zero it falls back to uniform selection.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: negative or NaN weight")
		}
		total += w
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Hash64 deterministically mixes a sequence of 64-bit words into one value.
// It is used to derive the simulator's reproducible "texture" noise from a
// schedule's parameter vector without consuming generator state.
func Hash64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h = splitmix64(&h)
	}
	return h
}

// HashUnit maps Hash64 output to a float in [0, 1).
func HashUnit(words ...uint64) float64 {
	return float64(Hash64(words...)>>11) / (1 << 53)
}

package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split stream mirrors parent stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 100000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %f too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	r := New(17)
	weights := []float64{0, 1, 0, 3}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(weights)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight arms selected: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio %f, want ≈3", ratio)
	}
}

func TestChoiceZeroWeightsFallsBack(t *testing.T) {
	r := New(19)
	counts := make([]int, 3)
	for i := 0; i < 3000; i++ {
		counts[r.Choice([]float64{0, 0, 0})]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("uniform fallback never chose arm %d", i)
		}
	}
}

func TestChoicePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	New(1).Choice([]float64{1, -1})
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2, 3) != Hash64(1, 2, 3) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1, 2, 3) == Hash64(1, 2, 4) {
		t.Fatal("Hash64 collision on trivially different input")
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 must be order-sensitive")
	}
}

func TestHashUnitRange(t *testing.T) {
	f := func(a, b uint64) bool {
		u := HashUnit(a, b)
		return u >= 0 && u < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle altered elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Fatalf("Bool(0.25) fired %d/10000", n)
	}
}

package lint_test

import (
	"testing"

	"harl/internal/lint"
	"harl/internal/lint/linttest"
)

func TestErrcloseFixture(t *testing.T) {
	linttest.Run(t, lint.NewErrclose(fixtureScope), "errclose/a")
}

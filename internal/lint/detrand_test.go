package lint_test

import (
	"testing"

	"harl/internal/lint"
	"harl/internal/lint/linttest"
)

// fixtureScope points the analyzers at the fixture tree instead of their
// production package lists.
var fixtureScope = []string{"harl/internal/lint/testdata/..."}

func TestDetrandFixture(t *testing.T) {
	linttest.Run(t, lint.NewDetrand(fixtureScope), "detrand/a")
}

// TestDetrandScope pins that the analyzer stays silent outside its scope: the
// same fixture package analyzed under the production scope produces nothing.
func TestDetrandScope(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/detrand/a")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, []*lint.Analyzer{lint.NewDetrand(lint.DeterministicPackages)}, lint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 0 {
			t.Errorf("out-of-scope package %s still produced diagnostics: %v", pkg.Path, diags)
		}
	}
}

package lint_test

import (
	"testing"

	"harl/internal/lint"
	"harl/internal/lint/linttest"
)

func TestWireenvelopeFixture(t *testing.T) {
	linttest.Run(t, lint.NewWireenvelope(fixtureScope), "wireenvelope/a")
}

package lint_test

import (
	"testing"

	"harl/internal/lint"
	"harl/internal/lint/linttest"
)

func TestMaporderFixture(t *testing.T) {
	linttest.Run(t, lint.NewMaporder(fixtureScope), "maporder/a")
}

package lint

import (
	"go/ast"
	"go/types"
)

// NewWireenvelope builds the wireenvelope analyzer scoped to the given
// package list. In the HTTP handler layers it reports:
//
//   - calls to net/http.Error — every non-2xx body must be the one v1 error
//     envelope, written by wire.WriteError (http.Error emits bare text and
//     bypasses the contract);
//   - anonymous map[string]... composite literals passed to a JSON encode or
//     wire.WriteJSON — response shapes must be named, versioned wire types
//     (internal/service/wire.go, internal/wire), not ad-hoc maps that drift
//     field by field.
//
// This is the exact bug class PR 7 fixed by hand: a hand-rolled error string
// and {"cache_hit":false} map bodies that silently violated the documented
// contract.
func NewWireenvelope(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "wireenvelope",
		Doc:  "route handler errors through wire.WriteError and responses through named wire types",
	}
	a.Run = func(pass *Pass) error {
		if !matchScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.Info, call)
				if fn == nil {
					return true
				}
				pkg, name := pkgPathOf(fn), fn.Name()
				if pkg == "net/http" && name == "Error" {
					pass.Reportf(call.Pos(), "http.Error bypasses the v1 error envelope: use wire.WriteError with a stable ErrorCode")
					return true
				}
				if isResponseEncoder(pkg, name) {
					for _, arg := range call.Args {
						if lit := anonymousStringMapLit(pass.Info, arg); lit != nil {
							pass.Reportf(lit.Pos(), "anonymous map[string] response literal passed to %s.%s: define a named, versioned wire type instead", pkg, name)
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isResponseEncoder reports whether pkg.name serializes a response body.
func isResponseEncoder(pkg, name string) bool {
	switch pkg {
	case "encoding/json":
		return name == "Marshal" || name == "MarshalIndent" || name == "Encode"
	case "harl/internal/wire":
		return name == "WriteJSON"
	}
	return false
}

// anonymousStringMapLit unwraps unary-& and parens and returns arg as a
// composite literal of map[string]... type, or nil.
func anonymousStringMapLit(info *types.Info, arg ast.Expr) *ast.CompositeLit {
	e := ast.Unparen(arg)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	m, ok := info.TypeOf(lit).Underlying().(*types.Map)
	if !ok {
		return nil
	}
	if basic, ok := m.Key().Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
		return nil
	}
	return lit
}

// Package linttest runs lint analyzers against fixture packages under
// testdata/src, checking reported diagnostics against `// want "substring"`
// annotations — the same contract as golang.org/x/tools/go/analysis/
// analysistest, rebuilt on the stdlib-only loader.
//
// A fixture is an ordinary compiling package (the go tool ignores testdata
// directories when expanding ./..., but loads them fine when named
// explicitly). Each line expected to trigger a diagnostic carries a trailing
//
//	// want "message substring"
//
// comment (several quoted strings for several diagnostics on one line).
// Lines with a //lint:allow suppression carry no want — their absence from
// the diagnostic set is exactly what proves the suppression works.
package linttest

import (
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"harl/internal/lint"
)

// Run loads testdata/src/<fixture> relative to the calling test's package
// directory, applies the analyzer, and reports every mismatch between
// diagnostics and want annotations as a test error.
func Run(t *testing.T, a *lint.Analyzer, fixture string) {
	t.Helper()
	pkgs := load(t, fixture)
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, []*lint.Analyzer{a}, lint.Options{})
		if err != nil {
			t.Fatalf("lint.Run(%s): %v", pkg.Path, err)
		}
		check(t, pkg, diags)
	}
}

// RunSuite is Run with several analyzers and stale-allow reporting on — for
// fixtures exercising the suppression machinery itself.
func RunSuite(t *testing.T, analyzers []*lint.Analyzer, fixture string) {
	t.Helper()
	pkgs := load(t, fixture)
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, analyzers, lint.Options{ReportStaleAllows: true})
		if err != nil {
			t.Fatalf("lint.Run(%s): %v", pkg.Path, err)
		}
		check(t, pkg, diags)
	}
}

func load(t *testing.T, fixture string) []*lint.Package {
	t.Helper()
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgDir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(root, filepath.Join(pkgDir, "testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	pattern := "./" + filepath.ToSlash(rel)
	pkgs, err := lint.Load(root, pattern)
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", fixture)
	}
	return pkgs
}

type want struct {
	pos     token.Position
	substr  string
	matched bool
}

func check(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		if w := matchWant(wants, d); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", w.pos.Filename, w.pos.Line, w.substr)
		}
	}
}

func matchWant(wants []*want, d lint.Diagnostic) *want {
	for _, w := range wants {
		if w.matched || w.pos.Filename != d.Pos.Filename || w.pos.Line != d.Pos.Line {
			continue
		}
		if strings.Contains(d.Message, w.substr) {
			return w
		}
	}
	return nil
}

func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range splitQuoted(rest) {
					s, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want annotation %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{pos: pos, substr: s})
				}
			}
		}
	}
	return wants
}

// splitQuoted splits `"a" "b c"` into its quoted fields.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) && s[end] != '"' {
			if s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			out = append(out, s)
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

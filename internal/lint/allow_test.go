package lint_test

import (
	"strings"
	"testing"

	"harl/internal/lint"
)

// TestAllowPolicy pins the suppression contract on the allowpolicy fixture:
// a justified allow silences its diagnostic; a reasonless allow, a typo'd
// analyzer name and a stale allow each surface as diagnostics of their own,
// and a broken allow suppresses nothing.
func TestAllowPolicy(t *testing.T) {
	root, err := lint.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := lint.Load(root, "./internal/lint/testdata/src/allowpolicy/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want 1 fixture package, got %d", len(pkgs))
	}
	diags, err := lint.Run(pkgs[0], []*lint.Analyzer{lint.NewDetrand(fixtureScope)}, lint.Options{ReportStaleAllows: true})
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{
		// BadNoReason: the reasonless allow is malformed, and the wall-clock
		// read it hoped to cover survives.
		"malformed //lint:allow: need an analyzer name and a justification",
		"time.Now (wall clock) in deterministic package",
		// BadTypo: the unknown analyzer name plus the unsuppressed finding.
		"unknown analyzer detrnd in //lint:allow",
		"os.Getpid (process identity) in deterministic package",
		// BadStale: the dead allow.
		"stale //lint:allow: no detrand diagnostic",
	}
	if len(diags) != len(wants) {
		t.Errorf("want %d diagnostics, got %d:\n%s", len(wants), len(diags), render(diags))
	}
	for _, want := range wants {
		if !containsDiag(diags, want) {
			t.Errorf("missing diagnostic containing %q:\n%s", want, render(diags))
		}
	}
	// GoodAllowed's time.Now is on line 17; its justified allow must have
	// silenced it — exactly one surviving time.Now finding (BadNoReason's).
	now := 0
	for _, d := range diags {
		if strings.Contains(d.Message, "time.Now") {
			now++
		}
	}
	if now != 1 {
		t.Errorf("want exactly 1 surviving time.Now diagnostic (the unjustified one), got %d:\n%s", now, render(diags))
	}
}

func containsDiag(diags []lint.Diagnostic, substr string) bool {
	for _, d := range diags {
		if strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

package lint

// DeterministicPackages are the packages under the workers=1 ≡ workers=N
// byte-identical-journal contract (established in PR 1, extended by every PR
// since): all of the search loop, the learned models it trains, the
// serialization formats it persists, and the RNG seam itself. Inside them,
// every random draw must flow through harl/internal/xrand task streams and
// nothing may read wall clocks or process identity — detrand enforces this
// mechanically.
var DeterministicPackages = []string{
	"harl/internal/search",
	"harl/internal/costmodel",
	"harl/internal/schedule",
	"harl/internal/rl",
	"harl/internal/nn",
	"harl/internal/sketch",
	"harl/internal/texpr",
	"harl/internal/tunelog",
	"harl/internal/hardware",
	"harl/internal/bandit",
	"harl/internal/stats",
	"harl/internal/xrand",
}

// PersistencePackages are the packages that own durable artifacts (registry
// journals and indexes, cost-model checkpoints, bench summaries, tuning
// logs). Writes here must go through harl/internal/atomicfile or the locked
// journal helpers — atomicwrite rejects bare os.WriteFile / os.Create /
// truncating os.OpenFile, the torn-artifact bug class PR 6's S1 fixed after
// the fact.
var PersistencePackages = []string{
	"harl/internal/registry",
	"harl/internal/costmodel",
	"harl/internal/experiments",
	"harl/internal/tunelog",
}

// HandlerPackages are the HTTP surfaces bound to the v1 wire contract: every
// error response is a wire.WriteError envelope and every success body a named
// versioned type — wireenvelope rejects http.Error and anonymous map[string]
// response literals, the exact bug class PR 7's S2/S3 fixed by hand.
var HandlerPackages = []string{
	"harl/internal/service",
	"harl/internal/fleet",
	"harl/cmd/harl-serve",
	"harl/cmd/harl-worker",
}

// OrderSensitivePackages is where maporder applies: the deterministic
// packages plus everything that feeds journals, checkpoints, fingerprints or
// wire bodies — a map iteration reaching such a sink makes output order
// depend on Go's randomized map order.
var OrderSensitivePackages = append([]string{
	"harl/internal/registry",
	"harl/internal/experiments",
	"harl/internal/pretrain",
	"harl/internal/core",
	"harl/internal/service",
	"harl/internal/fleet",
	"harl",
}, DeterministicPackages...)

// ClosePackages are the packages whose Close/Flush errors carry data-loss
// signal (a journal close that fails may mean the tail never hit the disk):
// errclose flags discarding them, wherever the call site lives.
var ClosePackages = []string{
	"harl/internal/tunelog",
	"harl/internal/registry",
	"harl/internal/costmodel",
}

// ModuleScope is every package of this module — the outer bound for
// analyzers keyed on receiver types rather than call-site package.
var ModuleScope = []string{"harl/..."}

// allAnalyzerNames are the valid targets of a //lint:allow comment.
var allAnalyzerNames = []string{"detrand", "maporder", "wireenvelope", "atomicwrite", "errclose"}

// Suite returns the full analyzer suite at its production scopes — what
// cmd/harl-lint runs both standalone and as a go vet -vettool.
func Suite() []*Analyzer {
	return []*Analyzer{
		NewDetrand(DeterministicPackages),
		NewMaporder(OrderSensitivePackages),
		NewWireenvelope(HandlerPackages),
		NewAtomicwrite(PersistencePackages),
		NewErrclose(ModuleScope),
	}
}

package lint

import (
	"go/ast"
	"strconv"
)

// detrandBannedImports are package imports that smuggle nondeterminism into
// the search loop. math/rand's global generator is seeded per process and
// math/rand/v2 seeds from runtime entropy; both break replayability. All
// randomness flows through harl/internal/xrand task streams instead.
var detrandBannedImports = map[string]string{
	"math/rand":    "use harl/internal/xrand task RNG streams",
	"math/rand/v2": "use harl/internal/xrand task RNG streams",
	"crypto/rand":  "use harl/internal/xrand task RNG streams",
}

// detrandBannedCalls are functions whose results vary across runs, hosts or
// processes: wall clocks and process identity. A seed or decision derived
// from any of them silently breaks the workers=1 ≡ workers=N byte-identical
// journal contract.
var detrandBannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall clock",
		"Since": "wall clock",
		"Until": "wall clock",
	},
	"os": {
		"Getpid":    "process identity",
		"Getppid":   "process identity",
		"Getenv":    "environment-derived value",
		"LookupEnv": "environment-derived value",
		"Environ":   "environment-derived value",
		"Hostname":  "host identity",
	},
}

// NewDetrand builds the detrand analyzer scoped to the given package list. It
// reports imports of math/rand (v1 and v2) and crypto/rand, and calls to wall
// clocks (time.Now/Since/Until) and process-identity accessors
// (os.Getpid/Getenv/...) inside the deterministic packages: reproducibility of
// the RL search loop is what makes journals replayable and cost models
// transferable, so entropy may enter only through the explicit xrand seam.
func NewDetrand(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc:  "forbid wall clocks, math/rand and pid/env-derived values in the deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !matchScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if fix, ok := detrandBannedImports[path]; ok {
					pass.Reportf(imp.Pos(), "import of %s in deterministic package %s: %s", path, pass.Path, fix)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.Info, call)
				if fn == nil {
					return true
				}
				if why, ok := detrandBannedCalls[pkgPathOf(fn)][fn.Name()]; ok {
					pass.Reportf(call.Pos(), "%s.%s (%s) in deterministic package %s: derive values from the task's xrand stream or pass them in explicitly",
						pkgPathOf(fn), fn.Name(), why, pass.Path)
				}
				return true
			})
		}
		return nil
	}
	return a
}

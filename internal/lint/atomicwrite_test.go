package lint_test

import (
	"testing"

	"harl/internal/lint"
	"harl/internal/lint/linttest"
)

func TestAtomicwriteFixture(t *testing.T) {
	linttest.Run(t, lint.NewAtomicwrite(fixtureScope), "atomicwrite/a")
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewMaporder builds the maporder analyzer scoped to the given package list.
// It reports a range over a map whose loop body reaches an order-sensitive
// sink — a journal append, a checkpoint/JSON/wire encode, a fingerprint or
// hash write, or a writer print. Go randomizes map iteration order, so bytes
// produced inside such a loop differ run to run, which breaks the
// byte-identical journal and checkpoint contracts.
//
// The deterministic idiom is untouched: collect keys into a slice inside the
// range, sort, then emit while ranging the sorted slice — there the sink sits
// after the map loop, not inside it.
func NewMaporder(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "forbid map iteration that feeds journals, checkpoints, hashes or wire encodes",
	}
	a.Run = func(pass *Pass) error {
		if !matchScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if _, isMap := pass.Info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
					return true
				}
				ast.Inspect(rng.Body, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					if sink := orderSink(pass, call); sink != "" {
						pass.Reportf(call.Pos(), "%s inside a map-range body: iteration order is randomized — collect keys, sort deterministically, then emit", sink)
					}
					return true
				})
				return true
			})
		}
		return nil
	}
	return a
}

// orderSink classifies a call as an order-sensitive sink, returning a
// human-readable label or "".
func orderSink(pass *Pass, call *ast.CallExpr) string {
	fn := funcOf(pass.Info, call)
	if fn == nil {
		return ""
	}
	pkg, name := pkgPathOf(fn), fn.Name()
	switch pkg {
	case "encoding/json":
		// Marshal of a whole map value is key-sorted by encoding/json itself;
		// the hazard here is per-iteration encodes, which interleave in map
		// order.
		if strings.HasPrefix(name, "Marshal") || name == "Encode" || name == "NewEncoder" {
			return "json encode of " + name
		}
	case "fmt":
		if strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") {
			return "writer print fmt." + name
		}
	case "harl/internal/tunelog":
		if name == "Append" {
			return "journal append"
		}
	case "harl/internal/atomicfile":
		return "persisted-artifact write atomicfile." + name
	}
	// Hash writes resolve through the io.Writer embedded in hash.Hash, so key
	// on the receiver's defining package rather than the method's.
	if name == "Write" || strings.HasPrefix(name, "Sum") {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recv := namedOrigin(pass.Info.TypeOf(sel.X)); recv != nil && recv.Obj().Pkg() != nil {
				rp := recv.Obj().Pkg().Path()
				if rp == "hash" || strings.HasPrefix(rp, "hash/") || strings.HasPrefix(rp, "crypto/") {
					return "hash write"
				}
			}
		}
	}
	if strings.HasPrefix(pkg, "harl/") || pkg == "harl" {
		switch {
		case strings.HasPrefix(name, "Marshal"):
			return "serialization " + name
		case name == "Fingerprint":
			return "fingerprint hash"
		case strings.HasPrefix(name, "Save") || strings.HasPrefix(name, "Checkpoint"):
			return "checkpoint encode " + name
		}
	}
	return ""
}

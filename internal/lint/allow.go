package lint

import (
	"go/token"
	"strings"
)

// allowAnalyzerName attributes diagnostics about the suppression mechanism
// itself (malformed or stale //lint:allow comments). They are not
// suppressible: an allow comment cannot vouch for another allow comment.
const allowAnalyzerName = "lintallow"

// allowPrefix is the suppression comment marker. The full form is
//
//	//lint:allow <analyzer> <reason>
//
// and it silences diagnostics of that analyzer on its own line or the line
// directly below (so it works both as a trailing comment and as a line of its
// own above the offending statement).
const allowPrefix = "//lint:allow"

type allow struct {
	pos      token.Position
	analyzer string
	used     bool
}

type allowSet []*allow

// match returns the allow suppressing d, if any.
func (as allowSet) match(d Diagnostic) *allow {
	for _, al := range as {
		if al.analyzer != d.Analyzer || al.pos.Filename != d.Pos.Filename {
			continue
		}
		if al.pos.Line == d.Pos.Line || al.pos.Line == d.Pos.Line-1 {
			return al
		}
	}
	return nil
}

// collectAllows extracts the package's allow comments plus diagnostics for
// malformed ones (missing analyzer name or reason, or naming an analyzer the
// suite does not have — a typo would otherwise silently suppress nothing).
// Allow comments in _test.go files are ignored, matching the analyzers'
// test-file skip.
func collectAllows(pkg *Package) (allowSet, []Diagnostic) {
	var (
		allows allowSet
		broken []Diagnostic
	)
	known := make(map[string]bool, len(allAnalyzerNames))
	for _, n := range allAnalyzerNames {
		known[n] = true
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) < 2:
					broken = append(broken, Diagnostic{
						Pos:      pos,
						Analyzer: allowAnalyzerName,
						Message:  "malformed //lint:allow: need an analyzer name and a justification, e.g. //lint:allow detrand <why this is safe>",
					})
				case !known[fields[0]]:
					broken = append(broken, Diagnostic{
						Pos:      pos,
						Analyzer: allowAnalyzerName,
						Message:  "unknown analyzer " + strings.Trim(fields[0], `"`) + " in //lint:allow (have " + strings.Join(allAnalyzerNames, ", ") + ")",
					})
				default:
					allows = append(allows, &allow{pos: pos, analyzer: fields[0]})
				}
			}
		}
	}
	return allows, broken
}

// Package lint is the determinism and wire-contract lint suite of the HARL
// reproduction: custom static analyzers that mechanically enforce the
// load-bearing conventions the regression suites only catch after the fact —
// the workers=1 ≡ workers=N byte-identical-journal contract, the atomic-write
// rules of the persistence packages, and the one-error-envelope v1 API
// contract.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer / Pass / Diagnostic) so analyzers port to the upstream
// framework mechanically, but it is built on the standard library alone:
// packages are parsed with go/parser and type-checked with go/types against
// compiler export data (see load.go), so the suite needs no third-party
// modules — a hard constraint of this build environment.
//
// Suppressions: a diagnostic is silenced only by an explicit
//
//	//lint:allow <analyzer> <reason>
//
// comment on the offending line or the line directly above it. The reason is
// mandatory — an allow without one is itself a diagnostic — and an allow that
// suppresses nothing is reported as stale, so the tree can never accumulate
// unexplained or dead suppressions.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one lint pass: a name (the key allow comments and
// diagnostics carry), one-line documentation, and the Run function applied to
// each package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass connects one Analyzer run to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path with any test-variant suffix
	// ("pkg [pkg.test]") stripped, so scope matching treats a package and
	// its internal test variant identically.
	Path string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Every analyzer in
// the suite skips test files: tests may use wall clocks, ad-hoc writes and
// unchecked closes freely — the contracts guard production code paths.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is a loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path, test-variant suffix stripped
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Options configures a Run.
type Options struct {
	// ReportStaleAllows adds diagnostics for //lint:allow comments that
	// suppressed nothing. Enable it only when running the full suite — under
	// a partial run an allow for an unrun analyzer is not evidence of
	// staleness.
	ReportStaleAllows bool
}

// Run applies the analyzers to one package, filters the findings through the
// package's //lint:allow comments, and returns the surviving diagnostics
// sorted by position. Malformed allow comments (missing analyzer or reason)
// and — under Options.ReportStaleAllows — allows that matched nothing are
// reported as diagnostics themselves and cannot be suppressed.
func Run(pkg *Package, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
		}
	}

	allows, broken := collectAllows(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if al := allows.match(d); al != nil {
			al.used = true
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, broken...)
	if opts.ReportStaleAllows {
		for _, al := range allows {
			if !al.used {
				diags = append(diags, Diagnostic{
					Pos:      al.pos,
					Analyzer: allowAnalyzerName,
					Message:  fmt.Sprintf("stale //lint:allow: no %s diagnostic on this or the next line; remove it", al.analyzer),
				})
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// matchScope reports whether a package path falls inside a scope list. A
// scope entry is either an exact import path or a "prefix/..." wildcard
// (which also matches the prefix itself, mirroring go tool patterns).
func matchScope(pkg string, scope []string) bool {
	for _, s := range scope {
		if base, ok := strings.CutSuffix(s, "/..."); ok {
			if pkg == base || strings.HasPrefix(pkg, base+"/") {
				return true
			}
			continue
		}
		if pkg == s {
			return true
		}
	}
	return false
}

// funcOf resolves a call expression to the function or method object it
// invokes, or nil for calls through function-typed variables, type
// conversions and built-ins.
func funcOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the defining package path of a function object ("" for
// builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// namedOrigin unwraps pointers and aliases and returns the named type (or
// nil) behind t — the declaration whose package identifies ownership for
// receiver-scoped rules like errclose.
func namedOrigin(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// NewErrclose builds the errclose analyzer scoped to the given package list
// (normally the whole module). It reports discarded error returns of Close
// and Flush on the persistence types — tunelog journals and file locks,
// registry backends, cost-model checkpoint writers — whether discarded as a
// bare statement, a defer, or an explicit `_ =` assignment.
//
// These closes carry data-loss signal, not cleanup noise: Journal.Close
// surfaces the retained write error of every fire-and-forget append, a
// backend Close is the batcher's drain barrier, and a failed flock release
// can wedge every later publisher. The analyzer keys on the receiver's
// defining package (ClosePackages, plus the io.Closer handles
// tunelog.AcquireFileLock hands out), so closing an os.File or an HTTP body
// stays untouched.
func NewErrclose(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "errclose",
		Doc:  "check Close/Flush errors on journals, checkpoints, locks and registry backends",
	}
	a.Run = func(pass *Pass) error {
		if !matchScope(pass.Path, scope) {
			return nil
		}
		report := func(call *ast.CallExpr, how string) {
			fn, recv := closeLike(pass.Info, call)
			if fn == nil {
				return
			}
			pass.Reportf(call.Pos(), "%s %s.%s discards its error: it carries the journal/checkpoint write failure — check it (or join it into the returned error)",
				how, recv, fn.Name())
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if call, ok := st.X.(*ast.CallExpr); ok {
						report(call, "unchecked")
					}
				case *ast.DeferStmt:
					report(st.Call, "deferred")
				case *ast.GoStmt:
					report(st.Call, "go-discarded")
				case *ast.AssignStmt:
					if call, ok := soleBlankAssign(st); ok {
						report(call, "explicitly discarded")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// soleBlankAssign matches `_ = x.Close()` — a single call assigned entirely
// to blanks.
func soleBlankAssign(st *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(st.Rhs) != 1 {
		return nil, false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	for _, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return nil, false
		}
	}
	return call, true
}

// closeLike resolves call to a Close/Flush method returning exactly one
// error whose receiver type is owned by a persistence package (or is the
// io.Closer interface itself — the shape of tunelog.AcquireFileLock's
// returned lock handle). It returns the method object and a receiver label
// for the message, or nil.
func closeLike(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	fn := funcOf(info, call)
	if fn == nil || (fn.Name() != "Close" && fn.Name() != "Flush") {
		return nil, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return nil, ""
	}
	if named, ok := sig.Results().At(0).Type().(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return nil, ""
	}
	// The static receiver type at the call site decides scope: a concrete
	// journal, a backend implementation, or an interface declared by a
	// persistence package all count; so does a plain io.Closer, because that
	// is how flock handles travel.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv := namedOrigin(info.TypeOf(sel.X))
	if recv == nil || recv.Obj().Pkg() == nil {
		return nil, ""
	}
	pkg, name := recv.Obj().Pkg().Path(), recv.Obj().Name()
	if pkg == "io" && name == "Closer" {
		return fn, "io.Closer (lock handle)"
	}
	if matchScope(pkg, ClosePackages) {
		return fn, name
	}
	return nil, ""
}

package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

// Load loads and type-checks the packages matching the go list patterns,
// resolving imports through compiler export data: it shells out to
// `go list -export -deps -json` (which compiles dependencies into the build
// cache as needed) and type-checks only the matched packages' sources. This
// keeps the loader offline and stdlib-only — the trade the suite makes for
// not depending on golang.org/x/tools.
//
// dir anchors the go tool invocation (any directory inside the module).
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...))
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}
	all, err := goList(dir, append([]string{"-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, error) {
		e, ok := exports[path]
		if !ok {
			return "", fmt.Errorf("lint: no export data for import %q", path)
		}
		return e, nil
	})
	var out []*Package
	for _, p := range all {
		if !wanted[p.ImportPath] || p.Standard {
			continue
		}
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("lint: parse go list output: %w", err)
		}
		out = append(out, &p)
	}
}

// ExportDataImporter builds a go/types importer that reads gc export data,
// locating each package's export file through resolve. One importer instance
// memoizes loaded packages, so it is shared across a load. cmd/harl-lint's
// vettool mode reuses it with the resolve table go vet supplies.
func ExportDataImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
}

// TypeCheck parses and type-checks one package from explicit file paths —
// the shared backend of Load and of cmd/harl-lint's vettool mode, which gets
// its file and export-data lists from go vet instead of go list.
func TypeCheck(fset *token.FileSet, importPath string, files []string, imp types.Importer) (*Package, error) {
	var parsed []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		parsed = append(parsed, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(strippedPath(importPath), fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return &Package{
		Path:  strippedPath(importPath),
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}, nil
}

// strippedPath removes the test-variant suffix go vet appends to internal
// test packages ("harl/internal/search [harl/internal/search.test]").
func strippedPath(importPath string) string {
	if i := strings.IndexByte(importPath, ' '); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// ModuleRoot walks up from dir to the directory holding go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Package a is the atomicwrite fixture: bare writes of persisted artifacts,
// beside the sanctioned atomicfile and append-only journal shapes and one
// justified suppression.
package a

import (
	"os"

	"harl/internal/atomicfile"
	"harl/internal/tunelog"
)

// BadWriteFile tears the checkpoint on a crash mid-write.
func BadWriteFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want "bare os.WriteFile of a persisted artifact"
}

// BadCreate truncates the artifact before the new bytes are durable.
func BadCreate(path string, data []byte) error {
	f, err := os.Create(path) // want "bare os.Create of a persisted artifact"
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// BadTruncOpen opens for writing without O_APPEND.
func BadTruncOpen(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644) // want "os.OpenFile opens for writing without O_APPEND"
}

// GoodAtomic goes through temp file + rename + fsync.
func GoodAtomic(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, 0o644)
}

// GoodJournal appends through the locked journal helper.
func GoodJournal(path string, rec tunelog.Record) error {
	j, err := tunelog.OpenJournal(path)
	if err != nil {
		return err
	}
	if err := j.Append(rec); err != nil {
		j.Close() //lint:allow errclose fixture brevity, append error already reported
		return err
	}
	return j.Close()
}

// GoodAppendOpen opens append-only — the journal shape.
func GoodAppendOpen(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
}

// GoodLockFile opens a lock file without O_APPEND: the inode never carries
// data, it only anchors the advisory flock — the suppression documents it.
func GoodLockFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644) //lint:allow atomicwrite lock-file inode, carries an advisory flock and no data
}

// Package a is the wireenvelope fixture: handler code answering with bare
// http.Error text and anonymous map literals, beside the contract-conforming
// shapes and one justified suppression.
package a

import (
	"encoding/json"
	"net/http"

	"harl/internal/wire"
)

// healthBody is a named, versioned response type — the sanctioned shape.
type healthBody struct {
	Status string `json:"status"`
}

// BadError answers with a bare text body instead of the v1 envelope.
func BadError(w http.ResponseWriter) {
	http.Error(w, "no such job", http.StatusNotFound) // want "http.Error bypasses the v1 error envelope"
}

// BadMapBody invents a response shape inline.
func BadMapBody(w http.ResponseWriter) {
	wire.WriteJSON(w, http.StatusOK, map[string]any{"status": "ok"}) // want "anonymous map[string] response literal"
}

// BadMarshalMap marshals an ad-hoc map for a response body.
func BadMarshalMap() ([]byte, error) {
	return json.Marshal(map[string]string{"state": "done"}) // want "anonymous map[string] response literal"
}

// GoodError routes through the envelope with a stable code.
func GoodError(w http.ResponseWriter) {
	wire.WriteError(w, http.StatusNotFound, wire.CodeNotFound, "no such job")
}

// GoodBody answers with the named type.
func GoodBody(w http.ResponseWriter) {
	wire.WriteJSON(w, http.StatusOK, healthBody{Status: "ok"})
}

// GoodLabels marshals a map that is not a response body: it feeds a test
// fixture file, documented by the suppression.
func GoodLabels() ([]byte, error) {
	return json.Marshal(map[string]string{"fixture": "labels"}) //lint:allow wireenvelope test-fixture payload, not an HTTP response body
}

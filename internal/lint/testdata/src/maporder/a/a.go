// Package a is the maporder fixture: map iterations feeding order-sensitive
// sinks, beside the sanctioned collect-sort-emit idiom and one justified
// suppression.
package a

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"harl/internal/tunelog"
)

// BadJournal appends one record per map entry — journal bytes then depend on
// Go's randomized iteration order.
func BadJournal(j *tunelog.Journal, best map[string]tunelog.Record) error {
	for _, rec := range best {
		if err := j.Append(rec); err != nil { // want "journal append inside a map-range body"
			return err
		}
	}
	return nil
}

// BadEncode writes one JSON document per entry.
func BadEncode(w io.Writer, m map[string]int) error {
	enc := json.NewEncoder(w)
	for k, v := range m {
		if err := enc.Encode([2]any{k, v}); err != nil { // want "json encode of Encode inside a map-range body"
			return err
		}
	}
	return nil
}

// BadHash folds entries into a fingerprint in map order.
func BadHash(m map[string]string) uint64 {
	h := fnv.New64a()
	for k, v := range m {
		h.Write([]byte(k + "=" + v)) // want "hash write inside a map-range body"
	}
	return h.Sum64()
}

// BadPrint renders a wire body line by line in map order.
func BadPrint(w io.Writer, counters map[string]int64) {
	for name, v := range counters {
		fmt.Fprintf(w, "%s %d\n", name, v) // want "writer print fmt.Fprintf inside a map-range body"
	}
}

// GoodSorted is the sanctioned idiom: collect, sort, then emit — the sink
// ranges over the sorted slice, not the map.
func GoodSorted(j *tunelog.Journal, best map[string]tunelog.Record) error {
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := j.Append(best[k]); err != nil {
			return err
		}
	}
	return nil
}

// GoodDebugDump prints a map for interactive debugging where ordering is
// explicitly irrelevant; the suppression documents why.
func GoodDebugDump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "debug %s=%d\n", k, v) //lint:allow maporder interactive debug dump, never journaled or hashed
	}
}

// Package a is the suppression-policy fixture: a working allow, a reasonless
// allow, a typo'd analyzer name and a stale allow. The last three are
// diagnostics themselves — the tree cannot accumulate unexplained or dead
// suppressions. Expectations live in allow_test.go (programmatic, because
// own-line allow comments cannot also carry want annotations).
package a

import (
	"os"
	"time"
)

// GoodAllowed carries a justified suppression that matches a real
// diagnostic — no finding survives.
func GoodAllowed() int64 {
	return time.Now().UnixNano() //lint:allow detrand fixture demonstrating a justified suppression
}

// BadNoReason suppresses without saying why; the reasonless allow is itself
// reported and the wall-clock diagnostic it hoped to cover survives.
func BadNoReason() int64 {
	//lint:allow detrand
	return time.Now().UnixNano()
}

// BadTypo names an analyzer the suite does not have, so it would silently
// suppress nothing; both the typo and the unsuppressed finding are reported.
func BadTypo() int {
	return os.Getpid() //lint:allow detrnd wall clock is fine here
}

// BadStale allows on a line with nothing left to suppress.
func BadStale() int {
	//lint:allow detrand leftover from a removed wall-clock read
	return 42
}

// Package a is the detrand fixture: wall clocks, math/rand and
// process-identity reads inside a deterministic package, beside clean code
// and one justified suppression.
package a

import (
	"math/rand" // want "import of math/rand in deterministic package"
	"os"
	"time"

	"harl/internal/xrand"
)

// BadSeed derives a seed from the wall clock and the process id — the exact
// pattern that breaks journal replay.
func BadSeed() int64 {
	seed := time.Now().UnixNano() // want "time.Now (wall clock) in deterministic package"
	seed ^= int64(os.Getpid())    // want "os.Getpid (process identity) in deterministic package"
	return seed
}

// BadEnv folds an environment variable into a tuning decision.
func BadEnv() string {
	return os.Getenv("HARL_SEED") // want "os.Getenv (environment-derived value) in deterministic package"
}

// BadGlobalRand uses the banned package (the import is already flagged; the
// call resolves into math/rand and is not double-reported).
func BadGlobalRand() int {
	return rand.Int()
}

// GoodDraw draws from the explicit task stream — the sanctioned seam.
func GoodDraw(rng *xrand.RNG) float64 {
	return rng.Float64()
}

// GoodElapsed measures wall time for operator-facing logging only; the value
// never reaches a seed, a journal or a schedule decision.
func GoodElapsed(start time.Time) time.Duration {
	return time.Since(start) //lint:allow detrand operator-facing log line only, value never enters the search state
}

// Package a is the errclose fixture: discarded Close errors on journals and
// lock handles, beside checked closes, out-of-scope closes and one justified
// suppression.
package a

import (
	"errors"
	"os"

	"harl/internal/tunelog"
)

// BadBareClose drops the retained write error a journal surfaces at Close.
func BadBareClose(j *tunelog.Journal, rec tunelog.Record) {
	j.Append(rec) // Append errors are retained; Close surfaces them — and is dropped here.
	j.Close()     // want "unchecked Journal.Close discards its error"
}

// BadDeferClose defers the close with the error silently dropped.
func BadDeferClose(path string, rec tunelog.Record) error {
	j, err := tunelog.OpenJournal(path)
	if err != nil {
		return err
	}
	defer j.Close() // want "deferred Journal.Close discards its error"
	return j.Append(rec)
}

// BadBlankClose discards explicitly — still a contract violation here: a
// journal close failure means the tail may never have reached the disk.
func BadBlankClose(j *tunelog.Journal) {
	_ = j.Close() // want "explicitly discarded Journal.Close discards its error"
}

// BadLockRelease drops a flock-release failure on the handle
// tunelog.AcquireFileLock returns.
func BadLockRelease(path string) error {
	flock, err := tunelog.AcquireFileLock(path)
	if err != nil {
		return err
	}
	flock.Close() // want "unchecked io.Closer (lock handle).Close discards its error"
	return nil
}

// GoodCheckedClose joins the close error into the result.
func GoodCheckedClose(path string, rec tunelog.Record) error {
	j, err := tunelog.OpenJournal(path)
	if err != nil {
		return err
	}
	return errors.Join(j.Append(rec), j.Close())
}

// GoodOSFileClose is out of scope: an os.File close on a read path carries
// no journal write signal.
func GoodOSFileClose(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// GoodAllowedClose documents why this close error is ignorable: the journal
// wraps a bytes-only writer owned by the caller, so Close cannot fail.
func GoodAllowedClose(j *tunelog.Journal) {
	j.Close() //lint:allow errclose journal wraps an in-memory writer, Close has no closer and only echoes Err
}

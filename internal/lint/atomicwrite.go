package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// NewAtomicwrite builds the atomicwrite analyzer scoped to the given package
// list. In the packages that own persisted artifacts it reports:
//
//   - os.WriteFile and os.Create — a crash mid-write leaves a torn artifact
//     that the next reader sees as corruption (or worse, silently loads);
//   - os.OpenFile whose constant flag word enables writing (O_WRONLY, O_RDWR,
//     O_CREATE or O_TRUNC) without O_APPEND — the only sanctioned direct
//     write shape is the append-only journal under its advisory lock.
//
// Durable artifacts go through harl/internal/atomicfile (temp file + rename
// + fsync) or the locked journal append helpers in harl/internal/tunelog;
// PR 6's torn-tail repair exists because one path predating the rule did not.
func NewAtomicwrite(scope []string) *Analyzer {
	a := &Analyzer{
		Name: "atomicwrite",
		Doc:  "persisted artifacts go through internal/atomicfile or locked journal appends, never bare writes",
	}
	a.Run = func(pass *Pass) error {
		if !matchScope(pass.Path, scope) {
			return nil
		}
		for _, f := range pass.Files {
			if pass.InTestFile(f.Pos()) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcOf(pass.Info, call)
				if fn == nil || pkgPathOf(fn) != "os" {
					return true
				}
				switch fn.Name() {
				case "WriteFile":
					pass.Reportf(call.Pos(), "bare os.WriteFile of a persisted artifact: use atomicfile.WriteFile (temp file + rename + fsync) so a crash cannot tear it")
				case "Create":
					pass.Reportf(call.Pos(), "bare os.Create of a persisted artifact: use atomicfile.WriteFile or a locked journal append")
				case "OpenFile":
					if flags, known := constFlagArg(pass.Info, call); known && writesWithoutAppend(flags, osFlagValues(pass)) {
						pass.Reportf(call.Pos(), "os.OpenFile opens for writing without O_APPEND: persisted artifacts take atomicfile.WriteFile or an append-only journal under its lock")
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// constFlagArg extracts the constant value of an os.OpenFile flag argument.
// A non-constant flag word stays un-flagged: the rule is about the static
// shape of the call, and every sanctioned caller uses literal flags.
func constFlagArg(info *types.Info, call *ast.CallExpr) (int64, bool) {
	if len(call.Args) < 2 {
		return 0, false
	}
	tv, ok := info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

// osFlagValues resolves O_APPEND / O_WRONLY / O_RDWR / O_CREATE / O_TRUNC
// from the imported os package, so the check tracks the platform's actual
// bit values instead of hardcoding linux's.
func osFlagValues(pass *Pass) map[string]int64 {
	out := make(map[string]int64, 5)
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() != "os" {
			continue
		}
		for _, name := range []string{"O_APPEND", "O_WRONLY", "O_RDWR", "O_CREATE", "O_TRUNC"} {
			c, ok := imp.Scope().Lookup(name).(*types.Const)
			if !ok {
				continue
			}
			if v, exact := constant.Int64Val(constant.ToInt(c.Val())); exact {
				out[name] = v
			}
		}
	}
	return out
}

func writesWithoutAppend(flags int64, bits map[string]int64) bool {
	if len(bits) < 5 {
		return false
	}
	if flags&bits["O_APPEND"] != 0 {
		return false
	}
	write := bits["O_WRONLY"] | bits["O_RDWR"] | bits["O_CREATE"] | bits["O_TRUNC"]
	return flags&write != 0
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("std = %f", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("empty summary N=%d", s.N)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Fatalf("median of {0,10} = %f", q)
	}
	if q := Quantile(sorted, 0); q != 0 {
		t.Fatalf("q0 = %f", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Fatalf("q1 = %f", q)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // under
	h.Add(11) // over
	if h.Total() != 10 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over %d/%d", h.Under, h.Over)
	}
	for i, c := range h.Counts {
		if c != 1 {
			t.Fatalf("bin %d count %d", i, c)
		}
	}
	if f := h.Fraction(0, 5); f != 0.5 {
		t.Fatalf("fraction %f", f)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0.1)
	h.Add(0.1)
	h.Add(0.6)
	out := h.Render(10)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("pearson %f", r)
	}
	neg := []float64{8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("pearson %f", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // monotone but nonlinear
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("spearman %f", r)
	}
}

func TestRanksWithTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks %v want %v", r, want)
		}
	}
}

func TestNormalizeMax(t *testing.T) {
	out := NormalizeMax([]float64{2, 4, 8})
	if out[2] != 1 || out[0] != 0.25 {
		t.Fatalf("normalize %v", out)
	}
	// All-zero input unchanged.
	z := NormalizeMax([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero normalize %v", z)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 1, 2}
	if ArgMin(xs) != 1 || ArgMax(xs) != 0 {
		t.Fatalf("argmin/argmax wrong")
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty args should be -1")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !almost(g, 2, 1e-12) {
		t.Fatalf("geomean %f", g)
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("geomean of negative should be NaN")
	}
}

func TestQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		// min ≤ p25 ≤ p50 ≤ p75 ≤ max must always hold.
		return s.Min <= s.P25 && s.P25 <= s.P50 && s.P50 <= s.P75 && s.P75 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package stats provides the small statistical toolkit used by the HARL
// experiment harness: summaries, histograms, correlation coefficients and
// normalization helpers that regenerate the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an empty
// sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P25 = Quantile(sorted, 0.25)
	s.P50 = Quantile(sorted, 0.50)
	s.P75 = Quantile(sorted, 0.75)
	return s
}

// Quantile returns the q-quantile of an ascending-sorted sample using linear
// interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-range, equal-width histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram creates a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Fraction returns the fraction of in-range mass in bins [from, to).
func (h *Histogram) Fraction(from, to int) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	n := 0
	for i := from; i < to && i < len(h.Counts); i++ {
		n += h.Counts[i]
	}
	return float64(n) / float64(total)
}

// Render draws a textual bar chart of the histogram, one row per bin, with
// bars scaled so the largest bin spans width characters.
func (h *Histogram) Render(width int) string {
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*binW
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%8.3f..%8.3f | %6d %s\n", lo, lo+binW, c, bar)
	}
	return b.String()
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := mean(xs), mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples.
// Ties receive their average rank.
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks converts a sample into average ranks (1-based).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// NormalizeMax scales xs so that the maximum maps to 1. Zero or empty input
// is returned unchanged (as a copy).
func NormalizeMax(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	maxV := 0.0
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if maxV == 0 {
		return out
	}
	for i := range out {
		out[i] /= maxV
	}
	return out
}

// ArgMin returns the index of the smallest element (first on ties), or -1 for
// an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// GeoMean returns the geometric mean of strictly positive values.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

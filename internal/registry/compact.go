package registry

import (
	"bytes"
	"fmt"

	"harl/internal/atomicfile"
	"harl/internal/tunelog"
)

// Shard compaction. A shard journal is append-only, so a hot key accumulates
// one record per improvement (plus every no-op publish that was fresh when
// appended); over time superseded records dominate and every cold load pays
// to replay them. Compaction rewrites the shard journal keeping only the
// current best record per key — Force heals included verbatim, so a replay
// of the compacted journal reproduces the live best map record for record —
// and bumps the shard's generation counter so other processes detect the
// rewrite even when the new file lands on the same size and mtime as the old
// one (the case a plain file stamp cannot see).
//
// Ordering: the header (carrying the bumped generation) is made durable
// BEFORE the journal is replaced. A crash between the two leaves a bumped
// generation over the old journal — readers just reload the same records —
// whereas the reverse order could leave a rewritten journal under the old
// generation, which a size+mtime collision would make invisible.

// shouldCompactLocked reports whether the shard's journal is dominated by
// superseded records: at least compactMin records, and more than
// compactFactor times as many records as live keys. Caller holds the backend
// write lock with the shard resident.
func (b *shardedBackend) shouldCompactLocked(s *shard) bool {
	return s.idx != nil && s.idx.size >= b.compactMin &&
		float64(s.idx.size) > b.compactFactor*float64(len(s.idx.best))
}

// compactShardLocked rewrites the shard journal down to its best records.
// Caller holds the backend write lock AND the shard's cross-process file
// lock (compaction rename-replaces the journal; the lock file, which is
// never renamed, is what keeps other writers out).
func (b *shardedBackend) compactShardLocked(s *shard) error {
	kept := sortedBest(s.idx.best)
	var buf bytes.Buffer
	for _, rec := range kept {
		line, err := rec.MarshalLine()
		if err != nil {
			return fmt.Errorf("registry: compact shard %s: %w", s.id, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	gen := s.stamp.gen + 1
	if err := writeShardHeader(s.dir, shardHeader{Generation: gen, Keys: len(kept), Records: len(kept)}); err != nil {
		return err
	}
	if err := writeJournalAtomic(s.journalPath(), buf.Bytes()); err != nil {
		return fmt.Errorf("registry: compact shard %s: %w", s.id, err)
	}
	// The resident index stays valid — compaction never changes bests — but
	// the dedup set and size now describe the rewritten journal.
	s.idx.seen = make(map[tunelog.Record]bool, len(kept))
	for _, rec := range kept {
		s.idx.seen[rec] = true
	}
	s.idx.size = len(kept)
	s.stamp = shardStamp{gen: gen, fs: stampOf(s.journalPath())}
	s.keys = len(kept)
	s.records = len(kept)
	b.stats.Compactions++
	return nil
}

// writeJournalAtomic replaces a shard journal via temp-file + fsync + rename
// (atomicfile semantics), so readers racing the compaction observe either
// the old journal or the new one, never a truncated mix.
func writeJournalAtomic(path string, data []byte) error {
	return atomicfile.WriteFile(path, data, 0o644)
}

package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"harl/internal/tunelog"
)

// shardJournals returns the existing shard journal paths under dir.
func shardJournals(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, ShardsDir, "*", JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}

func TestMigrateSingleToSharded(t *testing.T) {
	dir := t.TempDir()
	v1 := openLayout(t, dir, LayoutSingle)
	recs := []tunelog.Record{
		synthRecord("w@m1", "harl", 2e-4, 1),
		synthRecord("w@m1", "harl", 1e-4, 2),
		synthRecord("w@m2", "ansor", 3e-4, 1),
		synthRecord("w@m3", "harl", 4e-4, 1),
	}
	for _, rec := range recs {
		if _, err := v1.Publish(rec); err != nil {
			t.Fatal(err)
		}
	}
	// A Force heal: its effect must survive the replay into shards.
	heal := synthRecord("w@m1", "harl", 5e-4, 3)
	if err := v1.Replace(heal); err != nil {
		t.Fatal(err)
	}
	heal.Force = true
	want := v1.Records()
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}

	// Opening with the sharded layout migrates in place.
	r := openLayout(t, dir, LayoutSharded)
	defer r.Close()
	if r.Layout() != LayoutSharded {
		t.Fatalf("layout after migration = %q", r.Layout())
	}
	if _, err := os.Stat(filepath.Join(dir, JournalFile)); !os.IsNotExist(err) {
		t.Fatalf("v1 journal still in place after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal.v1.jsonl")); err != nil {
		t.Fatalf("retired v1 journal missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, IndexFile)); !os.IsNotExist(err) {
		t.Fatalf("stale v1 index survived migration: %v", err)
	}
	// The rebuild from shard journals must be record-for-record identical,
	// Force heal included.
	got := r.Records()
	if len(got) != len(want) {
		t.Fatalf("migrated registry has %d bests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("best %d diverged after migration:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if rec, ok := resolve(t, r, "w@m1", heal.Target, "harl"); !ok || rec != heal {
		t.Fatalf("heal lost in migration: %+v, %v", rec, ok)
	}
	// Auto-detection now picks the sharded layout.
	if DetectLayout(dir) != LayoutSharded {
		t.Fatal("migrated directory not detected as sharded")
	}
}

// TestV1RegistryOpensUnmodified: a pre-existing single-file registry opened
// with the default (auto) layout resolves as before and its files stay
// byte-identical — storage v2 must not disturb v1 deployments.
func TestV1RegistryOpensUnmodified(t *testing.T) {
	dir := t.TempDir()
	v1 := openLayout(t, dir, LayoutSingle)
	rec := synthRecord("w@v1", "harl", 2e-4, 1)
	if _, err := v1.Publish(rec); err != nil {
		t.Fatal(err)
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}
	journalBefore, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	r := openLayout(t, dir, LayoutAuto)
	if r.Layout() != LayoutSingle {
		t.Fatalf("auto-detected %q for a v1 directory", r.Layout())
	}
	if got, ok := resolve(t, r, "w@v1", rec.Target, "harl"); !ok || got != rec {
		t.Fatalf("v1 resolve = %+v, %v", got, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	journalAfter, err := os.ReadFile(filepath.Join(dir, JournalFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(journalBefore) != string(journalAfter) {
		t.Fatal("opening a v1 registry modified its journal")
	}
	if _, err := os.Stat(filepath.Join(dir, ShardsDir)); !os.IsNotExist(err) {
		t.Fatal("opening a v1 registry created a shards tree")
	}
}

func TestSingleLayoutRejectsShardedDir(t *testing.T) {
	dir := t.TempDir()
	r := openLayout(t, dir, LayoutSharded)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenOptions(dir, Options{Layout: LayoutSingle}); err == nil {
		t.Fatal("LayoutSingle over a sharded directory must refuse, not shadow the shards")
	}
}

// TestCompactionPreservesBestsAndForce: once superseded records dominate, the
// shard journal is rewritten down to its per-key bests — and the rewrite must
// keep the best map exactly, Force heals included, for both the live handle
// and a from-scratch rebuild.
func TestCompactionPreservesBestsAndForce(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Layout: LayoutSharded, BatchWait: time.Millisecond,
		CompactMinRecords: 8, CompactFactor: 2}
	r, err := OpenOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One hot key accumulating improvements, then a Force heal, then no-op
	// worse records so the heal stays the best through compaction.
	for i := 0; i < 6; i++ {
		if _, err := r.Publish(synthRecord("w@hot", "harl", float64(20-i)*1e-5, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	heal := synthRecord("w@hot", "harl", 5e-4, 7)
	if err := r.Replace(heal); err != nil {
		t.Fatal(err)
	}
	heal.Force = true
	for i := 0; i < 8; i++ {
		if _, err := r.Publish(synthRecord("w@hot", "harl", float64(30+i)*1e-4, 8+i)); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after 15 records over 1 key (min %d, factor %g): %+v",
			opts.CompactMinRecords, opts.CompactFactor, st)
	}
	want := r.Records()
	if got, ok := resolve(t, r, "w@hot", heal.Target, "harl"); !ok || got != heal {
		t.Fatalf("live resolve after compaction = %+v, %v; want the heal", got, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The compacted journal holds exactly the live bests.
	journals := shardJournals(t, dir)
	if len(journals) != 1 {
		t.Fatalf("hot key spread across %d shard journals, want 1", len(journals))
	}
	if lines := countLines(t, journals[0]); lines != 1 {
		t.Fatalf("compacted shard journal holds %d records, want 1 (the best)", lines)
	}
	// A from-scratch rebuild replays only the compacted journal and must land
	// on the identical best map.
	fresh, err := OpenOptions(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	got := fresh.Records()
	if len(got) != len(want) {
		t.Fatalf("rebuild has %d bests, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("best %d diverged after compaction rebuild:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if rec, ok := resolve(t, fresh, "w@hot", heal.Target, "harl"); !ok || rec != heal {
		t.Fatalf("heal lost across compaction rebuild: %+v, %v", rec, ok)
	}
}

// TestGenerationDetectsSameStampRewrite: the file-stamp blind spot. A journal
// rewrite that lands on the same size and mtime is invisible to
// fileStamp{size,mtime}; the shard generation counter is what makes a
// resident handle notice. The test first demonstrates the blind spot (rewrite
// without a generation bump goes unseen), then the cure.
func TestGenerationDetectsSameStampRewrite(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenOptions(dir, Options{Layout: LayoutSharded, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sb := r.b.(*shardedBackend)
	recA := synthRecord("w@gen-00000", "harl", 1e-4, 1)
	// Find a second workload that routes to the SAME shard with the SAME
	// marshaled line length, so the rewritten journal can match the original's
	// byte size exactly.
	lineA, err := recA.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	var recB tunelog.Record
	found := false
	for i := 1; i < 100000 && !found; i++ {
		cand := synthRecord(fmt.Sprintf("w@gen-%05d", i), "harl", 1e-4, 1)
		if sb.shardFor(cand.Workload) != sb.shardFor(recA.Workload) {
			continue
		}
		line, err := cand.MarshalLine()
		if err != nil {
			t.Fatal(err)
		}
		if len(line) == len(lineA) {
			recB, found = cand, true
		}
	}
	if !found {
		t.Fatal("no same-shard same-length sibling workload found")
	}
	if _, err := r.PublishBatch([]tunelog.Record{recA}); err != nil {
		t.Fatal(err)
	}
	if _, ok := resolve(t, r, recA.Workload, recA.Target, "harl"); !ok {
		t.Fatal("recA must resolve (and make its shard resident)")
	}
	journals := shardJournals(t, dir)
	if len(journals) != 1 {
		t.Fatalf("%d shard journals, want 1", len(journals))
	}
	path := journals[0]
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the journal with different content of identical size and
	// restore the mtime — the stamp collision a real compaction by another
	// process can produce.
	lineB, err := recB.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(lineB, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, st.ModTime(), st.ModTime()); err != nil {
		t.Fatal(err)
	}
	if st2, err := os.Stat(path); err != nil || st2.Size() != st.Size() || !st2.ModTime().Equal(st.ModTime()) {
		t.Fatalf("rewrite did not preserve the stamp: %v size %d->%d", err, st.Size(), st2.Size())
	}
	// Blind spot: without a generation bump the resident handle cannot see the
	// rewrite — recB misses even though it is on disk.
	if _, ok := resolve(t, r, recB.Workload, recB.Target, "harl"); ok {
		t.Fatal("stamp-identical rewrite was detected without a generation bump; the blind spot this test guards no longer exists")
	}
	// The cure: bump the shard generation, exactly as compaction does.
	shardDir := filepath.Dir(path)
	h, err := readShardHeader(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	h.Generation++
	h.Keys, h.Records = 1, 1
	if err := writeShardHeader(shardDir, h); err != nil {
		t.Fatal(err)
	}
	if got, ok := resolve(t, r, recB.Workload, recB.Target, "harl"); !ok || got != recB {
		t.Fatalf("generation bump did not trigger a reload: %+v, %v", got, ok)
	}
}

// TestShardCacheBoundsResidency: the LRU must keep at most ShardCache shard
// indexes in memory while Len and Records still cover everything.
func TestShardCacheBoundsResidency(t *testing.T) {
	r, err := OpenOptions(t.TempDir(), Options{Layout: LayoutSharded, ShardCache: 2, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const keys = 64
	recs := make([]tunelog.Record, 0, keys)
	for i := 0; i < keys; i++ {
		recs = append(recs, synthRecord(fmt.Sprintf("w@lru-%02d", i), "harl", float64(i+1)*1e-5, i+1))
	}
	if _, err := r.PublishBatch(recs); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.ResidentShards > 2 {
		t.Fatalf("%d resident shards, cache cap 2", st.ResidentShards)
	}
	if r.Len() != keys {
		t.Fatalf("Len = %d with evicted shards, want %d", r.Len(), keys)
	}
	// Every key still resolves (cold shards reload through the LRU).
	for _, rec := range recs {
		if got, ok := resolve(t, r, rec.Workload, rec.Target, "harl"); !ok || got != rec {
			t.Fatalf("evicted key %s: %+v, %v", rec.Workload, got, ok)
		}
		if st := r.Stats(); st.ResidentShards > 2 {
			t.Fatalf("%d resident shards after resolving %s, cache cap 2", st.ResidentShards, rec.Workload)
		}
	}
	if got := r.Records(); len(got) != keys {
		t.Fatalf("Records covers %d keys, want %d", len(got), keys)
	}
	// Records loads every shard; the bound must hold afterwards too.
	if st := r.Stats(); st.ResidentShards > 2 {
		t.Fatalf("%d resident shards after full enumeration, cache cap 2", st.ResidentShards)
	}
}

package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"harl/internal/tunelog"
)

// Layout names a registry's on-disk storage layout.
type Layout string

const (
	// LayoutAuto detects the layout from the directory contents: an existing
	// shards/ tree opens sharded, an existing (or absent) journal.jsonl opens
	// single-file. New registries default to the single-file layout.
	LayoutAuto Layout = ""
	// LayoutSingle is the v1 layout: one flat journal.jsonl plus an
	// index.json snapshot, with the whole index resident in memory. Right for
	// small registries and kept for compatibility.
	LayoutSingle Layout = "single"
	// LayoutSharded is the v2 layout: the journal split by workload
	// fingerprint into shards/<xx>/journal.jsonl, each independently locked
	// and compacted, with an LRU bounding how many shard indexes stay
	// resident. Right for registries that outgrow one in-memory index.
	LayoutSharded Layout = "sharded"
)

// Options tune how a registry opens and publishes. The zero value auto-detects
// the layout and uses the default batching, shard-cache and compaction knobs.
type Options struct {
	// Layout selects the storage layout (see the Layout constants). Opening a
	// single-file registry with LayoutSharded migrates it in place.
	Layout Layout
	// ShardCache bounds how many shard indexes the sharded backend keeps
	// resident (LRU eviction beyond it; 0 selects DefaultShardCache).
	ShardCache int
	// BatchSize and BatchWait shape the publish batcher: a flush happens when
	// BatchSize records are pending or BatchWait after the first enqueued
	// record, whichever is first. Zero values select DefaultBatchSize /
	// DefaultBatchWait.
	BatchSize int
	BatchWait time.Duration
	// CompactMinRecords and CompactFactor gate shard compaction: a shard is
	// rewritten (keeping only per-key bests, Force heals preserved) when it
	// holds at least CompactMinRecords records and more than CompactFactor
	// times as many records as live keys. Zero values select
	// DefaultCompactMinRecords / DefaultCompactFactor.
	CompactMinRecords int
	CompactFactor     float64
}

// Defaults for the Options knobs.
const (
	DefaultShardCache        = 64
	DefaultBatchSize         = 64
	DefaultBatchWait         = 2 * time.Millisecond
	DefaultCompactMinRecords = 256
	DefaultCompactFactor     = 4.0
)

func (o Options) withDefaults() Options {
	if o.ShardCache <= 0 {
		o.ShardCache = DefaultShardCache
	}
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.BatchWait <= 0 {
		o.BatchWait = DefaultBatchWait
	}
	if o.CompactMinRecords <= 0 {
		o.CompactMinRecords = DefaultCompactMinRecords
	}
	if o.CompactFactor <= 0 {
		o.CompactFactor = DefaultCompactFactor
	}
	return o
}

// Stats is a snapshot of a registry's storage counters — the observability
// seam the service's /metrics endpoint renders. Counters are cumulative for
// the lifetime of the open handle.
type Stats struct {
	// Layout is the backend in use ("single" or "sharded").
	Layout Layout
	// Keys is the number of distinct (workload, target, scheduler) bests;
	// Records the number of distinct journal records backing them (live,
	// including superseded ones not yet compacted away).
	Keys    int
	Records int
	// Appends counts append batches written; AppendedRecords the records in
	// them; LockAcquisitions the cross-process file locks taken to write them
	// — batching makes LockAcquisitions grow slower than AppendedRecords.
	Appends          int64
	AppendedRecords  int64
	LockAcquisitions int64
	// BatchesFlushed and BatchedRecords count the publish batcher's flushes
	// and the records they carried.
	BatchesFlushed int64
	BatchedRecords int64
	// Compactions counts shard journal rewrites (sharded layout only).
	Compactions int64
	// ResidentShards is how many shard indexes are currently in memory
	// (sharded layout only; bounded by Options.ShardCache).
	ResidentShards int
}

// Backend is the registry's storage layer: everything below the publish
// batcher. Implementations are safe for concurrent use in-process and
// serialize cross-process writers behind advisory file locks; the append-only
// journal(s) they keep are authoritative, so any backend's state can be
// rebuilt from a replay.
type Backend interface {
	// Layout reports which layout the backend implements.
	Layout() Layout
	// Resolve returns the best known record for the exact key; an empty
	// scheduler matches any preset (best across all, ties to the
	// lexicographically smaller scheduler name). A miss re-checks durable
	// state, so records other processes published become visible without
	// reopening. The error reports an unreadable or damaged store — distinct
	// from a plain miss.
	Resolve(workload, target, scheduler string) (tunelog.Record, bool, error)
	// AppendBatch durably appends the batch under the cross-process lock(s),
	// skipping records the journal already holds, and reports per input
	// record whether it improved (or established) its key. On a mid-batch
	// write failure the backend reloads from disk so in-memory state never
	// claims a record the journal did not durably get.
	AppendBatch(recs []tunelog.Record) ([]bool, error)
	// Len returns the number of keys with a best record.
	Len() int
	// Records returns the current best records sorted by key.
	Records() ([]tunelog.Record, error)
	// Stats snapshots the backend's counters.
	Stats() Stats
	// Close releases the backend.
	Close() error
}

// DetectLayout reports the layout of an existing registry directory: a
// shards/ tree means sharded, anything else (including a not-yet-created
// directory) means single-file.
func DetectLayout(dir string) Layout {
	if st, err := os.Stat(filepath.Join(dir, ShardsDir)); err == nil && st.IsDir() {
		return LayoutSharded
	}
	return LayoutSingle
}

// openBackend resolves the layout (detecting and, when a single-file registry
// is opened with LayoutSharded, migrating in place) and opens it.
func openBackend(dir string, o Options) (Backend, error) {
	layout := o.Layout
	detected := DetectLayout(dir)
	switch layout {
	case LayoutAuto:
		layout = detected
	case LayoutSingle:
		if detected == LayoutSharded {
			return nil, fmt.Errorf("registry: %s holds a sharded registry; open it with the sharded (or auto) layout", dir)
		}
	case LayoutSharded:
		if detected == LayoutSingle {
			if _, err := os.Stat(filepath.Join(dir, JournalFile)); err == nil {
				if err := Migrate(dir, o); err != nil {
					return nil, err
				}
			}
		}
	default:
		return nil, fmt.Errorf("registry: unknown layout %q", layout)
	}
	if layout == LayoutSharded {
		return openSharded(dir, o)
	}
	return openFileBackend(dir)
}

package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"harl/internal/atomicfile"
	"harl/internal/tunelog"
)

// ShardCount is the number of journal shards in the sharded (v2) layout.
const ShardCount = 256

// ShardHeaderFile and ShardLockFile are the per-shard files beside each
// shard's journal.jsonl:
//
//	header.json  {"v":1,"generation":G,"keys":K,"records":N} — the generation
//	             counter lets readers detect a compaction rewrite that a
//	             size+mtime stamp cannot (a rewrite can preserve both); the
//	             cached counts make opening a large registry cheap (summing
//	             256 headers instead of replaying every shard journal). The
//	             journal stays authoritative: counts are advisory and are
//	             corrected whenever the shard index is (re)built.
//	lock         the shard's advisory write lock. It is a separate,
//	             never-renamed file because compaction replaces the journal
//	             via rename — a flock held on the replaced journal inode
//	             would no longer exclude anyone.
const (
	ShardHeaderFile = "header.json"
	ShardLockFile   = "lock"
)

// shardHeaderVersion is the header.json format version.
const shardHeaderVersion = 1

type shardHeader struct {
	V          int   `json:"v"`
	Generation int64 `json:"generation"`
	Keys       int   `json:"keys"`
	Records    int   `json:"records"`
}

func readShardHeader(dir string) (shardHeader, error) {
	data, err := os.ReadFile(filepath.Join(dir, ShardHeaderFile))
	if err != nil {
		if os.IsNotExist(err) {
			return shardHeader{V: shardHeaderVersion}, nil
		}
		return shardHeader{}, fmt.Errorf("registry: read shard header: %w", err)
	}
	var h shardHeader
	if err := json.Unmarshal(data, &h); err != nil {
		// A torn header is recoverable state, not data loss: treat it as
		// generation-unknown so the next access reloads from the journal.
		return shardHeader{V: shardHeaderVersion, Generation: -1}, nil
	}
	return h, nil
}

func writeShardHeader(dir string, h shardHeader) error {
	h.V = shardHeaderVersion
	data, err := json.Marshal(h)
	if err != nil {
		return fmt.Errorf("registry: marshal shard header: %w", err)
	}
	return atomicfile.WriteFile(filepath.Join(dir, ShardHeaderFile), append(data, '\n'), 0o644)
}

// shardStamp identifies a shard's durable state: the journal's cheap file
// stamp plus the header's generation counter. Appends grow the file stamp;
// compaction rewrites the journal — which can land on the same size and
// mtime — and bumps the generation, so readers always detect it.
type shardStamp struct {
	gen int64
	fs  fileStamp
}

// shardIdx is one shard's resident index — the same best/seen/size state the
// single-file backend keeps globally, scoped to the shard so cold shards can
// be evicted.
type shardIdx struct {
	best map[string]tunelog.Record
	seen map[tunelog.Record]bool
	size int
}

type shard struct {
	id  string // "00".."ff"
	dir string

	idx     *shardIdx // nil when cold (never loaded, or LRU-evicted)
	stamp   shardStamp
	lastUse atomic.Int64
	// keys/records are cached counts (from the header at open, from the
	// index after loads/appends) so Len works without residency.
	keys    int
	records int
}

func (s *shard) journalPath() string { return filepath.Join(s.dir, JournalFile) }
func (s *shard) lockPath() string    { return filepath.Join(s.dir, ShardLockFile) }

// shardedBackend is the v2 layout: records route to one of ShardCount shard
// journals by a hash of the workload fingerprint, so every key's records —
// and therefore every Resolve, including the any-scheduler scan — live in
// exactly one shard. Each shard is its own mini registry: an authoritative
// append-only journal, a resident index built on demand (bounded by an LRU),
// a generation-stamped header, and an advisory lock file serializing
// cross-process writers. Shards dominated by superseded records are
// compacted in place (see compact.go).
type shardedBackend struct {
	dir      string
	cacheCap int
	// compactMin/compactFactor gate compaction; see Options.
	compactMin    int
	compactFactor float64

	mu       sync.RWMutex
	shards   [ShardCount]*shard
	resident int
	useClock atomic.Int64
	stats    Stats

	// openJournal opens a shard journal for an externally-locked append;
	// tests substitute a failing writer.
	openJournal func(path string) (*tunelog.Journal, error)
}

func openSharded(dir string, o Options) (*shardedBackend, error) {
	root := filepath.Join(dir, ShardsDir)
	// Creating the shards/ marker makes the layout choice sticky for later
	// auto-detecting opens; like the registry directory itself it is the one
	// write opening is allowed.
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create shards dir: %w", err)
	}
	b := &shardedBackend{
		dir:           dir,
		cacheCap:      o.ShardCache,
		compactMin:    o.CompactMinRecords,
		compactFactor: o.CompactFactor,
		openJournal:   tunelog.OpenJournalUnlocked,
	}
	b.stats.Layout = LayoutSharded
	for i := range b.shards {
		id := fmt.Sprintf("%02x", i)
		b.shards[i] = &shard{id: id, dir: filepath.Join(root, id)}
	}
	// Seed the cached counts from the shard headers — 256 small reads
	// instead of replaying every journal, so opening stays cheap no matter
	// how many records the registry holds.
	for _, s := range b.shards {
		h, err := readShardHeader(s.dir)
		if err != nil {
			return nil, err
		}
		s.keys, s.records = h.Keys, h.Records
	}
	return b, nil
}

func (b *shardedBackend) Layout() Layout { return LayoutSharded }

// shardFor routes a workload fingerprint to its shard. The route hashes the
// fingerprint instead of slicing a literal prefix: fingerprints embed the
// subgraph name ("gemm@…"), so a raw prefix would pile whole operator
// families into a handful of shards.
func (b *shardedBackend) shardFor(workload string) *shard {
	h := fnv.New32a()
	h.Write([]byte(workload))
	return b.shards[h.Sum32()&(ShardCount-1)]
}

func (b *shardedBackend) touch(s *shard) {
	s.lastUse.Store(b.useClock.Add(1))
}

// stampShardLocked reads the shard's current durable stamp. Caller holds at
// least the read lock (it only touches files).
func (s *shard) durableStamp() (shardStamp, error) {
	h, err := readShardHeader(s.dir)
	if err != nil {
		return shardStamp{}, err
	}
	return shardStamp{gen: h.Generation, fs: stampOf(s.journalPath())}, nil
}

// loadShardLocked (re)builds one shard's index from its journal, updating the
// cached counts and enforcing the residency bound. Caller holds the write
// lock.
func (b *shardedBackend) loadShardLocked(s *shard) error {
	stamp, err := s.durableStamp()
	if err != nil {
		return err
	}
	idx := &shardIdx{best: make(map[string]tunelog.Record), seen: make(map[tunelog.Record]bool)}
	if _, statErr := os.Stat(s.journalPath()); statErr == nil {
		db, err := tunelog.LoadFile(s.journalPath())
		if err != nil {
			return err
		}
		for _, rec := range db.Records() {
			idx.seen[rec] = true
			absorb(idx.best, rec)
		}
		idx.size = db.Size()
	} else if !os.IsNotExist(statErr) {
		return fmt.Errorf("registry: stat shard journal: %w", statErr)
	}
	if s.idx == nil {
		b.resident++
	}
	s.idx = idx
	s.stamp = stamp
	s.keys = len(idx.best)
	s.records = idx.size
	b.touch(s)
	b.evictLocked(s)
	return nil
}

// evictLocked drops least-recently-used shard indexes until the residency
// bound holds, never evicting keep (the shard being served right now). The
// dropped state is only an index — the shard journal remains authoritative
// and the next access rebuilds it.
func (b *shardedBackend) evictLocked(keep *shard) {
	for b.resident > b.cacheCap {
		var victim *shard
		for _, s := range b.shards {
			if s == keep || s.idx == nil {
				continue
			}
			if victim == nil || s.lastUse.Load() < victim.lastUse.Load() {
				victim = s
			}
		}
		if victim == nil {
			return
		}
		victim.idx = nil
		b.resident--
	}
}

// freshLocked reports whether the shard's resident index still matches its
// durable state. Caller holds a lock.
func (s *shard) freshLocked() bool {
	if s.idx == nil {
		return false
	}
	stamp, err := s.durableStamp()
	return err == nil && stamp == s.stamp
}

func (b *shardedBackend) Resolve(workload, target, scheduler string) (tunelog.Record, bool, error) {
	s := b.shardFor(workload)
	b.mu.RLock()
	if s.idx != nil {
		if rec, ok := resolveBest(s.idx.best, workload, target, scheduler); ok {
			b.touch(s)
			b.mu.RUnlock()
			return rec, true, nil
		}
	}
	b.mu.RUnlock()
	// Cold shard, or a miss: (re)load when the durable state moved — another
	// process may have published or compacted since our last look.
	b.mu.Lock()
	defer b.mu.Unlock()
	if !s.freshLocked() {
		if err := b.loadShardLocked(s); err != nil {
			return tunelog.Record{}, false, err
		}
	}
	rec, ok := resolveBest(s.idx.best, workload, target, scheduler)
	b.touch(s)
	return rec, ok, nil
}

// AppendBatch groups the batch by shard and appends each group under its
// shard's lock: one lock acquisition, one journal open and one header write
// per touched shard, however many records the batch carries.
func (b *shardedBackend) AppendBatch(recs []tunelog.Record) ([]bool, error) {
	improved := make([]bool, len(recs))
	groups := make(map[*shard][]int)
	for i, rec := range recs {
		s := b.shardFor(rec.Workload)
		groups[s] = append(groups[s], i)
	}
	order := make([]*shard, 0, len(groups))
	for s := range groups {
		order = append(order, s)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].id < order[j].id })
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range order {
		if err := b.appendShardLocked(s, recs, groups[s], improved); err != nil {
			return nil, err
		}
	}
	return improved, nil
}

// appendShardLocked appends one shard's slice of the batch under the shard's
// cross-process lock. Caller holds the backend write lock.
func (b *shardedBackend) appendShardLocked(s *shard, recs []tunelog.Record, idxs []int, improved []bool) (err error) {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("registry: create shard dir: %w", err)
	}
	flock, err := tunelog.AcquireFileLock(s.lockPath())
	if err != nil {
		return err
	}
	// A failed lock release means the fd leaked and the shard may stay locked
	// for the process lifetime — surface it unless an append error already won.
	defer func() {
		if cerr := flock.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("registry: release shard %s lock: %w", s.id, cerr)
		}
	}()
	b.stats.LockAcquisitions++
	// Load under the lock: while we waited, another process may have appended
	// or compacted — the shard is frozen to other writers now, so what we
	// load is exactly what our stamp will describe.
	if !s.freshLocked() {
		if err := b.loadShardLocked(s); err != nil {
			return err
		}
	}
	fresh := make([]int, 0, len(idxs))
	for _, i := range idxs {
		if !s.idx.seen[recs[i]] {
			fresh = append(fresh, i)
		}
	}
	if len(fresh) == 0 {
		b.touch(s)
		return nil
	}
	jr, err := b.openJournal(s.journalPath())
	if err != nil {
		return err
	}
	for _, i := range fresh {
		if err := jr.Append(recs[i]); err != nil {
			return errors.Join(b.failShardAppendLocked(s, err), jr.Close())
		}
		s.idx.seen[recs[i]] = true
		s.idx.size++
		improved[i] = absorb(s.idx.best, recs[i])
	}
	if err := jr.Close(); err != nil {
		return b.failShardAppendLocked(s, err)
	}
	s.stamp.fs = stampOf(s.journalPath())
	s.keys = len(s.idx.best)
	s.records = s.idx.size
	b.stats.Appends++
	b.stats.AppendedRecords += int64(len(fresh))
	b.touch(s)
	if b.shouldCompactLocked(s) {
		// compactShardLocked writes the header itself (the generation bump
		// must be durable before the journal is replaced).
		return b.compactShardLocked(s)
	}
	return writeShardHeader(s.dir, shardHeader{Generation: s.stamp.gen, Keys: s.keys, Records: s.records})
}

// failShardAppendLocked mirrors the single-file backend's append-failure
// contract: the in-memory shard state may claim records the journal never
// durably got, so it is rebuilt from disk before the error is returned — a
// retry of the same publish must re-append, not be skipped as a duplicate.
func (b *shardedBackend) failShardAppendLocked(s *shard, err error) error {
	if lerr := b.loadShardLocked(s); lerr != nil {
		if s.idx != nil {
			s.idx = nil // force a reload on next access
			b.resident--
		}
		return fmt.Errorf("registry: shard %s append failed (%w) and reload failed: %v", s.id, err, lerr)
	}
	return fmt.Errorf("registry: shard %s append: %w", s.id, err)
}

func (b *shardedBackend) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, s := range b.shards {
		n += s.keys
	}
	return n
}

func (b *shardedBackend) Records() ([]tunelog.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	merged := make(map[string]tunelog.Record)
	for _, s := range b.shards {
		if _, err := os.Stat(s.journalPath()); os.IsNotExist(err) {
			continue
		}
		if !s.freshLocked() {
			if err := b.loadShardLocked(s); err != nil {
				return nil, err
			}
		}
		for k, rec := range s.idx.best {
			merged[k] = rec
		}
	}
	return sortedBest(merged), nil
}

func (b *shardedBackend) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := b.stats
	s.ResidentShards = b.resident
	for _, sh := range b.shards {
		s.Keys += sh.keys
		s.Records += sh.records
	}
	return s
}

func (b *shardedBackend) Close() error { return nil }

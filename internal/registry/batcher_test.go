package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBatcherAmortizesLockAcquisitions: N concurrent publishers arriving
// within one batching window must be serviced by far fewer lock acquisitions
// than one apiece — the point of the batcher. The window is set high so the
// assertion is deterministic even on a single-core runner: the flusher always
// waits the full window (or a full batch) before flushing.
func TestBatcherAmortizesLockAcquisitions(t *testing.T) {
	for _, layout := range conformanceLayouts {
		t.Run(string(layout), func(t *testing.T) {
			const publishers = 32
			r, err := OpenOptions(t.TempDir(), Options{Layout: layout,
				BatchSize: publishers, BatchWait: 500 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			// Four keys across 32 publishers: the sharded backend locks once per
			// TOUCHED SHARD per batch, so a batch spanning 32 distinct keys
			// could legitimately take up to 32 locks — the amortization shows
			// on keys that share shards, which concurrent sessions re-measuring
			// the same workloads produce constantly.
			const keys = 4
			var wg sync.WaitGroup
			for i := 0; i < publishers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					rec := synthRecord(fmt.Sprintf("w@amort-%d", i%keys), "harl", float64(i+1)*1e-5, i+1)
					if _, err := r.Publish(rec); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			st := r.Stats()
			if st.LockAcquisitions >= publishers {
				t.Fatalf("%d lock acquisitions for %d publishes — batching amortized nothing", st.LockAcquisitions, publishers)
			}
			if st.BatchesFlushed >= publishers {
				t.Fatalf("%d batches for %d publishes", st.BatchesFlushed, publishers)
			}
			if st.BatchedRecords != publishers {
				t.Fatalf("batcher carried %d records, want %d", st.BatchedRecords, publishers)
			}
			if r.Len() != keys {
				t.Fatalf("Len = %d, want %d distinct keys", r.Len(), keys)
			}
		})
	}
}

// TestPublishAsyncBulkIngest: the fire-then-drain path fills batches instead
// of paying one batching window per record.
func TestPublishAsyncBulkIngest(t *testing.T) {
	r, err := OpenOptions(t.TempDir(), Options{Layout: LayoutSharded, BatchSize: 16, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const n = 100
	pending := make([]<-chan PublishResult, 0, n)
	for i := 0; i < n; i++ {
		pending = append(pending, r.PublishAsync(synthRecord(fmt.Sprintf("w@bulk-%03d", i), "harl", 1e-4, i+1)))
	}
	improved := 0
	for _, ch := range pending {
		res := <-ch
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Improved {
			improved++
		}
	}
	if improved != n {
		t.Fatalf("%d of %d distinct keys improved", improved, n)
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
}

func TestPublishAfterCloseFails(t *testing.T) {
	r, err := OpenOptions(t.TempDir(), Options{BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(synthRecord("w@closed", "harl", 1e-4, 1)); err == nil {
		t.Fatal("publish after Close must fail, not hang or drop silently")
	}
}

// TestCloseFlushesPendingPublishes: records enqueued before Close must be
// durable when Close returns.
func TestCloseFlushesPendingPublishes(t *testing.T) {
	dir := t.TempDir()
	// A long window: without the flush-on-close contract these would still be
	// sitting in the batcher when Close returns.
	r, err := OpenOptions(dir, Options{BatchSize: 1024, BatchWait: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	pending := make([]<-chan PublishResult, 0, n)
	for i := 0; i < n; i++ {
		pending = append(pending, r.PublishAsync(synthRecord(fmt.Sprintf("w@flush-%d", i), "harl", 1e-4, i+1)))
	}
	done := make(chan error, 1)
	go func() { done <- r.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not flush pending publishes")
	}
	for _, ch := range pending {
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	fresh := openLayout(t, dir, LayoutAuto)
	defer fresh.Close()
	if fresh.Len() != n {
		t.Fatalf("%d of %d pre-Close publishes durable", fresh.Len(), n)
	}
}

// BenchmarkRegistryPublish drives N concurrent publishers through the batcher
// against both layouts. Beyond throughput, it asserts the amortization
// contract on the lock counter — fewer flock acquisitions than publishes —
// rather than on wall-clock, so the check holds on any machine.
func BenchmarkRegistryPublish(b *testing.B) {
	for _, layout := range []Layout{LayoutSingle, LayoutSharded} {
		b.Run(string(layout), func(b *testing.B) {
			r, err := OpenOptions(b.TempDir(), Options{Layout: layout,
				BatchSize: 64, BatchWait: time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			// A pool of 8 hot keys: concurrent sessions re-measuring the same
			// workloads. Per batch the sharded backend locks each touched shard
			// once, so a bounded key pool is what makes lock amortization
			// visible there (an all-distinct-keys batch legitimately locks one
			// shard per key).
			const publishers = 32
			var next atomic.Int64
			b.ResetTimer()
			var wg sync.WaitGroup
			for p := 0; p < publishers; p++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := next.Add(1)
						if i > int64(b.N) {
							return
						}
						rec := synthRecord(fmt.Sprintf("w@bench-%d", i%8), "harl", 1/float64(i), int(i))
						if _, err := r.Publish(rec); err != nil {
							b.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			st := r.Stats()
			if b.N >= 64 && st.LockAcquisitions >= int64(b.N) {
				b.Fatalf("%d lock acquisitions for %d publishes — batching amortized nothing", st.LockAcquisitions, b.N)
			}
			b.ReportMetric(float64(st.LockAcquisitions)/float64(b.N), "locks/op")
			b.ReportMetric(float64(st.BatchesFlushed)/float64(b.N), "batches/op")
			if err := r.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

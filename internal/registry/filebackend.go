package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"harl/internal/tunelog"
)

// fileBackend is the v1 single-file layout: one flat journal.jsonl (the
// authoritative append-only log) plus an index.json snapshot for external
// readers, with the whole best map and dedup set resident in memory. Kept for
// compatibility and small registries; the sharded backend supersedes it at
// scale.
type fileBackend struct {
	dir string

	mu    sync.RWMutex
	best  map[string]tunelog.Record // key() -> current best record
	seen  map[tunelog.Record]bool   // records known to be in the journal
	size  int                       // distinct records in the journal
	stamp fileStamp                 // journal stat we are in sync with
	stats Stats

	// openJournal opens the journal for a locked append; tests substitute a
	// failing writer to exercise the reload-on-append-failure path.
	openJournal func(path string) (*tunelog.Journal, error)
}

func openFileBackend(dir string) (*fileBackend, error) {
	b := &fileBackend{dir: dir, openJournal: tunelog.OpenJournalWait}
	b.stats.Layout = LayoutSingle
	if err := b.loadLocked(); err != nil {
		return nil, err
	}
	return b, nil
}

func (b *fileBackend) Layout() Layout { return LayoutSingle }

// loadLocked (re)builds the in-memory state from the journal. Caller holds
// the write lock (or is constructing the backend). On failure the stamp stays
// zeroed, so the next access retries the load (and keeps reporting the error)
// instead of treating the unreadable journal as empty.
func (b *fileBackend) loadLocked() error {
	b.best = make(map[string]tunelog.Record)
	b.seen = make(map[tunelog.Record]bool)
	b.size = 0
	b.stamp = fileStamp{}
	path := filepath.Join(b.dir, JournalFile)
	// Stamp before reading: a concurrent append between the load and a
	// post-load stat would then go unnoticed forever; stamping first means it
	// only causes one redundant reload.
	stamp := stampOf(path)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("registry: stat journal: %w", err)
	}
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return err
	}
	for _, rec := range db.Records() {
		b.seen[rec] = true
		absorb(b.best, rec)
	}
	b.size = db.Size()
	b.stamp = stamp
	return nil
}

func (b *fileBackend) Resolve(workload, target, scheduler string) (tunelog.Record, bool, error) {
	b.mu.RLock()
	rec, ok := resolveBest(b.best, workload, target, scheduler)
	stale := !ok && stampOf(filepath.Join(b.dir, JournalFile)) != b.stamp
	b.mu.RUnlock()
	if ok || !stale {
		return rec, ok, nil
	}
	// Miss with a grown journal: another process published since our load.
	// Reload and retry once (a miss already costs a full search downstream,
	// so the reload is cheap by comparison).
	b.mu.Lock()
	defer b.mu.Unlock()
	if stampOf(filepath.Join(b.dir, JournalFile)) != b.stamp {
		if err := b.loadLocked(); err != nil {
			return tunelog.Record{}, false, err
		}
	}
	rec, ok = resolveBest(b.best, workload, target, scheduler)
	return rec, ok, nil
}

// AppendBatch appends records to the journal — opened, appended and closed
// under a blocking advisory lock, so concurrent publishers from other
// processes serialize at batch granularity — absorbs them into the best map,
// and rewrites the index snapshot once. Records the journal is already known
// to hold are skipped entirely (re-importing a seed journal on every daemon
// boot must not grow the file). On any write failure the in-memory state is
// reloaded from disk: it must never claim a record the journal did not
// durably get, or a retry of the same publish would be skipped as a duplicate
// and the record silently lost until restart.
func (b *fileBackend) AppendBatch(recs []tunelog.Record) ([]bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	path := filepath.Join(b.dir, JournalFile)
	jr, err := b.openJournal(path)
	if err != nil {
		return nil, err
	}
	b.stats.LockAcquisitions++
	// The refresh must happen AFTER the flock is held: while we were blocked
	// waiting, another process may have appended — the journal is frozen to
	// other writers now, so what we load here is exactly what our stamp will
	// describe. Refreshing before the lock would fold the other writer's
	// bytes into our post-append stamp without ever loading their records,
	// making them permanently invisible to this process.
	if stampOf(path) != b.stamp {
		if err := b.loadLocked(); err != nil {
			return nil, errors.Join(err, jr.Close())
		}
	}
	improved := make([]bool, len(recs))
	appended := 0
	for i, rec := range recs {
		if b.seen[rec] {
			continue
		}
		if err := jr.Append(rec); err != nil {
			return nil, errors.Join(b.failAppendLocked(err), jr.Close())
		}
		appended++
		b.seen[rec] = true
		b.size++
		improved[i] = absorb(b.best, rec)
	}
	if appended == 0 {
		return improved, jr.Close()
	}
	if err := jr.Close(); err != nil {
		return nil, b.failAppendLocked(err)
	}
	b.stamp = stampOf(path)
	b.stats.Appends++
	b.stats.AppendedRecords += int64(appended)
	return improved, b.writeIndexLocked()
}

// failAppendLocked handles a journal write failure: the in-memory state may
// claim records that never durably landed, so it is rebuilt from the journal
// on disk. The write error is returned (a reload failure piggybacks on it);
// the caller's retry then re-appends exactly what the journal is missing.
func (b *fileBackend) failAppendLocked(err error) error {
	if lerr := b.loadLocked(); lerr != nil {
		return fmt.Errorf("registry: append failed (%w) and reload failed: %v", err, lerr)
	}
	return fmt.Errorf("registry: append: %w", err)
}

// writeIndexLocked snapshots the best map as index.json (atomic temp-file +
// rename), keys sorted so equal states serialize byte-identically. Caller
// holds the write lock.
func (b *fileBackend) writeIndexLocked() error {
	return writeIndexFile(filepath.Join(b.dir, IndexFile), b.best, b.size)
}

func (b *fileBackend) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.best)
}

func (b *fileBackend) Records() ([]tunelog.Record, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return sortedBest(b.best), nil
}

func (b *fileBackend) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	s := b.stats
	s.Keys = len(b.best)
	s.Records = b.size
	return s
}

func (b *fileBackend) Close() error { return nil }

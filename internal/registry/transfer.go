// Transfer donor selection: when a (workload, target, scheduler) key misses,
// the registry's other keys may still hold transferable knowledge. This file
// implements the deterministic donor-selection policy — pure over a sorted
// record slice, so every caller (operator sessions, both network tuners,
// any worker count) picks the same donor for the same registry state.
package registry

import "harl/internal/tunelog"

// DonorKind classifies where a transfer donor's knowledge comes from.
type DonorKind int

const (
	// DonorCrossTarget is the same workload tuned on a different target —
	// the preferred donor: the schedule space is identical, only the
	// hardware differs.
	DonorCrossTarget DonorKind = iota
	// DonorCrossWorkload is a structurally compatible workload (its
	// serialized steps reconstruct in the recipient's sketch space, which
	// implies an equal feature dimension) tuned on the same target.
	DonorCrossWorkload
)

// Donor is a selected transfer donor.
type Donor struct {
	Rec  tunelog.Record
	Kind DonorKind
}

// SelectDonor picks a transfer donor for a missing (workload, target) key
// from recs, which must be sorted by registry key (Registry.Records returns
// exactly that). compatible reports whether a record's serialized steps
// reconstruct in the recipient's schedule space — the structural gate that
// keeps dimension-incompatible donors out.
//
// Policy, fully deterministic: cross-target donors (same workload, other
// target) beat cross-workload donors (same target, other workload); within a
// kind, a donor under the recipient's scheduler beats one under another
// scheduler; remaining ties break by lower recorded execution time, then by
// registry-key order. Records for the recipient's own (workload, target)
// pair are never donors — that key either hit, or holds nothing usable.
func SelectDonor(recs []tunelog.Record, workload, target, scheduler string, compatible func(tunelog.Record) bool) (Donor, bool) {
	var best Donor
	bestRank := -1
	for _, rec := range recs {
		var kind DonorKind
		switch {
		case rec.Workload == workload && rec.Target != target:
			kind = DonorCrossTarget
		case rec.Target == target && rec.Workload != workload:
			kind = DonorCrossWorkload
		default:
			continue
		}
		if compatible != nil && !compatible(rec) {
			continue
		}
		rank := 0
		if kind == DonorCrossTarget {
			rank += 2
		}
		if scheduler == "" || rec.Scheduler == scheduler {
			rank++
		}
		if bestRank < 0 || rank > bestRank ||
			(rank == bestRank && rec.ExecSec < best.Rec.ExecSec) {
			best = Donor{Rec: rec, Kind: kind}
			bestRank = rank
		}
	}
	return best, bestRank >= 0
}

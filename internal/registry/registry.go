// Package registry implements the persistent best-schedule store of the HARL
// reproduction: the end product of tuning — the best known schedule per
// (workload fingerprint, target, scheduler) — kept as a durable, queryable
// artifact so a second request for an already-tuned workload costs a lookup
// instead of a search.
//
// On disk a registry is a directory with two files:
//
//	journal.jsonl  append-only tunelog journal of every published record —
//	               the authoritative state (same schema as tuning logs, so
//	               any tuning journal can be imported wholesale; replaying it
//	               in order reproduces the best map exactly, including Force
//	               heal records)
//	index.json     atomic snapshot of the current best record per key for
//	               external readers and tools; rewritten via temp-file +
//	               rename after journal growth, with the journal record
//	               count embedded so a consumer can tell whether the
//	               snapshot lags the journal
//
// Concurrency: a Registry value is safe for concurrent readers and
// concurrent publishers in-process (RWMutex; publishes serialize). Across
// processes, writers serialize each publish behind a blocking advisory lock
// on the journal (tunelog.OpenJournalWait), held only for the append — two
// processes publishing concurrently interleave whole records, never bytes.
// Open never writes, so read-only consumers can open a registry another
// process is publishing into; and a Resolve miss re-checks the journal's
// stat and reloads when another process has grown it, so a long-running
// daemon observes records a CLI publishes beside it.
package registry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"harl/internal/atomicfile"
	"harl/internal/tunelog"
)

// IndexVersion is the index.json format version written by this package.
const IndexVersion = 1

// JournalFile and IndexFile are the registry's on-disk layout under its
// directory.
const (
	JournalFile = "journal.jsonl"
	IndexFile   = "index.json"
)

// Registry is an open best-schedule store.
type Registry struct {
	dir string

	mu    sync.RWMutex
	best  map[string]tunelog.Record // key() -> current best record
	seen  map[tunelog.Record]bool   // records known to be in the journal
	size  int                       // distinct records in the journal
	stamp fileStamp                 // journal stat we are in sync with
}

// fileStamp identifies a journal state cheaply; the journal is append-only,
// so any growth changes the size (and a cross-process publish that somehow
// kept the size would still change mtime).
type fileStamp struct {
	size  int64
	mtime time.Time
}

func stampOf(path string) fileStamp {
	st, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{size: st.Size(), mtime: st.ModTime()}
}

// key is the exact lookup key. The scheduler is part of the key: different
// presets explore different spaces and a service comparing them must not
// cross-contaminate their bests.
func key(workload, target, scheduler string) string {
	return workload + "\x00" + target + "\x00" + scheduler
}

type indexFile struct {
	V int `json:"v"`
	// JournalRecords is the distinct journal record count the snapshot was
	// built from, so external consumers can tell a lagging snapshot.
	JournalRecords int              `json:"journal_records"`
	Best           []tunelog.Record `json:"best"`
}

// loadIndex parses an index snapshot — for external tools and tests; the
// registry itself treats the journal as authoritative and never reads the
// index back.
func loadIndex(path string) (indexFile, error) {
	var idx indexFile
	data, err := os.ReadFile(path)
	if err != nil {
		return idx, err
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		return idx, fmt.Errorf("registry: damaged index: %w", err)
	}
	if idx.V != IndexVersion {
		return idx, fmt.Errorf("registry: unknown index version %d", idx.V)
	}
	return idx, nil
}

// Open opens (creating if needed) the registry directory and loads its state
// from the journal (the index snapshot is written for external readers, never
// read back — the journal is authoritative and must be parsed anyway). Open
// never writes, so read-only consumers can open a registry another process
// is actively publishing into.
func Open(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create dir: %w", err)
	}
	r := &Registry{dir: dir}
	if err := r.loadLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// loadLocked (re)builds the in-memory state from the journal. Caller holds
// the write lock (or is constructing the registry).
func (r *Registry) loadLocked() error {
	r.best = make(map[string]tunelog.Record)
	r.seen = make(map[tunelog.Record]bool)
	r.size = 0
	path := filepath.Join(r.dir, JournalFile)
	r.stamp = stampOf(path)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("registry: stat journal: %w", err)
	}
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return err
	}
	for _, rec := range db.Records() {
		r.seen[rec] = true
		r.absorb(rec)
	}
	r.size = db.Size()
	return nil
}

// refreshLocked reloads from disk if another process has grown the journal
// since our last load or append. Caller holds the write lock.
func (r *Registry) refreshLocked() error {
	if stampOf(filepath.Join(r.dir, JournalFile)) == r.stamp {
		return nil
	}
	return r.loadLocked()
}

// absorb folds one record into the in-memory best map, reporting whether it
// improved (or established) its key. Ties keep the incumbent, so re-imports
// of equal measurements never churn the map; a Force record wins
// unconditionally (the durable heal path — journal replays preserve it
// because absorption is order-sensitive).
func (r *Registry) absorb(rec tunelog.Record) bool {
	k := key(rec.Workload, rec.Target, rec.Scheduler)
	if !rec.Force {
		if cur, ok := r.best[k]; ok && cur.ExecSec <= rec.ExecSec {
			return false
		}
	}
	r.best[k] = rec
	return true
}

// writeIndex snapshots the best map as index.json (atomic temp-file +
// rename), keys sorted so equal states serialize byte-identically. Caller
// holds the write lock.
func (r *Registry) writeIndex() error {
	idx := indexFile{V: IndexVersion, JournalRecords: r.size}
	keys := make([]string, 0, len(r.best))
	for k := range r.best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx.Best = append(idx.Best, r.best[k])
	}
	data, err := json.MarshalIndent(idx, "", " ")
	if err != nil {
		return fmt.Errorf("registry: marshal index: %w", err)
	}
	return atomicfile.WriteFile(filepath.Join(r.dir, IndexFile), append(data, '\n'), 0o644)
}

// Resolve returns the best known record for the key, if any — the cache-hit
// path a tuning request consults before spending a single trial. An empty
// scheduler matches any preset, returning the best record across all of them
// (ties to the lexicographically smaller scheduler name, deterministically).
// A miss re-checks the journal on disk first, so publishes from other
// processes become visible without reopening.
func (r *Registry) Resolve(workload, target, scheduler string) (tunelog.Record, bool) {
	r.mu.RLock()
	rec, ok := r.resolveLocked(workload, target, scheduler)
	stale := !ok && stampOf(filepath.Join(r.dir, JournalFile)) != r.stamp
	r.mu.RUnlock()
	if ok || !stale {
		return rec, ok
	}
	// Miss with a grown journal: another process published since our load.
	// Reload and retry once (a miss already costs a full search downstream,
	// so the reload is cheap by comparison).
	r.mu.Lock()
	if err := r.refreshLocked(); err != nil {
		r.mu.Unlock()
		return tunelog.Record{}, false
	}
	rec, ok = r.resolveLocked(workload, target, scheduler)
	r.mu.Unlock()
	return rec, ok
}

func (r *Registry) resolveLocked(workload, target, scheduler string) (tunelog.Record, bool) {
	if scheduler != "" {
		rec, ok := r.best[key(workload, target, scheduler)]
		return rec, ok
	}
	var out tunelog.Record
	found := false
	for _, rec := range r.best {
		if rec.Workload != workload || rec.Target != target {
			continue
		}
		if !found || rec.ExecSec < out.ExecSec ||
			(rec.ExecSec == out.ExecSec && rec.Scheduler < out.Scheduler) {
			out, found = rec, true
		}
	}
	return out, found
}

// appendLocked appends records to the journal — opened, appended and closed
// under a blocking advisory lock, so concurrent publishers from other
// processes serialize at publish granularity — absorbs them into the best
// map, and rewrites the index snapshot once. Records the journal is already
// known to hold are skipped entirely (re-importing a seed journal on every
// daemon boot must not grow the file). It returns how many records improved
// (or established) their key. Caller holds the write lock.
func (r *Registry) appendLocked(recs []tunelog.Record) (int, error) {
	path := filepath.Join(r.dir, JournalFile)
	jr, err := tunelog.OpenJournalWait(path)
	if err != nil {
		return 0, err
	}
	// The refresh must happen AFTER the flock is held: while we were blocked
	// waiting, another process may have appended — the journal is frozen to
	// other writers now, so what we load here is exactly what our stamp will
	// describe. Refreshing before the lock would fold the other writer's
	// bytes into our post-append stamp without ever loading their records,
	// making them permanently invisible to this process.
	if stampOf(path) != r.stamp {
		if err := r.loadLocked(); err != nil {
			jr.Close()
			return 0, err
		}
	}
	fresh := make([]tunelog.Record, 0, len(recs))
	for _, rec := range recs {
		if !r.seen[rec] {
			fresh = append(fresh, rec)
		}
	}
	if len(fresh) == 0 {
		return 0, jr.Close()
	}
	improved := 0
	for _, rec := range fresh {
		if err := jr.Append(rec); err != nil {
			jr.Close()
			return improved, err
		}
		r.seen[rec] = true
		r.size++
		if r.absorb(rec) {
			improved++
		}
	}
	if err := jr.Close(); err != nil {
		return improved, err
	}
	r.stamp = stampOf(path)
	return improved, r.writeIndex()
}

// Publish records one measurement into the registry: it is appended to the
// journal (unless the journal already holds it) and the best map and index
// snapshot update only when the record beats the current best for its key.
// The returned bool reports that improvement.
func (r *Registry) Publish(rec tunelog.Record) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	improved, err := r.appendLocked([]tunelog.Record{rec})
	return improved > 0, err
}

// Replace force-installs a record as its key's best even if the incumbent
// has a lower recorded time — the repair path for a poisoned key: a foreign
// record whose steps no longer reconstruct can carry an unbeatably low
// ExecSec, and Publish's keep-better rule would preserve it forever. The
// heal is durable: the record is journaled with Force set, and journal
// replays absorb it in order, so rebuilds keep the replacement.
func (r *Registry) Replace(rec tunelog.Record) error {
	rec.Force = true
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.appendLocked([]tunelog.Record{rec})
	return err
}

// ImportJournal publishes every record of a tuning-record log (corrupt lines
// skipped, duplicates collapsed — tunelog.LoadFile semantics) in one append
// batch and returns how many improved the registry. Importing the same
// journal again is a no-op. This is how a daemon boots from a committed
// journal, and how offline tuning runs feed a shared cache.
func (r *Registry) ImportJournal(path string) (int, error) {
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appendLocked(db.Records())
}

// Len returns the number of distinct (workload, target, scheduler) keys with
// a best record.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.best)
}

// Records returns a copy of the current best records, sorted by key — the
// stable enumeration order the index file uses.
func (r *Registry) Records() []tunelog.Record {
	r.mu.RLock()
	defer r.mu.RUnlock()
	keys := make([]string, 0, len(r.best))
	for k := range r.best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]tunelog.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, r.best[k])
	}
	return out
}

// Dir returns the registry's directory path.
func (r *Registry) Dir() string { return r.dir }

// Close releases the registry. Publishes hold the journal (and its advisory
// lock) only for the duration of each append, so there is nothing to tear
// down — Close exists so callers can treat a Registry like the file-backed
// resource it is.
func (r *Registry) Close() error { return nil }

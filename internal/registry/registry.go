// Package registry implements the persistent best-schedule store of the HARL
// reproduction: the end product of tuning — the best known schedule per
// (workload fingerprint, target, scheduler) — kept as a durable, queryable
// artifact so a second request for an already-tuned workload costs a lookup
// instead of a search.
//
// Storage is pluggable behind the Backend interface, with two layouts:
//
//	single   (v1) one flat journal.jsonl — the authoritative append-only log
//	         (same schema as tuning logs, so any tuning journal can be
//	         imported wholesale; replaying it in order reproduces the best
//	         map exactly, including Force heal records) — plus an index.json
//	         snapshot for external readers, rewritten via temp-file + rename
//	         after journal growth. The whole index stays in memory.
//	sharded  (v2) the journal split by workload fingerprint across
//	         shards/<xx>/journal.jsonl (256 shards), each independently
//	         locked and compacted when superseded records dominate, with an
//	         LRU bounding how many shard indexes are resident — the layout
//	         for registries holding orders of magnitude more keys than fit
//	         one in-memory index. See shardbackend.go.
//
// In both layouts the append-only journal(s) stay authoritative: any backend
// rebuilds its state from a replay, and a single-file registry opens
// unchanged or migrates in place to the sharded layout (Migrate).
//
// Concurrency: a Registry value is safe for concurrent readers and
// concurrent publishers in-process. Publishes funnel through a batcher —
// concurrent sessions enqueue records with per-caller response channels and
// one locked append services the whole batch, so N concurrent publishers
// amortize lock acquisitions instead of paying one apiece. Across processes,
// writers serialize behind blocking advisory file locks held only for the
// append. Open never writes, so read-only consumers can open a registry
// another process is publishing into; and a Resolve miss re-checks durable
// state and reloads when another process has grown it, so a long-running
// daemon observes records a CLI publishes beside it.
package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"harl/internal/atomicfile"
	"harl/internal/tunelog"
)

// IndexVersion is the index.json format version written by this package.
const IndexVersion = 1

// JournalFile, IndexFile and ShardsDir are the registry's on-disk layout
// under its directory (JournalFile/IndexFile for the single-file layout,
// ShardsDir for the sharded one).
const (
	JournalFile = "journal.jsonl"
	IndexFile   = "index.json"
	ShardsDir   = "shards"
)

// Registry is an open best-schedule store: a storage backend behind a
// publish batcher.
type Registry struct {
	dir string
	b   Backend
	bat *batcher
}

// fileStamp identifies a journal state cheaply; the journal is append-only,
// so any growth changes the size (and a cross-process publish that somehow
// kept the size would still change mtime). It cannot detect a rewrite that
// preserves both — the sharded layout adds a generation counter for that
// (see shardStamp).
type fileStamp struct {
	size  int64
	mtime time.Time
}

func stampOf(path string) fileStamp {
	st, err := os.Stat(path)
	if err != nil {
		return fileStamp{}
	}
	return fileStamp{size: st.Size(), mtime: st.ModTime()}
}

// key is the exact lookup key. The scheduler is part of the key: different
// presets explore different spaces and a service comparing them must not
// cross-contaminate their bests.
func key(workload, target, scheduler string) string {
	return workload + "\x00" + target + "\x00" + scheduler
}

// absorb folds one record into a best map, reporting whether it improved (or
// established) its key. Ties keep the incumbent, so re-imports of equal
// measurements never churn the map; a Force record wins unconditionally (the
// durable heal path — journal replays preserve it because absorption is
// order-sensitive).
func absorb(best map[string]tunelog.Record, rec tunelog.Record) bool {
	k := key(rec.Workload, rec.Target, rec.Scheduler)
	if !rec.Force {
		if cur, ok := best[k]; ok && cur.ExecSec <= rec.ExecSec {
			return false
		}
	}
	best[k] = rec
	return true
}

// resolveBest answers the exact or any-scheduler query against a best map.
func resolveBest(best map[string]tunelog.Record, workload, target, scheduler string) (tunelog.Record, bool) {
	if scheduler != "" {
		rec, ok := best[key(workload, target, scheduler)]
		return rec, ok
	}
	var out tunelog.Record
	found := false
	for _, rec := range best {
		if rec.Workload != workload || rec.Target != target {
			continue
		}
		if !found || rec.ExecSec < out.ExecSec ||
			(rec.ExecSec == out.ExecSec && rec.Scheduler < out.Scheduler) {
			out, found = rec, true
		}
	}
	return out, found
}

// sortedBest returns a best map's records sorted by key — the stable
// enumeration order the index file and Records use.
func sortedBest(best map[string]tunelog.Record) []tunelog.Record {
	keys := make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]tunelog.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, best[k])
	}
	return out
}

type indexFile struct {
	V int `json:"v"`
	// JournalRecords is the distinct journal record count the snapshot was
	// built from, so external consumers can tell a lagging snapshot.
	JournalRecords int              `json:"journal_records"`
	Best           []tunelog.Record `json:"best"`
}

// loadIndex parses an index snapshot — for external tools and tests; the
// registry itself treats the journal as authoritative and never reads the
// index back.
func loadIndex(path string) (indexFile, error) {
	var idx indexFile
	data, err := os.ReadFile(path)
	if err != nil {
		return idx, err
	}
	if err := json.Unmarshal(data, &idx); err != nil {
		return idx, fmt.Errorf("registry: damaged index: %w", err)
	}
	if idx.V != IndexVersion {
		return idx, fmt.Errorf("registry: unknown index version %d", idx.V)
	}
	return idx, nil
}

// writeIndexFile snapshots a best map as an index file (atomic temp-file +
// rename), keys sorted so equal states serialize byte-identically.
func writeIndexFile(path string, best map[string]tunelog.Record, records int) error {
	idx := indexFile{V: IndexVersion, JournalRecords: records, Best: sortedBest(best)}
	data, err := json.MarshalIndent(idx, "", " ")
	if err != nil {
		return fmt.Errorf("registry: marshal index: %w", err)
	}
	return atomicfile.WriteFile(path, append(data, '\n'), 0o644)
}

// Open opens (creating if needed) the registry directory with auto-detected
// layout and default options, loading state from the authoritative
// journal(s). Open never writes, so read-only consumers can open a registry
// another process is actively publishing into.
func Open(dir string) (*Registry, error) {
	return OpenOptions(dir, Options{})
}

// OpenOptions is Open with explicit layout, batching, shard-cache and
// compaction knobs.
func OpenOptions(dir string, o Options) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: create dir: %w", err)
	}
	o = o.withDefaults()
	b, err := openBackend(dir, o)
	if err != nil {
		return nil, err
	}
	return &Registry{dir: dir, b: b, bat: newBatcher(b, o.BatchSize, o.BatchWait)}, nil
}

// Resolve returns the best known record for the key, if any — the cache-hit
// path a tuning request consults before spending a single trial. An empty
// scheduler matches any preset, returning the best record across all of them
// (ties to the lexicographically smaller scheduler name, deterministically).
// A miss re-checks durable state first, so publishes from other processes
// become visible without reopening. The error reports an unreadable or
// damaged store — the caller must not conflate it with a plain miss (a
// service would silently turn every request into a cold search).
func (r *Registry) Resolve(workload, target, scheduler string) (tunelog.Record, bool, error) {
	return r.b.Resolve(workload, target, scheduler)
}

// Publish records one measurement into the registry: it is appended to the
// journal (unless the journal already holds it) and the best map updates only
// when the record beats the current best for its key. The returned bool
// reports that improvement. Concurrent publishes are batched: each caller
// blocks until its record is durable, but one locked append services every
// record that arrived within the batching window.
func (r *Registry) Publish(rec tunelog.Record) (bool, error) {
	return r.bat.publish(rec)
}

// PublishAsync enqueues a publish without waiting: the returned channel
// delivers the record's improvement flag and error once its batch is durable.
// This is the bulk-ingest path — a loop of PublishAsync calls followed by a
// drain fills batches completely instead of paying one batching window per
// record.
func (r *Registry) PublishAsync(rec tunelog.Record) <-chan PublishResult {
	return r.bat.enqueue(rec)
}

// Replace force-installs a record as its key's best even if the incumbent
// has a lower recorded time — the repair path for a poisoned key: a foreign
// record whose steps no longer reconstruct can carry an unbeatably low
// ExecSec, and Publish's keep-better rule would preserve it forever. The
// heal is durable: the record is journaled with Force set, and journal
// replays absorb it in order, so rebuilds keep the replacement.
func (r *Registry) Replace(rec tunelog.Record) error {
	rec.Force = true
	_, err := r.bat.publish(rec)
	return err
}

// PublishBatch appends an already-assembled batch in one locked write,
// bypassing the batcher (the records are a batch by construction), and
// returns how many improved their key.
func (r *Registry) PublishBatch(recs []tunelog.Record) (int, error) {
	improved, err := r.b.AppendBatch(recs)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, ok := range improved {
		if ok {
			n++
		}
	}
	return n, nil
}

// ImportJournal publishes every record of a tuning-record log (corrupt lines
// skipped, duplicates collapsed — tunelog.LoadFile semantics) in one append
// batch and returns how many improved the registry. Importing the same
// journal again is a no-op. This is how a daemon boots from a committed
// journal, and how offline tuning runs feed a shared cache.
func (r *Registry) ImportJournal(path string) (int, error) {
	db, err := tunelog.LoadFile(path)
	if err != nil {
		return 0, err
	}
	return r.PublishBatch(db.Records())
}

// Len returns the number of distinct (workload, target, scheduler) keys with
// a best record.
func (r *Registry) Len() int { return r.b.Len() }

// Records returns a copy of the current best records, sorted by key — the
// stable enumeration order the index file uses.
func (r *Registry) Records() []tunelog.Record {
	recs, err := r.b.Records()
	if err != nil {
		return nil
	}
	return recs
}

// Layout reports the storage layout backing this registry.
func (r *Registry) Layout() Layout { return r.b.Layout() }

// Stats snapshots the registry's storage counters (appends, lock
// acquisitions, batch flushes, compactions, resident shards).
func (r *Registry) Stats() Stats {
	s := r.b.Stats()
	s.BatchesFlushed, s.BatchedRecords = r.bat.stats()
	return s
}

// Dir returns the registry's directory path.
func (r *Registry) Dir() string { return r.dir }

// Close flushes the publish batcher (pending publishes complete durably) and
// releases the backend. Publishes after Close fail.
func (r *Registry) Close() error {
	r.bat.close()
	return r.b.Close()
}

// Migrate converts a single-file registry directory to the sharded layout in
// place: the journal replays into per-shard journals (order preserved, so
// Force heals keep their effect), the old journal is kept as
// journal.v1.jsonl for rollback, and the now-stale index.json is removed.
// OpenOptions with LayoutSharded calls this automatically for a v1 directory.
func Migrate(dir string, o Options) error {
	o = o.withDefaults()
	src := filepath.Join(dir, JournalFile)
	db, err := tunelog.LoadFile(src)
	if err != nil {
		return fmt.Errorf("registry: migrate: %w", err)
	}
	sb, err := openSharded(dir, o)
	if err != nil {
		return err
	}
	if _, err := sb.AppendBatch(db.Records()); err != nil {
		return errors.Join(fmt.Errorf("registry: migrate: %w", err), sb.Close())
	}
	if err := sb.Close(); err != nil {
		return err
	}
	if err := os.Rename(src, filepath.Join(dir, "journal.v1.jsonl")); err != nil {
		return fmt.Errorf("registry: migrate: retire v1 journal: %w", err)
	}
	os.Remove(filepath.Join(dir, IndexFile))
	return nil
}

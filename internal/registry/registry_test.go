package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"harl/internal/schedule"
	"harl/internal/sketch"
	"harl/internal/tunelog"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// sampleRecord builds a deterministic record for the test GEMM workload.
func sampleRecord(seed uint64, scheduler string, exec float64, trial int) tunelog.Record {
	sg := workload.GEMM("g", 1, 64, 64, 64)
	sketches := sketch.Generate(sg)
	rng := xrand.New(seed)
	s := schedule.NewRandom(sketches[rng.Intn(len(sketches))], 4, rng)
	return tunelog.NewRecord(sg, "cpu-xeon6226r", scheduler, s, exec, trial, seed)
}

// resolve adapts the 3-value Resolve for tests that only assert hit/miss: a
// storage error is always fatal there.
func resolve(t *testing.T, r *Registry, w, target, scheduler string) (tunelog.Record, bool) {
	t.Helper()
	rec, ok, err := r.Resolve(w, target, scheduler)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return rec, ok
}

func TestPublishResolveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord(1, "harl", 2e-4, 1)
	improved, err := r.Publish(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !improved {
		t.Fatal("first publish must improve")
	}
	// A worse record extends the journal but not the best.
	if improved, err = r.Publish(sampleRecord(2, "harl", 5e-4, 2)); err != nil || improved {
		t.Fatalf("worse record: improved=%v err=%v", improved, err)
	}
	// A better one takes over.
	best := sampleRecord(3, "harl", 1e-4, 3)
	if improved, err = r.Publish(best); err != nil || !improved {
		t.Fatalf("better record: improved=%v err=%v", improved, err)
	}
	got, ok := resolve(t, r, rec.Workload, rec.Target, "harl")
	if !ok || got != best {
		t.Fatalf("Resolve = %+v, %v; want the published best", got, ok)
	}
	if _, ok := resolve(t, r, rec.Workload, "gpu-rtx3090", "harl"); ok {
		t.Fatal("miss expected for an untuned target")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state must survive the process boundary through the files.
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, ok = resolve(t, r2, rec.Workload, rec.Target, "harl")
	if !ok || got != best {
		t.Fatalf("after reopen Resolve = %+v, %v; want the published best", got, ok)
	}
}

func TestResolveAnyScheduler(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	harl := sampleRecord(1, "harl", 2e-4, 1)
	ansor := sampleRecord(2, "ansor", 1e-4, 1)
	for _, rec := range []tunelog.Record{harl, ansor} {
		if _, err := r.Publish(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := resolve(t, r, harl.Workload, harl.Target, "")
	if !ok || got != ansor {
		t.Fatalf("empty scheduler must resolve the overall best; got %+v", got)
	}
}

func TestStaleIndexRebuiltFromJournal(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord(1, "harl", 2e-4, 1)
	if _, err := r.Publish(rec); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Sabotage the index: journal stays authoritative.
	if err := os.WriteFile(filepath.Join(dir, IndexFile), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got, ok := resolve(t, r2, rec.Workload, rec.Target, "harl"); !ok || got != rec {
		t.Fatalf("rebuild from journal failed: %+v, %v", got, ok)
	}
	// Open never writes (read-only consumers must be able to open a registry
	// mid-publish); the damaged snapshot is replaced by the next publish.
	if _, err := loadIndex(filepath.Join(dir, IndexFile)); err == nil {
		t.Fatal("Open must not rewrite the index")
	}
	if _, err := r2.Publish(sampleRecord(4, "harl", 3e-4, 4)); err != nil {
		t.Fatal(err)
	}
	if idx, err := loadIndex(filepath.Join(dir, IndexFile)); err != nil || idx.JournalRecords != 2 {
		t.Fatalf("publish did not refresh the index: %+v, %v", idx, err)
	}
}

func TestImportJournal(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "tune.jsonl")
	jr, err := tunelog.OpenJournal(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var best tunelog.Record
	for i := 0; i < 8; i++ {
		rec := sampleRecord(uint64(i+1), "harl", float64(8-i)*1e-5, i+1)
		if i == 7 {
			best = rec
		}
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(filepath.Join(dir, "reg"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	improved, err := r.ImportJournal(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if improved != 8 {
		t.Fatalf("improved %d of 8 strictly descending records", improved)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 key", r.Len())
	}
	if got, ok := resolve(t, r, best.Workload, best.Target, "harl"); !ok || got != best {
		t.Fatalf("Resolve after import = %+v, %v", got, ok)
	}
}

// TestConcurrentResolveDuringPublish is the -race seam test: many readers
// resolving while a writer publishes strictly improving records must never
// race, and every reader observes either a miss or a complete record.
func TestConcurrentResolveDuringPublish(t *testing.T) {
	r, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	probe := sampleRecord(1, "harl", 1, 1)
	const readers = 8
	const publishes = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, ok, err := r.Resolve(probe.Workload, probe.Target, "harl")
				if err != nil {
					t.Error(err)
					return
				}
				if ok {
					if rec.Workload == "" || rec.Steps == "" || rec.ExecSec <= 0 {
						t.Error("torn record observed")
						return
					}
				}
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		rec := sampleRecord(uint64(i+1), "harl", float64(publishes-i)*1e-6, i+1)
		if _, err := r.Publish(rec); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if rec, ok := resolve(t, r, probe.Workload, probe.Target, "harl"); !ok || fmt.Sprintf("%.0e", rec.ExecSec) != "1e-06" {
		t.Fatalf("final best = %+v, %v", rec, ok)
	}
}

// TestTwoWriterHandlesInterleaveWholeRecords simulates the daemon + CLI
// sharing one registry directory: both handles publish successfully (the
// blocking per-publish lock serializes them) and a fresh open sees
// everything through the authoritative journal.
func TestTwoWriterHandlesInterleaveWholeRecords(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recA := sampleRecord(1, "harl", 2e-4, 1)
	recB := sampleRecord(2, "ansor", 3e-4, 1)
	if _, err := a.Publish(recA); err != nil {
		t.Fatalf("writer A: %v", err)
	}
	if _, err := b.Publish(recB); err != nil {
		t.Fatalf("writer B alongside A: %v", err)
	}
	// Cross-visibility without reopening: B folded A's record in during its
	// own publish (post-lock refresh), and A's next miss re-checks the
	// journal stat and reloads B's record.
	if got, ok := resolve(t, b, recA.Workload, recA.Target, "harl"); !ok || got != recA {
		t.Fatalf("writer B does not see writer A's record: %+v, %v", got, ok)
	}
	if got, ok := resolve(t, a, recB.Workload, recB.Target, "ansor"); !ok || got != recB {
		t.Fatalf("writer A does not see writer B's record: %+v, %v", got, ok)
	}
	fresh, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 2 {
		t.Fatalf("fresh open sees %d keys, want both writers' records", fresh.Len())
	}
	if got, ok := resolve(t, fresh, recA.Workload, recA.Target, "harl"); !ok || got != recA {
		t.Fatalf("writer A's record lost: %+v, %v", got, ok)
	}
	if got, ok := resolve(t, fresh, recB.Workload, recB.Target, "ansor"); !ok || got != recB {
		t.Fatalf("writer B's record lost: %+v, %v", got, ok)
	}
}

package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"harl/internal/tunelog"
)

// The publish batcher. Every publisher — N concurrent daemon sessions, a CLI
// run, a Replace heal — enqueues its record with a per-caller response
// channel; a single flusher goroutine collects whatever arrives within the
// batching window (up to batchSize records, or batchWait after the first)
// and services the whole batch with ONE backend append: one lock
// acquisition, one journal open, one index/header write, however many
// sessions published. A lone publisher pays at most batchWait of latency —
// noise against the seconds a tuning session spends earning the record —
// and concurrent publishers stop serializing one file lock apiece.

// PublishResult is the per-record outcome of a batched publish.
type PublishResult struct {
	// Improved reports the record beat (or established) its key's best.
	Improved bool
	Err      error
}

type publishReq struct {
	rec  tunelog.Record
	resp chan PublishResult
}

type batcher struct {
	b    Backend
	size int
	wait time.Duration

	mu     sync.RWMutex // guards closed vs in-flight enqueues
	closed bool
	ch     chan publishReq
	done   chan struct{} // closed when the flusher has drained and exited

	batches atomic.Int64
	records atomic.Int64
}

func newBatcher(b Backend, size int, wait time.Duration) *batcher {
	bt := &batcher{
		b:    b,
		size: size,
		wait: wait,
		ch:   make(chan publishReq, size*2),
		done: make(chan struct{}),
	}
	go bt.run()
	return bt
}

// publish enqueues one record and blocks until its batch is durable.
func (bt *batcher) publish(rec tunelog.Record) (bool, error) {
	res := <-bt.enqueue(rec)
	return res.Improved, res.Err
}

// enqueue submits one record for the next batch; the returned channel
// delivers exactly one result.
func (bt *batcher) enqueue(rec tunelog.Record) <-chan PublishResult {
	resp := make(chan PublishResult, 1)
	bt.mu.RLock()
	if bt.closed {
		bt.mu.RUnlock()
		resp <- PublishResult{Err: fmt.Errorf("registry: closed")}
		return resp
	}
	bt.ch <- publishReq{rec: rec, resp: resp}
	bt.mu.RUnlock()
	return resp
}

// run is the flusher loop: take the first pending request, keep collecting
// until the batch is full or the batching window since that first request
// elapses, then flush. Intake closing drains what remains into final batches.
func (bt *batcher) run() {
	defer close(bt.done)
	for first := range bt.ch {
		batch := []publishReq{first}
		timer := time.NewTimer(bt.wait)
	collect:
		for len(batch) < bt.size {
			select {
			case req, ok := <-bt.ch:
				if !ok {
					break collect
				}
				batch = append(batch, req)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		bt.flush(batch)
	}
}

// flush services one batch with a single backend append and fans the
// per-record outcomes back to their callers. A batch-level failure reaches
// every caller in the batch: the backend reloaded from disk, so retrying a
// record that did land is a duplicate no-op, and retrying one that did not
// re-appends it.
func (bt *batcher) flush(batch []publishReq) {
	recs := make([]tunelog.Record, len(batch))
	for i, req := range batch {
		recs[i] = req.rec
	}
	improved, err := bt.b.AppendBatch(recs)
	bt.batches.Add(1)
	bt.records.Add(int64(len(batch)))
	for i, req := range batch {
		res := PublishResult{Err: err}
		if err == nil {
			res.Improved = improved[i]
		}
		req.resp <- res
	}
}

func (bt *batcher) stats() (batches, records int64) {
	return bt.batches.Load(), bt.records.Load()
}

// close stops intake, waits for pending publishes to flush durably, and
// stops the flusher. Idempotent.
func (bt *batcher) close() {
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		<-bt.done
		return
	}
	bt.closed = true
	close(bt.ch)
	bt.mu.Unlock()
	<-bt.done
}

package registry

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"harl/internal/tunelog"
)

// The backend conformance suite: every storage layout must satisfy the same
// contract — publish/resolve round trips, journal imports, Force heals,
// refresh after a foreign append, race-free concurrent use, and the
// reload-on-append-failure durability invariant. Each case runs against both
// layouts; layout-specific behavior (compaction, generations, the LRU,
// migration) lives in shard_test.go.

var conformanceLayouts = []Layout{LayoutSingle, LayoutSharded}

// openLayout opens a registry with the given layout and a short batching
// window so single-publish tests do not serialize on the default wait.
func openLayout(t testing.TB, dir string, layout Layout) *Registry {
	t.Helper()
	r, err := OpenOptions(dir, Options{Layout: layout, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// synthRecord builds a schema-valid record with an arbitrary fingerprint —
// backends store and route records without reconstructing schedules, so
// conformance tests are free to use cheap synthetic keys.
func synthRecord(w, scheduler string, exec float64, trial int) tunelog.Record {
	return tunelog.Record{V: tunelog.SchemaVersion, Workload: w, Target: "cpu-xeon6226r",
		Scheduler: scheduler, Steps: "steps:" + w, ExecSec: exec, Trial: trial, Seed: 1}
}

// setJournalHook substitutes the backend's journal opener (the append-failure
// injection seam) and returns a restore func.
func setJournalHook(t *testing.T, r *Registry, hook func(string) (*tunelog.Journal, error)) func() {
	t.Helper()
	switch b := r.b.(type) {
	case *fileBackend:
		old := b.openJournal
		b.openJournal = hook
		return func() { b.openJournal = old }
	case *shardedBackend:
		old := b.openJournal
		b.openJournal = hook
		return func() { b.openJournal = old }
	}
	t.Fatalf("unknown backend %T", r.b)
	return nil
}

type failingWriter struct{ err error }

func (w failingWriter) Write([]byte) (int, error) { return 0, w.err }

func TestBackendConformance(t *testing.T) {
	for _, layout := range conformanceLayouts {
		t.Run(string(layout), func(t *testing.T) {
			t.Run("RoundTripAndReopen", func(t *testing.T) { testRoundTripAndReopen(t, layout) })
			t.Run("AnySchedulerScan", func(t *testing.T) { testAnySchedulerScan(t, layout) })
			t.Run("ImportJournal", func(t *testing.T) { testImportJournal(t, layout) })
			t.Run("ReplaceHealSurvivesReopen", func(t *testing.T) { testReplaceHealSurvivesReopen(t, layout) })
			t.Run("RefreshAfterForeignAppend", func(t *testing.T) { testRefreshAfterForeignAppend(t, layout) })
			t.Run("ConcurrentResolveDuringPublish", func(t *testing.T) { testConcurrentResolveDuringPublish(t, layout) })
			t.Run("AppendFailureReloadsState", func(t *testing.T) { testAppendFailureReloadsState(t, layout) })
			t.Run("CloseFailureSurfacesAndReloads", func(t *testing.T) { testCloseFailureSurfacesAndReloads(t, layout) })
		})
	}
}

func testRoundTripAndReopen(t *testing.T, layout Layout) {
	dir := t.TempDir()
	r := openLayout(t, dir, layout)
	rec := synthRecord("w@rt", "harl", 2e-4, 1)
	improved, err := r.Publish(rec)
	if err != nil || !improved {
		t.Fatalf("first publish: improved=%v err=%v", improved, err)
	}
	if improved, err = r.Publish(synthRecord("w@rt", "harl", 5e-4, 2)); err != nil || improved {
		t.Fatalf("worse record: improved=%v err=%v", improved, err)
	}
	best := synthRecord("w@rt", "harl", 1e-4, 3)
	if improved, err = r.Publish(best); err != nil || !improved {
		t.Fatalf("better record: improved=%v err=%v", improved, err)
	}
	if got, ok := resolve(t, r, "w@rt", best.Target, "harl"); !ok || got != best {
		t.Fatalf("Resolve = %+v, %v; want the published best", got, ok)
	}
	if _, ok := resolve(t, r, "w@rt", "gpu-rtx3090", "harl"); ok {
		t.Fatal("miss expected for an untuned target")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen with auto-detection: the layout choice must be sticky on disk and
	// the state survive the process boundary through the journal(s).
	r2 := openLayout(t, dir, LayoutAuto)
	defer r2.Close()
	if r2.Layout() != layout {
		t.Fatalf("auto reopen detected %q, want %q", r2.Layout(), layout)
	}
	if got, ok := resolve(t, r2, "w@rt", best.Target, "harl"); !ok || got != best {
		t.Fatalf("after reopen Resolve = %+v, %v", got, ok)
	}
}

func testAnySchedulerScan(t *testing.T, layout Layout) {
	r := openLayout(t, t.TempDir(), layout)
	defer r.Close()
	hr := synthRecord("w@any", "harl", 2e-4, 1)
	an := synthRecord("w@any", "ansor", 1e-4, 1)
	for _, rec := range []tunelog.Record{hr, an} {
		if _, err := r.Publish(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := resolve(t, r, "w@any", hr.Target, ""); !ok || got != an {
		t.Fatalf("empty scheduler must resolve the overall best; got %+v", got)
	}
}

func testImportJournal(t *testing.T, layout Layout) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "tune.jsonl")
	jr, err := tunelog.OpenJournal(logPath)
	if err != nil {
		t.Fatal(err)
	}
	var best tunelog.Record
	for i := 0; i < 8; i++ {
		rec := synthRecord("w@imp", "harl", float64(8-i)*1e-5, i+1)
		if i == 7 {
			best = rec
		}
		if err := jr.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	r := openLayout(t, filepath.Join(dir, "reg"), layout)
	defer r.Close()
	improved, err := r.ImportJournal(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if improved != 8 {
		t.Fatalf("improved %d of 8 strictly descending records", improved)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 key", r.Len())
	}
	if got, ok := resolve(t, r, "w@imp", best.Target, "harl"); !ok || got != best {
		t.Fatalf("Resolve after import = %+v, %v", got, ok)
	}
	// Re-importing the same journal is a durable no-op.
	if improved, err := r.ImportJournal(logPath); err != nil || improved != 0 {
		t.Fatalf("re-import: improved=%d err=%v", improved, err)
	}
}

func testReplaceHealSurvivesReopen(t *testing.T, layout Layout) {
	dir := t.TempDir()
	r := openLayout(t, dir, layout)
	poisoned := synthRecord("w@heal", "harl", 1e-9, 1) // unbeatably fast
	if _, err := r.Publish(poisoned); err != nil {
		t.Fatal(err)
	}
	heal := synthRecord("w@heal", "harl", 3e-4, 2)
	if err := r.Replace(heal); err != nil {
		t.Fatal(err)
	}
	heal.Force = true // Replace journals the record with Force set
	if got, ok := resolve(t, r, "w@heal", heal.Target, "harl"); !ok || got != heal {
		t.Fatalf("Resolve after Replace = %+v, %v; want the forced heal", got, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// The heal must be durable: a rebuild replays the journal in order and the
	// Force record wins again.
	r2 := openLayout(t, dir, layout)
	defer r2.Close()
	if got, ok := resolve(t, r2, "w@heal", heal.Target, "harl"); !ok || got != heal {
		t.Fatalf("heal lost across reopen: %+v, %v", got, ok)
	}
}

func testRefreshAfterForeignAppend(t *testing.T, layout Layout) {
	dir := t.TempDir()
	a := openLayout(t, dir, layout)
	defer a.Close()
	b := openLayout(t, dir, layout)
	defer b.Close()
	recA := synthRecord("w@fa", "harl", 2e-4, 1)
	recB := synthRecord("w@fb", "ansor", 3e-4, 1)
	if _, err := a.Publish(recA); err != nil {
		t.Fatalf("writer A: %v", err)
	}
	if _, err := b.Publish(recB); err != nil {
		t.Fatalf("writer B alongside A: %v", err)
	}
	// Cross-visibility without reopening: each handle's miss re-checks the
	// durable state and folds in the other writer's append.
	if got, ok := resolve(t, b, "w@fa", recA.Target, "harl"); !ok || got != recA {
		t.Fatalf("writer B does not see writer A's record: %+v, %v", got, ok)
	}
	if got, ok := resolve(t, a, "w@fb", recB.Target, "ansor"); !ok || got != recB {
		t.Fatalf("writer A does not see writer B's record: %+v, %v", got, ok)
	}
	fresh := openLayout(t, dir, layout)
	defer fresh.Close()
	if fresh.Len() != 2 {
		t.Fatalf("fresh open sees %d keys, want both writers' records", fresh.Len())
	}
}

func testConcurrentResolveDuringPublish(t *testing.T, layout Layout) {
	r := openLayout(t, t.TempDir(), layout)
	defer r.Close()
	const readers = 8
	const publishes = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, ok, err := r.Resolve("w@race", "cpu-xeon6226r", "harl")
				if err != nil {
					t.Error(err)
					return
				}
				if ok && (rec.Workload == "" || rec.Steps == "" || rec.ExecSec <= 0) {
					t.Error("torn record observed")
					return
				}
			}
		}()
	}
	for i := 0; i < publishes; i++ {
		if _, err := r.Publish(synthRecord("w@race", "harl", float64(publishes-i)*1e-6, i+1)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if rec, ok := resolve(t, r, "w@race", "cpu-xeon6226r", "harl"); !ok || fmt.Sprintf("%.0e", rec.ExecSec) != "1e-06" {
		t.Fatalf("final best = %+v, %v", rec, ok)
	}
}

// testAppendFailureReloadsState is the S2 durability regression: when an
// append fails mid-batch, the in-memory state must be reloaded from disk.
// Pre-fix it kept claiming the failed records as seen, so a RETRY of the same
// publish was skipped as a duplicate and the record silently lost until
// restart.
func testAppendFailureReloadsState(t *testing.T, layout Layout) {
	dir := t.TempDir()
	r := openLayout(t, dir, layout)
	rec1 := synthRecord("w@fail", "harl", 2e-4, 1)
	if _, err := r.PublishBatch([]tunelog.Record{rec1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected write failure")
	restore := setJournalHook(t, r, func(string) (*tunelog.Journal, error) {
		return tunelog.NewJournal(failingWriter{boom}), nil
	})
	rec2 := synthRecord("w@fail", "harl", 1e-4, 2)
	if _, err := r.PublishBatch([]tunelog.Record{rec2}); !errors.Is(err, boom) {
		t.Fatalf("append through failing writer: err=%v, want the injected failure", err)
	}
	restore()
	// The retry must re-append: the journal never got rec2.
	n, err := r.PublishBatch([]tunelog.Record{rec2})
	if err != nil {
		t.Fatalf("retry after failed append: %v", err)
	}
	if n != 1 {
		t.Fatal("retried record was dedup-skipped: in-memory state claimed a record the journal never got")
	}
	if got, ok := resolve(t, r, "w@fail", rec2.Target, "harl"); !ok || got != rec2 {
		t.Fatalf("Resolve after retry = %+v, %v", got, ok)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Durability proof: a fresh open replays the journal alone.
	fresh := openLayout(t, dir, layout)
	defer fresh.Close()
	if got, ok := resolve(t, fresh, "w@fail", rec2.Target, "harl"); !ok || got != rec2 {
		t.Fatalf("retried record not durable: %+v, %v", got, ok)
	}
}

// writeOKCloseFail writes successfully but fails on Close — an fsync-or-flush
// error that only surfaces when the journal handle is released.
type writeOKCloseFail struct{ err error }

func (writeOKCloseFail) Write(p []byte) (int, error) { return len(p), nil }
func (w writeOKCloseFail) Close() error              { return w.err }

// testCloseFailureSurfacesAndReloads is the errclose regression: a journal
// close error after otherwise-successful appends must reach the publisher
// (not vanish into a discarded Close) and must trip the same reload-from-disk
// path as a write failure — records the close may not have made durable must
// not be claimed as seen, or a retry would be dedup-skipped and lost.
func testCloseFailureSurfacesAndReloads(t *testing.T, layout Layout) {
	dir := t.TempDir()
	r := openLayout(t, dir, layout)
	defer r.Close()
	boom := errors.New("injected close failure")
	restore := setJournalHook(t, r, func(string) (*tunelog.Journal, error) {
		return tunelog.NewJournalWriteCloser(writeOKCloseFail{boom}), nil
	})
	rec := synthRecord("w@closefail", "harl", 1e-4, 1)
	if _, err := r.PublishBatch([]tunelog.Record{rec}); !errors.Is(err, boom) {
		t.Fatalf("publish through close-failing journal: err=%v, want the injected close failure", err)
	}
	restore()
	// The retry must re-append: the failed close means the journal never
	// durably got the record, so the dedup set must not claim it.
	n, err := r.PublishBatch([]tunelog.Record{rec})
	if err != nil {
		t.Fatalf("retry after failed close: %v", err)
	}
	if n != 1 {
		t.Fatal("retried record was dedup-skipped: close failure left it claimed as seen")
	}
	if got, ok := resolve(t, r, "w@closefail", rec.Target, "harl"); !ok || got != rec {
		t.Fatalf("Resolve after retry = %+v, %v", got, ok)
	}
}

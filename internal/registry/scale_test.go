package registry

import (
	"fmt"
	"os"
	"testing"
	"time"

	"harl/internal/tunelog"
)

// TestRegistryScaleSmoke is the CI bench-smoke scale check, gated behind
// HARL_REGISTRY_SCALE=1: ~10k synthetic keys publish into a sharded registry,
// point lookups stay sub-millisecond, a dominated shard compacts down, and a
// v1 single-file registry beside it still opens and resolves untouched.
func TestRegistryScaleSmoke(t *testing.T) {
	if os.Getenv("HARL_REGISTRY_SCALE") != "1" {
		t.Skip("set HARL_REGISTRY_SCALE=1 to run the registry scale smoke")
	}
	dir := t.TempDir()
	r, err := OpenOptions(dir, Options{Layout: LayoutSharded, BatchWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	const chunk = 500
	recs := make([]tunelog.Record, 0, chunk)
	for i := 0; i < keys; i++ {
		recs = append(recs, synthRecord(fmt.Sprintf("w@scale-%05d", i), "harl", float64(i+1)*1e-7, i+1))
		if len(recs) == chunk {
			if _, err := r.PublishBatch(recs); err != nil {
				t.Fatal(err)
			}
			recs = recs[:0]
		}
	}
	if r.Len() != keys {
		t.Fatalf("Len = %d, want %d", r.Len(), keys)
	}
	if st := r.Stats(); st.ResidentShards > DefaultShardCache {
		t.Fatalf("%d resident shards, cap %d", st.ResidentShards, DefaultShardCache)
	}

	// Point lookups over warm and cold shards must stay sub-millisecond on
	// average — the service's cache-hit latency contract.
	const probes = 2000
	start := time.Now()
	for i := 0; i < probes; i++ {
		w := fmt.Sprintf("w@scale-%05d", (i*4999)%keys)
		if _, ok := resolve(t, r, w, "cpu-xeon6226r", "harl"); !ok {
			t.Fatalf("%s missing", w)
		}
	}
	if avg := time.Since(start) / probes; avg >= time.Millisecond {
		t.Fatalf("average resolve %v, want sub-millisecond", avg)
	}

	// Dominate one key with superseded records: its shard must compact and
	// the journal shrink below the records appended to it.
	hot := "w@scale-00000"
	const supersedes = 2 * DefaultCompactMinRecords
	for i := 0; i < supersedes; i += chunk {
		batch := make([]tunelog.Record, 0, chunk)
		for j := 0; j < chunk && i+j < supersedes; j++ {
			batch = append(batch, synthRecord(hot, "harl", 1e-7/float64(i+j+2), keys+i+j))
		}
		if _, err := r.PublishBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction after %d superseded records on one key", supersedes)
	}
	if st.Records >= keys+supersedes {
		t.Fatalf("%d records for %d keys — compaction shrank nothing", st.Records, keys)
	}
	if _, ok := resolve(t, r, hot, "cpu-xeon6226r", "harl"); !ok {
		t.Fatal("hot key lost through compaction")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// A v1 registry created beside all this still opens and resolves.
	v1dir := t.TempDir()
	v1 := openLayout(t, v1dir, LayoutSingle)
	rec := synthRecord("w@v1-smoke", "harl", 1e-4, 1)
	if _, err := v1.Publish(rec); err != nil {
		t.Fatal(err)
	}
	if err := v1.Close(); err != nil {
		t.Fatal(err)
	}
	v1again := openLayout(t, v1dir, LayoutAuto)
	defer v1again.Close()
	if v1again.Layout() != LayoutSingle {
		t.Fatalf("v1 dir detected as %q", v1again.Layout())
	}
	if got, ok := resolve(t, v1again, "w@v1-smoke", rec.Target, "harl"); !ok || got != rec {
		t.Fatalf("v1 resolve = %+v, %v", got, ok)
	}
}

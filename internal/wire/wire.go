// Package wire defines the versioned v1 API contract shared by every HTTP
// surface of the system: the public REST API served by harl-serve
// (internal/service) and the measurement-worker protocol served by
// harl-worker (internal/fleet).
//
// The contract has one error shape. Every non-2xx response from a /v1
// endpoint of either daemon is an ErrorBody:
//
//	{"error":{"code":"<machine_code>","message":"<human detail>"}}
//
// Codes are stable, machine-matchable strings (see ErrorCode); messages are
// human diagnostics and carry no stability promise. Clients branch on the
// code, never on message text.
//
// The package is a leaf — it imports only the standard library — so the
// service layer, the fleet client, the worker daemon and external client code
// can all share it without import cycles.
package wire

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ErrorCode is a stable machine-readable error identifier. New codes may be
// added; existing codes never change meaning.
type ErrorCode string

const (
	// CodeInvalidRequest marks a malformed or unresolvable request (bad JSON,
	// unknown workload/target/scheduler, out-of-range parameter). HTTP 400.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeNotFound marks an absent resource: an unknown job id, or a schedule
	// lookup that missed the registry. HTTP 404.
	CodeNotFound ErrorCode = "not_found"
	// CodeNotCancellable marks a cancel of a job that does not exist or
	// already finished. HTTP 409.
	CodeNotCancellable ErrorCode = "not_cancellable"
	// CodeRegistryIO marks a registry storage failure: the lookup neither hit
	// nor missed, because the backing store could not be read. HTTP 500.
	CodeRegistryIO ErrorCode = "registry_io"
	// CodeShuttingDown marks a request that arrived while the daemon was
	// draining. HTTP 503.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeUnsupportedTarget marks a measurement request for a platform the
	// worker does not serve (see harl-worker -targets). HTTP 400.
	CodeUnsupportedTarget ErrorCode = "unsupported_target"
	// CodeInternal marks an unexpected server-side failure, including the
	// response-encoding fallback. HTTP 500.
	CodeInternal ErrorCode = "internal"
)

// ErrorInfo is the body of the envelope: the stable code plus a human
// diagnostic message.
type ErrorInfo struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// ErrorBody is the one error response shape of the v1 contract.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// Errorf builds an envelope value.
func Errorf(code ErrorCode, format string, args ...any) ErrorBody {
	return ErrorBody{Error: ErrorInfo{Code: code, Message: fmt.Sprintf(format, args...)}}
}

// WriteJSON writes v as an indented JSON response. It marshals before writing
// the header, so an unencodable value — which would otherwise truncate the
// body mid-status — degrades to a contract-conforming internal error envelope
// instead of a hand-written string that bypasses it.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, "response not JSON-encodable: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// WriteError writes the v1 error envelope. The envelope itself is all string
// fields and cannot fail to marshal, so this is the floor every error path
// bottoms out on — including WriteJSON's own encode-failure fallback.
func WriteError(w http.ResponseWriter, status int, code ErrorCode, format string, args ...any) {
	body := Errorf(code, format, args...)
	data, err := json.MarshalIndent(body, "", " ")
	if err != nil {
		// Unreachable with string fields; keep the contract anyway.
		http.Error(w, `{"error":{"code":"internal","message":"error response not encodable"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// APIError is a decoded v1 error envelope plus its HTTP status — what client
// code (the fleet dispatcher, external consumers) gets back from a non-2xx
// response.
type APIError struct {
	Status  int
	Code    ErrorCode
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("api error %d (%s): %s", e.Status, e.Code, e.Message)
}

// maxErrorBody bounds how much of an error response a client reads: error
// envelopes are small, and an endpoint that is not speaking the protocol at
// all (a proxy error page, say) must not balloon memory.
const maxErrorBody = 64 << 10

// DecodeError reads a non-2xx response body as the v1 envelope. A body that
// is not a valid envelope (a non-v1 server, a proxy interposing) still comes
// back as an APIError, with CodeInternal and the raw body as the message, so
// callers always have one error type to branch on.
func DecodeError(resp *http.Response) *APIError {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var body ErrorBody
	if err := json.Unmarshal(raw, &body); err == nil && body.Error.Code != "" {
		return &APIError{Status: resp.StatusCode, Code: body.Error.Code, Message: body.Error.Message}
	}
	msg := string(raw)
	if msg == "" {
		msg = resp.Status
	}
	return &APIError{Status: resp.StatusCode, Code: CodeInternal, Message: msg}
}

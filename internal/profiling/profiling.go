// Package profiling wires Go's standard profiling endpoints into the HARL
// daemons. The pprof handlers are mounted on their own mux and listener —
// never on the service port — so enabling profiling does not expose
// /debug/pprof/ to tuning clients, and the flag defaults to off.
package profiling

import (
	"net/http"
	"net/http/pprof"
)

// Handler returns a mux serving only the net/http/pprof endpoints under
// /debug/pprof/. Daemons mount it on a dedicated address given by their
// -pprof flag:
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
//	go tool pprof http://localhost:6060/debug/pprof/heap
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe serves Handler() on addr. It blocks, so daemons run it in a
// goroutine; a listen failure is reported through the returned error rather
// than killing the daemon (profiling is diagnostics, not the service).
func ListenAndServe(addr string) error {
	return http.ListenAndServe(addr, Handler())
}

package service

import (
	"context"
	"fmt"
	"math"
	"strings"

	"harl"
)

// HarlTuner is the production Tuner: it drives the harl public API with a
// shared best-schedule registry in front (resolve-first inside
// TuneOperatorContext / TuneNetworkContext, publish-after on completion), so
// finished jobs make every later identical request a cache hit.
type HarlTuner struct {
	// Registry, when non-nil, is shared across all sessions (and with the
	// HTTP layer's lookup endpoints).
	Registry *harl.Registry
	// DefaultPlateau is the service-wide early-stop policy applied to
	// requests that leave plateau_window at 0 — the daemon's defense against
	// burning full trial budgets on searches that flatlined early. The zero
	// value disables it; a request can opt out of a configured default with
	// plateau_window < 0, or override it with its own positive window.
	DefaultPlateau harl.Plateau
	// Fleet, when non-nil, is the shared measurement-worker pool every
	// session dispatches its measure batches to (harl-serve -fleet). Remote
	// measurement is bit-identical to in-process, so attaching a fleet never
	// changes results — which is also why it is not part of the coalescing
	// key.
	Fleet *harl.Fleet
	// Transfer, when set (harl-serve -transfer; requires Registry), gives
	// every session cross-key transfer warm starts: a registry miss scans
	// for a donor key instead of starting cold. Adaptive, when enabled
	// (harl-serve -adaptive), attaches adaptive measurement sampling to
	// every session. Both are daemon-wide policies, constant across requests,
	// so neither is part of the coalescing key.
	Transfer bool
	Adaptive harl.AdaptiveSampling
}

// plateau resolves a normalized request's effective early-stop policy
// against the service default. It is part of the coalescing identity: two
// requests with different effective policies can produce different results
// and must not share a search.
func (h *HarlTuner) plateau(req Request) harl.Plateau {
	switch {
	case req.PlateauWindow > 0:
		return harl.Plateau{Window: req.PlateauWindow, MinImprovement: req.PlateauMinImprovement}
	case req.PlateauWindow < 0:
		return harl.Plateau{}
	default:
		return h.DefaultPlateau
	}
}

// resolveRequest validates a normalized request against the workload,
// target and scheduler registries and returns its parsed parts.
func resolveRequest(req Request) (w harl.Workload, tgt harl.Target, isNet bool, err error) {
	tgt, err = harl.TargetByName(req.Target)
	if err != nil {
		return w, tgt, false, err
	}
	if _, err := harl.SchedulerByName(req.Scheduler); err != nil {
		return w, tgt, false, err
	}
	if req.Batch < 1 {
		// normalize only defaults an omitted (zero) batch; an explicit
		// negative one is meaningless and must not be clamped into answering
		// for batch 1.
		return w, tgt, false, fmt.Errorf("service: batch must be >= 1, got %d", req.Batch)
	}
	if req.Trials < 0 {
		// Negative trials is the library's pure-cache-replay mode, which
		// needs a resume log the service does not expose; such a job would
		// only ever fail, so reject it at validation time.
		return w, tgt, false, fmt.Errorf("service: trials must be >= 0, got %d", req.Trials)
	}
	if req.PlateauMinImprovement < 0 {
		return w, tgt, false, fmt.Errorf("service: plateau_min_improvement must be >= 0, got %g", req.PlateauMinImprovement)
	}
	if req.PlateauMinImprovement > 0 && req.PlateauWindow <= 0 {
		// Without a positive window the threshold would be silently dropped
		// (window 0 selects the service default policy wholesale, negative
		// opts out); reject instead of ignoring what the client asked for.
		return w, tgt, false, fmt.Errorf("service: plateau_min_improvement needs plateau_window > 0, got window %d", req.PlateauWindow)
	}
	if req.Network != "" {
		if req.Op != "" || req.Shape != "" {
			return w, tgt, false, fmt.Errorf("service: request must set either op+shape or network, not both")
		}
		if _, err := harl.NetworkWorkloads(req.Network, req.Batch); err != nil {
			return w, tgt, true, err
		}
		return w, tgt, true, nil
	}
	if req.Op == "" {
		return w, tgt, false, fmt.Errorf("service: request needs op+shape or network")
	}
	dims, err := harl.ParseShape(req.Shape)
	if err != nil {
		return w, tgt, false, err
	}
	w, err = harl.OperatorWorkload(req.Op, dims, req.Batch)
	return w, tgt, false, err
}

// Key implements Tuner: the coalescing identity is the workload fingerprint
// (structural, so differently-spelled but identical shapes unify) plus
// target, scheduler and the run parameters that change the result.
func (h *HarlTuner) Key(req Request) (string, error) {
	w, tgt, isNet, err := resolveRequest(req)
	if err != nil {
		return "", err
	}
	var workload string
	if isNet {
		workload = fmt.Sprintf("network:%s@b%d", strings.ToLower(req.Network), req.Batch)
	} else {
		workload = w.Fingerprint()
	}
	p := h.plateau(req)
	return fmt.Sprintf("%s|%s|%s|t%d|s%d|w%d|pw%d|pi%g", workload, tgt.Name(), req.Scheduler,
		req.Trials, req.Seed, req.Workers, p.Window, p.MinImprovement), nil
}

// Tune implements Tuner by running the cancellable harl session, forwarding
// every committed progress event to the job's stream.
func (h *HarlTuner) Tune(ctx context.Context, req Request, progress func(harl.ProgressEvent)) (Outcome, error) {
	w, tgt, isNet, err := resolveRequest(req)
	if err != nil {
		return Outcome{}, err
	}
	opts := harl.Options{
		Scheduler:        req.Scheduler,
		Trials:           req.Trials,
		Seed:             req.Seed,
		Workers:          req.Workers,
		Registry:         h.Registry,
		OnProgress:       progress,
		Plateau:          h.plateau(req),
		FleetPool:        h.Fleet,
		Transfer:         h.Transfer && h.Registry != nil,
		AdaptiveSampling: h.Adaptive,
	}
	if isNet {
		res, err := harl.TuneNetworkContext(ctx, req.Network, req.Batch, tgt, opts)
		if err != nil {
			return Outcome{}, err
		}
		exec := res.MeasuredSeconds
		if math.IsInf(exec, 0) || math.IsNaN(exec) {
			// A session cancelled before every subgraph measured has no
			// end-to-end estimate; +Inf is not JSON-encodable and would make
			// the whole job listing unserializable.
			exec = 0
		}
		return Outcome{
			Workload:       res.Network,
			Target:         tgt.Name(),
			Scheduler:      req.Scheduler,
			ExecSeconds:    exec,
			Trials:         res.Trials,
			Measured:       res.Measured,
			MeasureSaved:   res.MeasureSaved,
			WarmTransfers:  res.WarmTransfers,
			SearchSeconds:  res.SearchSeconds,
			CacheHit:       res.Trials == 0 && res.CacheHits == len(res.Breakdown),
			Cancelled:      res.Cancelled,
			PlateauStopped: res.PlateauStopped,
		}, nil
	}
	res, err := harl.TuneOperatorContext(ctx, w, tgt, opts)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Workload:       w.Name(),
		Target:         tgt.Name(),
		Scheduler:      req.Scheduler,
		ExecSeconds:    res.ExecSeconds,
		GFLOPS:         res.GFLOPS,
		Trials:         res.Trials,
		Measured:       res.Measured,
		MeasureSaved:   res.MeasureSaved,
		WarmTransfer:   res.WarmTransfer,
		SearchSeconds:  res.SearchSeconds,
		BestSchedule:   res.BestSchedule,
		CacheHit:       res.CacheHit,
		Cancelled:      res.Cancelled,
		PlateauStopped: res.PlateauStopped,
	}, nil
}

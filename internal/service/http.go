package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"harl"
	"harl/internal/wire"
)

// Server is the HTTP surface of the tuning service:
//
//	POST   /v1/tune      submit a tuning request (resolve-first: a registry
//	                     hit answers 200 immediately with zero trials; a miss
//	                     enqueues and answers 202 with the job — identical
//	                     concurrent requests coalesce into one job)
//	GET    /v1/schedule  look up the best known schedule without tuning
//	GET    /v1/jobs      list jobs; GET /v1/jobs/{id} one job's state
//	GET    /v1/jobs/{id}/events  live job progress as an SSE stream: the
//	                     buffered events replay first, then new ones tail as
//	                     the search commits them, ending with the finished job
//	DELETE /v1/jobs/{id} cancel a queued or running job (the session
//	                     checkpoints and keeps its partial best)
//	GET    /healthz      liveness
//	GET    /metrics      queue depth, hit rate, trial and fleet counters
//	                     (Prometheus text format)
//
// Responses are the named wire types of this package (see wire.go); every
// error response is the v1 envelope (ErrorBody) with a stable machine code.
type Server struct {
	queue    *Queue
	registry *harl.Registry
	fleet    *harl.Fleet
	mux      *http.ServeMux
}

// NewServer wires the queue and the (possibly nil) registry into a handler.
func NewServer(q *Queue, reg *harl.Registry) *Server {
	s := &Server{queue: q, registry: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/tune", s.handleTune)
	s.mux.HandleFunc("GET /v1/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// SetFleet attaches the measurement fleet whose dispatch counters /metrics
// exports. Call before serving; the server only reads stats from it (the
// tuner holds its own reference for dispatch).
func (s *Server) SetFleet(f *harl.Fleet) { s.fleet = f }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON and writeError delegate to the shared v1 writers: marshal-first
// (so an unencodable value degrades to a contract-conforming internal-error
// envelope, never a truncated or ad-hoc body), envelope-always for errors.
func writeJSON(w http.ResponseWriter, status int, v any) {
	wire.WriteJSON(w, status, v)
}

func writeError(w http.ResponseWriter, status int, code ErrorCode, err error) {
	wire.WriteError(w, status, code, "%s", err.Error())
}

// registryIOError marks a registry storage failure, as opposed to an invalid
// request: handlers answer 500 registry_io and bump the registry-error
// counter, because a miss fabricated from an unreadable registry would
// silently burn a full search (or report a schedule absent that is durably
// there).
type registryIOError struct{ err error }

func (e registryIOError) Error() string { return e.err.Error() }
func (e registryIOError) Unwrap() error { return e.err }

// lookup resolves a normalized operator request against the registry.
// Network requests have no single stored schedule and never fast-path. A
// stored record that no longer reconstructs (foreign or stale registry) is
// reported as a miss, not an error: the tune path falls through to a fresh
// search that repairs the key, and the lookup endpoint reports absence. An
// invalid request surfaces its error (a 400 to the client); a registry read
// failure comes back as a registryIOError (a 500 — it is not a miss).
func (s *Server) lookup(req Request) (harl.SavedSchedule, bool, error) {
	if s.registry == nil || req.Network != "" {
		return harl.SavedSchedule{}, false, nil
	}
	w, tgt, _, err := resolveRequest(req)
	if err != nil {
		return harl.SavedSchedule{}, false, err
	}
	hit, ok, err := s.registry.Lookup(w, tgt, req.Scheduler)
	if err != nil {
		if errors.Is(err, harl.ErrRecordBroken) {
			return harl.SavedSchedule{}, false, nil
		}
		return harl.SavedSchedule{}, false, registryIOError{err}
	}
	return hit, ok, nil
}

// writeLookupError maps a lookup failure onto the HTTP surface: storage
// errors are 500 registry_io and counted, anything else is the client's bad
// request.
func (s *Server) writeLookupError(w http.ResponseWriter, err error) {
	var ioe registryIOError
	if errors.As(err, &ioe) {
		s.queue.CountRegistryError()
		writeError(w, http.StatusInternalServerError, CodeRegistryIO, err)
		return
	}
	writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
}

func (s *Server) handleTune(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	req = req.normalize()
	hit, ok, err := s.lookup(req)
	if err != nil {
		s.writeLookupError(w, err)
		return
	}
	if ok {
		// The whole point of the service: a known workload is answered from
		// the registry without queueing anything.
		s.queue.CountRegistryHit()
		writeJSON(w, http.StatusOK, hitResponse(hit))
		return
	}
	// Submit returns the job snapshot taken under the queue lock: a job that
	// finishes and is retention-evicted right after submission still renders
	// fully populated here (a follow-up Get could already miss it).
	job, coalesced, err := s.queue.Submit(req)
	if err != nil {
		if errors.Is(err, ErrShuttingDown) {
			writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, err)
		return
	}
	if !coalesced {
		s.queue.CountRegistryMiss()
	}
	writeJSON(w, http.StatusAccepted, TuneAccepted{Job: job, Coalesced: coalesced})
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if s.registry == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("service: no registry configured"))
		return
	}
	q := r.URL.Query()
	batch := 1
	if b := q.Get("batch"); b != "" {
		v, err := strconv.Atoi(b)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("service: bad batch %q", b))
			return
		}
		if v < 1 {
			// An explicit non-positive batch is the client's error; clamping it
			// to 1 would answer a question the client never asked.
			writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("service: batch must be >= 1, got %d", v))
			return
		}
		batch = v
	}
	req := Request{
		Op:        q.Get("op"),
		Shape:     q.Get("shape"),
		Batch:     batch,
		Target:    q.Get("target"),
		Scheduler: q.Get("scheduler"),
	}.normalize()
	if req.Op == "" {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, fmt.Errorf("service: schedule lookup needs op and shape query parameters"))
		return
	}
	hit, ok, err := s.lookup(req)
	if err != nil {
		s.writeLookupError(w, err)
		return
	}
	if !ok {
		s.queue.CountRegistryMiss()
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("service: no schedule for this (workload, target, scheduler)"))
		return
	}
	s.queue.CountRegistryHit()
	writeJSON(w, http.StatusOK, hitResponse(hit))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobsList{Jobs: s.queue.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("service: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job)
}

// handleJobEvents streams a job's progress as Server-Sent Events: every
// buffered event replays first (late subscribers catch up), then live events
// tail as the search commits them, and a final "done" event carries the
// finished job. Each progress frame's id is the event's job-scoped sequence
// number, so a reconnecting client resumes from Last-Event-ID instead of
// re-reading the replay. The stream ends when the job reaches a terminal
// state or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	plog, ok := s.queue.Progress(id)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, fmt.Errorf("service: no job %q", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, CodeInternal, fmt.Errorf("service: response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	after := 0
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		if v, err := strconv.Atoi(lei); err == nil && v >= 0 {
			after = v + 1
		}
	}
	for {
		evs, wait, closed := plog.after(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: progress\ndata: %s\n\n", e.Seq, data)
			after = e.Seq + 1
		}
		fl.Flush()
		if closed && len(evs) == 0 {
			break
		}
		if closed {
			continue // drain whatever was published before the close
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
	// Terminal frame: the finished job. The snapshot can be gone if the job
	// was retention-evicted while we streamed; the stream still terminates
	// cleanly with an empty done event.
	done := []byte("{}")
	if job, ok := s.queue.Get(id); ok {
		if data, err := json.Marshal(job); err == nil {
			done = data
		}
	}
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", done)
	fl.Flush()
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.queue.Cancel(id) {
		writeError(w, http.StatusConflict, CodeNotCancellable, fmt.Errorf("service: job %q does not exist or already finished", id))
		return
	}
	job, _ := s.queue.Get(id)
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	keys := 0
	if s.registry != nil {
		keys = s.registry.Len()
	}
	writeJSON(w, http.StatusOK, HealthBody{
		Status:       "ok",
		RegistryKeys: keys,
		Metrics:      s.queue.Metrics(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.queue.Metrics()
	keys := 0
	if s.registry != nil {
		keys = s.registry.Len()
	}
	hitRate := 0.0
	if total := m.RegistryHits + m.RegistryMisses; total > 0 {
		hitRate = float64(m.RegistryHits) / float64(total)
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP harl_queue_depth Tuning jobs waiting for a worker.\n")
	fmt.Fprintf(w, "# TYPE harl_queue_depth gauge\nharl_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "# TYPE harl_jobs_running gauge\nharl_jobs_running %d\n", m.Running)
	fmt.Fprintf(w, "# TYPE harl_jobs_submitted_total counter\nharl_jobs_submitted_total %d\n", m.Submitted)
	fmt.Fprintf(w, "# TYPE harl_jobs_coalesced_total counter\nharl_jobs_coalesced_total %d\n", m.Coalesced)
	fmt.Fprintf(w, "# TYPE harl_jobs_done_total counter\nharl_jobs_done_total %d\n", m.Done)
	fmt.Fprintf(w, "# TYPE harl_jobs_failed_total counter\nharl_jobs_failed_total %d\n", m.Failed)
	fmt.Fprintf(w, "# TYPE harl_jobs_cancelled_total counter\nharl_jobs_cancelled_total %d\n", m.Cancelled)
	fmt.Fprintf(w, "# TYPE harl_jobs_plateau_stopped_total counter\nharl_jobs_plateau_stopped_total %d\n", m.PlateauStopped)
	fmt.Fprintf(w, "# TYPE harl_registry_hits_total counter\nharl_registry_hits_total %d\n", m.RegistryHits)
	fmt.Fprintf(w, "# TYPE harl_registry_misses_total counter\nharl_registry_misses_total %d\n", m.RegistryMisses)
	fmt.Fprintf(w, "# TYPE harl_registry_errors_total counter\nharl_registry_errors_total %d\n", m.RegistryErrors)
	fmt.Fprintf(w, "# TYPE harl_registry_hit_rate gauge\nharl_registry_hit_rate %.4f\n", hitRate)
	fmt.Fprintf(w, "# TYPE harl_registry_keys gauge\nharl_registry_keys %d\n", keys)
	if s.registry != nil {
		rs := s.registry.Stats()
		fmt.Fprintf(w, "# TYPE harl_registry_records gauge\nharl_registry_records %d\n", rs.Records)
		fmt.Fprintf(w, "# TYPE harl_registry_appends_total counter\nharl_registry_appends_total %d\n", rs.Appends)
		fmt.Fprintf(w, "# TYPE harl_registry_lock_acquisitions_total counter\nharl_registry_lock_acquisitions_total %d\n", rs.LockAcquisitions)
		fmt.Fprintf(w, "# TYPE harl_registry_batches_flushed_total counter\nharl_registry_batches_flushed_total %d\n", rs.BatchesFlushed)
		fmt.Fprintf(w, "# TYPE harl_registry_batched_records_total counter\nharl_registry_batched_records_total %d\n", rs.BatchedRecords)
		fmt.Fprintf(w, "# TYPE harl_registry_compactions_total counter\nharl_registry_compactions_total %d\n", rs.Compactions)
		fmt.Fprintf(w, "# TYPE harl_registry_resident_shards gauge\nharl_registry_resident_shards %d\n", rs.ResidentShards)
	}
	if s.fleet != nil {
		fs := s.fleet.Stats()
		fmt.Fprintf(w, "# TYPE harl_fleet_workers gauge\nharl_fleet_workers %d\n", fs.Workers)
		fmt.Fprintf(w, "# TYPE harl_fleet_workers_healthy gauge\nharl_fleet_workers_healthy %d\n", fs.Healthy)
		fmt.Fprintf(w, "# TYPE harl_fleet_batches_dispatched_total counter\nharl_fleet_batches_dispatched_total %d\n", fs.BatchesDispatched)
		fmt.Fprintf(w, "# TYPE harl_fleet_trials_dispatched_total counter\nharl_fleet_trials_dispatched_total %d\n", fs.TrialsDispatched)
		fmt.Fprintf(w, "# TYPE harl_fleet_retries_total counter\nharl_fleet_retries_total %d\n", fs.Retries)
		fmt.Fprintf(w, "# TYPE harl_fleet_ejections_total counter\nharl_fleet_ejections_total %d\n", fs.Ejections)
		fmt.Fprintf(w, "# TYPE harl_fleet_readmissions_total counter\nharl_fleet_readmissions_total %d\n", fs.Readmissions)
		fmt.Fprintf(w, "# TYPE harl_fleet_fallbacks_total counter\nharl_fleet_fallbacks_total %d\n", fs.Fallbacks)
	}
	fmt.Fprintf(w, "# TYPE harl_trials_measured_total counter\nharl_trials_measured_total %d\n", m.TrialsMeasured)
	fmt.Fprintf(w, "# TYPE harl_measure_saved_total counter\nharl_measure_saved_total %d\n", m.MeasureSaved)
	fmt.Fprintf(w, "# TYPE harl_transfer_warmstarts_total counter\nharl_transfer_warmstarts_total %d\n", m.TransferWarmstarts)
}

// Package service turns the HARL tuner into a long-running service: a job
// queue whose background workers drain tuning requests through cancellable
// sessions, with request coalescing — concurrent identical requests
// (singleflight on the workload fingerprint + target + scheduler key) share
// one search instead of racing N copies of it — and a registry in front so
// already-answered requests never reach the queue at all. The HTTP surface
// over this queue lives in http.go; the harl-serve daemon is a thin main
// around the two.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"harl"
)

// ErrShuttingDown is returned by Submit once the queue has begun draining;
// the HTTP layer maps it to 503 shutting_down (a retryable condition, unlike
// a 400).
var ErrShuttingDown = errors.New("service: queue is shut down")

// JobState is the lifecycle of one tuning job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Request describes one tuning request — the service-level mirror of the
// harl-tune CLI surface. Either Op+Shape or Network must be set.
type Request struct {
	// Op and Shape select an operator workload ("gemm", "1024,1024,1024");
	// Network selects an end-to-end network ("bert", "resnet50",
	// "mobilenetv2") instead.
	Op      string `json:"op,omitempty"`
	Shape   string `json:"shape,omitempty"`
	Network string `json:"network,omitempty"`
	Batch   int    `json:"batch,omitempty"`
	// Target and Scheduler default to "cpu" and "harl".
	Target    string `json:"target,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	// Trials is the measurement budget (0 selects the library default).
	Trials int `json:"trials,omitempty"`
	// Seed defaults to 1; Workers sizes the session's worker pool.
	Seed    uint64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// PlateauWindow and PlateauMinImprovement configure the session's
	// adaptive early stop (harl.Plateau): a positive window watches the
	// convergence trajectory and ends the search once it flatlines. Zero
	// selects the service's default policy; a negative window disables the
	// default for this request.
	PlateauWindow         int     `json:"plateau_window,omitempty"`
	PlateauMinImprovement float64 `json:"plateau_min_improvement,omitempty"`
}

// normalize fills the defaulted fields so that requests equal in effect are
// equal as values — the precondition for the coalescing key. Trials mirrors
// harl.Options.withDefaults (0 selects 320), so "trials omitted" and
// "trials":320 coalesce into one search. Workers stays as given: 0 and N are
// genuinely different searches for networks (legacy serial tuner vs the
// concurrent scheduler).
func (r Request) normalize() Request {
	// Only an omitted batch defaults; a negative batch is preserved so
	// validation can reject it (clamping would silently answer for batch 1).
	if r.Batch == 0 {
		r.Batch = 1
	}
	if r.Target == "" {
		r.Target = "cpu"
	}
	if r.Scheduler == "" {
		r.Scheduler = "harl"
	}
	if r.Trials == 0 {
		r.Trials = 320
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Outcome summarizes a finished tuning job — the service-level mirror of
// harl.Result / harl.NetworkResult.
type Outcome struct {
	Workload    string  `json:"workload"`
	Target      string  `json:"target"`
	Scheduler   string  `json:"scheduler"`
	ExecSeconds float64 `json:"exec_seconds"`
	GFLOPS      float64 `json:"gflops,omitempty"`
	// Trials is the charged-trial count (the budget the search spent);
	// Measured the schedules actually measured on hardware and MeasureSaved
	// the adaptive-sampling backfills (trials = measured + measure_saved).
	Trials       int `json:"trials"`
	Measured     int `json:"measured"`
	MeasureSaved int `json:"measure_saved,omitempty"`
	// WarmTransfer names the donor registry key that warm-started an
	// operator job via cross-key transfer; WarmTransfers counts the
	// transfer-seeded subgraph tasks of a network job.
	WarmTransfer  string  `json:"warm_transfer,omitempty"`
	WarmTransfers int     `json:"warm_transfers,omitempty"`
	SearchSeconds float64 `json:"search_seconds"`
	BestSchedule  string  `json:"best_schedule,omitempty"`
	// CacheHit reports the result came from the registry without measuring;
	// Cancelled that the session was cut short (partial best);
	// PlateauStopped that the plateau policy ended the search early — the
	// job still counts as done, with its (published) best.
	CacheHit       bool `json:"cache_hit,omitempty"`
	Cancelled      bool `json:"cancelled,omitempty"`
	PlateauStopped bool `json:"plateau_stopped,omitempty"`
}

// Tuner executes one tuning request as a cancellable session. The production
// implementation (HarlTuner) drives the harl public API with a shared
// registry; tests substitute controllable fakes.
type Tuner interface {
	// Key returns the coalescing identity of the request: requests with equal
	// keys are answered by one search. It also validates the request — an
	// unresolvable workload, target or scheduler is rejected here, before
	// anything is enqueued.
	Key(req Request) (string, error)
	// Tune runs the session to completion or cancellation. progress (never
	// nil) receives one event per committed round/wave, in commit order.
	Tune(ctx context.Context, req Request, progress func(harl.ProgressEvent)) (Outcome, error)
}

// Job is one queued/running/finished tuning request. Fields are snapshots
// guarded by the queue's lock; use Queue.Snapshot for a consistent copy.
type Job struct {
	ID      string   `json:"id"`
	Key     string   `json:"key"`
	State   JobState `json:"state"`
	Request Request  `json:"request"`
	Outcome *Outcome `json:"outcome,omitempty"`
	Error   string   `json:"error,omitempty"`
	// Coalesced counts how many identical requests this job answered beyond
	// the first — the singleflight savings.
	Coalesced int `json:"coalesced"`

	// done closes when the job leaves the queue. It is queue-internal:
	// callers only ever hold value snapshots (Submit, Get), whose channel is
	// nilled — observe completion by polling Get or by tailing the progress
	// stream, whose done frame is the terminal transition.
	done     chan struct{}
	cancel   context.CancelFunc
	progress *progressLog
}

// Metrics are the queue's monotonic counters plus current depths, rendered
// by the /metrics endpoint.
type Metrics struct {
	Submitted int `json:"submitted"`
	Coalesced int `json:"coalesced"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// PlateauStopped counts jobs whose search the plateau policy ended early
	// (a subset of Done).
	PlateauStopped int `json:"plateau_stopped"`
	// RegistryHits / RegistryMisses count resolve-first outcomes across the
	// HTTP surface and finished jobs; RegistryErrors counts lookups the
	// registry storage failed to serve (neither hit nor miss).
	RegistryHits   int `json:"registry_hits"`
	RegistryMisses int `json:"registry_misses"`
	RegistryErrors int `json:"registry_errors"`
	// TrialsMeasured sums the schedules finished jobs actually measured — the
	// compute the service actually spent. MeasureSaved sums the charged
	// trials adaptive sampling skipped, and TransferWarmstarts the sessions
	// (operator jobs) or subgraph tasks (network jobs) a cross-key transfer
	// donor warm-started.
	TrialsMeasured     int `json:"trials_measured"`
	MeasureSaved       int `json:"measure_saved"`
	TransferWarmstarts int `json:"transfer_warmstarts"`
	QueueDepth         int `json:"queue_depth"`
	Running            int `json:"running"`
}

// maxRetainedJobs bounds how many finished (done/failed/cancelled) jobs the
// queue keeps for /v1/jobs queries; beyond it the oldest finished jobs are
// evicted, so a long-lived daemon's memory and job-listing size stay flat.
// Queued and running jobs are never evicted.
const maxRetainedJobs = 1024

// Queue is the coalescing tuning-job queue. Submissions with an identical
// key attach to the in-flight job for that key; background workers drain the
// rest in FIFO order through the Tuner.
type Queue struct {
	tuner Tuner

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job // by ID, all states
	inflight map[string]*Job // by Key, queued or running only
	pending  []*Job
	order    []string // job IDs in submission order, for listing
	nextID   int
	closed   bool
	running  int
	terminal int // jobs in a finished state, for retention pruning
	retain   int // finished-job retention bound (maxRetainedJobs; tests lower it)
	m        Metrics

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
}

// finishLocked marks a job's terminal transition: its done channel closes,
// its progress stream completes (tailing SSE subscribers drain and finish)
// and the retention bound is enforced. Caller holds the lock and has already
// set the final state.
func (q *Queue) finishLocked(j *Job) {
	close(j.done)
	j.progress.close()
	q.terminal++
	if q.terminal <= q.retain {
		return
	}
	kept := q.order[:0]
	excess := q.terminal - q.retain
	for _, id := range q.order {
		job := q.jobs[id]
		if excess > 0 && (job.State == StateDone || job.State == StateFailed || job.State == StateCancelled) {
			delete(q.jobs, id)
			q.terminal--
			excess--
			continue
		}
		kept = append(kept, id)
	}
	q.order = kept
}

// NewQueue starts a queue with the given worker count (minimum 1).
func NewQueue(tuner Tuner, workers int) *Queue {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		tuner:      tuner,
		jobs:       make(map[string]*Job),
		inflight:   make(map[string]*Job),
		retain:     maxRetainedJobs,
		rootCtx:    ctx,
		rootCancel: cancel,
	}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues a tuning request, or — when an identical request is
// already queued or running — attaches to that job. It returns a snapshot of
// the job taken under the same lock hold that created (or found) it — so the
// caller always sees a populated job, even if it finishes and is
// retention-evicted before the caller looks again — and whether the request
// coalesced into an existing one.
func (q *Queue) Submit(req Request) (Job, bool, error) {
	req = req.normalize()
	key, err := q.tuner.Key(req)
	if err != nil {
		return Job{}, false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return Job{}, false, ErrShuttingDown
	}
	if j, ok := q.inflight[key]; ok {
		j.Coalesced++
		q.m.Coalesced++
		return snapshot(j), true, nil
	}
	q.nextID++
	j := &Job{
		ID:       fmt.Sprintf("j%d", q.nextID),
		Key:      key,
		State:    StateQueued,
		Request:  req,
		done:     make(chan struct{}),
		progress: newProgressLog(progressRingCap),
	}
	q.jobs[j.ID] = j
	q.order = append(q.order, j.ID)
	q.inflight[key] = j
	q.pending = append(q.pending, j)
	q.m.Submitted++
	q.cond.Signal()
	return snapshot(j), false, nil
}

// worker drains the pending list until shutdown.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pending) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed && len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		j := q.pending[0]
		q.pending = q.pending[1:]
		ctx, cancel := context.WithCancel(q.rootCtx)
		j.State = StateRunning
		j.cancel = cancel
		q.running++
		q.mu.Unlock()

		out, err := q.runSession(ctx, j)
		cancel()

		q.mu.Lock()
		q.running--
		// Guarded removal: a cancelled job already left the map, and a fresh
		// job may have taken the key since — never evict a successor.
		if q.inflight[j.Key] == j {
			delete(q.inflight, j.Key)
		}
		switch {
		case err != nil:
			j.State = StateFailed
			j.Error = err.Error()
			q.m.Failed++
		case out.Cancelled:
			j.State = StateCancelled
			j.Outcome = &out
			q.m.Cancelled++
			q.foldSavingsLocked(out)
		default:
			j.State = StateDone
			j.Outcome = &out
			q.m.Done++
			q.foldSavingsLocked(out)
			if out.PlateauStopped {
				q.m.PlateauStopped++
			}
			if out.CacheHit {
				// Rare but real: the registry filled in (another session
				// published) between submission and execution. The miss was
				// already counted at submit time, so only the hit folds in.
				q.m.RegistryHits++
			}
		}
		q.finishLocked(j)
		q.mu.Unlock()
	}
}

// foldSavingsLocked accumulates a finished (done or cancelled) outcome's
// measurement accounting into the queue metrics: real measurements, sampled
// savings and transfer warm starts. Caller holds q.mu.
func (q *Queue) foldSavingsLocked(out Outcome) {
	q.m.TrialsMeasured += out.Measured
	q.m.MeasureSaved += out.MeasureSaved
	q.m.TransferWarmstarts += out.WarmTransfers
	if out.WarmTransfer != "" {
		q.m.TransferWarmstarts++
	}
}

// runSession executes one tuning session, converting a panic into a job
// failure: one bad request must cost its own job, not a worker goroutine
// (an unrecovered panic would wedge the job in "running" forever, block its
// coalesced waiters, and pin its key in the inflight map). Progress events
// the session commits land in the job's ring buffer, where SSE subscribers
// replay and tail them.
func (q *Queue) runSession(ctx context.Context, j *Job) (out Outcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("service: tuning session panicked: %v", p)
		}
	}()
	return q.tuner.Tune(ctx, j.Request, j.progress.publish)
}

// Cancel cancels a job: a queued job is removed immediately, a running job's
// session context is cancelled (the session checkpoints and returns its
// partial best). It reports whether the job existed and was still
// cancellable.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State == StateDone || j.State == StateFailed || j.State == StateCancelled {
		q.mu.Unlock()
		return false
	}
	if j.State == StateQueued {
		for i, p := range q.pending {
			if p == j {
				q.pending = append(q.pending[:i], q.pending[i+1:]...)
				break
			}
		}
		delete(q.inflight, j.Key)
		j.State = StateCancelled
		q.m.Cancelled++
		q.finishLocked(j)
		q.mu.Unlock()
		return true
	}
	// Running: cancellation is asynchronous — the worker finalizes the job
	// when the session returns its checkpointed partial result. The key
	// leaves the inflight map NOW, so new identical requests start a fresh
	// search instead of coalescing into a job that will only ever deliver a
	// cancelled partial.
	delete(q.inflight, j.Key)
	cancel := j.cancel
	q.mu.Unlock()
	cancel()
	return true
}

// Get returns a consistent snapshot of the job, if it exists.
func (q *Queue) Get(id string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return snapshot(j), true
}

// Jobs returns snapshots of every job in submission order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, snapshot(q.jobs[id]))
	}
	return out
}

// snapshot copies the job's shared fields under the queue lock.
func snapshot(j *Job) Job {
	c := *j
	if j.Outcome != nil {
		o := *j.Outcome
		c.Outcome = &o
	}
	c.done = nil
	c.cancel = nil
	c.progress = nil
	return c
}

// Progress returns the job's progress log — the replay-then-tail source the
// SSE endpoint streams from — if the job is still retained. The log outlives
// the job's terminal transition (subscribers holding it keep draining after
// retention eviction), but a new subscriber needs the job to still exist.
func (q *Queue) Progress(id string) (*progressLog, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.progress, true
}

// CountRegistryHit and CountRegistryMiss fold resolve-first outcomes that
// never became jobs (the HTTP fast path) into the queue's hit-rate counters.
func (q *Queue) CountRegistryHit() {
	q.mu.Lock()
	q.m.RegistryHits++
	q.mu.Unlock()
}

// CountRegistryMiss counts a resolve miss on the HTTP surface.
func (q *Queue) CountRegistryMiss() {
	q.mu.Lock()
	q.m.RegistryMisses++
	q.mu.Unlock()
}

// CountRegistryError counts a lookup the registry storage failed to serve.
func (q *Queue) CountRegistryError() {
	q.mu.Lock()
	q.m.RegistryErrors++
	q.mu.Unlock()
}

// Metrics returns a snapshot of the counters plus current depths.
func (q *Queue) Metrics() Metrics {
	q.mu.Lock()
	defer q.mu.Unlock()
	m := q.m
	m.QueueDepth = len(q.pending)
	m.Running = q.running
	return m
}

// Shutdown drains the queue: intake closes, still-queued jobs are cancelled,
// running sessions receive a context cancellation (they checkpoint — journal
// flushed, model saved — and return their partial bests) and the workers are
// awaited. It is idempotent.
func (q *Queue) Shutdown() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	for _, j := range q.pending {
		delete(q.inflight, j.Key)
		j.State = StateCancelled
		q.m.Cancelled++
		q.finishLocked(j)
	}
	q.pending = nil
	q.cond.Broadcast()
	q.mu.Unlock()
	q.rootCancel()
	q.wg.Wait()
}

package service

import (
	"harl"
	"harl/internal/wire"
)

// The service speaks the unified v1 contract defined in internal/wire; the
// aliases below re-export it so client code and tests can consume the whole
// API surface — request, response and error shapes — from this one package.
//
// Every non-2xx response from a /v1 endpoint is an ErrorBody:
//
//	{"error":{"code":"<machine_code>","message":"<human detail>"}}
//
// Codes are stable and machine-matchable; messages are human diagnostics
// with no stability promise.
type (
	// ErrorBody is the one error-response shape of the v1 API.
	ErrorBody = wire.ErrorBody
	// ErrorInfo is the envelope's payload: stable code + human message.
	ErrorInfo = wire.ErrorInfo
	// ErrorCode is a stable machine-readable error identifier.
	ErrorCode = wire.ErrorCode
)

// The stable v1 error codes (see internal/wire for the full semantics).
const (
	CodeInvalidRequest = wire.CodeInvalidRequest
	CodeNotFound       = wire.CodeNotFound
	CodeNotCancellable = wire.CodeNotCancellable
	CodeRegistryIO     = wire.CodeRegistryIO
	CodeShuttingDown   = wire.CodeShuttingDown
	CodeInternal       = wire.CodeInternal
)

// TuneAccepted is the 202 body of POST /v1/tune when the request misses the
// registry and a tuning job is enqueued (or an identical in-flight job is
// joined).
type TuneAccepted struct {
	// Job is the queued job's snapshot at submission time; poll
	// GET /v1/jobs/{id} or stream GET /v1/jobs/{id}/events to follow it.
	Job Job `json:"job"`
	// Coalesced reports that an identical request was already in flight and
	// this one joined it instead of starting a second search.
	Coalesced bool `json:"coalesced"`
}

// JobsList is the 200 body of GET /v1/jobs.
type JobsList struct {
	Jobs []Job `json:"jobs"`
}

// HealthBody is the 200 body of GET /healthz.
type HealthBody struct {
	Status       string  `json:"status"`
	RegistryKeys int     `json:"registry_keys"`
	Metrics      Metrics `json:"metrics"`
}

// ScheduleResponse is the 200 body of a registry hit — both a
// GET /v1/schedule lookup and the fast path of POST /v1/tune.
type ScheduleResponse struct {
	CacheHit     bool    `json:"cache_hit"`
	Workload     string  `json:"workload"`
	Target       string  `json:"target"`
	Scheduler    string  `json:"scheduler"`
	ExecSeconds  float64 `json:"exec_seconds"`
	GFLOPS       float64 `json:"gflops"`
	Trials       int     `json:"trials"`
	BestSchedule string  `json:"best_schedule"`
	Steps        string  `json:"steps"`
}

func hitResponse(hit harl.SavedSchedule) ScheduleResponse {
	return ScheduleResponse{
		CacheHit:    true,
		Workload:    hit.Record.Workload,
		Target:      hit.Record.Target,
		Scheduler:   hit.Record.Scheduler,
		ExecSeconds: hit.ExecSeconds,
		GFLOPS:      hit.GFLOPS,
		// Trials is the stored record's task-local trial index — the search
		// depth at which the cached schedule was measured (for records
		// published by finished sessions, the session's total trial count) —
		// not what this request spent: a hit costs zero new measurements by
		// definition.
		Trials:       hit.Record.Trial,
		BestSchedule: hit.Schedule,
		Steps:        hit.Record.Steps,
	}
}

package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"harl"
)

// TestScheduleRejectsNonPositiveBatch is the S4 regression: batch=-3 used to
// be silently clamped to 1, answering a request the client never made (and
// caching a job under the wrong key). Explicit non-positive batches are the
// client's error.
func TestScheduleRejectsNonPositiveBatch(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	for _, batch := range []string{"-3", "0"} {
		resp, out := getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=256,256,256&batch="+batch)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("batch=%s: status %d, want 400; body %v", batch, resp.StatusCode, out)
		}
		env, _ := out["error"].(map[string]any)
		if code, _ := env["code"].(string); code != "invalid_request" {
			t.Fatalf("batch=%s: error code %q, want invalid_request", batch, code)
		}
		if msg, _ := env["message"].(string); !strings.Contains(msg, "batch") {
			t.Fatalf("batch=%s: error %q does not name the batch field", batch, msg)
		}
	}
	// The same request with a valid batch still hits.
	resp, _ := getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=256,256,256&batch=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch=1 control: status %d, want 200", resp.StatusCode)
	}
	if ft.Runs() != 0 {
		t.Fatalf("tuner ran %d searches during lookups", ft.Runs())
	}
	if m := q.Metrics(); m.Submitted != 0 {
		t.Fatalf("rejected lookups enqueued jobs: %+v", m)
	}
}

func TestTuneRejectsNonPositiveBatch(t *testing.T) {
	srv, q, _, _ := serveTestEnv(t)
	resp, out := postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"96,96,96","batch":-2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %v", resp.StatusCode, out)
	}
	if m := q.Metrics(); m.Submitted != 0 {
		t.Fatalf("invalid batch was enqueued: %+v", m)
	}
}

// TestLookupRegistryIOErrorIsServerError is the S3 regression: a registry the
// storage layer cannot read used to be reported as a plain miss — /v1/schedule
// answered 404 for schedules that were durably there, and /v1/tune burned a
// full search per request. It must surface as a 500 with the error counter
// bumped, distinct from the reconstruct-miss case.
func TestLookupRegistryIOErrorIsServerError(t *testing.T) {
	dir := t.TempDir()
	reg, err := harl.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ft := newFakeTuner()
	q := NewQueue(ft, 1)
	srv := httptest.NewServer(NewServer(q, reg))
	t.Cleanup(func() {
		srv.Close()
		q.Shutdown()
		reg.Close()
	})
	// Corrupt the store out from under the open handle: a directory where the
	// journal file belongs errors every read (works even running as root,
	// unlike permission bits).
	if err := os.Mkdir(filepath.Join(dir, "journal.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	resp, out := getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=64,64,64")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("schedule over broken registry: status %d, want 500; body %v", resp.StatusCode, out)
	}
	resp, out = postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"64,64,64"}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("tune over broken registry: status %d, want 500; body %v", resp.StatusCode, out)
	}
	m := q.Metrics()
	if m.RegistryErrors != 2 {
		t.Fatalf("RegistryErrors = %d, want both failed lookups counted", m.RegistryErrors)
	}
	if m.RegistryMisses != 0 || m.Submitted != 0 {
		t.Fatalf("broken registry misreported as miss or enqueued a job: %+v", m)
	}
	body := getMetricsText(t, srv.URL)
	if !strings.Contains(body, "harl_registry_errors_total 2") {
		t.Fatalf("/metrics lacks harl_registry_errors_total 2:\n%s", body)
	}
}

// TestMetricsExposeRegistryStorageStats: the storage counters (layout,
// batches, locks, compactions) must be rendered for a registry-backed server.
func TestMetricsExposeRegistryStorageStats(t *testing.T) {
	srv, _, _, _ := serveTestEnv(t)
	body := getMetricsText(t, srv.URL)
	for _, metric := range []string{
		"harl_registry_errors_total 0",
		"harl_registry_records",
		"harl_registry_appends_total",
		"harl_registry_lock_acquisitions_total",
		"harl_registry_batches_flushed_total",
		"harl_registry_compactions_total",
	} {
		if !strings.Contains(body, metric) {
			t.Fatalf("/metrics lacks %s:\n%s", metric, body)
		}
	}
}

func getMetricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

package service

import (
	"sync"

	"harl"
)

// ProgressEvent is one live progress point of a running job: the library's
// event plus the job-scoped sequence number the SSE stream uses as its event
// id (and clients use to resume via Last-Event-ID).
type ProgressEvent struct {
	Seq int `json:"seq"`
	harl.ProgressEvent
}

// progressRingCap bounds how many events a job retains for replay. A
// subscriber that arrives (or lags) more than a full ring behind resumes
// from the oldest retained event — convergence rendering degrades gracefully
// instead of the daemon's memory growing with the trial budget.
const progressRingCap = 1024

// progressLog is one job's progress history: a bounded ring of committed
// events plus a broadcast point for tailing subscribers. The publisher is
// the single queue worker running the job's session, so sequence numbers are
// gap-free in commit order; any number of SSE handlers read concurrently via
// after, each replaying the retained prefix and then tailing live events.
type progressLog struct {
	mu      sync.Mutex
	events  []ProgressEvent // retained suffix; events[0].Seq == start
	start   int             // seq of events[0]
	next    int             // next seq to assign
	cap     int
	closed  bool
	updated chan struct{} // closed and replaced on every publish/close
}

func newProgressLog(capacity int) *progressLog {
	if capacity < 1 {
		capacity = 1
	}
	return &progressLog{cap: capacity, updated: make(chan struct{})}
}

// publish appends one event, assigning its sequence number. Events published
// after close are dropped (the job already reported terminal state).
func (l *progressLog) publish(e harl.ProgressEvent) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	ev := ProgressEvent{Seq: l.next, ProgressEvent: e}
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > l.cap {
		drop := len(l.events) - l.cap
		l.events = append(l.events[:0], l.events[drop:]...)
		l.start += drop
	}
	ch := l.updated
	l.updated = make(chan struct{})
	l.mu.Unlock()
	close(ch)
}

// close marks the stream complete (the job reached a terminal state) and
// wakes every tailing subscriber. Idempotent.
func (l *progressLog) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	ch := l.updated
	l.mu.Unlock()
	close(ch)
}

// after returns a copy of the retained events with Seq >= seq, a channel that
// is closed on the next publish or close (for tailing), and whether the
// stream is complete. A seq older than the retained window resumes from the
// oldest retained event.
func (l *progressLog) after(seq int) (evs []ProgressEvent, wait <-chan struct{}, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.start {
		seq = l.start
	}
	if i := seq - l.start; i < len(l.events) {
		evs = append(evs, l.events[i:]...)
	}
	return evs, l.updated, l.closed
}

package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"harl"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readFrames consumes SSE frames from the stream until a frame named stop
// (inclusive) or EOF.
func readFrames(t *testing.T, r *bufio.Reader, stop string) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return frames
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == stop {
					return frames
				}
				cur = sseFrame{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

func progressFrames(frames []sseFrame) []sseFrame {
	var out []sseFrame
	for _, f := range frames {
		if f.event == "progress" {
			out = append(out, f)
		}
	}
	return out
}

// TestJobEventsReplayThenTail is the buffering seam test: a subscriber that
// connects after events were committed replays them first, then tails live
// ones, and the stream terminates with the finished job.
func TestJobEventsReplayThenTail(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	ft.preEvents = []harl.ProgressEvent{
		{Workload: "w", Wave: 0, TotalTrials: 16, RunBestSeconds: 2e-6},
		{Workload: "w", Wave: 1, TotalTrials: 32, RunBestSeconds: 1e-6},
	}
	ft.postEvents = []harl.ProgressEvent{
		{Workload: "w", Wave: 2, TotalTrials: 48, RunBestSeconds: 5e-7},
	}
	_, out := postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"72,72,72","target":"cpu"}`)
	id := out["job"].(map[string]any)["id"].(string)
	<-ft.started // the two pre-events are committed and buffered

	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	r := bufio.NewReader(resp.Body)
	replay := readFrames(t, r, "progress") // first frame: replayed event 0
	if len(replay) != 1 || replay[0].id != "0" {
		t.Fatalf("first replayed frame = %+v", replay)
	}
	second := readFrames(t, r, "progress")
	if len(second) != 1 || second[0].id != "1" {
		t.Fatalf("second replayed frame = %+v", second)
	}
	// Release the tuner: the tail event and the done frame arrive live.
	close(ft.release)
	rest := readFrames(t, r, "done")
	pf := progressFrames(rest)
	if len(pf) != 1 || pf[0].id != "2" {
		t.Fatalf("tail frames = %+v", rest)
	}
	doneFrame := rest[len(rest)-1]
	if doneFrame.event != "done" {
		t.Fatalf("stream did not end with done: %+v", rest)
	}
	var job map[string]any
	if err := json.Unmarshal([]byte(doneFrame.data), &job); err != nil {
		t.Fatal(err)
	}
	if job["state"] != string(StateDone) {
		t.Fatalf("done frame job = %v", job)
	}
	var ev ProgressEvent
	if err := json.Unmarshal([]byte(pf[0].data), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Seq != 2 || ev.Wave != 2 || ev.TotalTrials != 48 {
		t.Fatalf("tail event payload = %+v", ev)
	}

	// A late subscriber after completion gets the full replay and the done
	// frame immediately; Last-Event-ID resumes past the replay.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/jobs/"+id+"/events", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	frames := readFrames(t, bufio.NewReader(resp2.Body), "done")
	pf2 := progressFrames(frames)
	if len(pf2) != 1 || pf2[0].id != "2" {
		t.Fatalf("Last-Event-ID resume frames = %+v", frames)
	}
	waitState(t, q, id, StateDone)

	// Unknown jobs answer 404, not an empty stream.
	resp3, err := http.Get(srv.URL + "/v1/jobs/j999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", resp3.StatusCode)
	}
}

// TestJobEventsCancelledJobEndsStream: cancelling a running job terminates
// its event stream with a done frame carrying the cancelled state.
func TestJobEventsCancelledJobEndsStream(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	_, out := postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"88,88,88","target":"cpu"}`)
	id := out["job"].(map[string]any)["id"].(string)
	<-ft.started
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	frames := readFrames(t, bufio.NewReader(resp.Body), "done")
	if len(frames) == 0 || frames[len(frames)-1].event != "done" {
		t.Fatalf("cancelled job stream = %+v", frames)
	}
	var job map[string]any
	if err := json.Unmarshal([]byte(frames[len(frames)-1].data), &job); err != nil {
		t.Fatal(err)
	}
	if job["state"] != string(StateCancelled) {
		t.Fatalf("done frame after cancel = %v", job)
	}
	waitState(t, q, id, StateCancelled)
}

// TestSSEByteIdenticalAcrossWorkers is the acceptance criterion on the wire:
// the same tuning request run with workers=1 and workers=2 (on two identical
// service stacks) streams byte-identical progress frames.
func TestSSEByteIdenticalAcrossWorkers(t *testing.T) {
	stream := func(workers int) []sseFrame {
		q := NewQueue(&HarlTuner{}, 1)
		defer q.Shutdown()
		srv := httptest.NewServer(NewServer(q, nil))
		defer srv.Close()
		body := `{"op":"gemm","shape":"64,64,64","target":"cpu","trials":48,"workers":` +
			map[int]string{1: "1", 2: "2"}[workers] + `}`
		_, out := postJSON(t, srv.URL+"/v1/tune", body)
		id := out["job"].(map[string]any)["id"].(string)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return progressFrames(readFrames(t, bufio.NewReader(resp.Body), "done"))
	}
	one, two := stream(1), stream(2)
	if len(one) == 0 {
		t.Fatal("no progress frames streamed")
	}
	if len(one) != len(two) {
		t.Fatalf("frame counts differ: %d vs %d", len(one), len(two))
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("frame %d differs across worker counts:\nw1: %+v\nw2: %+v", i, one[i], two[i])
		}
	}
}

// TestPlateauStoppedJobMetrics: a plateau-stopped outcome counts as done,
// increments the plateau counter and renders on /metrics.
func TestPlateauStoppedJobMetrics(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	ft.outcome = &Outcome{Trials: 40, PlateauStopped: true}
	close(ft.release)
	_, out := postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"104,104,104","target":"cpu"}`)
	id := out["job"].(map[string]any)["id"].(string)
	j := waitState(t, q, id, StateDone)
	if j.Outcome == nil || !j.Outcome.PlateauStopped {
		t.Fatalf("outcome = %+v", j.Outcome)
	}
	m := q.Metrics()
	if m.PlateauStopped != 1 || m.Done != 1 || m.Cancelled != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := bufio.NewReader(resp.Body).WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "harl_jobs_plateau_stopped_total 1") {
		t.Fatalf("metrics output lacks plateau counter:\n%s", buf.String())
	}
}

// TestSubmitSnapshotSurvivesEviction is the regression for the 202-body
// race: Submit returns the job snapshot taken under the creating lock hold,
// so a job that finishes and is retention-evicted immediately still renders
// populated to the submitter (a follow-up Get can already miss).
func TestSubmitSnapshotSurvivesEviction(t *testing.T) {
	ft := newFakeTuner()
	close(ft.release) // every session finishes instantly
	q := NewQueue(ft, 1)
	defer q.Shutdown()
	q.mu.Lock()
	q.retain = 0 // evict every finished job immediately
	q.mu.Unlock()

	snap, coalesced, err := q.Submit(Request{Op: "gemm", Shape: "64,64,64", Target: "cpu"})
	if err != nil || coalesced {
		t.Fatalf("submit: coalesced=%v err=%v", coalesced, err)
	}
	if snap.ID == "" || snap.State != StateQueued || snap.Request.Op != "gemm" {
		t.Fatalf("submit snapshot not populated: %+v", snap)
	}
	// The job finishes and is evicted; the snapshot remains valid while Get
	// reports the job gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := q.Get(snap.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job was never evicted at retain=0")
		}
		time.Sleep(time.Millisecond)
	}
	if snap.ID == "" {
		t.Fatal("snapshot lost after eviction")
	}
}

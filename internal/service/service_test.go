package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"harl"
)

// fakeTuner is a controllable Tuner: it blocks each Tune call until released
// (or the context is cancelled) and counts how many searches actually ran.
// preEvents are published into the job's progress stream before the tuner
// blocks, postEvents after it is released — the replay and tail halves the
// SSE tests exercise.
type fakeTuner struct {
	mu         sync.Mutex
	runs       int
	started    chan string   // receives the key each time a Tune begins
	release    chan struct{} // each receive lets one Tune finish
	preEvents  []harl.ProgressEvent
	postEvents []harl.ProgressEvent
	outcome    *Outcome // optional override of the success outcome
}

func newFakeTuner() *fakeTuner {
	return &fakeTuner{started: make(chan string, 64), release: make(chan struct{})}
}

func (f *fakeTuner) Key(req Request) (string, error) {
	if req.Op == "" && req.Network == "" {
		return "", fmt.Errorf("fake: empty request")
	}
	return fmt.Sprintf("%s|%s|%s|%s|t%d|s%d", req.Op, req.Shape, req.Network, req.Target, req.Trials, req.Seed), nil
}

func (f *fakeTuner) Tune(ctx context.Context, req Request, progress func(harl.ProgressEvent)) (Outcome, error) {
	f.mu.Lock()
	f.runs++
	pre, post, oc := f.preEvents, f.postEvents, f.outcome
	f.mu.Unlock()
	for _, e := range pre {
		progress(e)
	}
	f.started <- req.Op + req.Network
	select {
	case <-f.release:
		for _, e := range post {
			progress(e)
		}
		if oc != nil {
			o := *oc
			o.Workload = req.Op + req.Network
			o.Target = req.Target
			return o, nil
		}
		return Outcome{Workload: req.Op + req.Network, Target: req.Target, Trials: 16}, nil
	case <-ctx.Done():
		return Outcome{Workload: req.Op + req.Network, Target: req.Target, Trials: 3, Cancelled: true}, nil
	}
}

func (f *fakeTuner) Runs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

func waitState(t *testing.T, q *Queue, id string, want JobState) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := q.Get(id); ok && j.State == want {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, _ := q.Get(id)
	t.Fatalf("job %s never reached %s (state %s)", id, want, j.State)
	return Job{}
}

// TestCoalescingSingleflight is the service-layer seam test: N concurrent
// identical submissions must yield exactly one job and one search.
func TestCoalescingSingleflight(t *testing.T) {
	ft := newFakeTuner()
	q := NewQueue(ft, 4)
	defer q.Shutdown()

	req := Request{Op: "gemm", Shape: "64,64,64", Target: "cpu"}
	const n = 16
	jobs := make([]Job, n)
	coalesced := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, c, err := q.Submit(req)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			jobs[i] = j
			if c {
				coalesced++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for _, j := range jobs[1:] {
		if j.ID != jobs[0].ID {
			t.Fatalf("identical requests produced distinct jobs %s and %s", jobs[0].ID, j.ID)
		}
	}
	if coalesced != n-1 {
		t.Fatalf("coalesced %d of %d submissions, want %d", coalesced, n, n-1)
	}
	// A different request must NOT coalesce.
	other, c, err := q.Submit(Request{Op: "gemm", Shape: "128,128,128", Target: "cpu"})
	if err != nil || c {
		t.Fatalf("distinct request coalesced (err=%v)", err)
	}
	<-ft.started
	<-ft.started
	close(ft.release)
	waitState(t, q, jobs[0].ID, StateDone)
	waitState(t, q, other.ID, StateDone)
	if got := ft.Runs(); got != 2 {
		t.Fatalf("tuner ran %d searches, want 2 (one per distinct request)", got)
	}
	m := q.Metrics()
	if m.Submitted != 2 || m.Coalesced != n-1 || m.Done != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	// Once finished, the key is no longer in flight: a re-submit starts fresh.
	j2, c, err := q.Submit(req)
	if err != nil || c {
		t.Fatalf("re-submit after completion coalesced (err=%v)", err)
	}
	if j2.ID == jobs[0].ID {
		t.Fatal("re-submit reused the finished job")
	}
	waitState(t, q, j2.ID, StateDone)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	ft := newFakeTuner()
	q := NewQueue(ft, 1) // single worker so the second job stays queued
	defer q.Shutdown()

	running, _, err := q.Submit(Request{Op: "a", Target: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	<-ft.started
	queued, _, err := q.Submit(Request{Op: "b", Target: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel the queued job: immediate, no search ever runs for it.
	if !q.Cancel(queued.ID) {
		t.Fatal("cancel queued failed")
	}
	waitState(t, q, queued.ID, StateCancelled)
	// Cancel the running job: the session context fires and the partial
	// outcome is kept.
	if !q.Cancel(running.ID) {
		t.Fatal("cancel running failed")
	}
	j := waitState(t, q, running.ID, StateCancelled)
	if j.Outcome == nil || !j.Outcome.Cancelled || j.Outcome.Trials != 3 {
		t.Fatalf("cancelled outcome = %+v, want partial trials", j.Outcome)
	}
	if ft.Runs() != 1 {
		t.Fatalf("tuner ran %d searches, want 1", ft.Runs())
	}
	if !waitCancelledCount(q, 2) {
		t.Fatalf("metrics cancelled = %d, want 2", q.Metrics().Cancelled)
	}
	if q.Cancel(running.ID) {
		t.Fatal("cancelling a finished job must report false")
	}
}

func waitCancelledCount(q *Queue, want int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if q.Metrics().Cancelled == want {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

func TestShutdownCancelsEverything(t *testing.T) {
	ft := newFakeTuner()
	q := NewQueue(ft, 1)
	running, _, err := q.Submit(Request{Op: "a", Target: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	<-ft.started
	queued, _, err := q.Submit(Request{Op: "b", Target: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	q.Shutdown()
	if j, _ := q.Get(queued.ID); j.State != StateCancelled {
		t.Fatalf("queued job state after shutdown = %s", j.State)
	}
	if j, _ := q.Get(running.ID); j.State != StateCancelled || j.Outcome == nil {
		t.Fatalf("running job after shutdown = %+v", j)
	}
	if _, _, err := q.Submit(Request{Op: "c", Target: "cpu"}); err == nil {
		t.Fatal("submit after shutdown must fail")
	}
}

func TestSubmitRejectsBadRequest(t *testing.T) {
	q := NewQueue(newFakeTuner(), 1)
	defer q.Shutdown()
	if _, _, err := q.Submit(Request{}); err == nil {
		t.Fatal("empty request must be rejected at submit")
	}
}

package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"harl"
)

// serveTestEnv boots an httptest server over a queue with the controllable
// fake tuner and a registry seeded from the committed GEMM journal.
func serveTestEnv(t *testing.T) (*httptest.Server, *Queue, *fakeTuner, *harl.Registry) {
	t.Helper()
	reg, err := harl.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.ImportJournal("../../examples/pretrain/gemm-cpu.jsonl"); err != nil {
		t.Fatal(err)
	}
	ft := newFakeTuner()
	q := NewQueue(ft, 2)
	srv := httptest.NewServer(NewServer(q, reg))
	t.Cleanup(func() {
		srv.Close()
		q.Shutdown()
		reg.Close()
	})
	return srv, q, ft, reg
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestTuneEndpointCacheHit: a request covered by the committed journal is
// answered 200 from the registry — no job, no search — and the trials field
// reports how much search produced the cached schedule (the stored record's
// trial index), not zero. Regression: hitResponse used to drop Record.Trial,
// so every hit claimed the schedule came from 0 trials.
func TestTuneEndpointCacheHit(t *testing.T) {
	srv, q, ft, reg := serveTestEnv(t)
	hit, ok, err := reg.Lookup(harl.GEMM(256, 256, 256, 1), harl.CPU(), "harl")
	if err != nil || !ok {
		t.Fatalf("registry lookup: ok=%v err=%v", ok, err)
	}
	if hit.Record.Trial == 0 {
		t.Fatal("committed journal's best record has trial 0; the regression check needs a non-zero value")
	}
	resp, out := postJSON(t, srv.URL+"/v1/tune",
		`{"op":"gemm","shape":"256,256,256","target":"cpu","scheduler":"harl"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (cache hit)", resp.StatusCode)
	}
	if out["cache_hit"] != true {
		t.Fatalf("response %v lacks cache_hit", out)
	}
	if got := out["trials"]; got != float64(hit.Record.Trial) {
		t.Fatalf("cache hit reported trials=%v, want the record's %d", got, hit.Record.Trial)
	}
	if ft.Runs() != 0 {
		t.Fatalf("tuner ran %d searches on a cache hit", ft.Runs())
	}
	if m := q.Metrics(); m.RegistryHits != 1 || m.Submitted != 0 {
		t.Fatalf("metrics after hit = %+v", m)
	}
}

// TestTuneEndpointCoalescesConcurrentPosts: N parallel identical POSTs for
// an uncached workload must yield exactly one job.
func TestTuneEndpointCoalescesConcurrentPosts(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	const n = 8
	body := `{"op":"gemm","shape":"96,96,96","target":"cpu","trials":64}`
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out := postJSON(t, srv.URL+"/v1/tune", body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("status %d, want 202", resp.StatusCode)
				return
			}
			job := out["job"].(map[string]any)
			ids[i] = job["id"].(string)
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("concurrent identical POSTs produced jobs %s and %s", ids[0], id)
		}
	}
	if got := q.Metrics().Submitted; got != 1 {
		t.Fatalf("submitted %d jobs for %d identical requests", got, n)
	}
	<-ft.started
	close(ft.release)
	waitState(t, q, ids[0], StateDone)
	if ft.Runs() != 1 {
		t.Fatalf("tuner ran %d searches, want 1", ft.Runs())
	}
	// The job is queryable after completion.
	resp, out := getJSON(t, srv.URL+"/v1/jobs/"+ids[0])
	if resp.StatusCode != http.StatusOK || out["state"] != string(StateDone) {
		t.Fatalf("job lookup = %d %v", resp.StatusCode, out)
	}
}

func TestScheduleEndpointHitAndMiss(t *testing.T) {
	srv, _, _, _ := serveTestEnv(t)
	resp, out := getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=256,256,256&target=cpu&scheduler=harl")
	if resp.StatusCode != http.StatusOK || out["cache_hit"] != true {
		t.Fatalf("hit lookup = %d %v", resp.StatusCode, out)
	}
	if out["best_schedule"] == "" || out["exec_seconds"] == nil {
		t.Fatalf("hit payload incomplete: %v", out)
	}
	if out["trials"] == float64(0) {
		t.Fatalf("schedule hit reports trials=0; want the stored record's trial count (%v)", out)
	}
	resp, _ = getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=512,512,512&target=cpu")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status = %d, want 404", resp.StatusCode)
	}
	resp, _ = getJSON(t, srv.URL+"/v1/schedule?op=gemm&shape=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shape status = %d, want 400", resp.StatusCode)
	}
}

func TestCancelEndpoint(t *testing.T) {
	srv, q, ft, _ := serveTestEnv(t)
	_, out := postJSON(t, srv.URL+"/v1/tune", `{"op":"gemm","shape":"80,80,80","target":"cpu"}`)
	id := out["job"].(map[string]any)["id"].(string)
	<-ft.started
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	j := waitState(t, q, id, StateCancelled)
	if j.Outcome == nil || !j.Outcome.Cancelled {
		t.Fatalf("cancelled job outcome = %+v", j.Outcome)
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	srv, _, _, reg := serveTestEnv(t)
	resp, out := getJSON(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, out)
	}
	if int(out["registry_keys"].(float64)) != reg.Len() {
		t.Fatalf("healthz registry_keys = %v, want %d", out["registry_keys"], reg.Len())
	}
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := make([]byte, 1<<14)
	n, _ := mresp.Body.Read(buf)
	text := string(buf[:n])
	for _, metric := range []string{"harl_queue_depth", "harl_registry_hit_rate", "harl_trials_measured_total", "harl_jobs_coalesced_total"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("metrics output lacks %s:\n%s", metric, text)
		}
	}
}

// TestBadRequests covers the validation surface: unknown fields of every
// kind answer 400 with the valid-name list, not 500.
func TestBadRequests(t *testing.T) {
	srv, _, _, _ := serveTestEnv(t)
	for _, body := range []string{
		`{"op":"gemm","shape":"64,64,64","target":"tpu"}`,
		`{"op":"gemm","shape":"64,64,64","scheduler":"sgd"}`,
		`{"op":"wavelet","shape":"64"}`,
		`{}`,
		`not json`,
		`{"op":"gemm","shape":"64,64,64","plateau_min_improvement":-1}`,
		`{"op":"gemm","shape":"64,64,64","plateau_min_improvement":0.05}`,
	} {
		resp, out := postJSON(t, srv.URL+"/v1/tune", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400 (%v)", body, resp.StatusCode, out)
		}
		env, _ := out["error"].(map[string]any)
		if code, _ := env["code"].(string); code != "invalid_request" {
			t.Fatalf("body %s: error code %q, want invalid_request", body, code)
		}
		if msg, _ := env["message"].(string); msg == "" {
			t.Fatalf("body %s: no error detail", body)
		}
	}
	resp, _ := getJSON(t, srv.URL+"/v1/jobs/j999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}
}

// TestHarlTunerKeyUnifiesSpelling: the coalescing key is structural — two
// spellings of one workload coalesce, different workloads never do.
func TestHarlTunerKeyUnifiesSpelling(t *testing.T) {
	ht := &HarlTuner{}
	k1, err := ht.Key(Request{Op: "gemm", Shape: "64,64,64", Target: "cpu"}.normalize())
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ht.Key(Request{Op: "gemm", Shape: " 64 , 64 , 64 ", Target: "cpu"}.normalize())
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("equivalent shapes keyed differently:\n%s\n%s", k1, k2)
	}
	k3, err := ht.Key(Request{Op: "gemm", Shape: "128,64,64", Target: "cpu"}.normalize())
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Fatal("different shapes share a key")
	}
	if _, err := ht.Key(Request{Op: "gemm", Shape: "64,64,64", Target: "cpu", Network: "bert"}.normalize()); err == nil {
		t.Fatal("op+network must be rejected")
	}
	nk, err := ht.Key(Request{Network: "bert", Target: "cpu"}.normalize())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nk, "network:bert@b1") {
		t.Fatalf("network key = %s", nk)
	}
}

package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"harl/internal/wire"
)

func newTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv
}

// doRequest performs the call and decodes the body into the typed v1
// envelope, so the test fails if the response is shaped like anything else.
func doRequest(t *testing.T, method, url, body string) (*http.Response, ErrorBody) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env ErrorBody
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("%s %s: body is not JSON: %v (%s)", method, url, err, raw)
	}
	return resp, env
}

// TestV1ErrorContract sweeps every /v1 endpoint's error paths and asserts
// the one documented envelope: {"error":{"code":..., "message":...}} with a
// stable machine code and a non-empty human message.
func TestV1ErrorContract(t *testing.T) {
	srv, _, _, _ := serveTestEnv(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   ErrorCode
	}{
		{"tune bad json", "POST", "/v1/tune", "not json", 400, CodeInvalidRequest},
		{"tune unknown target", "POST", "/v1/tune", `{"op":"gemm","shape":"64,64,64","target":"tpu"}`, 400, CodeInvalidRequest},
		{"tune unknown scheduler", "POST", "/v1/tune", `{"op":"gemm","shape":"64,64,64","scheduler":"sgd"}`, 400, CodeInvalidRequest},
		{"tune unknown op", "POST", "/v1/tune", `{"op":"wavelet","shape":"64"}`, 400, CodeInvalidRequest},
		{"tune empty", "POST", "/v1/tune", `{}`, 400, CodeInvalidRequest},
		{"schedule no op", "GET", "/v1/schedule", "", 400, CodeInvalidRequest},
		{"schedule bad batch", "GET", "/v1/schedule?op=gemm&shape=64,64,64&batch=x", "", 400, CodeInvalidRequest},
		{"schedule zero batch", "GET", "/v1/schedule?op=gemm&shape=64,64,64&batch=0", "", 400, CodeInvalidRequest},
		{"schedule unknown target", "GET", "/v1/schedule?op=gemm&shape=64,64,64&target=tpu", "", 400, CodeInvalidRequest},
		{"schedule miss", "GET", "/v1/schedule?op=gemm&shape=60,60,60", "", 404, CodeNotFound},
		{"job not found", "GET", "/v1/jobs/j999", "", 404, CodeNotFound},
		{"job events not found", "GET", "/v1/jobs/j999/events", "", 404, CodeNotFound},
		{"cancel not cancellable", "DELETE", "/v1/jobs/j999", "", 409, CodeNotCancellable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, env := doRequest(t, tc.method, srv.URL+tc.path, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%+v)", resp.StatusCode, tc.status, env)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content type %q, want application/json", ct)
			}
			if env.Error.Code != tc.code {
				t.Fatalf("code %q, want %q (%+v)", env.Error.Code, tc.code, env)
			}
			if env.Error.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

// TestTuneAfterShutdownIs503: a drain in progress answers shutting_down, the
// one retryable error code, not a client-error 400.
func TestTuneAfterShutdownIs503(t *testing.T) {
	srv, q, _, _ := serveTestEnv(t)
	q.Shutdown()
	resp, env := doRequest(t, "POST", srv.URL+"/v1/tune", `{"op":"gemm","shape":"96,96,96","trials":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%+v)", resp.StatusCode, env)
	}
	if env.Error.Code != CodeShuttingDown {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeShuttingDown)
	}
}

// TestScheduleWithoutRegistryIs404: a daemon serving with no registry
// answers lookups with the envelope, not a bespoke body.
func TestScheduleWithoutRegistryIs404(t *testing.T) {
	q := NewQueue(newFakeTuner(), 1)
	t.Cleanup(q.Shutdown)
	srv := newTestServer(t, NewServer(q, nil))
	resp, env := doRequest(t, "GET", srv.URL+"/v1/schedule?op=gemm&shape=64,64,64", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (%+v)", resp.StatusCode, env)
	}
	if env.Error.Code != CodeNotFound {
		t.Fatalf("code %q, want %q", env.Error.Code, CodeNotFound)
	}
}

// TestWriteJSONEncodeFailureKeepsContract: the encode-failure fallback of the
// shared writer must itself answer the envelope (it used to emit a
// hand-written {"error": "..."} string that bypassed it).
func TestWriteJSONEncodeFailureKeepsContract(t *testing.T) {
	srv := newTestServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"bad": func() {}}) // unencodable
	}))
	resp, env := doRequest(t, "GET", srv.URL+"/", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if env.Error.Code != wire.CodeInternal {
		t.Fatalf("code %q, want %q", env.Error.Code, wire.CodeInternal)
	}
	if env.Error.Message == "" {
		t.Fatal("empty error message")
	}
}

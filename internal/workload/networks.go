package workload

import (
	"fmt"

	"harl/internal/texpr"
)

// Network is an end-to-end tuning target: a set of distinct subgraphs, each
// carrying its appearance count (w_n in the paper's problem formulation).
// The estimated end-to-end latency is Σ w_n · g_n where g_n is the tuned
// execution time of subgraph n.
type Network struct {
	Name      string
	Batch     int
	Subgraphs []*texpr.Subgraph
}

// DistinctSubgraphs returns the number of distinct subgraphs (the paper
// reports 10 for BERT and 24 for ResNet-50).
func (n *Network) DistinctSubgraphs() int { return len(n.Subgraphs) }

// TotalWeight returns Σ w_n, the number of subgraph executions per inference.
func (n *Network) TotalWeight() int {
	t := 0
	for _, sg := range n.Subgraphs {
		t += sg.Weight
	}
	return t
}

func withWeight(sg *texpr.Subgraph, w int) *texpr.Subgraph {
	sg.Weight = w
	return sg
}

// BERT builds the BERT-base inventory used in Section 6.3 and Table 4:
// 10 distinct subgraphs (4 projection/FF GEMMs, softmax, 2 batched GEMMs,
// 2 elementwise groups, and the pooler GEMM+Tanh). Sequence length 128,
// hidden 768, 12 heads, 12 layers, FF dim 3072.
func BERT(batch int) *Network {
	const (
		layers = 12
		seq    = 128
		hidden = 768
		heads  = 12
		ff     = 3072
	)
	headDim := hidden / heads
	rows := batch * seq
	return &Network{
		Name:  fmt.Sprintf("BERT-b%d", batch),
		Batch: batch,
		Subgraphs: []*texpr.Subgraph{
			// Q/K/V projections: 3 per layer.
			withWeight(GEMM("GEMM-I", 1, rows, hidden, hidden), 3*layers),
			// Attention output projection: 1 per layer.
			withWeight(GEMM("GEMM-II", 1, rows, hidden, hidden), layers),
			// Feed-forward up-projection.
			withWeight(GEMMEpilogue("GEMM-III", 1, rows, hidden, ff, 8), layers),
			// Feed-forward down-projection.
			withWeight(GEMM("GEMM-IV", 1, rows, ff, hidden), layers),
			// Attention softmax over (batch·heads·seq) rows of length seq.
			withWeight(Softmax("Softmax", batch*heads*seq, seq), layers),
			// Scores = Q·K^T per head.
			withWeight(BatchGEMM("Batch_GEMM-I", batch*heads, seq, headDim, seq), layers),
			// Context = scores·V per head.
			withWeight(BatchGEMM("Batch_GEMM-II", batch*heads, seq, seq, headDim), layers),
			// Residual add + layernorm core (2 per layer).
			withWeight(Elementwise("Element-wise-I", rows*hidden, 8, 2), 2*layers),
			// GELU over the FF activation.
			withWeight(Elementwise("Element-wise-II", rows*ff, 8, 1), layers),
			// Pooler: dense(768,768)+tanh on the [CLS] token.
			withWeight(GEMMEpilogue("GEMM+Tanh", 1, batch, hidden, hidden, 6), 1),
		},
	}
}

// resnetConv is a helper describing one distinct conv shape of ResNet-50.
type resnetConv struct {
	name            string
	weight          int
	h, cin, cout, k int
	stride, pad     int
}

// ResNet50 builds the ResNet-50 inventory: 24 distinct subgraphs (21 conv
// shapes + pooling stages + the classifier GEMM), matching the count the
// paper reports for the model.
func ResNet50(batch int) *Network {
	convs := []resnetConv{
		{"conv1_7x7", 1, 224, 3, 64, 7, 2, 3},
		{"c2_1x1_red", 3, 56, 64, 64, 1, 1, 0},
		{"c2_3x3", 3, 56, 64, 64, 3, 1, 1},
		{"c2_1x1_exp", 3, 56, 64, 256, 1, 1, 0},
		{"c2_down", 1, 56, 64, 256, 1, 1, 0},
		{"c3_1x1_red_s2", 1, 56, 256, 128, 1, 2, 0},
		{"c3_1x1_red", 3, 28, 512, 128, 1, 1, 0},
		{"c3_3x3", 4, 28, 128, 128, 3, 1, 1},
		{"c3_1x1_exp", 4, 28, 128, 512, 1, 1, 0},
		{"c3_down", 1, 56, 256, 512, 1, 2, 0},
		{"c4_1x1_red_s2", 1, 28, 512, 256, 1, 2, 0},
		{"c4_1x1_red", 5, 14, 1024, 256, 1, 1, 0},
		{"c4_3x3", 6, 14, 256, 256, 3, 1, 1},
		{"c4_1x1_exp", 6, 14, 256, 1024, 1, 1, 0},
		{"c4_down", 1, 28, 512, 1024, 1, 2, 0},
		{"c5_1x1_red_s2", 1, 14, 1024, 512, 1, 2, 0},
		{"c5_1x1_red", 2, 7, 2048, 512, 1, 1, 0},
		{"c5_3x3", 3, 7, 512, 512, 3, 1, 1},
		{"c5_1x1_exp", 3, 7, 512, 2048, 1, 1, 0},
		{"c5_down", 1, 14, 1024, 2048, 1, 2, 0},
	}
	var sgs []*texpr.Subgraph
	for _, c := range convs {
		sgs = append(sgs, Conv2DReLU(c.name, c.weight, batch, c.h, c.h, c.cin, c.cout, c.k, c.stride, c.pad))
	}
	sgs = append(sgs,
		withWeight(Pool2D("maxpool", batch, 112, 112, 64, 3, 2), 1),
		withWeight(Pool2D("global_avgpool", batch, 7, 7, 2048, 7, 7), 1),
		withWeight(Elementwise("residual_add", batch*56*56*256, 2, 2), 16),
		withWeight(GEMM("fc1000", 1, batch, 2048, 1000), 1),
	)
	return &Network{Name: fmt.Sprintf("ResNet50-b%d", batch), Batch: batch, Subgraphs: sgs}
}

// mbConv describes one distinct inverted-residual component of MobileNet-V2.
type mbConv struct {
	name   string
	weight int
	// kind: "conv" (pointwise/regular) or "dw" (depthwise)
	kind            string
	h, cin, cout, k int
	stride, pad     int
}

// MobileNetV2 builds the MobileNet-V2 inventory: 21 distinct subgraphs drawn
// from the expand/depthwise/project structure of the inverted-residual blocks.
func MobileNetV2(batch int) *Network {
	blocks := []mbConv{
		{"conv1_3x3", 1, "conv", 224, 3, 32, 3, 2, 1},
		{"b1_dw", 1, "dw", 112, 32, 32, 3, 1, 1},
		{"b1_proj", 1, "conv", 112, 32, 16, 1, 1, 0},
		{"b2_expand", 1, "conv", 112, 16, 96, 1, 1, 0},
		{"b2_dw_s2", 1, "dw", 112, 96, 96, 3, 2, 1},
		{"b2_proj", 2, "conv", 56, 96, 24, 1, 1, 0},
		{"b2_expand2", 1, "conv", 56, 24, 144, 1, 1, 0},
		{"b2_dw", 1, "dw", 56, 144, 144, 3, 1, 1},
		{"b3_dw_s2", 1, "dw", 56, 144, 144, 3, 2, 1},
		{"b3_proj", 3, "conv", 28, 144, 32, 1, 1, 0},
		{"b3_expand", 2, "conv", 28, 32, 192, 1, 1, 0},
		{"b3_dw", 2, "dw", 28, 192, 192, 3, 1, 1},
		{"b4_dw_s2", 1, "dw", 28, 192, 192, 3, 2, 1},
		{"b4_proj", 4, "conv", 14, 192, 64, 1, 1, 0},
		{"b4_expand", 4, "conv", 14, 64, 384, 1, 1, 0},
		{"b4_dw", 3, "dw", 14, 384, 384, 3, 1, 1},
		{"b5_mid", 6, "conv", 14, 384, 96, 1, 1, 0},
		{"b6_dw_s2", 1, "dw", 14, 576, 576, 3, 2, 1},
		{"b7_tail", 4, "conv", 7, 576, 160, 1, 1, 0},
		{"conv_last", 1, "conv", 7, 320, 1280, 1, 1, 0},
	}
	var sgs []*texpr.Subgraph
	for _, b := range blocks {
		var sg *texpr.Subgraph
		if b.kind == "dw" {
			sg = DepthwiseConv2D(b.name, batch, b.h, b.h, b.cin, b.k, b.stride, b.pad)
			sg.Weight = b.weight
		} else {
			sg = Conv2DReLU(b.name, b.weight, batch, b.h, b.h, b.cin, b.cout, b.k, b.stride, b.pad)
		}
		sgs = append(sgs, sg)
	}
	sgs = append(sgs, withWeight(GEMM("fc1000", 1, batch, 1280, 1000), 1))
	return &Network{Name: fmt.Sprintf("MobileNetV2-b%d", batch), Batch: batch, Subgraphs: sgs}
}

// Networks returns the three Section 6.3 benchmark networks at a batch size,
// in the paper's presentation order (BERT, ResNet, MobileNet).
func Networks(batch int) []*Network {
	return []*Network{BERT(batch), ResNet50(batch), MobileNetV2(batch)}
}

// NetworkTrialBudget returns the measurement-trial budget the paper assigns
// to each network (Section 6.3): 12,000 for BERT, 22,000 for ResNet-50 and
// 16,000 for MobileNet-V2.
func NetworkTrialBudget(name string) int {
	switch {
	case len(name) >= 4 && name[:4] == "BERT":
		return 12000
	case len(name) >= 6 && name[:6] == "ResNet":
		return 22000
	case len(name) >= 9 && name[:9] == "MobileNet":
		return 16000
	}
	return 10000
}

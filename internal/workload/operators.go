// Package workload defines the tuning targets of the HARL reproduction: the
// tensor-operator benchmark suite of the paper's Section 6.2 (Table 6
// configurations, exactly as published) and the three end-to-end networks of
// Section 6.3 (BERT, ResNet-50, MobileNet-V2) expressed as weighted subgraph
// inventories, which is the only view of a network the auto-scheduler consumes.
package workload

import (
	"fmt"

	"harl/internal/texpr"
)

// GEMM builds a single-stage matrix-multiply subgraph C[M,N] = A[M,K]·B[K,N].
// batch > 1 adds a leading spatial batch axis on A and C (dense-layer style;
// the weight matrix B is shared across the batch).
func GEMM(name string, batch, m, k, n int) *texpr.Subgraph {
	st := &texpr.Stage{
		Name:                 "matmul",
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
	}
	spA := []texpr.AxisRef{}
	if batch > 1 {
		st.Spatial = append(st.Spatial, texpr.Iter{Name: "b", Extent: batch, Kind: texpr.Spatial})
		spA = append(spA, texpr.AxisRef{Iter: 0})
	}
	base := len(st.Spatial)
	st.Spatial = append(st.Spatial,
		texpr.Iter{Name: "i", Extent: m, Kind: texpr.Spatial},
		texpr.Iter{Name: "j", Extent: n, Kind: texpr.Spatial},
	)
	st.Reduce = []texpr.Iter{{Name: "k", Extent: k, Kind: texpr.Reduction}}
	aDims := append(append([]texpr.AxisRef{}, spA...),
		texpr.AxisRef{Iter: base},            // i
		texpr.AxisRef{Iter: 0, Reduce: true}, // k
	)
	st.Inputs = []texpr.Access{
		{Tensor: "A", Dims: aDims},
		{Tensor: "B", Dims: []texpr.AxisRef{{Iter: 0, Reduce: true}, {Iter: base + 1}}},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// BatchGEMM builds a batched matmul C[b,M,N] = A[b,M,K]·B[b,K,N] where both
// operands carry the batch axis (attention score/context computation in BERT).
func BatchGEMM(name string, batch, m, k, n int) *texpr.Subgraph {
	st := &texpr.Stage{
		Name:                 "batch_matmul",
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
		Spatial: []texpr.Iter{
			{Name: "b", Extent: batch, Kind: texpr.Spatial},
			{Name: "i", Extent: m, Kind: texpr.Spatial},
			{Name: "j", Extent: n, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{{Name: "k", Extent: k, Kind: texpr.Reduction}},
		Inputs: []texpr.Access{
			{Tensor: "A", Dims: []texpr.AxisRef{{Iter: 0}, {Iter: 1}, {Iter: 0, Reduce: true}}},
			{Tensor: "B", Dims: []texpr.AxisRef{{Iter: 0}, {Iter: 0, Reduce: true}, {Iter: 2}}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

func convOut(in, k, stride, pad int) int {
	o := (in+2*pad-k)/stride + 1
	if o < 1 {
		o = 1
	}
	return o
}

// Conv1D builds a 1-D convolution subgraph over (batch, L, Cin) -> (batch, Lo, Cout).
func Conv1D(name string, batch, l, cin, cout, k, stride, pad int) *texpr.Subgraph {
	lo := convOut(l, k, stride, pad)
	st := &texpr.Stage{
		Name:                 "conv1d",
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "l", Extent: lo, Kind: texpr.Spatial},
			{Name: "co", Extent: cout, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "ci", Extent: cin, Kind: texpr.Reduction},
			{Name: "kl", Extent: k, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: stride, Offset: k - stride},
				{Iter: 0, Reduce: true},
			}},
			{Tensor: "weight", Dims: []texpr.AxisRef{
				{Iter: 2}, {Iter: 0, Reduce: true}, {Iter: 1, Reduce: true},
			}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// Conv2D builds a 2-D convolution subgraph (NHWC-style iteration domain).
func Conv2D(name string, batch, h, w, cin, cout, k, stride, pad int) *texpr.Subgraph {
	st := conv2DStage("conv2d", batch, h, w, cin, cout, k, stride, pad)
	return texpr.MustSubgraph(name, 1, st)
}

func conv2DStage(stageName string, batch, h, w, cin, cout, k, stride, pad int) *texpr.Stage {
	oh, ow := convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	return &texpr.Stage{
		Name:                 stageName,
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "oh", Extent: oh, Kind: texpr.Spatial},
			{Name: "ow", Extent: ow, Kind: texpr.Spatial},
			{Name: "co", Extent: cout, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "ci", Extent: cin, Kind: texpr.Reduction},
			{Name: "kh", Extent: k, Kind: texpr.Reduction},
			{Name: "kw", Extent: k, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: stride, Offset: k - stride},
				{Iter: 2, Scale: stride, Offset: k - stride},
				{Iter: 0, Reduce: true},
			}},
			{Tensor: "weight", Dims: []texpr.AxisRef{
				{Iter: 3}, {Iter: 0, Reduce: true}, {Iter: 1, Reduce: true}, {Iter: 2, Reduce: true},
			}},
		},
	}
}

// Conv3D builds a 3-D convolution subgraph (video-style NDHWC domain).
func Conv3D(name string, batch, d, h, w, cin, cout, k, stride, pad int) *texpr.Subgraph {
	od, oh, ow := convOut(d, k, stride, pad), convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	st := &texpr.Stage{
		Name:                 "conv3d",
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "od", Extent: od, Kind: texpr.Spatial},
			{Name: "oh", Extent: oh, Kind: texpr.Spatial},
			{Name: "ow", Extent: ow, Kind: texpr.Spatial},
			{Name: "co", Extent: cout, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "ci", Extent: cin, Kind: texpr.Reduction},
			{Name: "kd", Extent: k, Kind: texpr.Reduction},
			{Name: "kh", Extent: k, Kind: texpr.Reduction},
			{Name: "kw", Extent: k, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: stride, Offset: k - stride},
				{Iter: 2, Scale: stride, Offset: k - stride},
				{Iter: 3, Scale: stride, Offset: k - stride},
				{Iter: 0, Reduce: true},
			}},
			{Tensor: "weight", Dims: []texpr.AxisRef{
				{Iter: 4}, {Iter: 0, Reduce: true}, {Iter: 1, Reduce: true},
				{Iter: 2, Reduce: true}, {Iter: 3, Reduce: true},
			}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// ConvT2D builds a transposed 2-D convolution. The output grid is the
// upsampled one (Ho = (H-1)*stride - 2*pad + K); the input access window is
// the standard fractionally-strided approximation used for footprint modeling.
func ConvT2D(name string, batch, h, w, cin, cout, k, stride, pad int) *texpr.Subgraph {
	oh := (h-1)*stride - 2*pad + k
	ow := (w-1)*stride - 2*pad + k
	if oh < 1 {
		oh = 1
	}
	if ow < 1 {
		ow = 1
	}
	win := (k + stride - 1) / stride // input elements touched per output point, per axis
	st := &texpr.Stage{
		Name:                 "conv2d_transpose",
		Kind:                 texpr.ComputeHeavy,
		FLOPsPerPoint:        2,
		HasDataReuse:         true,
		HasReductionParallel: true,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "oh", Extent: oh, Kind: texpr.Spatial},
			{Name: "ow", Extent: ow, Kind: texpr.Spatial},
			{Name: "co", Extent: cout, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "ci", Extent: cin, Kind: texpr.Reduction},
			{Name: "kh", Extent: win, Kind: texpr.Reduction},
			{Name: "kw", Extent: win, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: 1, Offset: win - 1}, // fractional stride ≈ unit stride + window
				{Iter: 2, Scale: 1, Offset: win - 1},
				{Iter: 0, Reduce: true},
			}},
			{Tensor: "weight", Dims: []texpr.AxisRef{
				{Iter: 3}, {Iter: 0, Reduce: true}, {Iter: 1, Reduce: true}, {Iter: 2, Reduce: true},
			}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// DepthwiseConv2D builds a depthwise 2-D convolution (MobileNet building block):
// each channel is convolved independently, so the channel axis is spatial and
// only the kernel window is reduced.
func DepthwiseConv2D(name string, batch, h, w, c, k, stride, pad int) *texpr.Subgraph {
	oh, ow := convOut(h, k, stride, pad), convOut(w, k, stride, pad)
	st := &texpr.Stage{
		Name:          "depthwise_conv2d",
		Kind:          texpr.ComputeHeavy,
		FLOPsPerPoint: 2,
		HasDataReuse:  true,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "oh", Extent: oh, Kind: texpr.Spatial},
			{Name: "ow", Extent: ow, Kind: texpr.Spatial},
			{Name: "c", Extent: c, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "kh", Extent: k, Kind: texpr.Reduction},
			{Name: "kw", Extent: k, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: stride, Offset: k - stride},
				{Iter: 2, Scale: stride, Offset: k - stride},
				{Iter: 3},
			}},
			{Tensor: "weight", Dims: []texpr.AxisRef{
				{Iter: 3}, {Iter: 0, Reduce: true}, {Iter: 1, Reduce: true},
			}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// Softmax builds a two-stage softmax subgraph over (rows, cols): a reduction
// stage (max+sum of exp) followed by an elementwise normalization consuming it.
func Softmax(name string, rows, cols int) *texpr.Subgraph {
	reduceSt := &texpr.Stage{
		Name:                 "softmax_reduce",
		Kind:                 texpr.ReduceLight,
		FLOPsPerPoint:        3, // exp + running max + running sum
		HasReductionParallel: true,
		Spatial:              []texpr.Iter{{Name: "r", Extent: rows, Kind: texpr.Spatial}},
		Reduce:               []texpr.Iter{{Name: "c", Extent: cols, Kind: texpr.Reduction}},
		Inputs: []texpr.Access{
			{Tensor: "logits", Dims: []texpr.AxisRef{{Iter: 0}, {Iter: 0, Reduce: true}}},
		},
	}
	normSt := &texpr.Stage{
		Name:          "softmax_norm",
		Kind:          texpr.Elementwise,
		FLOPsPerPoint: 2, // exp reuse + divide
		CanInline:     true,
		Spatial: []texpr.Iter{
			{Name: "r", Extent: rows, Kind: texpr.Spatial},
			{Name: "c", Extent: cols, Kind: texpr.Spatial},
		},
		Inputs: []texpr.Access{
			{Tensor: "logits", Dims: []texpr.AxisRef{{Iter: 0}, {Iter: 1}}},
			{Tensor: "rowstats", Producer: "softmax_reduce", Dims: []texpr.AxisRef{{Iter: 0}}},
		},
	}
	return texpr.MustSubgraph(name, 1, reduceSt, normSt)
}

// Elementwise builds a single-stage elementwise subgraph over a flat shape
// with the given per-element FLOP cost (e.g. 8 for GELU, 2 for add+scale).
func Elementwise(name string, elems int, flopsPerElem float64, inputs int) *texpr.Subgraph {
	st := &texpr.Stage{
		Name:          "ewise",
		Kind:          texpr.Elementwise,
		FLOPsPerPoint: flopsPerElem,
		CanInline:     true,
		Spatial:       []texpr.Iter{{Name: "x", Extent: elems, Kind: texpr.Spatial}},
	}
	for i := 0; i < inputs; i++ {
		st.Inputs = append(st.Inputs, texpr.Access{
			Tensor: fmt.Sprintf("in%d", i),
			Dims:   []texpr.AxisRef{{Iter: 0}},
		})
	}
	return texpr.MustSubgraph(name, 1, st)
}

// GEMMEpilogue builds a GEMM followed by an elementwise epilogue stage
// (bias+activation) consuming its output — the fused dense pattern that gives
// the sketch generator its Tiling-with-Fusion and Inline choices.
func GEMMEpilogue(name string, batch, m, k, n int, epilogueFLOPs float64) *texpr.Subgraph {
	g := GEMM(name, batch, m, k, n)
	mat := g.Stages[0]
	ep := &texpr.Stage{
		Name:          "epilogue",
		Kind:          texpr.Elementwise,
		FLOPsPerPoint: epilogueFLOPs,
		CanInline:     true,
		Spatial:       append([]texpr.Iter(nil), mat.Spatial...),
	}
	dims := make([]texpr.AxisRef, len(ep.Spatial))
	for i := range dims {
		dims[i] = texpr.AxisRef{Iter: i}
	}
	ep.Inputs = []texpr.Access{{Tensor: "acc", Producer: mat.Name, Dims: dims}}
	return texpr.MustSubgraph(name, 1, mat, ep)
}

// Conv2DReLU builds a conv2d followed by a fused bias+ReLU elementwise stage —
// the canonical CNN subgraph after operator fusion.
func Conv2DReLU(name string, weight, batch, h, w, cin, cout, k, stride, pad int) *texpr.Subgraph {
	conv := conv2DStage("conv2d", batch, h, w, cin, cout, k, stride, pad)
	relu := &texpr.Stage{
		Name:          "bias_relu",
		Kind:          texpr.Elementwise,
		FLOPsPerPoint: 2,
		CanInline:     true,
		Spatial:       append([]texpr.Iter(nil), conv.Spatial...),
	}
	dims := make([]texpr.AxisRef, len(relu.Spatial))
	for i := range dims {
		dims[i] = texpr.AxisRef{Iter: i}
	}
	relu.Inputs = []texpr.Access{{Tensor: "acc", Producer: conv.Name, Dims: dims}}
	return texpr.MustSubgraph(name, weight, conv, relu)
}

// Pool2D builds a pooling subgraph (ReduceLight over a window).
func Pool2D(name string, batch, h, w, c, k, stride int) *texpr.Subgraph {
	oh, ow := convOut(h, k, stride, 0), convOut(w, k, stride, 0)
	st := &texpr.Stage{
		Name:          "pool2d",
		Kind:          texpr.ReduceLight,
		FLOPsPerPoint: 1,
		Spatial: []texpr.Iter{
			{Name: "n", Extent: batch, Kind: texpr.Spatial},
			{Name: "oh", Extent: oh, Kind: texpr.Spatial},
			{Name: "ow", Extent: ow, Kind: texpr.Spatial},
			{Name: "c", Extent: c, Kind: texpr.Spatial},
		},
		Reduce: []texpr.Iter{
			{Name: "kh", Extent: k, Kind: texpr.Reduction},
			{Name: "kw", Extent: k, Kind: texpr.Reduction},
		},
		Inputs: []texpr.Access{
			{Tensor: "data", Dims: []texpr.AxisRef{
				{Iter: 0},
				{Iter: 1, Scale: stride, Offset: k - stride},
				{Iter: 2, Scale: stride, Offset: k - stride},
				{Iter: 3},
			}},
		},
	}
	return texpr.MustSubgraph(name, 1, st)
}

// OperatorConfig is one row of the paper's Table 6.
type OperatorConfig struct {
	Category string // GEMM-S, GEMM-M, GEMM-L, C1D, C2D, C3D, T2D
	Params   []int
}

// Table6 returns the complete operator-benchmark grid from Appendix A.3 of
// the paper: 7 categories × 4 configurations each.
func Table6() []OperatorConfig {
	return []OperatorConfig{
		{"GEMM-S", []int{128, 128, 128}}, {"GEMM-S", []int{128, 256, 128}},
		{"GEMM-S", []int{256, 256, 256}}, {"GEMM-S", []int{512, 32, 512}},

		{"GEMM-M", []int{512, 512, 512}}, {"GEMM-M", []int{128, 1536, 512}},
		{"GEMM-M", []int{128, 512, 1536}}, {"GEMM-M", []int{256, 1024, 512}},

		{"GEMM-L", []int{1024, 1024, 1024}}, {"GEMM-L", []int{128, 3072, 768}},
		{"GEMM-L", []int{128, 768, 3072}}, {"GEMM-L", []int{256, 1536, 768}},

		{"C1D", []int{256, 64, 128, 3, 2, 1}}, {"C1D", []int{128, 128, 256, 1, 2, 0}},
		{"C1D", []int{64, 256, 256, 5, 1, 2}}, {"C1D", []int{32, 512, 512, 3, 1, 1}},

		{"C2D", []int{224, 224, 3, 64, 7, 2, 3}}, {"C2D", []int{56, 56, 64, 64, 1, 1, 0}},
		{"C2D", []int{14, 14, 256, 256, 3, 1, 1}}, {"C2D", []int{7, 7, 512, 512, 3, 1, 1}},

		{"C3D", []int{16, 224, 224, 3, 64, 7, 2, 3}}, {"C3D", []int{16, 56, 56, 64, 64, 1, 1, 0}},
		{"C3D", []int{16, 14, 14, 256, 256, 3, 1, 1}}, {"C3D", []int{16, 7, 7, 512, 512, 3, 1, 1}},

		{"T2D", []int{4, 4, 512, 256, 4, 2, 1}}, {"T2D", []int{8, 8, 256, 128, 4, 2, 1}},
		{"T2D", []int{16, 16, 128, 64, 4, 2, 1}}, {"T2D", []int{32, 32, 64, 3, 4, 2, 1}},
	}
}

// OperatorCategories lists the Table 6 categories in presentation order
// (the x-axis of Figures 5 and 6).
func OperatorCategories() []string {
	return []string{"GEMM-S", "GEMM-M", "GEMM-L", "C1D", "C2D", "C3D", "T2D"}
}

// Build instantiates the configuration at the given batch size.
func (c OperatorConfig) Build(batch int) *texpr.Subgraph {
	name := fmt.Sprintf("%s%v-b%d", c.Category, c.Params, batch)
	p := c.Params
	switch c.Category {
	case "GEMM-S", "GEMM-M", "GEMM-L":
		return GEMM(name, batch, p[0], p[1], p[2])
	case "C1D":
		return Conv1D(name, batch, p[0], p[1], p[2], p[3], p[4], p[5])
	case "C2D":
		return Conv2D(name, batch, p[0], p[1], p[2], p[3], p[4], p[5], p[6])
	case "C3D":
		return Conv3D(name, batch, p[0], p[1], p[2], p[3], p[4], p[5], p[6], p[7])
	case "T2D":
		return ConvT2D(name, batch, p[0], p[1], p[2], p[3], p[4], p[5], p[6])
	}
	panic("workload: unknown operator category " + c.Category)
}

// SuiteFor returns the four Table 6 subgraphs of one category at a batch size.
func SuiteFor(category string, batch int) []*texpr.Subgraph {
	var out []*texpr.Subgraph
	for _, cfg := range Table6() {
		if cfg.Category == category {
			out = append(out, cfg.Build(batch))
		}
	}
	if len(out) == 0 {
		panic("workload: unknown operator category " + category)
	}
	return out
}

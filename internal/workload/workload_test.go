package workload

import (
	"testing"

	"harl/internal/texpr"
)

func TestGEMMShape(t *testing.T) {
	g := GEMM("g", 1, 128, 64, 32)
	if len(g.Stages) != 1 {
		t.Fatalf("stages %d", len(g.Stages))
	}
	st := g.Stages[0]
	if got, want := st.FLOPs(), float64(2*128*64*32); got != want {
		t.Fatalf("flops %g want %g", got, want)
	}
	if !st.HasDataReuse || !st.HasReductionParallel {
		t.Fatal("GEMM capability flags wrong")
	}
}

func TestGEMMBatchAddsAxis(t *testing.T) {
	g1 := GEMM("g1", 1, 64, 64, 64)
	g16 := GEMM("g16", 16, 64, 64, 64)
	if len(g16.Stages[0].Spatial) != len(g1.Stages[0].Spatial)+1 {
		t.Fatal("batch axis missing")
	}
	if g16.FLOPs() != 16*g1.FLOPs() {
		t.Fatal("batch FLOPs should scale linearly")
	}
}

func TestConvOutputSizes(t *testing.T) {
	// (224+2*3-7)/2+1 = 112
	c := Conv2D("c", 1, 224, 224, 3, 64, 7, 2, 3)
	st := c.Stages[0]
	if st.Spatial[1].Extent != 112 || st.Spatial[2].Extent != 112 {
		t.Fatalf("conv output %dx%d", st.Spatial[1].Extent, st.Spatial[2].Extent)
	}
	if st.Spatial[3].Extent != 64 {
		t.Fatalf("cout %d", st.Spatial[3].Extent)
	}
	if len(st.Reduce) != 3 {
		t.Fatalf("conv2d reduce axes %d", len(st.Reduce))
	}
}

func TestConvT2DUpsamples(t *testing.T) {
	// (4-1)*2 - 2 + 4 = 8
	g := ConvT2D("t", 1, 4, 4, 512, 256, 4, 2, 1)
	st := g.Stages[0]
	if st.Spatial[1].Extent != 8 {
		t.Fatalf("t2d output %d want 8", st.Spatial[1].Extent)
	}
}

func TestDepthwiseNoChannelReduce(t *testing.T) {
	g := DepthwiseConv2D("dw", 1, 56, 56, 64, 3, 1, 1)
	st := g.Stages[0]
	if len(st.Reduce) != 2 {
		t.Fatalf("depthwise reduce axes %d want 2 (kernel only)", len(st.Reduce))
	}
}

func TestSoftmaxTwoStages(t *testing.T) {
	g := Softmax("s", 128, 128)
	if len(g.Stages) != 2 {
		t.Fatalf("softmax stages %d", len(g.Stages))
	}
	if g.Stages[0].Kind != texpr.ReduceLight || g.Stages[1].Kind != texpr.Elementwise {
		t.Fatal("softmax stage kinds wrong")
	}
	if got := g.Consumers(0); len(got) != 1 {
		t.Fatal("norm stage must consume reduce stage")
	}
}

func TestGEMMEpilogueFusion(t *testing.T) {
	g := GEMMEpilogue("ge", 1, 64, 64, 64, 4)
	if len(g.Stages) != 2 {
		t.Fatalf("stages %d", len(g.Stages))
	}
	if !g.Stages[1].CanInline {
		t.Fatal("epilogue must be inlinable")
	}
	if g.MainStage() != 0 {
		t.Fatal("matmul must dominate FLOPs")
	}
}

func TestTable6Complete(t *testing.T) {
	cfgs := Table6()
	if len(cfgs) != 28 {
		t.Fatalf("Table 6 has %d configs, want 7 categories × 4", len(cfgs))
	}
	perCat := map[string]int{}
	for _, c := range cfgs {
		perCat[c.Category]++
		for _, batch := range []int{1, 16} {
			sg := c.Build(batch)
			if sg.FLOPs() <= 0 {
				t.Fatalf("%s %v: non-positive FLOPs", c.Category, c.Params)
			}
			for _, st := range sg.Stages {
				if err := st.Validate(); err != nil {
					t.Fatalf("%s %v: %v", c.Category, c.Params, err)
				}
			}
		}
	}
	for _, cat := range OperatorCategories() {
		if perCat[cat] != 4 {
			t.Fatalf("category %s has %d configs", cat, perCat[cat])
		}
	}
}

func TestSuiteFor(t *testing.T) {
	if got := len(SuiteFor("GEMM-L", 1)); got != 4 {
		t.Fatalf("GEMM-L suite %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown category should panic")
		}
	}()
	SuiteFor("NOPE", 1)
}

func TestBERTInventory(t *testing.T) {
	net := BERT(1)
	if got := net.DistinctSubgraphs(); got != 10 {
		t.Fatalf("BERT distinct subgraphs %d, paper says 10", got)
	}
	// The four projection/FF GEMMs must dominate total FLOPs (the paper's
	// Table 4 attributes 87%+ to the top five subgraphs).
	var gemmFLOPs, total float64
	for _, sg := range net.Subgraphs {
		w := float64(sg.Weight) * sg.FLOPs()
		total += w
		switch sg.Name {
		case "GEMM-I", "GEMM-II", "GEMM-III", "GEMM-IV":
			gemmFLOPs += w
		}
	}
	if gemmFLOPs/total < 0.8 {
		t.Fatalf("GEMM share %.2f, want > 0.8", gemmFLOPs/total)
	}
	// Q/K/V projection appears 3× per layer.
	if net.Subgraphs[0].Weight != 36 {
		t.Fatalf("GEMM-I weight %d want 36", net.Subgraphs[0].Weight)
	}
}

func TestResNet50Inventory(t *testing.T) {
	net := ResNet50(1)
	if got := net.DistinctSubgraphs(); got != 24 {
		t.Fatalf("ResNet-50 distinct subgraphs %d, paper says 24", got)
	}
	for _, sg := range net.Subgraphs {
		if sg.Weight < 1 {
			t.Fatalf("%s weight %d", sg.Name, sg.Weight)
		}
	}
}

func TestMobileNetV2Inventory(t *testing.T) {
	net := MobileNetV2(1)
	if got := net.DistinctSubgraphs(); got != 21 {
		t.Fatalf("MobileNet-V2 distinct subgraphs %d want 21", got)
	}
}

func TestNetworksBatchScaling(t *testing.T) {
	for _, mk := range []func(int) *Network{BERT, ResNet50, MobileNetV2} {
		n1, n16 := mk(1), mk(16)
		var f1, f16 float64
		for i := range n1.Subgraphs {
			f1 += float64(n1.Subgraphs[i].Weight) * n1.Subgraphs[i].FLOPs()
			f16 += float64(n16.Subgraphs[i].Weight) * n16.Subgraphs[i].FLOPs()
		}
		if f16 < 10*f1 {
			t.Fatalf("%s: batch-16 work only %.1fx batch-1", n1.Name, f16/f1)
		}
	}
}

func TestNetworkTrialBudget(t *testing.T) {
	if NetworkTrialBudget("BERT-b1") != 12000 ||
		NetworkTrialBudget("ResNet50-b1") != 22000 ||
		NetworkTrialBudget("MobileNetV2-b16") != 16000 {
		t.Fatal("paper budgets wrong")
	}
	if NetworkTrialBudget("other") != 10000 {
		t.Fatal("default budget wrong")
	}
}

func TestTotalWeight(t *testing.T) {
	net := BERT(1)
	want := 0
	for _, sg := range net.Subgraphs {
		want += sg.Weight
	}
	if net.TotalWeight() != want {
		t.Fatal("TotalWeight mismatch")
	}
}

package core

import (
	"context"
	"math"

	"harl/internal/bandit"
	"harl/internal/hardware"
	"harl/internal/search"
	"harl/internal/tunelog"
	"harl/internal/workload"
	"harl/internal/xrand"
)

// Gradient-estimate constants of Eq. 3 (paper Table 5).
const (
	// GradAlpha weighs the measured improvement slope against the optimistic
	// potential term.
	GradAlpha = 0.2
	// GradBeta scales the similar-subgraph throughput bound.
	GradBeta = 2.0
	// CommOverheadSec is the per-subgraph-execution framework/communication
	// overhead separating the estimated from the measured end-to-end time
	// (Table 4's "Estimated HARL (sum)" vs "Measured HARL" rows).
	CommOverheadSec = 3e-6
)

// NetSnapshot records the tuner state after one round, for allocation and
// time-to-target analyses (Figures 1a, 9, 10).
type NetSnapshot struct {
	Round      int
	TaskIdx    int   // task tuned this round
	Trials     int   // cumulative measurement trials
	TaskTrials []int // per-task cumulative trials
	CostSec    float64
	// EstExec is Σ w_n·g_n after this round (+Inf until every task measured).
	EstExec float64
}

// NetworkTuner runs end-to-end tuning of a network: each round it selects a
// subgraph with the scheduler's task policy and runs one engine round on it.
type NetworkTuner struct {
	Net   *workload.Network
	Plat  *hardware.Platform
	Sched *Scheduler
	Meas  *hardware.Measurer
	Tasks []*search.Task

	// RoundTrials is the number of measurements per round (top-K size).
	RoundTrials int

	mab         *bandit.SWUCB
	rng         *xrand.RNG
	allocations []int       // rounds allocated per task
	gHist       [][]float64 // per task: weighted best exec after each of its rounds
	rrNext      int
	History     []NetSnapshot

	// OnProgress, when set, receives one search.Progress event per committed
	// round of RunCtx, built from committed state after the round (and its
	// dedup-fallback top-up, if any) lands. Set it before Run/RunCtx.
	OnProgress func(search.Progress)
}

// NewNetworkTuner builds a tuner with a shared measurer across all subgraph
// tasks (search time accumulates globally, as on a real tuning box).
func NewNetworkTuner(net *workload.Network, plat *hardware.Platform, sched *Scheduler, roundTrials int, seed uint64) *NetworkTuner {
	rng := xrand.New(seed)
	sim := hardware.NewSimulator(plat)
	meas := hardware.NewMeasurer(sim, rng.Split())
	nt := &NetworkTuner{
		Net:         net,
		Plat:        plat,
		Sched:       sched,
		Meas:        meas,
		RoundTrials: roundTrials,
		rng:         rng,
	}
	for _, sg := range net.Subgraphs {
		nt.Tasks = append(nt.Tasks, search.NewTask(sg, plat, meas, rng.Split()))
	}
	nt.allocations = make([]int, len(nt.Tasks))
	nt.gHist = make([][]float64, len(nt.Tasks))
	if sched.Policy == PolicySWUCB {
		nt.mab = bandit.NewSWUCB(len(nt.Tasks), 0.25, 256, rng.Split())
	}
	return nt
}

// Trials returns the cumulative charged-trial count across all tasks — the
// budget spent. Without adaptive sampling it equals the shared measurer's
// committed measurement count; with it, backfilled candidates charge trials
// without reaching the measurer, and Measured carries the real count. (The
// budget loop runs on charged trials so sampled and unsampled runs explore
// the same number of candidates per budget.)
func (nt *NetworkTuner) Trials() int {
	total := 0
	for _, t := range nt.Tasks {
		total += t.Trials
	}
	return total
}

// Measured returns the cumulative count of schedules actually measured.
func (nt *NetworkTuner) Measured() int {
	total := 0
	for _, t := range nt.Tasks {
		total += t.Measured
	}
	return total
}

// MeasureSaved returns the cumulative count of charged trials whose
// measurement the adaptive sampler skipped.
func (nt *NetworkTuner) MeasureSaved() int {
	total := 0
	for _, t := range nt.Tasks {
		total += t.MeasureSaved
	}
	return total
}

// AttachJournal wires every task's measurement callback to the journal.
// Rounds are sequential across tasks in the serial tuner, so the record
// sequence is simply the global commit order.
func (nt *NetworkTuner) AttachJournal(jr *tunelog.Journal, seed uint64) {
	for _, t := range nt.Tasks {
		attachJournal(t, jr, nt.Sched.Name, seed)
	}
}

// WarmStart seeds every task from its best cached record and returns the
// number of tasks seeded.
func (nt *NetworkTuner) WarmStart(db *tunelog.Database) int {
	n := 0
	for _, t := range nt.Tasks {
		if warmStartTask(t, db) {
			n++
		}
	}
	return n
}

// SeedCostModels applies the hooks' checkpointed model and/or pretraining
// journal to every task before Run, returning the number of tasks whose cost
// model starts with offline knowledge.
func (nt *NetworkTuner) SeedCostModels(hooks TuneHooks) int {
	return seedCostModels(nt.Tasks, hooks)
}

// SetWorkers gives every task a shared worker pool for intra-round
// parallelism (trial evaluation and cost-model scoring). Rounds stay
// sequential across tasks, and results are byte-identical for every worker
// count.
func (nt *NetworkTuner) SetWorkers(n int) {
	pool := search.NewParallelPool(n)
	for _, t := range nt.Tasks {
		t.Pool = pool
	}
}

// EstimatedExec returns Σ w_n·g_n, the estimated end-to-end execution time
// (+Inf until every subgraph has at least one measured schedule).
func (nt *NetworkTuner) EstimatedExec() float64 {
	total := 0.0
	for _, t := range nt.Tasks {
		g := t.WeightedBestExec()
		if math.IsInf(g, 1) {
			return math.Inf(1)
		}
		total += g
	}
	return total
}

// MeasuredExec returns the modeled measured end-to-end time: the estimate
// plus per-subgraph-execution communication overhead.
func (nt *NetworkTuner) MeasuredExec() float64 {
	est := nt.EstimatedExec()
	if math.IsInf(est, 1) {
		return est
	}
	return est + float64(nt.Net.TotalWeight())*CommOverheadSec
}

// TaskTrials returns a copy of the per-task cumulative trial counts.
func (nt *NetworkTuner) TaskTrials() []int {
	out := make([]int, len(nt.Tasks))
	for i, t := range nt.Tasks {
		out[i] = t.Trials
	}
	return out
}

// gradientEstimate computes the Eq. 3 benefit score of optimizing task a
// next (larger = more expected end-to-end gain); the computation is shared
// with the concurrent tuner (search.GradientEstimate).
func (nt *NetworkTuner) gradientEstimate(a int) float64 {
	return search.GradientEstimate(nt.Tasks, a, nt.gHist[a], nt.allocations[a], GradAlpha, GradBeta)
}

// selectTask applies the scheduler's task policy.
func (nt *NetworkTuner) selectTask() int {
	// Every task must be visited once before estimates make sense.
	for a, n := range nt.allocations {
		if n == 0 {
			return a
		}
	}
	switch nt.Sched.Policy {
	case PolicyRoundRobin:
		a := nt.rrNext
		nt.rrNext = (nt.rrNext + 1) % len(nt.Tasks)
		return a
	case PolicyGreedyGradient:
		best, bestV := 0, math.Inf(-1)
		for a := range nt.Tasks {
			if v := nt.gradientEstimate(a); v > bestV {
				best, bestV = a, v
			}
		}
		return best
	case PolicySWUCB:
		return nt.mab.Select()
	}
	return 0
}

// Round runs one tuning round and returns the index of the tuned task.
func (nt *NetworkTuner) Round() int {
	a := nt.selectTask()
	t := nt.Tasks[a]
	// Transfer warm-start candidates are measured ahead of the task's first
	// engine round; a no-op afterwards.
	t.FlushSeedCandidates()
	nt.Sched.Engine.RunRound(t, nt.RoundTrials)
	nt.allocations[a]++
	nt.gHist[a] = append(nt.gHist[a], t.WeightedBestExec())

	if nt.mab != nil {
		// Arm reward: the realized gradient estimate, normalized by the
		// current total so rewards stay scale-free (Eq. 4's R_t).
		r := nt.gradientEstimate(a)
		if est := nt.EstimatedExec(); !math.IsInf(est, 1) && est > 0 && !math.IsInf(r, 1) {
			nt.mab.Update(a, r/est)
		} else {
			nt.mab.Update(a, 0)
		}
	}
	nt.History = append(nt.History, NetSnapshot{
		Round:      len(nt.History),
		TaskIdx:    a,
		Trials:     nt.Trials(),
		TaskTrials: nt.TaskTrials(),
		CostSec:    nt.Meas.CostSec(),
		EstExec:    nt.EstimatedExec(),
	})
	return a
}

// Run tunes until the measurement budget is exhausted.
func (nt *NetworkTuner) Run(budgetTrials int) {
	nt.RunCtx(context.Background(), budgetTrials)
}

// RunCtx is Run with cooperative cancellation, checked at round boundaries:
// a cancelled session finishes the in-flight round (its measurements commit
// and reach any attached journal) and stops instead of selecting another
// task. It returns true if the context cut the run short; an uncancelled run
// takes exactly the same path as Run.
func (nt *NetworkTuner) RunCtx(ctx context.Context, budgetTrials int) bool {
	round := 0
	for nt.Trials() < budgetTrials {
		if ctx.Err() != nil {
			return true
		}
		before := nt.Trials()
		a := nt.Round()
		if nt.Trials() == before {
			// The selected task's round was fully deduplicated; force random
			// exploration on it so the budget always completes.
			search.Tune(search.NewRandom(), nt.Tasks[a], nt.Tasks[a].Trials+nt.RoundTrials, nt.RoundTrials)
		}
		if nt.OnProgress != nil {
			t := nt.Tasks[a]
			nt.OnProgress(search.Progress{
				Task:          a,
				Wave:          round,
				Allocation:    nt.allocations[a],
				TaskTrials:    t.Trials,
				TotalTrials:   nt.Trials(),
				TaskMeasured:  t.Measured,
				TotalMeasured: nt.Measured(),
				BestExec:      t.BestExec,
				RunBest:       nt.EstimatedExec(),
				CostSec:       nt.Meas.CostSec(),
			})
		}
		round++
	}
	return false
}

// SnapshotAtExec returns the earliest snapshot whose estimated execution time
// reached the target, or the last snapshot if never reached.
func (nt *NetworkTuner) SnapshotAtExec(target float64) (NetSnapshot, bool) {
	for _, s := range nt.History {
		if s.EstExec <= target {
			return s, true
		}
	}
	if len(nt.History) == 0 {
		return NetSnapshot{}, false
	}
	return nt.History[len(nt.History)-1], false
}

// TaskIndexByName finds a task by its subgraph name, or -1.
func (nt *NetworkTuner) TaskIndexByName(name string) int {
	for i, t := range nt.Tasks {
		if t.Graph.Name == name {
			return i
		}
	}
	return -1
}

// SubgraphBreakdown describes one row of Table 4.
type SubgraphBreakdown struct {
	Name         string
	Weight       int
	BestExec     float64 // noise-free time of one subgraph execution
	WeightedExec float64
	Contribution float64 // share of Σ w·g
}

// Breakdown returns the per-subgraph execution-time decomposition of the
// tuned network, sorted as stored (network inventory order).
func (nt *NetworkTuner) Breakdown() []SubgraphBreakdown {
	total := nt.EstimatedExec()
	out := make([]SubgraphBreakdown, len(nt.Tasks))
	for i, t := range nt.Tasks {
		b := SubgraphBreakdown{Name: t.Graph.Name, Weight: t.Graph.Weight}
		if t.Best != nil {
			b.BestExec = nt.Meas.Sim.Exec(t.Best)
			b.WeightedExec = float64(t.Graph.Weight) * b.BestExec
			if !math.IsInf(total, 1) && total > 0 {
				b.Contribution = b.WeightedExec / total
			}
		}
		out[i] = b
	}
	return out
}

// Package core orchestrates the HARL auto-scheduler: it wires workloads,
// platforms, measurement, cost models and search engines into operator-level
// tuning jobs (Section 6.2) and end-to-end network tuning jobs with
// subgraph-level selection (Section 6.3). The package also defines the named
// scheduler presets compared throughout the paper:
//
//	harl             sketch/subgraph SW-UCB + PPO parameters + adaptive stopping
//	hierarchical-rl  HARL without the adaptive-stopping module (Fig. 7a)
//	harl-nomab       HARL with Ansor's greedy subgraph allocation (Table 4)
//	ansor            greedy gradient task scheduler + evolutionary search
//	flextensor       fixed-sketch fixed-length RL (Fig. 1c)
//	autotvm          simulated annealing
//	random           uniform random sampling
package core

import (
	"context"
	"fmt"

	"harl/internal/costmodel"
	"harl/internal/hardware"
	"harl/internal/pretrain"
	"harl/internal/schedule"
	"harl/internal/search"
	"harl/internal/texpr"
	"harl/internal/tunelog"
	"harl/internal/xrand"
)

// TaskPolicy selects which subgraph (task) to optimize each round.
type TaskPolicy int

const (
	// PolicyGreedyGradient is Ansor's deterministic argmax over the Eq. 3
	// gradient estimate (the "Greedy Allocation" row of Table 1).
	PolicyGreedyGradient TaskPolicy = iota
	// PolicySWUCB is HARL's non-stationary bandit over subgraphs, using the
	// same gradient estimate as the arm reward (Eq. 1/3/4).
	PolicySWUCB
	// PolicyRoundRobin cycles through tasks (diagnostics only).
	PolicyRoundRobin
)

func (p TaskPolicy) String() string {
	switch p {
	case PolicyGreedyGradient:
		return "greedy-gradient"
	case PolicySWUCB:
		return "sw-ucb"
	case PolicyRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("TaskPolicy(%d)", int(p))
}

// Scheduler bundles a parameter-search engine with a subgraph-selection
// policy — one named system of the paper's comparison.
type Scheduler struct {
	Name   string
	Engine search.Engine
	Policy TaskPolicy
}

// EngineFactory returns a constructor for the preset's search engine plus
// its subgraph-selection policy. The factory builds a fresh engine per call:
// engine state is keyed per task and must never be shared across goroutines,
// so concurrent tuners (search.MultiTuner) instantiate one engine per task.
func EngineFactory(name string) (func() search.Engine, TaskPolicy, error) {
	switch name {
	case "harl":
		return func() search.Engine { return search.NewHARL(search.DefaultHARLConfig()) }, PolicySWUCB, nil
	case "hierarchical-rl":
		return func() search.Engine {
			cfg := search.DefaultHARLConfig()
			cfg.AdaptiveStopping = false
			return search.NewHARL(cfg)
		}, PolicySWUCB, nil
	case "harl-nomab":
		return func() search.Engine { return search.NewHARL(search.DefaultHARLConfig()) }, PolicyGreedyGradient, nil
	case "ansor":
		return func() search.Engine { return search.NewAnsor(search.DefaultAnsorConfig()) }, PolicyGreedyGradient, nil
	case "flextensor":
		return func() search.Engine { return search.NewFlextensor(search.DefaultFlextensorConfig()) }, PolicyRoundRobin, nil
	case "autotvm":
		return func() search.Engine { return search.NewAutoTVM(search.DefaultAutoTVMConfig()) }, PolicyGreedyGradient, nil
	case "random":
		return func() search.Engine { return search.NewRandom() }, PolicyRoundRobin, nil
	}
	return nil, 0, fmt.Errorf("core: unknown scheduler %q", name)
}

// NewScheduler builds a fresh scheduler preset by name. Engines carry
// per-task state, so every tuning run should use a new instance.
func NewScheduler(name string) (*Scheduler, error) {
	mk, policy, err := EngineFactory(name)
	if err != nil {
		return nil, err
	}
	return &Scheduler{Name: name, Engine: mk(), Policy: policy}, nil
}

// MustScheduler is NewScheduler that panics on unknown names.
func MustScheduler(name string) *Scheduler {
	s, err := NewScheduler(name)
	if err != nil {
		panic(err)
	}
	return s
}

// SchedulerNames lists every available preset.
func SchedulerNames() []string {
	return []string{"harl", "hierarchical-rl", "harl-nomab", "ansor", "flextensor", "autotvm", "random"}
}

// OperatorResult summarizes one operator tuning run.
type OperatorResult struct {
	Scheduler string
	// BestExec is the noise-free simulator time of the best found schedule.
	BestExec float64
	// BestGFLOPS is the corresponding throughput.
	BestGFLOPS float64
	Trials     int
	// Measured is how many schedules were actually measured; MeasureSaved how
	// many charged trials the adaptive sampler backfilled instead of
	// measuring (Trials = Measured + MeasureSaved).
	Measured     int
	MeasureSaved int
	// CostSec is the total simulated search time.
	CostSec float64
	Task    *search.Task
	// WarmStarted reports whether a cached record seeded the run.
	WarmStarted bool
	// WarmTransfer names the donor registry key (workload@target) whose
	// knowledge warm-started the run via cross-key transfer, if any.
	WarmTransfer string
	// CostSamples and CostRefits are the cost model's final training-set size
	// and refit count; Pretrained reports whether the model carried offline
	// knowledge (checkpoint or journal replay) before the first round.
	CostSamples int
	CostRefits  int
	Pretrained  bool
	// Cancelled reports that the run's context was cancelled before the
	// budget was spent: the result carries the partial best found so far, and
	// every committed measurement reached the journal hooks.
	Cancelled bool
}

// TuneHooks wires a tuning run to the persistent tuning-record journal
// (internal/tunelog). The zero value disables both directions.
type TuneHooks struct {
	// Journal, when non-nil, receives one record per committed measurement,
	// in commit order (deterministic for every worker count).
	Journal *tunelog.Journal
	// Warm, when non-nil, seeds each task from its best cached record before
	// tuning starts, so an already-tuned workload converges immediately and
	// its best schedule is never re-measured.
	Warm *tunelog.Database
	// Model, when non-nil, is a checkpointed cost model cloned into every
	// task before search starts (each task keeps refitting its own copy).
	// The concrete type here is constructor wiring: past this point the
	// search layers see only the costmodel.CostModel interface.
	Model *costmodel.Model
	// Pretrain, when non-nil, replays each task's matching journal records
	// into its cost model before search starts — model-only: unlike Warm it
	// seeds no schedules and skips no measurements, it just makes the reward
	// signal and the top-K ranking informed from round one.
	Pretrain *tunelog.Database
	// Progress, when non-nil, receives one event per committed round (wave)
	// at round/wave barriers, in commit order — worker-invariant like the
	// journal. It runs synchronously on the tuning goroutine.
	Progress func(search.Progress)
	// Evaluators, when non-nil, supplies each task's remote batch evaluator
	// (the measurement-fleet client; see internal/fleet.Pool). A nil return
	// for a given task means that task measures in-process. Remote
	// evaluation reproduces the in-process values bit-exactly, so the hook
	// changes where measurement runs, never what the journal records.
	Evaluators EvaluatorProvider
	// Transfer, when non-nil, supplies cross-key warm starts for tasks whose
	// own (workload, target) registry key missed: a donor cost model cloned
	// into the task plus the donor's best schedule queued as an unmeasured
	// first candidate. Donor selection is deterministic (see
	// registry.SelectDonor), so transfer preserves the worker-invariance
	// contract.
	Transfer TransferProvider
	// Sampling, when enabled, attaches an adaptive measurement sampler to
	// every task: engine rounds cluster their candidates in feature space and
	// measure only cluster representatives (see search.SamplerConfig).
	Sampling search.SamplerConfig
}

// TransferSeed is what a transfer donor contributes to a cold task: a model
// fitted over donor samples (cloned per task; nil to skip model seeding), an
// unmeasured warm-start candidate reconstructed from the donor's best
// serialized steps, and the donor's registry key for reporting.
type TransferSeed struct {
	Model *costmodel.Model
	Seed  *schedule.Schedule
	Donor string
}

// TransferProvider resolves cross-key transfer seeds. A nil result means no
// usable donor (including: the task's own key hit, so transfer is moot).
type TransferProvider interface {
	TransferFor(t *search.Task) *TransferSeed
}

// EvaluatorProvider hands out per-task remote measurement clients. It is an
// interface (satisfied by fleet.Pool) so core does not depend on the fleet's
// HTTP machinery.
type EvaluatorProvider interface {
	// EvaluatorFor returns the task's remote evaluator, or nil (a true
	// interface nil) when the task should measure in-process.
	EvaluatorFor(t *search.Task) search.BatchEvaluator
}

// seedCostModel applies the hooks' per-task stages: the remote measurement
// evaluator if a fleet is attached, then model-in and pretrain (in that
// order: a loaded checkpoint first, then the journal replay on top). Knowledge only transfers between structurally compatible workloads:
// a model whose feature dimension differs from the task's (axis counts
// differ across workload structures) is not installed, and the task keeps
// its own cold model.
func seedCostModel(t *search.Task, hooks TuneHooks) {
	if hooks.Evaluators != nil {
		t.Remote = hooks.Evaluators.EvaluatorFor(t)
	}
	if hooks.Sampling.Enabled {
		t.Sampler = search.NewAdaptiveSampler(hooks.Sampling)
	}
	if hooks.Model != nil {
		if d := hooks.Model.Dim(); d == 0 || d == t.FeatureDim() {
			t.SetCostModel(hooks.Model.Clone())
		}
	}
	if hooks.Pretrain != nil {
		pretrain.SeedTask(hooks.Pretrain, t)
	}
	if hooks.Transfer != nil {
		if ts := hooks.Transfer.TransferFor(t); ts != nil {
			// A donor model only fills a cold slot: explicit checkpoints and
			// journal replays above carry key-exact knowledge and win.
			if ts.Model != nil && t.Cost.Len() == 0 {
				if d := ts.Model.Dim(); d == 0 || d == t.FeatureDim() {
					t.SetCostModel(ts.Model.Clone())
				}
			}
			t.SeedCandidate(ts.Seed)
			t.TransferDonor = ts.Donor
		}
	}
}

// seedCostModels seeds every task and counts the ones that start pretrained.
func seedCostModels(tasks []*search.Task, hooks TuneHooks) int {
	n := 0
	for _, t := range tasks {
		seedCostModel(t, hooks)
		if t.Pretrained {
			n++
		}
	}
	return n
}

// MergedCostModel folds tasks' training samples — in task order — into one
// fresh model and refits it: the checkpoint artifact of a network tuning
// run, usable to pretrain any later run on structurally compatible
// workloads. Feature dimensions vary across workload structures and a
// training matrix must stay rectangular, so the merge keeps the dimension
// that carries the most samples across the task set (ties to the earlier
// task); tasks of other dimensions, and tasks whose model is not the
// concrete GBDT, contribute nothing.
func MergedCostModel(tasks []*search.Task) *costmodel.Model {
	bestDim, bestN := 0, -1
	counts := make(map[int]int)
	for _, t := range tasks {
		cm, ok := t.Cost.(*costmodel.Model)
		if !ok {
			continue
		}
		d := cm.Dim()
		counts[d] += cm.Len()
		if counts[d] > bestN {
			bestDim, bestN = d, counts[d]
		}
	}
	m := costmodel.New(costmodel.DefaultParams())
	for _, t := range tasks {
		if cm, ok := t.Cost.(*costmodel.Model); ok && cm.Dim() == bestDim {
			m.Merge(cm)
		}
	}
	m.Refit()
	return m
}

// attachJournal wires a task's measurement callback to the journal. The
// scheduler preset name, target and run seed are stamped into every record;
// the workload fingerprint is hashed once, not per trial.
func attachJournal(t *search.Task, jr *tunelog.Journal, scheduler string, seed uint64) {
	fp, target := t.Graph.Fingerprint(), t.Plat.Name
	t.OnMeasure = func(s *schedule.Schedule, exec float64, trial int) {
		jr.Append(tunelog.NewRecordFP(fp, target, scheduler, s, exec, trial, seed))
	}
}

// warmStartTask seeds a task from the database's best record for its
// (workload fingerprint, target) key, reporting whether a usable record was
// found. Records whose steps no longer deserialize against the regenerated
// sketch list (a foreign or stale log) are ignored.
func warmStartTask(t *search.Task, db *tunelog.Database) bool {
	rec, ok := db.Best(t.Graph.Fingerprint(), t.Plat.Name)
	if !ok {
		return false
	}
	s, err := rec.Schedule(t.Sketches)
	if err != nil {
		return false
	}
	t.WarmStart(s, rec.ExecSec)
	return true
}

// TuneOperator runs a scheduler preset on a single subgraph with the given
// measurement budget, measuring measureK candidates per round.
func TuneOperator(sg *texpr.Subgraph, plat *hardware.Platform, sched *Scheduler, budget, measureK int, seed uint64) *OperatorResult {
	return TuneOperatorWorkers(sg, plat, sched, budget, measureK, seed, 1)
}

// TuneOperatorWorkers is TuneOperator with intra-round parallelism: trial
// evaluation and cost-model scoring fan out across a pool of the given width
// (<= 0 selects runtime.NumCPU()). Results are byte-identical for every
// worker count; only wall-clock time changes.
func TuneOperatorWorkers(sg *texpr.Subgraph, plat *hardware.Platform, sched *Scheduler, budget, measureK int, seed uint64, workers int) *OperatorResult {
	return TuneOperatorJournaled(sg, plat, sched, budget, measureK, seed, workers, TuneHooks{})
}

// TuneOperatorJournaled is TuneOperatorWorkers with journal hooks: measured
// trials are appended to hooks.Journal in commit order, and hooks.Warm seeds
// the task from its best cached record before the engine runs. A budget of 0
// with a warm hit performs no measurements and returns the cached best — the
// pure cache-replay path.
func TuneOperatorJournaled(sg *texpr.Subgraph, plat *hardware.Platform, sched *Scheduler, budget, measureK int, seed uint64, workers int, hooks TuneHooks) *OperatorResult {
	return TuneOperatorSession(context.Background(), sg, plat, sched, budget, measureK, seed, workers, hooks)
}

// TuneOperatorSession is TuneOperatorJournaled as a cancellable session: the
// context is checked at round boundaries, so cancellation stops the search
// after the in-flight round commits — the journal hook has received every
// measurement, the task's cost model and best are consistent, and the result
// carries the partial best with Cancelled set.
func TuneOperatorSession(ctx context.Context, sg *texpr.Subgraph, plat *hardware.Platform, sched *Scheduler, budget, measureK int, seed uint64, workers int, hooks TuneHooks) *OperatorResult {
	rng := xrand.New(seed)
	sim := hardware.NewSimulator(plat)
	meas := hardware.NewMeasurer(sim, rng.Split())
	task := search.NewTask(sg, plat, meas, rng.Split())
	if workers != 1 {
		task.Pool = search.NewParallelPool(workers)
	}
	seedCostModel(task, hooks)
	warm := false
	if hooks.Warm != nil {
		warm = warmStartTask(task, hooks.Warm)
	}
	if hooks.Journal != nil {
		attachJournal(task, hooks.Journal, sched.Name, seed)
	}
	cancelled := search.TuneSession(ctx, sched.Engine, task, budget, measureK, hooks.Progress)

	res := &OperatorResult{
		Scheduler:    sched.Name,
		Trials:       task.Trials,
		Measured:     task.Measured,
		MeasureSaved: task.MeasureSaved,
		CostSec:      meas.CostSec(),
		Task:         task,
		WarmStarted:  warm,
		WarmTransfer: task.TransferDonor,
		CostSamples:  task.Cost.Len(),
		CostRefits:   task.CostRefits,
		Pretrained:   task.Pretrained,
		Cancelled:    cancelled,
	}
	if task.Best != nil {
		res.BestExec = sim.Exec(task.Best)
		res.BestGFLOPS = sg.FLOPs() / res.BestExec / 1e9
	}
	return res
}

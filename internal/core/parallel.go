package core

import (
	"context"
	"math"

	"harl/internal/hardware"
	"harl/internal/search"
	"harl/internal/tunelog"
	"harl/internal/workload"
)

// ParallelNetworkTuner tunes a network's subgraph tasks concurrently with
// search.MultiTuner: every wave it picks a set of subgraphs with the
// preset's allocation policy (the gradient estimate of Eq. 3, or round-robin
// for the presets that use it) and runs one engine round on each selected
// task in parallel across a worker pool. Unlike NetworkTuner — which
// interleaves one round at a time against a shared measurer — every task
// owns its measurer and RNG stream, so results depend only on the seed and
// configuration, never on the worker count.
//
// The SW-UCB subgraph bandit of the serial tuner is subsumed here by the
// wave-level gradient allocation: with several tasks advancing per wave the
// non-stationary exploration the bandit provides is already covered by the
// unvisited-first and slope terms of the estimate.
type ParallelNetworkTuner struct {
	Net *workload.Network
	MT  *search.MultiTuner
	// SchedName is the scheduler preset name stamped into journal records.
	SchedName string
}

// NewParallelNetworkTuner builds the concurrent tuner for a scheduler preset
// name. roundTrials is the measured-candidate count per task round; workers
// sizes the pool (<= 0 selects runtime.NumCPU()).
func NewParallelNetworkTuner(net *workload.Network, plat *hardware.Platform, schedName string, roundTrials int, seed uint64, workers int) (*ParallelNetworkTuner, error) {
	mk, policy, err := EngineFactory(schedName)
	if err != nil {
		return nil, err
	}
	cfg := search.DefaultMultiTunerConfig()
	cfg.RoundTrials = roundTrials
	cfg.Workers = workers
	cfg.GradAlpha, cfg.GradBeta = GradAlpha, GradBeta
	if policy == PolicyRoundRobin {
		cfg.Policy = search.AllocRoundRobin
	}
	tasks := search.NewTaskSet(net.Subgraphs, plat, seed)
	return &ParallelNetworkTuner{
		Net:       net,
		MT:        search.NewMultiTuner(tasks, mk, cfg),
		SchedName: schedName,
	}, nil
}

// AttachJournal routes every committed measurement to the journal through the
// MultiTuner's wave-barrier fan-in: per-task records buffer during the wave
// and drain in selection order, so the journal is byte-identical for every
// worker count.
func (p *ParallelNetworkTuner) AttachJournal(jr *tunelog.Journal, seed uint64) {
	fps := make([]string, len(p.MT.Tasks))
	for i, t := range p.MT.Tasks {
		fps[i] = t.Graph.Fingerprint()
	}
	p.MT.SetRecorder(func(r search.TrialRecord) {
		t := p.MT.Tasks[r.Task]
		jr.Append(tunelog.NewRecordFP(fps[r.Task], t.Plat.Name, p.SchedName, r.Sched, r.Exec, r.Trial, seed))
	})
}

// SetProgress routes per-task progress events out of the MultiTuner's wave
// barriers — emitted in wave-selection order from committed state, so the
// event stream is byte-identical for every worker count (the journal's
// contract). Call before Run/RunCtx.
func (p *ParallelNetworkTuner) SetProgress(fn func(search.Progress)) {
	p.MT.OnProgress = fn
}

// WarmStart seeds every task from its best cached record and returns the
// number of tasks seeded.
func (p *ParallelNetworkTuner) WarmStart(db *tunelog.Database) int {
	n := 0
	for _, t := range p.MT.Tasks {
		if warmStartTask(t, db) {
			n++
		}
	}
	return n
}

// SeedCostModels applies the hooks' checkpointed model and/or pretraining
// journal to every task before Run, returning the number of tasks whose cost
// model starts with offline knowledge. Seeding happens before the first wave
// on committed state, so the determinism contract (worker-count invariance)
// is untouched.
func (p *ParallelNetworkTuner) SeedCostModels(hooks TuneHooks) int {
	return seedCostModels(p.MT.Tasks, hooks)
}

// Run tunes until the measurement budget is exhausted.
func (p *ParallelNetworkTuner) Run(budgetTrials int) { p.MT.Run(budgetTrials) }

// RunCtx is Run with cooperative cancellation at wave barriers (see
// search.MultiTuner.RunCtx); it returns true if the context cut the run
// short.
func (p *ParallelNetworkTuner) RunCtx(ctx context.Context, budgetTrials int) bool {
	return p.MT.RunCtx(ctx, budgetTrials)
}

// Trials returns the cumulative charged-trial count across all tasks.
func (p *ParallelNetworkTuner) Trials() int { return p.MT.Trials() }

// Measured returns the cumulative count of schedules actually measured.
func (p *ParallelNetworkTuner) Measured() int { return p.MT.Measured() }

// MeasureSaved returns the cumulative count of charged trials whose
// measurement the adaptive sampler skipped.
func (p *ParallelNetworkTuner) MeasureSaved() int { return p.MT.MeasureSaved() }

// CostSec returns the total simulated search time across all tasks.
func (p *ParallelNetworkTuner) CostSec() float64 { return p.MT.CostSec() }

// EstimatedExec returns Σ w_n·g_n (+Inf until every subgraph measured).
func (p *ParallelNetworkTuner) EstimatedExec() float64 { return p.MT.EstimatedExec() }

// MeasuredExec adds the per-subgraph-execution communication overhead to the
// estimate, matching NetworkTuner's modeled end-to-end time.
func (p *ParallelNetworkTuner) MeasuredExec() float64 {
	est := p.EstimatedExec()
	if math.IsInf(est, 1) {
		return est
	}
	return est + float64(p.Net.TotalWeight())*CommOverheadSec
}

// Breakdown returns the per-subgraph execution-time decomposition, matching
// NetworkTuner.Breakdown.
func (p *ParallelNetworkTuner) Breakdown() []SubgraphBreakdown {
	total := p.EstimatedExec()
	out := make([]SubgraphBreakdown, len(p.MT.Tasks))
	for i, t := range p.MT.Tasks {
		b := SubgraphBreakdown{Name: t.Graph.Name, Weight: t.Graph.Weight}
		if t.Best != nil {
			b.BestExec = t.Meas.Sim.Exec(t.Best)
			b.WeightedExec = float64(t.Graph.Weight) * b.BestExec
			if !math.IsInf(total, 1) && total > 0 {
				b.Contribution = b.WeightedExec / total
			}
		}
		out[i] = b
	}
	return out
}

package core

import (
	"math"
	"testing"

	"harl/internal/hardware"
	"harl/internal/workload"
)

func TestSchedulerPresets(t *testing.T) {
	for _, name := range SchedulerNames() {
		s, err := NewScheduler(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name != name || s.Engine == nil {
			t.Fatalf("%s: malformed scheduler", name)
		}
	}
	if _, err := NewScheduler("nope"); err == nil {
		t.Fatal("unknown scheduler must error")
	}
}

func TestSchedulerPolicies(t *testing.T) {
	// The paper's Table 1: Ansor allocates greedily, HARL uses the MAB;
	// the no-MAB ablation is HARL's engine with the greedy policy.
	if MustScheduler("ansor").Policy != PolicyGreedyGradient {
		t.Fatal("ansor policy")
	}
	if MustScheduler("harl").Policy != PolicySWUCB {
		t.Fatal("harl policy")
	}
	if MustScheduler("harl-nomab").Policy != PolicyGreedyGradient {
		t.Fatal("harl-nomab policy")
	}
}

func TestTuneOperatorBasics(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	res := TuneOperator(sg, hardware.CPUXeon6226R(), MustScheduler("random"), 48, 16, 1)
	if res.Trials < 48 {
		t.Fatalf("trials %d", res.Trials)
	}
	if res.BestExec <= 0 || res.BestGFLOPS <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.CostSec <= 0 {
		t.Fatal("no search time accounted")
	}
}

func TestTuneOperatorReproducible(t *testing.T) {
	sg := workload.GEMM("g", 1, 256, 256, 256)
	plat := hardware.CPUXeon6226R()
	a := TuneOperator(sg, plat, MustScheduler("ansor"), 48, 16, 42)
	b := TuneOperator(sg, plat, MustScheduler("ansor"), 48, 16, 42)
	if a.BestExec != b.BestExec || a.CostSec != b.CostSec {
		t.Fatalf("same seed diverged: %.6g vs %.6g", a.BestExec, b.BestExec)
	}
	c := TuneOperator(sg, plat, MustScheduler("ansor"), 48, 16, 43)
	if a.BestExec == c.BestExec && a.CostSec == c.CostSec {
		t.Fatal("different seeds produced identical runs")
	}
}

func newBERTTuner(t *testing.T, sched string, budget int) *NetworkTuner {
	t.Helper()
	nt := NewNetworkTuner(workload.BERT(1), hardware.CPUXeon6226R(), MustScheduler(sched), 16, 5)
	nt.Run(budget)
	return nt
}

func TestNetworkTunerRunsBudget(t *testing.T) {
	nt := newBERTTuner(t, "ansor", 400)
	if nt.Trials() < 400 {
		t.Fatalf("trials %d", nt.Trials())
	}
	est := nt.EstimatedExec()
	if math.IsInf(est, 1) || est <= 0 {
		t.Fatalf("estimated exec %g", est)
	}
	if nt.MeasuredExec() <= est {
		t.Fatal("measured must add communication overhead")
	}
	if len(nt.History) == 0 {
		t.Fatal("no snapshots recorded")
	}
}

func TestNetworkTunerVisitsEveryTask(t *testing.T) {
	nt := newBERTTuner(t, "harl", 400)
	for i, task := range nt.Tasks {
		if task.Trials == 0 {
			t.Fatalf("task %d (%s) never tuned", i, task.Graph.Name)
		}
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	nt := newBERTTuner(t, "ansor", 400)
	total := 0.0
	for _, b := range nt.Breakdown() {
		if b.Contribution < 0 {
			t.Fatalf("%s negative contribution", b.Name)
		}
		total += b.Contribution
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("contributions sum to %f", total)
	}
}

func TestSnapshotsMonotone(t *testing.T) {
	nt := newBERTTuner(t, "ansor", 400)
	prevTrials, prevCost := 0, 0.0
	bestEst := math.Inf(1)
	for _, s := range nt.History {
		if s.Trials < prevTrials || s.CostSec < prevCost {
			t.Fatal("snapshots must be monotone in trials and cost")
		}
		prevTrials, prevCost = s.Trials, s.CostSec
		if !math.IsInf(s.EstExec, 1) && s.EstExec < bestEst {
			bestEst = s.EstExec
		}
	}
	// The final estimate equals the best seen (best-so-far semantics via
	// per-task bests).
	if got := nt.History[len(nt.History)-1].EstExec; got > bestEst+1e-12 {
		t.Fatalf("final estimate %g worse than best %g", got, bestEst)
	}
}

func TestSnapshotAtExec(t *testing.T) {
	nt := newBERTTuner(t, "ansor", 400)
	final := nt.EstimatedExec()
	snap, ok := nt.SnapshotAtExec(final * 1.5)
	if !ok {
		t.Fatal("relaxed target must be reached")
	}
	if snap.EstExec > final*1.5 {
		t.Fatal("snapshot does not satisfy target")
	}
	if _, ok := nt.SnapshotAtExec(final / 100); ok {
		t.Fatal("impossible target reported reached")
	}
}

func TestGreedyConcentratesOnHeavyTasks(t *testing.T) {
	nt := newBERTTuner(t, "ansor", 600)
	trials := nt.TaskTrials()
	// The four big GEMMs dominate BERT's time; greedy must allocate more to
	// them than to the cheap elementwise subgraphs.
	heavy := trials[nt.TaskIndexByName("GEMM-I")] + trials[nt.TaskIndexByName("GEMM-III")] +
		trials[nt.TaskIndexByName("GEMM-IV")]
	light := trials[nt.TaskIndexByName("Element-wise-I")] + trials[nt.TaskIndexByName("Element-wise-II")] +
		trials[nt.TaskIndexByName("GEMM+Tanh")]
	if heavy <= light {
		t.Fatalf("greedy allocation heavy=%d light=%d", heavy, light)
	}
}

func TestTaskIndexByName(t *testing.T) {
	nt := NewNetworkTuner(workload.BERT(1), hardware.CPUXeon6226R(), MustScheduler("random"), 16, 1)
	if nt.TaskIndexByName("Softmax") < 0 {
		t.Fatal("Softmax not found")
	}
	if nt.TaskIndexByName("nope") != -1 {
		t.Fatal("unknown name must be -1")
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyGreedyGradient.String() != "greedy-gradient" ||
		PolicySWUCB.String() != "sw-ucb" ||
		PolicyRoundRobin.String() != "round-robin" {
		t.Fatal("policy strings wrong")
	}
}

package core

import (
	"bytes"
	"testing"

	"harl/internal/hardware"
	"harl/internal/tunelog"
	"harl/internal/workload"
)

// tuneWithJournal runs one journaled operator tuning job into a buffer.
func tuneWithJournal(t *testing.T, workers, budget int, warm *tunelog.Database) (*OperatorResult, []byte) {
	t.Helper()
	sg := workload.GEMM("g", 1, 128, 128, 128)
	var buf bytes.Buffer
	hooks := TuneHooks{Journal: tunelog.NewJournal(&buf), Warm: warm}
	res := TuneOperatorJournaled(sg, hardware.CPUXeon6226R(), MustScheduler("harl"), budget, 16, 5, workers, hooks)
	if err := hooks.Journal.Err(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

func TestOperatorJournalWorkerInvariance(t *testing.T) {
	// The journal is part of the determinism contract: workers=1 and
	// workers=8 must write byte-identical record sequences.
	_, j1 := tuneWithJournal(t, 1, 64, nil)
	_, j8 := tuneWithJournal(t, 8, 64, nil)
	if !bytes.Equal(j1, j8) {
		t.Fatalf("operator journals diverged between workers=1 and workers=8:\n%s\nvs\n%s", j1, j8)
	}
	if len(j1) == 0 {
		t.Fatal("journal empty")
	}
}

func TestOperatorJournalMatchesTrials(t *testing.T) {
	res, j := tuneWithJournal(t, 1, 48, nil)
	db := tunelog.NewDatabase()
	if err := db.Load(bytes.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	if db.Size() != res.Trials {
		t.Fatalf("journal has %d records for %d trials", db.Size(), res.Trials)
	}
	recs := db.Records()
	for i, r := range recs {
		if r.Trial != i+1 {
			t.Fatalf("record %d carries trial index %d", i, r.Trial)
		}
		if r.Scheduler != "harl" || r.Target != "cpu-xeon6226r" || r.Seed != 5 {
			t.Fatalf("record metadata %+v", r)
		}
	}
	// The best journal record must agree with the task's best measurement.
	best, ok := db.Best(recs[0].Workload, recs[0].Target)
	if !ok || best.ExecSec != res.Task.BestExec {
		t.Fatalf("journal best %v vs task best %v", best.ExecSec, res.Task.BestExec)
	}
}

func TestWarmStartRecoversBestExactly(t *testing.T) {
	// Tune with a journal, then warm-start a fresh run with budget 0: the
	// prior best must come back byte-identical (steps) with equal exec time,
	// without a single new measurement.
	res1, j := tuneWithJournal(t, 1, 64, nil)
	db := tunelog.NewDatabase()
	if err := db.Load(bytes.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	wantSteps := res1.Task.Best.MarshalSteps()

	res2, j2 := tuneWithJournal(t, 1, 0, db)
	if !res2.WarmStarted {
		t.Fatal("warm start missed the cached record")
	}
	if res2.Trials != 0 {
		t.Fatalf("replay run measured %d trials", res2.Trials)
	}
	if len(j2) != 0 {
		t.Fatalf("replay run journaled new records: %s", j2)
	}
	if got := res2.Task.Best.MarshalSteps(); got != wantSteps {
		t.Fatalf("recovered steps %q want %q", got, wantSteps)
	}
	if res2.Task.BestExec != res1.Task.BestExec {
		t.Fatalf("recovered exec %v want %v", res2.Task.BestExec, res1.Task.BestExec)
	}
	if res2.BestExec != res1.BestExec {
		t.Fatalf("noise-free exec %v want %v", res2.BestExec, res1.BestExec)
	}
}

func TestWarmStartNeverRemeasuresCachedBest(t *testing.T) {
	res1, j := tuneWithJournal(t, 1, 64, nil)
	db := tunelog.NewDatabase()
	if err := db.Load(bytes.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	wantSteps := res1.Task.Best.MarshalSteps()

	// Continue tuning from the cache with a real budget: the cached best is
	// marked measured, so it must never be re-measured (and the final best
	// can only be equal or better).
	res2, j2 := tuneWithJournal(t, 1, 64, db)
	if !res2.WarmStarted {
		t.Fatal("warm start missed")
	}
	db2 := tunelog.NewDatabase()
	if err := db2.Load(bytes.NewReader(j2)); err != nil {
		t.Fatal(err)
	}
	for _, r := range db2.Records() {
		if r.Steps == wantSteps {
			t.Fatalf("cached best was re-measured: %+v", r)
		}
	}
	if res2.Task.BestExec > res1.Task.BestExec {
		t.Fatalf("warm-started run regressed: %v > %v", res2.Task.BestExec, res1.Task.BestExec)
	}
}

func TestWarmStartIgnoresForeignRecords(t *testing.T) {
	// A log of a different workload or target must not seed the task.
	_, j := tuneWithJournal(t, 1, 48, nil)
	db := tunelog.NewDatabase()
	if err := db.Load(bytes.NewReader(j)); err != nil {
		t.Fatal(err)
	}
	other := workload.GEMM("other", 1, 64, 64, 64)
	res := TuneOperatorJournaled(other, hardware.CPUXeon6226R(), MustScheduler("random"), 16, 16, 1, 1, TuneHooks{Warm: db})
	if res.WarmStarted {
		t.Fatal("foreign record must not warm-start a different workload")
	}
	gpu := TuneOperatorJournaled(workload.GEMM("g", 1, 128, 128, 128), hardware.GPURTX3090(), MustScheduler("random"), 16, 16, 1, 1, TuneHooks{Warm: db})
	if gpu.WarmStarted {
		t.Fatal("cpu record must not warm-start a gpu run")
	}
}

func TestParallelNetworkJournalWorkerInvariance(t *testing.T) {
	// The MultiTuner fans records in at wave barriers in selection order, so
	// the journal must be byte-identical for every worker count.
	run := func(workers int) []byte {
		net := workload.BERT(1)
		pnt, err := NewParallelNetworkTuner(net, hardware.CPUXeon6226R(), "harl", 16, 3, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		jr := tunelog.NewJournal(&buf)
		pnt.AttachJournal(jr, 3)
		pnt.Run(330)
		if err := jr.Err(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	j1, j8 := run(1), run(8)
	if len(j1) == 0 {
		t.Fatal("network journal empty")
	}
	if !bytes.Equal(j1, j8) {
		t.Fatal("network journals diverged between workers=1 and workers=8")
	}
}

func TestNetworkTunerJournalAndWarmStart(t *testing.T) {
	net := workload.BERT(1)
	plat := hardware.CPUXeon6226R()
	nt := NewNetworkTuner(net, plat, MustScheduler("harl"), 16, 3)
	var buf bytes.Buffer
	jr := tunelog.NewJournal(&buf)
	nt.AttachJournal(jr, 3)
	nt.Run(330)
	if err := jr.Err(); err != nil {
		t.Fatal(err)
	}

	db := tunelog.NewDatabase()
	if err := db.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if db.Size() != nt.Trials() {
		t.Fatalf("journal has %d records for %d trials", db.Size(), nt.Trials())
	}

	// A fresh serial tuner warm-starts every subgraph the log covered, and
	// each seeded task reproduces the logged best schedule exactly.
	nt2 := NewNetworkTuner(net, plat, MustScheduler("harl"), 16, 9)
	warmed := nt2.WarmStart(db)
	if warmed == 0 {
		t.Fatal("no tasks warm-started")
	}
	for _, task := range nt2.Tasks {
		rec, ok := db.Best(task.Graph.Fingerprint(), plat.Name)
		if !ok {
			continue
		}
		if task.Best == nil {
			t.Fatalf("task %s not seeded despite cached record", task.Graph.Name)
		}
		if got := task.Best.MarshalSteps(); got != rec.Steps {
			t.Fatalf("task %s seeded with %q want %q", task.Graph.Name, got, rec.Steps)
		}
		if task.BestExec != rec.ExecSec {
			t.Fatalf("task %s exec %v want %v", task.Graph.Name, task.BestExec, rec.ExecSec)
		}
	}
}

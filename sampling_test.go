package harl

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestAdaptiveSamplingSavesMeasurements pins the measurement-efficiency
// acceptance bar on the committed GEMM workload: with sampling on, hardware
// measurements drop by at least 30% while the final best schedule cost stays
// equal or better, and both runs still reach the committed journal's best
// within the budget.
func TestAdaptiveSamplingSavesMeasurements(t *testing.T) {
	w := pretrainWorkload()
	best, ok, err := BestRecord(committedPretrainJournal, w, CPU())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("committed journal has no best record for the workload")
	}
	opts := Options{Scheduler: "harl", Trials: 320, Seed: 1}
	cold, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Measured != cold.Trials || cold.MeasureSaved != 0 {
		t.Fatalf("sampling off must measure every trial: trials=%d measured=%d saved=%d",
			cold.Trials, cold.Measured, cold.MeasureSaved)
	}
	opts.AdaptiveSampling = AdaptiveSampling{Enabled: true}
	ad, err := TuneOperator(w, CPU(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Trials != cold.Trials {
		t.Fatalf("sampling must keep the budget meaning of Trials: %d vs %d", ad.Trials, cold.Trials)
	}
	if ad.Measured+ad.MeasureSaved != ad.Trials {
		t.Fatalf("accounting: measured=%d + saved=%d != trials=%d", ad.Measured, ad.MeasureSaved, ad.Trials)
	}
	if ad.MeasureSaved*10 < ad.Trials*3 {
		t.Fatalf("want >= 30%% measurements saved, got %d of %d (%.0f%%)",
			ad.MeasureSaved, ad.Trials, 100*float64(ad.MeasureSaved)/float64(ad.Trials))
	}
	if ad.ExecSeconds > cold.ExecSeconds {
		t.Fatalf("sampled best %.6g worse than unsampled %.6g", ad.ExecSeconds, cold.ExecSeconds)
	}
	coldReach := trialsToReach(cold.BestLog, best.ExecSeconds)
	adReach := trialsToReach(ad.BestLog, best.ExecSeconds)
	if coldReach < 0 || adReach < 0 {
		t.Fatalf("journal best %.6g not reached within budget: cold=%d sampled=%d", best.ExecSeconds, coldReach, adReach)
	}
	t.Logf("saved %d of %d measurements (%.0f%%); best %.6g vs %.6g; journal best at %d vs %d",
		ad.MeasureSaved, ad.Trials, 100*float64(ad.MeasureSaved)/float64(ad.Trials),
		ad.ExecSeconds, cold.ExecSeconds, adReach, coldReach)
}

// TestAdaptiveJournalsAreWorkerInvariant: the byte-identical-journal contract
// must survive sampling — clustering and representative selection are pure
// functions of the candidate features and the task RNG stream, so workers=1
// and workers=3 must commit identical journals while actually saving
// measurements.
func TestAdaptiveJournalsAreWorkerInvariant(t *testing.T) {
	w := pretrainWorkload()
	dir := t.TempDir()
	var logs [][]byte
	var results []Result
	for _, workers := range []int{1, 3} {
		path := filepath.Join(dir, fmt.Sprintf("w%d.jsonl", workers))
		res, err := TuneOperator(w, CPU(), Options{
			Scheduler:        "harl",
			Trials:           96,
			Seed:             11,
			Workers:          workers,
			AdaptiveSampling: AdaptiveSampling{Enabled: true},
			RecordLog:        path,
		})
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		logs = append(logs, data)
		results = append(results, res)
	}
	if !bytes.Equal(logs[0], logs[1]) {
		t.Fatal("sampled journals differ between workers=1 and workers=3")
	}
	for _, res := range results {
		if res.MeasureSaved == 0 {
			t.Fatal("sampling must actually save measurements in this run")
		}
	}
	if results[0].ExecSeconds != results[1].ExecSeconds || results[0].BestSchedule != results[1].BestSchedule ||
		results[0].Measured != results[1].Measured || results[0].MeasureSaved != results[1].MeasureSaved {
		t.Fatalf("sampled results differ between worker counts: %+v vs %+v", results[0], results[1])
	}
}

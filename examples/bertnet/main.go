// bertnet: end-to-end tuning of the BERT subgraph inventory with HARL and
// with the Ansor baseline, printing the per-subgraph breakdown the paper's
// Table 4 reports — which GEMMs dominate, how trials were allocated, and the
// end-to-end speedup of HARL's schedules over Ansor's.
package main

import (
	"fmt"
	"log"

	"harl"
)

func main() {
	const trials = 700
	tgt := harl.CPU()

	fmt.Println("tuning BERT (batch 1) on CPU — this runs two full tuning jobs…")
	ansor, err := harl.TuneNetwork("bert", 1, tgt, harl.Options{Scheduler: "ansor", Trials: trials, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	harlRes, err := harl.TuneNetwork("bert", 1, tgt, harl.Options{Scheduler: "harl", Trials: trials, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-18s %-7s %-12s %-8s %s\n", "subgraph", "weight", "exec(us)", "trials", "contribution")
	for _, b := range harlRes.Breakdown {
		fmt.Printf("%-18s %-7d %-12.1f %-8d %.1f%%\n",
			b.Name, b.Weight, b.ExecSeconds*1e6, b.Trials, b.Contribution*100)
	}

	fmt.Printf("\nend-to-end estimated: ansor %.3f ms, harl %.3f ms\n",
		ansor.EstimatedSeconds*1e3, harlRes.EstimatedSeconds*1e3)
	fmt.Printf("end-to-end measured:  ansor %.3f ms, harl %.3f ms  (HARL speedup %.2fx)\n",
		ansor.MeasuredSeconds*1e3, harlRes.MeasuredSeconds*1e3,
		ansor.MeasuredSeconds/harlRes.MeasuredSeconds)
	fmt.Printf("search time: ansor %.0f s, harl %.0f s\n", ansor.SearchSeconds, harlRes.SearchSeconds)
}

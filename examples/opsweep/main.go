// opsweep: a miniature of the paper's Figure 5/6 — sweep several Table-6
// operator categories, tuning each with Ansor and HARL under an identical
// budget, and report normalized performance and time-to-baseline-quality.
package main

import (
	"fmt"
	"log"
	"math"

	"harl"
)

func main() {
	const trials = 240
	tgt := harl.CPU()

	fmt.Printf("%-8s %-10s %-10s %-9s %-12s\n", "category", "ansor", "harl", "speedup", "harl-time/ansor-time")
	for _, cat := range []string{"GEMM-M", "GEMM-L", "C2D", "T2D"} {
		w := harl.TableSixWorkloads(cat, 1)[0]

		a, err := harl.TuneOperator(w, tgt, harl.Options{Scheduler: "ansor", Trials: trials, Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		h, err := harl.TuneOperator(w, tgt, harl.Options{Scheduler: "harl", Trials: trials, Seed: 12})
		if err != nil {
			log.Fatal(err)
		}

		// Search-time ratio: trials HARL needed to match Ansor's final best.
		match := len(h.BestLog)
		for i, e := range h.BestLog {
			if e <= a.ExecSeconds {
				match = i + 1
				break
			}
		}
		maxGF := math.Max(a.GFLOPS, h.GFLOPS)
		fmt.Printf("%-8s %-10.3f %-10.3f %-9.2f %d/%d trials\n",
			cat, a.GFLOPS/maxGF, h.GFLOPS/maxGF, h.GFLOPS/a.GFLOPS, match, trials)
	}
}

// Serve: the tuning-as-a-service walkthrough — start the daemon's service
// stack in-process (registry + coalescing job queue + HTTP surface, the same
// wiring cmd/harl-serve uses), pay for one cold tune, then watch every later
// identical request come back instantly from the best-schedule registry.
//
// The sequence:
//
//  1. boot the service with a registry seeded from the committed GEMM journal
//  2. GET /v1/schedule for the seeded workload  → immediate cache hit
//  3. POST /v1/tune for an unseen workload      → 202, a job runs the search
//  4. POST the same request twice concurrently  → both coalesce into one job
//  5. POST it again after completion            → 200 cache hit: zero new
//     measurements, with "trials" reporting the search that produced the
//     cached schedule
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"harl"
	"harl/internal/service"
)

func main() {
	dir, err := os.MkdirTemp("", "harl-serve-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Boot: registry seeded from the committed journal, two queue workers.
	reg, err := harl.OpenRegistry(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Close()
	if _, err := reg.ImportJournal("examples/pretrain/gemm-cpu.jsonl"); err != nil {
		log.Fatal(err)
	}
	queue := service.NewQueue(&service.HarlTuner{Registry: reg}, 2)
	defer queue.Shutdown()
	srv := httptest.NewServer(service.NewServer(queue, reg))
	defer srv.Close()
	fmt.Printf("daemon up at %s with %d registry key(s)\n", srv.URL, reg.Len())

	// 2. The seeded workload is already a lookup, not a search.
	start := time.Now()
	hit := getJSON(srv.URL + "/v1/schedule?op=gemm&shape=256,256,256&target=cpu&scheduler=harl")
	fmt.Printf("seeded GEMM-256³: cache_hit=%v exec=%.1f us in %v\n",
		hit["cache_hit"], hit["exec_seconds"].(float64)*1e6, time.Since(start).Round(time.Microsecond))

	// 3+4. An unseen workload: three concurrent identical requests coalesce
	// into exactly one tuning job.
	body := `{"op":"gemm","shape":"128,128,128","target":"cpu","scheduler":"harl","trials":64}`
	ids := make(chan string, 3)
	for i := 0; i < 3; i++ {
		go func() {
			resp := postJSON(srv.URL+"/v1/tune", body)
			ids <- resp["job"].(map[string]any)["id"].(string)
		}()
	}
	id := <-ids
	for i := 0; i < 2; i++ {
		if other := <-ids; other != id {
			log.Fatalf("requests did not coalesce: %s vs %s", id, other)
		}
	}
	fmt.Printf("cold GEMM-128³: 3 concurrent requests coalesced into job %s\n", id)

	// Poll the job to completion (a real client would back off).
	start = time.Now()
	var job map[string]any
	for {
		job = getJSON(srv.URL + "/v1/jobs/" + id)
		if s := job["state"].(string); s == "done" || s == "failed" || s == "cancelled" {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	outcome, ok := job["outcome"].(map[string]any)
	if !ok || job["state"] != "done" {
		log.Fatalf("job %s ended %v: %v", id, job["state"], job["error"])
	}
	fmt.Printf("job %s %s: %.0f trials in %v (search)\n",
		id, job["state"], outcome["trials"], time.Since(start).Round(time.Millisecond))

	// 5. The search published its best: the identical request is now free.
	start = time.Now()
	again := postJSON(srv.URL+"/v1/tune", body)
	fmt.Printf("warm GEMM-128³: cache_hit=%v trials=%.0f in %v\n",
		again["cache_hit"], again["trials"], time.Since(start).Round(time.Microsecond))

	metrics := getJSON(srv.URL + "/healthz")["metrics"].(map[string]any)
	fmt.Printf("metrics: hits=%.0f misses=%.0f coalesced=%.0f trials_measured=%.0f\n",
		metrics["registry_hits"], metrics["registry_misses"],
		metrics["coalesced"], metrics["trials_measured"])
}

func getJSON(url string) map[string]any {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return decode(resp)
}

func postJSON(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	return decode(resp)
}

func decode(resp *http.Response) map[string]any {
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return out
}

// customop: define a custom tensor contraction through the public API and
// tune it — demonstrating that the auto-scheduler is template-free: sketches
// are generated from the iteration domain alone, with no operator-specific
// code anywhere in the tuner.
package main

import (
	"fmt"
	"log"

	"harl"
)

func main() {
	// A 4-D tensor contraction: out[b, i, j] = Σ_k Σ_l A[b, i, k, l] · B[k, l, j]
	// modeled by its iteration domain (two reduction axes).
	w, err := harl.CustomOp("tensor-contraction", []harl.CustomAxis{
		{Name: "b", Extent: 8},
		{Name: "i", Extent: 256},
		{Name: "j", Extent: 256},
		{Name: "k", Extent: 64, Reduce: true},
		{Name: "l", Extent: 32, Reduce: true},
	}, 2, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(w.Describe())
	fmt.Printf("total work: %.2f GFLOP\n\n", w.FLOPs()/1e9)

	for _, scheduler := range []string{"random", "ansor", "harl"} {
		res, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
			Scheduler: scheduler,
			Trials:    200,
			Seed:      21,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s best %.4f ms (%.1f GFLOP/s)  schedule: %s\n",
			scheduler, res.ExecSeconds*1e3, res.GFLOPS, res.BestSchedule)
	}
}

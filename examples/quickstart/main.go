// Quickstart: tune a single 512³ GEMM with the HARL auto-scheduler and print
// the winning schedule, its throughput, and the convergence curve.
package main

import (
	"fmt"
	"log"

	"harl"
)

func main() {
	w := harl.GEMM(512, 512, 512, 1)
	fmt.Println(w.Describe())

	res, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler: "harl",
		Trials:    240,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("best program: %.4f ms (%.1f GFLOP/s) after %d trials\n",
		res.ExecSeconds*1e3, res.GFLOPS, res.Trials)
	fmt.Printf("winning schedule: %s\n", res.BestSchedule)
	fmt.Printf("simulated search time: %.0f s\n\n", res.SearchSeconds)

	fmt.Println("convergence (best-so-far ms at every 10% of the budget):")
	if len(res.BestLog) == 0 {
		fmt.Println("  (no measured trials)")
		return
	}
	for i := 1; i <= 10; i++ {
		// With fewer than 10 trials the early milestones land before the
		// first trial (index -1); clamp into the log's valid range.
		idx := len(res.BestLog)*i/10 - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Printf("  %3d%%: %.4f ms\n", i*10, res.BestLog[idx]*1e3)
	}
}

// Resume: the tune → kill → resume workflow of the persistent tuning-record
// journal. The first run journals every measured trial to a record log and is
// cut off mid-search (simulated here by a deliberately small trial budget —
// the journal is appended record by record, so a real kill -9 loses at most
// one partially written line, which the loader skips). The second run
// warm-starts from the log: the prior best schedule comes back immediately,
// without re-measuring it, and the remaining budget only explores new ground.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"harl"
)

func main() {
	dir, err := os.MkdirTemp("", "harl-resume")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "gemm.jsonl")

	w := harl.GEMM(512, 512, 512, 1)

	// Run 1: tuning with a record log, "killed" after a third of the budget.
	res1, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler: "harl",
		Trials:    80,
		Seed:      7,
		RecordLog: logPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1 (interrupted): %.4f ms after %d trials\n", res1.ExecSeconds*1e3, res1.Trials)

	recs, err := harl.LoadRecords(logPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("journal: %d records for workload %s\n", len(recs), w.Fingerprint())

	// Pure cache replay: a negative budget measures nothing and recovers the
	// prior best exactly — byte-identical schedule, equal exec time.
	replay, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler:  "harl",
		Trials:     -1,
		ResumeFrom: logPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay (0 trials):   %.4f ms, warm-started=%v, schedule recovered: %v\n",
		replay.ExecSeconds*1e3, replay.WarmStarted, replay.BestSchedule == res1.BestSchedule)

	// Run 2: resume and finish the job. The cached best seeds the search (it
	// is never re-measured) and new trials append to the same journal.
	res2, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler:  "harl",
		Trials:     160,
		Seed:       8,
		RecordLog:  logPath,
		ResumeFrom: logPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2 (resumed):     %.4f ms after %d new trials (never worse than run 1: %v)\n",
		res2.ExecSeconds*1e3, res2.Trials, res2.ExecSeconds <= res1.ExecSeconds)

	best, ok, err := harl.BestRecord(logPath, w, harl.CPU())
	if err != nil || !ok {
		log.Fatal("no best record:", err)
	}
	fmt.Printf("journal best across both runs: %.4f ms (trial %d, scheduler %s)\n",
		best.ExecSeconds*1e3, best.Trial, best.Scheduler)
}

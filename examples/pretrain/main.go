// Pretrain: the offline cost-model workflow. A first tuning run journals its
// measurements; harl.TrainModel (the library form of the harl-train command)
// replays that journal into a checkpointable model; later runs start with
// the model's knowledge — either by loading the checkpoint (Options.ModelIn)
// or by replaying the journal directly (Options.PretrainFrom) — and reach
// the journal's best program in far fewer trials than a cold-started search.
//
// A copy of the journal this example produces (same workload, scheduler
// "harl", 96 trials, seed 7) is committed as examples/pretrain/gemm-cpu.jsonl
// and exercised by the repository's tests and CI.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"harl"
)

// trialsToReach returns the 1-based trial at which the best-so-far log first
// reached the target, or -1.
func trialsToReach(bestLog []float64, target float64) int {
	for i, e := range bestLog {
		if e <= target {
			return i + 1
		}
	}
	return -1
}

func main() {
	dir, err := os.MkdirTemp("", "harl-pretrain")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "gemm.jsonl")
	ckptPath := filepath.Join(dir, "model.json")

	w := harl.GEMM(256, 256, 256, 1)

	// Run 1: a normal tuning run, journaled.
	res1, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler: "harl",
		Trials:    96,
		Seed:      7,
		RecordLog: logPath,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1 (journaled):  %.4f ms after %d trials\n", res1.ExecSeconds*1e3, res1.Trials)

	// Offline: turn the journal into a reusable model artifact. Features are
	// regenerated deterministically from the serialized schedule steps, so
	// the same journal always yields a byte-identical checkpoint.
	st, err := harl.TrainModel(logPath, []harl.Workload{w}, harl.CPU(), ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harl-train:         %d records -> %d samples, trained=%v\n", st.Records, st.Samples, st.Trained)

	// The target to race for: the journal's best measured execution time.
	best, ok, err := harl.BestRecord(logPath, w, harl.CPU())
	if err != nil || !ok {
		log.Fatal("no best record:", err)
	}

	// Run 2a: cold start with a fresh seed.
	cold, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler: "harl", Trials: 160, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Run 2b: same seed, but the cost model knows the journal before the
	// first round (checkpoint form; PretrainFrom: logPath is equivalent).
	pre, err := harl.TuneOperator(w, harl.CPU(), harl.Options{
		Scheduler: "harl", Trials: 160, Seed: 1, ModelIn: ckptPath,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("journal best:       %.4f ms\n", best.ExecSeconds*1e3)
	fmt.Printf("cold run:           reached it at trial %d (best %.4f ms, pretrained=%v)\n",
		trialsToReach(cold.BestLog, best.ExecSeconds), cold.ExecSeconds*1e3, cold.Pretrained)
	fmt.Printf("pretrained run:     reached it at trial %d (best %.4f ms, pretrained=%v, %d samples, %d refits)\n",
		trialsToReach(pre.BestLog, best.ExecSeconds), pre.ExecSeconds*1e3, pre.Pretrained,
		pre.CostModelSamples, pre.CostModelRefits)
}
